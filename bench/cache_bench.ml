(* Federation-wide caching benchmark: what do the PR-6 caches buy?

   Two measurements, mirroring the two cache levels:

   1. Plan cache — a compile-heavy ad-hoc query (a prolog of 60 declared
      functions, trivial body) through Peer.query, cold (plan caching
      disabled: parse + prolog + static check every run) vs warm (cached
      plan: straight to global binding + execution).  This is the §3.3
      observation: MonetDB/XQuery charges ~130 ms to module translation,
      and the paper's fix is to never pay compilation on the hot path.
      Target: warm ≥ 5× cold qps.

   2. Result cache — repeated read-only client calls into a 2-peer
      cluster, cold (every request stamped cache="off", the serving peer
      executes each time) vs warm (the peer answers from its semantic
      result cache after the first call).  A profiled warm call checks
      the phase breakdown: "cache" present, "exec" absent — the repeat
      runs zero remote exec phases.

   Writes BENCH_cache.json with `--json`. *)

module Peer = Xrpc_peer.Peer
module Cluster = Xrpc_core.Cluster
module Client = Xrpc_core.Xrpc_client
module Simnet = Xrpc_net.Simnet
module Filmdb = Xrpc_workloads.Filmdb
module Xdm = Xrpc_xml.Xdm

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv

let now_ms () = Unix.gettimeofday () *. 1000.

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* queries per second over a fixed-duration run (minimum batch time keeps
   the clock-read error negligible) *)
let qps f =
  ignore (Sys.opaque_identity (f ()));
  let budget_ms = if quick then 100. else 400. in
  let t0 = now_ms () in
  let n = ref 0 in
  while now_ms () -. t0 < budget_ms do
    ignore (Sys.opaque_identity (f ()));
    incr n
  done;
  float_of_int !n /. ((now_ms () -. t0) /. 1000.)

(* ------------------------------------------------------------------ *)
(* 1. Plan cache: compile-heavy ad-hoc query                           *)
(* ------------------------------------------------------------------ *)

(* 60 declared functions make parse + static check dominate; the body
   calls one of them once, so execution is a few µs *)
let compile_heavy_query =
  let b = Buffer.create 4096 in
  for i = 0 to 59 do
    Buffer.add_string b
      (Printf.sprintf
         "declare function local:f%d($x as xs:integer) as xs:integer { $x + \
          %d * 2 - (%d idiv 3) };\n"
         i i i)
  done;
  Buffer.add_string b "local:f7(local:f13(29))";
  Buffer.contents b

let plan_bench () =
  let peer = Peer.create "xrpc://bench.local" in
  let expected = Xdm.to_display (Peer.query_seq peer compile_heavy_query) in
  Peer.set_plan_caching peer false;
  let cold = qps (fun () -> Peer.query_seq peer compile_heavy_query) in
  Peer.set_plan_caching peer true;
  let warm = qps (fun () -> Peer.query_seq peer compile_heavy_query) in
  assert (Xdm.to_display (Peer.query_seq peer compile_heavy_query) = expected);
  let stats = (Peer.cache_stats peer).Peer.plan in
  Printf.printf
    "plan cache:   %8.0f qps cold  %8.0f qps warm  (%.1fx; %d hits %d \
     misses)\n"
    cold warm (warm /. cold) stats.Xrpc_peer.Plan_cache.hits
    stats.Xrpc_peer.Plan_cache.misses;
  (cold, warm)

(* ------------------------------------------------------------------ *)
(* 2. Result cache: repeated read-only remote calls                    *)
(* ------------------------------------------------------------------ *)

let sim = { Simnet.default_config with Simnet.charge_cpu = false }

(* the served function needs real exec work for the skipped phase to be
   visible over the fixed per-request cost (SOAP both ways, transport,
   idempotency bookkeeping) — an aggregation over a generated range
   stands in for a selective scan of a big document *)
let bench_module =
  {|module namespace b = "bench";
declare function b:heavy($n as xs:integer) as xs:integer
{ sum(for $i in 1 to $n return $i * $i - ($i idiv 3)) };|}

let result_bench () =
  let cluster = Cluster.create ~config:sim ~names:[ "x"; "y" ] () in
  Filmdb.install (Cluster.peer cluster "y") ();
  Cluster.register_module_everywhere cluster ~uri:"bench" ~location:"bench.xq"
    bench_module;
  let client = Cluster.client cluster in
  let dest = "xrpc://y" in
  let call ?cache () =
    Client.call client ~dest ?cache ~module_uri:"bench" ~location:"bench.xq"
      ~fn:"heavy"
      [ [ Xdm.int 30000 ] ]
  in
  let baseline = Xdm.to_display (call ~cache:false ()) in
  let cold = qps (fun () -> call ~cache:false ()) in
  let warm = qps (fun () -> call ()) in
  assert (Xdm.to_display (call ()) = baseline);
  (* the warm repeat must run no exec phase at the serving peer *)
  let _, profile =
    Client.call_profiled client ~dest ~module_uri:"bench" ~location:"bench.xq"
      ~fn:"heavy"
      [ [ Xdm.int 30000 ] ]
  in
  let phases =
    List.concat_map
      (fun (_, d) -> List.map fst d.Xrpc_obs.Profile.d_remote)
      (Xrpc_obs.Profile.dests profile)
  in
  let served_from_cache =
    List.mem "cache" phases && not (List.mem "exec" phases)
  in
  let stats = (Peer.cache_stats (Cluster.peer cluster "y")).Peer.result in
  Printf.printf
    "result cache: %8.0f qps cold  %8.0f qps warm  (%.1fx; %d hits %d \
     misses; warm phases [%s])\n"
    cold warm (warm /. cold) stats.Xrpc_peer.Result_cache.hits
    stats.Xrpc_peer.Result_cache.misses
    (String.concat ";" phases);
  if not served_from_cache then
    failwith "warm repeat was not served from the result cache";
  (cold, warm)

let () =
  print_endline "Federation-wide caching: cold vs warm qps";
  print_endline "=========================================";
  let plan_cold, plan_warm = plan_bench () in
  let result_cold, result_warm = result_bench () in
  let plan_ratio = plan_warm /. plan_cold in
  let result_ratio = result_warm /. result_cold in
  Printf.printf "plan-cache speedup %.1fx (target >= 5x), result-cache \
                 speedup %.1fx\n"
    plan_ratio result_ratio;
  if json_out then
    write_file "BENCH_cache.json"
      (Printf.sprintf
         "{\n\
         \  \"plan_cache\": { \"cold_qps\": %.0f, \"warm_qps\": %.0f, \
          \"speedup\": %.2f, \"target_speedup\": 5.0 },\n\
         \  \"result_cache\": { \"cold_qps\": %.0f, \"warm_qps\": %.0f, \
          \"speedup\": %.2f, \"warm_repeat_zero_exec_phases\": true }\n\
          }\n"
         plan_cold plan_warm plan_ratio result_cold result_warm result_ratio)
