(* Scatter-gather benchmark: a distributed semi-join over a sharded
   collection at ring sizes 1 / 4 / 16 / 64.

   The workload is the paper's semi-join shape on sharded data: the
   coordinator ships a key list to every ring member, each member filters
   its own slice ([sh:semiJoin] — parts it owns whose key is in the
   list), and the partial answers come back through the columnar gather
   merge.  The collection's total size is fixed, so a P-member ring gives
   every member ~K/P parts to scan.

   Two numbers per ring size, both on the Simnet virtual clock with
   charge_cpu on (real handler CPU is charged to the modeled clock, plus
   the modeled latency/bandwidth cost of each leg's messages):

   - total work: the sum of all legs' virtual-clock costs — what a
     sequential executor would pay, and what the 1-peer baseline is;
   - modeled makespan: the max over legs plus the measured gather-merge
     time — what a parallel scatter pays when every leg runs
     concurrently on its own peer.

   The speedup column is makespan(1 peer) / makespan(P peers); the
   acceptance bar is 16 peers beating 1 peer.  Writes BENCH_shard.json
   with `--json`. *)

module Cluster = Xrpc_core.Cluster
module Client = Xrpc_core.Xrpc_client
module Peer = Xrpc_peer.Peer
module Shard = Xrpc_peer.Shard
module Gather = Xrpc_algebra.Gather
module Simnet = Xrpc_net.Simnet
module Shardmod = Xrpc_workloads.Shardmod
module Xdm = Xrpc_xml.Xdm

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* big enough that scanning the collection dominates the 0.6 ms modeled
   message latency — otherwise every ring size just measures the wire *)
let n_records = if quick then 2048 else 8192
let ring_sizes = if quick then [ 1; 4; 16 ] else [ 1; 4; 16; 64 ]

(* the outer side of the semi-join: every 8th key matches *)
let wanted_keys =
  List.filter_map
    (fun (k, _) ->
      match String.sub k 1 (String.length k - 1) with
      | d when int_of_string d mod 8 = 0 -> Some k
      | _ -> None)
    (Shardmod.records n_records)

let build_ring peers =
  let names = List.init peers (fun i -> Printf.sprintf "s%d" i) in
  let cluster = Cluster.create ~names () in
  Cluster.register_module_everywhere cluster ~uri:Shardmod.module_ns
    ~location:Shardmod.module_at Shardmod.shard_module;
  let map =
    Shard.create ~replicas:1
      (List.map (fun s -> "xrpc://" ^ s) names)
  in
  Cluster.set_shard_map cluster (Some map);
  Cluster.place_sharded cluster (Shardmod.records n_records);
  (cluster, map)

type row = {
  peers : int;
  rows : int;  (** semi-join matches returned *)
  total_ms : float;  (** sum of per-leg virtual-clock cost *)
  makespan_ms : float;  (** max leg + gather merge *)
  merge_ms : float;
  messages : int;
  bytes : int;
}

let run_ring peers =
  let cluster, map = build_ring peers in
  let client = Cluster.client cluster in
  let keys = List.map Xdm.str wanted_keys in
  let legs =
    Client.plan_scatter ~alive:(Simnet.is_up (Cluster.net cluster)) map
  in
  (* each leg separately, so per-leg virtual cost is observable; the
     clock delta includes modeled latency/bandwidth AND the charged
     handler CPU (stats.network_ms alone is wire cost only) *)
  let partials, leg_costs, messages, bytes =
    List.fold_left
      (fun (acc, costs, msgs, byts) (dest, owners) ->
        Cluster.reset_stats cluster;
        let c0 = Cluster.clock_ms cluster in
        let r =
          Client.call_scatter client ~module_uri:Shardmod.module_ns
            ~location:Shardmod.module_at ~fn:"semiJoin"
            [ (dest, [ List.map Xdm.str owners; keys ]) ]
        in
        let s = Cluster.stats cluster in
        ( acc @ r,
          (Cluster.clock_ms cluster -. c0) :: costs,
          msgs + s.Simnet.messages,
          byts + s.Simnet.bytes_sent + s.Simnet.bytes_received ))
      ([], [], 0, 0) legs
  in
  let t0 = Unix.gettimeofday () in
  let merged = Gather.merge partials in
  let merge_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let total_ms = List.fold_left ( +. ) 0. leg_costs in
  let makespan_ms = List.fold_left max 0. leg_costs +. merge_ms in
  if List.length merged <> List.length wanted_keys then
    failwith
      (Printf.sprintf "ring of %d returned %d rows, expected %d" peers
         (List.length merged) (List.length wanted_keys));
  {
    peers;
    rows = List.length merged;
    total_ms;
    makespan_ms;
    merge_ms;
    messages;
    bytes;
  }

let () =
  Printf.printf
    "Sharded semi-join scatter-gather: %d records, %d outer keys\n"
    n_records (List.length wanted_keys);
  Printf.printf "%5s | %6s | %11s | %12s | %10s | %5s %9s | %7s\n" "peers"
    "rows" "total work" "makespan" "merge" "msgs" "bytes" "speedup";
  let rows = List.map run_ring ring_sizes in
  let base =
    match rows with
    | r :: _ -> r.makespan_ms
    | [] -> assert false
  in
  List.iter
    (fun r ->
      Printf.printf
        "%5d | %6d | %9.3fms | %10.3fms | %8.3fms | %5d %9d | %6.2fx\n"
        r.peers r.rows r.total_ms r.makespan_ms r.merge_ms r.messages r.bytes
        (base /. r.makespan_ms))
    rows;
  (* sanity: every ring returns the same matches, and 16 peers must beat
     the single-peer makespan *)
  (match List.find_opt (fun r -> r.peers = 16) rows with
  | Some r16 when r16.makespan_ms >= base ->
      Printf.eprintf
        "FAIL: 16-peer makespan %.3fms did not beat 1 peer (%.3fms)\n"
        r16.makespan_ms base;
      exit 1
  | _ -> ());
  if json_out then begin
    let row_json r =
      Printf.sprintf
        "    \
         {\"peers\":%d,\"rows\":%d,\"total_work_ms\":%.4f,\"makespan_ms\":%.4f,\"merge_ms\":%.4f,\"messages\":%d,\"bytes\":%d,\"speedup_vs_1\":%.4f}"
        r.peers r.rows r.total_ms r.makespan_ms r.merge_ms r.messages r.bytes
        (base /. r.makespan_ms)
    in
    write_file "BENCH_shard.json"
      (Printf.sprintf
         "{\n\
         \  \"workload\": \"distributed semi-join over sharded collection\",\n\
         \  \"records\": %d,\n\
         \  \"outer_keys\": %d,\n\
         \  \"replicas\": 1,\n\
         \  \"rings\": [\n%s\n  ]\n\
          }\n"
         n_records
         (List.length wanted_keys)
         (String.concat ",\n" (List.map row_json rows)))
  end
