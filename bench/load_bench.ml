(* Load benchmark for the HTTP server cores: event loop vs
   thread-per-connection at 100 / 1k / 10k concurrent keep-alive
   connections.

   The generator is open-loop: arrivals follow a Poisson process at a
   fixed offered rate, scheduled on absolute timestamps, and are NOT
   gated on responses — if the server falls behind, arrivals queue and
   the measured latency (scheduled-arrival -> response-complete) absorbs
   the queueing delay, exactly like real clients that do not politely
   slow down.  Two workloads per tier:

   - keep_alive: the tier's connections are opened up front and arrivals
     round-robin across them, so every connection stays live (which is
     what makes thread-per-connection pay for its thousand parked
     threads);
   - per_call: every RPC opens its own connection (non-blocking connect)
     and closes it after the response — the SOAP-toolkit shape, and the
     one XRPC's one-POST-per-RPC protocol actually produces.  Here the
     baseline pays a thread spawn per call.

   For each (core, connections) pair the offered rate ramps geometrically
   until the run stops being sustainable (achieved < 90% of offered, or
   p99 past 1s); the last sustainable run's rate and p50/p95/p99 are
   reported.  The client multiplexes its sockets over the same poll(2)
   stub the server core uses, so neither side hits the select() fd cap.

   `--quick` trims tiers and durations; `--json` writes BENCH_load.json.
   Exits nonzero if the event loop does not sustain >= 2x the baseline's
   qps at the 1k-connection tier. *)

module Http = Xrpc_net.Http
module Evloop = Xrpc_net.Evloop

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv

let tiers = if quick then [ 100; 1000 ] else [ 100; 1000; 10000 ]

(* over-capacity rates reveal themselves through queue buildup, which
   needs wall-clock time to cross the SLO — trials that are too short
   make any rate the drain grace can absorb look sustainable (a 1 s
   trial flatters thread-per-connection by ~2x), and a coarse ramp
   quantizes both ceilings enough to make the reported ratio noise.
   So --quick only trims the 10k tier; trials and ramp stay honest. *)
let duration_s = 2.0
let start_rate = if quick then 2000. else 1000.
let ramp = 1.6
let max_rate = 400_000.
let drain_grace_s = 0.5
let sustain_frac = 0.9

(* the SLO that defines "sustainable": with a sub-millisecond handler,
   a p99 past 100 ms means the server is living off queue buildup that a
   short trial simply has not had time to blow past a looser cap *)
let p99_cap_ms = 100.
let seed = 42

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

(* ------------------------------------------------------------------ *)
(* Client-side connection                                              *)
(* ------------------------------------------------------------------ *)

type cconn = {
  fd : Unix.file_descr;
  mutable expected : int;  (** total response bytes; -1 until parsed *)
  mutable got : int;
  hdr : Buffer.t;  (** header bytes until [expected] is known *)
  mutable sched : float;  (** scheduled arrival of the in-flight request *)
  mutable connecting : bool;  (** per-call: non-blocking connect pending *)
}

let request = "POST /bench HTTP/1.1\r\nHost: b\r\nContent-Length: 2\r\n\r\nhi"

let request_close =
  "POST /bench HTTP/1.1\r\nHost: b\r\nConnection: close\r\nContent-Length: \
   2\r\n\r\nhi"

let send_req ?(close = false) c =
  let req = if close then request_close else request in
  let n = String.length req in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring c.fd req !sent (n - !sent)
  done

(* responses are identical per run, so after the first full parse a
   completion is just a byte count *)
let response_complete c =
  if c.expected >= 0 then c.got >= c.expected
  else
    let s = Buffer.contents c.hdr in
    match
      let rec find i =
        if i + 3 >= String.length s then None
        else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
        else find (i + 1)
      in
      find 0
    with
    | None -> false
    | Some body_off ->
        let clen =
          List.fold_left
            (fun acc line ->
              match String.index_opt line ':' with
              | Some i
                when String.lowercase_ascii (String.trim (String.sub line 0 i))
                     = "content-length" ->
                  int_of_string
                    (String.trim
                       (String.sub line (i + 1) (String.length line - i - 1)))
              | _ -> acc)
            0
            (String.split_on_char '\n' (String.sub s 0 body_off))
        in
        c.expected <- body_off + clen;
        c.got >= c.expected

(* a finished tier's fds (both sides of thousands of connections) close
   asynchronously — the server reaps its side when the client's close
   delivers EOF — so wait for the process fd table to actually drain
   before the next tier counts on the headroom *)
let await_fd_drain () =
  let count () =
    try Array.length (Sys.readdir "/proc/self/fd") with Sys_error _ -> 0
  in
  let t0 = Unix.gettimeofday () in
  while count () > 1000 && Unix.gettimeofday () -. t0 < 5.0 do
    Unix.sleepf 0.05
  done

let connect_tier port n =
  let conns = Queue.create () in
  (try
     for _ = 1 to n do
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
       Queue.push
         {
           fd;
           expected = -1;
           got = 0;
           hdr = Buffer.create 128;
           sched = 0.;
           connecting = false;
         }
         conns
     done
   with Unix.Unix_error (e, _, _) ->
     Printf.printf "  (connect stopped at %d/%d: %s)\n%!" (Queue.length conns)
       n (Unix.error_message e));
  conns

(* a trial that fails hard abandons (and closes) its in-flight
   connections — reopen them so the next trial runs at full strength *)
let top_up port (idle : cconn Queue.t) target =
  (try
     while Queue.length idle < target do
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
       Queue.push
         {
           fd;
           expected = -1;
           got = 0;
           hdr = Buffer.create 128;
           sched = 0.;
           connecting = false;
         }
         idle
     done
   with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* One open-loop trial                                                 *)
(* ------------------------------------------------------------------ *)

type trial = {
  offered : float;
  achieved : float;
  arrivals : int;
  completed : int;
  dead : int;  (** connections the server dropped during the trial *)
  p50 : float;
  p95 : float;
  p99 : float;
}

(* how the generator maps RPC arrivals onto TCP connections *)
type source =
  | Pool of cconn Queue.t
      (** keep-alive: a fixed pool of live connections, round-robin *)
  | Fresh of int * int
      (** per-call, SOAP-toolkit style: (port, cap) — every arrival opens
          its own connection (non-blocking connect) and closes it after
          the response, with at most [cap] calls in flight *)

let run_trial ~rng ~rate source =
  let busy : (Unix.file_descr, cconn) Hashtbl.t = Hashtbl.create 256 in
  let latencies = ref [] in
  let completed = ref 0 and arrivals = ref 0 and dead = ref 0 in
  let backlog = Queue.create () in
  let scratch = Bytes.create 65536 in
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. duration_s in
  let next_arrival = ref (t0 +. (-.log (Random.State.float rng 1.) /. rate)) in
  let per_call = match source with Fresh _ -> true | Pool _ -> false in
  let fire sched =
    match source with
    | Pool idle -> (
        match Queue.take_opt idle with
        | None -> Queue.push sched backlog
        | Some c -> (
            c.sched <- sched;
            c.got <- 0;
            c.expected <- (if c.expected >= 0 then c.expected else -1);
            Buffer.clear c.hdr;
            match send_req c with
            | () -> Hashtbl.replace busy c.fd c
            | exception Unix.Unix_error _ ->
                incr dead;
                (try Unix.close c.fd with Unix.Unix_error _ -> ())))
    | Fresh (port, cap) ->
        if Hashtbl.length busy >= cap then Queue.push sched backlog
        else begin
          match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
          | exception Unix.Unix_error _ -> incr dead
          | fd -> (
              Unix.set_nonblock fd;
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let c =
                { fd; expected = -1; got = 0; hdr = Buffer.create 128; sched;
                  connecting = true }
              in
              match
                Unix.connect fd
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
              with
              | () -> (
                  (* loopback connect completed synchronously *)
                  c.connecting <- false;
                  match send_req ~close:true c with
                  | () -> Hashtbl.replace busy fd c
                  | exception Unix.Unix_error _ ->
                      incr dead;
                      (try Unix.close fd with Unix.Unix_error _ -> ()))
              | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
                  (* poll for writability, then send *)
                  Hashtbl.replace busy fd c
              | exception Unix.Unix_error _ ->
                  incr dead;
                  (try Unix.close fd with Unix.Unix_error _ -> ()))
        end
  in
  let complete c now =
    Hashtbl.remove busy c.fd;
    incr completed;
    latencies := (now -. c.sched) *. 1000. :: !latencies;
    (match source with
    | Pool idle -> Queue.push c idle
    | Fresh _ -> ( try Unix.close c.fd with Unix.Unix_error _ -> ()));
    if not (Queue.is_empty backlog) then
      (* hand the freed slot straight to the oldest queued arrival *)
      fire (Queue.pop backlog)
  in
  let deadline = t_end +. drain_grace_s in
  let rec loop () =
    let now = Unix.gettimeofday () in
    if now >= deadline || (now >= t_end && Hashtbl.length busy = 0) then ()
    else begin
      (* release every arrival that is due *)
      while !next_arrival <= now && !next_arrival <= t_end do
        incr arrivals;
        fire !next_arrival;
        next_arrival :=
          !next_arrival +. (-.log (Random.State.float rng 1.) /. rate)
      done;
      let nbusy = Hashtbl.length busy in
      if nbusy = 0 && now < t_end then begin
        (* idle until the next arrival *)
        let dt = !next_arrival -. Unix.gettimeofday () in
        if dt > 0. then Unix.sleepf (min dt 0.01);
        loop ()
      end
      else begin
        let fds = Array.make nbusy Unix.stdin in
        let events = Array.make nbusy 1 in
        let i = ref 0 in
        Hashtbl.iter
          (fun fd c ->
            fds.(!i) <- fd;
            if c.connecting then events.(!i) <- 2;
            incr i)
          busy;
        let timeout_ms =
          let until = if now < t_end then min !next_arrival deadline else deadline in
          max 0 (min 50 (int_of_float (ceil ((until -. now) *. 1000.))))
        in
        let revs = Evloop.poll_fds fds events timeout_ms in
        let now = Unix.gettimeofday () in
        let die c =
          incr dead;
          Hashtbl.remove busy c.fd;
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          (* per-call: the failed call still frees a concurrency slot *)
          if per_call && not (Queue.is_empty backlog) then
            fire (Queue.pop backlog)
        in
        Array.iteri
          (fun j re ->
            if re <> 0 then
              match Hashtbl.find_opt busy fds.(j) with
              | None -> ()
              | Some c when c.connecting -> (
                  match Unix.getsockopt_error c.fd with
                  | Some _ -> die c
                  | None -> (
                      c.connecting <- false;
                      match send_req ~close:true c with
                      | () -> ()
                      | exception Unix.Unix_error _ -> die c))
              | Some c -> (
                  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
                  | 0 -> die c
                  | n ->
                      if c.expected < 0 then
                        Buffer.add_subbytes c.hdr scratch 0 n;
                      c.got <- c.got + n;
                      if response_complete c then complete c now
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
                      ()
                  | exception Unix.Unix_error _ -> die c))
          revs;
        loop ()
      end
    end
  in
  loop ();
  (* abandon whatever is still in flight past the grace period *)
  Hashtbl.iter
    (fun fd c ->
      ignore c;
      try Unix.close fd with Unix.Unix_error _ -> ())
    busy;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  {
    offered = rate;
    achieved = float_of_int !completed /. duration_s;
    arrivals = !arrivals;
    completed = !completed;
    dead = !dead;
    p50 = percentile lat 0.50;
    p95 = percentile lat 0.95;
    p99 = percentile lat 0.99;
  }

let sustainable t =
  t.arrivals = 0
  || (float_of_int t.completed >= sustain_frac *. float_of_int t.arrivals
     && t.p99 <= p99_cap_ms)

(* ------------------------------------------------------------------ *)
(* Rate ramp per (mode, connections)                                   *)
(* ------------------------------------------------------------------ *)

type workload = Keep_alive | Per_call

let wl_name = function Keep_alive -> "keep_alive" | Per_call -> "per_call"

type result = {
  mode : string;
  workload : string;
  conns_wanted : int;
  conns_open : int;
  best : trial option;  (** last sustainable trial *)
  first_failed : trial option;
}

let mode_name = function
  | Http.Event_loop -> "event_loop"
  | Http.Thread_per_conn -> "thread_per_conn"

let measure mode workload n =
  (* The event loop runs this near-zero-cost handler inline (sequential
     executor): the worker pool exists so multi-millisecond XQuery
     evaluation cannot block the loop, but handing a microsecond handler
     to another thread only measures runtime-lock churn.  Inline is the
     configuration that isolates what this bench compares — the cost of
     the connection machinery itself. *)
  let executor =
    match mode with
    | Http.Event_loop -> Some Xrpc_net.Executor.sequential
    | Http.Thread_per_conn -> None
  in
  let server =
    Http.serve ~mode ?executor ~backlog:1024 (fun ~path:_ _ -> "ok")
  in
  let pool = ref None in
  Fun.protect
    ~finally:(fun () ->
      (* close the client side of the tier's pool: the server reaps its
         side on EOF.  Without this a 10k tier leaks ~20k fds into the
         next measurement. *)
      (match !pool with
      | Some idle ->
          Queue.iter
            (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
            idle
      | None -> ());
      Http.shutdown server;
      await_fd_drain ())
    (fun () ->
      let idle, opened =
        match workload with
        | Keep_alive ->
            let idle = connect_tier (Http.port server) n in
            pool := Some idle;
            (Some idle, Queue.length idle)
        | Per_call -> (None, n)
      in
      let rng = Random.State.make [| seed; n |] in
      let trial rate =
        match idle with
        | Some idle ->
            top_up (Http.port server) idle opened;
            run_trial ~rng ~rate (Pool idle)
        | None -> run_trial ~rng ~rate (Fresh (Http.port server, opened))
      in
      (* warm-up: one request over every connection, so each one's fd,
         server-side state (and, for the baseline, its thread) exist
         before measurement starts *)
      ignore (trial (float_of_int (max 200 (opened / 2))));
      let label =
        Printf.sprintf "%s/%s" (mode_name mode) (wl_name workload)
      in
      let report ?(note = "") t =
        Printf.printf
          "    %-28s %6d conns  offered %8.0f  achieved %8.0f  p99 %7.1f \
           ms%s%s\n\
           %!"
          label opened t.offered t.achieved t.p99 note
          (if sustainable t then "" else "  <- not sustained")
      in
      let ok t = sustainable t && t.dead * 10 < max 1 opened in
      let retried = ref false in
      let rec ramp_up rate best =
        if rate > max_rate then (best, None)
        else begin
          let t = trial rate in
          report t;
          if ok t then ramp_up (rate *. ramp) (Some t)
          else if best = None && not !retried then begin
            (* a failure at the very first rung is usually a cold-start
               artifact, not a real ceiling — the previous measure's
               server threads are still winding down (fd drain cannot
               see them) — so settle and re-run the rung once *)
            retried := true;
            Unix.sleepf 1.0;
            ramp_up rate best
          end
          else (best, Some t)
        end
      in
      let best, first_failed = ramp_up start_rate None in
      (* the geometric ramp only brackets the ceiling — the reported
         maximum would otherwise be quantized to the ramp factor — so
         bisect the bracket to localize the true ceiling *)
      let best, first_failed =
        match (best, first_failed) with
        | Some b, Some f ->
            let rec bisect lo hi best first_failed k =
              if k = 0 then (best, first_failed)
              else begin
                let mid = (lo +. hi) /. 2. in
                let t = trial mid in
                report ~note:"  (bisect)" t;
                if ok t then bisect mid hi (Some t) first_failed (k - 1)
                else bisect lo mid best (Some t) (k - 1)
              end
            in
            bisect b.offered f.offered best first_failed 3
        | _ -> (best, first_failed)
      in
      { mode = mode_name mode; workload = wl_name workload; conns_wanted = n;
        conns_open = opened; best; first_failed })

(* ------------------------------------------------------------------ *)

let trial_json t =
  Printf.sprintf
    {|{ "offered_qps": %.0f, "achieved_qps": %.0f, "arrivals": %d, "completed": %d, "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f }|}
    t.offered t.achieved t.arrivals t.completed t.p50 t.p95 t.p99

let result_json r =
  Printf.sprintf
    "      { \"core\": %S, \"workload\": %S, \"connections\": %d, \
     \"connections_open\": %d,\n\
    \        \"max_sustainable\": %s,\n\
    \        \"first_unsustainable\": %s }"
    r.mode r.workload r.conns_wanted r.conns_open
    (match r.best with Some t -> trial_json t | None -> "null")
    (match r.first_failed with Some t -> trial_json t | None -> "null")

let () =
  (* 10k keep-alive connections need ~2x10k fds in this one process *)
  let fd_cap = Evloop.ensure_fd_capacity 65536 in
  let tiers =
    (* both endpoints of every connection live in this one process, so a
       tier of n connections costs ~2n fds plus a little overhead *)
    let cap = (fd_cap - 200) / 2 in
    List.filter_map
      (fun n ->
        if n <= cap then Some n
        else if cap * 10 >= n * 9 then begin
          Printf.printf "clamping %d-connection tier to %d (fd limit %d)\n%!" n
            cap fd_cap;
          Some cap
        end
        else begin
          Printf.printf
            "skipping %d-connection tier: fd limit %d is too low\n%!" n fd_cap;
          None
        end)
      tiers
  in
  Printf.printf
    "open-loop Poisson load: %gs per trial, ramp x%g from %.0f qps, seed %d\n%!"
    duration_s ramp start_rate seed;
  let results =
    List.concat_map
      (fun n ->
        Printf.printf "  %d connections:\n%!" n;
        (* baseline first within each workload: its worst case (thread
           pile-up) must not inherit a machine already warmed by the
           event loop.  Per-call only runs up to the 1k tier — in-flight
           calls never approach 10k slots with a sub-millisecond
           handler, so a bigger cap measures nothing new. *)
        List.concat_map
          (fun wl ->
            if wl = Per_call && n > 1000 then []
            else begin
              let thr = measure Http.Thread_per_conn wl n in
              let ev = measure Http.Event_loop wl n in
              [ thr; ev ]
            end)
          [ Keep_alive; Per_call ])
      tiers
  in
  let find core wl n =
    List.find_opt
      (fun r -> r.mode = core && r.workload = wl && r.conns_wanted = n)
      results
  in
  let qps r =
    match r with
    | Some { best = Some t; _ } -> t.achieved
    | _ -> 0.
  in
  Printf.printf "\n%12s  %12s  %16s  %14s  %10s  %10s  %10s\n" "connections"
    "workload" "core" "max qps" "p50 ms" "p95 ms" "p99 ms";
  List.iter
    (fun r ->
      match r.best with
      | Some t ->
          Printf.printf "%12d  %12s  %16s  %14.0f  %10.3f  %10.3f  %10.3f\n"
            r.conns_open r.workload r.mode t.achieved t.p50 t.p95 t.p99
      | None ->
          Printf.printf "%12d  %12s  %16s  %14s\n" r.conns_open r.workload
            r.mode "never sustained")
    results;
  List.iter
    (fun wl ->
      List.iter
        (fun n ->
          let e = qps (find "event_loop" wl n)
          and t = qps (find "thread_per_conn" wl n) in
          if t > 0. then
            Printf.printf
              "%d connections, %s: event loop sustains %.1fx the baseline\n" n
              wl (e /. t))
        tiers)
    [ "keep_alive"; "per_call" ];
  if json_out then
    write_file "BENCH_load.json"
      (Printf.sprintf
         "{\n\
         \  \"generator\": \"open-loop poisson; keep_alive = round-robin over \
          a live connection pool, per_call = one fresh connection per RPC \
          (SOAP-toolkit style)\",\n\
         \  \"trial_seconds\": %g,\n\
         \  \"sustainable\": \"achieved >= %g x offered and p99 <= %g ms\",\n\
         \  \"seed\": %d,\n\
         \  \"results\": [\n%s\n  ]\n}\n"
         duration_s sustain_frac p99_cap_ms seed
         (String.concat ",\n" (List.map result_json results)));
  (* The PR's acceptance bar: >= 2x the baseline at 1k connections, on
     the per-call workload — XRPC speaks one SOAP POST per RPC, so the
     connection-per-call shape is the protocol's native load, and it is
     where thread-per-connection pays a thread spawn per call. *)
  match find "event_loop" "per_call" 1000 with
  | Some _ ->
      let e = qps (find "event_loop" "per_call" 1000)
      and t = qps (find "thread_per_conn" "per_call" 1000) in
      if t > 0. && e < 2. *. t then begin
        Printf.eprintf
          "FAIL: event loop %.0f qps < 2x baseline %.0f qps at 1k connections \
           (per-call)\n"
          e t;
        exit 1
      end
  | None -> ()
