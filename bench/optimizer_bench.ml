(* Strategy-optimizer benchmark: does the Tables 2-4 cost model pick the
   strategy that actually wins?

   Reproduces the paper's Section 6 crossover points on deterministic
   Simnet (charge_cpu = false: measured time is the network model only, so
   every run is bit-identical):

   1. Q7 strategy crossover — for each setting (the paper's 6-of-4875
      selectivity, an everything-matches workload where predicate pushdown
      overtakes the semi-join, a high-latency network that punishes
      execution relocation's extra round trip), seed the cost model from
      live probes (document sizes, a profiled Q_B1 probe via
      Client.measure_site, the baseline result size), let it choose, then
      measure all four strategies and check the choice matches the
      measured-fastest.  Disagreement is a hard failure (exit 1).

   2. Table 2 crossover — the distributed semi-join run under
      XRPC_FORCE_STRATEGY=singles (one message per call) vs bulk, at two
      loop sizes; the model's estimate_rpc must agree with the measured
      ordering.

   Each measured run is fed back with Cost.record_run, so the JSON also
   reports the calibration EMA the adaptive feedback loop ends up with.

   Writes BENCH_optimizer.json with `--json`. *)

module Cluster = Xrpc_core.Cluster
module Cost = Xrpc_core.Cost
module Strategies = Xrpc_core.Strategies
module Client = Xrpc_core.Xrpc_client
module Peer = Xrpc_peer.Peer
module Wrapper = Xrpc_peer.Wrapper
module Database = Xrpc_peer.Database
module Simnet = Xrpc_net.Simnet
module Xmark = Xrpc_workloads.Xmark
module Xdm = Xrpc_xml.Xdm

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

type setting = {
  s_name : string;
  s_scale : Xmark.scale;
  s_latency_ms : float;
  s_bandwidth : float;
}

(* paper-shaped selectivity (6 matching buyers), an everything-matches
   workload, and a slow network; --quick trims document sizes *)
let settings =
  let scale p a m = { Xmark.persons = p; auctions = a; matches = m } in
  if quick then
    [
      { s_name = "paper-selectivity"; s_scale = scale 50 400 6;
        s_latency_ms = 0.6; s_bandwidth = 125_000. };
      { s_name = "all-match"; s_scale = scale 120 80 80;
        s_latency_ms = 0.6; s_bandwidth = 125_000. };
      { s_name = "high-latency"; s_scale = scale 50 400 6;
        s_latency_ms = 40.; s_bandwidth = 125_000. };
    ]
  else
    [
      { s_name = "paper-selectivity"; s_scale = scale 250 4875 6;
        s_latency_ms = 0.6; s_bandwidth = 125_000. };
      { s_name = "all-match"; s_scale = scale 300 200 200;
        s_latency_ms = 0.6; s_bandwidth = 125_000. };
      { s_name = "high-latency"; s_scale = scale 250 4875 6;
        s_latency_ms = 40.; s_bandwidth = 125_000. };
      { s_name = "slow-link"; s_scale = scale 250 4875 6;
        s_latency_ms = 0.6; s_bandwidth = 12_500. };
    ]

let q7 =
  {
    Strategies.local_doc = "persons.xml";
    remote_uri = "xrpc://B";
    remote_doc = "auctions.xml";
    module_ns = "functions_b";
    module_at = "http://example.org/b.xq";
  }

(* A (native) + B (wrapper, join detection on), as in bench/main.ml's
   Table 4 — charge_cpu=false makes the virtual clock purely model-driven *)
let build_cluster setting =
  let sim =
    {
      Simnet.latency_ms = setting.s_latency_ms;
      bandwidth_bytes_per_ms = setting.s_bandwidth;
      charge_cpu = false;
    }
  in
  let cluster = Cluster.create ~config:sim ~names:[ "A" ] () in
  let a = Cluster.peer cluster "A" in
  let b = Cluster.add_wrapper cluster ~join_detect:true "B" in
  b.Wrapper.transport <- Some (Simnet.transport (Cluster.net cluster));
  let persons_xml = Xmark.persons ~count:setting.s_scale.Xmark.persons () in
  let auctions_xml =
    Xmark.auctions ~count:setting.s_scale.Xmark.auctions
      ~matches:setting.s_scale.Xmark.matches
      ~persons_count:setting.s_scale.Xmark.persons ()
  in
  Database.add_doc_xml a.Peer.db "persons.xml" persons_xml;
  Database.add_doc_xml b.Wrapper.db "auctions.xml" auctions_xml;
  let module_src = Strategies.functions_b q7 in
  Cluster.register_module_everywhere cluster ~uri:q7.Strategies.module_ns
    ~location:q7.Strategies.module_at module_src;
  (cluster, a, String.length persons_xml, String.length auctions_xml)

(* Seed the site statistics the way a live optimizer would: known document
   sizes and cardinalities, a profiled Q_B1 probe for the pushdown payload
   (Client.measure_site), and the baseline result size. *)
let probe_site cluster setting ~persons_bytes ~auctions_bytes ~result_bytes =
  let client = Cluster.client cluster in
  let site0 =
    {
      Cost.default_site with
      Cost.outer_rows = setting.s_scale.Xmark.persons;
      local_doc_bytes = persons_bytes;
      remote_doc_bytes = auctions_bytes;
      remote_rows = setting.s_scale.Xmark.auctions;
      match_rows = setting.s_scale.Xmark.matches;
      result_bytes;
    }
  in
  let site, _profile =
    Client.measure_site client ~dest:"xrpc://B" ~site:site0
      ~module_uri:q7.Strategies.module_ns ~location:q7.Strategies.module_at
      ~fn:"Q_B1" []
  in
  site

let run_setting setting =
  Printf.printf "\n%s (persons=%d auctions=%d matches=%d latency=%.1fms \
                 bw=%.0fB/ms)\n"
    setting.s_name setting.s_scale.Xmark.persons
    setting.s_scale.Xmark.auctions setting.s_scale.Xmark.matches
    setting.s_latency_ms setting.s_bandwidth;
  (* every setting is its own federation: the feedback EMA is a property
     of one deployment's network, so it must not leak across settings
     (a ratio learned at 0.6 ms latency is wrong at 40 ms) *)
  Cost.reset_calibration ();
  let cluster, a, persons_bytes, auctions_bytes = build_cluster setting in
  let net =
    {
      Cost.latency_ms = setting.s_latency_ms;
      bandwidth_bytes_per_ms = setting.s_bandwidth;
    }
  in
  (* baseline (also the reference answer): plain data shipping *)
  let baseline =
    Peer.query_seq a (Strategies.query ~local_uri:"xrpc://A" q7
                        Strategies.Data_shipping)
  in
  let baseline_display = Xdm.to_display baseline in
  let site =
    probe_site cluster setting ~persons_bytes ~auctions_bytes
      ~result_bytes:(String.length baseline_display)
  in
  let decision = Cost.choose net Cost.zero_cpu site in
  (* measure every strategy on the virtual clock *)
  let measured =
    List.map
      (fun strategy ->
        Cluster.reset_stats cluster;
        let query = Strategies.query ~local_uri:"xrpc://A" q7 strategy in
        let result = Peer.query_seq a query in
        let stats = Cluster.stats cluster in
        if Xdm.to_display result <> baseline_display then
          failwith
            (Printf.sprintf "%s returned a different answer than data shipping"
               (Strategies.name strategy));
        (strategy, stats.Simnet.network_ms, stats.Simnet.messages,
         stats.Simnet.bytes_sent + stats.Simnet.bytes_received))
      Strategies.all
  in
  (* adaptive feedback: every measured run calibrates the model *)
  List.iter
    (fun (strategy, ms, _, _) ->
      let est = Cost.total (Cost.estimate net Cost.zero_cpu site strategy) in
      ignore (Cost.record_run strategy ~estimated_ms:est ~measured_ms:ms))
    measured;
  let fastest, fastest_ms, _, _ =
    List.fold_left
      (fun (bs, bm, bmsg, bb) (s, m, msg, b) ->
        if m < bm then (s, m, msg, b) else (bs, bm, bmsg, bb))
      (match measured with
      | x :: _ -> x
      | [] -> assert false)
      measured
  in
  let chosen = decision.Cost.chosen.Cost.strategy in
  Printf.printf "%-22s | %12s | %12s | %5s %10s\n" "" "est (model)"
    "measured" "msgs" "bytes";
  List.iter
    (fun (strategy, ms, msgs, bytes) ->
      let est = Cost.total (Cost.estimate net Cost.zero_cpu site strategy) in
      Printf.printf "%-22s | %10.3fms | %10.3fms | %5d %10d%s\n"
        (Strategies.name strategy) est ms msgs bytes
        (if strategy = chosen then "  <- chosen" else ""))
    measured;
  (* with the feedback folded in, the calibrated re-choice must agree too *)
  let recheck = Cost.choose net Cost.zero_cpu site in
  let agree =
    chosen = fastest && recheck.Cost.chosen.Cost.strategy = fastest
  in
  Printf.printf "chosen=%s calibrated=%s fastest=%s (%.3fms) -> %s\n"
    (Strategies.short_name chosen)
    (Strategies.short_name recheck.Cost.chosen.Cost.strategy)
    (Strategies.short_name fastest)
    fastest_ms
    (if agree then "AGREE" else "DISAGREE");
  (setting, site, measured, decision, fastest, agree)

(* ------------------------------------------------------------------ *)
(* Table 2: Bulk RPC vs one-at-a-time on the semi-join                 *)
(* ------------------------------------------------------------------ *)

let run_table2 () =
  print_endline "\nTable 2 crossover: Bulk RPC vs one-at-a-time (semi-join)";
  let loops = if quick then [ 10; 50 ] else [ 10; 250 ] in
  let rows =
    List.map
      (fun n ->
        let setting =
          { s_name = Printf.sprintf "n=%d" n;
            s_scale = { Xmark.persons = n; auctions = 40; matches = 6 };
            s_latency_ms = 0.6; s_bandwidth = 125_000. }
        in
        let measure mode =
          let cluster, a, _, _ = build_cluster setting in
          Unix.putenv "XRPC_FORCE_STRATEGY" mode;
          Fun.protect
            ~finally:(fun () -> Unix.putenv "XRPC_FORCE_STRATEGY" "")
            (fun () ->
              Cluster.reset_stats cluster;
              let r =
                Peer.query_seq a
                  (Strategies.query ~local_uri:"xrpc://A" q7
                     Strategies.Distributed_semijoin)
              in
              let stats = Cluster.stats cluster in
              (Xdm.to_display r, stats.Simnet.network_ms,
               stats.Simnet.messages))
        in
        let bulk_disp, bulk_ms, bulk_msgs = measure "bulk" in
        let singles_disp, singles_ms, singles_msgs = measure "singles" in
        if bulk_disp <> singles_disp then
          failwith "bulk and one-at-a-time answers differ";
        let est_bulk, est_singles =
          Cost.estimate_rpc Cost.default_net ~ncalls:n ~bytes_per_call:128 ()
        in
        Printf.printf
          "  n=%-4d bulk %8.3fms (%d msgs)  singles %8.3fms (%d msgs)  \
           measured %.1fx, model %.1fx\n"
          n bulk_ms bulk_msgs singles_ms singles_msgs
          (singles_ms /. bulk_ms) (est_singles /. est_bulk);
        if not (bulk_ms <= singles_ms && est_bulk <= est_singles) then
          failwith "Table 2 ordering violated (bulk should win)";
        (n, bulk_ms, singles_ms, bulk_msgs, singles_msgs, est_bulk,
         est_singles))
      loops
  in
  rows

(* ------------------------------------------------------------------ *)

let () =
  print_endline "Strategy optimizer: model choice vs measured winner";
  print_endline "===================================================";
  let results = List.map run_setting settings in
  let table2 = run_table2 () in
  let all_agree = List.for_all (fun (_, _, _, _, _, a) -> a) results in
  print_newline ();
  print_string (Cost.calibration_text ());
  Printf.printf "verdict: %s\n"
    (if all_agree then "optimizer picks the measured-fastest strategy at \
                        every setting"
     else "OPTIMIZER/MEASUREMENT DISAGREEMENT");
  if json_out then begin
    let setting_json (setting, site, measured, decision, fastest, agree) =
      let strat_json (strategy, ms, msgs, bytes) =
        let net =
          { Cost.latency_ms = setting.s_latency_ms;
            bandwidth_bytes_per_ms = setting.s_bandwidth }
        in
        let est = Cost.total (Cost.estimate net Cost.zero_cpu site strategy) in
        Printf.sprintf
          "{\"strategy\":\"%s\",\"estimated_ms\":%.4f,\"measured_ms\":%.4f,\"messages\":%d,\"bytes\":%d}"
          (Strategies.short_name strategy)
          est ms msgs bytes
      in
      Printf.sprintf
        "    {\"setting\":\"%s\",\"persons\":%d,\"auctions\":%d,\"matches\":%d,\"latency_ms\":%.2f,\"bandwidth_bytes_per_ms\":%.0f,\"chosen\":\"%s\",\"fastest\":\"%s\",\"agree\":%b,\"strategies\":[%s]}"
        setting.s_name setting.s_scale.Xmark.persons
        setting.s_scale.Xmark.auctions setting.s_scale.Xmark.matches
        setting.s_latency_ms setting.s_bandwidth
        (Strategies.short_name decision.Cost.chosen.Cost.strategy)
        (Strategies.short_name fastest)
        agree
        (String.concat "," (List.map strat_json measured))
    in
    let table2_json (n, bulk_ms, singles_ms, bulk_msgs, singles_msgs,
                     est_bulk, est_singles) =
      Printf.sprintf
        "    {\"ncalls\":%d,\"bulk_ms\":%.4f,\"singles_ms\":%.4f,\"bulk_messages\":%d,\"singles_messages\":%d,\"model_bulk_ms\":%.4f,\"model_singles_ms\":%.4f}"
        n bulk_ms singles_ms bulk_msgs singles_msgs est_bulk est_singles
    in
    let calib_json s =
      Printf.sprintf "    {\"strategy\":\"%s\",\"factor\":%.4f,\"runs\":%d}"
        (Strategies.short_name s) (Cost.calibration s) (Cost.runs s)
    in
    write_file "BENCH_optimizer.json"
      (Printf.sprintf
         "{\n\
         \  \"all_agree\": %b,\n\
         \  \"settings\": [\n%s\n  ],\n\
         \  \"table2_bulk_vs_singles\": [\n%s\n  ],\n\
         \  \"calibration\": [\n%s\n  ]\n\
          }\n"
         all_agree
         (String.concat ",\n" (List.map setting_json results))
         (String.concat ",\n" (List.map table2_json table2))
         (String.concat ",\n" (List.map calib_json Strategies.all)))
  end;
  if not all_agree then exit 1
