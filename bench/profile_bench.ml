(* Profiling-overhead benchmark: what does the PR-5 query profiler cost?

   Two measurements:

   1. Algebra kernels with profiling off vs on, with the
      alternating-minimum discipline the obs benchmark established
      (interleave off/on rounds, keep the per-mode minimum, so a GC
      pause in one round cannot masquerade as instrumentation cost).
      Off must stay at the PR-3 baseline — Ops.timed is gated on a
      single flag test — and on adds two clock reads plus one record_op
      merge per kernel call.
   2. End-to-end 2-peer distributed queries, plain vs under
      Cluster.profiled (plan nodes, per-destination byte accounting, and
      the remote phase breakdown riding the serverProfile attribute),
      reported as the median of paired off/on batch ratios — see the
      comment at [median] below.

   Targets: off within noise of the baseline (the off number IS the
   baseline — profiling off takes the same code path PR-4 measured), on
   around 5% on this worst case (a ~0.2 ms in-process round trip; the
   fixed ~10 µs/query cost disappears against real network latency).
   Writes BENCH_profile.json with `--json`. *)

open Xrpc_xml
module Table = Xrpc_algebra.Table
module Ops = Xrpc_algebra.Ops
module Profile = Xrpc_obs.Profile
module Trace = Xrpc_obs.Trace
module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Simnet = Xrpc_net.Simnet
module Testmod = Xrpc_workloads.Testmod

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv
let rounds = if quick then 3 else 5

let now_ms () = Unix.gettimeofday () *. 1000.

(* adaptive timer: warm once, then repeat until ~50 ms of samples *)
let time_ns f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = now_ms () in
  let reps = ref 0 in
  while now_ms () -. t0 < 50. && !reps < 1000 do
    ignore (Sys.opaque_identity (f ()));
    incr reps
  done;
  (now_ms () -. t0) *. 1e6 /. float_of_int !reps

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* 1. Kernel overhead                                                  *)
(* ------------------------------------------------------------------ *)

let mk n =
  Table.make [ "iter"; "pos"; "item" ]
    (List.init n (fun i ->
         [ Table.Int ((i mod max 1 (n / 5)) + 1); Table.Int 1;
           Table.Item (Xdm.int (i mod 97)) ]))

let kernel_rows () =
  let t = mk 1000 in
  let kernels =
    [
      ("equi_join", fun () -> ignore (Ops.equi_join t "iter" t "iter"));
      ("distinct", fun () -> ignore (Ops.distinct t));
      ( "rank",
        fun () ->
          ignore
            (Ops.rank t ~new_col:"rk" ~order_by:[ "item" ] ~partition:"iter" ())
      );
      ("merge_union", fun () -> ignore (Ops.merge_union_on_iter [ t; t ]));
    ]
  in
  List.map
    (fun (name, f) ->
      let off = ref infinity and on = ref infinity in
      for _ = 1 to rounds do
        off := Float.min !off (time_ns f);
        let (), _profile =
          Profile.profiled ~label:"bench" (fun () ->
              Profile.with_node "bench" (fun () ->
                  on := Float.min !on (time_ns f)))
        in
        ()
      done;
      let off = !off and on = !on in
      let pct = (on -. off) /. off *. 100. in
      Printf.printf
        "%-12s 1000 rows: %10.0f ns off  %10.0f ns on  (%+5.1f%%)\n" name off
        on pct;
      (name, off, on, pct))
    kernels

(* ------------------------------------------------------------------ *)
(* 2. End-to-end distributed queries                                   *)
(* ------------------------------------------------------------------ *)

let sim = { Simnet.default_config with Simnet.charge_cpu = false }

let mk_cluster () =
  let cluster = Cluster.create ~config:sim ~names:[ "x"; "y"; "z" ] () in
  Cluster.register_module_everywhere cluster ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  cluster

(* tst:payload gives each request real server-side exec work and a
   multi-kB response, like the §3.3 micro-benchmarks: the profiler's
   fixed per-message cost (profile attr on the request, serverProfile attr
   on the reply, byte accounting) is measured against representative
   message handling, not against an empty ping *)
let query =
  {|import module namespace t="test" at "http://x.example.org/test.xq";
for $d in ("xrpc://y", "xrpc://z")
return execute at {$d} {t:payload(100)}|}

(* many small alternating batches beat few large ones: the per-query
   profiling cost is a handful of µs on a ~200 µs query, far below the
   batch-to-batch scheduler/GC jitter, so the minimum needs lots of
   draws to converge for each mode *)
let queries = if quick then 20 else 30
let e2e_rounds = if quick then 3 else 15

(* average ms per query over one batch; [profiled] wraps every query in
   its own Cluster.profiled scope, the worst case (a profile allocated
   and torn down per query) *)
let run_batch cluster x profiled =
  let t0 = now_ms () in
  for _ = 1 to queries do
    if profiled then
      ignore (Cluster.profiled cluster (fun () -> Peer.query_seq x query))
    else ignore (Peer.query_seq x query)
  done;
  (now_ms () -. t0) /. float_of_int queries

(* the overhead is a handful of µs on a ~200 µs query — well inside
   batch-to-batch scheduler/GC jitter, which is also *correlated* within
   a batch, so min-of-batches converges slowly.  Instead each round times
   an off and an on batch back to back on the same warm cluster and
   reports the overhead as the MEDIAN of the per-round ratios: each
   ratio mostly cancels that round's ambient load, and the median
   discards the rounds a GC major or scheduler blip lands in. *)
let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let () =
  print_endline "Profiling overhead: off must match the baseline, on < 5%";
  print_endline "========================================================";
  let kernels = kernel_rows () in
  let avg_pct =
    List.fold_left (fun a (_, _, _, p) -> a +. p) 0. kernels
    /. float_of_int (List.length kernels)
  in
  Printf.printf "average kernel overhead with profiling on: %+.1f%% (target < 5%%)\n"
    avg_pct;
  let e2e_cluster = mk_cluster () in
  let e2e_x = Cluster.peer e2e_cluster "x" in
  ignore (Peer.query_seq e2e_x query);
  (* warm the function caches *)
  let pcts = ref [] and e2e_off = ref infinity and e2e_on = ref infinity in
  for _ = 1 to e2e_rounds do
    let o = run_batch e2e_cluster e2e_x false in
    let p = run_batch e2e_cluster e2e_x true in
    e2e_off := Float.min !e2e_off o;
    e2e_on := Float.min !e2e_on p;
    pcts := ((p -. o) /. o *. 100.) :: !pcts
  done;
  Trace.use_wall_clock ();
  let e2e_off = !e2e_off and e2e_on = !e2e_on in
  let e2e_pct = median !pcts in
  Printf.printf
    "end-to-end 2-peer query: %8.3f ms off  %8.3f ms on  (median overhead %+5.1f%%)\n"
    e2e_off e2e_on e2e_pct;
  (* one profiled run, rendered — the artifact :profile prints *)
  let cluster = mk_cluster () in
  let x = Cluster.peer cluster "x" in
  ignore (Peer.query_seq x query);
  let _, profile =
    Cluster.profiled cluster ~label:"2-peer ping" (fun () ->
        Peer.query_seq x query)
  in
  Trace.use_wall_clock ();
  Printf.printf "\nprofile of one distributed query over peers y and z:\n%s"
    (Profile.render profile);
  if json_out then
    write_file "BENCH_profile.json"
      (Printf.sprintf
         "{\n\
         \  \"kernel_overhead\": {\n%s\n  },\n\
         \  \"kernel_overhead_avg_pct\": %.2f,\n\
         \  \"end_to_end\": { \"off_ms\": %.4f, \"on_ms\": %.4f, \"overhead_pct\": %.2f },\n\
         \  \"target_on_overhead_pct\": 5.0,\n\
         \  \"sample_profile\": %s\n\
          }\n"
         (String.concat ",\n"
            (List.map
               (fun (name, off, on, pct) ->
                 Printf.sprintf
                   "    %S: { \"off_ns\": %.0f, \"on_ns\": %.0f, \"overhead_pct\": %.2f }"
                   name off on pct)
               kernels))
         avg_pct e2e_off e2e_on e2e_pct
         (Profile.to_json profile))
