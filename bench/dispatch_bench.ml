(* Dispatch-engine benchmark: wall-clock speedup of parallel multi-peer
   fan-out over sequential, on real HTTP.

   N loopback HTTP servers each charge a fixed service time per request
   (a stand-in for remote query execution + WAN latency, which the
   thread-per-connection server overlaps across peers).  One fan-out
   round sends one request to every peer and waits for all responses:
   sequentially that costs ~N x service_ms, through a pool executor it
   should cost ~service_ms + overhead.  The §3.2 claim this preserves:
   parallel dispatch charges the maximum completion time across peers,
   not the sum.

   Writes BENCH_dispatch.json with `--json`; `--quick` trims rounds. *)

module Http = Xrpc_net.Http
module Executor = Xrpc_net.Executor
module Transport = Xrpc_net.Transport

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv

let service_ms = 25.
let rounds = if quick then 3 else 7
let peer_counts = [ 2; 4; 8 ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

let median samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  a.(Array.length a / 2)

let with_servers n f =
  let servers =
    List.init n (fun _ ->
        Http.serve (fun ~path:_ body ->
            Thread.delay (service_ms /. 1000.);
            body))
  in
  Fun.protect
    ~finally:(fun () -> List.iter Http.shutdown servers)
    (fun () ->
      f
        (List.map
           (fun s -> Printf.sprintf "xrpc://127.0.0.1:%d" (Http.port s))
           servers))

(* median wall-clock ms for one fan-out round over [dests] *)
let measure ~executor dests =
  let transport = Http.transport ~executor ~keep_alive:true () in
  let bodies i = List.map (fun d -> (d, "ping" ^ string_of_int i)) dests in
  (* warm-up: open (and pool) every connection, fill caches *)
  ignore (transport.Transport.send_parallel (bodies 0));
  median
    (List.init rounds (fun i ->
         let t0 = Unix.gettimeofday () in
         let rs = transport.Transport.send_parallel (bodies (i + 1)) in
         let dt = (Unix.gettimeofday () -. t0) *. 1000. in
         List.iter2
           (fun (_, sent) got -> if sent <> got then failwith "bad echo")
           (bodies (i + 1)) rs;
         dt))

type row = { peers : int; seq_ms : float; par_ms : float; speedup : float }

let () =
  Printf.printf "dispatch fan-out: %g ms service time per request, %d rounds\n"
    service_ms rounds;
  Printf.printf "%6s  %10s  %10s  %8s\n" "peers" "seq ms" "pool ms" "speedup";
  let rows =
    List.map
      (fun n ->
        with_servers n (fun dests ->
            let seq_ms = measure ~executor:Executor.sequential dests in
            let pool = Executor.pool n in
            let par_ms = measure ~executor:pool dests in
            Executor.shutdown pool;
            let speedup = seq_ms /. par_ms in
            Printf.printf "%6d  %10.2f  %10.2f  %7.2fx\n%!" n seq_ms par_ms
              speedup;
            { peers = n; seq_ms; par_ms; speedup }))
      peer_counts
  in
  (* the PR's acceptance bar: >= 2x at 4 peers *)
  (match List.find_opt (fun r -> r.peers = 4) rows with
  | Some r when r.speedup < 2. ->
      Printf.eprintf "FAIL: 4-peer speedup %.2fx below the 2x bar\n" r.speedup;
      exit 1
  | _ -> ());
  if json_out then
    write_file "BENCH_dispatch.json"
      (Printf.sprintf
         "{\n  \"service_ms\": %g,\n  \"rounds\": %d,\n  \"fan_out\": {\n%s\n  }\n}\n"
         service_ms rounds
         (String.concat ",\n"
            (List.map
               (fun r ->
                 Printf.sprintf
                   "    \"%d\": { \"sequential_ms\": %.2f, \"pool_ms\": %.2f, \"speedup\": %.2f }"
                   r.peers r.seq_ms r.par_ms r.speedup)
               rows)))
