(* Telemetry-overhead benchmark: what does the health plane cost on the
   serving hot path?

   Two measurements:

   1. Micro: ns/op for the windowed record primitives themselves —
      Window.observe / Window.incr / Slo.record — with recording on vs
      off (off is one flag test; on is a clock read, a mutex, and a few
      array stores into the preallocated rings).  Alternating-minimum
      discipline: interleave off/on rounds and keep each mode's minimum,
      so a GC pause in one round cannot masquerade as instrumentation
      cost.

   2. End-to-end: the in-process SOAP serve path (Peer.handle_raw over
      deterministic Simnet, the same path the event loop's workers run)
      with Window.set_enabled off vs on.  On this path "on" buys the
      per-request SLO record (scope+endpoint lookup, latency histogram,
      request/error counters on both tiers).  Reported as the median of
      paired off/on batch ratios — the PR-5 method: each ratio cancels
      that round's ambient load, the median discards the rounds a GC
      major lands in.

   Gate: the end-to-end median overhead must stay under 5% — the alias
   run exits nonzero past the gate.  Writes BENCH_telemetry.json with
   `--json`. *)

module Window = Xrpc_obs.Window
module Slo = Xrpc_obs.Slo
module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Simnet = Xrpc_net.Simnet
module Testmod = Xrpc_workloads.Testmod

let quick = Array.exists (( = ) "--quick") Sys.argv
let json_out = Array.exists (( = ) "--json") Sys.argv
let rounds = if quick then 3 else 7

let now_ms () = Unix.gettimeofday () *. 1000.

(* adaptive timer: warm once, then repeat until ~50 ms of samples *)
let time_ns f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = now_ms () in
  let reps = ref 0 in
  while now_ms () -. t0 < 50. && !reps < 2_000_000 do
    ignore (Sys.opaque_identity (f ()));
    incr reps
  done;
  (now_ms () -. t0) *. 1e6 /. float_of_int !reps

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* 1. Record-primitive cost                                            *)
(* ------------------------------------------------------------------ *)

let micro_rows () =
  let h = Window.histogram "bench.lat_ms" in
  let c = Window.counter "bench.reqs" in
  let prims =
    [
      ("window.observe", fun () -> Window.observe h 5.);
      ("window.incr", fun () -> Window.incr c);
      ( "slo.record",
        fun () ->
          Slo.record ~scope:"bench" ~endpoint:"e" ~dur_ms:5. ~error:false ()
      );
    ]
  in
  List.map
    (fun (name, f) ->
      let off = ref infinity and on = ref infinity in
      for _ = 1 to rounds do
        Window.set_enabled false;
        off := Float.min !off (time_ns f);
        Window.set_enabled true;
        on := Float.min !on (time_ns f)
      done;
      Window.set_enabled true;
      Printf.printf "%-16s %8.1f ns off  %8.1f ns on\n" name !off !on;
      (name, !off, !on))
    prims

(* ------------------------------------------------------------------ *)
(* 2. End-to-end serve path                                            *)
(* ------------------------------------------------------------------ *)

let sim = { Simnet.default_config with Simnet.charge_cpu = false }

(* one loop-lifted Bulk RPC message per query: x ships 10 echoVoid
   applications to y in one request, y's handle_raw parses, executes and
   replies — with telemetry on, y also records the SLO sample *)
let query = Testmod.echo_void_query ~dest:"xrpc://y" ~iterations:10
let queries = if quick then 30 else 50
let e2e_rounds = if quick then 7 else 21

let run_batch x enabled =
  Window.set_enabled enabled;
  let t0 = now_ms () in
  for _ = 1 to queries do
    ignore (Peer.query_seq x query)
  done;
  Window.set_enabled true;
  (now_ms () -. t0) /. float_of_int queries

let () =
  print_endline "Telemetry overhead: windowed recording off vs on, gate < 5%";
  print_endline "===========================================================";
  let micro = micro_rows () in
  let cluster = Cluster.create ~config:sim ~names:[ "x"; "y" ] () in
  Cluster.register_module_everywhere cluster ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  let x = Cluster.peer cluster "x" in
  ignore (Peer.query_seq x query);
  (* warm the plan caches *)
  let pcts = ref [] and off = ref infinity and on = ref infinity in
  for _ = 1 to e2e_rounds do
    let o = run_batch x false in
    let p = run_batch x true in
    off := Float.min !off o;
    on := Float.min !on p;
    pcts := ((p -. o) /. o *. 100.) :: !pcts
  done;
  let off = !off and on = !on in
  let pct = median !pcts in
  Printf.printf
    "end-to-end serve path: %8.4f ms off  %8.4f ms on  (median overhead \
     %+5.2f%%, gate 5%%)\n"
    off on pct;
  if json_out then
    write_file "BENCH_telemetry.json"
      (Printf.sprintf
         "{\n\
         \  \"record_primitives_ns\": {\n%s\n  },\n\
         \  \"end_to_end\": { \"off_ms\": %.4f, \"on_ms\": %.4f, \
          \"overhead_pct\": %.2f },\n\
         \  \"gate_overhead_pct\": 5.0,\n\
         \  \"gate_passed\": %b\n\
          }\n"
         (String.concat ",\n"
            (List.map
               (fun (name, o, n) ->
                 Printf.sprintf "    %S: { \"off\": %.1f, \"on\": %.1f }" name
                   o n)
               micro))
         off on pct (pct < 5.));
  if pct >= 5. then begin
    Printf.printf "FAIL: telemetry overhead %.2f%% >= 5%% gate\n" pct;
    exit 1
  end
