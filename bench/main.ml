(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§3.1, §3.3, Table 2, Table 3, §5 Table 4, Figures 1/2), plus
   Bechamel micro-benchmarks for the CPU-bound building blocks.

   Methodology (see DESIGN.md / EXPERIMENTS.md): CPU costs are measured for
   real on this machine; network costs are charged by the deterministic
   Simnet model (latency + bytes/bandwidth, parallel dispatch = max); the
   ~130 ms MonetDB module-translation cost of §3.3 is modeled through the
   function-cache compile hook.  Absolute numbers differ from the paper's
   2007 testbed; the comparisons within each table are what must (and do)
   reproduce. *)

open Xrpc_xml
module Cluster = Xrpc_core.Cluster
module Strategies = Xrpc_core.Strategies
module Peer = Xrpc_peer.Peer
module Wrapper = Xrpc_peer.Wrapper
module Database = Xrpc_peer.Database
module Func_cache = Xrpc_peer.Func_cache
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Filmdb = Xrpc_workloads.Filmdb
module Testmod = Xrpc_workloads.Testmod
module Xmark = Xrpc_workloads.Xmark
module Message = Xrpc_soap.Message

let quick = Array.exists (( = ) "--quick") Sys.argv
let only_tables = Array.exists (( = ) "--tables") Sys.argv
let skip_micro = Array.exists (( = ) "--no-micro") Sys.argv || quick
let json_out = Array.exists (( = ) "--json") Sys.argv

let now_ms () = Unix.gettimeofday () *. 1000.

(* adaptive timer: warm once, then repeat until ~50 ms of samples (a single
   rep suffices for the slow reference kernels at 10k rows) *)
let time_ns f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = now_ms () in
  let reps = ref 0 in
  while now_ms () -. t0 < 50. && !reps < 1000 do
    ignore (Sys.opaque_identity (f ()));
    incr reps
  done;
  (now_ms () -. t0) *. 1e6 /. float_of_int !reps

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ================================================================== *)
(* Table 2: XRPC performance — loop-lifted vs one-at-a-time,           *)
(*          function cache vs no function cache                        *)
(* ================================================================== *)

(* the paper's measured MonetDB module translation cost (§3.3) *)
let modeled_compile_ms = 130.

let table2 () =
  header
    "Table 2: XRPC performance (ms): loop-lifted vs one-at-a-time; function cache vs no function cache";
  Printf.printf
    "(echoVoid over XRPC; network modeled at %.1f ms one-way latency; module\n\
    \ compilation modeled at %.0f ms per cache miss, the paper's MonetDB figure)\n"
    Simnet.default_config.Simnet.latency_ms modeled_compile_ms;
  let run ~bulk ~warm_cache ~iterations =
    let cluster = Cluster.create ~names:[ "x"; "y" ] () in
    let x = Cluster.peer cluster "x" and y = Cluster.peer cluster "y" in
    Peer.register_module y ~uri:Testmod.module_ns ~location:Testmod.module_at
      Testmod.test_module;
    Peer.register_module x ~uri:Testmod.module_ns ~location:Testmod.module_at
      Testmod.test_module;
    x.Peer.config <- { x.Peer.config with Peer.bulk_rpc = bulk };
    let compile_penalty = ref 0. in
    y.Peer.func_cache.Func_cache.on_compile <-
      (fun _ -> compile_penalty := !compile_penalty +. modeled_compile_ms);
    let query = Testmod.echo_void_query ~dest:"xrpc://y" ~iterations in
    if warm_cache then begin
      (* prime the server-side function cache, then discard the costs *)
      ignore
        (Peer.query_seq x (Testmod.echo_void_query ~dest:"xrpc://y" ~iterations:1));
      compile_penalty := 0.
    end;
    Cluster.reset_stats cluster;
    let t0 = now_ms () in
    ignore (Peer.query_seq x query);
    let wall = now_ms () -. t0 in
    wall +. (Cluster.stats cluster).Simnet.network_ms +. !compile_penalty
  in
  let iters_hi = if quick then 100 else 1000 in
  Printf.printf "%-14s | %-25s | %-25s\n" "" "No Function Cache"
    "With Function Cache";
  Printf.printf "%-14s | %10s %12s | %10s %12s\n" "" "$x=1"
    (Printf.sprintf "$x=%d" iters_hi)
    "$x=1"
    (Printf.sprintf "$x=%d" iters_hi);
  let row label ~bulk =
    let c1 = run ~bulk ~warm_cache:false ~iterations:1 in
    let c2 = run ~bulk ~warm_cache:false ~iterations:iters_hi in
    let c3 = run ~bulk ~warm_cache:true ~iterations:1 in
    let c4 = run ~bulk ~warm_cache:true ~iterations:iters_hi in
    Printf.printf "%-14s | %10.1f %12.1f | %10.1f %12.1f\n" label c1 c2 c3 c4;
    (c1, c2, c3, c4)
  in
  let one1, one2, one3, one4 = row "one-at-a-time" ~bulk:false in
  let bulk1, bulk2, bulk3, bulk4 = row "bulk" ~bulk:true in
  Printf.printf
    "shape check: bulk beats one-at-a-time at $x=%d by %.0fx (no cache), %.0fx (cache)\n"
    iters_hi (one2 /. bulk2) (one4 /. bulk4);
  Printf.printf "paper reported:  133 | 2696 | 2.6 | 2696   (one-at-a-time)\n";
  Printf.printf "                 130 |  134 | 2.7 |    4   (bulk)\n";
  if json_out then
    write_file "BENCH_table2.json"
      (Printf.sprintf
         "{\n\
         \  \"iterations_hi\": %d,\n\
         \  \"ms\": {\n\
         \    \"one_at_a_time\": { \"x1_nocache\": %.2f, \"xN_nocache\": %.2f, \"x1_cache\": %.2f, \"xN_cache\": %.2f },\n\
         \    \"bulk\": { \"x1_nocache\": %.2f, \"xN_nocache\": %.2f, \"x1_cache\": %.2f, \"xN_cache\": %.2f }\n\
         \  },\n\
         \  \"bulk_speedup_at_xN\": { \"no_cache\": %.1f, \"cache\": %.1f }\n\
          }\n"
         iters_hi one1 one2 one3 one4 bulk1 bulk2 bulk3 bulk4
         (one2 /. bulk2) (one4 /. bulk4))

(* ================================================================== *)
(* Algebra kernels: columnar hash/sort vs the row-at-a-time reference  *)
(* ================================================================== *)

let algebra_bench () =
  header "Algebra kernels: columnar hash/sort vs Ops_reference (ns/op)";
  let module Table = Xrpc_algebra.Table in
  let module Ops = Xrpc_algebra.Ops in
  let module Ref = Xrpc_algebra.Ops_reference in
  (* iter repeats every n/5 rows (duplicate join/group keys), item cycles
     through 97 values — all 10k full rows stay distinct *)
  let mk n =
    Table.make [ "iter"; "pos"; "item" ]
      (List.init n (fun i ->
           [ Table.Int ((i mod max 1 (n / 5)) + 1); Table.Int 1;
             Table.Item (Xdm.int (i mod 97)) ]))
  in
  let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 10000 ] in
  let kernels =
    [
      ( "equi_join",
        (fun t -> ignore (Ops.equi_join t "iter" t "iter")),
        fun t -> ignore (Ref.equi_join t "iter" t "iter") );
      ( "distinct",
        (fun t -> ignore (Ops.distinct t)),
        fun t -> ignore (Ref.distinct t) );
      ( "rank",
        (fun t ->
          ignore
            (Ops.rank t ~new_col:"rk" ~order_by:[ "item" ] ~partition:"iter" ())),
        fun t ->
          ignore
            (Ref.rank t ~new_col:"rk" ~order_by:[ "item" ] ~partition:"iter" ())
      );
      ( "merge_union",
        (fun t -> ignore (Ops.merge_union_on_iter [ t; t ])),
        fun t -> ignore (Ref.merge_union_on_iter [ t; t ]) );
    ]
  in
  let results =
    List.map
      (fun (name, opt, reference) ->
        let per_size =
          List.map
            (fun n ->
              let t = mk n in
              let o = time_ns (fun () -> opt t) in
              let r = time_ns (fun () -> reference t) in
              Printf.printf
                "%-12s %6d rows: %12.0f ns opt  %14.0f ns ref  (%7.1fx)\n" name
                n o r (r /. o);
              (n, o, r))
            sizes
        in
        (name, per_size))
      kernels
  in
  (* Bulk RPC assembly: the full Figure-2 rule with a zero-cost network stub,
     so only the relational request build + response reassembly is measured.
     Linear assembly ⟹ 10x the calls costs ~10x the time. *)
  let bulk_ms k =
    let dst =
      Table.make [ "iter"; "pos"; "item" ]
        (List.init k (fun i ->
             [ Table.Int (i + 1); Table.Int 1; Table.Item (Xdm.str "xrpc://p") ]))
    in
    let param =
      Table.make [ "iter"; "pos"; "item" ]
        (List.init k (fun i ->
             [ Table.Int (i + 1); Table.Int 1; Table.Item (Xdm.int i) ]))
    in
    let call ~dest:_ (req : Message.request) =
      Message.Response
        {
          Message.resp_module = req.Message.module_uri;
          resp_method = req.Message.method_;
          results = List.map (fun _ -> [ Xdm.int 0 ]) req.Message.calls;
          cached = false;
          db_version = None;
          peers = [];
        }
    in
    let f () =
      ignore
        (Xrpc_algebra.Bulk_rpc.execute ~dst ~params:[ param ] ~module_uri:"m"
           ~location:"l" ~method_:"f" ~call ())
    in
    (* best of 15 — GC noise otherwise dominates the sub-ms runs *)
    f ();
    let best = ref infinity in
    for _ = 1 to 15 do
      let t0 = now_ms () in
      f ();
      let d = now_ms () -. t0 in
      if d < !best then best := d
    done;
    !best
  in
  let b100 = bulk_ms 100 and b1000 = bulk_ms 1000 in
  let b10000 = bulk_ms 10000 in
  Printf.printf
    "bulk assembly: 100 calls %6.2f ms   1000 calls %6.2f ms   10000 calls %6.2f ms\n\
    \  (10x calls -> %.1fx / %.1fx time; ~13x is the n log n sort factor,\n\
    \   quadratic assembly would be ~100x per step)\n"
    b100 b1000 b10000 (b1000 /. b100) (b10000 /. b1000);
  if json_out then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"kernels\": {\n";
    List.iteri
      (fun i (name, per_size) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (Printf.sprintf "    %S: { " name);
        List.iteri
          (fun j (n, o, r) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf
                 "\"%d\": { \"opt_ns\": %.0f, \"ref_ns\": %.0f, \"speedup\": %.1f }"
                 n o r (r /. o)))
          per_size;
        Buffer.add_string buf " }")
      results;
    Buffer.add_string buf
      (Printf.sprintf
         "\n  },\n\
         \  \"bulk_assembly\": { \"calls_100_ms\": %.3f, \"calls_1000_ms\": %.3f, \"calls_10000_ms\": %.3f, \"scaling_10x_calls\": %.2f, \"scaling_10x_calls_large\": %.2f, \"note\": \"linear assembly with n log n sorts; quadratic would scale ~100x per 10x\" }\n\
          }\n"
         b100 b1000 b10000 (b1000 /. b100) (b10000 /. b1000));
    write_file "BENCH_algebra.json" (Buffer.contents buf)
  end

(* ================================================================== *)
(* §3.3 Throughput: request/response payload scaling                   *)
(* ================================================================== *)

let throughput () =
  header "Throughput (§3.3): payload scaling — XRPC is CPU-bound on a fast LAN";
  let cluster = Cluster.create ~names:[ "x"; "y" ] () in
  let x = Cluster.peer cluster "x" and y = Cluster.peer cluster "y" in
  Peer.register_module y ~uri:Testmod.module_ns ~location:Testmod.module_at
    Testmod.test_module;
  Peer.register_module x ~uri:Testmod.module_ns ~location:Testmod.module_at
    Testmod.test_module;
  ignore (Peer.query_seq x (Testmod.upload_query ~dest:"xrpc://y" ~chunks:1));
  let sizes = if quick then [ 64; 1024 ] else [ 64; 512; 4096; 16384 ] in
  Printf.printf "%-10s | %-18s | %-18s\n" "payload" "request MB/s"
    "response MB/s";
  List.iter
    (fun chunks ->
      let bytes = chunks * 16 in
      let measure query =
        Cluster.reset_stats cluster;
        let t0 = now_ms () in
        ignore (Peer.query_seq x query);
        let wall = now_ms () -. t0 in
        float_of_int bytes /. 1024. /. 1024. /. (wall /. 1000.)
      in
      let up = measure (Testmod.upload_query ~dest:"xrpc://y" ~chunks) in
      let down = measure (Testmod.download_query ~dest:"xrpc://y" ~chunks) in
      Printf.printf "%7d KB | %18.1f | %18.1f\n" (bytes / 1024) up down)
    sizes;
  Printf.printf
    "paper reported: 8 MB/s (requests), 14 MB/s (responses) — bounded by\n\
     shredding/serialization CPU, not the 1 Gb/s network; the same holds here.\n"

(* ================================================================== *)
(* Table 3: Saxon (wrapper) latency                                    *)
(* ================================================================== *)

let table3 () =
  header "Table 3: wrapper-peer latency via the XRPC wrapper (msec)";
  Printf.printf
    "(our tree-walking interpreter behind the Figure-3 wrapper stands in for\n\
    \ Saxon-B 8.7; no function cache, so every request pays compile + treebuild)\n";
  let persons_count = if quick then 50 else 250 in
  let iters_hi = if quick then 100 else 1000 in
  let make_wrapper ~join_detect =
    let cluster = Cluster.create ~names:[ "mdb" ] () in
    let mdb = Cluster.peer cluster "mdb" in
    let w = Cluster.add_wrapper cluster ~join_detect "saxon" in
    Wrapper.register_module w ~uri:Testmod.module_ns ~location:Testmod.module_at
      Testmod.test_module;
    Wrapper.register_module w ~uri:Xmark.functions_ns
      ~location:Xmark.functions_at Xmark.functions_module;
    Database.add_doc_xml w.Wrapper.db "persons.xml"
      (Xmark.persons ~count:persons_count ());
    Peer.register_module mdb ~uri:Testmod.module_ns ~location:Testmod.module_at
      Testmod.test_module;
    Peer.register_module mdb ~uri:Xmark.functions_ns
      ~location:Xmark.functions_at Xmark.functions_module;
    (cluster, mdb, w)
  in
  Printf.printf "%-28s | %9s %9s %10s %9s\n" "" "total" "compile" "treebuild"
    "exec";
  let row label ~join_detect query =
    let cluster, mdb, w = make_wrapper ~join_detect in
    Wrapper.reset_timings w;
    Cluster.reset_stats cluster;
    let t0 = now_ms () in
    ignore (Peer.query_seq mdb query);
    let total = now_ms () -. t0 +. (Cluster.stats cluster).Simnet.network_ms in
    Printf.printf "%-28s | %9.1f %9.1f %10.1f %9.1f\n" label total
      w.Wrapper.total.Wrapper.compile_ms w.Wrapper.total.Wrapper.treebuild_ms
      w.Wrapper.total.Wrapper.exec_ms;
    (total, w.Wrapper.total.Wrapper.exec_ms)
  in
  let ev1, _ =
    row "echoVoid $x=1" ~join_detect:false
      (Testmod.echo_void_query ~dest:"xrpc://saxon" ~iterations:1)
  in
  let evN, _ =
    row
      (Printf.sprintf "echoVoid $x=%d" iters_hi)
      ~join_detect:false
      (Testmod.echo_void_query ~dest:"xrpc://saxon" ~iterations:iters_hi)
  in
  let gp1, _ =
    row "getPerson $x=1" ~join_detect:true
      (Testmod.get_person_query ~dest:"xrpc://saxon" ~iterations:1
         ~persons_count)
  in
  let gpN, gpN_exec =
    row
      (Printf.sprintf "getPerson $x=%d" iters_hi)
      ~join_detect:true
      (Testmod.get_person_query ~dest:"xrpc://saxon" ~iterations:iters_hi
         ~persons_count)
  in
  let _, gpN_noopt_exec =
    row
      (Printf.sprintf "getPerson $x=%d (no join)" iters_hi)
      ~join_detect:false
      (Testmod.get_person_query ~dest:"xrpc://saxon" ~iterations:iters_hi
         ~persons_count)
  in
  Printf.printf
    "shape check: Bulk RPC amortizes wrapper latency — %d echoVoid calls cost\n\
    \ %.1fx one call (paper: 2.1x); bulk getPerson with join detection costs\n\
    \ %.1fx one call (paper: 1.9x); without the join plan, exec is %.1fx slower.\n"
    iters_hi (evN /. ev1) (gpN /. gp1)
    (gpN_noopt_exec /. gpN_exec);
  Printf.printf
    "paper reported (total/compile/treebuild/exec):\n\
    \  echoVoid  $x=1: 275/178/4.6/92      $x=1000: 590/178/86/325\n\
    \  getPerson $x=1: 4276/185/1956/2134  $x=1000: 8167/185/1973/6010\n"

(* ================================================================== *)
(* Table 4: Q7 distributed strategies                                  *)
(* ================================================================== *)

let table4 () =
  header
    "Table 4: execution time (ms) of Q7 distributed over a native XRPC peer (A) and a wrapper peer (B)";
  let scale = if quick then Xmark.small_scale else Xmark.default_scale in
  Printf.printf
    "(XMark-like data: %d persons at A, %d closed auctions at B, %d matches)\n"
    scale.Xmark.persons scale.Xmark.auctions scale.Xmark.matches;
  let cluster = Cluster.create ~names:[ "A" ] () in
  let a = Cluster.peer cluster "A" in
  let b = Cluster.add_wrapper cluster ~join_detect:true "B" in
  b.Wrapper.transport <- Some (Simnet.transport (Cluster.net cluster));
  Database.add_doc_xml a.Peer.db "persons.xml"
    (Xmark.persons ~count:scale.Xmark.persons ());
  Database.add_doc_xml b.Wrapper.db "auctions.xml"
    (Xmark.auctions ~count:scale.Xmark.auctions ~matches:scale.Xmark.matches
       ~persons_count:scale.Xmark.persons ());
  let q7 =
    {
      Strategies.local_doc = "persons.xml";
      remote_uri = "xrpc://B";
      remote_doc = "auctions.xml";
      module_ns = "functions_b";
      module_at = "http://example.org/b.xq";
    }
  in
  let module_src = Strategies.functions_b q7 in
  Peer.register_module a ~uri:q7.Strategies.module_ns
    ~location:q7.Strategies.module_at module_src;
  Wrapper.register_module b ~uri:q7.Strategies.module_ns
    ~location:q7.Strategies.module_at module_src;
  Printf.printf "%-22s | %10s %12s %12s | %5s %10s\n" "" "Total" "A (local)"
    "B (+comm)" "msgs" "bytes";
  List.iter
    (fun strategy ->
      Cluster.reset_stats cluster;
      Wrapper.reset_timings b;
      let query = Strategies.query ~local_uri:"xrpc://A" q7 strategy in
      let t0 = now_ms () in
      let result = Peer.query_seq a query in
      let wall = now_ms () -. t0 in
      let stats = Cluster.stats cluster in
      let b_cpu =
        b.Wrapper.total.Wrapper.compile_ms
        +. b.Wrapper.total.Wrapper.treebuild_ms
        +. b.Wrapper.total.Wrapper.exec_ms
      in
      let total = wall +. stats.Simnet.network_ms in
      Printf.printf "%-22s | %10.1f %12.1f %12.1f | %5d %10d   (%d results)\n"
        (Strategies.name strategy)
        total (wall -. b_cpu)
        (b_cpu +. stats.Simnet.network_ms)
        stats.Simnet.messages
        (stats.Simnet.bytes_sent + stats.Simnet.bytes_received)
        (List.length result))
    Strategies.all;
  Printf.printf
    "paper reported (Total | MonetDB | Saxon+comm):\n\
    \  data shipping 28122|16457|11665   predicate push-down 25799|2961|22838\n\
    \  execution relocation 53184|69|53115   distributed semi-join 10278|118|10160\n"

(* ================================================================== *)
(* Figures: §3.1 loop-lifting tables (Q5) and Figure 1 (Bulk RPC)      *)
(* ================================================================== *)

let figures () =
  header "§3.1: loop-lifted representation of Q5";
  print_endline
    "for $x in (10,20) return for $y in (100,200) let $z := ($x,$y) return $z";
  let module Table = Xrpc_algebra.Table in
  let module Looplift = Xrpc_algebra.Looplift in
  (* the paper's x/y/z tables in the innermost scope *)
  let x_t =
    Table.of_sequences
      [ (1, [ Xdm.int 10 ]); (2, [ Xdm.int 10 ]); (3, [ Xdm.int 20 ]);
        (4, [ Xdm.int 20 ]) ]
  in
  let y_t =
    Table.of_sequences
      [ (1, [ Xdm.int 100 ]); (2, [ Xdm.int 200 ]); (3, [ Xdm.int 100 ]);
        (4, [ Xdm.int 200 ]) ]
  in
  let z_t =
    Table.of_sequences
      [ (1, [ Xdm.int 10; Xdm.int 100 ]); (2, [ Xdm.int 10; Xdm.int 200 ]);
        (3, [ Xdm.int 20; Xdm.int 100 ]); (4, [ Xdm.int 20; Xdm.int 200 ]) ]
  in
  Printf.printf "\nx =\n%s\n\ny =\n%s\n\nz =\n%s\n" (Table.to_string x_t)
    (Table.to_string y_t) (Table.to_string z_t);
  let q5 =
    Xrpc_xquery.Parser.parse_expression
      "for $x in (10,20) return for $y in (100,200) let $z := ($x, $y) return $z"
  in
  let env = Looplift.make_env ~call:(fun ~dest:_ _ -> failwith "no net") () in
  Printf.printf "\nloop-lifted evaluation yields: %s\n"
    (Xdm.to_display (Looplift.run env q5));

  header "Figure 1: relational processing of Bulk RPC (multiple destinations, Q3)";
  let call ~dest (req : Message.request) =
    let answer actor =
      match (dest, actor) with
      | "xrpc://y.example.org", "Sean Connery" ->
          [ Xdm.str "The Rock"; Xdm.str "Goldfinger" ]
      | "xrpc://z.example.org", "Julie Andrews" -> [ Xdm.str "Sound Of Music" ]
      | _ -> []
    in
    Message.Response
      {
        resp_module = req.Message.module_uri;
        resp_method = req.Message.method_;
        results =
          List.map
            (fun c -> answer (Xdm.string_value (List.hd (List.hd c))))
            req.Message.calls;
        cached = false;
        db_version = None;
        peers = [ dest ];
      }
  in
  let iii rows =
    Table.make [ "iter"; "pos"; "item" ]
      (List.map
         (fun (i, p, v) -> [ Table.Int i; Table.Int p; Table.Item (Xdm.str v) ])
         rows)
  in
  let dst =
    iii
      [ (1, 1, "xrpc://y.example.org"); (2, 1, "xrpc://z.example.org");
        (3, 1, "xrpc://y.example.org"); (4, 1, "xrpc://z.example.org") ]
  in
  let actor =
    iii
      [ (1, 1, "Julie Andrews"); (2, 1, "Julie Andrews");
        (3, 1, "Sean Connery"); (4, 1, "Sean Connery") ]
  in
  let _, trace =
    Xrpc_algebra.Bulk_rpc.execute ~dst ~params:[ actor ] ~module_uri:"films"
      ~location:"http://x.example.org/film.xq" ~method_:"filmsByActor" ~call ()
  in
  List.iter
    (fun (name, t) -> Printf.printf "\n%s =\n%s\n" name (Table.to_string t))
    trace

(* ================================================================== *)
(* Bechamel micro-benchmarks                                           *)
(* ================================================================== *)

let micro () =
  header "Bechamel micro-benchmarks (CPU-bound building blocks, one per table)";
  let open Bechamel in
  (* Table 1: algebra operators *)
  let algebra_table =
    Xrpc_algebra.Table.of_sequences
      (List.init 200 (fun i -> (i + 1, [ Xdm.int i; Xdm.str "x" ])))
  in
  let bench_table1 =
    Test.make ~name:"table1/rank+project+join"
      (Staged.stage (fun () ->
           let r =
             Xrpc_algebra.Ops.rank algebra_table ~new_col:"rk"
               ~order_by:[ "iter"; "pos" ] ()
           in
           let p =
             Xrpc_algebra.Ops.project r [ ("iter", "iter"); ("rk", "rk") ]
           in
           ignore (Xrpc_algebra.Ops.equi_join p "iter" algebra_table "iter")))
  in
  (* Table 2: one bulk message round trip (serialize + handle + parse) *)
  let peer = Peer.create "xrpc://bench" in
  Peer.register_module peer ~uri:Testmod.module_ns ~location:Testmod.module_at
    Testmod.test_module;
  let bulk_body =
    Message.to_string
      (Message.Request
         {
           Message.module_uri = Testmod.module_ns;
           location = Testmod.module_at;
           method_ = "ping";
           arity = 1;
           updating = false;
           fragments = false;
           query_id = None;
           idem_key = None; cache_ok = true;
           calls = List.init 100 (fun i -> [ [ Xdm.int i ] ]);
         })
  in
  ignore (Peer.handle_raw peer bulk_body);
  let bench_table2 =
    Test.make ~name:"table2/bulk-rpc-100-calls"
      (Staged.stage (fun () ->
           ignore (Message.of_string (Peer.handle_raw peer bulk_body))))
  in
  (* Table 3: one request through the Figure-3 wrapper *)
  let w = Wrapper.create "xrpc://bench-wrapper" in
  Wrapper.register_module w ~uri:Xmark.functions_ns ~location:Xmark.functions_at
    Xmark.functions_module;
  Database.add_doc_xml w.Wrapper.db "persons.xml" (Xmark.persons ~count:50 ());
  let wrapper_body =
    Message.to_string
      (Message.Request
         {
           Message.module_uri = Xmark.functions_ns;
           location = Xmark.functions_at;
           method_ = "getPerson";
           arity = 2;
           updating = false;
           fragments = false;
           query_id = None;
           idem_key = None; cache_ok = true;
           calls = [ [ [ Xdm.str "persons.xml" ]; [ Xdm.str "person7" ] ] ];
         })
  in
  let bench_table3 =
    Test.make ~name:"table3/wrapper-request"
      (Staged.stage (fun () -> ignore (Wrapper.handle_raw w wrapper_body)))
  in
  (* Table 4: semi-join probes answered with the bulk hash join *)
  let jpeer = Peer.create "xrpc://bench-join" in
  Peer.register_module jpeer ~uri:Xmark.functions_ns
    ~location:Xmark.functions_at Xmark.functions_module;
  Database.add_doc_xml jpeer.Peer.db "persons.xml" (Xmark.persons ~count:100 ());
  let join_body =
    Message.to_string
      (Message.Request
         {
           Message.module_uri = Xmark.functions_ns;
           location = Xmark.functions_at;
           method_ = "getPerson";
           arity = 2;
           updating = false;
           fragments = false;
           query_id = None;
           idem_key = None; cache_ok = true;
           calls =
             List.init 100 (fun i ->
                 [ [ Xdm.str "persons.xml" ];
                   [ Xdm.str (Printf.sprintf "person%d" i) ] ]);
         })
  in
  ignore (Peer.handle_raw jpeer join_body);
  let bench_table4 =
    Test.make ~name:"table4/bulk-hash-join-100-probes"
      (Staged.stage (fun () -> ignore (Peer.handle_raw jpeer join_body)))
  in
  (* throughput: marshaling a large payload *)
  let payload = [ Xdm.str (String.make 65536 'p') ] in
  let bench_marshal =
    Test.make ~name:"throughput/s2n+serialize-64KB"
      (Staged.stage (fun () ->
           ignore (Serialize.to_string (Xrpc_soap.Marshal.s2n payload))))
  in
  let tests =
    [ bench_table1; bench_table2; bench_table3; bench_table4; bench_marshal ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ()
    in
    let results = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
        | _ -> Printf.printf "%-40s (no estimate)\n" name)
      ols
  in
  List.iter benchmark tests

(* ================================================================== *)
(* Ablations: what the design choices buy                              *)
(* ================================================================== *)

let ablations () =
  header "Ablations";
  (* 1. loop-invariant hoisting (set-oriented clause evaluation) *)
  let scale = if quick then 30 else 80 in
  let db = Database.create () in
  Database.add_doc_xml db "persons.xml" (Xmark.persons ~count:scale ());
  Database.add_doc_xml db "auctions.xml"
    (Xmark.auctions ~count:(scale * 8) ~matches:6 ~persons_count:scale ());
  let ctx =
    {
      (Xrpc_xquery.Context.empty ()) with
      Xrpc_xquery.Context.doc_resolver =
        (fun n -> Database.doc_exn (Database.snapshot db) n);
    }
  in
  let join_query =
    {|for $p in doc("persons.xml")//person,
      $ca in doc("auctions.xml")//closed_auction
  where $p/@id = $ca/buyer/@person
  return <r>{$p/@id}</r>|}
  in
  let time_join enabled =
    Xrpc_xquery.Eval.hoisting_enabled := enabled;
    let t0 = now_ms () in
    ignore
      (Xrpc_xquery.Runner.run ~ctx
         ~resolver:(fun ~uri:_ ~location:_ -> failwith "none")
         join_query);
    Xrpc_xquery.Eval.hoisting_enabled := true;
    now_ms () -. t0
  in
  let with_h = time_join true and without_h = time_join false in
  Printf.printf
    "loop-invariant hoisting : join %4.0f ms with, %6.0f ms without (%.0fx)\n"
    with_h without_h
    (without_h /. with_h);
  (* 2. call-by-fragment message compression (footnote-4 extension) *)
  let store =
    Store.shred
      (Xml_parse.document
         ("<doc>"
         ^ String.concat ""
             (List.init 200 (fun i ->
                  Printf.sprintf "<sec i=\"%d\">%s</sec>" i (String.make 400 's')))
         ^ "</doc>"))
  in
  let root_el = List.hd (Store.children (Store.root store)) in
  (* every section is also passed separately: plain call-by-value ships the
     content twice, nodeid references ship it once *)
  let subs = Store.children root_el in
  let params = [ Xdm.Node root_el ] :: List.map (fun s -> [ Xdm.Node s ]) subs in
  let size fragments =
    List.fold_left
      (fun n t -> n + String.length (Serialize.to_string t))
      0
      (Xrpc_soap.Marshal.s2n_call ~fragments params)
  in
  let plain = size false and compressed = size true in
  Printf.printf
    "call-by-fragment        : %d bytes plain, %d bytes with nodeid refs (%.1fx smaller)\n"
    plain compressed
    (float_of_int plain /. float_of_int compressed);
  (* 3. bulk selection as hash join (also visible in Table 3) *)
  let jpeer = Peer.create "xrpc://abl" in
  Peer.register_module jpeer ~uri:Xmark.functions_ns
    ~location:Xmark.functions_at Xmark.functions_module;
  Database.add_doc_xml jpeer.Peer.db "persons.xml" (Xmark.persons ~count:200 ());
  let body calls =
    Message.to_string
      (Message.Request
         {
           Message.module_uri = Xmark.functions_ns;
           location = Xmark.functions_at;
           method_ = "getPerson";
           arity = 2;
           updating = false;
           fragments = false;
           query_id = None;
           idem_key = None; cache_ok = true;
           calls;
         })
  in
  let bulk_calls =
    List.init 200 (fun i ->
        [ [ Xdm.str "persons.xml" ]; [ Xdm.str (Printf.sprintf "person%d" i) ] ])
  in
  ignore (Peer.handle_raw jpeer (body bulk_calls));
  let t0 = now_ms () in
  ignore (Peer.handle_raw jpeer (body bulk_calls));
  let joined = now_ms () -. t0 in
  let t0 = now_ms () in
  List.iter
    (fun call -> ignore (Peer.handle_raw jpeer (body [ call ])))
    bulk_calls;
  let one_by_one = now_ms () -. t0 in
  Printf.printf
    "bulk selection as join  : 200 probes cost %4.0f ms bulk, %6.0f ms one-at-a-time (%.0fx)\n"
    joined one_by_one
    (one_by_one /. joined)

(* ================================================================== *)
(* Degraded network: throughput under injected message loss            *)
(* ================================================================== *)

let faults_bench () =
  header "Degraded network: seeded fault injection (deterministic virtual time)";
  let policy =
    {
      Transport.default_policy with
      Transport.max_retries = 4;
      backoff_base_ms = 5.;
      backoff_cap_ms = 40.;
      breaker_threshold = 0;
    }
  in
  (* virtual time only (charge_cpu off): the numbers measure the protocol's
     exposure to loss — messages on the wire × (latency + stall on each
     lost one) — not this machine's CPU *)
  let sim = { Simnet.default_config with Simnet.charge_cpu = false } in
  let run ~bulk ~loss ~queries ~iterations =
    let faults = if loss > 0. then Some (Simnet.chaos ~seed:11 ~loss ()) else None in
    let cluster = Cluster.create ~config:sim ?faults ~policy ~names:[ "x"; "y" ] () in
    let x = Cluster.peer cluster "x" and y = Cluster.peer cluster "y" in
    Peer.register_module y ~uri:Testmod.module_ns ~location:Testmod.module_at
      Testmod.test_module;
    Peer.register_module x ~uri:Testmod.module_ns ~location:Testmod.module_at
      Testmod.test_module;
    x.Peer.config <- { x.Peer.config with Peer.bulk_rpc = bulk };
    let query = Testmod.echo_void_query ~dest:"xrpc://y" ~iterations in
    let failed = ref 0 in
    for _ = 1 to queries do
      try ignore (Peer.query_seq x query) with _ -> incr failed
    done;
    let elapsed_ms = Cluster.clock_ms cluster in
    let retries =
      match Cluster.policy_stats cluster with
      | Some s -> s.Transport.retries
      | None -> 0
    in
    (elapsed_ms, retries, !failed)
  in
  let queries = if quick then 50 else 200 in
  let throughput loss =
    let elapsed_ms, retries, failed = run ~bulk:true ~loss ~queries ~iterations:8 in
    let qps = float_of_int (queries - failed) /. (elapsed_ms /. 1000.) in
    Printf.printf
      "loss %4.1f%% : %7.0f queries/virtual-s  (%d retries, %d/%d failed)\n"
      (loss *. 100.) qps retries failed queries;
    (loss, qps, retries, failed)
  in
  let tp = List.map throughput [ 0.0; 0.01; 0.05 ] in
  (* Bulk RPC vs one-at-a-time at 1% loss: one message per destination vs
     one per call — fewer messages means fewer loss events to stall on *)
  let per_query ~bulk =
    let elapsed_ms, retries, failed =
      run ~bulk ~loss:0.01 ~queries:(queries / 2) ~iterations:32
    in
    (elapsed_ms /. float_of_int (queries / 2), retries, failed)
  in
  let bulk_ms, bulk_retries, bulk_failed = per_query ~bulk:true in
  let one_ms, one_retries, one_failed = per_query ~bulk:false in
  Printf.printf
    "1%% loss, 32 calls/query : %6.1f ms/query bulk (%d retries), %6.1f ms/query one-at-a-time (%d retries) — %.1fx\n"
    bulk_ms bulk_retries one_ms one_retries (one_ms /. bulk_ms);
  if json_out then
    write_file "BENCH_faults.json"
      (Printf.sprintf
         "{\n\
         \  \"seed\": 11,\n\
         \  \"queries\": %d,\n\
         \  \"calls_per_query\": 8,\n\
         \  \"throughput_queries_per_virtual_s\": {\n%s\n  },\n\
         \  \"bulk_vs_one_at_a_time_at_1pct_loss\": {\n\
         \    \"calls_per_query\": 32,\n\
         \    \"bulk_ms_per_query\": %.3f,\n\
         \    \"bulk_retries\": %d,\n\
         \    \"bulk_failed\": %d,\n\
         \    \"one_at_a_time_ms_per_query\": %.3f,\n\
         \    \"one_at_a_time_retries\": %d,\n\
         \    \"one_at_a_time_failed\": %d\n\
         \  }\n\
          }\n"
         queries
         (String.concat ",\n"
            (List.map
               (fun (loss, qps, retries, failed) ->
                 Printf.sprintf
                   "    \"%.0f%%\": { \"qps\": %.1f, \"retries\": %d, \"failed\": %d }"
                   (loss *. 100.) qps retries failed)
               tp))
         bulk_ms bulk_retries bulk_failed one_ms one_retries one_failed)

(* ================================================================== *)
(* Observability: instrumentation overhead + a distributed span tree   *)
(* ================================================================== *)

let obs_bench () =
  header "Observability: tracing overhead (off vs on) + distributed span tree";
  let module Table = Xrpc_algebra.Table in
  let module Ops = Xrpc_algebra.Ops in
  let module Trace = Xrpc_obs.Trace in
  (* -- 1. algebra kernels, tracing off vs on ------------------------ *)
  (* Counters are always on (one field increment per operator); the
     per-operator latency histograms are gated on [Trace.enabled], so
     "off" measures the always-on cost and "on" adds two clock reads +
     one histogram observation per operator call. *)
  let mk n =
    Table.make [ "iter"; "pos"; "item" ]
      (List.init n (fun i ->
           [ Table.Int ((i mod max 1 (n / 5)) + 1); Table.Int 1;
             Table.Item (Xdm.int (i mod 97)) ]))
  in
  let t = mk 1000 in
  let kernels =
    [
      ("equi_join", fun () -> ignore (Ops.equi_join t "iter" t "iter"));
      ("distinct", fun () -> ignore (Ops.distinct t));
      ( "rank",
        fun () ->
          ignore
            (Ops.rank t ~new_col:"rk" ~order_by:[ "item" ] ~partition:"iter" ())
      );
      ("merge_union", fun () -> ignore (Ops.merge_union_on_iter [ t; t ]));
    ]
  in
  (* sub-ms kernels are noise-dominated: alternate off/on rounds and keep
     the per-mode minimum, so a GC pause in one round cannot masquerade
     as instrumentation cost *)
  let rounds = if quick then 3 else 5 in
  let kernel_rows =
    List.map
      (fun (name, f) ->
        let off = ref infinity and on = ref infinity in
        for _ = 1 to rounds do
          Trace.set_enabled false;
          off := Float.min !off (time_ns f);
          Trace.set_enabled true;
          on := Float.min !on (time_ns f);
          Trace.set_enabled false;
          Trace.reset ()
        done;
        let off = !off and on = !on in
        let pct = (on -. off) /. off *. 100. in
        Printf.printf "%-12s 1000 rows: %10.0f ns off  %10.0f ns on  (%+5.1f%%)\n"
          name off on pct;
        (name, off, on, pct))
      kernels
  in
  let avg_pct =
    List.fold_left (fun a (_, _, _, p) -> a +. p) 0. kernel_rows
    /. float_of_int (List.length kernel_rows)
  in
  Printf.printf "average kernel overhead with tracing on: %+.1f%% (target < 5%%)\n"
    avg_pct;
  (* -- 2. end-to-end distributed queries, off vs on ----------------- *)
  (* charge_cpu off: the virtual network charges no real sleeps, so the
     wall clock measures only the engine's CPU — exactly what the
     instrumentation could slow down. *)
  let sim = { Simnet.default_config with Simnet.charge_cpu = false } in
  let mk_cluster () =
    let cluster = Cluster.create ~config:sim ~names:[ "x"; "y"; "z" ] () in
    List.iter
      (fun n ->
        Peer.register_module (Cluster.peer cluster n) ~uri:Testmod.module_ns
          ~location:Testmod.module_at Testmod.test_module)
      [ "x"; "y"; "z" ];
    cluster
  in
  let query =
    {|import module namespace t="test" at "http://x.example.org/test.xq";
for $d in ("xrpc://y", "xrpc://z")
return execute at {$d} {t:ping(1)}|}
  in
  let queries = if quick then 20 else 60 in
  let run_many traced =
    let cluster = mk_cluster () in
    if traced then Cluster.enable_tracing cluster else Cluster.disable_tracing ();
    let x = Cluster.peer cluster "x" in
    ignore (Peer.query_seq x query);
    (* warm the function caches *)
    let t0 = now_ms () in
    for _ = 1 to queries do
      ignore (Peer.query_seq x query);
      if traced then Trace.reset ()
    done;
    let wall = now_ms () -. t0 in
    Cluster.disable_tracing ();
    wall /. float_of_int queries
  in
  (* same alternating-minimum discipline as the kernels *)
  let e2e_off = ref infinity and e2e_on = ref infinity in
  for _ = 1 to rounds do
    e2e_off := Float.min !e2e_off (run_many false);
    e2e_on := Float.min !e2e_on (run_many true)
  done;
  let e2e_off = !e2e_off and e2e_on = !e2e_on in
  let e2e_pct = (e2e_on -. e2e_off) /. e2e_off *. 100. in
  Printf.printf
    "end-to-end 2-peer query: %8.3f ms off  %8.3f ms on  (%+5.1f%%)\n" e2e_off
    e2e_on e2e_pct;
  (* -- 3. one traced distributed query: the reconstructed span tree -- *)
  let cluster = mk_cluster () in
  Cluster.enable_tracing cluster;
  let x = Cluster.peer cluster "x" in
  ignore (Peer.query_seq x query);
  Trace.reset ();
  (* warm caches, then trace one clean run *)
  ignore (Peer.query_seq x query);
  let tree = Trace.render () in
  let phases = Trace.phase_summary () in
  let span_count = List.length (Trace.spans ()) in
  Cluster.disable_tracing ();
  Trace.reset ();
  Printf.printf "\nspan tree of one distributed query over peers y and z:\n%s" tree;
  Printf.printf "per-phase cost (virtual ms):\n";
  List.iter
    (fun (name, count, total) ->
      Printf.printf "  %-18s %4dx  %8.3f ms\n" name count total)
    phases;
  if json_out then
    write_file "BENCH_obs.json"
      (Printf.sprintf
         "{\n\
         \  \"kernel_overhead\": {\n%s\n  },\n\
         \  \"kernel_overhead_avg_pct\": %.2f,\n\
         \  \"end_to_end\": { \"off_ms\": %.4f, \"on_ms\": %.4f, \"overhead_pct\": %.2f },\n\
         \  \"target_overhead_pct\": 5.0,\n\
         \  \"distributed_trace\": { \"spans\": %d, \"phases\": {\n%s\n  } }\n\
          }\n"
         (String.concat ",\n"
            (List.map
               (fun (name, off, on, pct) ->
                 Printf.sprintf
                   "    %S: { \"off_ns\": %.0f, \"on_ns\": %.0f, \"overhead_pct\": %.2f }"
                   name off on pct)
               kernel_rows))
         avg_pct e2e_off e2e_on e2e_pct span_count
         (String.concat ",\n"
            (List.map
               (fun (name, count, total) ->
                 Printf.sprintf
                   "    %S: { \"count\": %d, \"total_ms\": %.3f }" name count
                   total)
               phases)))

(* ================================================================== *)

let () =
  Printf.printf "XRPC benchmark harness%s\n" (if quick then " (--quick)" else "");
  if json_out then begin
    (* machine-readable run: algebra kernels + Table 2 + degraded
       network, written as JSON *)
    algebra_bench ();
    table2 ();
    faults_bench ();
    obs_bench ()
  end
  else if only_tables then figures ()
  else begin
    figures ();
    table2 ();
    algebra_bench ();
    throughput ();
    table3 ();
    table4 ();
    faults_bench ();
    obs_bench ();
    ablations ();
    if not skip_micro then micro ()
  end;
  print_endline "\ndone."
