(* SOAP interoperability: the wire protocol of §2.1 is plain SOAP 1.2 over
   HTTP POST, so ANY web-service client can call an XRPC peer — no XRPC
   library required.  This example plays the part of such a foreign client:
   it writes the request envelope by hand (byte-for-byte the message shown
   in §2.1 of the paper), POSTs it over a raw socket, and picks the answer
   out of the response with a generic XML parse. *)

module Peer = Xrpc_peer.Peer
module Http = Xrpc_net.Http
module Filmdb = Xrpc_workloads.Filmdb
open Xrpc_xml

(* the §2.1 request message, written out by hand like a SOAP toolkit would *)
let handwritten_request =
  {|<?xml version="1.0" encoding="utf-8"?>
<env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
 xmlns:env="http://www.w3.org/2003/05/soap-envelope"
 xmlns:xs="http://www.w3.org/2001/XMLSchema"
 xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
 xsi:schemaLocation="http://monetdb.cwi.nl/XQuery
 http://monetdb.cwi.nl/XQuery/XRPC.xsd">
<env:Body>
<xrpc:request module="films" method="filmsByActor" arity="1"
 location="http://x.example.org/film.xq">
<xrpc:call>
<xrpc:sequence>
<xrpc:atomic-value
 xsi:type="xs:string">Sean Connery</xrpc:atomic-value>
</xrpc:sequence>
</xrpc:call>
</xrpc:request>
</env:Body>
</env:Envelope>|}

let () =
  (* an ordinary XRPC peer behind HTTP *)
  let y = Peer.create "xrpc://127.0.0.1" in
  Filmdb.install y ();
  let server = Http.serve (fun ~path:_ body -> Peer.handle_raw y body) in
  Printf.printf "peer on port %d — sending the paper's verbatim SOAP request\n"
    (Http.port server);

  (* the "foreign SOAP client": raw POST, generic XML parsing *)
  let response =
    Http.post ~host:"127.0.0.1" ~port:(Http.port server) handwritten_request
  in
  print_endline "-- raw response on the wire --";
  print_endline response;

  (* a generic client only needs an XML parser to read the results *)
  let tree = Xml_parse.document response in
  let rec collect acc = function
    | Tree.Element { name; children; _ } ->
        if name.Qname.local = "element" && name.Qname.uri = Qname.ns_xrpc then
          List.fold_left collect (acc @ List.map Tree.string_value children)
            children
        else List.fold_left collect acc children
    | Tree.Document cs -> List.fold_left collect acc cs
    | _ -> acc
  in
  Printf.printf "-- films extracted by the generic client --\n%s\n"
    (String.concat ", " (collect [] tree));
  Http.shutdown server
