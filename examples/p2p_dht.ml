(* P2P data management with XRPC (§7 future work: "integrating XRPC with
   advanced P2P data structures such as Distributed Hash Tables").

   Eight peers form a consistent-hash ring ({!Xrpc_peer.Shard}): every
   member is hashed onto the ring at 64 virtual points, each record's key
   picks the first member clockwise, and the next distinct member holds a
   replica.  Placement, routing and querying all ride the stock XRPC
   machinery:

   - [Cluster.place_sharded] cuts the collection into per-member slices;
   - a per-key lookup is ordinary XQuery against a {e virtual}
     destination — [execute at {"xrpc://shard/<key>"}] — which the peer's
     shard router resolves to the first live holder at plan time;
   - a whole-ring query scatters one call per member and gathers the
     partial answers with the columnar merge kernels
     ([Cluster.scatter_gather]), deduping replica re-deliveries;
   - writes route the same way and stay atomic across shards via 2PC;
   - a peer joining the ring moves only ~K/N keys ([Shard.moved_keys]).

   Because a key's replica set has two distinct members, killing any
   single peer changes no answer — the gather merge just takes the
   surviving copy. *)

module Cluster = Xrpc_core.Cluster
module Xrpc_client = Xrpc_core.Xrpc_client
module Peer = Xrpc_peer.Peer
module Shard = Xrpc_peer.Shard
module Shardmod = Xrpc_workloads.Shardmod
module Simnet = Xrpc_net.Simnet
open Xrpc_xml

let n_peers = 8
let peer_name i = Printf.sprintf "p%d.ring" i
let peer_uri i = "xrpc://" ^ peer_name i

let films =
  [
    ("The Rock", "Sean Connery"); ("Goldfinger", "Sean Connery");
    ("Green Card", "Gerard Depardieu"); ("Sound Of Music", "Julie Andrews");
    ("Dr. No", "Sean Connery"); ("Mary Poppins", "Julie Andrews");
    ("Cyrano", "Gerard Depardieu"); ("The Untouchables", "Sean Connery");
  ]

let records =
  List.map
    (fun (t, a) ->
      (t, Printf.sprintf "<film><name>%s</name><actor>%s</actor></film>" t a))
    films

let ring_count cluster =
  List.length
    (Cluster.scatter_gather cluster ~module_uri:Shardmod.module_ns
       ~location:Shardmod.module_at ~fn:"partsByOwner" ())

let () =
  (* build the ring: 8 peers, 2 replicas per key *)
  let names = List.init n_peers peer_name in
  let cluster = Cluster.create ~names () in
  Cluster.register_module_everywhere cluster ~uri:Shardmod.module_ns
    ~location:Shardmod.module_at Shardmod.shard_module;
  let map = Shard.create ~replicas:2 (List.init n_peers peer_uri) in
  Cluster.set_shard_map cluster (Some map);
  Cluster.place_sharded cluster records;
  let coordinator = Cluster.peer cluster (peer_name 0) in

  (* the :shards view of the placement *)
  print_string
    (Peer.shard_text ~keys:(List.map fst records) coordinator);
  List.iter
    (fun (t, _) ->
      Printf.printf "  %-18s -> %s\n" t
        (String.concat ", " (Shard.holders map t)))
    films;

  (* per-key lookups against virtual destinations: the router picks the
     first live holder, so the query text never names a peer *)
  let wanted = [ "The Rock"; "Dr. No"; "Mary Poppins"; "Cyrano" ] in
  Printf.printf "\nrouted lookups (execute at \"xrpc://shard/<key>\"):\n";
  List.iter
    (fun key ->
      let got =
        Xdm.to_display
          (Peer.query_seq coordinator (Shardmod.lookup_query ~key))
      in
      Printf.printf "  %-18s -> %s\n" key got)
    wanted;

  (* whole-ring scatter-gather through the columnar merge kernels *)
  Printf.printf "\nscatter-gather over %d peers: %d films\n" n_peers
    (ring_count cluster);

  (* kill any one peer: the replica masks it *)
  Cluster.crash cluster (peer_name 3);
  Printf.printf "after killing %s:        %d films (replica masks the loss)\n"
    (peer_name 3) (ring_count cluster);
  Cluster.restart cluster (peer_name 3);

  (* atomic cross-shard write: both inserts route through the ring and
     commit (or abort) together under 2PC *)
  let k1, k2 = ("Highlander", "Victor Victoria") in
  let write_query =
    Printf.sprintf
      {|import module namespace sh="shard" at %S;
declare option xrpc:isolation "repeatable";
for $k in (%S, %S)
return execute at {concat("xrpc://shard/", $k)} {sh:put($k, "new film")}|}
      Shardmod.module_at k1 k2
  in
  let r = Peer.query coordinator write_query in
  Printf.printf "\natomic cross-shard insert committed: %b (participants: %s)\n"
    r.Peer.committed
    (String.concat ", " r.Peer.participants);

  (* a ninth peer joins: only ~K/N keys move, and every lookup still
     answers during the new topology *)
  let keys = List.map fst records in
  let before = Shard.assignment map keys in
  Cluster.shard_join cluster "p8.ring";
  let moved =
    Shard.moved_keys
      ~before:(fun k ->
        fst (List.find (fun (_, ks) -> List.mem k ks) before))
      ~after:(fun k -> Shard.primary map k)
      keys
  in
  Printf.printf "\np8.ring joined: %d of %d keys moved (%s)\n"
    (List.length moved) (List.length keys)
    (String.concat ", " moved);
  Printf.printf "scatter-gather over %d peers: %d films\n"
    (List.length (Shard.members map))
    (ring_count cluster);
  List.iter
    (fun key ->
      let got =
        Xdm.to_display
          (Peer.query_seq coordinator (Shardmod.lookup_query ~key))
      in
      Printf.printf "  %-18s -> %s\n" key got)
    wanted
