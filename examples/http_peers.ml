(* Real HTTP transport: two peers in one process talking SOAP XRPC over
   actual loopback HTTP sockets — the wire format of §2.1, for real.

   This is the cross-process deployment story: run the server half on one
   machine, point the client's destination URI at its host:port. *)

module Peer = Xrpc_peer.Peer
module Http = Xrpc_net.Http
module Filmdb = Xrpc_workloads.Filmdb

let () =
  (* server peer: film DB behind a real HTTP endpoint *)
  let y = Peer.create "xrpc://127.0.0.1" in
  Filmdb.install y ();
  let server = Http.serve (fun ~path:_ body -> Peer.handle_raw y body) in
  let dest = Printf.sprintf "xrpc://127.0.0.1:%d" (Http.port server) in
  Printf.printf "serving XRPC on %s\n%!" dest;

  (* client peer: talks to it over HTTP *)
  let x = Peer.create "xrpc://client.local" in
  Peer.set_transport x (Http.transport ());
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;

  let result = Peer.query_seq x (Filmdb.q1 ~dest) in
  print_endline (Xrpc_xml.Xdm.to_display result);

  (* and a bulk call over real HTTP *)
  let result2 = Peer.query_seq x (Filmdb.q2 ~dest) in
  print_endline (Xrpc_xml.Xdm.to_display result2);
  Http.shutdown server
