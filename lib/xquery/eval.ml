(** The XQuery evaluator, including [execute at] and loop-lifted Bulk RPC.

    Evaluation is a straightforward tree walk over {!Ast.expr} — this plays
    the role Saxon plays in the paper (a non-bulk engine) — {e except} for
    one crucial feature: when [bulk_rpc] is enabled, FLWOR clauses and
    return expressions that are [execute at] applications are evaluated
    set-at-a-time.  All iterations' destinations and parameters are
    computed first, destinations are deduplicated (the δ(dst.item) of
    Figure 2), one Bulk RPC request per destination is dispatched (in
    parallel when there are several), and the per-call results are mapped
    back to their iterations (the mapp tables of Figure 1). *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let m_applications = Metrics.counter "eval.applications"
let m_apply_ms = Metrics.histogram "eval.apply_ms"

(* Installed by the cost-model layer (Xrpc_core.Cost): renders a Table-2
   estimate of the Bulk RPC dispatch about to happen, so a profile carries
   the optimizer's predicted cost right next to the measured one.  The
   evaluator cannot depend on the cost model (it lives above this
   library), hence the injection point. *)
let rpc_estimate_hook :
    (fn:string -> ncalls:int -> ndests:int -> string option) option ref =
  ref None

(* ------------------------------------------------------------------ *)
(* Node tests and axes                                                 *)
(* ------------------------------------------------------------------ *)

let kind_matches (k : Ast.kind_test) (n : Store.node) =
  match (k, Store.kind n) with
  | Ast.K_node, _ -> true
  | Ast.K_text, Store.Txt -> true
  | Ast.K_comment, Store.Comm -> true
  | Ast.K_document, Store.Doc -> true
  | Ast.K_pi None, Store.Pi -> true
  | Ast.K_pi (Some t), Store.Pi -> (
      match Store.name n with Some q -> q.Qname.local = t | None -> false)
  | Ast.K_element None, Store.Elem -> true
  | Ast.K_element (Some q), Store.Elem -> (
      match Store.name n with Some q' -> Qname.equal q q' | None -> false)
  | Ast.K_attribute None, Store.Attr -> true
  | Ast.K_attribute (Some q), Store.Attr -> (
      match Store.name n with Some q' -> Qname.equal q q' | None -> false)
  | _ -> false

let test_matches ~(principal : [ `Element | `Attribute ]) (t : Ast.node_test)
    (n : Store.node) =
  let principal_kind =
    match (principal, Store.kind n) with
    | `Element, Store.Elem -> true
    | `Attribute, Store.Attr -> true
    | _ -> false
  in
  match t with
  | Ast.Kind_test k -> kind_matches k n
  | Ast.Any_name -> principal_kind
  | Ast.Name_test q ->
      principal_kind
      && (match Store.name n with Some q' -> Qname.equal q q' | None -> false)
  | Ast.Ns_wildcard uri ->
      principal_kind
      && (match Store.name n with Some q' -> q'.Qname.uri = uri | None -> false)
  | Ast.Local_wildcard local ->
      principal_kind
      && (match Store.name n with
         | Some q' -> q'.Qname.local = local
         | None -> false)

(** Nodes reached over [axis] from [n], in axis order (reverse axes yield
    reverse document order, per XPath). *)
let axis_nodes (axis : Ast.axis) (n : Store.node) =
  match axis with
  | Ast.Child -> Store.children n
  | Ast.Descendant -> Store.descendants n
  | Ast.Descendant_or_self -> Store.descendant_or_self n
  | Ast.Self -> [ n ]
  | Ast.Parent -> ( match Store.parent n with Some p -> [ p ] | None -> [])
  | Ast.Ancestor -> Store.ancestors n
  | Ast.Ancestor_or_self -> n :: Store.ancestors n
  | Ast.Attribute -> Store.attributes n
  | Ast.Following_sibling -> Store.following_siblings n
  | Ast.Preceding_sibling -> List.rev (Store.preceding_siblings n)
  | Ast.Following -> Store.following n
  | Ast.Preceding -> List.rev (Store.preceding n)

let is_forward = function
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Preceding_sibling
  | Ast.Preceding ->
      false
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Sequence-type matching                                              *)
(* ------------------------------------------------------------------ *)

let item_type_matches (it : Ast.item_type) (item : Xdm.item) =
  match (it, item) with
  | Ast.It_item, _ -> true
  | Ast.It_node, Xdm.Node _ -> true
  | Ast.It_text, Xdm.Node n -> Store.kind n = Store.Txt
  | Ast.It_comment, Xdm.Node n -> Store.kind n = Store.Comm
  | Ast.It_pi, Xdm.Node n -> Store.kind n = Store.Pi
  | Ast.It_document, Xdm.Node n -> Store.kind n = Store.Doc
  | Ast.It_element q, Xdm.Node n ->
      kind_matches (Ast.K_element q) n
  | Ast.It_attribute q, Xdm.Node n -> kind_matches (Ast.K_attribute q) n
  | Ast.It_atomic t, Xdm.Atomic a ->
      t = Xs.type_of a
      || (t = Xs.TDecimal && Xs.type_of a = Xs.TInteger)
      || t = Xs.TUntypedAtomic && Xs.type_of a = Xs.TUntypedAtomic
  | _ -> false

let seq_type_matches (st : Ast.seq_type) (seq : Xdm.sequence) =
  match st with
  | Ast.Seq_empty -> seq = []
  | Ast.Seq (it, occ) -> (
      let all = List.for_all (item_type_matches it) seq in
      all
      &&
      match occ with
      | Ast.Exactly_one -> List.length seq = 1
      | Ast.Zero_or_one -> List.length seq <= 1
      | Ast.One_or_more -> seq <> []
      | Ast.Zero_or_more -> true)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let value_compare op (a : Xs.t) (b : Xs.t) =
  let c = Xs.compare_values a b in
  match op with
  | Ast.V_eq | Ast.G_eq -> c = 0
  | Ast.V_ne | Ast.G_ne -> c <> 0
  | Ast.V_lt | Ast.G_lt -> c < 0
  | Ast.V_le | Ast.G_le -> c <= 0
  | Ast.V_gt | Ast.G_gt -> c > 0
  | Ast.V_ge | Ast.G_ge -> c >= 0
  | _ -> err "not a value comparison"

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

(** Turn a content sequence into attributes + child trees, per the XQuery
    content-construction rules: adjacent atomic values become a single text
    node (space separated); node items are copied (call-by-value — they get
    fresh identity when the new element is shredded). *)
let content_to_trees (seq : Xdm.sequence) : Tree.attr list * Tree.t list =
  let attrs = ref [] in
  let out = ref [] in
  let pending = ref [] in
  let flush () =
    if !pending <> [] then (
      let s = String.concat " " (List.rev !pending) in
      out := Tree.Text s :: !out;
      pending := [])
  in
  List.iter
    (fun item ->
      match item with
      | Xdm.Atomic a -> pending := Xs.to_string a :: !pending
      | Xdm.Node n -> (
          flush ();
          match Store.kind n with
          | Store.Attr -> attrs := Store.attr_tree n :: !attrs
          | Store.Doc ->
              (* document nodes contribute their children *)
              List.iter (fun c -> out := Store.to_tree c :: !out) (Store.children n)
          | _ -> out := Store.to_tree n :: !out))
    seq;
  flush ();
  (List.rev !attrs, List.rev !out)

let node_of_tree tree = Xdm.Node (Store.root (Store.shred tree))

(* XQDY0025: a constructed element must not have two attributes with the
   same expanded name *)
let check_attr_duplicates (attrs : Tree.attr list) =
  let rec go seen = function
    | [] -> ()
    | (a : Tree.attr) :: rest ->
        if List.exists (Qname.equal a.name) seen then
          Xdm.dyn_error "XQDY0025: duplicate attribute %s on constructed element"
            (Qname.to_string a.name)
        else go (a.name :: seen) rest
  in
  go [] attrs;
  attrs

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

let max_depth = 4096

(** Ablation switch: loop-invariant FLWOR clause hoisting (benchmarks
    disable it to quantify what set-oriented evaluation buys). *)
let hoisting_enabled = ref true

let rec eval (ctx : Context.t) (e : Ast.expr) : Xdm.sequence =
  match e with
  | Ast.Literal a -> [ Xdm.Atomic a ]
  | Ast.Var q -> Context.lookup_var ctx q
  | Ast.Context_item -> (
      match ctx.Context.ctx_item with
      | Some i -> [ i ]
      | None -> Xdm.dyn_error "XPDY0002: context item is undefined")
  | Ast.Root ->
      let n = Context.context_node ctx in
      [ Xdm.Node (Store.root n.Store.store) ]
  | Ast.Sequence es -> List.concat_map (eval ctx) es
  | Ast.Range (a, b) -> (
      match (eval ctx a, eval ctx b) with
      | [], _ | _, [] -> []
      | sa, sb ->
          let lo =
            match Xdm.one_atom ~what:"range start" sa with
            | Xs.Integer i -> i
            | a -> int_of_float (Xs.to_float a)
          in
          let hi =
            match Xdm.one_atom ~what:"range end" sb with
            | Xs.Integer i -> i
            | a -> int_of_float (Xs.to_float a)
          in
          if hi < lo then []
          else List.init (hi - lo + 1) (fun i -> Xdm.int (lo + i)))
  | Ast.Arith (op, a, b) -> (
      match (eval ctx a, eval ctx b) with
      | [], _ | _, [] -> []
      | sa, sb ->
          let x = Xdm.one_atom ~what:"operand" sa in
          let y = Xdm.one_atom ~what:"operand" sb in
          let x = match x with Xs.Untyped s -> Xs.Double (Xs.parse_float s) | x -> x in
          let y = match y with Xs.Untyped s -> Xs.Double (Xs.parse_float s) | y -> y in
          let o =
            match op with
            | Ast.Add -> `Add
            | Ast.Sub -> `Sub
            | Ast.Mul -> `Mul
            | Ast.Div -> `Div
            | Ast.Idiv -> `Idiv
            | Ast.Mod -> `Mod
          in
          [ Xdm.Atomic (Xs.arith o x y) ])
  | Ast.Neg a -> (
      match eval ctx a with
      | [] -> []
      | s -> (
          match Xdm.one_atom ~what:"operand" s with
          | Xs.Integer i -> [ Xdm.int (-i) ]
          | v -> [ Xdm.Atomic (Xs.Double (-.Xs.to_float v)) ]))
  | Ast.And (a, b) ->
      [ Xdm.bool (Xdm.ebv (eval ctx a) && Xdm.ebv (eval ctx b)) ]
  | Ast.Or (a, b) ->
      [ Xdm.bool (Xdm.ebv (eval ctx a) || Xdm.ebv (eval ctx b)) ]
  | Ast.Compare (op, a, b) -> eval_compare ctx op a b
  | Ast.Union (a, b) ->
      let nodes =
        List.map Xdm.node_only (eval ctx a) @ List.map Xdm.node_only (eval ctx b)
      in
      List.map (fun n -> Xdm.Node n) (Xdm.doc_order_dedup nodes)
  | Ast.Intersect (a, b) ->
      let na = List.map Xdm.node_only (eval ctx a) in
      let nb = List.map Xdm.node_only (eval ctx b) in
      List.map
        (fun n -> Xdm.Node n)
        (Xdm.doc_order_dedup
           (List.filter (fun n -> List.exists (Store.equal_nodes n) nb) na))
  | Ast.Except (a, b) ->
      let na = List.map Xdm.node_only (eval ctx a) in
      let nb = List.map Xdm.node_only (eval ctx b) in
      List.map
        (fun n -> Xdm.Node n)
        (Xdm.doc_order_dedup
           (List.filter
              (fun n -> not (List.exists (Store.equal_nodes n) nb))
              na))
  | Ast.If (c, t, e) -> if Xdm.ebv (eval ctx c) then eval ctx t else eval ctx e
  | Ast.Flwor (clauses, order_by, ret) -> eval_flwor ctx clauses order_by ret
  | Ast.Quantified (q, binds, sat) ->
      let rec go ctx = function
        | [] -> Xdm.ebv (eval ctx sat)
        | (v, e) :: rest ->
            let items = eval ctx e in
            let test item = go (Context.bind_var ctx v [ item ]) rest in
            if q = `Some then List.exists test items else List.for_all test items
      in
      [ Xdm.bool (go ctx binds) ]
  | Ast.Path (a, b) ->
      let input = eval ctx a in
      let n = List.length input in
      let results =
        List.concat
          (List.mapi
             (fun i item ->
               eval (Context.with_context_item ctx item (i + 1) n) b)
             input)
      in
      let nodes, atomics =
        List.partition (function Xdm.Node _ -> true | _ -> false) results
      in
      if atomics = [] then
        List.map
          (fun n -> Xdm.Node n)
          (Xdm.doc_order_dedup (List.map Xdm.node_only nodes))
      else if nodes = [] then atomics
      else Xdm.dyn_error "XPTY0018: path step mixes nodes and atomic values"
  | Ast.Step (axis, test, preds) ->
      let n = Context.context_node ctx in
      let principal = if axis = Ast.Attribute then `Attribute else `Element in
      let candidates =
        List.filter (test_matches ~principal test) (axis_nodes axis n)
      in
      let filtered =
        apply_predicates ctx preds (List.map (fun n -> Xdm.Node n) candidates)
      in
      if is_forward axis then filtered
      else
        (* reverse axes: result back in document order *)
        List.map
          (fun n -> Xdm.Node n)
          (Xdm.doc_order_dedup (List.map Xdm.node_only filtered))
  | Ast.Filter (e, preds) -> apply_predicates ctx preds (eval ctx e)
  | Ast.Call (q, args) -> eval_call ctx q args
  | Ast.Execute_at (dest, f, args) -> (
      match bulk_execute ctx [ ctx ] dest f args with
      | [ seq ] -> seq
      | _ -> assert false)
  | Ast.Elem_ctor (name, attr_specs, content) ->
      let attrs =
        List.map
          (fun (aname, parts) ->
            let v =
              String.concat ""
                (List.map
                   (function
                     | Ast.A_text s -> s
                     | Ast.A_expr e ->
                         String.concat " "
                           (List.map Xs.to_string (Xdm.atomize (eval ctx e))))
                   parts)
            in
            Tree.attr aname v)
          attr_specs
      in
      let content_seq = List.concat_map (eval ctx) content in
      let content_attrs, children = content_to_trees content_seq in
      let attrs = check_attr_duplicates (attrs @ content_attrs) in
      [ node_of_tree (Tree.Element { name; attrs; children }) ]
  | Ast.Comp_elem (name_e, content_e) ->
      let name = eval_name ctx name_e ~default_ns:true in
      let content_attrs, children = content_to_trees (eval ctx content_e) in
      let attrs = check_attr_duplicates content_attrs in
      [ node_of_tree (Tree.Element { name; attrs; children }) ]
  | Ast.Comp_attr (name_e, content_e) ->
      let name = eval_name ctx name_e ~default_ns:false in
      let v =
        String.concat " "
          (List.map Xs.to_string (Xdm.atomize (eval ctx content_e)))
      in
      (* a standalone attribute node: carried by a hidden owner element *)
      let store =
        Store.shred
          (Tree.elem (Qname.make ~prefix:"xrpc" ~uri:Qname.ns_xrpc "attr-carrier")
             ~attrs:[ Tree.attr name v ] [])
      in
      (match Store.attributes (Store.root store) with
      | a :: _ -> [ Xdm.Node a ]
      | [] -> assert false)
  | Ast.Text_ctor e -> (
      match Xdm.atomize (eval ctx e) with
      | [] -> []
      | vals ->
          [ node_of_tree (Tree.Text (String.concat " " (List.map Xs.to_string vals))) ])
  | Ast.Comment_ctor e ->
      let s = String.concat " " (List.map Xs.to_string (Xdm.atomize (eval ctx e))) in
      [ node_of_tree (Tree.Comment s) ]
  | Ast.Doc_ctor e ->
      let _, children = content_to_trees (eval ctx e) in
      [ node_of_tree (Tree.Document children) ]
  | Ast.Typeswitch (operand, cases, (dv, de)) -> (
      let v = eval ctx operand in
      let rec try_cases = function
        | [] ->
            let ctx =
              match dv with Some var -> Context.bind_var ctx var v | None -> ctx
            in
            eval ctx de
        | (st, var, e) :: rest ->
            if seq_type_matches st v then
              let ctx =
                match var with
                | Some var -> Context.bind_var ctx var v
                | None -> ctx
              in
              eval ctx e
            else try_cases rest
      in
      try_cases cases)
  | Ast.Instance_of (e, st) -> [ Xdm.bool (seq_type_matches st (eval ctx e)) ]
  | Ast.Treat_as (e, st) ->
      let v = eval ctx e in
      if seq_type_matches st v then v
      else Xdm.dyn_error "XPDY0050: treat as failed"
  | Ast.Cast_as (e, t, allow_empty) -> (
      match eval ctx e with
      | [] ->
          if allow_empty then []
          else Xdm.dyn_error "XPTY0004: cast of empty sequence"
      | seq -> [ Xdm.Atomic (Xs.cast (Xdm.one_atom ~what:"cast operand" seq) t) ])
  | Ast.Castable_as (e, t, allow_empty) -> (
      match eval ctx e with
      | [] -> [ Xdm.bool allow_empty ]
      | [ i ] -> (
          try
            ignore (Xs.cast (Xdm.atomize_item i) t);
            [ Xdm.bool true ]
          with _ -> [ Xdm.bool false ])
      | _ -> [ Xdm.bool false ])
  (* ---- XQUF ---- *)
  | Ast.Insert (pos, src_e, target_e) ->
      let attrs, trees = content_to_trees (eval ctx src_e) in
      let target = Xdm.node_only (Xdm.one_item ~what:"insert target" (eval ctx target_e)) in
      let add p = ctx.Context.pul := p :: !(ctx.Context.pul) in
      if attrs <> [] then add (Update.Insert_attributes (target, attrs));
      (if trees <> [] then
         match pos with
         | Ast.Into | Ast.As_last -> add (Update.Insert_into (target, trees))
         | Ast.As_first -> add (Update.Insert_first (target, trees))
         | Ast.Before -> add (Update.Insert_before (target, trees))
         | Ast.After -> add (Update.Insert_after (target, trees)));
      []
  | Ast.Delete target_e ->
      List.iter
        (fun item ->
          ctx.Context.pul :=
            Update.Delete_node (Xdm.node_only item) :: !(ctx.Context.pul))
        (eval ctx target_e);
      []
  | Ast.Replace_node (target_e, src_e) ->
      let target = Xdm.node_only (Xdm.one_item ~what:"replace target" (eval ctx target_e)) in
      let attrs, trees = content_to_trees (eval ctx src_e) in
      (if Store.kind target = Store.Attr then
         ctx.Context.pul := Update.Replace_attr (target, attrs) :: !(ctx.Context.pul)
       else
         ctx.Context.pul := Update.Replace_node (target, trees) :: !(ctx.Context.pul));
      []
  | Ast.Replace_value (target_e, src_e) ->
      let target = Xdm.node_only (Xdm.one_item ~what:"replace target" (eval ctx target_e)) in
      let v =
        String.concat " " (List.map Xs.to_string (Xdm.atomize (eval ctx src_e)))
      in
      ctx.Context.pul := Update.Replace_value (target, v) :: !(ctx.Context.pul);
      []
  | Ast.Rename_node (target_e, name_e) ->
      let target = Xdm.node_only (Xdm.one_item ~what:"rename target" (eval ctx target_e)) in
      let name = eval_name ctx name_e ~default_ns:false in
      ctx.Context.pul := Update.Rename (target, name) :: !(ctx.Context.pul);
      []

and eval_name ctx e ~default_ns =
  ignore default_ns;
  match Xdm.one_atom ~what:"name" (eval ctx e) with
  | Xs.QName q -> q
  | v ->
      let prefix, local = Qname.split (Xs.to_string v) in
      Qname.make ~prefix local

and eval_compare ctx op a b =
  let sa = eval ctx a and sb = eval ctx b in
  match op with
  | Ast.N_is | Ast.N_before | Ast.N_after -> (
      match (sa, sb) with
      | [], _ | _, [] -> []
      | [ Xdm.Node x ], [ Xdm.Node y ] ->
          let c = Store.compare_nodes x y in
          [ Xdm.bool
              (match op with
              | Ast.N_is -> c = 0
              | Ast.N_before -> c < 0
              | _ -> c > 0) ]
      | _ -> Xdm.dyn_error "node comparison requires single nodes")
  | Ast.V_eq | Ast.V_ne | Ast.V_lt | Ast.V_le | Ast.V_gt | Ast.V_ge -> (
      match (sa, sb) with
      | [], _ | _, [] -> []
      | _ ->
          let x = Xdm.one_atom ~what:"operand" sa in
          let y = Xdm.one_atom ~what:"operand" sb in
          [ Xdm.bool (value_compare op x y) ])
  | _ ->
      (* general comparison: existential over atomized operands *)
      let xs = Xdm.atomize sa and ys = Xdm.atomize sb in
      let sat =
        List.exists
          (fun x ->
            List.exists
              (fun y ->
                let x, y = Xs.coerce_general x y in
                value_compare op x y)
              ys)
          xs
      in
      [ Xdm.bool sat ]

and apply_predicates ctx preds seq =
  List.fold_left
    (fun seq pred ->
      let size = List.length seq in
      List.filteri
        (fun i item ->
          let ictx = Context.with_context_item ctx item (i + 1) size in
          let r = eval ictx pred in
          match r with
          | [ Xdm.Atomic a ] when Xs.is_numeric a ->
              int_of_float (Xs.to_float a) = i + 1
          | r -> Xdm.ebv r)
        seq)
    seq preds

(* ---- FLWOR with loop-lifted Bulk RPC ---------------------------- *)

and eval_flwor ctx clauses order_by ret =
  let bulk =
    ctx.Context.dispatcher <> None
    &&
    match ctx.Context.rpc_mode with
    | Context.Rpc_bulk -> true
    | Context.Rpc_singles -> false
    | Context.Rpc_auto -> ctx.Context.bulk_rpc
  in
  let tuples = ref [ ctx ] in
  (* loop-invariant clause hoisting: a clause expression that references no
     variable bound earlier in this FLWOR evaluates identically for every
     tuple, so evaluate it once against the incoming context (what a
     set-oriented engine gets for free from loop-lifting) *)
  let bound = ref Ast.Var_set.empty in
  let invariant e =
    !hoisting_enabled && Ast.Var_set.disjoint (Ast.free_vars e) !bound
  in
  let bind_clause_vars v posv =
    bound := Ast.Var_set.add (Ast.var_set_key v) !bound;
    match posv with
    | Some p -> bound := Ast.Var_set.add (Ast.var_set_key p) !bound
    | None -> ()
  in
  let expand_for v posv items tctx =
    List.mapi
      (fun i item ->
        let tctx = Context.bind_var tctx v [ item ] in
        match posv with
        | Some pv -> Context.bind_var tctx pv [ Xdm.int (i + 1) ]
        | None -> tctx)
      items
  in
  List.iter
    (fun clause ->
      (match clause with
      | Ast.For (v, posv, Ast.Execute_at (d, f, args)) when bulk ->
          let results = bulk_execute ctx !tuples d f args in
          tuples :=
            List.concat
              (List.map2 (fun tctx seq -> expand_for v posv seq tctx) !tuples
                 results)
      | Ast.Let (v, Ast.Execute_at (d, f, args)) when bulk ->
          let results = bulk_execute ctx !tuples d f args in
          tuples :=
            List.map2 (fun tctx seq -> Context.bind_var tctx v seq) !tuples results
      | Ast.For (v, posv, e) when invariant e && List.length !tuples > 1 ->
          let items = eval ctx e in
          tuples := List.concat_map (expand_for v posv items) !tuples
      | Ast.Let (v, e) when invariant e && List.length !tuples > 1 ->
          let value = eval ctx e in
          tuples := List.map (fun tctx -> Context.bind_var tctx v value) !tuples
      | Ast.For (v, posv, e) ->
          tuples :=
            List.concat_map (fun tctx -> expand_for v posv (eval tctx e) tctx)
              !tuples
      | Ast.Let (v, e) ->
          tuples :=
            List.map (fun tctx -> Context.bind_var tctx v (eval tctx e)) !tuples
      | Ast.Where e ->
          tuples := List.filter (fun tctx -> Xdm.ebv (eval tctx e)) !tuples);
      match clause with
      | Ast.For (v, posv, _) -> bind_clause_vars v posv
      | Ast.Let (v, _) -> bind_clause_vars v None
      | Ast.Where _ -> ())
    clauses;
  (* order by *)
  (if order_by <> [] then
     let keyed =
       List.map
         (fun tctx ->
           let keys =
             List.map
               (fun (e, desc) ->
                 let k =
                   match eval tctx e with
                   | [] -> None
                   | seq -> Some (Xdm.one_atom ~what:"order key" seq)
                 in
                 (k, desc))
               order_by
           in
           (keys, tctx))
         !tuples
     in
     let cmp (ka, _) (kb, _) =
       let rec go = function
         | [] -> 0
         | ((x, desc), (y, _)) :: rest -> (
             let c =
               match (x, y) with
               | None, None -> 0
               | None, Some _ -> -1
               | Some _, None -> 1
               | Some x, Some y -> Xs.compare_values x y
             in
             match if desc then -c else c with 0 -> go rest | c -> c)
       in
       go (List.combine ka kb)
     in
     tuples := List.map snd (List.stable_sort cmp keyed));
  (* return *)
  match ret with
  | Ast.Execute_at (d, f, args) when bulk ->
      List.concat (bulk_execute ctx !tuples d f args)
  | Ast.Sequence es
    when bulk && es <> []
         && List.for_all
              (function Ast.Execute_at _ -> true | _ -> false)
              es ->
      (* Q6 pattern: each call site is bulk-dispatched across all
         iterations (out-of-order execution, §3.2), then results are
         stitched back in query order. *)
      let per_site =
        List.map
          (fun e ->
            match e with
            | Ast.Execute_at (d, f, args) -> bulk_execute ctx !tuples d f args
            | _ -> assert false)
          es
      in
      List.concat
        (List.mapi
           (fun i _ -> List.concat_map (fun site -> List.nth site i) per_site)
           !tuples)
  | _ -> List.concat_map (fun tctx -> eval tctx ret) !tuples

(* ---- Function calls --------------------------------------------- *)

and eval_call ctx (q : Qname.t) args =
  if q.Qname.uri = Qname.ns_xs then (
    (* xs:TYPE(...) constructor function *)
    match args with
    | [ arg ] -> (
        match Xs.type_of_name q.Qname.local with
        | Some t -> (
            match eval ctx arg with
            | [] -> []
            | seq -> [ Xdm.Atomic (Xs.cast (Xdm.one_atom ~what:"cast" seq) t) ])
        | None -> err "unknown type constructor xs:%s" q.Qname.local)
    | _ -> err "type constructor expects one argument")
  else
    let arity = List.length args in
    match Context.find_function ctx q arity with
    | Some f -> apply_function ctx f (List.map (eval ctx) args)
    | None -> (
        match Builtins.find q arity with
        | Some impl -> impl ctx (List.map (eval ctx) args)
        | None ->
            err "XPST0017: unknown function %s#%d" (Qname.expanded q) arity)

(* The function conversion rules of XPath 2.0 §3.1.5: for a declared atomic
   parameter type, atomize the argument, cast untyped values to the expected
   type, apply numeric promotion, and enforce the occurrence indicator.
   This is also where XRPC's "the caller performs parameter up-casting"
   (§2.2) happens — arguments are converted before they are marshaled. *)
and convert_argument ~fname (q : Qname.t) (ty : Ast.seq_type option)
    (v : Xdm.sequence) : Xdm.sequence =
  match ty with
  | None -> v
  | Some st -> (
      let converted =
        match st with
        | Ast.Seq (Ast.It_atomic t, _) ->
            List.map
              (fun item ->
                let a = Xdm.atomize_item item in
                let a =
                  match (a, t) with
                  | Xs.Untyped s, t -> Xs.of_string t s
                  (* numeric promotion: integer -> decimal -> float -> double *)
                  | Xs.Integer _, (Xs.TDecimal | Xs.TFloat | Xs.TDouble)
                  | Xs.Decimal _, (Xs.TFloat | Xs.TDouble)
                  | Xs.Float _, Xs.TDouble ->
                      Xs.cast a t
                  | Xs.AnyURI _, Xs.TString -> Xs.cast a t
                  | a, _ -> a
                in
                Xdm.Atomic a)
              v
        | _ -> v
      in
      if seq_type_matches st converted then converted
      else
        err "XPTY0004: argument $%s of %s does not match its declared type"
          q.Qname.local fname)

and apply_function ctx (f : Context.func) (arg_values : Xdm.sequence list) =
  Metrics.incr m_applications;
  if not (Trace.enabled () || Profile.enabled ()) then
    apply_function_inner ctx f arg_values
  else begin
    (* span/node only the outermost application (the unit the XRPC handler
       bills per call); inner recursion is aggregated into the histogram *)
    let t0 = Trace.now_ms () in
    let run () =
      let r = apply_function_inner ctx f arg_values in
      if Trace.enabled () then Metrics.observe m_apply_ms (Trace.now_ms () -. t0);
      r
    in
    if ctx.Context.call_depth = 0 then begin
      let name = Qname.to_string f.Context.decl.Ast.fn_name in
      let traced () =
        if Trace.enabled () then Trace.with_span ~detail:name "eval.apply" run
        else run ()
      in
      if Profile.enabled () then Profile.with_node ~detail:name "apply" traced
      else traced ()
    end
    else run ()
  end

and apply_function_inner ctx (f : Context.func) (arg_values : Xdm.sequence list) =
  if ctx.Context.call_depth > max_depth then err "stack overflow (recursion)";
  match f.Context.decl.Ast.fn_body with
  | None -> err "external function %s has no implementation"
              (Qname.to_string f.Context.decl.Ast.fn_name)
  | Some body ->
      let params = f.Context.decl.Ast.fn_params in
      let fname = Qname.to_string f.Context.decl.Ast.fn_name in
      if List.length params <> List.length arg_values then
        err "wrong number of arguments for %s" fname;
      let call_ctx =
        List.fold_left2
          (fun c (p, ty) v ->
            Context.bind_var c p (convert_argument ~fname p ty v))
          { ctx with
            Context.vars = Context.Var_map.empty;
            ctx_item = None;
            call_depth = ctx.Context.call_depth + 1 }
          params arg_values
      in
      let result = eval call_ctx body in
      (* the declared return type is checked (no conversion: the body is
         the implementation's responsibility) *)
      (match f.Context.decl.Ast.fn_return with
      | Some st when not f.Context.decl.Ast.fn_updating ->
          if not (seq_type_matches st result) then
            err "XPTY0004: result of %s does not match its declared type" fname
      | _ -> ());
      result

(* ---- Bulk RPC ----------------------------------------------------- *)

(** [bulk_execute ctx tuples dest f args] evaluates the XRPC application
    [execute at {dest}{f(args)}] for every tuple context in [tuples] with a
    single Bulk RPC per distinct destination, dispatched in parallel.
    Returns one result sequence per tuple, in tuple order. *)
and bulk_execute base_ctx tuples dest_e fname args =
  let dispatcher =
    match base_ctx.Context.dispatcher with
    | Some d -> d
    | None -> err "execute at: no RPC dispatcher configured"
  in
  let arity = List.length args in
  (* function metadata: module URI comes from the function QName; the
     at-hint from the prolog import *)
  let finfo = Context.find_function base_ctx fname arity in
  let module_uri =
    match finfo with
    | Some f -> f.Context.fn_module_uri
    | None -> fname.Qname.uri
  in
  let location =
    match finfo with
    | Some f when f.Context.fn_location <> "" -> f.Context.fn_location
    | _ -> (
        match List.assoc_opt fname.Qname.uri !(base_ctx.Context.imports) with
        | Some at -> at
        | None -> "")
  in
  let updating =
    match finfo with Some f -> f.Context.decl.Ast.fn_updating | None -> false
  in
  (* per-tuple destination and parameters; virtual destinations (e.g. the
     shard scheme) are rewritten here, before δ and Bulk RPC batching, so
     two keys hashing to one peer share a single message *)
  let resolve_dest =
    match base_ctx.Context.dest_resolver with Some f -> f | None -> Fun.id
  in
  let calls =
    List.map
      (fun tctx ->
        let dest =
          resolve_dest
            (Xs.to_string
               (Xdm.one_atom ~what:"destination" (eval tctx dest_e)))
        in
        let params = List.map (eval tctx) args in
        (dest, params))
      tuples
  in
  (* loop-invariant hoisting: if every iteration issues the identical
     non-updating call, one call suffices and its result is shared (the
     paper's Q7_1 pattern, where Q_B1() has no loop-dependent argument) *)
  let hoisted =
    match calls with
    | (d0, p0) :: (_ :: _ as rest)
      when (not updating)
           && List.for_all
                (fun (d, p) ->
                  d = d0
                  && List.length p = List.length p0
                  && List.for_all2 Xdm.deep_equal p p0)
                rest ->
        let req =
          {
            Message.module_uri;
            location;
            method_ = fname.Qname.local;
            arity;
            updating;
            fragments = base_ctx.Context.fragments;
            query_id = base_ctx.Context.query_id;
            idem_key = None; cache_ok = true;
            calls = [ p0 ];
          }
        in
        if Profile.enabled () then Profile.note_calls ~dest:d0 1;
        let result =
          match dispatcher.Context.call ~dest:d0 req with
          | Message.Response { results = [ r ]; _ } -> r
          | Message.Response _ -> err "XRPC response result count mismatch"
          | Message.Fault f -> err "XRPC fault from %s: %s" d0 f.Message.reason
          | _ -> err "unexpected XRPC reply from %s" d0
        in
        Some (List.map (fun _ -> result) calls)
    | _ -> None
  in
  match hoisted with
  | Some results -> results
  | None ->
  (* δ over destinations, in order of first occurrence *)
  let dests =
    List.fold_left
      (fun acc (d, _) -> if List.mem d acc then acc else d :: acc)
      [] calls
    |> List.rev
  in
  let requests =
    List.map
      (fun dest ->
        let params_for_dest =
          List.filter_map
            (fun (d, ps) -> if d = dest then Some ps else None)
            calls
        in
        ( dest,
          {
            Message.module_uri;
            location;
            method_ = fname.Qname.local;
            arity;
            updating;
            fragments = base_ctx.Context.fragments;
            query_id = base_ctx.Context.query_id;
            idem_key = None; cache_ok = true;
            calls = params_for_dest;
          } ))
      dests
  in
  let dispatch () =
    match requests with
    | [ (dest, req) ] -> [ dispatcher.Context.call ~dest req ]
    | reqs -> dispatcher.Context.call_parallel reqs
  in
  let responses =
    if Profile.enabled () then begin
      List.iter
        (fun (dest, req) ->
          Profile.note_calls ~dest (List.length req.Message.calls))
        requests;
      (match !rpc_estimate_hook with
      | Some est -> (
          match
            est ~fn:fname.Qname.local ~ncalls:(List.length calls)
              ~ndests:(List.length requests)
          with
          | Some s -> Profile.note_annotation s
          | None -> ())
      | None -> ());
      Profile.with_node
        ~detail:(Printf.sprintf "%s -> %d dest(s)" fname.Qname.local
                   (List.length requests))
        "bulkrpc" dispatch
    end
    else dispatch ()
  in
  (* map back: walk tuples in order, pulling the next result for their
     destination (the mapp tables of Figure 1) *)
  let per_dest : (string, Xdm.sequence list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter2
    (fun dest response ->
      match response with
      | Message.Response r -> Hashtbl.replace per_dest dest (ref r.Message.results)
      | Message.Fault f ->
          err "XRPC fault from %s: %s" dest f.Message.reason
      | _ -> err "unexpected XRPC reply from %s" dest)
    dests responses;
  List.map
    (fun (dest, params) ->
      if updating then []
      else
        let q = Hashtbl.find per_dest dest in
        match !q with
        | r :: rest ->
            q := rest;
            r
        | [] ->
            err "XRPC response from %s is missing %d result(s)" dest
              (List.length params))
    calls
