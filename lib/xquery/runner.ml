(** Program execution: prolog processing, module imports, query runs.

    A module resolver maps a module namespace URI plus its at-hint location
    to XQuery source text.  Peers resolve module URIs against their module
    registry (or, in a fuller deployment, fetch the at-hint over HTTP —
    exactly what [import module ... at "http://x.example.org/film.xq"]
    suggests in the paper's examples). *)

open Xrpc_xml

exception Module_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Module_error s)) fmt

type module_resolver = uri:string -> location:string -> string

(** [load_prolog ctx ~resolver prog] processes a parsed program's prolog:
    registers functions, loads imported modules (recursively), binds global
    variables, and records [declare option] values.  Returns the extended
    context. *)
let rec load_prolog (ctx : Context.t) ~(resolver : module_resolver)
    ?(visited = ref []) (prog : Ast.prog) : Context.t =
  let module_uri, location =
    match prog.Ast.module_decl with
    | Some (_pfx, uri) -> (uri, "")
    | None -> ("", "")
  in
  (* pass 1: imports and functions (so bodies can call forward/recursively) *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.P_import_module (_pfx, uri, at) ->
          let at = Option.value ~default:"" at in
          ctx.Context.imports := (uri, at) :: !(ctx.Context.imports);
          if not (List.mem uri !visited) then (
            visited := uri :: !visited;
            let source = resolver ~uri ~location:at in
            let sub = Parser.parse_prog source in
            (match sub.Ast.module_decl with
            | Some (_, sub_uri) when sub_uri <> uri ->
                err "module at %s declares namespace %s, expected %s" at
                  sub_uri uri
            | Some _ -> ()
            | None -> err "imported %s is not a library module" uri);
            let ctx' = load_prolog ctx ~resolver ~visited sub in
            (* module-level variable bindings flow into the importer *)
            ignore ctx')
      | Ast.P_function f ->
          let location =
            if location <> "" then location
            else
              match
                List.assoc_opt f.Ast.fn_name.Qname.uri !(ctx.Context.imports)
              with
              | Some at -> at
              | None -> ""
          in
          let module_uri =
            if module_uri <> "" then module_uri else f.Ast.fn_name.Qname.uri
          in
          Context.register_function ctx ~module_uri ~location f
      | Ast.P_option (q, v) -> Context.set_option ctx q v
      | _ -> ())
    prog.Ast.prolog;
  (* pass 2: global variables, in declaration order *)
  List.fold_left
    (fun ctx decl ->
      match decl with
      | Ast.P_var (v, e) -> Context.bind_var ctx v (Eval.eval ctx e)
      | _ -> ctx)
    ctx prog.Ast.prolog

(** Pass 1 only — imports (recursively), function registration and
    [declare option] values, all of which mutate [ctx] in place and depend
    only on the source text and the module registry.  Nothing is
    evaluated, so the result is what a plan cache may keep; the variable
    bindings of pass 2 ({!bind_globals}) are database-dependent and must
    re-run per execution.  Imported modules' own global variables are not
    bound — matching {!load_prolog}, which evaluates and discards them. *)
let rec load_prolog_static (ctx : Context.t) ~(resolver : module_resolver)
    ?(visited = ref []) (prog : Ast.prog) : unit =
  let module_uri, location =
    match prog.Ast.module_decl with
    | Some (_pfx, uri) -> (uri, "")
    | None -> ("", "")
  in
  List.iter
    (fun decl ->
      match decl with
      | Ast.P_import_module (_pfx, uri, at) ->
          let at = Option.value ~default:"" at in
          ctx.Context.imports := (uri, at) :: !(ctx.Context.imports);
          if not (List.mem uri !visited) then (
            visited := uri :: !visited;
            let source = resolver ~uri ~location:at in
            let sub = Parser.parse_prog source in
            (match sub.Ast.module_decl with
            | Some (_, sub_uri) when sub_uri <> uri ->
                err "module at %s declares namespace %s, expected %s" at
                  sub_uri uri
            | Some _ -> ()
            | None -> err "imported %s is not a library module" uri);
            load_prolog_static ctx ~resolver ~visited sub)
      | Ast.P_function f ->
          let location =
            if location <> "" then location
            else
              match
                List.assoc_opt f.Ast.fn_name.Qname.uri !(ctx.Context.imports)
              with
              | Some at -> at
              | None -> ""
          in
          let module_uri =
            if module_uri <> "" then module_uri else f.Ast.fn_name.Qname.uri
          in
          Context.register_function ctx ~module_uri ~location f
      | Ast.P_option (q, v) -> Context.set_option ctx q v
      | _ -> ())
    prog.Ast.prolog

(** Pass 2 — bind this program's global variables, in declaration order.
    Evaluation may read documents (and even the network, through
    [execute at] in an initializer), so it runs once per execution and is
    never cached. *)
let bind_globals (ctx : Context.t) (prog : Ast.prog) : Context.t =
  List.fold_left
    (fun ctx decl ->
      match decl with
      | Ast.P_var (v, e) -> Context.bind_var ctx v (Eval.eval ctx e)
      | _ -> ctx)
    ctx prog.Ast.prolog

(** Check whether a program's body contains any updating expression or call
    to a declared updating function — used by peers to classify queries. *)
let prog_is_updating (ctx : Context.t) (prog : Ast.prog) =
  let rec expr_updating (e : Ast.expr) =
    match e with
    | Ast.Insert _ | Ast.Delete _ | Ast.Replace_node _ | Ast.Replace_value _
    | Ast.Rename_node _ ->
        true
    | Ast.Call (q, args) ->
        (match Context.find_function ctx q (List.length args) with
        | Some f -> f.Context.decl.Ast.fn_updating
        | None -> q.Qname.local = "put" && (q.Qname.uri = Qname.ns_fn || q.Qname.uri = ""))
        || List.exists expr_updating args
    | Ast.Execute_at (d, q, args) ->
        (match Context.find_function ctx q (List.length args) with
        | Some f -> f.Context.decl.Ast.fn_updating
        | None -> false)
        || expr_updating d
        || List.exists expr_updating args
    | Ast.Sequence es -> List.exists expr_updating es
    | Ast.Range (a, b)
    | Ast.Arith (_, a, b)
    | Ast.Compare (_, a, b)
    | Ast.And (a, b)
    | Ast.Or (a, b)
    | Ast.Union (a, b)
    | Ast.Intersect (a, b)
    | Ast.Except (a, b)
    | Ast.Path (a, b)
    | Ast.Comp_elem (a, b)
    | Ast.Comp_attr (a, b) ->
        expr_updating a || expr_updating b
    | Ast.If (c, t, e) -> expr_updating c || expr_updating t || expr_updating e
    | Ast.Flwor (clauses, order_by, ret) ->
        List.exists
          (function
            | Ast.For (_, _, e) | Ast.Let (_, e) | Ast.Where e ->
                expr_updating e)
          clauses
        || List.exists (fun (e, _) -> expr_updating e) order_by
        || expr_updating ret
    | Ast.Quantified (_, binds, sat) ->
        List.exists (fun (_, e) -> expr_updating e) binds || expr_updating sat
    | Ast.Step (_, _, preds) -> List.exists expr_updating preds
    | Ast.Filter (e, preds) ->
        expr_updating e || List.exists expr_updating preds
    | Ast.Elem_ctor (_, attrs, content) ->
        List.exists
          (fun (_, parts) ->
            List.exists
              (function Ast.A_expr e -> expr_updating e | Ast.A_text _ -> false)
              parts)
          attrs
        || List.exists expr_updating content
    | Ast.Text_ctor e | Ast.Comment_ctor e | Ast.Doc_ctor e | Ast.Neg e
    | Ast.Instance_of (e, _)
    | Ast.Cast_as (e, _, _)
    | Ast.Castable_as (e, _, _)
    | Ast.Treat_as (e, _) ->
        expr_updating e
    | Ast.Typeswitch (op, cases, (_, de)) ->
        expr_updating op
        || List.exists (fun (_, _, e) -> expr_updating e) cases
        || expr_updating de
    | Ast.Literal _ | Ast.Var _ | Ast.Context_item | Ast.Root -> false
  in
  match prog.Ast.body with Some e -> expr_updating e | None -> false

(* ------------------------------------------------------------------ *)
(* Shard-aware [execute at] destinations                               *)
(* ------------------------------------------------------------------ *)

(** The virtual shard scheme: [execute at {"xrpc://shard/<key>"}] names a
    {e key}, not a peer.  A shard router installed on the evaluation
    context ({!Context.t.dest_resolver}, built with {!shard_resolver})
    rewrites it to the URI of a live peer holding that key before Bulk
    RPC batching — so two keys hashing to the same peer still share one
    message, and the query text never hard-codes the topology. *)
let shard_scheme = "xrpc://shard/"

let is_shard_dest d =
  String.length d > String.length shard_scheme
  && String.sub d 0 (String.length shard_scheme) = shard_scheme

(** The key a virtual shard destination names ([None] for ordinary
    destinations). *)
let shard_key d =
  if is_shard_dest d then
    Some
      (String.sub d
         (String.length shard_scheme)
         (String.length d - String.length shard_scheme))
  else None

(** [shard_resolver ~route] — the {!Context.t.dest_resolver} that sends
    shard-scheme destinations through [route] (key to concrete peer URI)
    and leaves every other destination untouched. *)
let shard_resolver ~(route : string -> string) : string -> string =
 fun d -> match shard_key d with Some key -> route key | None -> d

(* ------------------------------------------------------------------ *)
(* Static [execute at] site analysis                                   *)
(* ------------------------------------------------------------------ *)

(** One [execute at] application found in a query body — the unit the
    distributed-strategy optimizer costs.  [site_dest] is the destination
    URI when it is a string literal (the common case in §5's plans);
    [site_in_loop] marks Bulk-RPC candidates (the site sits under at least
    one enclosing [for] binding); [site_loop_dependent] says whether the
    call's destination or arguments reference variables bound by the
    enclosing FLWOR — a loop-dependent site is the semi-join shape, a
    loop-invariant one hoists to a single call (the Q7_1 pattern). *)
type execute_site = {
  site_dest : string option;
  site_fn : Qname.t;
  site_arity : int;
  site_in_loop : bool;
  site_loop_dependent : bool;
}

(** [execute_sites prog] — every [execute at] site in [prog]'s body, in
    syntactic order.  Purely static: nothing is evaluated. *)
let execute_sites (prog : Ast.prog) : execute_site list =
  let acc = ref [] in
  let module VS = Ast.Var_set in
  let rec go ~fors ~bound (e : Ast.expr) =
    match e with
    | Ast.Execute_at (d, f, args) ->
        let dest =
          match d with
          | Ast.Literal (Xs.String s) -> Some s
          | _ -> None
        in
        let refs =
          List.fold_left
            (fun a arg -> VS.union a (Ast.free_vars arg))
            (Ast.free_vars d) args
        in
        acc :=
          {
            site_dest = dest;
            site_fn = f;
            site_arity = List.length args;
            site_in_loop = fors > 0;
            site_loop_dependent = not (VS.disjoint refs bound);
          }
          :: !acc;
        go ~fors ~bound d;
        List.iter (go ~fors ~bound) args
    | Ast.Flwor (clauses, order_by, ret) ->
        let fors', bound' =
          List.fold_left
            (fun (fors, bound) clause ->
              match clause with
              | Ast.For (v, posv, src) ->
                  go ~fors ~bound src;
                  let bound = VS.add (Ast.var_set_key v) bound in
                  let bound =
                    match posv with
                    | Some p -> VS.add (Ast.var_set_key p) bound
                    | None -> bound
                  in
                  (fors + 1, bound)
              | Ast.Let (v, src) ->
                  go ~fors ~bound src;
                  (fors, VS.add (Ast.var_set_key v) bound)
              | Ast.Where c ->
                  go ~fors ~bound c;
                  (fors, bound))
            (fors, bound) clauses
        in
        List.iter (fun (e, _) -> go ~fors:fors' ~bound:bound' e) order_by;
        go ~fors:fors' ~bound:bound' ret
    | Ast.Quantified (_, binds, sat) ->
        let bound' =
          List.fold_left
            (fun bound (v, src) ->
              go ~fors ~bound src;
              VS.add (Ast.var_set_key v) bound)
            bound binds
        in
        go ~fors ~bound:bound' sat
    | Ast.Sequence es -> List.iter (go ~fors ~bound) es
    | Ast.Range (a, b)
    | Ast.Arith (_, a, b)
    | Ast.Compare (_, a, b)
    | Ast.And (a, b)
    | Ast.Or (a, b)
    | Ast.Union (a, b)
    | Ast.Intersect (a, b)
    | Ast.Except (a, b)
    | Ast.Path (a, b)
    | Ast.Comp_elem (a, b)
    | Ast.Comp_attr (a, b)
    | Ast.Insert (_, a, b)
    | Ast.Replace_node (a, b)
    | Ast.Replace_value (a, b)
    | Ast.Rename_node (a, b) ->
        go ~fors ~bound a;
        go ~fors ~bound b
    | Ast.If (c, t, el) ->
        go ~fors ~bound c;
        go ~fors ~bound t;
        go ~fors ~bound el
    | Ast.Call (_, args) -> List.iter (go ~fors ~bound) args
    | Ast.Step (_, _, preds) -> List.iter (go ~fors ~bound) preds
    | Ast.Filter (e, preds) ->
        go ~fors ~bound e;
        List.iter (go ~fors ~bound) preds
    | Ast.Elem_ctor (_, attrs, content) ->
        List.iter
          (fun (_, parts) ->
            List.iter
              (function
                | Ast.A_expr e -> go ~fors ~bound e
                | Ast.A_text _ -> ())
              parts)
          attrs;
        List.iter (go ~fors ~bound) content
    | Ast.Typeswitch (op, cases, (_, de)) ->
        go ~fors ~bound op;
        List.iter (fun (_, _, e) -> go ~fors ~bound e) cases;
        go ~fors ~bound de
    | Ast.Text_ctor e | Ast.Comment_ctor e | Ast.Doc_ctor e | Ast.Neg e
    | Ast.Instance_of (e, _)
    | Ast.Cast_as (e, _, _)
    | Ast.Castable_as (e, _, _)
    | Ast.Treat_as (e, _)
    | Ast.Delete e ->
        go ~fors ~bound e
    | Ast.Literal _ | Ast.Var _ | Ast.Context_item | Ast.Root -> ()
  in
  (match prog.Ast.body with
  | Some e -> go ~fors:0 ~bound:VS.empty e
  | None -> ());
  List.rev !acc

(** Parse-and-run a main-module query.  Returns the result sequence and the
    pending update list the query produced (empty for read-only queries —
    it is the {e caller's} job to [Update.apply] the PUL, per XQUF). *)
let run ?(ctx = Context.empty ()) ~(resolver : module_resolver) (source : string)
    : Xdm.sequence * Update.pul =
  let prog = Parser.parse_prog source in
  let ctx = load_prolog ctx ~resolver prog in
  match prog.Ast.body with
  | None -> err "cannot execute a library module"
  | Some body ->
      let result = Eval.eval ctx body in
      (result, List.rev !(ctx.Context.pul))
