(** Static and dynamic evaluation contexts.

    The dynamic context is deliberately explicit about the two hooks that
    make XRPC pluggable: [doc_resolver] (how [fn:doc] finds documents —
    local database or data shipping over the network) and [dispatcher] (how
    [execute at] reaches remote peers — simulated network, real HTTP, or a
    test stub).  [bulk_rpc] switches between the paper's loop-lifted Bulk
    RPC and the one-at-a-time comparison mode of Table 2. *)

open Xrpc_xml
module Message = Xrpc_soap.Message

module Var_map = Map.Make (String)

let var_key (q : Qname.t) = q.Qname.uri ^ "}" ^ q.Qname.local

(** A user-defined function together with the module that owns it (needed to
    build XRPC requests naming that module). *)
type func = {
  decl : Ast.function_decl;
  fn_module_uri : string;
  fn_location : string;  (** at-hint where the module source lives *)
}

type func_key = string * string * int (* uri, local, arity *)

(** How loop-dependent [execute at] applications reach the wire.
    [Rpc_auto] defers to [bulk_rpc] (and, through it, whatever chooser the
    optimizer installed); [Rpc_bulk] forces the paper's loop-lifted Bulk
    RPC; [Rpc_singles] forces the one-message-per-call comparison mode of
    Table 2 — the debug override behind [XRPC_FORCE_STRATEGY]. *)
type rpc_mode = Rpc_auto | Rpc_bulk | Rpc_singles

let rpc_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "bulk" -> Some Rpc_bulk
  | "singles" | "single" | "one-at-a-time" -> Some Rpc_singles
  | "auto" -> Some Rpc_auto
  | _ -> None

let rpc_mode_name = function
  | Rpc_auto -> "auto"
  | Rpc_bulk -> "bulk"
  | Rpc_singles -> "singles"

(** How [execute at] reaches the network.  [call] performs one
    (possibly bulk) request; [call_parallel] dispatches several requests to
    distinct peers "at the same time" — a simulated transport charges the
    maximum rather than the sum of their latencies (§3.2, Parallel &
    Out-Of-Order). *)
type dispatcher = {
  call : dest:string -> Message.request -> Message.t;
  call_parallel : (string * Message.request) list -> Message.t list;
}

let sequential_dispatcher call =
  { call; call_parallel = List.map (fun (dest, req) -> call ~dest req) }

type t = {
  vars : Xdm.sequence Var_map.t;
  ctx_item : Xdm.item option;
  ctx_pos : int;
  ctx_size : int;
  funcs : (func_key, func) Hashtbl.t;
  imports : (string * string) list ref;  (** module uri -> at-hint *)
  doc_resolver : string -> Store.t;
  dispatcher : dispatcher option;
  dest_resolver : (string -> string) option;
      (** rewrite [execute at] destinations before dispatch — the hook a
          shard router installs to turn a virtual [xrpc://shard/<key>]
          destination into the URI of a live peer holding that key *)
  pul : Update.pul ref;
  options : (string * string) list ref;  (** expanded name -> value *)
  query_id : Message.query_id option;
  bulk_rpc : bool;
  rpc_mode : rpc_mode;
      (** per-query override of [bulk_rpc]; [Rpc_auto] (the default)
          leaves the decision to [bulk_rpc] *)
  fragments : bool;
      (** footnote-4 extension: ship descendant node parameters as
          [xrpc:nodeid] references (preserves ancestor relationships) *)
  call_depth : int;
}

exception No_such_document of string

let empty () =
  {
    vars = Var_map.empty;
    ctx_item = None;
    ctx_pos = 0;
    ctx_size = 0;
    funcs = Hashtbl.create 16;
    imports = ref [];
    doc_resolver = (fun uri -> raise (No_such_document uri));
    dispatcher = None;
    dest_resolver = None;
    pul = ref [];
    options = ref [];
    query_id = None;
    bulk_rpc = true;
    rpc_mode = Rpc_auto;
    fragments = false;
    call_depth = 0;
  }

let bind_var ctx q v = { ctx with vars = Var_map.add (var_key q) v ctx.vars }

let lookup_var ctx q =
  match Var_map.find_opt (var_key q) ctx.vars with
  | Some v -> v
  | None -> Xdm.dyn_error "XPST0008: undefined variable $%s" (Qname.to_string q)

let with_context_item ctx item pos size =
  { ctx with ctx_item = Some item; ctx_pos = pos; ctx_size = size }

let context_node ctx =
  match ctx.ctx_item with
  | Some (Xdm.Node n) -> n
  | Some (Xdm.Atomic _) -> Xdm.dyn_error "context item is not a node"
  | None -> Xdm.dyn_error "XPDY0002: context item is undefined"

let register_function ctx ~module_uri ~location (decl : Ast.function_decl) =
  let key =
    (decl.Ast.fn_name.Qname.uri, decl.Ast.fn_name.Qname.local,
     List.length decl.Ast.fn_params)
  in
  Hashtbl.replace ctx.funcs key
    { decl; fn_module_uri = module_uri; fn_location = location }

let find_function ctx (q : Qname.t) arity =
  Hashtbl.find_opt ctx.funcs (q.Qname.uri, q.Qname.local, arity)

let option_value ctx (q : Qname.t) =
  List.assoc_opt (var_key q) !(ctx.options)

let set_option ctx (q : Qname.t) v =
  ctx.options := (var_key q, v) :: !(ctx.options)

(** The isolation level selected with [declare option xrpc:isolation]. *)
let isolation ctx =
  match option_value ctx (Qname.make ~uri:Qname.ns_xrpc "isolation") with
  | Some "repeatable" -> `Repeatable
  | Some "snapshot" -> `Snapshot
  | _ -> `None

let timeout ctx =
  match option_value ctx (Qname.make ~uri:Qname.ns_xrpc "timeout") with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 30)
  | None -> 30
