(** Canonical query text — the plan-cache key (§3.3).

    Two sources that differ only in whitespace or [(: comments :)] should
    share one cached plan, so the key is the token stream re-rendered in a
    single canonical spelling: tokens separated by one space, literals
    kind-tagged so [3], [3.0] and [3e0] (integer, decimal, double — all of
    which print alike through OCaml floats) can never collide with each
    other or with a name.

    Direct element constructors are the one construct the lexer cannot
    see through: the parser hands [<name ...] to a character-level parser
    in which interior whitespace is {e semantic} ([<a> 1 </a>] and
    [<a>1</a>] are different queries, yet they lex to the same token
    stream).  When a [<] is immediately followed by a constructor-looking
    character, canonicalization falls back to the raw source text — repeat
    queries still hit byte-for-byte, they just stop being
    whitespace-insensitive.  The fallback is prefixed so it can never
    collide with a canonical rendering (which contains no NUL). *)

let raw_prefix = "raw\000"

let render = function
  | Lexer.Name ("", l) -> l
  | Lexer.Name (p, l) -> p ^ ":" ^ l
  | Lexer.Star_colon l -> "*:" ^ l
  | Lexer.Ns_star p -> p ^ ":*"
  (* '#' cannot start or continue a name, so a kind tag built on it keeps
     numeric literals disjoint from names and from each other *)
  | Lexer.Int_lit i -> "#" ^ string_of_int i
  | Lexer.Dec_lit f -> "#d" ^ string_of_float f
  | Lexer.Dbl_lit f -> "#e" ^ string_of_float f
  | Lexer.Str_lit s -> Printf.sprintf "%S" s
  | Lexer.Var ("", l) -> "$" ^ l
  | Lexer.Var (p, l) -> "$" ^ p ^ ":" ^ l
  | Lexer.Sym s -> s
  | Lexer.Eof -> ""

(* Is this [Sym "<"] plausibly the start of a direct constructor?  The
   char right after the '<' decides: a name-start character (element
   constructor), '!' (comment/CDATA) or '?' (processing instruction).
   Comparisons are written with space or a non-name operand after '<', so
   ordinary queries do not trip this. *)
let constructor_suspect (lx : Lexer.t) =
  let next = lx.Lexer.tok_start + 1 in
  next < String.length lx.Lexer.src
  &&
  match lx.Lexer.src.[next] with
  | '!' | '?' -> true
  | c -> Lexer.is_name_start c

exception Fallback

(** [canonical source] — the cache key for [source]: a
    whitespace/comment-insensitive canonical rendering, or (for sources
    containing direct constructors, or that do not lex) the raw text. *)
let canonical (source : string) : string =
  match
    let buf = Buffer.create (String.length source) in
    let lx = Lexer.make source in
    let first = ref true in
    let rec loop () =
      match lx.Lexer.tok with
      | Lexer.Eof -> Buffer.contents buf
      | tok ->
          (match tok with
          | Lexer.Sym "<" when constructor_suspect lx -> raise Fallback
          | _ -> ());
          if !first then first := false else Buffer.add_char buf ' ';
          Buffer.add_string buf (render tok);
          Lexer.next lx;
          loop ()
    in
    loop ()
  with
  | key -> key
  | exception (Fallback | Lexer.Lex_error _) -> raw_prefix ^ source

(** Did [canonical] fall back to raw text? (Exposed for tests/stats.) *)
let is_raw key =
  String.length key >= String.length raw_prefix
  && String.sub key 0 (String.length raw_prefix) = raw_prefix
