(** Static checking — the XQuery static errors our dynamic evaluator would
    otherwise only hit mid-query.

    XQuery 1.0 requires unbound variable references (XPST0008) and unknown
    function calls (XPST0017) to be {e static} errors, raised before any
    evaluation.  For XRPC this matters doubly: a peer should reject a bad
    module at compile time (one fault) rather than halfway through a bulk
    request with side effects already queued.  The checker walks the AST
    with the statically-known variable environment and the function
    registry (user functions + builtins + [xs:] constructors). *)

open Xrpc_xml

type error = { code : string; message : string }

let errf code fmt =
  Printf.ksprintf (fun message -> { code; message }) fmt

let error_to_string e = Printf.sprintf "%s: %s" e.code e.message

exception Static_error of error list

let known_function (ctx : Context.t) (q : Qname.t) arity =
  q.Qname.uri = Qname.ns_xs
  || Context.find_function ctx q arity <> None
  || Builtins.find q arity <> None

(** [check_expr ctx ~bound e] returns the static errors of [e] given the
    variables in scope. *)
let check_expr (ctx : Context.t) ~(bound : Ast.Var_set.t) (e : Ast.expr) :
    error list =
  let errors = ref [] in
  let note e = errors := e :: !errors in
  let var_known bound (q : Qname.t) =
    Ast.Var_set.mem (Ast.var_set_key q) bound
    || Context.Var_map.mem (Context.var_key q) ctx.Context.vars
  in
  let rec go bound (e : Ast.expr) =
    match e with
    | Ast.Var q ->
        if not (var_known bound q) then
          note (errf "XPST0008" "undefined variable $%s" (Qname.to_string q))
    | Ast.Literal _ | Ast.Context_item | Ast.Root -> ()
    | Ast.Call (q, args) ->
        if not (known_function ctx q (List.length args)) then
          note
            (errf "XPST0017" "unknown function %s#%d" (Qname.expanded q)
               (List.length args));
        List.iter (go bound) args
    | Ast.Execute_at (d, q, args) ->
        (* the target function must at least be known locally (imported),
           so its module URI and updating-ness are available to build the
           request — the paper's module-based transport requires it *)
        if not (known_function ctx q (List.length args)) then
          note
            (errf "XPST0017"
               "execute at: function %s#%d is not imported (import its module first)"
               (Qname.expanded q) (List.length args));
        go bound d;
        List.iter (go bound) args
    | Ast.Sequence es -> List.iter (go bound) es
    | Ast.Range (a, b)
    | Ast.Arith (_, a, b)
    | Ast.Compare (_, a, b)
    | Ast.And (a, b)
    | Ast.Or (a, b)
    | Ast.Union (a, b)
    | Ast.Intersect (a, b)
    | Ast.Except (a, b)
    | Ast.Path (a, b)
    | Ast.Comp_elem (a, b)
    | Ast.Comp_attr (a, b)
    | Ast.Insert (_, a, b)
    | Ast.Replace_node (a, b)
    | Ast.Replace_value (a, b)
    | Ast.Rename_node (a, b) ->
        go bound a;
        go bound b
    | Ast.Neg a
    | Ast.Text_ctor a
    | Ast.Comment_ctor a
    | Ast.Doc_ctor a
    | Ast.Delete a
    | Ast.Instance_of (a, _)
    | Ast.Cast_as (a, _, _)
    | Ast.Castable_as (a, _, _)
    | Ast.Treat_as (a, _) ->
        go bound a
    | Ast.If (c, t, e) ->
        go bound c;
        go bound t;
        go bound e
    | Ast.Flwor (clauses, order_by, ret) ->
        let bound =
          List.fold_left
            (fun bound clause ->
              match clause with
              | Ast.For (v, posv, e) ->
                  go bound e;
                  let bound = Ast.Var_set.add (Ast.var_set_key v) bound in
                  (match posv with
                  | Some p -> Ast.Var_set.add (Ast.var_set_key p) bound
                  | None -> bound)
              | Ast.Let (v, e) ->
                  go bound e;
                  Ast.Var_set.add (Ast.var_set_key v) bound
              | Ast.Where e ->
                  go bound e;
                  bound)
            bound clauses
        in
        List.iter (fun (e, _) -> go bound e) order_by;
        go bound ret
    | Ast.Quantified (_, binds, sat) ->
        let bound =
          List.fold_left
            (fun bound (v, e) ->
              go bound e;
              Ast.Var_set.add (Ast.var_set_key v) bound)
            bound binds
        in
        go bound sat
    | Ast.Step (_, _, preds) -> List.iter (go bound) preds
    | Ast.Filter (e, preds) ->
        go bound e;
        List.iter (go bound) preds
    | Ast.Elem_ctor (_, attrs, content) ->
        List.iter
          (fun (_, parts) ->
            List.iter
              (function Ast.A_expr e -> go bound e | Ast.A_text _ -> ())
              parts)
          attrs;
        List.iter (go bound) content
    | Ast.Typeswitch (op, cases, (dv, de)) ->
        go bound op;
        List.iter
          (fun (_, v, e) ->
            let bound =
              match v with
              | Some v -> Ast.Var_set.add (Ast.var_set_key v) bound
              | None -> bound
            in
            go bound e)
          cases;
        let bound =
          match dv with
          | Some v -> Ast.Var_set.add (Ast.var_set_key v) bound
          | None -> bound
        in
        go bound de
  in
  go bound e;
  List.rev !errors

(** [check_prog ctx prog] — static errors of a whole program: every
    function body is checked under its parameters, the main expression
    under the prolog-declared variables.  [ctx] must already have the
    prolog loaded (functions registered, imports resolved, variables
    bound). *)
let check_prog (ctx : Context.t) (prog : Ast.prog) : error list =
  (* variables this prolog itself declares are statically in scope for the
     body and for function bodies, whether or not pass 2 has bound them
     yet — lets the checker run on a statically-loaded (plan-cacheable)
     context, before global initializers are evaluated *)
  let globals =
    List.fold_left
      (fun s decl ->
        match decl with
        | Ast.P_var (v, _) -> Ast.Var_set.add (Ast.var_set_key v) s
        | _ -> s)
      Ast.Var_set.empty prog.Ast.prolog
  in
  let fn_errors =
    List.concat_map
      (fun decl ->
        match decl with
        | Ast.P_function { fn_body = Some body; fn_params; fn_name; _ } ->
            let bound =
              List.fold_left
                (fun s (p, _) -> Ast.Var_set.add (Ast.var_set_key p) s)
                globals fn_params
            in
            List.map
              (fun e ->
                { e with
                  message =
                    Printf.sprintf "in function %s: %s"
                      (Qname.to_string fn_name) e.message })
              (check_expr ctx ~bound body)
        | _ -> [])
      prog.Ast.prolog
  in
  let body_errors =
    match prog.Ast.body with
    | Some body -> check_expr ctx ~bound:globals body
    | None -> []
  in
  fn_errors @ body_errors

(** Raise {!Static_error} if the program has static errors. *)
let check_prog_exn ctx prog =
  match check_prog ctx prog with [] -> () | errors -> raise (Static_error errors)
