(** SOAP XRPC messages (§2.1, §2.2, §3.2 of the paper).

    A request names a module (URI + at-hint location), a function and its
    arity, and carries one or more [xrpc:call] bodies — more than one makes
    it a {e Bulk RPC} (§3.2).  The optional [queryID] child selects
    repeatable-read isolation (§2.2); responses piggyback the list of
    participating peers needed for 2PC registration (§2.3).  Faults use the
    SOAP Fault format.  The same channel also carries the
    WS-AtomicTransaction-style Prepare/Commit/Rollback control messages. *)

open Xrpc_xml

(** Repeatable-read isolation handle: originating host, UTC start timestamp
    and a {e relative} timeout in seconds (§2.2, "SOAP XRPC Extension:
    Isolation"). *)
type isolation_level = Repeatable | Snapshot

type query_id = {
  host : string;
  timestamp : string;
  timeout : int;
  level : isolation_level;
      (** [Snapshot] asks peers to pin the state as of [timestamp] (the
          distributed snapshot isolation sketched in §2.2); [Repeatable]
          pins at first contact *)
}

type request = {
  module_uri : string;  (** target namespace of the module *)
  location : string;  (** at-hint URL of the module source *)
  method_ : string;  (** function local name *)
  arity : int;
  updating : bool;  (** calls an XQUF updating function *)
  fragments : bool;
      (** footnote-4 extension: descendant node parameters are sent as
          [xrpc:nodeid] references into earlier parameters *)
  query_id : query_id option;
  idem_key : string option;
      (** idempotency key: peers cache the response under this key so a
          retried or duplicated request (at-least-once transports) returns
          the cached reply instead of re-executing updating functions *)
  cache_ok : bool;
      (** [false] rides as [cache="off"] and forbids the serving peer to
          answer from its semantic result cache — the escape hatch the
          differential tests use to compare cached vs fresh answers.  The
          default [true] leaves the wire format unchanged. *)
  calls : Xdm.sequence list list;
      (** one entry per call; each call is [arity] parameter sequences *)
}

type response = {
  resp_module : string;
  resp_method : string;
  results : Xdm.sequence list;  (** one result sequence per call *)
  peers : string list;  (** piggybacked participating peers (§2.3) *)
  cached : bool;
      (** the serving peer answered from its semantic result cache
          (rides as [cached="true"], omitted otherwise) *)
  db_version : int option;
      (** the serving peer's database version token ([dbVersion]
          attribute) — lets callers observe remote data movement without
          another round trip *)
}

type fault = { fault_code : [ `Sender | `Receiver ]; reason : string }

type tx_op =
  | Prepare
  | Commit
  | Rollback
  | Status
      (** in-doubt recovery: a participant that prepared but missed the
          decision asks the coordinator for the outcome (presumed abort:
          an unknown transaction means "aborted") *)

type t =
  | Request of request
  | Response of response
  | Fault of fault
  | Tx_request of tx_op * query_id
  | Tx_response of { ok : bool; info : string }

exception Protocol_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let query_id_key (q : query_id) = q.host ^ "@" ^ q.timestamp

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let xrpc local = Qname.make ~prefix:"xrpc" ~uri:Qname.ns_xrpc local
let env local = Qname.make ~prefix:"env" ~uri:Qname.ns_env local

(* When tracing is active the envelope grows a SOAP Header carrying the
   (trace-id, parent-span) pair — see protocol/XRPC.xsd, xrpc:trace — so a
   serving peer can hang its spans under the caller's span tree. *)
let trace_header = function
  | None -> []
  | Some (trace_id, parent_span) ->
      [
        Tree.elem (xrpc "trace")
          ~attrs:
            [
              Tree.attr (Qname.make "traceId") trace_id;
              Tree.attr (Qname.make "parentSpan") parent_span;
            ]
          [];
      ]

(* Profiled responses carry the serving peer's per-phase wall costs back
   as one [serverProfile="name=ms;..."] attribute on xrpc:response
   (protocol/XRPC.xsd), so a client profile of a distributed query can
   break down remote time into parse/compile/exec/commit without a second
   round trip.  An attribute rather than a header element because XML
   serialization and parsing cost per *node*, and this rides every
   profiled response — measured, a Header/serverProfile element pair cost
   ~5 µs per response against ~0.5 µs for the attribute. *)
(* %.3f by hand: Printf's interpreted float formatting costs ~0.5 µs per
   call, and there are four phases on every profiled response *)
let fixed3 ms =
  let thousandths = int_of_float ((ms *. 1000.) +. 0.5) in
  let whole = thousandths / 1000 and frac = thousandths mod 1000 in
  string_of_int whole ^ "."
  ^ (if frac < 10 then "00" else if frac < 100 then "0" else "")
  ^ string_of_int frac

let profile_attr = function
  | None | Some [] -> []
  | Some phases ->
      [
        Tree.attr
          (Qname.make "serverProfile")
          (String.concat ";"
             (List.map (fun (name, ms) -> name ^ "=" ^ fixed3 ms) phases));
      ]

let envelope ?trace body_children =
  let header =
    match trace_header trace with
    | [] -> []
    | children -> [ Tree.elem (env "Header") children ]
  in
  Tree.elem (env "Envelope")
    ~attrs:
      [
        Tree.attr (Qname.make ~prefix:"xmlns" "xrpc") Qname.ns_xrpc;
        Tree.attr (Qname.make ~prefix:"xmlns" "env") Qname.ns_env;
        Tree.attr (Qname.make ~prefix:"xmlns" "xs") Qname.ns_xs;
        Tree.attr (Qname.make ~prefix:"xmlns" "xsi") Qname.ns_xsi;
        Tree.attr
          (Qname.make ~prefix:"xsi" ~uri:Qname.ns_xsi "schemaLocation")
          "http://monetdb.cwi.nl/XQuery http://monetdb.cwi.nl/XQuery/XRPC.xsd";
      ]
    (header @ [ Tree.elem (env "Body") body_children ])

let query_id_elem (q : query_id) =
  Tree.elem (xrpc "queryID")
    ~attrs:
      ([
         Tree.attr (Qname.make "host") q.host;
         Tree.attr (Qname.make "timestamp") q.timestamp;
         Tree.attr (Qname.make "timeout") (string_of_int q.timeout);
       ]
      @
      match q.level with
      | Repeatable -> []
      | Snapshot -> [ Tree.attr (Qname.make "level") "snapshot" ])
    []

let to_tree ?trace ?server_profile ?(profile_flag = false) = function
  | Request r ->
      let calls =
        List.map
          (fun params ->
            Tree.elem (xrpc "call")
              (Marshal.s2n_call ~fragments:r.fragments params))
          r.calls
      in
      let qid = match r.query_id with None -> [] | Some q -> [ query_id_elem q ] in
      envelope ?trace
        [
          Tree.elem (xrpc "request")
            ~attrs:
              ([
                 Tree.attr (Qname.make "module") r.module_uri;
                 Tree.attr (Qname.make "method") r.method_;
                 Tree.attr (Qname.make "arity") (string_of_int r.arity);
                 Tree.attr (Qname.make "location") r.location;
               ]
              @ (if r.updating then [ Tree.attr (Qname.make "updCall") "true" ] else [])
              @ (match r.idem_key with
                | Some k -> [ Tree.attr (Qname.make "idemKey") k ]
                | None -> [])
              (* profile="true" asks the serving peer to measure and
                 return its phase costs; an attribute (like idemKey, not
                 a header element) to keep the flag at one node of cost *)
              @ (if profile_flag then [ Tree.attr (Qname.make "profile") "true" ]
                 else [])
              (* cache="off" only when the caller opts out — the common
                 case costs zero wire bytes *)
              @ (if r.cache_ok then []
                 else [ Tree.attr (Qname.make "cache") "off" ])
              @ if r.fragments then [ Tree.attr (Qname.make "fragments") "true" ] else [])
            (qid @ calls);
        ]
  | Response r ->
      let seqs = List.map Marshal.s2n r.results in
      let peers =
        match r.peers with
        | [] -> []
        | ps ->
            [
              Tree.elem (xrpc "participatingPeers")
                (List.map
                   (fun p ->
                     Tree.elem (xrpc "peer")
                       ~attrs:[ Tree.attr (Qname.make "uri") p ]
                       [])
                   ps);
            ]
      in
      envelope ?trace
        [
          Tree.elem (xrpc "response")
            ~attrs:
              ([
                 Tree.attr (Qname.make "module") r.resp_module;
                 Tree.attr (Qname.make "method") r.resp_method;
               ]
              @ (if r.cached then [ Tree.attr (Qname.make "cached") "true" ]
                 else [])
              @ (match r.db_version with
                | Some v ->
                    [ Tree.attr (Qname.make "dbVersion") (string_of_int v) ]
                | None -> [])
              @ profile_attr server_profile)
            (peers @ seqs);
        ]
  | Fault f ->
      let code = match f.fault_code with `Sender -> "env:Sender" | `Receiver -> "env:Receiver" in
      envelope ?trace
        [
          Tree.elem (env "Fault")
            [
              Tree.elem (env "Code") [ Tree.elem (env "Value") [ Tree.Text code ] ];
              Tree.elem (env "Reason")
                [
                  Tree.elem (env "Text")
                    ~attrs:[ Tree.attr (Qname.make ~prefix:"xml" ~uri:Qname.ns_xml "lang") "en" ]
                    [ Tree.Text f.reason ];
                ];
            ];
        ]
  | Tx_request (op, q) ->
      let opname =
        match op with
        | Prepare -> "prepare"
        | Commit -> "commit"
        | Rollback -> "rollback"
        | Status -> "status"
      in
      envelope ?trace
        [
          Tree.elem (xrpc "transaction")
            ~attrs:[ Tree.attr (Qname.make "operation") opname ]
            [ query_id_elem q ];
        ]
  | Tx_response r ->
      envelope ?trace
        [
          Tree.elem (xrpc "transactionResult")
            ~attrs:
              [
                Tree.attr (Qname.make "ok") (if r.ok then "true" else "false");
                Tree.attr (Qname.make "info") r.info;
              ]
            [];
        ]

(** Serialize a message to its on-the-wire form (with XML declaration).
    When tracing is enabled and no explicit [?trace] pair is given, the
    ambient span context ([Xrpc_obs.Trace.propagation]) is stamped into the
    envelope header automatically; with tracing off the wire format is
    byte-identical to previous releases. *)
let to_string ?trace ?server_profile m =
  let trace =
    match trace with Some _ as t -> t | None -> Xrpc_obs.Trace.propagation ()
  in
  (* a request serialized while client-side profiling is on asks the
     serving peer for its phase breakdown (the profile attribute) —
     this is what lets call_profiled see a remote process's costs *)
  let profile_flag =
    match m with Request _ -> Xrpc_obs.Profile.enabled () | _ -> false
  in
  Serialize.document_to_string
    (Tree.Document [ to_tree ?trace ?server_profile ~profile_flag m ])

(** Like {!to_string}, but appending the wire form to [buf] — the
    streaming-serialize hook: the event-loop server hands each
    connection's reused output buffer here, so an envelope goes straight
    from the tree into the socket's write queue without an intermediate
    per-response string. *)
let to_buffer ?trace ?server_profile buf m =
  let trace =
    match trace with Some _ as t -> t | None -> Xrpc_obs.Trace.propagation ()
  in
  let profile_flag =
    match m with Request _ -> Xrpc_obs.Profile.enabled () | _ -> false
  in
  Serialize.document_to_buffer buf
    (Tree.Document [ to_tree ?trace ?server_profile ~profile_flag m ])

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let find_attr attrs local =
  List.find_map
    (fun (a : Tree.attr) ->
      if a.name.Qname.local = local then Some a.value else None)
    attrs

let elem_children children =
  List.filter_map
    (function Tree.Element _ as e -> Some e | _ -> None)
    children

let parse_query_id = function
  | Tree.Element { attrs; _ } ->
      {
        host = Option.value ~default:"" (find_attr attrs "host");
        timestamp = Option.value ~default:"" (find_attr attrs "timestamp");
        timeout =
          (match find_attr attrs "timeout" with
          | Some s -> ( try int_of_string s with _ -> 30)
          | None -> 30);
        level =
          (match find_attr attrs "level" with
          | Some "snapshot" -> Snapshot
          | _ -> Repeatable);
      }
  | _ -> err "malformed queryID"

let of_tree tree =
  let body =
    match tree with
    | Tree.Document [ Tree.Element { name; children; _ } ]
      when name.Qname.local = "Envelope" -> (
        match
          List.find_opt
            (function
              | Tree.Element { name; _ } -> name.Qname.local = "Body"
              | _ -> false)
            (elem_children children)
        with
        | Some (Tree.Element { children; _ }) -> elem_children children
        | _ -> err "SOAP envelope without Body")
    | _ -> err "not a SOAP envelope"
  in
  match body with
  | [ Tree.Element { name; attrs; children } ] when name.Qname.local = "request" ->
      let get what =
        match find_attr attrs what with
        | Some v -> v
        | None -> err "request missing %s attribute" what
      in
      let kids = elem_children children in
      let query_id =
        List.find_opt
          (function
            | Tree.Element { name; _ } -> name.Qname.local = "queryID"
            | _ -> false)
          kids
        |> Option.map parse_query_id
      in
      let calls =
        List.filter_map
          (function
            | Tree.Element { name; children; _ } when name.Qname.local = "call" ->
                Some (Marshal.n2s_call (elem_children children))
            | _ -> None)
          kids
      in
      Request
        {
          module_uri = get "module";
          location = Option.value ~default:"" (find_attr attrs "location");
          method_ = get "method";
          arity = (try int_of_string (get "arity") with _ -> 0);
          updating = find_attr attrs "updCall" = Some "true";
          fragments = find_attr attrs "fragments" = Some "true";
          query_id;
          idem_key = find_attr attrs "idemKey";
          cache_ok = find_attr attrs "cache" <> Some "off";
          calls;
        }
  | [ Tree.Element { name; attrs; children } ] when name.Qname.local = "response" ->
      let kids = elem_children children in
      let peers =
        List.concat_map
          (function
            | Tree.Element { name; children; _ }
              when name.Qname.local = "participatingPeers" ->
                List.filter_map
                  (function
                    | Tree.Element { name; attrs; _ }
                      when name.Qname.local = "peer" ->
                        find_attr attrs "uri"
                    | _ -> None)
                  (elem_children children)
            | _ -> [])
          kids
      in
      let results =
        List.filter_map
          (function
            | Tree.Element { name; _ } as e when name.Qname.local = "sequence" ->
                Some (Marshal.n2s e)
            | _ -> None)
          kids
      in
      Response
        {
          resp_module = Option.value ~default:"" (find_attr attrs "module");
          resp_method = Option.value ~default:"" (find_attr attrs "method");
          results;
          peers;
          cached = find_attr attrs "cached" = Some "true";
          db_version =
            Option.bind (find_attr attrs "dbVersion") int_of_string_opt;
        }
  | [ Tree.Element { name; children; _ } ] when name.Qname.local = "Fault" ->
      let kids = elem_children children in
      let code =
        match
          List.find_opt
            (function
              | Tree.Element { name; _ } -> name.Qname.local = "Code"
              | _ -> false)
            kids
        with
        | Some c when String.length (Tree.string_value c) > 0
                      && String.length (Tree.string_value c) >= 6
                      && String.sub (String.trim (Tree.string_value c))
                           (String.length (String.trim (Tree.string_value c)) - 6) 6
                         = "Sender" -> `Sender
        | _ -> `Receiver
      in
      let reason =
        match
          List.find_opt
            (function
              | Tree.Element { name; _ } -> name.Qname.local = "Reason"
              | _ -> false)
            kids
        with
        | Some r -> String.trim (Tree.string_value r)
        | None -> ""
      in
      Fault { fault_code = code; reason }
  | [ Tree.Element { name; attrs; children } ] when name.Qname.local = "transaction" ->
      let op =
        match find_attr attrs "operation" with
        | Some "prepare" -> Prepare
        | Some "commit" -> Commit
        | Some "rollback" -> Rollback
        | Some "status" -> Status
        | _ -> err "unknown transaction operation"
      in
      let qid =
        match elem_children children with
        | q :: _ -> parse_query_id q
        | [] -> err "transaction without queryID"
      in
      Tx_request (op, qid)
  | [ Tree.Element { name; attrs; _ } ] when name.Qname.local = "transactionResult" ->
      Tx_response
        {
          ok = find_attr attrs "ok" = Some "true";
          info = Option.value ~default:"" (find_attr attrs "info");
        }
  | _ -> err "unrecognized SOAP body"

(* The propagated (trace-id, parent-span) pair, if the envelope carries an
   xrpc:trace header. *)
let trace_of_tree = function
  | Tree.Document [ Tree.Element { name; children; _ } ]
    when name.Qname.local = "Envelope" ->
      List.find_map
        (function
          | Tree.Element { name; children; _ } when name.Qname.local = "Header" ->
              List.find_map
                (function
                  | Tree.Element { name; attrs; _ }
                    when name.Qname.local = "trace" -> (
                      match (find_attr attrs "traceId", find_attr attrs "parentSpan") with
                      | Some t, Some p -> Some (t, p)
                      | _ -> None)
                  | _ -> None)
                (elem_children children)
          | _ -> None)
        (elem_children children)
  | _ -> None

(* The serving peer's phase costs, if the response element carries a
   serverProfile attribute. *)
let parse_phase_list text =
  List.filter_map
    (fun pair ->
      match String.index_opt pair '=' with
      | Some i ->
          Option.map
            (fun v -> (String.sub pair 0 i, v))
            (float_of_string_opt
               (String.sub pair (i + 1) (String.length pair - i - 1)))
      | None -> None)
    (String.split_on_char ';' text)

let server_profile_of_tree = function
  | Tree.Document [ Tree.Element { name; children; _ } ]
    when name.Qname.local = "Envelope" ->
      List.find_map
        (function
          | Tree.Element { name; children; _ } when name.Qname.local = "Body" ->
              List.find_map
                (function
                  | Tree.Element { name; attrs; _ }
                    when name.Qname.local = "response" ->
                      Option.map parse_phase_list
                        (find_attr attrs "serverProfile")
                  | _ -> None)
                (elem_children children)
          | _ -> None)
        (elem_children children)
  | _ -> None

(* Did the caller stamp profile="true" on the request element? *)
let profile_requested_of_tree = function
  | Tree.Document [ Tree.Element { name; children; _ } ]
    when name.Qname.local = "Envelope" ->
      List.exists
        (function
          | Tree.Element { name; children; _ } when name.Qname.local = "Body" ->
              List.exists
                (function
                  | Tree.Element { name; attrs; _ }
                    when name.Qname.local = "request" ->
                      find_attr attrs "profile" = Some "true"
                  | _ -> false)
                (elem_children children)
          | _ -> false)
        (elem_children children)
  | _ -> false

(** Parse an on-the-wire message. *)
let of_string s = of_tree (Xml_parse.document s)

(** Parse a message together with the serving peer's phase costs, if the
    response element carries a serverProfile attribute. *)
let of_string_profiled s =
  let tree = Xml_parse.document s in
  (of_tree tree, server_profile_of_tree tree)

(** Server-side parse: the message, its propagated trace context, and
    whether the caller asked for the phase breakdown (xrpc:profile).
    [?pos]/[?len] parse the envelope out of a window of [s] — the
    streaming-parse hook: the event-loop server points this directly at
    the request body inside its connection buffer, copy-free. *)
let of_string_server ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let tree = Xml_parse.document_sub s ~pos ~len in
  (of_tree tree, trace_of_tree tree, profile_requested_of_tree tree)

(** Parse a message together with its propagated trace context, if any. *)
let of_string_traced s =
  let tree = Xml_parse.document s in
  (of_tree tree, trace_of_tree tree)
