(** Transport abstraction: how serialized SOAP XRPC messages move between
    peers.

    A transport is a pair of send functions over raw message bodies
    (strings).  [send_parallel] exists because MonetDB/XQuery dispatches
    Bulk RPC requests to distinct peers in parallel (§3.2); a simulated
    transport charges the {e maximum} of the individual costs instead of
    their sum, a real transport may use threads.

    This module also owns the {e failure vocabulary} shared by every
    transport: a typed {!Error} exception (timeout, unreachable peer, open
    circuit) and a {!policy} describing per-request timeout, bounded
    retries with exponential backoff + jitter, and a per-destination
    circuit breaker.  [with_policy] lifts any transport into one that
    enforces the policy; the simulated network maps the policy onto its
    virtual clock, the HTTP transport maps it onto real socket timeouts
    and [sleepf], so the same recovery code is exercised in both worlds. *)

module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace

type t = {
  send : dest:string -> string -> string;
      (** POST a request body to a peer, return the response body *)
  send_parallel : (string * string) list -> string list;
      (** same, to several (dest, body) pairs concurrently *)
}

let sequential send =
  { send; send_parallel = List.map (fun (dest, body) -> send ~dest body) }

(* ------------------------------------------------------------------ *)
(* Failure vocabulary — the shared {!Xrpc_error}, re-exported so every  *)
(* existing [Transport.Error { kind; _ }] site keeps working            *)
(* ------------------------------------------------------------------ *)

type error_kind = Xrpc_error.kind =
  | Timeout
  | Unreachable
  | Circuit_open
  | Protocol of string
  | Fault of [ `Sender | `Receiver ]

exception Error = Xrpc_error.Error

let error = Xrpc_error.error
let kind_name = Xrpc_error.kind_name
let error_to_string = Xrpc_error.error_to_string

(* ------------------------------------------------------------------ *)
(* Recovery policy                                                     *)
(* ------------------------------------------------------------------ *)

type policy = {
  timeout_ms : float;
      (** per-request budget; real transports map it onto socket
          timeouts, the simulated one onto virtual waiting time *)
  max_retries : int;  (** retries after the first attempt *)
  backoff_base_ms : float;  (** delay before the first retry *)
  backoff_cap_ms : float;  (** exponential growth is clamped here *)
  backoff_jitter : float;
      (** fraction of the delay randomized away, in [0,1]: delay is drawn
          uniformly from [(1-j)·d, d] *)
  breaker_threshold : int;
      (** consecutive failures to a destination before its circuit opens;
          0 disables the breaker *)
  breaker_cooldown_ms : float;
      (** how long an open circuit rejects calls before one trial request
          is let through (half-open) *)
}

let default_policy =
  {
    timeout_ms = 1_000.;
    max_retries = 3;
    backoff_base_ms = 5.;
    backoff_cap_ms = 200.;
    backoff_jitter = 0.5;
    breaker_threshold = 8;
    breaker_cooldown_ms = 1_000.;
  }

(** [backoff_delay policy ~attempt ~rand] — the delay before retry
    [attempt] (0-based): exponential from [backoff_base_ms], clamped at
    [backoff_cap_ms], with the top [backoff_jitter] fraction randomized by
    [rand () : float in [0,1)] to de-synchronize competing clients. *)
let backoff_delay policy ~attempt ~rand =
  let expo = policy.backoff_base_ms *. (2. ** float_of_int attempt) in
  let capped = Float.min policy.backoff_cap_ms expo in
  let j = Float.max 0. (Float.min 1. policy.backoff_jitter) in
  capped *. (1. -. j +. (j *. rand ()))

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

type breaker_state = Closed | Open of float  (** opened_at *) | Half_open

type breaker = {
  mutable state : breaker_state;
  mutable consecutive_failures : int;
}

type policy_stats = {
  mutable attempts : int;  (** individual sends reaching the wire *)
  mutable retries : int;
  mutable failed_attempts : int;
  mutable gave_up : int;  (** requests that exhausted their retries *)
  mutable fast_fails : int;  (** rejected locally by an open circuit *)
  mutable circuit_opens : int;
  mutable backoff_ms : float;  (** total time spent backing off *)
}

type policied = {
  p_transport : t;  (** the wrapped transport enforcing the policy *)
  p_policy : policy;
  p_stats : policy_stats;
  breakers : (string, breaker) Hashtbl.t;  (** per-destination *)
  p_lock : Mutex.t;
      (** guards [breakers] and [p_stats] — the concurrent dispatch
          executor retries several legs at once *)
}

let transport p = p.p_transport
let policy p = p.p_policy
let stats p = p.p_stats

let breaker_state p dest =
  Mutex.lock p.p_lock;
  let s =
    match Hashtbl.find_opt p.breakers dest with
    | Some b -> b.state
    | None -> Closed
  in
  Mutex.unlock p.p_lock;
  s

(** [with_policy ~now ~sleep inner] — retry/timeout/breaker wrapper.
    [now] and [sleep] are in milliseconds on whatever clock the transport
    lives on (virtual for Simnet, wall for HTTP), so tests never spin real
    time.  [seed] makes the backoff jitter deterministic. *)
(* Pre-resolved metric handles: hot-path cost is a field increment. *)
let m_attempts = Metrics.counter "transport.attempts"
let m_retries = Metrics.counter "transport.retries"
let m_failed = Metrics.counter "transport.failed_attempts"
let m_gave_up = Metrics.counter "transport.gave_up"
let m_fast_fails = Metrics.counter "transport.fast_fails"
let m_circuit_opens = Metrics.counter "transport.circuit_opens"
let m_send_ms = Metrics.histogram "transport.send_ms"

let with_policy ?(policy = default_policy) ?(seed = 0)
    ?(executor = Executor.sequential) ~(now : unit -> float)
    ~(sleep : float -> unit) (inner : t) : policied =
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  let stats =
    {
      attempts = 0;
      retries = 0;
      failed_attempts = 0;
      gave_up = 0;
      fast_fails = 0;
      circuit_opens = 0;
      backoff_ms = 0.;
    }
  in
  let breakers = Hashtbl.create 8 in
  (* every mutable table and counter (breakers, stats, the jitter PRNG)
     lives behind one lock: the dispatch executor drives several legs'
     retry loops concurrently.  The lock is never held across a send. *)
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let rand () = Random.State.float rng 1.0 in
  let breaker dest =
    match Hashtbl.find_opt breakers dest with
    | Some b -> b
    | None ->
        let b = { state = Closed; consecutive_failures = 0 } in
        Hashtbl.replace breakers dest b;
        b
  in
  (* one attempt through the breaker: fast-fail when open, trial when the
     cooldown elapsed (half-open), book-keep transitions *)
  let guarded ~dest f =
    locked (fun () ->
        let b = breaker dest in
        match b.state with
        | Open since when now () -. since < policy.breaker_cooldown_ms ->
            stats.fast_fails <- stats.fast_fails + 1;
            Metrics.incr m_fast_fails;
            Trace.event ~detail:dest "breaker-fast-fail";
            error ~kind:Circuit_open ~dest
              "circuit open for %.0f more ms"
              (policy.breaker_cooldown_ms -. (now () -. since))
        | Open _ ->
            b.state <- Half_open;
            Trace.event ~detail:dest "breaker-half-open"
        | Closed | Half_open -> ());
    match f () with
    | r ->
        locked (fun () ->
            let b = breaker dest in
            b.consecutive_failures <- 0;
            b.state <- Closed);
        r
    | exception e ->
        locked (fun () ->
            let b = breaker dest in
            b.consecutive_failures <- b.consecutive_failures + 1;
            match b.state with
            | Half_open ->
                (* the trial request failed: back to open, fresh cooldown *)
                b.state <- Open (now ())
            | Closed
              when policy.breaker_threshold > 0
                   && b.consecutive_failures >= policy.breaker_threshold ->
                b.state <- Open (now ());
                stats.circuit_opens <- stats.circuit_opens + 1;
                Metrics.incr m_circuit_opens;
                Trace.event ~detail:dest "breaker-open"
            | _ -> ());
        raise e
  in
  let send ~dest body =
    Trace.with_span ~detail:dest "transport.send" @@ fun () ->
    let t0 = now () in
    let rec go attempt =
      locked (fun () -> stats.attempts <- stats.attempts + 1);
      Metrics.incr m_attempts;
      match guarded ~dest (fun () -> inner.send ~dest body) with
      | r ->
          Metrics.observe m_send_ms (now () -. t0);
          r
      | exception (Error { kind; _ } as e) ->
          locked (fun () ->
              stats.failed_attempts <- stats.failed_attempts + 1);
          Metrics.incr m_failed;
          Trace.event ~detail:(kind_name kind) "attempt-failed";
          (* an open circuit is a local decision: burning retries on it
             would just re-reject; surface it immediately *)
          if kind = Circuit_open || attempt >= policy.max_retries then begin
            if kind <> Circuit_open then begin
              locked (fun () -> stats.gave_up <- stats.gave_up + 1);
              Metrics.incr m_gave_up;
              Trace.event ~detail:dest "gave-up"
            end;
            raise e
          end
          else begin
            let d =
              locked (fun () ->
                  let d = backoff_delay policy ~attempt ~rand in
                  stats.retries <- stats.retries + 1;
                  stats.backoff_ms <- stats.backoff_ms +. d;
                  d)
            in
            Metrics.incr m_retries;
            Trace.event ~detail:(Printf.sprintf "%.1fms" d) "backoff";
            sleep d;
            go (attempt + 1)
          end
    in
    go 0
  in
  let send_parallel pairs =
    if not (Executor.is_sequential executor) then
      (* overlap mode: each leg runs its own full retry loop on the
         executor, so one slow or failing destination no longer gates the
         others *)
      Executor.map_list executor (fun (dest, body) -> send ~dest body) pairs
    else
      (* deterministic mode: one parallel dispatch (the simulated
         transport charges max-of-legs).  If any leg fails, fall back to
         per-leg retry loops — legs that already executed are re-sent,
         which is exactly what the peers' idempotency caches make safe. *)
      match inner.send_parallel pairs with
      | rs -> rs
      | exception Error _ ->
          List.map (fun (dest, body) -> send ~dest body) pairs
  in
  {
    p_transport = { send; send_parallel };
    p_policy = policy;
    p_stats = stats;
    breakers;
    p_lock = lock;
  }
