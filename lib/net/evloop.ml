(** Readiness-driven HTTP server core: one event loop, many connections.

    The thread-per-connection server (kept in {!Http} behind a config
    switch) burns a thread — stack, scheduler slot, runtime-lock churn —
    per peer, which caps it at a few hundred connections.  This core holds
    one {!Conn} state machine per connection instead and multiplexes them
    all over a single readiness call, so 10k mostly-idle keep-alive peers
    cost 10k small buffers and nothing else.  On Linux that call is
    level-triggered epoll(7) — the kernel keeps the interest set, one
    iteration costs O(ready fds) — with a portable poll(2) fallback
    elsewhere (both are tiny C stubs: [Unix.select] tops out at
    FD_SETSIZE = 1024 fds).

    The loop thread never executes a handler: a fully-parsed request is
    shipped to a bounded {!Executor} pool (XQuery evaluation can take
    milliseconds; the loop must keep accepting and reading), and the
    worker hands the finished response back through a completion queue,
    waking the loop via a self-pipe.  While a connection is [Executing]
    the loop does not touch it — in particular it stops reading, which is
    the invariant that lets the handler parse the SOAP body directly out
    of the connection's input buffer without a copy.

    Accept failures are handled per the errno: transient per-connection
    errors ([ECONNABORTED]) just move on; resource exhaustion ([EMFILE],
    [ENFILE], …) increments [server.accept_errors] and backs the acceptor
    off briefly instead of spinning at 100% CPU re-raising the same
    error.  Beyond [max_connections], new peers get an immediate
    [503 Service Unavailable] and are closed. *)

module Metrics = Xrpc_obs.Metrics
module Window = Xrpc_obs.Window

external poll_fds : Unix.file_descr array -> int array -> int -> int array
  = "xrpc_poll_stub"

(* Linux fast path: the kernel holds the interest set, so one loop
   iteration costs O(ready fds) instead of poll's O(all fds).  At 10k
   mostly-idle keep-alive connections that difference is the whole
   ballgame: rebuilding and scanning a 10k-entry pollfd array burns
   ~0.5 ms per iteration before any request is served.
   [epoll_create] returns -1 on non-Linux builds and the loop falls
   back to the portable poll path. *)
external epoll_create : unit -> int = "xrpc_epoll_create_stub"

(* op: 0 = ADD, 1 = MOD, 2 = DEL; events use the shared 1/2/4 bits *)
external epoll_ctl : int -> int -> Unix.file_descr -> int -> int
  = "xrpc_epoll_ctl_stub"

(* returns the ready set flattened as [|fd0; re0; fd1; re1; ...|] *)
external epoll_wait : int -> int -> int -> int array = "xrpc_epoll_wait_stub"

(* on Unix a [Unix.file_descr] is an immediate int; this recovers the
   fds [epoll_wait] hands back inside its flat int array *)
external fd_of_int : int -> Unix.file_descr = "%identity"

external raise_nofile : int -> int = "xrpc_raise_nofile_stub"

(** Best-effort bump of RLIMIT_NOFILE towards [n]; returns the resulting
    soft limit.  Load generators call this before opening 2×10k sockets. *)
let ensure_fd_capacity n = raise_nofile n

let m_accept_errors = Metrics.counter "server.accept_errors"
let m_rejected = Metrics.counter "server.rejected_503"
let m_disconnects = Metrics.counter "server.client_disconnects"
let m_served = Metrics.counter "http.requests_served"
let m_accepted = Metrics.counter "server.accepted"
let m_active = Metrics.gauge "server.active_connections"

(* Windowed runtime series: the "right now" view of the loop.  Rates
   answer "is an accept storm happening", [loop_lag_ms] answers "is the
   loop thread keeping up" (tick drift, node.js-style: the idle wait is
   bounded to [heartbeat_s] and lag is how late the tick actually
   fires), [ready_fds] sizes the per-iteration batch, [doneq_depth] the
   executor→loop completion backlog. *)
let w_accepted = Window.counter "evloop.accepted"
let w_rejected = Window.counter "evloop.rejected_503"
let w_disconnects = Window.counter "evloop.disconnects"
let w_accept_errors = Window.counter "evloop.accept_errors"
let w_served = Window.counter "evloop.served"
let w_lag = Window.histogram "evloop.loop_lag_ms"
let w_ready = Window.histogram "evloop.ready_fds"
let w_doneq = Window.gauge "evloop.doneq_depth"

let heartbeat_s = 0.5

(* how long the acceptor stays off the poll set after EMFILE-class
   failures: long enough not to spin, short enough to recover fast *)
let accept_backoff_s = 0.05

type stats = {
  mutable accepted : int;
  mutable active : int;  (** open connections being served right now *)
  mutable served : int;  (** requests answered *)
  mutable rejected : int;  (** 503 turn-aways over [max_connections] *)
  mutable accept_errors : int;
  mutable disconnects : int;  (** peers gone mid-request/mid-response *)
}

(** The streaming handler contract: the request body is the window
    [src.[pos .. pos+len)] — a zero-copy view of the connection's input
    buffer, valid only for the duration of the call — and the response
    body is whatever the handler appends to [out] (a reused per-connection
    buffer).  Raising makes a 500 with the exception text as body. *)
type handler =
  meth:string -> path:string -> src:string -> pos:int -> len:int -> Buffer.t -> unit

type t = {
  lsock : Unix.file_descr;
  port : int;
  handler : handler;
  executor : Executor.t;
  own_pool : bool;
  max_connections : int option;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (Unix.file_descr, Conn.t) Hashtbl.t;
  done_q : (Conn.t * string) Queue.t;
  qm : Mutex.t;
  mutable running : bool;
  stats : stats;
  mutable backoff_until : float;
  mutable next_tick : float;  (** heartbeat deadline for loop-lag drift *)
  epfd : int;  (** epoll instance, or -1 → portable poll(2) path *)
  mutable lsock_watched : int;  (** listener interest registered in epoll *)
  scratch : Bytes.t;  (** shared chunk buffer for writes out of Buffers *)
  wake_buf : Bytes.t;
  mutable loop_thread : Thread.t option;
}

let port t = t.port

let stats t =
  (* a racy snapshot of monotonic counters: fine for tests and /metrics *)
  {
    accepted = t.stats.accepted;
    active = t.stats.active;
    served = t.stats.served;
    rejected = t.stats.rejected;
    accept_errors = t.stats.accept_errors;
    disconnects = t.stats.disconnects;
  }

let wake t =
  try ignore (Unix.write t.wake_w t.wake_buf 0 1)
  with Unix.Unix_error _ -> ()

(* The idle wait is bounded to the next heartbeat so the loop always
   wakes at least every [heartbeat_s]; how *late* it wakes relative to
   that deadline is the loop lag — time the thread spent in handlers,
   bulk writes, or starved of CPU instead of in the readiness call. *)
let wait_timeout_ms t now ~backing_off =
  if t.next_tick <= 0. then t.next_tick <- now +. heartbeat_s;
  let until = if backing_off then Float.min t.next_tick t.backoff_until
              else t.next_tick in
  max 1 (int_of_float (ceil ((until -. now) *. 1000.)))

let observe_tick t =
  let now = Unix.gettimeofday () in
  if t.next_tick > 0. && now >= t.next_tick then begin
    Window.observe w_lag ((now -. t.next_tick) *. 1000.);
    t.next_tick <- now +. heartbeat_s
  end

(* ------------------------------------------------------------------ *)
(* Request dispatch and completion                                     *)
(* ------------------------------------------------------------------ *)

let run_handler t (c : Conn.t) =
  (* the input buffer is frozen while this connection is Executing,
     so an unsafe string view of it is sound (and copy-free) *)
  let src = Bytes.unsafe_to_string c.Conn.inbuf in
  try
    t.handler ~meth:c.Conn.meth ~path:c.Conn.path ~src ~pos:c.Conn.body_off
      ~len:c.Conn.clen c.Conn.resp_body;
    "200 OK"
  with e ->
    Buffer.clear c.Conn.resp_body;
    Buffer.add_string c.Conn.resp_body (Printexc.to_string e);
    "500 Internal Server Error"

let close_conn t (c : Conn.t) =
  if c.Conn.state <> Conn.Closed then begin
    Hashtbl.remove t.conns c.Conn.fd;
    if not c.Conn.rejected then begin
      t.stats.active <- t.stats.active - 1;
      Metrics.set m_active (float_of_int t.stats.active)
    end;
    (* closing the fd drops it from the epoll interest set for free *)
    Conn.close c
  end

let desired_interest (c : Conn.t) =
  match c.Conn.state with
  | Conn.Reading -> 1
  | Conn.Writing -> 2
  | Conn.Executing | Conn.Closed -> 0

(* Re-register a connection's interest with epoll iff it changed since
   the last registration ([c.watched] caches it, -1 = never added).  A
   no-op on the poll path, where interest arrays are rebuilt per
   iteration instead.  Called once per state-machine step, so parked
   connections cost zero syscalls. *)
let sync_interest t (c : Conn.t) =
  if t.epfd >= 0 && c.Conn.state <> Conn.Closed then begin
    let want = desired_interest c in
    if want <> c.Conn.watched then begin
      let op = if c.Conn.watched < 0 then 0 else 1 in
      ignore (epoll_ctl t.epfd op c.Conn.fd want);
      c.Conn.watched <- want
    end
  end

(* keep-alive turnaround: compact, then immediately try to parse bytes a
   pipelining client may already have sent *)
let rec finish_request t (c : Conn.t) =
  if not c.Conn.rejected then t.stats.served <- t.stats.served + 1;
  if c.Conn.close_after then close_conn t c
  else begin
    Conn.reset_for_next c;
    resume_parse t c
  end

and resume_parse t (c : Conn.t) =
  match Conn.feed c with
  | Conn.Request -> dispatch t c
  | Conn.Need_more -> ()
  | Conn.Bad _ ->
      t.stats.disconnects <- t.stats.disconnects + 1;
      Metrics.incr m_disconnects;
      Window.incr w_disconnects;
      close_conn t c

and dispatch t (c : Conn.t) =
  c.Conn.state <- Conn.Executing;
  Metrics.incr m_served;
  Window.incr w_served;
  if Executor.is_sequential t.executor then begin
    (* inline fast path: a sequential executor means the caller accepts
       handler work on the loop thread, so skip the completion-queue /
       self-pipe round trip and answer in the same loop iteration *)
    let status = run_handler t c in
    Conn.set_response c ~status ~close:c.Conn.req_close;
    try_write t c
  end
  else
    let job () =
      let status = run_handler t c in
      Mutex.lock t.qm;
      Queue.push (c, status) t.done_q;
      Mutex.unlock t.qm;
      wake t
    in
    ignore (Executor.submit t.executor job)

and try_write t (c : Conn.t) =
  match Conn.write_step ~scratch:t.scratch c with
  | Conn.Write_done -> finish_request t c
  | Conn.Write_blocked -> ()
  | Conn.Write_closed ->
      t.stats.disconnects <- t.stats.disconnects + 1;
      Metrics.incr m_disconnects;
      Window.incr w_disconnects;
      close_conn t c

let drain_done t =
  let pending = ref [] in
  Mutex.lock t.qm;
  let depth = Queue.length t.done_q in
  while not (Queue.is_empty t.done_q) do
    pending := Queue.pop t.done_q :: !pending
  done;
  Mutex.unlock t.qm;
  if depth > 0 then Window.set w_doneq (float_of_int depth);
  List.iter
    (fun ((c : Conn.t), status) ->
      if t.running && c.Conn.state = Conn.Executing then begin
        Conn.set_response c ~status ~close:c.Conn.req_close;
        (* the common case on loopback: the whole response fits in the
           socket buffer, so finish without another poll round trip *)
        try_write t c;
        sync_interest t c
      end)
    !pending

(* ------------------------------------------------------------------ *)
(* Accepting                                                           *)
(* ------------------------------------------------------------------ *)

(** What the acceptor should do about an accept(2) failure. *)
let accept_action : Unix.error -> [ `Retry | `Backoff | `Stop ] = function
  | Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN -> `Retry
  | Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM | Unix.EPERM ->
      `Backoff
  | Unix.EBADF | Unix.EINVAL -> `Stop (* listening socket shut under us *)
  | _ -> `Backoff

let canned_503 =
  "XRPC peer at connection capacity; retry shortly\n"

let reject_503 t fd =
  t.stats.rejected <- t.stats.rejected + 1;
  Metrics.incr m_rejected;
  Window.incr w_rejected;
  let c = Conn.create fd in
  c.Conn.rejected <- true;
  Buffer.add_string c.Conn.resp_body canned_503;
  Conn.set_response ~content_type:"text/plain" c
    ~status:"503 Service Unavailable" ~close:true;
  Hashtbl.replace t.conns fd c;
  (match Conn.write_step ~scratch:t.scratch c with
  | Conn.Write_done | Conn.Write_closed ->
      Hashtbl.remove t.conns fd;
      Conn.close c
  | Conn.Write_blocked -> sync_interest t c)

let accept_burst t =
  (* bounded burst so a connect storm cannot starve established conns *)
  let budget = ref 64 in
  let continue = ref true in
  while !continue && !budget > 0 do
    decr budget;
    match Unix.accept ~cloexec:true t.lsock with
    | fd, _ -> (
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        t.stats.accepted <- t.stats.accepted + 1;
        Metrics.incr m_accepted;
        Window.incr w_accepted;
        match t.max_connections with
        | Some m when t.stats.active >= m -> reject_503 t fd
        | _ ->
            t.stats.active <- t.stats.active + 1;
            Metrics.set m_active (float_of_int t.stats.active);
            let c = Conn.create fd in
            Hashtbl.replace t.conns fd c;
            sync_interest t c)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (e, _, _) -> (
        match accept_action e with
        | `Retry -> ()
        | `Backoff ->
            t.stats.accept_errors <- t.stats.accept_errors + 1;
            Metrics.incr m_accept_errors;
            Window.incr w_accept_errors;
            t.backoff_until <- Unix.gettimeofday () +. accept_backoff_s;
            continue := false
        | `Stop ->
            t.running <- false;
            continue := false)
  done

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)
(* ------------------------------------------------------------------ *)

let handle_readable t (c : Conn.t) =
  match Conn.read_step c with
  | Conn.Read_some -> resume_parse t c
  | Conn.Read_blocked -> ()
  | Conn.Read_eof ->
      (* mid-request EOF is a disconnect; EOF between requests is just
         the client ending its keep-alive session *)
      (if c.Conn.pstate <> Conn.P_line || c.Conn.in_len > 0 then begin
         t.stats.disconnects <- t.stats.disconnects + 1;
         Metrics.incr m_disconnects;
         Window.incr w_disconnects
       end);
      close_conn t c

let drain_wake_pipe t buf =
  try ignore (Unix.read t.wake_r buf 0 (Bytes.length buf))
  with Unix.Unix_error _ -> ()

let handle_conn_event t (c : Conn.t) re =
  match c.Conn.state with
  | Conn.Reading -> if re land (1 lor 4) <> 0 then handle_readable t c
  | Conn.Writing ->
      if re land 4 <> 0 && re land 2 = 0 then begin
        t.stats.disconnects <- t.stats.disconnects + 1;
        Metrics.incr m_disconnects;
        Window.incr w_disconnects;
        close_conn t c
      end
      else if re land 2 <> 0 then try_write t c
  | Conn.Executing | Conn.Closed -> ()

(* portable fallback: rebuild the full interest arrays every iteration
   and hand them to poll(2).  Fine up to ~1k connections; beyond that
   the O(n) rescan dominates and the epoll path below takes over. *)
let run_poll_loop t =
  let drain_wake = Bytes.create 256 in
  while t.running do
    drain_done t;
    let n_conns = Hashtbl.length t.conns in
    let fds = Array.make (n_conns + 2) t.wake_r in
    let events = Array.make (n_conns + 2) 1 in
    (* slot 0: wake pipe (read); slot 1: listener (read, unless backing
       off); slots 2+: connections by state *)
    let now = Unix.gettimeofday () in
    let backing_off = t.backoff_until > now in
    fds.(1) <- t.lsock;
    events.(1) <- (if backing_off then 0 else 1);
    let i = ref 2 in
    Hashtbl.iter
      (fun _ (c : Conn.t) ->
        fds.(!i) <- c.Conn.fd;
        events.(!i) <-
          (match c.Conn.state with
          | Conn.Reading -> 1
          | Conn.Writing -> 2
          | Conn.Executing | Conn.Closed -> 0);
        incr i)
      t.conns;
    let timeout = wait_timeout_ms t now ~backing_off in
    let revs = poll_fds fds events timeout in
    observe_tick t;
    if t.running then begin
      let ready = ref 0 in
      Array.iter (fun re -> if re <> 0 then incr ready) revs;
      if !ready > 0 then Window.observe w_ready (float_of_int !ready);
      if revs.(0) land 1 <> 0 then drain_wake_pipe t drain_wake;
      if revs.(1) land (1 lor 4) <> 0 then accept_burst t;
      for j = 2 to Array.length revs - 1 do
        let re = revs.(j) in
        if re <> 0 then
          match Hashtbl.find_opt t.conns fds.(j) with
          | None -> ()
          | Some c -> handle_conn_event t c re
      done
    end
  done

(* epoll path: interest lives in the kernel (kept current by
   {!sync_interest} at every state transition), so a wait returns just
   the ready fds and an iteration is O(ready) — parked keep-alive
   connections are free.  Level-triggered, so a 512-event batch cap
   only delays stragglers to the next wait, never loses them. *)
let run_epoll_loop t =
  let drain_wake = Bytes.create 256 in
  let max_events = 512 in
  while t.running do
    drain_done t;
    let now = Unix.gettimeofday () in
    let backing_off = t.backoff_until > now in
    let want_l = if backing_off then 0 else 1 in
    if want_l <> t.lsock_watched then begin
      ignore (epoll_ctl t.epfd 1 t.lsock want_l);
      t.lsock_watched <- want_l
    end;
    let timeout = wait_timeout_ms t now ~backing_off in
    let evs = epoll_wait t.epfd max_events timeout in
    observe_tick t;
    let n_ready = Array.length evs / 2 in
    if n_ready > 0 then Window.observe w_ready (float_of_int n_ready);
    if t.running then
      for j = 0 to (Array.length evs / 2) - 1 do
        let fd = fd_of_int evs.(2 * j) in
        let re = evs.((2 * j) + 1) in
        if fd = t.wake_r then begin
          if re land 1 <> 0 then drain_wake_pipe t drain_wake
        end
        else if fd = t.lsock then begin
          if re land (1 lor 4) <> 0 then accept_burst t
        end
        else
          match Hashtbl.find_opt t.conns fd with
          | None -> ()
          | Some c ->
              handle_conn_event t c re;
              sync_interest t c
      done
  done

let run_loop t =
  if t.epfd >= 0 then run_epoll_loop t else run_poll_loop t;
  (* teardown on the loop thread: everything single-owner until here *)
  Hashtbl.iter (fun _ c -> Conn.close c) t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  if t.epfd >= 0 then
    try Unix.close (fd_of_int t.epfd) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let sigpipe_ignored = ref false

(* a peer closing mid-response must surface as EPIPE from write(2), not
   kill the process *)
let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | _ -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ()
  end

let default_workers = 4

let create ?(port = 0) ?(backlog = 128) ?max_connections ?executor handler : t =
  ignore_sigpipe ();
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lsock backlog;
  Unix.set_nonblock lsock;
  let actual_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let epfd = epoll_create () in
  if epfd >= 0 then begin
    (* the wake pipe and listener live in the interest set for the
       loop's whole life; per-connection fds come and go via
       [sync_interest] *)
    ignore (epoll_ctl epfd 0 wake_r 1);
    ignore (epoll_ctl epfd 0 lsock 1)
  end;
  let executor, own_pool =
    match executor with
    | Some e -> (e, false)
    | None -> (Executor.pool default_workers, true)
  in
  let t =
    {
      lsock;
      port = actual_port;
      handler;
      executor;
      own_pool;
      max_connections;
      wake_r;
      wake_w;
      conns = Hashtbl.create 64;
      done_q = Queue.create ();
      qm = Mutex.create ();
      running = true;
      stats =
        {
          accepted = 0;
          active = 0;
          served = 0;
          rejected = 0;
          accept_errors = 0;
          disconnects = 0;
        };
      backoff_until = 0.;
      next_tick = 0.;
      epfd;
      lsock_watched = (if epfd >= 0 then 1 else 0);
      scratch = Bytes.create 65536;
      wake_buf = Bytes.make 1 '!';
      loop_thread = None;
    }
  in
  t.loop_thread <- Some (Thread.create run_loop t);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    wake t;
    (match t.loop_thread with Some th -> Thread.join th | None -> ());
    if t.own_pool then Executor.shutdown t.executor
  end
