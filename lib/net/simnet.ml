(** Deterministic simulated network with a virtual clock and seeded fault
    injection.

    The paper's experiments ran on two Athlon64 boxes on 1 Gb/s Ethernet;
    we do not have that testbed, so the benchmarks charge network costs to
    a virtual clock instead: each message costs one-way [latency_ms] plus
    [bytes / bandwidth]; a request/response interaction costs both
    directions.  Handler CPU can optionally be charged at real measured
    time ([charge_cpu]), which is what the benches use — CPU cost is real,
    network cost is modeled, so relative shapes (bulk vs one-at-a-time,
    strategy comparisons) are preserved.  Parallel dispatch charges the
    maximum completion time across peers, matching §3.2.

    Fault injection: an optional {!fault_config} drives per-message
    drop / duplicate / delay / reorder plus random peer crash/restart and
    explicit partitions, all from one seeded PRNG on the virtual clock, so
    {e every} fault schedule is bit-for-bit replayable from its seed
    (provided [charge_cpu = false], the chaos-test configuration).
    Injected failures surface as {!Transport.Error} so the policy layer
    ({!Transport.with_policy}) can retry them uniformly. *)

module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace

type config = {
  latency_ms : float;  (** one-way network latency per message *)
  bandwidth_bytes_per_ms : float;  (** payload cost; [infinity] disables *)
  charge_cpu : bool;  (** add real handler CPU time to the clock *)
}

let default_config =
  (* ~1 Gb/s Ethernet with sub-millisecond LAN latency, like the paper's
     testbed: 0.6 ms one-way, 125 bytes/us *)
  { latency_ms = 0.6; bandwidth_bytes_per_ms = 125_000.; charge_cpu = true }

type stats = {
  mutable messages : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable network_ms : float;
      (** pure network cost (latency + transfer) excluding handler CPU —
          lets callers combine modeled network time with real measured CPU
          time without double counting *)
}

(* ------------------------------------------------------------------ *)
(* Fault model                                                         *)
(* ------------------------------------------------------------------ *)

type fault_config = {
  fault_seed : int;  (** seeds the PRNG; same seed ⟹ same schedule *)
  drop : float;  (** per-direction loss probability (request AND response) *)
  duplicate : float;  (** probability a request is delivered twice *)
  delay : float;  (** probability of extra delivery delay *)
  delay_ms : float;  (** maximum extra one-way delay *)
  crash : float;  (** probability a peer crashes just before handling *)
  restart_ms : float;  (** virtual downtime before a crashed peer returns *)
  loss_timeout_ms : float;
      (** virtual time a sender waits before declaring a message lost *)
}

let no_faults =
  {
    fault_seed = 0;
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    delay_ms = 0.;
    crash = 0.;
    restart_ms = 20.;
    loss_timeout_ms = 50.;
  }

(** A light chaos mix: ~[loss] per direction, plus matching duplication,
    delay and rare crashes — the standard chaos-suite configuration. *)
let chaos ?(seed = 0) ?(loss = 0.01) () =
  {
    no_faults with
    fault_seed = seed;
    drop = loss;
    duplicate = loss;
    delay = loss *. 2.;
    delay_ms = 5.;
    crash = loss /. 4.;
  }

type fault_stats = {
  mutable dropped_requests : int;
  mutable dropped_responses : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;  (** parallel batches delivered out of order *)
  mutable crashes : int;
  mutable restarts : int;
  mutable unreachable : int;  (** sends rejected: peer down or partitioned *)
}

type faults = {
  fconfig : fault_config;
  rng : Random.State.t;
  down : (string, float) Hashtbl.t;
      (** peer key -> virtual restart time ([infinity] = manual restart) *)
  partitioned : (string, unit) Hashtbl.t;  (** currently unreachable keys *)
  fstats : fault_stats;
}

type t = {
  config : config;
  mutable clock_ms : float;  (** virtual time *)
  handlers : (string, string -> string) Hashtbl.t;  (** peer key -> handler *)
  stats : stats;
  mutable faults : faults option;
}


let make_faults fconfig =
  {
    fconfig;
    rng = Random.State.make [| fconfig.fault_seed; 0x5eed |];
    down = Hashtbl.create 4;
    partitioned = Hashtbl.create 4;
    fstats =
      {
        dropped_requests = 0;
        dropped_responses = 0;
        duplicated = 0;
        delayed = 0;
        reordered = 0;
        crashes = 0;
        restarts = 0;
        unreachable = 0;
      };
  }

let create ?(config = default_config) ?faults () =
  {
    config;
    clock_ms = 0.;
    handlers = Hashtbl.create 8;
    stats = { messages = 0; bytes_sent = 0; bytes_received = 0; network_ms = 0. };
    faults = Option.map make_faults faults;
  }

(** Install (or replace) fault injection on a live network. *)
let inject net fconfig = net.faults <- Some (make_faults fconfig)

(** Stop injecting faults; crashed/partitioned peers become reachable
    again (the "network recovered" step of recovery tests). *)
let clear_faults net = net.faults <- None

let fault_stats net = Option.map (fun f -> f.fstats) net.faults

(** [register net uri handler] attaches a peer (handler over raw bodies)
    under the host[:port] of [uri]. *)
let register net uri handler =
  Hashtbl.replace net.handlers (Xrpc_uri.peer_key_of_string uri) handler

let transfer_cost net bytes =
  net.config.latency_ms +. float_of_int bytes /. net.config.bandwidth_bytes_per_ms

(** Advance the virtual clock (the policy layer's [sleep]). *)
let sleep net ms = net.clock_ms <- net.clock_ms +. ms

(* -- manual fault controls (no-ops unless faults are installed) ------ *)

let with_faults net f = Option.iter f net.faults

(** Take a peer down until [restart] (or until [after_ms] of virtual time). *)
let crash net ?after_ms uri =
  with_faults net (fun f ->
      let until =
        match after_ms with Some d -> net.clock_ms +. d | None -> infinity
      in
      Hashtbl.replace f.down (Xrpc_uri.peer_key_of_string uri) until;
      f.fstats.crashes <- f.fstats.crashes + 1)

let restart net uri =
  with_faults net (fun f ->
      let key = Xrpc_uri.peer_key_of_string uri in
      if Hashtbl.mem f.down key then begin
        Hashtbl.remove f.down key;
        f.fstats.restarts <- f.fstats.restarts + 1
      end)

(** Partition the named peers away from the sender (replaces any previous
    partition).  [heal] reconnects everyone. *)
let partition net uris =
  with_faults net (fun f ->
      Hashtbl.reset f.partitioned;
      List.iter
        (fun u -> Hashtbl.replace f.partitioned (Xrpc_uri.peer_key_of_string u) ())
        uris)

let heal net = with_faults net (fun f -> Hashtbl.reset f.partitioned)

(** [is_up net uri] — would a send to [uri] currently be rejected as
    unreachable (crashed and not yet restarted, or partitioned away)?
    Replica-aware shard routers consult this to steer a key's lookup to a
    live holder.  True when no fault layer is installed. *)
let is_up net uri =
  let key = Xrpc_uri.peer_key_of_string uri in
  match net.faults with
  | None -> true
  | Some f ->
      (not (Hashtbl.mem f.partitioned key))
      &&
      (match Hashtbl.find_opt f.down key with
      | Some until -> net.clock_ms >= until
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let lookup_handler net ~dest key =
  match Hashtbl.find_opt net.handlers key with
  | Some h -> h
  | None ->
      Transport.error ~kind:Transport.Unreachable ~dest "unregistered peer"

(* fault-free request/response interaction;
   returns (response, elapsed_virtual_ms) *)
let clean_interact net handler ~dest:_ body =
  let t0 = if net.config.charge_cpu then Unix.gettimeofday () else 0. in
  let response = handler body in
  let cpu_ms =
    if net.config.charge_cpu then (Unix.gettimeofday () -. t0) *. 1000. else 0.
  in
  net.stats.messages <- net.stats.messages + 2;
  net.stats.bytes_sent <- net.stats.bytes_sent + String.length body;
  net.stats.bytes_received <- net.stats.bytes_received + String.length response;
  let wire_ms =
    transfer_cost net (String.length body)
    +. transfer_cost net (String.length response)
  in
  net.stats.network_ms <- net.stats.network_ms +. wire_ms;
  (response, wire_ms +. cpu_ms)

(* faulty interaction: every cost (including the successful path's) is
   charged straight to the clock and 0 is returned as elapsed time, so a
   leg that dies mid-parallel-dispatch still pays its waiting time.  Under
   faults, parallel dispatch therefore charges the sum of legs rather than
   the max — fault schedules care about determinism, not about the §3.2
   latency-hiding model. *)
let faulty_interact net f ~dest key body =
  let draw () = Random.State.float f.rng 1.0 in
  let cfg = f.fconfig in
  let unreachable info =
    f.fstats.unreachable <- f.fstats.unreachable + 1;
    Trace.event ~detail:info "net-unreachable";
    sleep net cfg.loss_timeout_ms;
    Transport.error ~kind:Transport.Unreachable ~dest "%s" info
  in
  if Hashtbl.mem f.partitioned key then unreachable "network partition";
  (match Hashtbl.find_opt f.down key with
  | Some until when net.clock_ms >= until ->
      Hashtbl.remove f.down key;
      f.fstats.restarts <- f.fstats.restarts + 1
  | Some _ -> unreachable "peer down"
  | None ->
      if cfg.crash > 0. && draw () < cfg.crash then begin
        Hashtbl.replace f.down key (net.clock_ms +. cfg.restart_ms);
        f.fstats.crashes <- f.fstats.crashes + 1;
        unreachable "peer crashed"
      end);
  let handler = lookup_handler net ~dest key in
  (* request direction *)
  if cfg.drop > 0. && draw () < cfg.drop then begin
    f.fstats.dropped_requests <- f.fstats.dropped_requests + 1;
    net.stats.messages <- net.stats.messages + 1;
    net.stats.bytes_sent <- net.stats.bytes_sent + String.length body;
    Trace.event "net-drop-request";
    sleep net cfg.loss_timeout_ms;
    Transport.error ~kind:Transport.Timeout ~dest "request lost"
  end;
  if cfg.delay > 0. && draw () < cfg.delay then begin
    f.fstats.delayed <- f.fstats.delayed + 1;
    Trace.event "net-delay";
    sleep net (draw () *. cfg.delay_ms)
  end;
  let response, elapsed = clean_interact net handler ~dest body in
  sleep net elapsed;
  (* at-least-once delivery: the request arrives a second time; the extra
     response is discarded on the "wire".  Harmless iff the peer
     deduplicates by idempotency key. *)
  if cfg.duplicate > 0. && draw () < cfg.duplicate then begin
    f.fstats.duplicated <- f.fstats.duplicated + 1;
    Trace.event "net-duplicate";
    ignore (handler body)
  end;
  (* response direction: the handler DID run (side effects happened) but
     the caller never learns — the critical 2PC window *)
  if cfg.drop > 0. && draw () < cfg.drop then begin
    f.fstats.dropped_responses <- f.fstats.dropped_responses + 1;
    Trace.event "net-drop-response";
    sleep net cfg.loss_timeout_ms;
    Transport.error ~kind:Transport.Timeout ~dest "response lost"
  end;
  (response, 0.)

let interact net ~dest body =
  let key = Xrpc_uri.peer_key_of_string dest in
  match net.faults with
  | None -> clean_interact net (lookup_handler net ~dest key) ~dest body
  | Some f -> faulty_interact net f ~dest key body

let m_msgs = Metrics.counter "net.interactions"
let m_roundtrip = Metrics.histogram "net.roundtrip_ms"

(** Synchronous round trip: advances the virtual clock by latency +
    transfer + (optionally) handler CPU, both ways. *)
let send net ~dest body =
  Trace.with_span ~detail:dest "net.send" @@ fun () ->
  Metrics.incr m_msgs;
  let response, elapsed = interact net ~dest body in
  net.clock_ms <- net.clock_ms +. elapsed;
  Metrics.observe m_roundtrip elapsed;
  response

(** Parallel dispatch to several peers: the clock advances by the maximum
    of the individual costs (all requests are in flight simultaneously).
    Under fault injection the batch may additionally be {e reordered}
    (processed in a PRNG-permuted order; results return in call order). *)
let send_parallel net pairs =
  let pairs_arr = Array.of_list pairs in
  let order = Array.init (Array.length pairs_arr) Fun.id in
  (match net.faults with
  | Some f when Array.length order > 1 ->
      (* Fisher–Yates off the fault PRNG *)
      let swapped = ref false in
      for i = Array.length order - 1 downto 1 do
        let j = Random.State.int f.rng (i + 1) in
        if j <> i then begin
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp;
          swapped := true
        end
      done;
      if !swapped then f.fstats.reordered <- f.fstats.reordered + 1
  | _ -> ());
  let results = Array.make (Array.length pairs_arr) ("", 0.) in
  Array.iter
    (fun i ->
      let dest, body = pairs_arr.(i) in
      Metrics.incr m_msgs;
      results.(i) <-
        Trace.with_span ~detail:dest "net.send" (fun () ->
            interact net ~dest body))
    order;
  let slowest =
    Array.fold_left (fun m (_, e) -> Float.max m e) 0. results
  in
  net.clock_ms <- net.clock_ms +. slowest;
  Array.to_list (Array.map fst results)

let transport net =
  {
    Transport.send = (fun ~dest body -> send net ~dest body);
    send_parallel = (fun pairs -> send_parallel net pairs);
  }

let reset_clock net = net.clock_ms <- 0.

let reset_stats net =
  net.stats.messages <- 0;
  net.stats.bytes_sent <- 0;
  net.stats.bytes_received <- 0;
  net.stats.network_ms <- 0.
