(** Per-connection state machine for the event-loop HTTP server.

    A connection owns a growable input buffer that request bytes are read
    into as they arrive, an incremental HTTP/1.1 request parser that
    consumes that buffer without ever copying it (the SOAP body is handed
    to the protocol layer as a [(src, pos, len)] window over the very
    bytes the socket delivered), and an iovec-style output queue — a list
    of (source, offset, length) slices pointing at reused buffers — that
    the event loop drains with non-blocking writes.  Nothing here touches
    a socket except {!read_step} and {!write_step}; the parser itself is
    pure buffer manipulation, which is what makes it unit-testable
    byte-by-byte.

    States: [Reading] (poll for input, feed the parser) → [Executing]
    (a worker thread runs the handler; the event loop leaves the
    connection alone, which is also what freezes the input buffer and
    makes the zero-copy body window safe) → [Writing] (poll for output,
    drain the slice queue) → back to [Reading] on keep-alive, with
    leftover pipelined bytes compacted to the front and every buffer
    reused. *)

(* hard caps: a request line / header block / body larger than these is
   a protocol error and closes the connection *)
let max_header_bytes = 1 lsl 20
let max_body_bytes = 1 lsl 26

type parse_state =
  | P_line  (** accumulating the request line *)
  | P_headers  (** accumulating header lines *)
  | P_body  (** headers done; waiting for [clen] body bytes *)
  | P_dispatched  (** a full request has been handed out *)

type state = Reading | Executing | Writing | Closed

(* One pending write: [len - off] bytes of [src] starting at [off].
   Sources are the connection's reused response buffers (or a canned
   string for 503s), so a response is never flattened into one big
   intermediate string. *)
type slice = { src : slice_src; mutable off : int; len : int }
and slice_src = Sstr of string | Sbuf of Buffer.t

type t = {
  fd : Unix.file_descr;
  mutable state : state;
  mutable inbuf : Bytes.t;
  mutable in_len : int;  (** valid bytes in [inbuf] *)
  mutable scan : int;  (** parser cursor (never rescans) *)
  mutable pstate : parse_state;
  (* current request, filled in by the parser *)
  mutable meth : string;
  mutable path : string;
  mutable req_close : bool;  (** client asked to close after this request *)
  mutable clen : int;  (** Content-Length *)
  mutable body_off : int;  (** body start in [inbuf] *)
  (* response assembly: both buffers are cleared and reused per request *)
  resp_head : Buffer.t;
  resp_body : Buffer.t;
  mutable out : slice list;
  mutable close_after : bool;
  mutable rejected : bool;  (** a 503 turn-away, not a served connection *)
  mutable watched : int;
      (** readiness interest last registered with epoll for this fd
          (1 = read, 2 = write, 0 = parked); -1 = not registered.  Owned
          by the event loop; unused on the poll fallback path. *)
}

let create fd =
  {
    fd;
    state = Reading;
    inbuf = Bytes.create 4096;
    in_len = 0;
    scan = 0;
    pstate = P_line;
    meth = "";
    path = "";
    req_close = false;
    clen = 0;
    body_off = 0;
    resp_head = Buffer.create 256;
    resp_body = Buffer.create 1024;
    out = [];
    close_after = false;
    rejected = false;
    watched = -1;
  }

(* ------------------------------------------------------------------ *)
(* Incremental request parsing                                         *)
(* ------------------------------------------------------------------ *)

(* index of the next '\n' in [b.[from .. upto)], bounded by the valid
   region (bytes past [upto] are stale garbage from earlier requests) *)
let find_nl b from upto =
  let rec go i =
    if i >= upto then None
    else if Bytes.unsafe_get b i = '\n' then Some i
    else go (i + 1)
  in
  go from

(* the line [start..nl), with a trailing '\r' stripped *)
let line_at b start nl =
  let stop = if nl > start && Bytes.get b (nl - 1) = '\r' then nl - 1 else nl in
  Bytes.sub_string b start (stop - start)

type fed = Need_more | Request | Bad of string

(** Feed the parser whatever bytes have accumulated.  Returns [Request]
    exactly once per request (the connection then leaves [Reading]);
    resumes mid-line, mid-headers or mid-body on the next call. *)
let rec feed c =
  match c.pstate with
  | P_dispatched -> Need_more
  | P_line -> (
      match find_nl c.inbuf c.scan c.in_len with
      | None ->
          if c.in_len - c.scan > max_header_bytes then Bad "request line too long"
          else Need_more
      | Some nl -> (
          let line = line_at c.inbuf c.scan nl in
          c.scan <- nl + 1;
          if line = "" then feed c (* tolerate blank lines between requests *)
          else
            match String.split_on_char ' ' line with
            | meth :: path :: rest ->
                c.meth <- meth;
                c.path <- path;
                (* HTTP/1.0 defaults to close, 1.1 to keep-alive *)
                c.req_close <- rest = [ "HTTP/1.0" ];
                c.clen <- 0;
                c.pstate <- P_headers;
                feed c
            | _ -> Bad ("malformed request line " ^ line)))
  | P_headers -> (
      match find_nl c.inbuf c.scan c.in_len with
      | None ->
          if c.in_len - c.scan > max_header_bytes then Bad "headers too long"
          else Need_more
      | Some nl -> (
          let line = line_at c.inbuf c.scan nl in
          c.scan <- nl + 1;
          if line = "" then begin
            c.body_off <- c.scan;
            if c.clen > max_body_bytes then Bad "body too large"
            else begin
              c.pstate <- P_body;
              feed c
            end
          end
          else begin
            (match String.index_opt line ':' with
            | Some i -> (
                let k =
                  String.lowercase_ascii (String.trim (String.sub line 0 i))
                in
                let v =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                match k with
                | "content-length" ->
                    c.clen <- (try int_of_string v with _ -> 0)
                | "connection" -> (
                    match String.lowercase_ascii v with
                    | "close" -> c.req_close <- true
                    | "keep-alive" -> c.req_close <- false
                    | _ -> ())
                | _ -> ())
            | None -> ());
            feed c
          end))
  | P_body ->
      if c.in_len - c.body_off >= c.clen then begin
        c.pstate <- P_dispatched;
        c.scan <- c.body_off + c.clen;
        Request
      end
      else Need_more

(** Drop the request just answered, slide any pipelined bytes after it to
    the front of the (kept, reused) input buffer, and go back to parsing.
    Both response buffers are cleared but keep their storage. *)
let reset_for_next c =
  let consumed = c.body_off + c.clen in
  let remaining = c.in_len - consumed in
  if remaining > 0 then Bytes.blit c.inbuf consumed c.inbuf 0 remaining;
  c.in_len <- remaining;
  c.scan <- 0;
  c.pstate <- P_line;
  c.clen <- 0;
  c.body_off <- 0;
  c.out <- [];
  Buffer.clear c.resp_head;
  Buffer.clear c.resp_body;
  c.state <- Reading

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

let grow_inbuf c need =
  let cap = Bytes.length c.inbuf in
  if need > cap then begin
    let cap' = max need (cap * 2) in
    let b = Bytes.create cap' in
    Bytes.blit c.inbuf 0 b 0 c.in_len;
    c.inbuf <- b
  end

type read_result = Read_some | Read_blocked | Read_eof

(** One non-blocking read into the input buffer.  Pre-sizes the buffer to
    hold the announced body so a large POST never reallocates mid-read. *)
let read_step c =
  (match c.pstate with
  | P_body -> grow_inbuf c (c.body_off + c.clen)
  | _ -> if c.in_len = Bytes.length c.inbuf then grow_inbuf c (c.in_len + 1));
  let room = Bytes.length c.inbuf - c.in_len in
  match Unix.read c.fd c.inbuf c.in_len room with
  | 0 -> Read_eof
  | n ->
      c.in_len <- c.in_len + n;
      Read_some
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      Read_blocked
  | exception Unix.Unix_error (_, _, _) -> Read_eof

(** Queue a response: status line + headers assembled in the reused
    header buffer, body already sitting in [resp_body] (the handler wrote
    it there directly).  The two become two slices of the output queue —
    header and body are never concatenated. *)
let set_response ?(content_type = "application/soap+xml; charset=utf-8") c
    ~status ~close =
  Buffer.clear c.resp_head;
  Buffer.add_string c.resp_head "HTTP/1.1 ";
  Buffer.add_string c.resp_head status;
  Buffer.add_string c.resp_head "\r\nContent-Type: ";
  Buffer.add_string c.resp_head content_type;
  Buffer.add_string c.resp_head "\r\nContent-Length: ";
  Buffer.add_string c.resp_head (string_of_int (Buffer.length c.resp_body));
  Buffer.add_string c.resp_head "\r\nConnection: ";
  Buffer.add_string c.resp_head (if close then "close" else "keep-alive");
  Buffer.add_string c.resp_head "\r\n\r\n";
  c.out <-
    [
      { src = Sbuf c.resp_head; off = 0; len = Buffer.length c.resp_head };
      { src = Sbuf c.resp_body; off = 0; len = Buffer.length c.resp_body };
    ];
  c.close_after <- close;
  c.state <- Writing

type write_result = Write_done | Write_blocked | Write_closed

(** Drain as much of the output queue as the socket accepts.  The slice
    list is {e gathered} writev-style through [scratch] (one reused
    [Bytes.t] shared by the whole event loop): header and body slices are
    coalesced into a single [write(2)] — so a typical response is one
    syscall and one TCP segment, not one per slice.  A peer that vanished
    mid-response surfaces as [Write_closed]. *)
let write_step ~scratch c =
  (* consume [n] written bytes off the front of the slice list *)
  let rec advance n = function
    | [] -> []
    | sl :: rest ->
        let take = min n (sl.len - sl.off) in
        sl.off <- sl.off + take;
        if sl.off >= sl.len then advance (n - take) rest else sl :: rest
  in
  let rec go () =
    match c.out with
    | [] -> Write_done
    | slices ->
        let filled = ref 0 in
        List.iter
          (fun sl ->
            let k = min (sl.len - sl.off) (Bytes.length scratch - !filled) in
            if k > 0 then begin
              (match sl.src with
              | Sstr s -> Bytes.blit_string s sl.off scratch !filled k
              | Sbuf b -> Buffer.blit b sl.off scratch !filled k);
              filled := !filled + k
            end)
          slices;
        if !filled = 0 then begin
          c.out <- [];
          Write_done
        end
        else
          let n = Unix.write c.fd scratch 0 !filled in
          c.out <- advance n slices;
          (* a short write means the socket buffer is full: poll again
             rather than eat a guaranteed EAGAIN *)
          if n < !filled then Write_blocked else go ()
  in
  try go () with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      Write_blocked
  | Unix.Unix_error (_, _, _) -> Write_closed

let close c =
  c.state <- Closed;
  c.out <- [];
  try Unix.close c.fd with Unix.Unix_error _ -> ()
