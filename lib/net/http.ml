(** Minimal HTTP/1.1 POST transport over Unix sockets.

    XRPC messages travel as SOAP over HTTP POST (§2.1).  This is a small
    but real implementation — enough for one XQuery peer to call another
    across processes or machines — modeled on the "ultra-light HTTP
    daemon" the paper embeds in MonetDB/XQuery (§3).

    The server has two cores behind one [serve] entry point:
    {!Event_loop} (default) multiplexes every connection over a single
    poll(2) loop with non-blocking sockets and per-connection state
    machines ({!Evloop} / {!Conn}), executing handlers on a bounded
    worker pool — the shape that holds thousands of concurrent keep-alive
    peers; {!Thread_per_conn} is the original baseline (one thread per
    accepted connection), kept behind the config switch for comparison
    and as the fallback reference implementation.  Both keep the
    connection open across requests (HTTP/1.1 keep-alive) unless the
    client sends [Connection: close].

    The client transport can reuse one pooled connection per destination
    ([~keep_alive:true]) and fans parallel sends out through an
    {!Executor}. *)

module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace

exception Http_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Http_error s)) fmt

let m_posts = Metrics.counter "http.posts"

(* per-destination wire traffic, as labeled series (stable-sorted and
   escaped by Metrics.with_labels, so /metrics output stays diff-able) *)
let m_dest_bytes_out dest =
  Metrics.counter (Metrics.with_labels "http.bytes_out" [ ("dest", dest) ])

let m_dest_bytes_in dest =
  Metrics.counter (Metrics.with_labels "http.bytes_in" [ ("dest", dest) ])
let m_served = Metrics.counter "http.requests_served"
let m_post_ms = Metrics.histogram "http.post_ms"

(* ------------------------------------------------------------------ *)
(* Wire reading helpers                                                *)
(* ------------------------------------------------------------------ *)

let read_line_crlf ic =
  let buf = Buffer.create 64 in
  let rec go () =
    match input_char ic with
    | '\r' -> (
        match input_char ic with
        | '\n' -> Buffer.contents buf
        | c ->
            Buffer.add_char buf '\r';
            Buffer.add_char buf c;
            go ())
    | '\n' -> Buffer.contents buf
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let read_headers ic =
  let rec go acc =
    match read_line_crlf ic with
    | "" -> List.rev acc
    | line -> (
        match String.index_opt line ':' with
        | Some i ->
            let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
            let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            go ((k, v) :: acc)
        | None -> go acc)
  in
  go []

let read_body ic headers =
  match List.assoc_opt "content-length" headers with
  | Some n -> really_input_string ic (int_of_string n)
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

type mode = Event_loop | Thread_per_conn

type threaded = {
  sock : Unix.file_descr;
  tport : int;
  mutable running : bool;
  tstats : Evloop.stats;  (** same shape as the event loop's, for parity *)
}

type server = Ev of Evloop.t | Threaded of threaded

(* -- thread-per-connection baseline --------------------------------- *)

let serve_threaded ?(port = 0) ?(backlog = 32) ?max_connections
    (handler : path:string -> string -> string) : server =
  Evloop.ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stats =
    {
      Evloop.accepted = 0;
      active = 0;
      served = 0;
      rejected = 0;
      accept_errors = 0;
      disconnects = 0;
    }
  in
  let server = { sock; tport = actual_port; running = true; tstats = stats } in
  (* thread-per-connection with keep-alive: loop serving requests on this
     connection until the peer closes it, asks us to, or errors out.
     HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close. *)
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec serve_one () =
      match read_line_crlf ic with
      | exception (End_of_file | Sys_error _) -> ()
      | request_line -> (
          match String.split_on_char ' ' request_line with
          | meth :: path :: rest ->
              let headers = read_headers ic in
              let body = if meth = "POST" then read_body ic headers else "" in
              Metrics.incr m_served;
              let close =
                match List.assoc_opt "connection" headers with
                | Some v -> String.lowercase_ascii v = "close"
                | None -> rest = [ "HTTP/1.0" ]
              in
              let status, response =
                try ("200 OK", handler ~path body)
                with e -> ("500 Internal Server Error", Printexc.to_string e)
              in
              Printf.fprintf oc
                "HTTP/1.1 %s\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s"
                status (String.length response)
                (if close then "close" else "keep-alive")
                response;
              flush oc;
              stats.Evloop.served <- stats.Evloop.served + 1;
              if (not close) && server.running then serve_one ()
          | _ -> ())
    in
    (try serve_one () with End_of_file | Sys_error _ -> ());
    stats.Evloop.active <- stats.Evloop.active - 1;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let reject fd =
    stats.Evloop.rejected <- stats.Evloop.rejected + 1;
    let body = "XRPC peer at connection capacity; retry shortly\n" in
    let oc = Unix.out_channel_of_descr fd in
    (try
       Printf.fprintf oc
         "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
         (String.length body) body;
       flush oc
     with Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let accept_loop () =
    (* accept failures must not spin: resource exhaustion (EMFILE &c.,
       including a failed Thread.create) counts server.accept_errors and
       backs off briefly before the next accept *)
    let note_accept_error () =
      stats.Evloop.accept_errors <- stats.Evloop.accept_errors + 1;
      Metrics.incr Evloop.m_accept_errors;
      Unix.sleepf Evloop.accept_backoff_s
    in
    while server.running do
      match Unix.accept sock with
      | fd, _ -> (
          stats.Evloop.accepted <- stats.Evloop.accepted + 1;
          match max_connections with
          | Some m when stats.Evloop.active >= m -> reject fd
          | _ -> (
              stats.Evloop.active <- stats.Evloop.active + 1;
              try ignore (Thread.create handle_conn fd)
              with Sys_error _ | Out_of_memory ->
                stats.Evloop.active <- stats.Evloop.active - 1;
                (try Unix.close fd with Unix.Unix_error _ -> ());
                note_accept_error ()))
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> server.running <- false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) -> (
          match Evloop.accept_action e with
          | `Retry -> ()
          | `Backoff -> note_accept_error ()
          | `Stop -> server.running <- false)
    done
  in
  ignore (Thread.create accept_loop ());
  Threaded server

(* -- unified entry points ------------------------------------------- *)

(** [serve handler] starts an HTTP server on 127.0.0.1 ([port = 0] picks
    a free port, see {!port}); [handler ~path body] returns the response
    body for a POST (GET passes an empty body, so module sources can be
    fetched too).  [mode] selects the core: the readiness-driven
    {!Event_loop} (default; [executor] sizes its handler pool,
    [max_connections] turns extra peers away with a 503) or the
    {!Thread_per_conn} baseline. *)
let serve ?(mode = Event_loop) ?port ?backlog ?max_connections ?executor
    (handler : path:string -> string -> string) : server =
  match mode with
  | Thread_per_conn -> serve_threaded ?port ?backlog ?max_connections handler
  | Event_loop ->
      let h ~meth ~path ~src ~pos ~len out =
        let body = if meth = "POST" then String.sub src pos len else "" in
        Buffer.add_string out (handler ~path body)
      in
      Ev (Evloop.create ?port ?backlog ?max_connections ?executor h)

(** [serve_stream handler] — event-loop server with the zero-copy handler
    contract ({!Evloop.handler}): the request body arrives as a window
    over the connection's input buffer and the response body is appended
    to the connection's reused output buffer.  This is what the
    {!Xrpc_core.Xrpc_server} façade uses to hand SOAP bytes straight to
    the peer without materializing them twice. *)
let serve_stream ?port ?backlog ?max_connections ?executor
    (handler : Evloop.handler) : server =
  Ev (Evloop.create ?port ?backlog ?max_connections ?executor handler)

let port = function Ev t -> Evloop.port t | Threaded s -> s.tport

let stats = function
  | Ev t -> Evloop.stats t
  | Threaded s ->
      {
        Evloop.accepted = s.tstats.Evloop.accepted;
        active = s.tstats.Evloop.active;
        served = s.tstats.Evloop.served;
        rejected = s.tstats.Evloop.rejected;
        accept_errors = s.tstats.Evloop.accept_errors;
        disconnects = s.tstats.Evloop.disconnects;
      }

let shutdown = function
  | Ev t -> Evloop.stop t
  | Threaded s -> (
      s.running <- false;
      try Unix.close s.sock with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

type conn = { c_sock : Unix.file_descr; c_ic : in_channel; c_oc : out_channel }

(* Map socket-level failures onto the shared typed error vocabulary so
   the policy layer can retry them exactly like simulated faults. *)
let wrap_socket_errors ~dest f =
  try f () with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    ->
      Transport.error ~kind:Transport.Timeout ~dest "socket timeout"
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EHOSTUNREACH
        | Unix.ENETUNREACH | Unix.EPIPE ),
        _,
        _ ) as e ->
      Transport.error ~kind:Transport.Unreachable ~dest "%s"
        (Printexc.to_string e)
  | End_of_file ->
      Transport.error ~kind:Transport.Unreachable ~dest
        "connection closed before a full response"

let open_conn ?timeout_ms ~dest ~host ~port () =
  wrap_socket_errors ~dest @@ fun () ->
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_loopback
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match timeout_ms with
  | Some ms when ms > 0. ->
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO (ms /. 1000.);
      Unix.setsockopt_float sock Unix.SO_SNDTIMEO (ms /. 1000.)
  | _ -> ());
  (try Unix.connect sock (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  {
    c_sock = sock;
    c_ic = Unix.in_channel_of_descr sock;
    c_oc = Unix.out_channel_of_descr sock;
  }

let close_conn c = try Unix.close c.c_sock with Unix.Unix_error _ -> ()

(* One POST round trip over an open connection.  [keep_alive] selects the
   Connection header; the server honours it per request. *)
let request_conn ~dest ~host ~port ~path ~keep_alive c body =
  wrap_socket_errors ~dest @@ fun () ->
  Printf.fprintf c.c_oc
    "POST %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s"
    path host port (String.length body)
    (if keep_alive then "keep-alive" else "close")
    body;
  flush c.c_oc;
  let status_line = read_line_crlf c.c_ic in
  let headers = read_headers c.c_ic in
  let response = read_body c.c_ic headers in
  match String.split_on_char ' ' status_line with
  | _ :: code :: _ when code.[0] = '2' -> response
  | _ :: code :: _ -> err "HTTP %s: %s" code response
  | _ -> err "malformed HTTP status line %S" status_line

(** [post ~host ~port ~path body] performs one HTTP POST round trip on a
    fresh connection.  [timeout_ms] maps the shared {!Transport.policy}
    request budget onto real socket timeouts. *)
let post ?timeout_ms ~host ~port ?(path = "/") body =
  let dest = Printf.sprintf "%s:%d" host port in
  Trace.with_span ~detail:dest "http.post" @@ fun () ->
  Metrics.incr m_posts;
  let t0 = Unix.gettimeofday () in
  let c = open_conn ?timeout_ms ~dest ~host ~port () in
  Fun.protect
    ~finally:(fun () -> close_conn c)
    (fun () ->
      let r = request_conn ~dest ~host ~port ~path ~keep_alive:false c body in
      Metrics.observe m_post_ms ((Unix.gettimeofday () -. t0) *. 1000.);
      r)

(** Transport over HTTP: destinations are [xrpc://host:port[/path]] URIs.

    [executor] drives parallel sends (default {!Executor.unbounded}, one
    thread per destination).  [keep_alive] reuses one pooled connection
    per destination across requests; a send finding the pooled connection
    stale (server closed it) transparently retries once on a fresh one.
    With [policy], every send runs under {!Transport.with_policy} on the
    wall clock: the policy's [timeout_ms] becomes the socket timeout and
    retries back off with [Unix.sleepf].  [timeout_ms] alone sets the
    socket timeout without the policy wrapper (for callers that apply
    {!Transport.with_policy} themselves). *)
let transport ?(default_port = 8080) ?timeout_ms ?policy
    ?(executor = Executor.unbounded) ?(keep_alive = false) () =
  let timeout_ms =
    match timeout_ms with
    | Some _ as t -> t
    | None -> Option.map (fun p -> p.Transport.timeout_ms) policy
  in
  (* at most one idle pooled connection per destination; concurrent sends
     to the same destination simply open extra connections and the last
     one back wins the pool slot *)
  let pool : (string, conn) Hashtbl.t = Hashtbl.create 8 in
  let pool_m = Mutex.create () in
  let take_pooled key =
    Mutex.lock pool_m;
    let c = Hashtbl.find_opt pool key in
    (match c with Some _ -> Hashtbl.remove pool key | None -> ());
    Mutex.unlock pool_m;
    c
  in
  let give_back key c =
    Mutex.lock pool_m;
    let occupied = Hashtbl.mem pool key in
    if not occupied then Hashtbl.replace pool key c;
    Mutex.unlock pool_m;
    if occupied then close_conn c
  in
  let send ~dest body =
    let uri = Xrpc_uri.parse dest in
    let host = uri.Xrpc_uri.host in
    let port = Option.value ~default:default_port uri.Xrpc_uri.port in
    let path = "/" ^ uri.Xrpc_uri.path in
    Metrics.incr_by (m_dest_bytes_out dest) (String.length body);
    let reply =
    if not keep_alive then post ?timeout_ms ~host ~port ~path body
    else begin
      Trace.with_span ~detail:dest "http.post" @@ fun () ->
      Metrics.incr m_posts;
      let t0 = Unix.gettimeofday () in
      let key = Printf.sprintf "%s:%d" host port in
      let once c =
        match request_conn ~dest ~host ~port ~path ~keep_alive:true c body with
        | r ->
            give_back key c;
            r
        | exception e ->
            close_conn c;
            raise e
      in
      let r =
        match take_pooled key with
        | Some c -> (
            (* the server may have closed the idle pooled connection in
               the meantime: that's not a peer failure, retry fresh *)
            try once c
            with Transport.Error _ | Http_error _ ->
              once (open_conn ?timeout_ms ~dest ~host ~port ()))
        | None -> once (open_conn ?timeout_ms ~dest ~host ~port ())
      in
      Metrics.observe m_post_ms ((Unix.gettimeofday () -. t0) *. 1000.);
      r
    end
    in
    Metrics.incr_by (m_dest_bytes_in dest) (String.length reply);
    reply
  in
  let send_parallel pairs =
    Executor.map_list executor (fun (dest, body) -> send ~dest body) pairs
  in
  let raw = { Transport.send; send_parallel } in
  match policy with
  | None -> raw
  | Some p ->
      Transport.transport
        (Transport.with_policy ~policy:p ~executor
           ~now:(fun () -> Unix.gettimeofday () *. 1000.)
           ~sleep:(fun ms -> Unix.sleepf (ms /. 1000.))
           raw)
