(** Minimal HTTP/1.1 POST transport over Unix sockets.

    XRPC messages travel as SOAP over HTTP POST (§2.1).  This is a small
    but real implementation — enough for one XQuery peer to call another
    across processes or machines — modeled on the "ultra-light HTTP
    daemon" the paper embeds in MonetDB/XQuery (§3).  The server runs its
    accept loop on a daemon thread and serves each connection on its own
    thread. *)

module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace

exception Http_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Http_error s)) fmt

let m_posts = Metrics.counter "http.posts"
let m_served = Metrics.counter "http.requests_served"
let m_post_ms = Metrics.histogram "http.post_ms"

(* ------------------------------------------------------------------ *)
(* Wire reading helpers                                                *)
(* ------------------------------------------------------------------ *)

let read_line_crlf ic =
  let buf = Buffer.create 64 in
  let rec go () =
    match input_char ic with
    | '\r' -> (
        match input_char ic with
        | '\n' -> Buffer.contents buf
        | c ->
            Buffer.add_char buf '\r';
            Buffer.add_char buf c;
            go ())
    | '\n' -> Buffer.contents buf
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let read_headers ic =
  let rec go acc =
    match read_line_crlf ic with
    | "" -> List.rev acc
    | line -> (
        match String.index_opt line ':' with
        | Some i ->
            let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
            let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            go ((k, v) :: acc)
        | None -> go acc)
  in
  go []

let read_body ic headers =
  match List.assoc_opt "content-length" headers with
  | Some n -> really_input_string ic (int_of_string n)
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

type server = { sock : Unix.file_descr; port : int; mutable running : bool }

(** [serve ~port handler] starts an HTTP server; [handler path body]
    returns the response body for a POST (GET returns the handler result
    with an empty body, so module sources can be fetched too).  Binds to
    127.0.0.1.  [port = 0] picks a free port (see [server.port]). *)
let serve ?(port = 0) (handler : path:string -> string -> string) : server =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 32;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let server = { sock; port = actual_port; running = true } in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       let request_line = read_line_crlf ic in
       match String.split_on_char ' ' request_line with
       | meth :: path :: _ ->
           let headers = read_headers ic in
           let body = if meth = "POST" then read_body ic headers else "" in
           Metrics.incr m_served;
           let status, response =
             try ("200 OK", handler ~path body)
             with e -> ("500 Internal Server Error", Printexc.to_string e)
           in
           Printf.fprintf oc
             "HTTP/1.1 %s\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
             status (String.length response) response;
           flush oc
       | _ -> ()
     with End_of_file | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let accept_loop () =
    while server.running do
      match Unix.accept sock with
      | fd, _ -> ignore (Thread.create handle_conn fd)
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> server.running <- false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  ignore (Thread.create accept_loop ());
  server

let shutdown server =
  server.running <- false;
  try Unix.close server.sock with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

(** [post ~host ~port ~path body] performs one HTTP POST round trip.
    [timeout_ms] maps the shared {!Transport.policy} request budget onto
    real socket timeouts; socket-level failures are raised as the typed
    {!Transport.Error} so the policy layer can retry them exactly like
    simulated faults. *)
let post ?timeout_ms ~host ~port ?(path = "/") body =
  let dest = Printf.sprintf "%s:%d" host port in
  Trace.with_span ~detail:dest "http.post" @@ fun () ->
  Metrics.incr m_posts;
  let t0 = Unix.gettimeofday () in
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_loopback
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let wrap f =
    try f () with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
      ->
        Transport.error ~kind:Transport.Timeout ~dest "socket timeout"
    | Unix.Unix_error
        ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EHOSTUNREACH
          | Unix.ENETUNREACH | Unix.EPIPE ),
          _,
          _ ) as e ->
        Transport.error ~kind:Transport.Unreachable ~dest "%s"
          (Printexc.to_string e)
    | End_of_file ->
        Transport.error ~kind:Transport.Unreachable ~dest
          "connection closed before a full response"
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      wrap @@ fun () ->
      (match timeout_ms with
      | Some ms when ms > 0. ->
          Unix.setsockopt_float sock Unix.SO_RCVTIMEO (ms /. 1000.);
          Unix.setsockopt_float sock Unix.SO_SNDTIMEO (ms /. 1000.)
      | _ -> ());
      Unix.connect sock (Unix.ADDR_INET (addr, port));
      let oc = Unix.out_channel_of_descr sock in
      let ic = Unix.in_channel_of_descr sock in
      Printf.fprintf oc
        "POST %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
        path host port (String.length body) body;
      flush oc;
      let status_line = read_line_crlf ic in
      let headers = read_headers ic in
      let response = read_body ic headers in
      match String.split_on_char ' ' status_line with
      | _ :: code :: _ when code.[0] = '2' ->
          Metrics.observe m_post_ms ((Unix.gettimeofday () -. t0) *. 1000.);
          response
      | _ :: code :: _ -> err "HTTP %s: %s" code response
      | _ -> err "malformed HTTP status line %S" status_line)

(** Transport over HTTP: destinations are [xrpc://host:port[/path]] URIs.
    Parallel sends use one thread per destination.  With [policy], every
    send runs under {!Transport.with_policy} on the wall clock: the
    policy's [timeout_ms] becomes the socket timeout and retries back off
    with [Unix.sleepf]. *)
let transport ?(default_port = 8080) ?policy () =
  let timeout_ms = Option.map (fun p -> p.Transport.timeout_ms) policy in
  let send ~dest body =
    let uri = Xrpc_uri.parse dest in
    let port = Option.value ~default:default_port uri.Xrpc_uri.port in
    post ?timeout_ms ~host:uri.Xrpc_uri.host ~port
      ~path:("/" ^ uri.Xrpc_uri.path) body
  in
  let send_parallel pairs =
    let results = Array.make (List.length pairs) (Ok "") in
    let threads =
      List.mapi
        (fun i (dest, body) ->
          Thread.create
            (fun () ->
              results.(i) <-
                (try Ok (send ~dest body) with e -> Error e))
            ())
        pairs
    in
    List.iter Thread.join threads;
    Array.to_list results
    |> List.map (function Ok r -> r | Error e -> raise e)
  in
  let raw = { Transport.send; send_parallel } in
  match policy with
  | None -> raw
  | Some p ->
      (Transport.with_policy ~policy:p
         ~now:(fun () -> Unix.gettimeofday () *. 1000.)
         ~sleep:(fun ms -> Unix.sleepf (ms /. 1000.))
         raw)
        .Transport.transport
