(** Minimal HTTP/1.1 SOAP transport: server (event-loop or
    thread-per-connection) and pooled keep-alive client.

    The server side hides its connection-state internals ({!Conn} state
    machines, poll sets, worker handoff) behind an abstract {!server}:
    start one with {!serve} (or {!serve_stream} for the zero-copy handler
    contract), read its bound {!port}, inspect {!stats}, and {!shutdown}
    it.  The client side is {!post} (one round trip) and {!transport}
    (the {!Xrpc_net.Transport.t} used by peers and the client façade). *)

exception Http_error of string
(** A non-2xx response, or a malformed one. *)

(** {2 Server} *)

type mode =
  | Event_loop
      (** one poll(2) readiness loop over non-blocking sockets,
          per-connection state machines, handlers on a bounded worker
          pool: holds thousands of concurrent keep-alive connections
          (default) *)
  | Thread_per_conn
      (** the original one-thread-per-accepted-connection baseline, kept
          for comparison benchmarks and as a reference implementation *)

type server

val serve :
  ?mode:mode ->
  ?port:int ->
  ?backlog:int ->
  ?max_connections:int ->
  ?executor:Executor.t ->
  (path:string -> string -> string) ->
  server
(** [serve handler] binds 127.0.0.1 ([?port] defaults to 0 = pick a free
    one) and serves [handler ~path body] on every request (GET passes an
    empty body).  Handler exceptions become 500 responses.  In
    {!Event_loop} mode, [executor] runs the handlers (default: a private
    pool of 4 workers) and [max_connections] turns extra connections away
    with an immediate 503; accept-side resource exhaustion (EMFILE …)
    counts the [server.accept_errors] metric and backs the acceptor off
    briefly instead of spinning — in both modes. *)

val serve_stream :
  ?port:int ->
  ?backlog:int ->
  ?max_connections:int ->
  ?executor:Executor.t ->
  Evloop.handler ->
  server
(** Event-loop server with the streaming handler contract: the request
    body is a [(src, pos, len)] window over the connection's input buffer
    (valid for the duration of the call, no copy) and the response body
    is appended to the connection's reused output buffer. *)

val port : server -> int
(** The bound port (useful with [?port:0]). *)

val stats : server -> Evloop.stats
(** Lifetime counters: accepted / active / served / rejected(503) /
    accept_errors / disconnects.  A racy snapshot — fine for tests and
    monitoring. *)

val shutdown : server -> unit
(** Stop accepting, close every connection, release the port.  For the
    event loop this joins the loop thread, so the port is free when it
    returns. *)

(** {2 Client} *)

val post :
  ?timeout_ms:float ->
  host:string ->
  port:int ->
  ?path:string ->
  string ->
  string
(** One POST round trip on a fresh connection.  [timeout_ms] maps the
    shared {!Transport.policy} request budget onto socket timeouts.
    Raises {!Http_error} on non-2xx, {!Transport.Error} on socket
    failures. *)

val transport :
  ?default_port:int ->
  ?timeout_ms:float ->
  ?policy:Transport.policy ->
  ?executor:Executor.t ->
  ?keep_alive:bool ->
  unit ->
  Transport.t
(** Transport over HTTP: destinations are [xrpc://host:port[/path]] URIs.
    [executor] drives parallel sends (default {!Executor.unbounded});
    [keep_alive] pools one connection per destination with a transparent
    single retry when the pooled connection went stale; [policy] wraps
    every send in {!Transport.with_policy} on the wall clock. *)
