(** Bounded-concurrency dispatch engine: thread pools and futures.

    Every place the client or coordinator talks to several peers at once —
    per-destination Bulk RPC fan-out, 2PC prepare/decision broadcasts, the
    HTTP transport's parallel sends — goes through an executor.  Three
    flavours share one interface:

    - {!sequential} runs submitted work inline on the calling thread, in
      submission order.  This is the injectable deterministic mode: the
      simulated network ({!Simnet}) owns a virtual clock and is not
      thread-safe, so everything layered on it must stay sequential for
      seeded chaos schedules to replay bit-for-bit.
    - {!pool}[ n] runs work on [n] long-lived worker threads fed from a
      queue — bounded concurrency for real transports.
    - {!unbounded} spawns a fresh thread per task (the historical HTTP
      fan-out behaviour).

    Futures carry results or exceptions back to the submitter; {!await}
    re-raises.  Submission captures the calling thread's ambient trace
    span and installs it on the worker ({!Xrpc_obs.Trace.with_ambient}),
    so spans opened by shipped work keep their logical parent and one
    distributed query still reconstructs into a single span tree. *)

module Trace = Xrpc_obs.Trace
module Window = Xrpc_obs.Window

(* Windowed pool telemetry: queue depth (the admission-control signal
   ROADMAP item 4 sheds on), and per-task wait-vs-run split — wait
   growing while run stays flat is the signature of an undersized pool,
   the inverse is a slow handler.  All recording is gated on
   {!Window.enabled} and the wait timestamp is only captured when it is
   on, so the off cost is one flag test. *)
let w_queue_depth = Window.gauge "executor.queue_depth"
let w_wait = Window.histogram "executor.wait_ms"
let w_run = Window.histogram "executor.run_ms"

type 'a outcome = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fcv : Condition.t;
  mutable outcome : 'a outcome;
}

type pool = {
  m : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable shut : bool;
  size : int;
  mutable worker_ids : int list;
}

type t = Sequential | Unbounded | Pool of pool

let sequential = Sequential
let unbounded = Unbounded

let rec worker_loop p =
  Mutex.lock p.m;
  while Queue.is_empty p.jobs && not p.shut do
    Condition.wait p.nonempty p.m
  done;
  if Queue.is_empty p.jobs then Mutex.unlock p.m (* shut down *)
  else begin
    let job = Queue.pop p.jobs in
    Mutex.unlock p.m;
    (* jobs fulfil their own future and never raise *)
    job ();
    worker_loop p
  end

let pool n =
  let n = max 1 n in
  let p =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      shut = false;
      size = n;
      worker_ids = [];
    }
  in
  let threads = List.init n (fun _ -> Thread.create worker_loop p) in
  p.worker_ids <- List.map Thread.id threads;
  Pool p

let threads = function Sequential -> 1 | Unbounded -> max_int | Pool p -> p.size
let is_sequential = function Sequential -> true | Unbounded | Pool _ -> false

(** Jobs queued behind the workers right now (0 for non-pool executors):
    the readiness probe's saturation signal. *)
let queue_depth = function
  | Sequential | Unbounded -> 0
  | Pool p ->
      Mutex.lock p.m;
      let d = Queue.length p.jobs in
      Mutex.unlock p.m;
      d

let shutdown = function
  | Sequential | Unbounded -> ()
  | Pool p ->
      Mutex.lock p.m;
      p.shut <- true;
      Condition.broadcast p.nonempty;
      Mutex.unlock p.m

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

let fulfilled outcome =
  { fm = Mutex.create (); fcv = Condition.create (); outcome }

let fulfil fut outcome =
  Mutex.lock fut.fm;
  fut.outcome <- outcome;
  Condition.broadcast fut.fcv;
  Mutex.unlock fut.fm

(** Block until the future resolves; never raises. *)
let await_result fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.outcome with
    | Pending ->
        Condition.wait fut.fcv fut.fm;
        wait ()
    | Done v -> Ok v
    | Failed e -> Error e
  in
  let r = wait () in
  Mutex.unlock fut.fm;
  r

let await fut = match await_result fut with Ok v -> v | Error e -> raise e

let peek fut =
  Mutex.lock fut.fm;
  let r =
    match fut.outcome with
    | Pending -> None
    | Done v -> Some (Ok v)
    | Failed e -> Some (Error e)
  in
  Mutex.unlock fut.fm;
  r

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)
(* ------------------------------------------------------------------ *)

(* run [f], carrying the submitter's ambient span onto this thread *)
let run_shipped parent f =
  let run () = try Done (f ()) with e -> Failed e in
  match parent with Some s -> Trace.with_ambient s run | None -> run ()

let submit t f =
  match t with
  | Sequential -> fulfilled (try Done (f ()) with e -> Failed e)
  | Unbounded ->
      let fut = fulfilled Pending in
      let parent = Trace.current () in
      ignore (Thread.create (fun () -> fulfil fut (run_shipped parent f)) ());
      fut
  | Pool p ->
      let fut = fulfilled Pending in
      let parent = Trace.current () in
      let t_sub = if Window.enabled () then Trace.now_ms () else nan in
      let job () =
        if not (Float.is_nan t_sub) then begin
          let t_start = Trace.now_ms () in
          Window.observe w_wait (Float.max 0. (t_start -. t_sub));
          fulfil fut (run_shipped parent f);
          Window.observe w_run (Float.max 0. (Trace.now_ms () -. t_start))
        end
        else fulfil fut (run_shipped parent f)
      in
      Mutex.lock p.m;
      if p.shut then begin
        Mutex.unlock p.m;
        fulfil fut (Failed (Invalid_argument "Executor.submit: pool is shut down"))
      end
      else begin
        Queue.push job p.jobs;
        let depth = Queue.length p.jobs in
        Condition.signal p.nonempty;
        Mutex.unlock p.m;
        Window.set w_queue_depth (float_of_int depth)
      end;
      fut

(* A pool worker that fans out onto its own pool would deadlock once the
   pool is saturated with waiters; detect that and degrade to inline
   execution (still correct, loses only the overlap). *)
let on_own_pool = function
  | Sequential | Unbounded -> false
  | Pool p -> List.mem (Thread.id (Thread.self ())) p.worker_ids

(** Parallel, order-preserving map.  All elements are evaluated even when
    some fail; the first failure (in list order) is then re-raised, so
    side effects of the other legs have settled — exactly what the
    idempotency caches on the peers make safe to retry. *)
let map_list t f xs =
  match (t, xs) with
  | Sequential, _ | _, ([] | [ _ ]) -> List.map f xs
  | _ ->
      if on_own_pool t then List.map f xs
      else begin
        let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
        let results = List.map await_result futs in
        List.map (function Ok v -> v | Error e -> raise e) results
      end
