/* poll(2) binding for the event-loop server.
 *
 * OCaml's Unix module only exposes select(2), whose fd_set caps file
 * descriptors at FD_SETSIZE (1024) -- useless for the 10k-connection
 * target.  This is the thinnest possible poll wrapper: fd + interest
 * arrays in, revents array out.  The GC lock is released around the
 * blocking call so worker threads keep running.
 *
 * Interest / readiness bits (shared with evloop.ml):
 *   1 = readable, 2 = writable, 4 = error/hangup/invalid.
 */

#include <errno.h>
#include <poll.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

CAMLprim value xrpc_poll_stub(value vfds, value vevents, value vtimeout)
{
  CAMLparam3(vfds, vevents, vtimeout);
  CAMLlocal1(vres);
  mlsize_t n = Wosize_val(vfds);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfds = malloc(sizeof(struct pollfd) * (n ? n : 1));
  if (pfds == NULL) caml_failwith("xrpc_poll: out of memory");
  for (mlsize_t i = 0; i < n; i++) {
    /* on Unix a Unix.file_descr is an immediate int */
    pfds[i].fd = Int_val(Field(vfds, i));
    int ev = Int_val(Field(vevents, i));
    pfds[i].events = (short)(((ev & 1) ? POLLIN : 0) | ((ev & 2) ? POLLOUT : 0));
    pfds[i].revents = 0;
  }
  caml_release_runtime_system();
  int r = poll(pfds, (nfds_t)n, timeout);
  int saved_errno = errno;
  caml_acquire_runtime_system();
  if (r < 0 && saved_errno != EINTR && saved_errno != EAGAIN) {
    free(pfds);
    caml_failwith("xrpc_poll: poll failed");
  }
  vres = caml_alloc(n, 0);
  for (mlsize_t i = 0; i < n; i++) {
    int re = 0;
    if (r > 0) {
      short rv = pfds[i].revents;
      if (rv & POLLIN) re |= 1;
      if (rv & POLLOUT) re |= 2;
      if (rv & (POLLERR | POLLHUP | POLLNVAL)) re |= 4;
    }
    Store_field(vres, i, Val_int(re));
  }
  free(pfds);
  CAMLreturn(vres);
}

/* Raise RLIMIT_NOFILE towards [target] (10k connections need ~20k fds:
 * one per server conn plus one per in-process load-generator conn).
 * Best effort: tries the exact target (root may raise the hard limit),
 * falls back to the current hard limit.  Returns the resulting soft
 * limit so callers can scale their fan-out honestly. */
CAMLprim value xrpc_raise_nofile_stub(value vtarget)
{
  long target = Long_val(vtarget);
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  if ((rlim_t)target > rl.rlim_cur) {
    struct rlimit want = rl;
    want.rlim_cur = (rlim_t)target;
    if ((rlim_t)target > want.rlim_max) want.rlim_max = (rlim_t)target;
    if (setrlimit(RLIMIT_NOFILE, &want) != 0) {
      want.rlim_cur = rl.rlim_max;
      want.rlim_max = rl.rlim_max;
      (void)setrlimit(RLIMIT_NOFILE, &want);
    }
  }
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  return Val_long((long)rl.rlim_cur);
}

/* ------------------------------------------------------------------ */
/* epoll(7): O(ready) readiness for the 10k-connection tier            */
/* ------------------------------------------------------------------ */

/* poll(2) is portable but O(n): every call rescans the whole pollfd
 * array, so at 10k mostly-idle connections each loop iteration burns
 * ~0.5 ms walking parked fds.  On Linux we keep the interest set in
 * the kernel instead (level-triggered epoll) and each wait returns
 * only the ready fds.  Same 1/2/4 readiness encoding as xrpc_poll.
 * On non-Linux builds epoll_create returns -1 and the event loop
 * falls back to the poll path. */

#ifdef __linux__
#include <sys/epoll.h>

CAMLprim value xrpc_epoll_create_stub(value unit)
{
  (void)unit;
  return Val_int(epoll_create1(EPOLL_CLOEXEC));
}

/* op: 0 = ADD, 1 = MOD, 2 = DEL */
CAMLprim value xrpc_epoll_ctl_stub(value vep, value vop, value vfd, value vev)
{
  struct epoll_event ev;
  int op = Int_val(vop) == 0   ? EPOLL_CTL_ADD
           : Int_val(vop) == 1 ? EPOLL_CTL_MOD
                               : EPOLL_CTL_DEL;
  int bits = Int_val(vev);
  memset(&ev, 0, sizeof(ev));
  ev.events = ((bits & 1) ? EPOLLIN : 0) | ((bits & 2) ? EPOLLOUT : 0);
  ev.data.fd = Int_val(vfd);
  return Val_int(epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev));
}

/* Returns a flat [|fd0; re0; fd1; re1; ...|] array of the ready set. */
CAMLprim value xrpc_epoll_wait_stub(value vep, value vmax, value vtimeout)
{
  CAMLparam3(vep, vmax, vtimeout);
  CAMLlocal1(vres);
  int max = Int_val(vmax);
  struct epoll_event *evs = malloc(sizeof(struct epoll_event) * (max ? max : 1));
  if (evs == NULL) caml_failwith("xrpc_epoll_wait: out of memory");
  caml_release_runtime_system();
  int n = epoll_wait(Int_val(vep), evs, max, Int_val(vtimeout));
  int saved_errno = errno;
  caml_acquire_runtime_system();
  if (n < 0) {
    free(evs);
    if (saved_errno == EINTR) CAMLreturn(caml_alloc(0, 0));
    caml_failwith("xrpc_epoll_wait: epoll_wait failed");
  }
  vres = caml_alloc(2 * n, 0);
  for (int i = 0; i < n; i++) {
    int re = 0;
    uint32_t e = evs[i].events;
    if (e & EPOLLIN) re |= 1;
    if (e & EPOLLOUT) re |= 2;
    if (e & (EPOLLERR | EPOLLHUP)) re |= 4;
    Store_field(vres, 2 * i, Val_int(evs[i].data.fd));
    Store_field(vres, 2 * i + 1, Val_int(re));
  }
  free(evs);
  CAMLreturn(vres);
}

#else /* !__linux__ */

CAMLprim value xrpc_epoll_create_stub(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value xrpc_epoll_ctl_stub(value vep, value vop, value vfd, value vev)
{
  (void)vep; (void)vop; (void)vfd; (void)vev;
  return Val_int(-1);
}

CAMLprim value xrpc_epoll_wait_stub(value vep, value vmax, value vtimeout)
{
  (void)vep; (void)vmax; (void)vtimeout;
  return caml_alloc(0, 0);
}

#endif /* __linux__ */
