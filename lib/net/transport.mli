(** Transport abstraction: how serialized SOAP XRPC messages move between
    peers, plus the shared recovery policy (timeout, retries with
    exponential backoff + jitter, per-destination circuit breaker).

    The failure vocabulary is {!Xrpc_error}, re-exported here so existing
    [Transport.Error] / [Transport.Timeout] call sites keep reading
    naturally. *)

type t = {
  send : dest:string -> string -> string;
      (** POST a request body to a peer, return the response body *)
  send_parallel : (string * string) list -> string list;
      (** same, to several (dest, body) pairs concurrently *)
}

val sequential : (dest:string -> string -> string) -> t
(** Lift a single-send function; [send_parallel] loops sequentially. *)

(** {2 Failure vocabulary (see {!Xrpc_error})} *)

type error_kind = Xrpc_error.kind =
  | Timeout
  | Unreachable
  | Circuit_open
  | Protocol of string
  | Fault of [ `Sender | `Receiver ]

exception Error of Xrpc_error.t
(** Physically the same exception as {!Xrpc_error.Error}: a handler
    matching [Transport.Error] catches errors raised by any layer. *)

val error : kind:error_kind -> dest:string -> ('a, unit, string, 'b) format4 -> 'a
val kind_name : error_kind -> string
val error_to_string : exn -> string

(** {2 Recovery policy} *)

type policy = {
  timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;  (** 0 disables the breaker *)
  breaker_cooldown_ms : float;
}

val default_policy : policy

val backoff_delay : policy -> attempt:int -> rand:(unit -> float) -> float
(** Delay before retry [attempt] (0-based): exponential, capped,
    jittered by [rand () : float in [0,1)]. *)

type breaker_state = Closed | Open of float  (** opened_at *) | Half_open

type policy_stats = {
  mutable attempts : int;  (** individual sends reaching the wire *)
  mutable retries : int;
  mutable failed_attempts : int;
  mutable gave_up : int;  (** requests that exhausted their retries *)
  mutable fast_fails : int;  (** rejected locally by an open circuit *)
  mutable circuit_opens : int;
  mutable backoff_ms : float;  (** total time spent backing off *)
}

type policied
(** A transport wrapped in the recovery policy.  The per-destination
    breaker table and the stats counters are internal (mutated under a
    lock — the dispatch executor retries several legs concurrently);
    inspect them through the accessors below. *)

val transport : policied -> t
(** The wrapped transport enforcing the policy. *)

val policy : policied -> policy
val stats : policied -> policy_stats
val breaker_state : policied -> string -> breaker_state

val with_policy :
  ?policy:policy ->
  ?seed:int ->
  ?executor:Executor.t ->
  now:(unit -> float) ->
  sleep:(float -> unit) ->
  t ->
  policied
(** [with_policy ~now ~sleep inner] — retry/timeout/breaker wrapper.
    [now] and [sleep] are in milliseconds on whatever clock the transport
    lives on (virtual for Simnet, wall for HTTP).  [seed] makes the
    backoff jitter deterministic.  With a non-sequential [executor],
    [send_parallel] runs one full retry loop per leg concurrently;
    sequential (the default) keeps the deterministic
    max-of-legs-then-fallback behaviour the simulated network models. *)
