(** Bounded-concurrency dispatch engine: thread pools and futures.

    The reusable fan-out primitive behind parallel Bulk RPC dispatch, 2PC
    broadcasts and the HTTP transport.  The {!sequential} executor runs
    everything inline on the calling thread — the injectable deterministic
    mode required when the transport underneath is the virtual-clock
    simulated network. *)

type t
(** An executor: a policy for running submitted thunks. *)

type 'a future
(** A handle on a result being computed (possibly on another thread). *)

val sequential : t
(** Runs submitted work inline, in submission order.  Deterministic; the
    only executor safe to combine with {!Simnet}. *)

val unbounded : t
(** One fresh thread per task (the historical HTTP fan-out behaviour). *)

val pool : int -> t
(** [pool n] — a shared queue served by [n] long-lived worker threads
    ([n] is clamped to at least 1).  Call {!shutdown} when done. *)

val threads : t -> int
(** Concurrency bound: 1 for {!sequential}, [max_int] for {!unbounded}. *)

val is_sequential : t -> bool

val queue_depth : t -> int
(** Jobs queued behind a pool's workers right now; 0 for {!sequential}
    and {!unbounded}.  The readiness probe's saturation signal, also
    exported as the windowed gauge [executor.queue_depth]. *)

val shutdown : t -> unit
(** Stop a pool's workers once the queue drains.  Later [submit]s fail;
    no-op for {!sequential} and {!unbounded}. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Run a thunk under the executor.  The calling thread's ambient trace
    span is carried onto the worker, so spans opened by the thunk keep
    their logical parent.  On {!sequential} the thunk has already run
    (and its effects are visible) when [submit] returns. *)

val await : 'a future -> 'a
(** Block until resolved; re-raises the thunk's exception, if any. *)

val await_result : 'a future -> ('a, exn) result
(** Like {!await} but never raises. *)

val peek : 'a future -> ('a, exn) result option
(** Non-blocking: [None] while still pending. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel, order-preserving map.  Every element is evaluated even when
    some fail; the first failure in list order is then re-raised.  On
    {!sequential} this is exactly [List.map].  A pool worker fanning out
    onto its own pool degrades to inline execution instead of risking
    deadlock. *)
