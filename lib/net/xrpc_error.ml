(** The failure vocabulary shared by every layer that can fail on behalf
    of a remote peer: the transports ({!Transport}, {!Http}, {!Simnet}),
    the peer request handler and the 2PC coordinator.

    Historically {!Transport} owned a typed error and peers spoke in free
    SOAP-fault strings; unifying them means a transport failure observed
    by a {e serving} peer (a hosted function whose own [execute at] timed
    out) survives the SOAP hop back to the client as the same typed value:
    [to_soap_fault] renders an error into a (fault-code, reason) pair and
    [of_soap_fault] parses it back, round-tripping exactly. *)

type kind =
  | Timeout  (** no (complete) response within the request timeout *)
  | Unreachable  (** connection refused, peer down or partitioned away *)
  | Circuit_open  (** rejected locally: the destination's breaker is open *)
  | Protocol of string  (** transport-level garbage (bad status line, ...) *)
  | Fault of [ `Sender | `Receiver ]
      (** an application-level SOAP fault raised by the serving peer *)

type t = { kind : kind; dest : string; info : string }

exception Error of t

let error ~kind ~dest fmt =
  Printf.ksprintf (fun info -> raise (Error { kind; dest; info })) fmt

let kind_name = function
  | Timeout -> "timeout"
  | Unreachable -> "unreachable"
  | Circuit_open -> "circuit-open"
  | Protocol _ -> "protocol"
  | Fault `Sender -> "fault"
  | Fault `Receiver -> "fault"

let to_string { kind; dest; info } =
  let k =
    match kind with
    | Protocol d when d <> "" -> "protocol (" ^ d ^ ")"
    | k -> kind_name k
  in
  if dest = "" then Printf.sprintf "%s: %s" k info
  else Printf.sprintf "%s to %s: %s" k dest info

let error_to_string = function
  | Error e -> to_string e
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* SOAP fault round trip                                               *)
(* ------------------------------------------------------------------ *)

(* Wire shape of a transport-kind error inside a SOAP fault reason:
     [KIND @DEST] INFO
   with KIND one of timeout | unreachable | circuit-open |
   protocol/DETAIL.  Application faults carry their reason untouched. *)

let kind_tag = function
  | Timeout -> "timeout"
  | Unreachable -> "unreachable"
  | Circuit_open -> "circuit-open"
  | Protocol d -> "protocol/" ^ d
  | Fault _ -> ""

(** Render as a SOAP (fault-code, reason) pair.  Transport-kind errors
    become [`Receiver] faults (the failure happened on the serving side's
    infrastructure) with a parseable reason prefix; application faults
    keep their own code and reason. *)
let to_soap_fault e =
  match e.kind with
  | Fault code -> (code, e.info)
  | k -> (`Receiver, Printf.sprintf "[%s @%s] %s" (kind_tag k) e.dest e.info)

let kind_of_tag tag =
  if tag = "timeout" then Some Timeout
  else if tag = "unreachable" then Some Unreachable
  else if tag = "circuit-open" then Some Circuit_open
  else if String.length tag >= 9 && String.sub tag 0 9 = "protocol/" then
    Some (Protocol (String.sub tag 9 (String.length tag - 9)))
  else None

(** Parse a SOAP fault back into the typed error.  Reasons carrying the
    [to_soap_fault] prefix decode to their original transport kind;
    anything else is an application [Fault].  [dest] is the peer the
    fault came from, used when the reason does not embed one. *)
let of_soap_fault ?(dest = "") ~code reason =
  let fallback () = { kind = Fault code; dest; info = reason } in
  if String.length reason < 2 || reason.[0] <> '[' then fallback ()
  else
    match String.index_opt reason ']' with
    | None -> fallback ()
    | Some close -> (
        let inside = String.sub reason 1 (close - 1) in
        match String.index_opt inside '@' with
        | Some at when at >= 1 && inside.[at - 1] = ' ' -> (
            let tag = String.sub inside 0 (at - 1) in
            let d = String.sub inside (at + 1) (String.length inside - at - 1) in
            match kind_of_tag tag with
            | Some kind ->
                let info =
                  let after = close + 1 in
                  let after =
                    if after < String.length reason && reason.[after] = ' '
                    then after + 1
                    else after
                  in
                  String.sub reason after (String.length reason - after)
                in
                { kind; dest = d; info }
            | None -> fallback ())
        | _ -> fallback ())
