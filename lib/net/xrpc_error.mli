(** The typed failure vocabulary shared by {!Transport}, {!Http},
    {!Simnet}, the peer request handler and the 2PC coordinator, with a
    lossless embedding into SOAP faults. *)

type kind =
  | Timeout  (** no (complete) response within the request timeout *)
  | Unreachable  (** connection refused, peer down or partitioned away *)
  | Circuit_open  (** rejected locally: the destination's breaker is open *)
  | Protocol of string  (** transport-level garbage (bad status line, ...) *)
  | Fault of [ `Sender | `Receiver ]
      (** an application-level SOAP fault raised by the serving peer *)

type t = { kind : kind; dest : string; info : string }

exception Error of t

val error : kind:kind -> dest:string -> ('a, unit, string, 'b) format4 -> 'a
(** [error ~kind ~dest fmt ...] raises {!Error} with a formatted info. *)

val kind_name : kind -> string
val to_string : t -> string

val error_to_string : exn -> string
(** {!to_string} on {!Error}, [Printexc.to_string] otherwise. *)

val to_soap_fault : t -> [ `Sender | `Receiver ] * string
(** Render as a SOAP (fault-code, reason) pair.  Transport-kind errors
    become [`Receiver] faults with a parseable reason prefix. *)

val of_soap_fault :
  ?dest:string -> code:[ `Sender | `Receiver ] -> string -> t
(** Parse a SOAP fault reason back; round-trips [to_soap_fault] exactly.
    Reasons without the prefix decode to [Fault code] from [dest]. *)
