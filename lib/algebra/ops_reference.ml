(** Reference implementations of the Table-1 operators — the textbook
    row-at-a-time definitions the algebra layer originally shipped with
    (nested-loop ⋈, O(n²) δ, per-row linear-scan ρ).

    They are kept verbatim (modulo going through {!Table.rows}/{!Table.make}
    instead of the old row-list record field) as the oracle for the
    equivalence tests in [test/test_algebra.ml] and as the baseline the
    BENCH_algebra.json speedups are measured against.  Nothing on a
    production path calls this module. *)

open Xrpc_xml

(** σ_a — keep rows whose boolean column [a] is true. *)
let select t a =
  let i = Table.col_index t a in
  Table.make (Table.col_names t)
    (List.filter
       (fun r ->
         match List.nth r i with
         | Table.Item (Xdm.Atomic (Xs.Boolean b)) -> b
         | Table.Int n -> n <> 0
         | c -> Xdm.ebv [ Table.item_cell c ])
       (Table.rows t))

(** σ(a = value). *)
let select_eq t a v =
  let i = Table.col_index t a in
  Table.make (Table.col_names t)
    (List.filter (fun r -> Table.cell_equal (List.nth r i) v) (Table.rows t))

(** π_{a1:b1,...} — project with rename, no duplicate removal. *)
let project t (spec : (string * string) list) =
  let idxs = List.map (fun (_, b) -> Table.col_index t b) spec in
  Table.make
    (List.map fst spec)
    (List.map (fun r -> List.map (fun i -> List.nth r i) idxs) (Table.rows t))

(** δ — duplicate elimination by scanning all retained rows. *)
let distinct t =
  let rec dedup seen = function
    | [] -> List.rev seen
    | r :: rest ->
        if List.exists (fun s -> List.for_all2 Table.cell_equal s r) seen then
          dedup seen rest
        else dedup (r :: seen) rest
  in
  Table.make (Table.col_names t) (dedup [] (Table.rows t))

(** ⊎ — disjoint union. *)
let union a b =
  if Table.col_names a <> Table.col_names b then
    Table.err "union of incompatible schemas";
  Table.make (Table.col_names a) (Table.rows a @ Table.rows b)

(** ⋈_{a=b} — nested-loop equi-join. *)
let equi_join a ca b cb =
  let ia = Table.col_index a ca and ib = Table.col_index b cb in
  let cols_a = Table.col_names a in
  let cols_b =
    List.map (fun c -> if List.mem c cols_a then c ^ "'" else c)
      (Table.col_names b)
  in
  let rows_b = Table.rows b in
  Table.make (cols_a @ cols_b)
    (List.concat_map
       (fun ra ->
         List.filter_map
           (fun rb ->
             if Table.cell_equal (List.nth ra ia) (List.nth rb ib) then
               Some (ra @ rb)
             else None)
           rows_b)
       (Table.rows a))

(** ρ_{b:<a1,...,an>/p} — DENSE_RANK via per-row linear search in the
    sorted distinct keys of the row's partition. *)
let rank t ~new_col ~order_by ?partition () =
  let order_idx = List.map (Table.col_index t) order_by in
  let part_idx = Option.map (Table.col_index t) partition in
  let key r = List.map (fun i -> List.nth r i) order_idx in
  let part r =
    match part_idx with Some i -> Some (List.nth r i) | None -> None
  in
  let cmp_keys ka kb =
    let rec go = function
      | [] -> 0
      | (x, y) :: rest -> (
          match Table.cell_compare x y with 0 -> go rest | c -> c)
    in
    go (List.combine ka kb)
  in
  let trows = Table.rows t in
  let parts = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let p = part r in
      let existing = try Hashtbl.find parts p with Not_found -> [] in
      Hashtbl.replace parts p (key r :: existing))
    trows;
  let rank_of =
    Hashtbl.fold
      (fun p keys acc ->
        let sorted = List.sort_uniq cmp_keys keys in
        (p, sorted) :: acc)
      parts []
  in
  let rows =
    List.map
      (fun r ->
        let p = part r in
        let sorted = List.assoc p rank_of in
        let k = key r in
        let rec find i = function
          | [] -> Table.err "rank: key not found"
          | k' :: rest -> if cmp_keys k k' = 0 then i else find (i + 1) rest
        in
        r @ [ Table.Int (find 1 sorted) ])
      trows
  in
  Table.make (Table.col_names t @ [ new_col ]) rows

(** Literal table constructor. *)
let literal cols rows = Table.make cols rows

(** Merge-union on [iter] via a stable sort whose comparator re-reads the
    (iter, pos) cells of each row list on every comparison. *)
let merge_union_on_iter tables =
  match tables with
  | [] -> Table.empty [ "iter"; "pos"; "item" ]
  | t :: _ ->
      let all = List.concat_map Table.rows tables in
      let ii = Table.col_index t "iter" and pi = Table.col_index t "pos" in
      let rows =
        List.stable_sort
          (fun a b ->
            match
              Int.compare
                (Table.int_cell (List.nth a ii))
                (Table.int_cell (List.nth b ii))
            with
            | 0 ->
                Int.compare
                  (Table.int_cell (List.nth a pi))
                  (Table.int_cell (List.nth b pi))
            | c -> c)
          all
      in
      Table.make (Table.col_names t) rows
