(** Loop-lifted evaluation over [iter|pos|item] tables — §3.1 of the paper.

    This is the Pathfinder-style set-at-a-time execution model: instead of
    iterating a for-loop, every expression is evaluated once for {e all}
    iterations, producing a single table.  The subset covered (literals,
    sequences, arithmetic, comparisons, built-in calls, nested [for]/[let],
    [where], and [execute at]) is exactly what the paper's examples Q2, Q3,
    Q5, Q6 and the echoVoid experiment exercise; XRPC calls compile to the
    Figure-2 Bulk RPC rule, so a call nested in a for-loop taken [n] times
    generates a single request per destination peer.

    Every per-iteration traversal goes through {!Table.iter_lookup} /
    {!Table.sequences}, which partition a table by [iter] once, so
    evaluating an expression over k live iterations costs O(rows), not
    O(k × rows). *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Xast = Xrpc_xquery.Ast
module Xctx = Xrpc_xquery.Context
module Profile = Xrpc_obs.Profile
module IntSet = Set.Make (Int)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type env = {
  loop : int list;  (** the loop relation: live iteration numbers *)
  vars : (string * Table.t) list;  (** variable -> iter|pos|item table *)
  funcs : (string * string * int, Xctx.func) Hashtbl.t;
  imports : (string * string) list;
  call : dest:string -> Message.request -> Message.t;
  query_id : Message.query_id option;
  doc_resolver : string -> Store.t;
  trace : (string * Table.t) list ref;
}

let make_env ?(vars = []) ?(funcs = Hashtbl.create 4) ?(imports = [])
    ?(query_id = None)
    ?(doc_resolver = fun uri -> raise (Xctx.No_such_document uri)) ~call () =
  {
    loop = [ 1 ]; vars; funcs; imports; call; query_id; doc_resolver;
    trace = ref [];
  }

let var_key (q : Qname.t) = q.Qname.uri ^ "}" ^ q.Qname.local

let note env name t = env.trace := (name, t) :: !(env.trace)

(** Table of a constant: value [a] in every live iteration. *)
let const_table env (a : Xs.t) =
  let n = List.length env.loop in
  Table.of_cols [ "iter"; "pos"; "item" ]
    [|
      Array.of_list (List.map (fun i -> Table.Int i) env.loop);
      Array.make n (Table.Int 1);
      Array.make n (Table.Item (Xdm.Atomic a));
    |]

(** Per-iteration sequences of a table, for all live iterations (empty
    sequences included thanks to the loop relation — footnote 5). *)
let sequences env t = Table.sequences t ~loop:env.loop

(* Plan-node labels for the profiler: one node per evaluated expression,
   named by its AST constructor.  Ids are assigned in evaluation order,
   which for a given query is a deterministic pre-order walk — the same
   numbering [explain] prints statically. *)
let node_name : Xast.expr -> string = function
  | Xast.Literal _ -> "literal"
  | Xast.Var _ -> "var"
  | Xast.Sequence _ -> "sequence"
  | Xast.Range _ -> "range"
  | Xast.Arith _ -> "arith"
  | Xast.Compare _ -> "compare"
  | Xast.Call _ -> "call"
  | Xast.Flwor _ -> "flwor"
  | Xast.Execute_at _ -> "execute_at"
  | Xast.Path _ -> "path"
  | Xast.Elem_ctor _ -> "elem"
  | Xast.Filter _ -> "filter"
  | Xast.If _ -> "if"
  | _ -> "expr"

let node_detail : Xast.expr -> string = function
  | Xast.Var q -> "$" ^ Qname.to_string q
  | Xast.Call (q, _) -> Qname.to_string q
  | Xast.Execute_at (_, f, _) -> Qname.to_string f
  | Xast.Elem_ctor (n, _, _) -> Qname.to_string n
  | Xast.Literal a -> Xs.to_string a
  | _ -> ""

let rec eval env (e : Xast.expr) : Table.t =
  if not (Profile.enabled ()) then eval_inner env e
  else
    Profile.with_node ~detail:(node_detail e) (node_name e) (fun () ->
        let t = eval_inner env e in
        Profile.set_rows (Table.cardinality t);
        t)

and eval_inner env (e : Xast.expr) : Table.t =
  match e with
  | Xast.Literal a -> const_table env a
  | Xast.Var q -> (
      match List.assoc_opt (var_key q) env.vars with
      | Some t -> t
      | None -> unsupported "unbound loop-lifted variable $%s" (Qname.to_string q))
  | Xast.Sequence es ->
      let lookups = List.map (fun e -> Table.iter_lookup (eval env e)) es in
      let rows =
        List.concat_map
          (fun iter ->
            List.concat_map
              (fun lookup -> List.map (fun item -> (iter, item)) (lookup iter))
              lookups)
          env.loop
      in
      Table.of_iter_items rows
  | Xast.Range (a, b) ->
      let la = Table.iter_lookup (eval env a)
      and lb = Table.iter_lookup (eval env b) in
      let rows =
        List.concat_map
          (fun iter ->
            match (la iter, lb iter) with
            | [ lo ], [ hi ] ->
                let lo = int_of_float (Xs.to_float (Xdm.atomize_item lo)) in
                let hi = int_of_float (Xs.to_float (Xdm.atomize_item hi)) in
                if hi < lo then []
                else
                  List.init (hi - lo + 1) (fun k ->
                      (iter, Xdm.int (lo + k)))
            | _ -> unsupported "range over non-singletons")
          env.loop
      in
      Table.of_iter_items rows
  | Xast.Arith (op, a, b) ->
      binop env a b (fun x y ->
          let o =
            match op with
            | Xast.Add -> `Add
            | Xast.Sub -> `Sub
            | Xast.Mul -> `Mul
            | Xast.Div -> `Div
            | Xast.Idiv -> `Idiv
            | Xast.Mod -> `Mod
          in
          Xs.arith o x y)
  | Xast.Compare (op, a, b) ->
      binop env a b (fun x y ->
          let x, y = Xs.coerce_general x y in
          let c = Xs.compare_values x y in
          Xs.Boolean
            (match op with
            | Xast.G_eq | Xast.V_eq -> c = 0
            | Xast.G_ne | Xast.V_ne -> c <> 0
            | Xast.G_lt | Xast.V_lt -> c < 0
            | Xast.G_le | Xast.V_le -> c <= 0
            | Xast.G_gt | Xast.V_gt -> c > 0
            | Xast.G_ge | Xast.V_ge -> c >= 0
            | _ -> unsupported "node comparison in loop-lifted plan"))
  | Xast.Call (q, args) ->
      (* per-iteration application of a built-in over lifted arguments *)
      let arg_lookups = List.map (fun a -> Table.iter_lookup (eval env a)) args in
      let impl =
        match Xrpc_xquery.Builtins.find q (List.length args) with
        | Some impl -> impl
        | None -> unsupported "function %s in loop-lifted plan" (Qname.to_string q)
      in
      let ctx = { (Xctx.empty ()) with Xctx.doc_resolver = env.doc_resolver } in
      let rows =
        List.concat_map
          (fun iter ->
            let arg_seqs = List.map (fun lookup -> lookup iter) arg_lookups in
            List.map (fun item -> (iter, item)) (impl ctx arg_seqs))
          env.loop
      in
      Table.of_iter_items rows
  | Xast.Flwor (clauses, [], ret) -> eval_flwor env clauses ret
  | Xast.Execute_at (dst_e, fname, args) ->
      let dst = eval env dst_e in
      let params = List.map (eval env) args in
      let module_uri, location =
        match
          Hashtbl.find_opt env.funcs
            (fname.Qname.uri, fname.Qname.local, List.length args)
        with
        | Some f -> (f.Xctx.fn_module_uri, f.Xctx.fn_location)
        | None -> (
            ( fname.Qname.uri,
              match List.assoc_opt fname.Qname.uri env.imports with
              | Some at -> at
              | None -> "" ))
      in
      let result, trace =
        Bulk_rpc.execute ~dst ~params ~module_uri ~location
          ~method_:fname.Qname.local ?query_id:env.query_id ~call:env.call ()
      in
      List.iter (fun (name, t) -> note env name t) trace;
      result
  | Xast.Path (a, b) ->
      (* loop-lifted path step: the step is applied to every (iter, node)
         pair at once; per-iteration results end up in document order with
         duplicates removed, like any XPath step *)
      let t_in = eval env a in
      eval_step env t_in b
  | Xast.Elem_ctor (name, attr_specs, content) ->
      let attr_tables =
        List.map
          (fun (aname, parts) ->
            ( aname,
              List.map
                (function
                  | Xast.A_text s -> `Text s
                  | Xast.A_expr e -> `Lookup (Table.iter_lookup (eval env e)))
                parts ))
          attr_specs
      in
      let content_lookups =
        List.map (fun e -> Table.iter_lookup (eval env e)) content
      in
      let rows =
        List.map
          (fun iter ->
            let attrs =
              List.map
                (fun (aname, parts) ->
                  let v =
                    String.concat ""
                      (List.map
                         (function
                           | `Text s -> s
                           | `Lookup lookup ->
                               String.concat " "
                                 (List.map Xs.to_string
                                    (Xdm.atomize (lookup iter))))
                         parts)
                  in
                  Tree.attr aname v)
                attr_tables
            in
            let content_seq =
              List.concat_map (fun lookup -> lookup iter) content_lookups
            in
            let content_attrs, children =
              Xrpc_xquery.Eval.content_to_trees content_seq
            in
            let tree =
              Tree.Element { name; attrs = attrs @ content_attrs; children }
            in
            (iter, Xdm.Node (Store.root (Store.shred tree))))
          env.loop
      in
      Table.of_iter_items rows
  | Xast.Filter (e, preds) ->
      (* positional predicates with an integer-literal index: number the
         items of each iteration (ρ_{rk:<pos>/iter}) and keep rank = k.
         Non-literal predicates would need per-tuple EBV plumbing and stay
         unsupported. *)
      List.fold_left
        (fun t pred ->
          match pred with
          | Xast.Literal (Xs.Integer k) ->
              let ranked =
                Ops.rank t ~new_col:"rk" ~order_by:[ "pos" ] ~partition:"iter" ()
              in
              let selected = Ops.select_eq ranked "rk" (Table.Int k) in
              Ops.project selected
                [ ("iter", "iter"); ("pos", "pos"); ("item", "item") ]
          | p ->
              unsupported "non-positional predicate in loop-lifted plan: %s"
                (Xast.expr_to_string p))
        (eval env e) preds
  | Xast.If (c, t, e) ->
      let lc = Table.iter_lookup (eval env c) in
      let rows =
        List.concat_map
          (fun iter ->
            let branch = if Xdm.ebv (lc iter) then t else e in
            (* per-iteration branch selection: evaluate under the single
               surviving iteration *)
            let sub = { env with loop = [ iter ] } in
            List.map (fun item -> (iter, item))
              (Table.sequence_of (eval sub branch) ~iter))
          env.loop
      in
      Table.of_iter_items rows
  | e -> unsupported "expression in loop-lifted plan: %s" (Xast.expr_to_string e)

(* a path step applied to a table of context nodes *)
and eval_step env t_in step =
  match step with
  | Xast.Step (axis, test, preds) ->
      let principal =
        if axis = Xast.Attribute then `Attribute else `Element
      in
      let ctx0 =
        { (Xctx.empty ()) with Xctx.doc_resolver = env.doc_resolver }
      in
      let l_in = Table.iter_lookup t_in in
      let rows =
        List.concat_map
          (fun iter ->
            let nodes =
              List.concat_map
                (fun item ->
                  match item with
                  | Xdm.Node n ->
                      (* predicates see positions within this context
                         node's axis result, per XPath *)
                      let candidates =
                        List.filter
                          (Xrpc_xquery.Eval.test_matches ~principal test)
                          (Xrpc_xquery.Eval.axis_nodes axis n)
                      in
                      let filtered =
                        Xrpc_xquery.Eval.apply_predicates ctx0 preds
                          (List.map (fun n -> Xdm.Node n) candidates)
                      in
                      List.map Xdm.node_only filtered
                  | Xdm.Atomic _ -> unsupported "path step over atomic value")
                (l_in iter)
            in
            List.map
              (fun n -> (iter, Xdm.Node n))
              (Xdm.doc_order_dedup nodes))
          env.loop
      in
      Table.of_iter_items rows
  | other ->
      unsupported "path rhs in loop-lifted plan: %s" (Xast.expr_to_string other)

and binop env a b f =
  let la = Table.iter_lookup (eval env a)
  and lb = Table.iter_lookup (eval env b) in
  let rows =
    List.concat_map
      (fun iter ->
        match (la iter, lb iter) with
        | [], _ | _, [] -> []
        | [ x ], [ y ] ->
            [ (iter, Xdm.Atomic (f (Xdm.atomize_item x) (Xdm.atomize_item y))) ]
        | _ -> unsupported "binary op over non-singleton sequences")
      env.loop
  in
  Table.of_iter_items rows

and eval_flwor env clauses ret =
  match clauses with
  | [] ->
      let t = eval env ret in
      t
  | Xast.Let (v, e) :: rest ->
      let t = eval env e in
      eval_flwor { env with vars = (var_key v, t) :: env.vars } rest ret
  | Xast.Where e :: rest ->
      (* σ over the loop relation: drop iterations where the predicate is
         false, restricting every live variable table accordingly *)
      let lookup = Table.iter_lookup (eval env e) in
      let keep = List.filter (fun iter -> Xdm.ebv (lookup iter)) env.loop in
      let keep_set = IntSet.of_list keep in
      let restrict table =
        let icol = Table.col table "iter" in
        Table.filter_rows table (fun r ->
            IntSet.mem (Table.int_cell icol.(r)) keep_set)
      in
      let env =
        { env with loop = keep; vars = List.map (fun (k, t) -> (k, restrict t)) env.vars }
      in
      eval_flwor env rest ret
  | Xast.For (v, posv, e) :: rest ->
      (* loop-lifting proper: the inner loop has one iteration per
         (iter, pos) of the binding sequence *)
      let t_in = eval env e in
      let ranked =
        Ops.rank t_in ~new_col:"inner" ~order_by:[ "iter"; "pos" ] ()
      in
      (* map : outer iter <-> inner iter *)
      let map_t = Ops.project ranked [ ("outer", "iter"); ("inner", "inner") ] in
      let inner_col = Table.col map_t "inner" in
      let inner_loop =
        Array.to_list (Array.map Table.int_cell inner_col)
        |> List.sort Int.compare
      in
      (* distribute each outer variable to the inner loop *)
      let distribute table =
        let joined = Ops.equi_join map_t "outer" table "iter" in
        Ops.project joined [ ("iter", "inner"); ("pos", "pos"); ("item", "item") ]
      in
      let vars = List.map (fun (k, t) -> (k, distribute t)) env.vars in
      (* the loop variable: value at pos of its inner iteration *)
      let n_in = Table.cardinality ranked in
      let v_table =
        Table.of_cols [ "iter"; "pos"; "item" ]
          [|
            Table.col ranked "inner";
            Array.make n_in (Table.Int 1);
            Table.col ranked "item";
          |]
      in
      let vars = (var_key v, v_table) :: vars in
      let vars =
        match posv with
        | None -> vars
        | Some pv ->
            let pos_table =
              Table.of_cols [ "iter"; "pos"; "item" ]
                [|
                  Table.col ranked "inner";
                  Array.make n_in (Table.Int 1);
                  Array.map
                    (fun c -> Table.Item (Xdm.int (Table.int_cell c)))
                    (Table.col ranked "pos");
                |]
            in
            (var_key pv, pos_table) :: vars
      in
      let inner_env = { env with loop = inner_loop; vars } in
      let t_ret = eval_flwor inner_env rest ret in
      (* map inner iterations back to outer, keeping iteration order *)
      let joined = Ops.equi_join t_ret "iter" map_t "inner" in
      let oc = Table.col joined "outer"
      and ic = Table.col joined "iter"
      and pc = Table.col joined "pos"
      and xc = Table.col joined "item" in
      let tuples =
        Array.init (Table.cardinality joined) (fun r ->
            ( Table.int_cell oc.(r),
              Table.int_cell ic.(r),
              Table.int_cell pc.(r),
              Table.item_cell xc.(r) ))
      in
      (* (inner, pos) pairs are unique, so the sort is deterministic *)
      Array.sort
        (fun (o1, i1, p1, _) (o2, i2, p2, _) ->
          match Int.compare o1 o2 with
          | 0 -> ( match Int.compare i1 i2 with 0 -> Int.compare p1 p2 | c -> c)
          | c -> c)
        tuples;
      Table.of_iter_items
        (Array.to_list (Array.map (fun (o, _, _, item) -> (o, item)) tuples))

(** Evaluate a standalone expression under a single-iteration loop and
    return its sequence (iteration 1). *)
let run env e =
  let t = eval env e in
  Table.sequence_of t ~iter:1

(* ------------------------------------------------------------------ *)
(* EXPLAIN: static plan rendering                                      *)
(* ------------------------------------------------------------------ *)

(** Extra annotation lines for [execute at] plan nodes in {!explain}
    output.  The cost optimizer installs one that renders its Table 2–4
    estimates (chosen strategy, rejected alternatives); [None] keeps the
    plain algebraic rendering.  Receives the destination when it is a
    string literal, the called function, and its arity. *)
let execute_note_hook :
    (dest:string option -> fn:Qname.t -> nargs:int -> string list) option ref =
  ref None

(** Render the loop-lifted plan of [e] without evaluating it: one line
    per plan node, numbered in the same deterministic pre-order the
    profiler uses, annotated with the Table-1 algebra each construct
    compiles to.  [:profile] output can be read against this numbering. *)
let explain (e : Xast.expr) : string =
  let buf = Buffer.create 512 in
  let next = ref 0 in
  let line indent text =
    incr next;
    Buffer.add_string buf (Printf.sprintf "%s#%d %s\n" indent !next text)
  in
  let note indent text =
    Buffer.add_string buf (Printf.sprintf "%s| %s\n" indent text)
  in
  let label e =
    let d = node_detail e in
    node_name e ^ if d = "" then "" else " (" ^ d ^ ")"
  in
  let rec pr indent e =
    let deeper = indent ^ "  " in
    match e with
    | Xast.Flwor (clauses, _, ret) ->
        line indent (label e);
        List.iter
          (fun c ->
            match c with
            | Xast.For (v, _, src) ->
                note deeper
                  (Printf.sprintf
                     "for $%s: ρ_{inner:<iter,pos>}; distribute vars via \
                      ⋈_{outer=iter} + π"
                     (Qname.to_string v));
                pr deeper src
            | Xast.Let (v, src) ->
                note deeper (Printf.sprintf "let $%s" (Qname.to_string v));
                pr deeper src
            | Xast.Where src ->
                note deeper "where: σ over the loop relation";
                pr deeper src)
          clauses;
        note deeper "return:";
        pr deeper ret
    | Xast.Execute_at (dst, f, args) ->
        line indent
          (Printf.sprintf
             "%s — Bulk RPC: δ(π_{item}(dst)); per peer σ_{item=p} ⋈ params \
              → one request; reassemble ⋈ + π; merge ⊎_{iter,pos}"
             (label e));
        (match !execute_note_hook with
        | Some hook ->
            let dest =
              match dst with
              | Xast.Literal (Xs.String s) -> Some s
              | _ -> None
            in
            List.iter (note deeper)
              (hook ~dest ~fn:f ~nargs:(List.length args))
        | None -> ignore f);
        note deeper "destination:";
        pr deeper dst;
        List.iteri
          (fun i a ->
            note deeper (Printf.sprintf "param %d:" (i + 1));
            pr deeper a)
          args
    | Xast.Filter (inner, preds) ->
        line indent
          (Printf.sprintf "%s — per predicate: ρ_{rk:<pos>/iter}; σ_{rk=k}; π"
             (label e));
        pr deeper inner;
        List.iter
          (fun p ->
            note deeper (Printf.sprintf "[%s]" (Xast.expr_to_string p)))
          preds
    | Xast.Sequence es ->
        line indent (label e);
        List.iter (pr deeper) es
    | Xast.Range (a, b) | Xast.Arith (_, a, b) | Xast.Compare (_, a, b) ->
        line indent (label e);
        pr deeper a;
        pr deeper b
    | Xast.Call (_, args) ->
        line indent (label e);
        List.iter (pr deeper) args
    | Xast.Path (a, step) ->
        line indent (label e);
        pr deeper a;
        note deeper
          (Printf.sprintf "step: %s (doc-order dedup per iter)"
             (Xast.expr_to_string step))
    | Xast.Elem_ctor (_, _, content) ->
        line indent (label e);
        List.iter (pr deeper) content
    | Xast.If (c, t, el) ->
        line indent (label e);
        pr deeper c;
        note deeper "then:";
        pr deeper t;
        note deeper "else:";
        pr deeper el
    | Xast.Literal _ | Xast.Var _ -> line indent (label e)
    | other ->
        line indent
          (Printf.sprintf "%s: %s" (node_name other)
             (Xast.expr_to_string other))
  in
  pr "" e;
  Buffer.contents buf
