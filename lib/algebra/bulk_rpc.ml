(** The relational translation of a loop-lifted XRPC call — Figure 2 of the
    paper, with the intermediate tables of Figure 1 exposed for inspection.

    {v
    execute at {dst} { f(param1, ..., paramn) }  ⇒  result
      peers   = δ(π_item(dst))
      map_p   = π_{iter,iterp}(ρ_{iterp:<iter>}(σ_{item=p}(dst)))
      req_i_p = π_{iterp,pos,item}(ρ_pos(map_p ⋈_{iter=iter} param_i))
      msg_p   = f(req_1_p, ..., req_n_p) @ p          (one Bulk RPC)
      res_p   = π_{iter,pos,item}(msg_p ⋈_{iterp=iterp} map_p)
      result  = ⊎_{p ∈ peers} res_p                    (merge on iter)
    v}

    Request assembly partitions each [req_i_p] table by [iterp] in one pass
    ({!Table.group_by_iter}), so building a k-call Bulk RPC costs O(rows),
    not O(k × rows); response reassembly likewise builds [msg_p] columnar
    in one pass and maps it back through the hash ⋈. *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile

type trace = (string * Table.t) list

let m_bulk = Metrics.counter "bulkrpc.executes"
let m_bulk_calls = Metrics.counter "bulkrpc.calls"

(** [execute ~dst ~params ~request_meta ~call] runs the Figure-2 rule.
    [dst] and each parameter are [iter|pos|item] tables over the same loop;
    [call dest request] performs one network round trip.  Returns the
    result table plus the named intermediate tables (Figure 1). *)
let execute ~(dst : Table.t) ~(params : Table.t list)
    ~(module_uri : string) ~(location : string) ~(method_ : string)
    ?(query_id : Message.query_id option)
    ~(call : dest:string -> Message.request -> Message.t) () :
    Table.t * trace =
  Trace.with_span ~detail:method_ "bulkrpc" @@ fun () ->
  Metrics.incr m_bulk;
  let trace = ref [] in
  let note name t = trace := (name, t) :: !trace in
  note "dst" dst;
  List.iteri (fun i p -> note (Printf.sprintf "param%d" (i + 1)) p) params;
  (* peers = δ(π_item(dst)) — order of first occurrence is kept by δ *)
  let peers_t = Ops.distinct (Ops.project dst [ ("item", "item") ]) in
  let peer_col = Table.col peers_t "item" in
  let peers =
    Array.to_list
      (Array.map (fun c -> Xdm.string_value (Table.item_cell c)) peer_col)
  in
  let results =
    List.map
      (fun peer ->
        let map_p, iterps, request =
          Trace.with_span ~detail:peer "bulkrpc.assemble" @@ fun () ->
          let peer_cell = Table.Item (Xdm.str peer) in
          (* map_p : iter -> iterp *)
          let selected = Ops.select_eq dst "item" peer_cell in
          let ranked =
            Ops.rank selected ~new_col:"iterp" ~order_by:[ "iter" ] ()
          in
          let map_p = Ops.project ranked [ ("iter", "iter"); ("iterp", "iterp") ] in
          note (Printf.sprintf "map_%s" peer) map_p;
          (* req_i_p per parameter *)
          let reqs =
            List.mapi
              (fun i param ->
                let joined = Ops.equi_join map_p "iter" param "iter" in
                let req =
                  Ops.project joined
                    [ ("iterp", "iterp"); ("pos", "pos"); ("item", "item") ]
                in
                note (Printf.sprintf "req%d_%s" (i + 1) peer) req;
                req)
              params
          in
          (* assemble the Bulk RPC: one call per iterp, in iterp order.  Each
             req table is partitioned by iterp ONCE; per-call assembly is then
             an O(1) lookup, keeping the whole request build linear. *)
          let iterps =
            List.sort_uniq Int.compare
              (Array.to_list
                 (Array.map Table.int_cell (Table.col map_p "iterp")))
          in
          let req_lookups =
            List.map (fun req -> Table.iter_lookup ~iter_col:"iterp" req) reqs
          in
          let calls =
            List.map
              (fun iterp -> List.map (fun lookup -> lookup iterp) req_lookups)
              iterps
          in
          Metrics.incr_by m_bulk_calls (List.length calls);
          (* logical calls carried to this destination, for :profile's
             per-destination accounting *)
          if Profile.enabled () then
            Profile.note_calls ~dest:peer (List.length calls);
          let request =
            {
              Message.module_uri;
              location;
              method_;
              arity = List.length params;
              updating = false;
              fragments = false;
              query_id;
              idem_key = None; cache_ok = true;
              calls;
            }
          in
          (map_p, iterps, request)
        in
        let response = call ~dest:peer request in
        Trace.with_span ~detail:peer "bulkrpc.reassemble" @@ fun () ->
        let result_seqs =
          match response with
          | Message.Response r -> r.Message.results
          | Message.Fault f ->
              Xdm.dyn_error "XRPC fault from %s: %s" peer f.Message.reason
          | _ -> Xdm.dyn_error "unexpected XRPC reply from %s" peer
        in
        (* msg_p : iterp|pos|item — one columnar pass over the response *)
        let msg_p =
          Table.of_sequences ~iter_col:"iterp" (List.combine iterps result_seqs)
        in
        note (Printf.sprintf "msg_%s" peer) msg_p;
        (* res_p : map iterp back to iter *)
        let joined = Ops.equi_join msg_p "iterp" map_p "iterp" in
        let res_p =
          Ops.project joined [ ("iter", "iter"); ("pos", "pos"); ("item", "item") ]
        in
        note (Printf.sprintf "res_%s" peer) res_p;
        res_p)
      peers
  in
  let result = Ops.merge_union_on_iter results in
  note "result" result;
  (result, List.rev !trace)
