(** Column tables — the [iter|pos|item] representation of §3.1.

    MonetDB/XQuery represents every XQuery sequence as a relational table
    with schema [pos|item]; under loop-lifting an extra [iter] column holds
    the logical iteration number.  Cells are either integers (for [iter] /
    [pos] / rank columns) or XDM items.

    Storage is columnar: one [cell array] per column plus a cached
    column-name → position map, so cell access is O(1) and the kernels in
    {!Ops} scan column arrays instead of walking row lists.  Column arrays
    are never mutated after construction, which lets operators share columns
    between tables (projection is O(#columns), ρ reuses its input columns).
    [make] remains as the row-wise compatibility constructor; [rows]
    materializes a row-wise view for callers that need one (tests, the
    {!Ops_reference} oracle).  The pretty-printer reproduces the table
    layout used in Figure 1 of the paper. *)

open Xrpc_xml

type cell = Int of int | Item of Xdm.item

type t = {
  cols : string array;
  index : (string, int) Hashtbl.t;
      (** cached column-name → position map (first occurrence wins) *)
  data : cell array array;  (** column-major: [data.(c).(r)]; never mutated *)
  nrows : int;
}

exception Schema_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let build_index cols =
  let h = Hashtbl.create (max 4 (2 * Array.length cols)) in
  Array.iteri (fun i c -> if not (Hashtbl.mem h c) then Hashtbl.add h c i) cols;
  h

let dummy_cell = Int 0

(** Column-wise constructor: all arrays must have the same length. *)
let of_cols cols data =
  let cols = Array.of_list cols in
  if Array.length data <> Array.length cols then
    err "of_cols: %d column names but %d column arrays" (Array.length cols)
      (Array.length data);
  let nrows = if Array.length data = 0 then 0 else Array.length data.(0) in
  Array.iteri
    (fun i c ->
      if Array.length c <> nrows then
        err "of_cols: column %S has %d rows, expected %d" cols.(i)
          (Array.length c) nrows)
    data;
  { cols; index = build_index cols; data; nrows }

(** Row-wise compatibility constructor. *)
let make cols rows =
  let ncols = List.length cols in
  List.iter
    (fun r ->
      if List.length r <> ncols then
        err "row width %d does not match %d columns" (List.length r) ncols)
    rows;
  let nrows = List.length rows in
  let cols = Array.of_list cols in
  let data = Array.init ncols (fun _ -> Array.make nrows dummy_cell) in
  List.iteri
    (fun ri row -> List.iteri (fun ci c -> data.(ci).(ri) <- c) row)
    rows;
  { cols; index = build_index cols; data; nrows }

let empty cols = make cols []
let cardinality t = t.nrows
let arity t = Array.length t.cols
let col_names t = Array.to_list t.cols

let col_index t c =
  match Hashtbl.find_opt t.index c with
  | Some i -> i
  | None -> err "no column %S in table(%s)" c (String.concat "," (col_names t))

(** The physical column arrays.  Read-only by convention. *)
let columns t = t.data

let column t i = t.data.(i)
let col t c = t.data.(col_index t c)

(** O(1) cell access: [get t row ci] with a column position, [cell t row c]
    through the cached column-index map. *)
let get t row ci = t.data.(ci).(row)

let cell t row c = t.data.(col_index t c).(row)
let row t ri = Array.to_list (Array.map (fun c -> c.(ri)) t.data)

(** Row-wise view (materialized); prefer the columnar accessors on hot
    paths. *)
let rows t = List.init t.nrows (row t)

let int_cell = function
  | Int i -> i
  | Item (Xdm.Atomic (Xs.Integer i)) -> i
  | _ -> err "expected integer cell"

let item_cell = function
  | Item i -> i
  | Int i -> Xdm.Atomic (Xs.Integer i)

let cell_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Item (Xdm.Atomic x), Item (Xdm.Atomic y) -> (
      try Xs.equal_values x y with Xs.Type_error _ -> false)
  | Item (Xdm.Node x), Item (Xdm.Node y) -> Store.equal_nodes x y
  | Int x, Item (Xdm.Atomic (Xs.Integer y)) | Item (Xdm.Atomic (Xs.Integer x)), Int y ->
      x = y
  | _ -> false

let cell_compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Item (Xdm.Atomic x), Item (Xdm.Atomic y) -> Xs.compare_values x y
  | Item (Xdm.Node x), Item (Xdm.Node y) -> Store.compare_nodes x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Item (Xdm.Atomic _), Item (Xdm.Node _) -> -1
  | Item (Xdm.Node _), Item (Xdm.Atomic _) -> 1

(** Conservative hash key for a cell: [cell_equal a b] implies
    [cell_key a = cell_key b] for the value shapes the algebra produces
    (integers, canonical-form atomics, nodes); distinct values may collide
    (e.g. [Integer 5] and [String "5"]), so hash consumers must re-check
    candidates with {!cell_equal}.  Numerics key by their canonical float
    rendering, which makes the cross-type bridges of XPath general equality
    ([Int 5] = [Integer 5] = [Double 5.0] = [Untyped "5"], and the
    string-value fallback [Boolean true] = [String "true"]) land in one
    bucket.  Non-canonical lexical forms of untyped/temporal values are the
    only equal-but-split cases, matching the non-transitive corners of
    {!Xs.compare_values} itself. *)
let cell_key = function
  | Int i -> Xs.float_to_string (float_of_int i)
  | Item (Xdm.Atomic a) when Xs.is_numeric a ->
      (* [+. 0.] normalizes -0. to 0., which compare equal *)
      Xs.float_to_string (Xs.to_float a +. 0.)
  | Item (Xdm.Atomic a) -> Xs.to_string a
  | Item (Xdm.Node n) ->
      Printf.sprintf "\x00%d.%d" n.Store.store.Store.doc_id n.Store.pre

(** Hash key of a whole row (cell keys joined; collisions re-checked by the
    caller with {!cell_equal}). *)
let row_key t r =
  let b = Buffer.create 32 in
  Array.iter
    (fun colarr ->
      Buffer.add_string b (cell_key colarr.(r));
      Buffer.add_char b '\x02')
    t.data;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Row selection / concatenation (shared by the Ops kernels)           *)
(* ------------------------------------------------------------------ *)

(** Keep the rows whose index satisfies [pred], preserving order. *)
let filter_rows t pred =
  let keep = Array.make t.nrows false in
  let n = ref 0 in
  for r = 0 to t.nrows - 1 do
    if pred r then begin
      keep.(r) <- true;
      incr n
    end
  done;
  let n = !n in
  let data =
    Array.map
      (fun colarr ->
        let out = Array.make n dummy_cell in
        let j = ref 0 in
        for r = 0 to t.nrows - 1 do
          if keep.(r) then begin
            out.(!j) <- colarr.(r);
            incr j
          end
        done;
        out)
      t.data
  in
  { t with data; nrows = n }

(** Gather the rows at the given indices, in the given order. *)
let select_rows t idx =
  let n = Array.length idx in
  let data =
    Array.map (fun colarr -> Array.init n (fun j -> colarr.(idx.(j)))) t.data
  in
  { t with data; nrows = n }

(** Vertical concatenation; schemas are taken from the first table (the
    paper's ⊎ assumes compatible inputs). *)
let vconcat = function
  | [] -> err "vconcat of no tables"
  | t0 :: _ as ts ->
      let ncols = arity t0 in
      List.iter
        (fun t ->
          if arity t <> ncols then err "vconcat of incompatible arities")
        ts;
      let total = List.fold_left (fun acc t -> acc + t.nrows) 0 ts in
      let data =
        Array.init ncols (fun ci ->
            let out = Array.make total dummy_cell in
            let off = ref 0 in
            List.iter
              (fun t ->
                Array.blit t.data.(ci) 0 out !off t.nrows;
                off := !off + t.nrows)
              ts;
            out)
      in
      { t0 with data; nrows = total }

let cell_to_string = function
  | Int i -> string_of_int i
  | Item (Xdm.Atomic a) -> Printf.sprintf "%S" (Xs.to_string a)
  | Item (Xdm.Node n) -> Serialize.to_string (Store.to_tree n)

(* ------------------------------------------------------------------ *)
(* Sequence encoding                                                   *)
(* ------------------------------------------------------------------ *)

(** Build the canonical [iter|pos|item] table from one XDM sequence per
    iteration ([?iter_col] renames the iteration column, e.g. [iterp] for
    Bulk RPC message tables). *)
let of_sequences ?(iter_col = "iter") (seqs : (int * Xdm.sequence) list) =
  let n = List.fold_left (fun acc (_, s) -> acc + List.length s) 0 seqs in
  let iters = Array.make n dummy_cell
  and poss = Array.make n dummy_cell
  and items = Array.make n dummy_cell in
  let k = ref 0 in
  List.iter
    (fun (iter, seq) ->
      List.iteri
        (fun p item ->
          iters.(!k) <- Int iter;
          poss.(!k) <- Int (p + 1);
          items.(!k) <- Item item;
          incr k)
        seq)
    seqs;
  of_cols [ iter_col; "pos"; "item" ] [| iters; poss; items |]

(** Build an [iter|pos|item] table from [(iter, item)] pairs in arrival
    order, numbering [pos] 1..k within each iteration — the loop-lifted
    "renumber after concatenation" step, in one pass. *)
let of_iter_items (pairs : (int * Xdm.item) list) =
  let n = List.length pairs in
  let iters = Array.make n dummy_cell
  and poss = Array.make n dummy_cell
  and items = Array.make n dummy_cell in
  let counts = Hashtbl.create 16 in
  List.iteri
    (fun k (iter, item) ->
      let c = (try Hashtbl.find counts iter with Not_found -> 0) + 1 in
      Hashtbl.replace counts iter c;
      iters.(k) <- Int iter;
      poss.(k) <- Int c;
      items.(k) <- Item item)
    pairs;
  of_cols [ "iter"; "pos"; "item" ] [| iters; poss; items |]

(** Extract the sequence of a given iteration from an [iter|pos|item]
    table, in [pos] order. *)
let sequence_of t ~iter =
  let ic = col t "iter" and pc = col t "pos" and xc = col t "item" in
  let acc = ref [] in
  for r = t.nrows - 1 downto 0 do
    if int_cell ic.(r) = iter then
      acc := (int_cell pc.(r), item_cell xc.(r)) :: !acc
  done;
  !acc
  |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

(** Distinct iters present, ascending. *)
let iters t =
  let ic = col t "iter" in
  Array.to_list (Array.map int_cell ic) |> List.sort_uniq Int.compare

(** Partition an [iter|pos|item] table by its iteration column in ONE pass:
    [(iter, sequence)] pairs, iters ascending, each sequence in [pos]
    order.  This is what makes k-call Bulk RPC assembly O(rows) instead of
    O(k × rows). *)
let group_by_iter ?(iter_col = "iter") t =
  let ic = col t iter_col and pc = col t "pos" and xc = col t "item" in
  let groups = Hashtbl.create 64 in
  for r = t.nrows - 1 downto 0 do
    let iter = int_cell ic.(r) in
    let prev = try Hashtbl.find groups iter with Not_found -> [] in
    Hashtbl.replace groups iter ((int_cell pc.(r), item_cell xc.(r)) :: prev)
  done;
  Hashtbl.fold (fun iter prs acc -> (iter, prs) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (iter, prs) ->
         ( iter,
           prs
           |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
           |> List.map snd ))

(** [iter_lookup t] partitions [t] once and returns an O(1) iteration →
    sequence lookup (empty sequence for absent iterations). *)
let iter_lookup ?(iter_col = "iter") t =
  let h = Hashtbl.create 64 in
  List.iter (fun (i, s) -> Hashtbl.replace h i s) (group_by_iter ~iter_col t);
  fun iter -> try Hashtbl.find h iter with Not_found -> []

(** Per-iteration sequences for every iteration of [loop], in loop order
    (empty sequences included thanks to the loop relation — footnote 5). *)
let sequences t ~loop =
  let lookup = iter_lookup t in
  List.map (fun i -> (i, lookup i)) loop

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(** Figure-1 style rendering. *)
let to_string ?(max_item = 40) t =
  let render_cell c =
    let s = cell_to_string c in
    if String.length s > max_item then String.sub s 0 (max_item - 1) ^ "…" else s
  in
  let header = col_names t in
  let body = List.init t.nrows (fun r -> List.map render_cell (row t r)) in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) body)
      header
  in
  let line cells =
    String.concat " | "
      (List.map2
         (fun w s -> s ^ String.make (max 0 (w - String.length s)) ' ')
         widths cells)
  in
  let sep = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line header :: sep :: List.map line body) @ [])
