(** Scatter-gather result assembly.

    A sharded query fans out over the members of a {!Xrpc_peer.Shard} ring
    and gets back one partial sequence per leg.  Each partial row is a
    [<part owner=".." seq="N">] element: [seq] is the record's global
    sequence number assigned at placement time, [owner] the primary that
    was asked for it.  Replication and failover mean the same part can
    come back from several legs (broadcast fallback, over-query during a
    rebalance), so the gather merge must be idempotent: dedup by [seq],
    order by [seq].

    Rather than hand-rolling that, [merge] drives the existing columnar
    kernels: encode each leg as an [iter|pos|item] table with [iter] = the
    part's [seq] and [pos] = the leg index, ⊎-merge with
    {!Ops.merge_union_on_iter} (sorts by (seq, leg)), number duplicates
    with {!Ops.rank} partitioned by [iter], and keep rank 1 — the copy
    from the earliest leg.  The result is deterministic for any leg
    multiset: adding a redundant replica's answer cannot change it. *)

open Xrpc_xml

(** The [@seq] tag of a part element, if it carries one. *)
let seq_of (item : Xdm.item) : int option =
  match item with
  | Xdm.Atomic _ -> None
  | Xdm.Node n ->
      List.find_map
          (fun a ->
            match Store.name a with
            | Some q when q.Qname.local = "seq" ->
                int_of_string_opt (String.trim (Store.string_value a))
            | _ -> None)
          (Store.attributes n)

(** Merge partial leg results into one deduped, seq-ordered sequence.

    Untagged items (no [@seq]) are interned by first appearance, so a
    merge of plain values still dedups exact re-deliveries and keeps a
    deterministic order; tagged and untagged keys never collide because
    interned keys grow downward from -1. *)
let merge (partials : Xdm.sequence list) : Xdm.sequence =
  let interned = Hashtbl.create 16 in
  let next_synth = ref 0 in
  let key_of item =
    match seq_of item with
    | Some s -> s
    | None -> (
        let repr =
          match item with
          | Xdm.Atomic a -> "a\x00" ^ Xs.to_string a
          | Xdm.Node _ -> "n\x00" ^ Xdm.to_display [ item ]
        in
        match Hashtbl.find_opt interned repr with
        | Some k -> k
        | None ->
            decr next_synth;
            Hashtbl.add interned repr !next_synth;
            !next_synth)
  in
  let tables =
    List.mapi
      (fun leg seq ->
        let n = List.length seq in
        let iters = Array.make n Table.dummy_cell
        and poss = Array.make n Table.dummy_cell
        and items = Array.make n Table.dummy_cell in
        List.iteri
          (fun i item ->
            iters.(i) <- Table.Int (key_of item);
            poss.(i) <- Table.Int leg;
            items.(i) <- Table.Item item)
          seq;
        Table.of_cols [ "iter"; "pos"; "item" ] [| iters; poss; items |])
      partials
  in
  let merged = Ops.merge_union_on_iter tables in
  let ranked =
    Ops.rank merged ~new_col:"rk" ~order_by:[ "pos" ] ~partition:"iter" ()
  in
  let first = Ops.select_eq ranked "rk" (Table.Int 1) in
  (* merge_union left rows sorted by (seq, leg); untagged (negative) keys
     sort before tagged ones, in reverse interning order — re-sort those
     by appearance instead *)
  let icol = Table.col first "iter" and xcol = Table.col first "item" in
  let n = Table.cardinality first in
  let rows = List.init n (fun r -> (Table.int_cell icol.(r), r)) in
  let tagged, untagged = List.partition (fun (k, _) -> k >= 0) rows in
  let untagged =
    List.sort (fun (a, _) (b, _) -> Int.compare b a) untagged
  in
  List.map (fun (_, r) -> Table.item_cell xcol.(r)) (tagged @ untagged)
