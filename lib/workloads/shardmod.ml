(** The sharded-collection workload: the XQuery module every ring member
    serves, plus a deterministic record generator.

    A sharded collection (see [Xrpc_core.Cluster.place_sharded]) is a
    document of [<part key owner seq>…</part>] elements; each member's
    copy holds the parts whose replica set includes it.  The functions
    here are what scatter legs call ([partsByOwner] — a leg asks for the
    owners it covers) and what routed per-key queries call ([byKey],
    [valueOf]).  The same module also serves the unsharded oracle peer:
    called there with every owner (or with [allParts]), it answers over
    the whole collection, which is exactly what the differential battery
    compares against. *)

let module_ns = "shard"
let module_at = "http://x.example.org/shard.xq"

(** Serves a ["shard.xml"] slice (any root element name works). *)
let shard_module =
  {|module namespace sh = "shard";
declare function sh:partsByOwner($owners as xs:string*) {
  doc("shard.xml")/*/part[@owner = $owners]
};
declare function sh:allParts() { doc("shard.xml")/*/part };
declare function sh:byKey($key as xs:string) {
  doc("shard.xml")/*/part[@key = $key]
};
declare function sh:valueOf($key as xs:string) as xs:string {
  string(doc("shard.xml")/*/part[@key = $key])
};
declare function sh:countParts($owners as xs:string*) as xs:integer {
  count(doc("shard.xml")/*/part[@owner = $owners])
};
declare function sh:sumField($owners as xs:string*, $field as xs:string)
as xs:integer {
  sum(for $p in doc("shard.xml")/*/part[@owner = $owners]
      return xs:integer($p/rec/*[local-name(.) = $field]))
};
declare function sh:semiJoin($owners as xs:string*, $keys as xs:string*) {
  doc("shard.xml")/*/part[@owner = $owners][@key = $keys]
};
declare updating function sh:put($key as xs:string, $value as xs:string) {
  insert node <pending key="{$key}">{$value}</pending>
  into doc("shard.xml")/*
};
|}

(** A routed per-key lookup: [execute at {"xrpc://shard/<key>"}] — the
    peer's shard router turns the virtual destination into the first live
    holder of [key]. *)
let lookup_query ~key =
  Printf.sprintf
    {|import module namespace sh="shard" at "%s";
execute at {"xrpc://shard/%s"} {sh:valueOf(%S)}|}
    module_at key key

(** [n] deterministic records, [("k<i>", "<rec><id>i</id><v>…</v></rec>")]:
    ready for [Cluster.place_sharded].  The [v] field is a small LCG value
    so aggregate queries have something non-trivial to chew on. *)
let records n =
  List.init n (fun i ->
      let v = (i * 1103515245 + 12345) / 65536 mod 1000 in
      let v = if v < 0 then v + 1000 else v in
      ( Printf.sprintf "k%d" i,
        Printf.sprintf "<rec><id>%d</id><v>%d</v></rec>" i (abs v) ))
