(** Shredded document store — the pre/size/level encoding used by
    MonetDB/XQuery (§3 of the paper).

    A {!Tree.t} is shredded into pre-order arrays; a node is identified by
    [(doc_id, pre)].  All XPath axes are answered from the arrays:
    descendants of [pre] are the contiguous range [pre+1 .. pre+size.(pre)],
    parents come from the [parent] array.  Attributes occupy their own pre
    slots (kind [Attr]) directly after their owner element, which keeps node
    identity uniform. *)

type kind = Doc | Elem | Attr | Txt | Comm | Pi

type t = {
  doc_id : int;  (** globally unique store id; also orders documents *)
  uri : string;  (** document URI, or "" for constructed fragments *)
  tree : Tree.t;  (** the original immutable tree *)
  kind : kind array;
  name : Qname.t option array;  (** element/attribute/PI names *)
  value : string array;  (** text/comment/attr content; PI data *)
  parent : int array;  (** parent pre, -1 for the root *)
  size : int array;  (** number of descendants (incl. attributes) *)
  level : int array;
}

(** A node reference: a store plus a preorder rank within it. *)
type node = { store : t; pre : int }

let next_doc_id = ref 0

let fresh_doc_id () =
  incr next_doc_id;
  !next_doc_id

(** [shred ?uri tree] builds a store for [tree] with a fresh [doc_id]. *)
let shred ?(uri = "") tree =
  let n = Tree.node_count tree in
  let kind = Array.make n Doc
  and name = Array.make n None
  and value = Array.make n ""
  and parent = Array.make n (-1)
  and size = Array.make n 0
  and level = Array.make n 0 in
  let next = ref 0 in
  let rec go par lev t =
    let pre = !next in
    incr next;
    parent.(pre) <- par;
    level.(pre) <- lev;
    (match t with
    | Tree.Document cs ->
        kind.(pre) <- Doc;
        List.iter (go pre (lev + 1)) cs
    | Tree.Element { name = nm; attrs; children } ->
        kind.(pre) <- Elem;
        name.(pre) <- Some nm;
        List.iter
          (fun (a : Tree.attr) ->
            let apre = !next in
            incr next;
            kind.(apre) <- Attr;
            name.(apre) <- Some a.name;
            value.(apre) <- a.value;
            parent.(apre) <- pre;
            level.(apre) <- lev + 1)
          attrs;
        List.iter (go pre (lev + 1)) children
    | Tree.Text s ->
        kind.(pre) <- Txt;
        value.(pre) <- s
    | Tree.Comment s ->
        kind.(pre) <- Comm;
        value.(pre) <- s
    | Tree.Pi { target; data } ->
        kind.(pre) <- Pi;
        name.(pre) <- Some (Qname.make target);
        value.(pre) <- data);
    size.(pre) <- !next - pre - 1
  in
  go (-1) 0 tree;
  { doc_id = fresh_doc_id (); uri; tree; kind; name; value; parent; size;
    level }

let root store = { store; pre = 0 }
let node_count t = Array.length t.kind
let kind n = n.store.kind.(n.pre)
let name n = n.store.name.(n.pre)
let parent n =
  let p = n.store.parent.(n.pre) in
  if p < 0 then None else Some { n with pre = p }

(** Document order across stores: by [doc_id], then preorder rank. *)
let compare_nodes a b =
  match Int.compare a.store.doc_id b.store.doc_id with
  | 0 -> Int.compare a.pre b.pre
  | c -> c

let equal_nodes a b = compare_nodes a b = 0

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let is_attr n = kind n = Attr

(** Children (non-attribute nodes whose parent is [n]), in document order. *)
let children n =
  let s = n.store in
  let stop = n.pre + s.size.(n.pre) in
  let rec loop pre acc =
    if pre > stop then List.rev acc
    else
      let acc =
        if s.parent.(pre) = n.pre && s.kind.(pre) <> Attr then
          { n with pre } :: acc
        else acc
      in
      (* skip whole subtrees that are not direct children *)
      let pre' =
        if s.parent.(pre) = n.pre then pre + s.size.(pre) + 1 else pre + 1
      in
      loop pre' acc
  in
  loop (n.pre + 1) []

let attributes n =
  let s = n.store in
  let rec loop pre acc =
    if pre < Array.length s.kind && s.kind.(pre) = Attr
       && s.parent.(pre) = n.pre
    then loop (pre + 1) ({ n with pre } :: acc)
    else List.rev acc
  in
  if kind n = Elem then loop (n.pre + 1) [] else []

let descendants n =
  let s = n.store in
  let stop = n.pre + s.size.(n.pre) in
  let rec loop pre acc =
    if pre > stop then List.rev acc
    else
      let acc = if s.kind.(pre) <> Attr then { n with pre } :: acc else acc in
      loop (pre + 1) acc
  in
  loop (n.pre + 1) []

let descendant_or_self n =
  if kind n = Attr then [ n ] else n :: descendants n

let rec ancestors n =
  match parent n with None -> [] | Some p -> p :: ancestors p

let following_siblings n =
  match parent n with
  | None -> []
  | Some p -> List.filter (fun c -> c.pre > n.pre) (children p)

let preceding_siblings n =
  match parent n with
  | None -> []
  | Some p -> List.filter (fun c -> c.pre < n.pre) (children p)

let following n =
  let s = n.store in
  let start = n.pre + s.size.(n.pre) + 1 in
  let rec loop pre acc =
    if pre >= Array.length s.kind then List.rev acc
    else
      let acc = if s.kind.(pre) <> Attr then { n with pre } :: acc else acc in
      loop (pre + 1) acc
  in
  loop start []

let preceding n =
  (* O(log depth) ancestor test instead of List.mem over the ancestor list,
     keeping the axis linear in the scanned prefix even for deep documents *)
  let module IntSet = Set.Make (Int) in
  let ancs = IntSet.of_list (List.map (fun a -> a.pre) (ancestors n)) in
  let rec loop pre acc =
    if pre >= n.pre then List.rev acc
    else
      let acc =
        if n.store.kind.(pre) <> Attr && not (IntSet.mem pre ancs) then
          { n with pre } :: acc
        else acc
      in
      loop (pre + 1) acc
  in
  loop 0 []

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

(** XDM string value of a node. *)
let string_value n =
  let s = n.store in
  match s.kind.(n.pre) with
  | Txt | Comm | Attr -> s.value.(n.pre)
  | Pi -> s.value.(n.pre)
  | Doc | Elem ->
      let buf = Buffer.create 64 in
      let stop = n.pre + s.size.(n.pre) in
      for pre = n.pre to stop do
        if s.kind.(pre) = Txt then Buffer.add_string buf s.value.(pre)
      done;
      Buffer.contents buf

(** Reconstruct the immutable subtree rooted at [n] (used for call-by-value
    marshaling and for applying updates). *)
let rec to_tree n =
  let s = n.store in
  match s.kind.(n.pre) with
  | Txt -> Tree.Text s.value.(n.pre)
  | Comm -> Tree.Comment s.value.(n.pre)
  | Attr ->
      (* An attribute extracted on its own loses its owner; represent it as
         a single-attribute element is wrong, so expose via [attr_tree]. *)
      Tree.Text s.value.(n.pre)
  | Pi ->
      Tree.Pi
        {
          target = (match s.name.(n.pre) with Some q -> q.local | None -> "");
          data = s.value.(n.pre);
        }
  | Doc -> Tree.Document (List.map to_tree (children n))
  | Elem ->
      let nm = match s.name.(n.pre) with Some q -> q | None -> assert false in
      let attrs =
        List.map
          (fun a ->
            {
              Tree.name =
                (match a.store.name.(a.pre) with
                | Some q -> q
                | None -> assert false);
              value = a.store.value.(a.pre);
            })
          (attributes n)
      in
      Tree.Element { name = nm; attrs; children = List.map to_tree (children n) }

(** Attribute node as a [Tree.attr]; raises if [n] is not an attribute. *)
let attr_tree n =
  match (kind n, name n) with
  | Attr, Some q -> { Tree.name = q; value = n.store.value.(n.pre) }
  | _ -> invalid_arg "Store.attr_tree: not an attribute node"
