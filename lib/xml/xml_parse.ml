(** A small, dependency-free XML 1.0 parser.

    Supports elements, attributes, namespaces (with prefix scoping), text,
    CDATA, comments, processing instructions, an XML declaration, DOCTYPE
    skipping, and the five predefined entities plus numeric character
    references.  This is sufficient for SOAP XRPC messages, XQuery module
    sources served as documents, and the XMark-style workload documents. *)

exception Parse_error of string

type state = {
  src : string;
  mutable pos : int;
  lim : int;  (** parse window end: the document is [src.[start .. lim)] *)
  mutable ns_stack : (string * string) list list;
      (** prefix -> uri bindings, innermost scope first *)
  preserve_space : bool;
}

let error st fmt =
  Printf.ksprintf
    (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m st.pos)))
    fmt

let peek st = if st.pos < st.lim then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.lim && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st "expected %S" s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while st.pos < st.lim && is_space st.src.[st.pos] do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_ncname st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> error st "expected name");
  while
    st.pos < st.lim && is_name_char st.src.[st.pos]
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_qname_lexical st =
  let a = read_ncname st in
  if peek st = Some ':' then (
    advance st;
    let b = read_ncname st in
    (a, b))
  else ("", a)

(* Entity and character-reference expansion. *)
let expand_ref st =
  expect st "&";
  if looking_at st "#" then (
    advance st;
    let hex = looking_at st "x" in
    if hex then advance st;
    let start = st.pos in
    while st.pos < st.lim && st.src.[st.pos] <> ';' do
      advance st
    done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string ((if hex then "0x" else "") ^ digits)
      with _ -> error st "bad character reference"
    in
    (* UTF-8 encode *)
    let b = Buffer.create 4 in
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then (
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
    else if code < 0x10000 then (
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
    else (
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))));
    Buffer.contents b)
  else
    let name = read_ncname st in
    expect st ";";
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | e -> error st "unknown entity &%s;" e

let read_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
        advance st;
        q
    | _ -> error st "expected attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' ->
        Buffer.add_string buf (expand_ref st);
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let lookup_ns st prefix =
  let rec find = function
    | [] ->
        if prefix = "" then ""
        else if prefix = "xml" then Qname.ns_xml
        else error st "unbound namespace prefix %S" prefix
    | scope :: rest -> (
        match List.assoc_opt prefix scope with
        | Some uri -> uri
        | None -> find rest)
  in
  find st.ns_stack

let rec skip_misc st =
  skip_space st;
  if looking_at st "<!--" then (
    skip_comment st;
    skip_misc st)
  else if looking_at st "<?" then (
    ignore (read_pi st);
    skip_misc st)
  else if looking_at st "<!DOCTYPE" then (
    skip_doctype st;
    skip_misc st)

and skip_comment st =
  expect st "<!--";
  match
    let rec find i =
      if i + 3 > st.lim then None
      else if String.sub st.src i 3 = "-->" then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | Some i -> st.pos <- i + 3
  | None -> error st "unterminated comment"

and read_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec find i =
    if i + 3 > st.lim then error st "unterminated comment"
    else if String.sub st.src i 3 = "-->" then i
    else find (i + 1)
  in
  let stop = find st.pos in
  st.pos <- stop + 3;
  Tree.Comment (String.sub st.src start (stop - start))

and read_pi st =
  expect st "<?";
  let target = read_ncname st in
  skip_space st;
  let start = st.pos in
  let rec find i =
    if i + 2 > st.lim then error st "unterminated PI"
    else if String.sub st.src i 2 = "?>" then i
    else find (i + 1)
  in
  let stop = find st.pos in
  st.pos <- stop + 2;
  Tree.Pi { target; data = String.sub st.src start (stop - start) }

and skip_doctype st =
  expect st "<!DOCTYPE";
  let depth = ref 1 in
  while !depth > 0 do
    match peek st with
    | None -> error st "unterminated DOCTYPE"
    | Some '<' ->
        incr depth;
        advance st
    | Some '>' ->
        decr depth;
        advance st
    | Some _ -> advance st
  done

let read_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    if looking_at st "<![CDATA[" then (
      st.pos <- st.pos + 9;
      let rec find i =
        if i + 3 > st.lim then error st "unterminated CDATA"
        else if String.sub st.src i 3 = "]]>" then i
        else find (i + 1)
      in
      let stop = find st.pos in
      Buffer.add_string buf (String.sub st.src st.pos (stop - st.pos));
      st.pos <- stop + 3;
      loop ())
    else
      match peek st with
      | None | Some '<' -> ()
      | Some '&' ->
          Buffer.add_string buf (expand_ref st);
          loop ()
      | Some c ->
          advance st;
          Buffer.add_char buf c;
          loop ()
  in
  loop ();
  Buffer.contents buf

let rec read_element st =
  expect st "<";
  let prefix, local = read_qname_lexical st in
  (* First pass over attributes collects namespace declarations. *)
  let raw_attrs = ref [] in
  let ns_decls = ref [] in
  let rec attrs () =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
        let apfx, alocal = read_qname_lexical st in
        skip_space st;
        expect st "=";
        skip_space st;
        let v = read_attr_value st in
        (if apfx = "xmlns" then ns_decls := (alocal, v) :: !ns_decls
         else if apfx = "" && alocal = "xmlns" then
           ns_decls := ("", v) :: !ns_decls
         else raw_attrs := (apfx, alocal, v) :: !raw_attrs);
        attrs ()
    | _ -> ()
  in
  attrs ();
  st.ns_stack <- !ns_decls :: st.ns_stack;
  let name = Qname.make ~prefix ~uri:(lookup_ns st prefix) local in
  let attrs =
    List.rev_map
      (fun (apfx, alocal, v) ->
        let uri = if apfx = "" then "" else lookup_ns st apfx in
        { Tree.name = Qname.make ~prefix:apfx ~uri alocal; value = v })
      !raw_attrs
  in
  skip_space st;
  let node =
    if looking_at st "/>" then (
      expect st "/>";
      Tree.Element { name; attrs; children = [] })
    else (
      expect st ">";
      let children = read_content st in
      expect st "</";
      let cpfx, clocal = read_qname_lexical st in
      if cpfx <> prefix || clocal <> local then
        error st "mismatched end tag </%s:%s>, expected </%s>" cpfx clocal
          (Qname.to_string name);
      skip_space st;
      expect st ">";
      Tree.Element { name; attrs; children })
  in
  st.ns_stack <- List.tl st.ns_stack;
  node

and read_content st =
  let rec loop acc =
    if looking_at st "</" then List.rev acc
    else if looking_at st "<!--" then loop (read_comment st :: acc)
    else if looking_at st "<?" then loop (read_pi st :: acc)
    else if peek st = Some '<' && not (looking_at st "<![CDATA[") then
      loop (read_element st :: acc)
    else if peek st = None then List.rev acc
    else
      let t = read_text st in
      let keep =
        st.preserve_space || String.exists (fun c -> not (is_space c)) t
      in
      if t = "" then loop acc
      else if keep then loop (Tree.Text t :: acc)
      else loop acc
  in
  loop []

(** [document s] parses a complete XML document into a [Tree.Document].
    Ignorable (all-whitespace) text is dropped unless [preserve_space]. *)
let document ?(preserve_space = false) s =
  let st =
    { src = s; pos = 0; lim = String.length s; ns_stack = []; preserve_space }
  in
  if looking_at st "<?xml" then (
    ignore (read_pi st));
  skip_misc st;
  let root = read_element st in
  skip_misc st;
  Tree.Document [ root ]

(** [document_sub s ~pos ~len] parses the document occupying the window
    [s.[pos .. pos+len)] — the streaming hook for servers whose network
    buffer holds the envelope embedded in a larger byte stream: no
    substring is ever materialized. *)
let document_sub ?(preserve_space = false) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Xml_parse.document_sub";
  let st = { src = s; pos; lim = pos + len; ns_stack = []; preserve_space } in
  if looking_at st "<?xml" then (
    ignore (read_pi st));
  skip_misc st;
  let root = read_element st in
  skip_misc st;
  Tree.Document [ root ]

(** [fragment s] parses mixed content (zero or more nodes, no declaration). *)
let fragment ?(preserve_space = true) s =
  let st =
    { src = s; pos = 0; lim = String.length s; ns_stack = []; preserve_space }
  in
  read_content st
