(** XML serialization of {!Tree.t} values.

    Used for SOAP XRPC messages on the wire and for query result output.
    Escaping follows the XML spec; attribute values additionally escape
    quotes.  The serializer guarantees {e namespace well-formedness}: a
    [Qname] carries its resolved URI, and any prefix binding not already
    in scope (either inherited or present as an explicit [xmlns]
    attribute) is re-declared on the element that needs it — the parser
    consumes [xmlns] attributes into scoping information, so this is what
    makes parse → serialize round-trips stable for namespaced documents. *)

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* prefix -> uri bindings in scope, innermost first *)
let lookup env prefix = List.assoc_opt prefix env

let rec write ?(indent = false) ?(depth = 0) ~ns_env buf t =
  let pad () =
    if indent then (
      if depth > 0 || Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' '))
  in
  match t with
  | Tree.Document cs -> List.iter (write ~indent ~depth ~ns_env buf) cs
  | Tree.Text s -> Buffer.add_string buf (escape_text s)
  | Tree.Comment s ->
      pad ();
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  | Tree.Pi { target; data } ->
      pad ();
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if data <> "" then (
        Buffer.add_char buf ' ';
        Buffer.add_string buf data);
      Buffer.add_string buf "?>"
  | Tree.Element { name; attrs; children } ->
      pad ();
      (* bindings declared explicitly as xmlns attributes on this element *)
      let explicit =
        List.filter_map
          (fun (a : Tree.attr) ->
            if a.name.Qname.prefix = "xmlns" then Some (a.name.Qname.local, a.value)
            else if a.name.Qname.prefix = "" && a.name.Qname.local = "xmlns" then
              Some ("", a.value)
            else None)
          attrs
      in
      let env = explicit @ ns_env in
      (* bindings required by the element and attribute names *)
      let needed =
        (name.Qname.prefix, name.Qname.uri)
        :: List.filter_map
             (fun (a : Tree.attr) ->
               if a.name.Qname.prefix <> "" && a.name.Qname.prefix <> "xmlns"
                  && a.name.Qname.uri <> ""
               then Some (a.name.Qname.prefix, a.name.Qname.uri)
               else None)
             attrs
      in
      let missing_env =
        List.fold_left
          (fun (missing, env) (prefix, uri) ->
            if prefix = "xml" || List.mem_assoc prefix missing then (missing, env)
            else
              match (lookup env prefix, uri) with
              | Some bound, uri when bound = uri -> (missing, env)
              | None, "" -> (missing, env)
              | _, uri when prefix = "" && uri = "" ->
                  (* un-bind an inherited default namespace *)
                  (("", "") :: missing, ("", "") :: env)
              | _ -> ((prefix, uri) :: missing, (prefix, uri) :: env)
          )
          ([], env) needed
      in
      let missing = List.rev (fst missing_env) and env = snd missing_env in
      Buffer.add_char buf '<';
      Buffer.add_string buf (Qname.to_string name);
      List.iter
        (fun (prefix, uri) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf
            (if prefix = "" then "xmlns" else "xmlns:" ^ prefix);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attr uri);
          Buffer.add_char buf '"')
        missing;
      List.iter
        (fun (a : Tree.attr) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Qname.to_string a.name);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attr a.value);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let only_text =
          List.for_all (function Tree.Text _ -> true | _ -> false) children
        in
        List.iter
          (write ~indent:(indent && not only_text) ~depth:(depth + 1) ~ns_env:env
             buf)
          children;
        if indent && not only_text then (
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (2 * depth) ' '));
        Buffer.add_string buf "</";
        Buffer.add_string buf (Qname.to_string name);
        Buffer.add_char buf '>'
      end

(** [to_buffer buf t] serializes a tree (no XML declaration) straight
    into [buf] — the streaming hook for servers that serialize responses
    into a reused per-connection output buffer instead of materializing
    an intermediate string. *)
let to_buffer ?(indent = false) buf t =
  write ~indent ~ns_env:[ ("xml", Qname.ns_xml) ] buf t

(** [to_string t] serializes a tree without an XML declaration. *)
let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  to_buffer ~indent buf t;
  Buffer.contents buf

let xml_declaration = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"

(** [document_to_buffer buf t] — {!to_buffer} with the UTF-8 XML
    declaration prepended, the on-the-wire form of SOAP XRPC messages. *)
let document_to_buffer ?(indent = false) buf t =
  Buffer.add_string buf xml_declaration;
  to_buffer ~indent buf t

(** [document_to_string t] prepends the UTF-8 XML declaration, as SOAP XRPC
    messages in the paper do. *)
let document_to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  document_to_buffer ~indent buf t;
  Buffer.contents buf
