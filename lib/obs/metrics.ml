(* Process-wide metrics registry: named counters, gauges and log-bucketed
   latency histograms.

   Design constraints (ISSUE 3):
   - hot paths must pay at most a field increment: callers resolve a handle
     once at module-init time ([counter "x"]) and then mutate record fields,
     never touching the registry hashtable per event;
   - single-domain runtime: plain mutable fields are "lock-free enough".
     Concurrent threads may lose an occasional increment under the OCaml
     runtime lock's preemption; metrics here are operational telemetry, not
     accounting, and the determinism-sensitive tests run single-threaded;
   - exporters render the whole registry as Prometheus-style text (for the
     server's /metrics endpoint) or JSON (for bench output). *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

(* Histogram buckets are logarithmic: bucket [i] covers
   [lo * 2^i, lo * 2^(i+1)) with lo = 1e-3 (so the useful range is 1us..
   ~13 days when observations are in milliseconds). Quantiles are estimated
   as the geometric midpoint of the bucket holding the target rank — a
   standard HDR-style estimate with bounded relative error (<= sqrt 2). *)
let n_buckets = 60

let bucket_lo = 1e-3

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another type")
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another type")
  | None ->
      let g = { g_name = name; value = 0. } in
      Hashtbl.replace registry name (Gauge g);
      g

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another type")
  | None ->
      let h =
        { h_name = name; n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity;
          buckets = Array.make n_buckets 0 }
      in
      Hashtbl.replace registry name (Histogram h);
      h

(* Canonical labeled series name: [with_labels "http.bytes_out"
   [("dest", d)]] -> [http.bytes_out{dest="d"}].  Labels are sorted by key
   and values are escaped (backslash, quote, newline), so the same label
   set always produces the same registry key and /metrics output stays
   diff-able no matter what bytes end up in a destination URI. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let with_labels name labels =
  match labels with
  | [] -> name
  | _ ->
      let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      let body =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      in
      name ^ "{" ^ body ^ "}"

(* Histogram sample suffixes go before the label set: the _count series of
   [lat{dest="y"}] is [lat_count{dest="y"}], not [lat{dest="y"}_count]. *)
let suffixed name suffix =
  match String.index_opt name '{' with
  | Some i ->
      String.sub name 0 i ^ suffix
      ^ String.sub name i (String.length name - i)
  | None -> name ^ suffix

let incr c = c.count <- c.count + 1
let incr_by c d = c.count <- c.count + d
let set g v = g.value <- v
let add g d = g.value <- g.value +. d

let bucket_of v =
  if v <= bucket_lo then 0
  else
    let i = int_of_float (Float.log2 (v /. bucket_lo)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

(* Durations measured on the Simnet virtual clock are frequently exactly 0
   (several actions on one tick) and can come out negative when a test
   rewinds an injected clock; both used to land in bucket 0 but poisoned
   sum/min/max.  Clamp to 0 — a histogram of elapsed times has no business
   recording negative or NaN observations. *)
let observe h v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = h.buckets.(bucket_of v) in
  h.buckets.(bucket_of v) <- b + 1

(* Rank-based quantile estimate: the geometric midpoint of the bucket that
   contains the ceil(q * n)-th observation, clamped to the observed
   min/max so tiny samples stay sensible. *)
let quantile h q =
  if h.n = 0 then nan
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.n))) in
    let acc = ref 0 and found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + h.buckets.(i);
         if !acc >= rank then begin found := i; raise Exit end
       done
     with Exit -> ());
    let lo = bucket_lo *. (2. ** float_of_int !found) in
    let mid = lo *. sqrt 2. in
    Float.min h.max_v (Float.max h.min_v mid)
  end

let mean h = if h.n = 0 then nan else h.sum /. float_of_int h.n

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.
      | Histogram h ->
          h.n <- 0; h.sum <- 0.; h.min_v <- infinity; h.max_v <- neg_infinity;
          Array.fill h.buckets 0 n_buckets 0)
    registry

let sorted_metrics () =
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  List.sort (fun (a, _) (b, _) -> compare a b) all

let fnum v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Prometheus-flavoured plain text: one line per sample; histograms export
   count/sum/mean and the three headline quantiles. *)
let to_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name c.count)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fnum g.value))
      | Histogram h ->
          let s suffix = suffixed name suffix in
          Buffer.add_string buf (Printf.sprintf "%s %d\n" (s "_count") h.n);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" (s "_sum") (fnum h.sum));
          if h.n > 0 then begin
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" (s "_p50") (fnum (quantile h 0.50)));
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" (s "_p95") (fnum (quantile h 0.95)));
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" (s "_p99") (fnum (quantile h 0.99)))
          end)
    (sorted_metrics ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jnum v = if Float.is_nan v then "null" else fnum v

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  let first = ref true in
  List.iter
    (fun (name, m) ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf (Printf.sprintf "\n  \"%s\": " (json_escape name));
      match m with
      | Counter c -> Buffer.add_string buf (string_of_int c.count)
      | Gauge g -> Buffer.add_string buf (jnum g.value)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"max\": %s}"
               h.n (jnum h.sum) (jnum (mean h))
               (jnum (quantile h 0.50)) (jnum (quantile h 0.95))
               (jnum (quantile h 0.99))
               (jnum (if h.n = 0 then nan else h.max_v))))
    (sorted_metrics ());
  Buffer.add_string buf "\n}";
  Buffer.contents buf
