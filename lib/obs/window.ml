(* Sliding-window telemetry series: ring-of-buckets counters, gauges and
   histograms that answer "what is happening *right now*" instead of
   "what has happened since the process started".

   The cumulative {!Metrics} registry (PR 3) accumulates forever, which
   is the right shape for totals but useless for operational questions —
   a p99 polluted by yesterday's cold start, an error counter that can
   only ever grow.  Each windowed series here keeps two tiers of
   fixed-size bucket rings:

   - the {b fast} tier: 60 buckets x 1 s  — "the last minute", the tier
     load shedding and burn-rate alerts read;
   - the {b slow} tier: 60 buckets x 1 m — "the last hour", the tier
     error budgets are accounted against.

   A bucket ring never rotates on a timer thread: every write (and every
   read) computes the absolute bucket index [now / width] and lazily
   resets any slot whose stamped epoch is not the one the index maps to.
   That makes the structure clock-driven and fully deterministic on the
   injectable clock — tests advance the Simnet virtual clock and watch
   samples age out bucket by bucket, bit-for-bit reproducibly.

   Why ring-of-buckets and not a decaying reservoir or t-digest: the ring
   is O(1) amortized per observation with {e zero steady-state
   allocation} (preallocated int/float arrays, no boxing beyond the
   clock read), its error is exactly the bucket width (a sample expires
   at most one bucket-width late), and merging two rings — what the
   federation aggregator does with per-peer snapshots — is plain array
   addition.  A t-digest gives tighter quantiles but allocates centroids
   per observation and merges approximately; for admission control the
   bucket-width error is irrelevant and the allocation is not.

   Clocking: series share {!Trace.now_ms} — the one injectable clock the
   whole obs stack already agrees on.  Binaries run it on the wall
   clock; tests point it at a virtual clock ({!Trace.set_clock}).

   Concurrency: histograms and gauges take a per-series mutex (a
   rotation must never interleave with a write: a half-reset slot would
   corrupt the window, unlike the benign lost increments cumulative
   metrics tolerate).  Uncontended lock/unlock is ~30 ns — measured
   against the serving hot path in bench/telemetry_bench.ml and gated
   below 5%.  Counters take the same lock for the same reason (their
   rotation also zeroes state). *)

module Trace_clock = Trace

let now_ms () = Trace_clock.now_ms ()

type tier = Fast | Slow

let n_slots = 60

(* bucket widths per tier, in ms *)
let width_ms = function Fast -> 1_000. | Slow -> 60_000.
let window_s = function Fast -> 60. | Slow -> 3_600.
let tier_label = function Fast -> "1m" | Slow -> "1h"

(* Global on/off for every windowed write: when off, record paths return
   after one flag test (the bench's "windowed recording off" mode). *)
let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* ------------------------------------------------------------------ *)
(* One tier of one series: the epoch-stamped ring                      *)
(* ------------------------------------------------------------------ *)

(* [epochs.(slot)] holds the absolute bucket index the slot's payload
   belongs to, or -1 when never written.  A slot is live iff its epoch
   lies inside [now_idx - n_slots + 1 .. now_idx]; anything else (older,
   or "future" after a clock rewind) reads as empty and is reset on the
   next write that lands there. *)
type ring = {
  w_ms : float;
  epochs : int array;
  counts : float array;  (* counter: events; histogram: observations *)
  sums : float array;  (* histogram: sum of values; gauge: last value *)
  mins : float array;
  maxs : float array;
  hb : int array;  (* histogram log-buckets, slot-major; [||] otherwise *)
}

let make_ring ?(hist = false) tier =
  {
    w_ms = width_ms tier;
    epochs = Array.make n_slots (-1);
    counts = Array.make n_slots 0.;
    sums = Array.make n_slots 0.;
    mins = Array.make n_slots infinity;
    maxs = Array.make n_slots neg_infinity;
    hb = (if hist then Array.make (n_slots * Metrics.n_buckets) 0 else [||]);
  }

let abs_idx r now = int_of_float (now /. r.w_ms)

(* reset a slot for a new epoch; caller holds the series mutex *)
let claim_slot r idx =
  let slot = idx mod n_slots in
  if r.epochs.(slot) <> idx then begin
    r.epochs.(slot) <- idx;
    r.counts.(slot) <- 0.;
    r.sums.(slot) <- 0.;
    r.mins.(slot) <- infinity;
    r.maxs.(slot) <- neg_infinity;
    if r.hb <> [||] then
      Array.fill r.hb (slot * Metrics.n_buckets) Metrics.n_buckets 0
  end;
  slot

let slot_live r now_idx slot =
  let e = r.epochs.(slot) in
  e >= 0 && e <= now_idx && e > now_idx - n_slots

(* fold over live slots; caller holds the mutex *)
let fold_live r now f acc =
  let now_idx = abs_idx r now in
  let acc = ref acc in
  for slot = 0 to n_slots - 1 do
    if slot_live r now_idx slot then acc := f !acc slot
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Series and registry                                                 *)
(* ------------------------------------------------------------------ *)

type kind = Kcounter | Kgauge | Khistogram

type series = {
  s_name : string;
  kind : kind;
  m : Mutex.t;
  fast : ring;
  slow : ring;
  mutable last : float;  (* gauge: most recent sample *)
}

let registry : (string, series) Hashtbl.t = Hashtbl.create 32
let registry_m = Mutex.create ()

let find_or_add name kind hist =
  Mutex.lock registry_m;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s ->
        if s.kind <> kind then (
          Mutex.unlock registry_m;
          invalid_arg ("Window: " ^ name ^ " registered with another kind"));
        s
    | None ->
        let s =
          {
            s_name = name;
            kind;
            m = Mutex.create ();
            fast = make_ring ~hist Fast;
            slow = make_ring ~hist Slow;
            last = nan;
          }
        in
        Hashtbl.replace registry name s;
        s
  in
  Mutex.unlock registry_m;
  s

type counter = series
type gauge = series
type histogram = series

let counter name : counter = find_or_add name Kcounter false
let gauge name : gauge = find_or_add name Kgauge false
let histogram name : histogram = find_or_add name Khistogram true

let ring_of s = function Fast -> s.fast | Slow -> s.slow

let locked s f =
  Mutex.lock s.m;
  let r = f () in
  Mutex.unlock s.m;
  r

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

let add (c : counter) d =
  if !enabled_flag then begin
    let now = now_ms () in
    Mutex.lock c.m;
    let sf = claim_slot c.fast (abs_idx c.fast now) in
    c.fast.counts.(sf) <- c.fast.counts.(sf) +. d;
    let ss = claim_slot c.slow (abs_idx c.slow now) in
    c.slow.counts.(ss) <- c.slow.counts.(ss) +. d;
    Mutex.unlock c.m
  end

let incr c = add c 1.

let set (g : gauge) v =
  if !enabled_flag then begin
    let now = now_ms () in
    Mutex.lock g.m;
    g.last <- v;
    let update r =
      let slot = claim_slot r (abs_idx r now) in
      r.counts.(slot) <- r.counts.(slot) +. 1.;
      r.sums.(slot) <- v;
      if v < r.mins.(slot) then r.mins.(slot) <- v;
      if v > r.maxs.(slot) then r.maxs.(slot) <- v
    in
    update g.fast;
    update g.slow;
    Mutex.unlock g.m
  end

let observe (h : histogram) v =
  if !enabled_flag then begin
    let v = if Float.is_nan v || v < 0. then 0. else v in
    let b = Metrics.bucket_of v in
    let now = now_ms () in
    Mutex.lock h.m;
    let update r =
      let slot = claim_slot r (abs_idx r now) in
      r.counts.(slot) <- r.counts.(slot) +. 1.;
      r.sums.(slot) <- r.sums.(slot) +. v;
      if v < r.mins.(slot) then r.mins.(slot) <- v;
      if v > r.maxs.(slot) then r.maxs.(slot) <- v;
      r.hb.((slot * Metrics.n_buckets) + b) <-
        r.hb.((slot * Metrics.n_buckets) + b) + 1
    in
    update h.fast;
    update h.slow;
    Mutex.unlock h.m
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let sum_window ?(tier = Fast) (c : counter) =
  let r = ring_of c tier in
  locked c (fun () ->
      fold_live r (now_ms ()) (fun acc slot -> acc +. r.counts.(slot)) 0.)

(** Events per second over the tier's whole window.  The window length is
    the fixed denominator (not "time since first sample"), so a burst
    reads as a burst and an idle window decays toward zero. *)
let rate ?(tier = Fast) (c : counter) = sum_window ~tier c /. window_s tier

let count ?(tier = Fast) (h : histogram) =
  int_of_float (sum_window ~tier h) (* counts ring is shared semantics *)

let hist_rate ?(tier = Fast) h = float_of_int (count ~tier h) /. window_s tier

let sum_values ?(tier = Fast) (h : histogram) =
  let r = ring_of h tier in
  locked h (fun () ->
      fold_live r (now_ms ()) (fun acc slot -> acc +. r.sums.(slot)) 0.)

let mean ?(tier = Fast) h =
  let n = count ~tier h in
  if n = 0 then nan else sum_values ~tier h /. float_of_int n

let window_max ?(tier = Fast) (s : series) =
  let r = ring_of s tier in
  let m =
    locked s (fun () ->
        fold_live r (now_ms ())
          (fun acc slot -> Float.max acc r.maxs.(slot))
          neg_infinity)
  in
  if m = neg_infinity then nan else m

let window_min ?(tier = Fast) (s : series) =
  let r = ring_of s tier in
  let m =
    locked s (fun () ->
        fold_live r (now_ms ())
          (fun acc slot -> Float.min acc r.mins.(slot))
          infinity)
  in
  if m = infinity then nan else m

let last (g : gauge) = g.last

(** Windowed quantile: merge the live slots' log-bucket rows and take the
    geometric midpoint of the bucket holding the target rank, clamped to
    the window's observed min/max — the same estimate (and the same
    bounded relative error) as the cumulative {!Metrics.quantile}, over
    only the samples still inside the window. *)
let quantile ?(tier = Fast) (h : histogram) q =
  let r = ring_of h tier in
  locked h (fun () ->
      let now = now_ms () in
      let now_idx = abs_idx r now in
      let total = ref 0 in
      let merged = Array.make Metrics.n_buckets 0 in
      let vmin = ref infinity and vmax = ref neg_infinity in
      for slot = 0 to n_slots - 1 do
        if slot_live r now_idx slot then begin
          total := !total + int_of_float r.counts.(slot);
          if r.mins.(slot) < !vmin then vmin := r.mins.(slot);
          if r.maxs.(slot) > !vmax then vmax := r.maxs.(slot);
          let base = slot * Metrics.n_buckets in
          for b = 0 to Metrics.n_buckets - 1 do
            merged.(b) <- merged.(b) + r.hb.(base + b)
          done
        end
      done;
      if !total = 0 then nan
      else begin
        let rank = max 1 (int_of_float (ceil (q *. float_of_int !total))) in
        let acc = ref 0 and found = ref (Metrics.n_buckets - 1) in
        (try
           for b = 0 to Metrics.n_buckets - 1 do
             acc := !acc + merged.(b);
             if !acc >= rank then begin
               found := b;
               raise Exit
             end
           done
         with Exit -> ());
        let lo = Metrics.bucket_lo *. (2. ** float_of_int !found) in
        Float.min !vmax (Float.max !vmin (lo *. sqrt 2.))
      end)

(* ------------------------------------------------------------------ *)
(* Maintenance and export                                              *)
(* ------------------------------------------------------------------ *)

let reset () =
  Mutex.lock registry_m;
  Hashtbl.iter
    (fun _ s ->
      Mutex.lock s.m;
      List.iter
        (fun r ->
          Array.fill r.epochs 0 n_slots (-1);
          Array.fill r.counts 0 n_slots 0.;
          Array.fill r.sums 0 n_slots 0.;
          Array.fill r.mins 0 n_slots infinity;
          Array.fill r.maxs 0 n_slots neg_infinity;
          if r.hb <> [||] then Array.fill r.hb 0 (Array.length r.hb) 0)
        [ s.fast; s.slow ];
      s.last <- nan;
      Mutex.unlock s.m)
    registry;
  Mutex.unlock registry_m

let sorted_series () =
  Mutex.lock registry_m;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) registry [] in
  Mutex.unlock registry_m;
  List.sort (fun a b -> compare a.s_name b.s_name) all

(** The windowed half of the metrics surface: one block per series with
    [_1m]/[_1h]-suffixed samples, appended to {!Metrics.to_text} by the
    [/metrics] route and the shell's [:metrics]. *)
let to_text () =
  let buf = Buffer.create 1024 in
  let line name suffix v =
    if not (Float.is_nan v) then
      Buffer.add_string buf
        (Printf.sprintf "%s_%s %s\n" name suffix (Metrics.fnum v))
  in
  List.iter
    (fun s ->
      match s.kind with
      | Kcounter ->
          List.iter
            (fun t ->
              let l = tier_label t in
              line s.s_name (l ^ "_total") (sum_window ~tier:t s);
              line s.s_name (l ^ "_rate") (rate ~tier:t s))
            [ Fast; Slow ]
      | Kgauge ->
          line s.s_name "last" s.last;
          line s.s_name "1m_max" (window_max ~tier:Fast s)
      | Khistogram ->
          List.iter
            (fun t ->
              let l = tier_label t in
              line s.s_name (l ^ "_count") (float_of_int (count ~tier:t s));
              line s.s_name (l ^ "_rate") (hist_rate ~tier:t s);
              line s.s_name (l ^ "_p50") (quantile ~tier:t s 0.50);
              line s.s_name (l ^ "_p95") (quantile ~tier:t s 0.95);
              line s.s_name (l ^ "_p99") (quantile ~tier:t s 0.99);
              line s.s_name (l ^ "_max") (window_max ~tier:t s))
            [ Fast; Slow ])
    (sorted_series ());
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  let first = ref true in
  let j v = Metrics.jnum v in
  List.iter
    (fun s ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "\n  \"%s\": " (Metrics.json_escape s.s_name));
      match s.kind with
      | Kcounter ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"total_1m\": %s, \"rate_1m\": %s, \"total_1h\": %s, \
                \"rate_1h\": %s}"
               (j (sum_window ~tier:Fast s))
               (j (rate ~tier:Fast s))
               (j (sum_window ~tier:Slow s))
               (j (rate ~tier:Slow s)))
      | Kgauge ->
          Buffer.add_string buf
            (Printf.sprintf "{\"last\": %s, \"max_1m\": %s}" (j s.last)
               (j (window_max ~tier:Fast s)))
      | Khistogram ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count_1m\": %d, \"rate_1m\": %s, \"p50_1m\": %s, \
                \"p95_1m\": %s, \"p99_1m\": %s, \"max_1m\": %s, \
                \"count_1h\": %d, \"p99_1h\": %s}"
               (count ~tier:Fast s)
               (j (hist_rate ~tier:Fast s))
               (j (quantile ~tier:Fast s 0.50))
               (j (quantile ~tier:Fast s 0.95))
               (j (quantile ~tier:Fast s 0.99))
               (j (window_max ~tier:Fast s))
               (count ~tier:Slow s)
               (j (quantile ~tier:Slow s 0.99))))
    (sorted_series ());
  Buffer.add_string buf "\n}";
  Buffer.contents buf

(** Cumulative registry then the windowed series: the full [/metrics]
    body. *)
let export_text () = Metrics.to_text () ^ to_text ()
