(* Distributed tracing: per-query trace IDs and nested spans.

   The model is deliberately small:
   - a span has a trace id, its own id, an optional parent id, a name, a
     detail string, start/end timestamps and a list of point events;
   - span ids are drawn from a process-local counter (optionally prefixed
     with a process tag for multi-process deployments), so a replayed
     deterministic schedule — Simnet virtual clock + seeded faults —
     yields bit-identical trees;
   - the clock is injectable ([set_clock]); tests and benches point it at
     the Simnet virtual clock, binaries use the wall clock;
   - the ambient "current span" is tracked per thread (Http fan-out runs
     one thread per destination), so nested [with_span] calls on any
     thread build a well-formed tree;
   - context crosses peers as a (trace-id, parent-span) pair carried in
     the SOAP envelope header (see Soap.Message / protocol/XRPC.xsd);
     [propagation] reads the pair to stamp outgoing requests and
     [with_remote_parent] adopts it on the serving side.

   When tracing is disabled (the default) every entry point returns after
   a single flag test — the instrumented hot paths stay at ~0%% cost. *)

type event = { e_name : string; e_detail : string; e_at : float }

type span = {
  trace_id : string;
  span_id : string;
  parent : string option;
  name : string;
  detail : string;
  start_ms : float;
  mutable end_ms : float; (* nan while the span is still open *)
  mutable events : event list; (* newest first *)
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let wall_clock_ms () = Unix.gettimeofday () *. 1000.

let clock = ref wall_clock_ms
let set_clock f = clock := f
let use_wall_clock () = clock := wall_clock_ms
let now_ms () = !clock ()

(* Deterministic ids. [process_tag] disambiguates ids across OS processes
   (e.g. two xrpc_server instances); in-process it stays "" so replays of
   a seeded schedule mint identical ids.  Id minting and span recording
   share one mutex: the dispatch executor runs spans on pool threads, and
   two threads must never mint the same id or lose a recorded span. *)
let state_mutex = Mutex.create ()

let locked f =
  Mutex.lock state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mutex) f

let process_tag = ref ""
let set_process_tag t = process_tag := t
let next_trace = ref 0
let next_span = ref 0

let fresh_trace_id () =
  locked @@ fun () ->
  incr next_trace;
  Printf.sprintf "%st%d" !process_tag !next_trace

let fresh_span_id_locked () =
  incr next_span;
  Printf.sprintf "%ss%d" !process_tag !next_span

(* Finished + in-flight spans, recorded at start in creation order. The
   buffer is bounded: past [capacity] new spans are counted as dropped but
   stack discipline (and so parentage of later spans) is preserved. *)
let capacity = ref 50_000
let set_capacity n = capacity := n
let recorded : span list ref = ref [] (* newest first *)
let recorded_n = ref 0
let dropped = ref 0

(* Per-thread stack of open spans. *)
let stacks : (int, span list ref) Hashtbl.t = Hashtbl.create 8
let stacks_mutex = Mutex.create ()

let my_stack () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock stacks_mutex;
  let st =
    match Hashtbl.find_opt stacks id with
    | Some st -> st
    | None ->
        let st = ref [] in
        Hashtbl.replace stacks id st;
        st
  in
  Mutex.unlock stacks_mutex;
  st

let current () = match !(my_stack ()) with [] -> None | s :: _ -> Some s

let reset () =
  locked (fun () ->
      recorded := [];
      recorded_n := 0;
      dropped := 0;
      next_trace := 0;
      next_span := 0);
  Mutex.lock stacks_mutex;
  Hashtbl.reset stacks;
  Mutex.unlock stacks_mutex

let record_locked span =
  if !recorded_n >= !capacity then incr dropped
  else begin
    recorded := span :: !recorded;
    incr recorded_n
  end

let start_span ?(detail = "") ~trace_id ~parent name =
  let s =
    locked (fun () ->
        let s =
          { trace_id; span_id = fresh_span_id_locked (); parent; name; detail;
            start_ms = now_ms (); end_ms = nan; events = [] }
        in
        record_locked s;
        s)
  in
  let st = my_stack () in
  st := s :: !st;
  s

let finish_span s =
  s.end_ms <- now_ms ();
  let st = my_stack () in
  match !st with
  | top :: rest when top == s -> st := rest
  | _ -> (* unbalanced finish; drop down to (and including) s if present *)
      st := (match List.find_index (( == ) s) !st with
             | Some i -> List.filteri (fun j _ -> j > i) !st
             | None -> !st)

let with_span ?detail name f =
  if not !enabled_flag then f ()
  else begin
    let trace_id, parent =
      match current () with
      | Some p -> (p.trace_id, Some p.span_id)
      | None -> (fresh_trace_id (), None)
    in
    let s = start_span ?detail ~trace_id ~parent name in
    Fun.protect ~finally:(fun () -> finish_span s) f
  end

(* Server-side adoption of a propagated context: roots a local span under
   the remote parent, keeping the remote trace id. *)
let with_remote_parent ?detail ~trace_id ~parent name f =
  if not !enabled_flag then f ()
  else begin
    let s = start_span ?detail ~trace_id ~parent:(Some parent) name in
    Fun.protect ~finally:(fun () -> finish_span s) f
  end

(* Run [f] with [span] installed as this thread's ambient current span.
   The span is NOT re-recorded and NOT finished here — it belongs to the
   thread that started it.  The dispatch executor uses this to carry the
   submitting thread's open span onto a pool thread, so spans opened by
   the shipped work keep their logical parent instead of becoming roots
   of orphan traces. *)
let with_ambient span f =
  if not !enabled_flag then f ()
  else begin
    let st = my_stack () in
    st := span :: !st;
    Fun.protect
      ~finally:(fun () ->
        match !st with s :: rest when s == span -> st := rest | _ -> ())
      f
  end

let event ?(detail = "") name =
  if !enabled_flag then
    match current () with
    | None -> ()
    | Some s -> s.events <- { e_name = name; e_detail = detail; e_at = now_ms () } :: s.events

(* Outgoing context: what to stamp into the SOAP header. *)
let propagation () =
  if not !enabled_flag then None
  else match current () with Some s -> Some (s.trace_id, s.span_id) | None -> None

let spans () = List.rev !recorded (* creation order *)

(* Mark/since: capture the spans created during one request without
   copying the buffer.  [mark] snapshots the recorded count; [since m]
   returns the spans recorded after that point, in creation order.  The
   flight recorder uses the pair to attach each request's span slice to
   its ring entry. *)
let mark () = locked (fun () -> !recorded_n)

let since m =
  let all, n = locked (fun () -> (!recorded, !recorded_n)) in
  if n <= m then []
  else
    (* [all] is newest first: the spans since the mark are its first
       [n - m] elements. *)
    let rec take k acc = function
      | s :: rest when k > 0 -> take (k - 1) (s :: acc) rest
      | _ -> acc
    in
    take (n - m) [] all

let dropped_count () = !dropped

let open_count () =
  List.length (List.filter (fun s -> Float.is_nan s.end_ms) !recorded)

let duration_ms s = if Float.is_nan s.end_ms then nan else s.end_ms -. s.start_ms

(* ------------------------------------------------------------------ *)
(* Tree reconstruction and rendering                                   *)
(* ------------------------------------------------------------------ *)

(* Children of each span id, in creation order; roots are spans whose
   parent is absent from the recorded set (covers both true roots and
   remote parents living in another process's collector). *)
let tree_of all =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.span_id s) all;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      match s.parent with
      | Some p when Hashtbl.mem by_id p ->
          let l = try Hashtbl.find children p with Not_found -> [] in
          Hashtbl.replace children p (s :: l)
      | _ -> roots := s :: !roots)
    all;
  let kids id = List.rev (try Hashtbl.find children id with Not_found -> []) in
  (List.rev !roots, kids)

let render () =
  let all = spans () in
  let roots, kids = tree_of all in
  let buf = Buffer.create 1024 in
  let rec pr indent s =
    let dur = duration_ms s in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s  %s  [%s/%s]\n" indent s.name
         (if s.detail = "" then "" else " (" ^ s.detail ^ ")")
         (if Float.is_nan dur then "OPEN" else Printf.sprintf "%.3f ms" dur)
         s.trace_id s.span_id);
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "%s  * %s%s @%.3f\n" indent e.e_name
             (if e.e_detail = "" then "" else " " ^ e.e_detail)
             (e.e_at -. s.start_ms)))
      (List.rev s.events);
    List.iter (pr (indent ^ "  ")) (kids s.span_id)
  in
  List.iter (pr "") roots;
  if !dropped > 0 then
    Buffer.add_string buf (Printf.sprintf "(%d spans dropped: buffer full)\n" !dropped);
  Buffer.contents buf

(* Structure-only rendering — span names, nesting and event names, but no
   timestamps or durations. Two runs of the same seeded schedule must
   produce equal signatures (replay determinism extended to traces). *)
let signature_of all =
  let roots, kids = tree_of all in
  let buf = Buffer.create 512 in
  let rec pr s =
    Buffer.add_string buf s.name;
    let evs = List.rev_map (fun e -> e.e_name) s.events in
    if evs <> [] then Buffer.add_string buf ("!" ^ String.concat "!" evs);
    let cs = kids s.span_id in
    if cs <> [] then begin
      Buffer.add_char buf '(';
      List.iteri (fun i c -> if i > 0 then Buffer.add_char buf ','; pr c) cs;
      Buffer.add_char buf ')'
    end
  in
  List.iteri (fun i r -> if i > 0 then Buffer.add_char buf ';'; pr r) roots;
  Buffer.contents buf

let signature () = signature_of (spans ())

(* Aggregate per-phase totals: (name, count, total inclusive ms), sorted by
   total descending — the paper's Table-2-style cost breakdown. *)
let phase_summary_of all =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let d = duration_ms s in
      if not (Float.is_nan d) then
        let n, t = try Hashtbl.find tbl s.name with Not_found -> (0, 0.) in
        Hashtbl.replace tbl s.name (n + 1, t +. d))
    all;
  Hashtbl.fold (fun name (n, t) acc -> (name, n, t) :: acc) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let phase_summary () = phase_summary_of (spans ())
