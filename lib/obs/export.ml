(* Exporters for collected span trees.

   [chrome_trace spans] renders any span slice as Chrome trace-event JSON
   (the chrome://tracing / Perfetto "JSON Array Format"): one complete
   ("ph":"X") event per finished span with microsecond timestamps, one
   instant ("ph":"i") event per span event, and the span/parent ids in
   "args" so a consumer can rebuild the exact tree.  Open spans are
   emitted with zero duration and "open":true.

   [span_tree_json spans] is the compact structural export: the nested
   tree with names, details, timings and events — what /tracez serves
   next to the Chrome format. *)

let jstr s = "\"" ^ Metrics.json_escape s ^ "\""
let us_of_ms ms = ms *. 1000. (* trace-event timestamps are microseconds *)
let jnum v = if Float.is_nan v then "0" else Printf.sprintf "%.6g" v

let chrome_event buf ~first (s : Trace.span) =
  let is_open = Float.is_nan s.Trace.end_ms in
  let dur = if is_open then 0. else s.Trace.end_ms -. s.Trace.start_ms in
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":%s,\"cat\":\"xrpc\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":{\"span\":%s%s,\"trace\":%s%s%s}}"
       (jstr s.Trace.name)
       (jnum (us_of_ms s.Trace.start_ms))
       (jnum (us_of_ms dur))
       (jstr s.Trace.span_id)
       (match s.Trace.parent with
       | Some p -> ",\"parent\":" ^ jstr p
       | None -> "")
       (jstr s.Trace.trace_id)
       (if s.Trace.detail = "" then "" else ",\"detail\":" ^ jstr s.Trace.detail)
       (if is_open then ",\"open\":true" else ""));
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"cat\":\"xrpc\",\"ph\":\"i\",\"ts\":%s,\"s\":\"t\",\"pid\":1,\"tid\":1,\"args\":{\"span\":%s%s}}"
           (jstr e.Trace.e_name)
           (jnum (us_of_ms e.Trace.e_at))
           (jstr s.Trace.span_id)
           (if e.Trace.e_detail = "" then ""
            else ",\"detail\":" ^ jstr e.Trace.e_detail)))
    (List.rev s.Trace.events)

let chrome_trace spans =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  List.iter (chrome_event buf ~first) spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let span_tree_json spans =
  let roots, kids = Trace.tree_of spans in
  let rec node_json (s : Trace.span) =
    let dur = Trace.duration_ms s in
    Printf.sprintf
      "{\"name\":%s%s,\"span\":%s%s,\"start_ms\":%s,\"dur_ms\":%s%s,\"children\":[%s]}"
      (jstr s.Trace.name)
      (if s.Trace.detail = "" then "" else ",\"detail\":" ^ jstr s.Trace.detail)
      (jstr s.Trace.span_id)
      (match s.Trace.parent with
      | Some p -> ",\"parent\":" ^ jstr p
      | None -> "")
      (jnum s.Trace.start_ms)
      (if Float.is_nan dur then "null" else jnum dur)
      (if s.Trace.events = [] then ""
       else
         ",\"events\":["
         ^ String.concat ","
             (List.map
                (fun (e : Trace.event) ->
                  Printf.sprintf "{\"name\":%s%s,\"at_ms\":%s}"
                    (jstr e.Trace.e_name)
                    (if e.Trace.e_detail = "" then ""
                     else ",\"detail\":" ^ jstr e.Trace.e_detail)
                    (jnum e.Trace.e_at))
                (List.rev s.Trace.events))
         ^ "]")
      (String.concat "," (List.map node_json (kids s.Trace.span_id)))
  in
  "{\"spans\":[" ^ String.concat "," (List.map node_json roots) ^ "]}"
