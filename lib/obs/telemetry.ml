(* Federation telemetry: one peer's windowed health as a portable
   snapshot, and the merge of many snapshots into the cluster view.

   The scrape path is ordinary XRPC — the coordinator calls the built-in
   [telemetry] function (namespace {!ns_xrpc}, like [getDocument]) on
   every peer in parallel and each peer answers with its snapshot
   serialized by {!to_wire}.  Using the RPC plane for its own telemetry
   is deliberate: the scrape exercises the same transport, executor and
   breaker the queries do, so "the scrape fails" is itself a health
   signal (the merge turns a failed leg into an [unreachable] pseudo-
   snapshot instead of dropping the peer from the view).

   Wire format: tab-separated lines, one record per line, first field is
   the record tag.  This layer (lib/obs) sits below the XML stack and
   owns no parser, and TSV round-trips with [String.split_on_char] —
   values are sanitized so tag/field positions cannot be forged.

   Sources: the runtime registers closures (shard-map version, breaker
   states, extra gauges) per scope; snapshot assembly pulls from {!Slo}
   plus these.  Scope is the peer URI, same convention as {!Slo}. *)

type endpoint_stat = {
  ep_name : string;
  ep_rate : float;
  ep_err_rate : float;
  ep_p50 : float;
  ep_p95 : float;
  ep_p99 : float;
  ep_reqs_1m : float;
}

type snapshot = {
  sn_peer : string;
  sn_at_ms : float;
  sn_state : string;  (* ready | degraded | unready | unreachable *)
  sn_reasons : string list;
  sn_gauges : (string * float) list;
  sn_endpoints : endpoint_stat list;
  sn_shard_version : int option;
  sn_breakers : (string * string) list;  (* dest -> closed/open/half_open *)
}

(* -- sources ------------------------------------------------------- *)

let gauge_sources : (string, unit -> (string * float) list) Hashtbl.t =
  Hashtbl.create 8

let shard_sources : (string, unit -> int option) Hashtbl.t = Hashtbl.create 8

let breaker_sources : (string, unit -> (string * string) list) Hashtbl.t =
  Hashtbl.create 8

let m = Mutex.create ()

let with_m f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r

let register_gauges ~scope f = with_m (fun () -> Hashtbl.replace gauge_sources scope f)
let register_shard_version ~scope f =
  with_m (fun () -> Hashtbl.replace shard_sources scope f)
let register_breakers ~scope f =
  with_m (fun () -> Hashtbl.replace breaker_sources scope f)

let reset_sources () =
  with_m (fun () ->
      Hashtbl.reset gauge_sources;
      Hashtbl.reset shard_sources;
      Hashtbl.reset breaker_sources)

let pull tbl scope =
  (* scope-local source plus the process-global "" one *)
  let get s = with_m (fun () -> Hashtbl.find_opt tbl s) in
  let run = function
    | Some f -> ( try f () with _ -> [])
    | None -> []
  in
  run (get scope) @ if scope = "" then [] else run (get "")

(** Assemble this process's snapshot for one peer scope. *)
let local_snapshot ~peer () =
  let scope = peer in
  let st, reasons = Slo.evaluate ~scope () in
  let eps =
    List.map
      (fun (h : Slo.endpoint_health) ->
        {
          ep_name = h.Slo.h_endpoint;
          ep_rate = h.Slo.h_rate;
          ep_err_rate = h.Slo.h_err_rate;
          ep_p50 = h.Slo.h_p50;
          ep_p95 = h.Slo.h_p95;
          ep_p99 = h.Slo.h_p99;
          ep_reqs_1m = h.Slo.h_reqs_1m;
        })
      (Slo.endpoints ~scope ())
  in
  let shard_version =
    match with_m (fun () -> Hashtbl.find_opt shard_sources scope) with
    | Some f -> ( try f () with _ -> None)
    | None -> None
  in
  {
    sn_peer = peer;
    sn_at_ms = Trace.now_ms ();
    sn_state = Slo.state_label st;
    sn_reasons = reasons;
    sn_gauges = pull gauge_sources scope;
    sn_endpoints = eps;
    sn_shard_version = shard_version;
    sn_breakers = pull breaker_sources scope;
  }

let unreachable ~peer ~at_ms ~reason =
  {
    sn_peer = peer;
    sn_at_ms = at_ms;
    sn_state = "unreachable";
    sn_reasons = [ reason ];
    sn_gauges = [];
    sn_endpoints = [];
    sn_shard_version = None;
    sn_breakers = [];
  }

(* -- wire ---------------------------------------------------------- *)

let clean s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let f2s v = if Float.is_nan v then "nan" else Printf.sprintf "%.6g" v
let s2f s = try float_of_string s with _ -> nan

let to_wire sn =
  let buf = Buffer.create 512 in
  let line parts =
    Buffer.add_string buf (String.concat "\t" (List.map clean parts));
    Buffer.add_char buf '\n'
  in
  line [ "peer"; sn.sn_peer ];
  line [ "at"; f2s sn.sn_at_ms ];
  line [ "state"; sn.sn_state ];
  List.iter (fun r -> line [ "reason"; r ]) sn.sn_reasons;
  List.iter (fun (n, v) -> line [ "gauge"; n; f2s v ]) sn.sn_gauges;
  (match sn.sn_shard_version with
  | Some v -> line [ "shardv"; string_of_int v ]
  | None -> ());
  List.iter (fun (d, s) -> line [ "breaker"; d; s ]) sn.sn_breakers;
  List.iter
    (fun e ->
      line
        [
          "ep"; e.ep_name; f2s e.ep_rate; f2s e.ep_err_rate; f2s e.ep_p50;
          f2s e.ep_p95; f2s e.ep_p99; f2s e.ep_reqs_1m;
        ])
    sn.sn_endpoints;
  Buffer.contents buf

let of_wire s =
  let sn =
    ref
      {
        sn_peer = "?";
        sn_at_ms = nan;
        sn_state = "unreachable";
        sn_reasons = [];
        sn_gauges = [];
        sn_endpoints = [];
        sn_shard_version = None;
        sn_breakers = [];
      }
  in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ "peer"; p ] -> sn := { !sn with sn_peer = p }
      | [ "at"; v ] -> sn := { !sn with sn_at_ms = s2f v }
      | [ "state"; st ] -> sn := { !sn with sn_state = st }
      | [ "reason"; r ] -> sn := { !sn with sn_reasons = !sn.sn_reasons @ [ r ] }
      | [ "gauge"; n; v ] ->
          sn := { !sn with sn_gauges = !sn.sn_gauges @ [ (n, s2f v) ] }
      | [ "shardv"; v ] ->
          sn := { !sn with sn_shard_version = int_of_string_opt v }
      | [ "breaker"; d; st ] ->
          sn := { !sn with sn_breakers = !sn.sn_breakers @ [ (d, st) ] }
      | [ "ep"; name; rate; err; p50; p95; p99; r1m ] ->
          let e =
            {
              ep_name = name;
              ep_rate = s2f rate;
              ep_err_rate = s2f err;
              ep_p50 = s2f p50;
              ep_p95 = s2f p95;
              ep_p99 = s2f p99;
              ep_reqs_1m = s2f r1m;
            }
          in
          sn := { !sn with sn_endpoints = !sn.sn_endpoints @ [ e ] }
      | _ -> ())
    (String.split_on_char '\n' s);
  !sn

(* -- merge --------------------------------------------------------- *)

type cluster_view = {
  cv_at_ms : float;
  cv_peers : snapshot list;
  cv_total_rate : float;
  cv_err_rate : float;  (* cluster-wide error fraction over 1m *)
  cv_hot : (string * string * float) list;  (* peer, endpoint, req/s *)
  cv_shard_versions : (string * int) list;
  cv_shard_agree : bool;  (* all reported versions equal *)
  cv_state : string;  (* worst peer state *)
}

let state_rank = function
  | "ready" -> 0
  | "degraded" -> 1
  | "unready" -> 2
  | _ -> 3 (* unreachable *)

let merge ~at_ms snapshots =
  let peers =
    List.sort (fun a b -> compare a.sn_peer b.sn_peer) snapshots
  in
  let total_rate =
    List.fold_left
      (fun acc sn ->
        List.fold_left (fun a e -> a +. e.ep_rate) acc sn.sn_endpoints)
      0. peers
  in
  let reqs, errs =
    List.fold_left
      (fun acc sn ->
        List.fold_left
          (fun (r, e) ep ->
            (r +. ep.ep_reqs_1m, e +. (ep.ep_err_rate *. ep.ep_reqs_1m)))
          acc sn.sn_endpoints)
      (0., 0.) peers
  in
  let hot =
    List.concat_map
      (fun sn ->
        List.map (fun e -> (sn.sn_peer, e.ep_name, e.ep_rate)) sn.sn_endpoints)
      peers
    |> List.filter (fun (_, _, r) -> r > 0.)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    |> fun l -> List.filteri (fun i _ -> i < 10) l
  in
  let versions =
    List.filter_map
      (fun sn ->
        Option.map (fun v -> (sn.sn_peer, v)) sn.sn_shard_version)
      peers
  in
  let agree =
    match versions with
    | [] -> true
    | (_, v0) :: rest -> List.for_all (fun (_, v) -> v = v0) rest
  in
  let worst =
    List.fold_left
      (fun acc sn -> if state_rank sn.sn_state > state_rank acc then sn.sn_state else acc)
      "ready" peers
  in
  {
    cv_at_ms = at_ms;
    cv_peers = peers;
    cv_total_rate = total_rate;
    cv_err_rate = (if reqs > 0. then errs /. reqs else 0.);
    cv_hot = hot;
    cv_shard_versions = versions;
    cv_shard_agree = agree;
    cv_state = worst;
  }

(* -- rendering ----------------------------------------------------- *)

let cluster_text cv =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "cluster: %s  peers %d  %.1f req/s  err %.2f%%\n"
       cv.cv_state (List.length cv.cv_peers) cv.cv_total_rate
       (cv.cv_err_rate *. 100.));
  if cv.cv_shard_versions <> [] then
    Buffer.add_string buf
      (Printf.sprintf "shard map: %s (%s)\n"
         (if cv.cv_shard_agree then "agreed" else "DISAGREE")
         (String.concat ", "
            (List.map
               (fun (p, v) -> Printf.sprintf "%s=v%d" p v)
               cv.cv_shard_versions)));
  List.iter
    (fun sn ->
      let p99s =
        List.filter_map
          (fun e -> if Float.is_nan e.ep_p99 then None else Some e.ep_p99)
          sn.sn_endpoints
      in
      let p99_max = List.fold_left Float.max neg_infinity p99s in
      Buffer.add_string buf
        (Printf.sprintf "peer %-32s %-11s %s%s%s\n" sn.sn_peer sn.sn_state
           (if p99_max = neg_infinity then "p99 -"
            else Printf.sprintf "p99 %.1fms" p99_max)
           (match sn.sn_breakers with
           | [] -> ""
           | bs ->
               "  breakers "
               ^ String.concat ","
                   (List.map (fun (d, s) -> d ^ ":" ^ s) bs))
           (match sn.sn_reasons with
           | [] -> ""
           | r :: _ -> "  (" ^ r ^ ")"))
      )
    cv.cv_peers;
  if cv.cv_hot <> [] then begin
    Buffer.add_string buf "hot endpoints:\n";
    List.iter
      (fun (p, e, r) ->
        Buffer.add_string buf
          (Printf.sprintf "  %6.1f req/s  %s %s\n" r p e))
      cv.cv_hot
  end;
  Buffer.contents buf

let jstr s = "\"" ^ Metrics.json_escape s ^ "\""

let endpoint_json e =
  Printf.sprintf
    "{\"endpoint\": %s, \"rate\": %s, \"err_rate\": %s, \"p50_ms\": %s, \
     \"p95_ms\": %s, \"p99_ms\": %s, \"reqs_1m\": %s}"
    (jstr e.ep_name) (Metrics.jnum e.ep_rate)
    (Metrics.jnum e.ep_err_rate) (Metrics.jnum e.ep_p50)
    (Metrics.jnum e.ep_p95) (Metrics.jnum e.ep_p99)
    (Metrics.jnum e.ep_reqs_1m)

let snapshot_json sn =
  Printf.sprintf
    "{\"peer\": %s, \"at_ms\": %s, \"state\": %s, \"reasons\": [%s], \
     \"shard_version\": %s, \"breakers\": {%s}, \"gauges\": {%s}, \
     \"endpoints\": [%s]}"
    (jstr sn.sn_peer) (Metrics.jnum sn.sn_at_ms) (jstr sn.sn_state)
    (String.concat ", " (List.map jstr sn.sn_reasons))
    (match sn.sn_shard_version with
    | Some v -> string_of_int v
    | None -> "null")
    (String.concat ", "
       (List.map (fun (d, s) -> jstr d ^ ": " ^ jstr s) sn.sn_breakers))
    (String.concat ", "
       (List.map
          (fun (n, v) -> jstr n ^ ": " ^ Metrics.jnum v)
          sn.sn_gauges))
    (String.concat ", " (List.map endpoint_json sn.sn_endpoints))

let cluster_json cv =
  Printf.sprintf
    "{\n  \"at_ms\": %s,\n  \"state\": %s,\n  \"total_rate\": %s,\n  \
     \"err_rate\": %s,\n  \"shard_agree\": %b,\n  \"hot\": [%s],\n  \
     \"peers\": [\n    %s\n  ]\n}"
    (Metrics.jnum cv.cv_at_ms) (jstr cv.cv_state)
    (Metrics.jnum cv.cv_total_rate)
    (Metrics.jnum cv.cv_err_rate) cv.cv_shard_agree
    (String.concat ", "
       (List.map
          (fun (p, e, r) ->
            Printf.sprintf "{\"peer\": %s, \"endpoint\": %s, \"rate\": %s}"
              (jstr p) (jstr e) (Metrics.jnum r))
          cv.cv_hot))
    (String.concat ",\n    " (List.map snapshot_json cv.cv_peers))
