(* Per-endpoint service-level objectives over the sliding windows.

   An objective says what "healthy" means for one endpoint — a latency
   bound (p99 <= 100 ms by default) and an error-rate bound (<= 1%).
   Against it we track, on the {!Window} tiers:

   - the {b error budget}: over the slow (1 h) tier, the fraction of the
     allowed errors not yet spent.  budget = 1 - errs/(max_error_rate *
     reqs).  Budget 0 means the endpoint has already failed more callers
     this hour than the objective permits — readiness drops until the
     bad minutes age out of the window (a rolling budget, not a
     calendar-month one: it replenishes by decay, no reset step).
   - the {b burn rate}: the same ratio over the fast (1 m) tier.  Burn
     1.0 = spending exactly the budget; a burn of 10 exhausts an hour's
     budget in six minutes.  Burn is the leading indicator (alerts, and
     later: load shedding), budget the lagging one (readiness).

   Scoping: every record is keyed by [(scope, endpoint)].  The scope is
   the peer URI — necessary because Simnet runs a whole federation in
   one process against process-global registries, and peer x's faults
   must not burn peer y's budget.  Single-peer binaries use their own
   URI; [~scope:""] aggregates nothing and belongs to process-wide
   probes only.

   Readiness also consults registered {b probes} — closures the runtime
   hooks in for conditions no request counter can see from inside
   (executor queue saturated, circuit breaker open to a dependency).
   [/healthz] reports liveness (the process answers) plus readiness with
   the structured reasons, so an LB or operator sees *why*, not just
   503. *)

type objective = { p99_ms : float; max_error_rate : float }

let default_objective = { p99_ms = 100.; max_error_rate = 0.01 }

(* Below this many requests in the slow window, budget math is noise
   (one failed request out of three is not "budget exhausted"). *)
let min_samples = 10.

(* Cardinality cap: endpoints are attacker-influenced strings (URL
   paths); beyond the cap everything lands in one overflow bucket. *)
let max_endpoints = 64
let overflow_endpoint = "other"

type entry = {
  e_endpoint : string;
  e_obj : objective;
  e_lat : Window.histogram;
  e_reqs : Window.counter;
  e_errs : Window.counter;
}

type state = Ready | Degraded | Unready

let state_label = function
  | Ready -> "ready"
  | Degraded -> "degraded"
  | Unready -> "unready"

type probe_result = Probe_ok | Probe_degraded of string | Probe_unready of string

let entries : (string * string, entry) Hashtbl.t = Hashtbl.create 32
let probes : (string, (string * (unit -> probe_result)) list) Hashtbl.t =
  Hashtbl.create 8

let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r

let scope_count scope =
  Hashtbl.fold (fun (s, _) _ n -> if s = scope then n + 1 else n) entries 0

let series_name scope endpoint kind =
  (* windowed series live in the global Window registry; embed the scope
     so two peers' endpoints never share a ring *)
  Printf.sprintf "slo.%s.%s.%s" (if scope = "" then "global" else scope)
    endpoint kind

let get_entry ?(objective = default_objective) ~scope endpoint =
  locked (fun () ->
      match Hashtbl.find_opt entries (scope, endpoint) with
      | Some e -> e
      | None ->
          let endpoint =
            if
              endpoint <> overflow_endpoint
              && scope_count scope >= max_endpoints
            then overflow_endpoint
            else endpoint
          in
          (match Hashtbl.find_opt entries (scope, endpoint) with
          | Some e -> e
          | None ->
              let e =
                {
                  e_endpoint = endpoint;
                  e_obj = objective;
                  e_lat = Window.histogram (series_name scope endpoint "ms");
                  e_reqs = Window.counter (series_name scope endpoint "reqs");
                  e_errs = Window.counter (series_name scope endpoint "errs");
                }
              in
              Hashtbl.replace entries (scope, endpoint) e;
              e))

let declare ?objective ~scope endpoint =
  ignore (get_entry ?objective ~scope endpoint)

let record ?objective ?(scope = "") ~endpoint ~dur_ms ~error () =
  if Window.enabled () then begin
    let e = get_entry ?objective ~scope endpoint in
    Window.observe e.e_lat dur_ms;
    Window.incr e.e_reqs;
    if error then Window.incr e.e_errs
  end

let register_probe ?(scope = "") ~name f =
  locked (fun () ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt probes scope) in
      Hashtbl.replace probes scope
        ((name, f) :: List.remove_assoc name cur))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type endpoint_health = {
  h_endpoint : string;
  h_obj : objective;
  h_rate : float;  (* reqs/s over 1m *)
  h_err_rate : float;  (* errs/reqs over 1m; 0 when idle *)
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;  (* 1m-tier quantiles, nan when idle *)
  h_reqs_1m : float;
  h_budget : float;  (* remaining error budget over 1h, [0,1] *)
  h_burn : float;  (* 1m burn rate; 1.0 = on-budget spend *)
  h_state : state;
  h_reason : string option;
}

let eval_entry e =
  let reqs_1m = Window.sum_window ~tier:Window.Fast e.e_reqs in
  let errs_1m = Window.sum_window ~tier:Window.Fast e.e_errs in
  let reqs_1h = Window.sum_window ~tier:Window.Slow e.e_reqs in
  let errs_1h = Window.sum_window ~tier:Window.Slow e.e_errs in
  let err_rate = if reqs_1m > 0. then errs_1m /. reqs_1m else 0. in
  let budget =
    if reqs_1h < min_samples then 1.
    else
      let allowed = e.e_obj.max_error_rate *. reqs_1h in
      if allowed <= 0. then if errs_1h > 0. then 0. else 1.
      else Float.max 0. (1. -. (errs_1h /. allowed))
  in
  let burn =
    if reqs_1m < 1. then 0.
    else if e.e_obj.max_error_rate <= 0. then if errs_1m > 0. then infinity else 0.
    else err_rate /. e.e_obj.max_error_rate
  in
  let p99 = Window.quantile ~tier:Window.Fast e.e_lat 0.99 in
  let state, reason =
    if budget <= 0. then
      ( Unready,
        Some
          (Printf.sprintf "error budget exhausted on %s (%.0f/%.0f errors, 1h)"
             e.e_endpoint errs_1h reqs_1h) )
    else if burn > 1. && reqs_1m >= min_samples then
      ( Degraded,
        Some
          (Printf.sprintf "error budget burning %.1fx on %s" burn e.e_endpoint)
      )
    else if (not (Float.is_nan p99)) && p99 > e.e_obj.p99_ms
            && reqs_1m >= min_samples then
      ( Degraded,
        Some
          (Printf.sprintf "p99 %.1fms over objective %.0fms on %s" p99
             e.e_obj.p99_ms e.e_endpoint) )
    else (Ready, None)
  in
  {
    h_endpoint = e.e_endpoint;
    h_obj = e.e_obj;
    h_rate = Window.rate ~tier:Window.Fast e.e_reqs;
    h_err_rate = err_rate;
    h_p50 = Window.quantile ~tier:Window.Fast e.e_lat 0.50;
    h_p95 = Window.quantile ~tier:Window.Fast e.e_lat 0.95;
    h_p99 = p99;
    h_reqs_1m = reqs_1m;
    h_budget = budget;
    h_burn = burn;
    h_state = state;
    h_reason = reason;
  }

let endpoints ?(scope = "") () =
  let es =
    locked (fun () ->
        Hashtbl.fold
          (fun (s, _) e acc -> if s = scope then e :: acc else acc)
          entries [])
  in
  List.sort
    (fun a b -> compare a.h_endpoint b.h_endpoint)
    (List.map eval_entry es)

let worse a b =
  match (a, b) with
  | Unready, _ | _, Unready -> Unready
  | Degraded, _ | _, Degraded -> Degraded
  | Ready, Ready -> Ready

(** Overall readiness for a scope: the worst endpoint state joined with
    every registered probe (scope-local and process-global [""] ones). *)
let evaluate ?(scope = "") () =
  let eps = endpoints ~scope () in
  let st, reasons =
    List.fold_left
      (fun (st, rs) h ->
        ( worse st h.h_state,
          match h.h_reason with Some r -> r :: rs | None -> rs ))
      (Ready, []) eps
  in
  let probe_list =
    locked (fun () ->
        let of_scope s =
          Option.value ~default:[] (Hashtbl.find_opt probes s)
        in
        if scope = "" then of_scope "" else of_scope scope @ of_scope "")
  in
  let st, reasons =
    List.fold_left
      (fun (st, rs) (name, f) ->
        match (try f () with _ -> Probe_unready (name ^ " probe raised")) with
        | Probe_ok -> (st, rs)
        | Probe_degraded r -> (worse st Degraded, (name ^ ": " ^ r) :: rs)
        | Probe_unready r -> (Unready, (name ^ ": " ^ r) :: rs))
      (st, reasons) probe_list
  in
  (st, List.rev reasons)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let healthz_text ?(scope = "") () =
  let st, reasons = evaluate ~scope () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "live: ok\n";
  Buffer.add_string buf (Printf.sprintf "ready: %s\n" (state_label st));
  List.iter (fun r -> Buffer.add_string buf ("reason: " ^ r ^ "\n")) reasons;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "endpoint %-28s %-8s %6.1f req/s  err %5.2f%%  p99 %s  budget \
            %3.0f%%  burn %.2f\n"
           h.h_endpoint (state_label h.h_state) h.h_rate
           (h.h_err_rate *. 100.)
           (if Float.is_nan h.h_p99 then "-" else Printf.sprintf "%.1fms" h.h_p99)
           (h.h_budget *. 100.) h.h_burn))
    (endpoints ~scope ());
  Buffer.contents buf

let endpoint_json h =
  Printf.sprintf
    "{\"endpoint\": \"%s\", \"state\": \"%s\", \"rate\": %s, \"err_rate\": \
     %s, \"p50_ms\": %s, \"p95_ms\": %s, \"p99_ms\": %s, \"reqs_1m\": %s, \
     \"budget\": %s, \"burn\": %s, \"objective\": {\"p99_ms\": %s, \
     \"max_error_rate\": %s}}"
    (Metrics.json_escape h.h_endpoint)
    (state_label h.h_state) (Metrics.jnum h.h_rate) (Metrics.jnum h.h_err_rate)
    (Metrics.jnum h.h_p50) (Metrics.jnum h.h_p95) (Metrics.jnum h.h_p99)
    (Metrics.jnum h.h_reqs_1m) (Metrics.jnum h.h_budget) (Metrics.jnum h.h_burn)
    (Metrics.jnum h.h_obj.p99_ms)
    (Metrics.jnum h.h_obj.max_error_rate)

let healthz_json ?(scope = "") () =
  let st, reasons = evaluate ~scope () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"live\": true,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"ready\": %b,\n  \"state\": \"%s\",\n"
       (st = Ready) (state_label st));
  Buffer.add_string buf "  \"reasons\": [";
  Buffer.add_string buf
    (String.concat ", "
       (List.map (fun r -> "\"" ^ Metrics.json_escape r ^ "\"") reasons));
  Buffer.add_string buf "],\n  \"endpoints\": [";
  Buffer.add_string buf
    (String.concat ",\n    "
       (List.map endpoint_json (endpoints ~scope ())));
  Buffer.add_string buf "]\n}";
  Buffer.contents buf

let reset () =
  locked (fun () ->
      Hashtbl.reset entries;
      Hashtbl.reset probes)
