(* Query profiling: per-operator cardinalities and timings, per-destination
   message accounting, and the remote peer's phase breakdown — the data
   behind the shell's :profile command and Xrpc_client.call_profiled.

   The model mirrors Trace but collects *aggregates* instead of raw spans:

   - a profile is a tree of plan nodes.  Looplift opens one node per
     algebra expression it evaluates (stable ids in evaluation order,
     which for a given query is deterministic pre-order), Eval opens one
     per top-level function application, Bulk_rpc / Eval.bulk_execute one
     per distributed dispatch;
   - each node accumulates the kernel-level operator stats (rows in/out,
     calls, inclusive wall time) that Ops reports while the node is the
     ambient one on its thread;
   - destination stats (messages, logical calls, serialized bytes both
     ways, and the remote peer's parse/compile/exec/commit costs parsed
     from the response's serverProfile attribute) hang off the profile
     itself, keyed by destination URI.

   Gating discipline is the same as Trace (ISSUE 3): when profiling is off
   — the default — every entry point returns after one flag test, so the
   instrumented hot paths stay at ~0%% cost.  Timings use Trace's
   injectable clock, so Cluster-bound profiles run on the virtual clock
   and replay deterministically. *)

type op_stat = {
  mutable os_calls : int;
  mutable os_rows_in : int;
  mutable os_rows_out : int;
  mutable os_ms : float;
}

type node = {
  id : int;
  name : string;
  detail : string;
  parent : int option;
  mutable rows_out : int; (* -1 = not set *)
  mutable incl_ms : float; (* inclusive wall time, accumulated *)
  mutable ops : (string * op_stat) list; (* insertion order *)
}

type dest_stat = {
  mutable d_msgs : int; (* serialized request messages *)
  mutable d_calls : int; (* logical calls carried inside them *)
  mutable d_bytes_out : int;
  mutable d_bytes_in : int;
  mutable d_remote : (string * float) list; (* phase -> total ms *)
}

type t = {
  label : string;
  mutable nodes : node list; (* newest first *)
  mutable n_nodes : int;
  mutable dropped : int;
  mutable root_ops : (string * op_stat) list; (* ops outside any node *)
  dests : (string, dest_stat) Hashtbl.t;
  mutable annotations : string list;
      (* free-form analysis notes, newest first — the optimizer attaches
         its cost estimates here so a rendered profile shows the predicted
         cost next to the measured one *)
  started_ms : float;
  mutable total_ms : float; (* nan until the profiled run finishes *)
}

let enabled_flag = ref false
let enabled () = !enabled_flag

(* Plan nodes are bounded: a query that re-evaluates a subtree per tuple
   (If branches under loop-lifting, recursive functions under Eval) could
   otherwise grow the node list with the data.  Past the cap new nodes
   are counted as dropped; op stats still accumulate into the nearest
   live ancestor. *)
let capacity = ref 10_000
let set_capacity n = capacity := n

let state_mutex = Mutex.create ()

let locked f =
  Mutex.lock state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mutex) f

let make label =
  { label; nodes = []; n_nodes = 0; dropped = 0; root_ops = [];
    dests = Hashtbl.create 8; annotations = [];
    started_ms = Trace.now_ms (); total_ms = nan }

let current : t option ref = ref None

(* Per-thread stack of open nodes: the dispatch executor runs Bulk RPC
   legs on pool threads, and each leg's kernel work must land under that
   leg's node, not under whatever the main thread has open. *)
let stacks : (int, node list ref) Hashtbl.t = Hashtbl.create 8
let stacks_mutex = Mutex.create ()

let my_stack () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock stacks_mutex;
  let st =
    match Hashtbl.find_opt stacks id with
    | Some st -> st
    | None ->
        let st = ref [] in
        Hashtbl.replace stacks id st;
        st
  in
  Mutex.unlock stacks_mutex;
  st

let with_node ?(detail = "") name f =
  if not !enabled_flag then f ()
  else
    match !current with
    | None -> f ()
    | Some p ->
        let st = my_stack () in
        let parent = match !st with [] -> None | n :: _ -> Some n.id in
        let n =
          locked (fun () ->
              if p.n_nodes >= !capacity then begin
                p.dropped <- p.dropped + 1;
                None
              end
              else begin
                let n =
                  { id = p.n_nodes + 1; name; detail; parent; rows_out = -1;
                    incl_ms = 0.; ops = [] }
                in
                p.nodes <- n :: p.nodes;
                p.n_nodes <- p.n_nodes + 1;
                Some n
              end)
        in
        (match n with
        | None -> f ()
        | Some n ->
            st := n :: !st;
            let t0 = Trace.now_ms () in
            Fun.protect
              ~finally:(fun () ->
                n.incl_ms <- n.incl_ms +. (Trace.now_ms () -. t0);
                match !st with
                | top :: rest when top == n -> st := rest
                | _ -> ())
              f)

(* Set the output cardinality of the innermost open node. *)
let set_rows rows =
  if !enabled_flag then
    match !(my_stack ()) with [] -> () | n :: _ -> n.rows_out <- rows

let merge_op ops name ~rows_in ~rows_out ms =
  match List.assoc_opt name ops with
  | Some os ->
      os.os_calls <- os.os_calls + 1;
      os.os_rows_in <- os.os_rows_in + rows_in;
      os.os_rows_out <- os.os_rows_out + rows_out;
      os.os_ms <- os.os_ms +. ms;
      ops
  | None ->
      ops
      @ [ (name, { os_calls = 1; os_rows_in = rows_in;
                   os_rows_out = rows_out; os_ms = ms }) ]

(* Called by Ops.timed for every kernel invocation while profiling is on;
   attributes the work to the innermost open plan node on this thread. *)
let record_op name ~rows_in ~rows_out ms =
  if !enabled_flag then
    match !current with
    | None -> ()
    | Some p -> (
        match !(my_stack ()) with
        | n :: _ -> n.ops <- merge_op n.ops name ~rows_in ~rows_out ms
        | [] ->
            locked (fun () ->
                p.root_ops <- merge_op p.root_ops name ~rows_in ~rows_out ms))

(* ------------------------------------------------------------------ *)
(* Destination accounting                                              *)
(* ------------------------------------------------------------------ *)

let dest_stat_locked p dest =
  match Hashtbl.find_opt p.dests dest with
  | Some d -> d
  | None ->
      let d =
        { d_msgs = 0; d_calls = 0; d_bytes_out = 0; d_bytes_in = 0;
          d_remote = [] }
      in
      Hashtbl.replace p.dests dest d;
      d

let with_dest dest f =
  if !enabled_flag then
    match !current with
    | None -> ()
    | Some p -> locked (fun () -> f (dest_stat_locked p dest))

let note_send ~dest ~bytes =
  with_dest dest (fun d ->
      d.d_msgs <- d.d_msgs + 1;
      d.d_bytes_out <- d.d_bytes_out + bytes)

let note_recv ~dest ~bytes =
  with_dest dest (fun d -> d.d_bytes_in <- d.d_bytes_in + bytes)

let note_calls ~dest n = with_dest dest (fun d -> d.d_calls <- d.d_calls + n)

(* Attach a free-form note to the current profile (no-op when profiling
   is off) — e.g. the optimizer's estimated cost of a dispatch. *)
let note_annotation s =
  if !enabled_flag then
    match !current with
    | None -> ()
    | Some p -> locked (fun () -> p.annotations <- s :: p.annotations)

(* Remote phase costs parsed from the response's serverProfile attribute;
   summed per phase name across all messages to this destination. *)
let note_remote ~dest phases =
  with_dest dest (fun d ->
      List.iter
        (fun (name, ms) ->
          d.d_remote <-
            (if List.mem_assoc name d.d_remote then
               List.map
                 (fun (n, v) -> if n = name then (n, v +. ms) else (n, v))
                 d.d_remote
             else d.d_remote @ [ (name, ms) ]))
        phases)

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

(* Run [f] with profiling on and a fresh profile collecting; returns the
   result together with the finished profile.  Nests: the previous
   profile (if any) is restored afterwards. *)
let profiled ?(label = "") f =
  let p = make label in
  let old_cur = !current and old_en = !enabled_flag in
  current := Some p;
  enabled_flag := true;
  let r =
    Fun.protect
      ~finally:(fun () ->
        p.total_ms <- Trace.now_ms () -. p.started_ms;
        enabled_flag := old_en;
        current := old_cur)
      f
  in
  (r, p)

let label p = p.label
let total_ms p = p.total_ms
let node_count p = p.n_nodes
let dropped_count p = p.dropped

let dests p =
  Hashtbl.fold (fun dest d acc -> (dest, d) :: acc) p.dests []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let annotations p = List.rev p.annotations

let nodes p = List.rev p.nodes (* creation order: stable plan-node ids *)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let tree_of p =
  let all = nodes p in
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun n ->
      match n.parent with
      | Some pid ->
          let l = try Hashtbl.find children pid with Not_found -> [] in
          Hashtbl.replace children pid (n :: l)
      | None -> roots := n :: !roots)
    all;
  let kids id =
    List.rev (try Hashtbl.find children id with Not_found -> [])
  in
  (List.rev !roots, kids)

let render_ops buf indent ops =
  List.iter
    (fun (name, os) ->
      Buffer.add_string buf
        (Printf.sprintf "%sops: %s x%d  %d->%d rows  %.3f ms\n" indent name
           os.os_calls os.os_rows_in os.os_rows_out os.os_ms))
    ops

let render p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "profile%s: total %s  (%d plan nodes%s)\n"
       (if p.label = "" then "" else " " ^ p.label)
       (if Float.is_nan p.total_ms then "OPEN"
        else Printf.sprintf "%.3f ms" p.total_ms)
       p.n_nodes
       (if p.dropped > 0 then Printf.sprintf ", %d dropped" p.dropped else ""));
  let roots, kids = tree_of p in
  let rec pr indent n =
    Buffer.add_string buf
      (Printf.sprintf "%s#%d %s%s  %.3f ms%s\n" indent n.id n.name
         (if n.detail = "" then "" else " (" ^ n.detail ^ ")")
         n.incl_ms
         (if n.rows_out >= 0 then Printf.sprintf "  rows=%d" n.rows_out
          else ""));
    render_ops buf (indent ^ "   ") n.ops;
    List.iter (pr (indent ^ "  ")) (kids n.id)
  in
  List.iter (pr "") roots;
  render_ops buf "" p.root_ops;
  let ds = dests p in
  if ds <> [] then begin
    Buffer.add_string buf "destinations:\n";
    List.iter
      (fun (dest, d) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s  %d msg%s, %d call%s, %d B out, %d B in\n"
             dest d.d_msgs
             (if d.d_msgs = 1 then "" else "s")
             d.d_calls
             (if d.d_calls = 1 then "" else "s")
             d.d_bytes_out d.d_bytes_in);
        if d.d_remote <> [] then
          Buffer.add_string buf
            (Printf.sprintf "    remote: %s\n"
               (String.concat "; "
                  (List.map
                     (fun (n, ms) -> Printf.sprintf "%s %.3f ms" n ms)
                     d.d_remote))))
      ds
  end;
  (match annotations p with
  | [] -> ()
  | notes ->
      Buffer.add_string buf "optimizer:\n";
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  %s\n" s))
        notes);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let jnum v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v
let jstr s = "\"" ^ Metrics.json_escape s ^ "\""

let ops_json ops =
  "["
  ^ String.concat ","
      (List.map
         (fun (name, os) ->
           Printf.sprintf
             "{\"op\":%s,\"calls\":%d,\"rows_in\":%d,\"rows_out\":%d,\"ms\":%s}"
             (jstr name) os.os_calls os.os_rows_in os.os_rows_out
             (jnum os.os_ms))
         ops)
  ^ "]"

let to_json p =
  let buf = Buffer.create 1024 in
  let roots, kids = tree_of p in
  let rec node_json n =
    Printf.sprintf
      "{\"id\":%d,\"name\":%s%s,\"ms\":%s%s,\"ops\":%s,\"children\":[%s]}"
      n.id (jstr n.name)
      (if n.detail = "" then "" else ",\"detail\":" ^ jstr n.detail)
      (jnum n.incl_ms)
      (if n.rows_out >= 0 then Printf.sprintf ",\"rows\":%d" n.rows_out
       else "")
      (ops_json n.ops)
      (String.concat "," (List.map node_json (kids n.id)))
  in
  Buffer.add_string buf "{";
  if p.label <> "" then
    Buffer.add_string buf (Printf.sprintf "\"label\":%s," (jstr p.label));
  Buffer.add_string buf (Printf.sprintf "\"total_ms\":%s," (jnum p.total_ms));
  Buffer.add_string buf
    (Printf.sprintf "\"plan\":[%s]"
       (String.concat "," (List.map node_json roots)));
  if p.root_ops <> [] then
    Buffer.add_string buf (Printf.sprintf ",\"ops\":%s" (ops_json p.root_ops));
  let ds = dests p in
  if ds <> [] then begin
    Buffer.add_string buf ",\"dests\":{";
    List.iteri
      (fun i (dest, d) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "%s:{\"msgs\":%d,\"calls\":%d,\"bytes_out\":%d,\"bytes_in\":%d"
             (jstr dest) d.d_msgs d.d_calls d.d_bytes_out d.d_bytes_in);
        if d.d_remote <> [] then
          Buffer.add_string buf
            (Printf.sprintf ",\"remote\":{%s}"
               (String.concat ","
                  (List.map
                     (fun (n, ms) ->
                       Printf.sprintf "%s:%s" (jstr n) (jnum ms))
                     d.d_remote)));
        Buffer.add_char buf '}')
      ds;
    Buffer.add_char buf '}'
  end;
  if p.dropped > 0 then
    Buffer.add_string buf (Printf.sprintf ",\"dropped\":%d" p.dropped);
  Buffer.add_string buf "}";
  Buffer.contents buf
