(* Always-on flight recorder: a bounded, mutex-guarded ring buffer of the
   last N completed requests, each entry holding the request label (query
   text or method), its span-tree signature, per-phase timings, error
   kind, idem key and duration.  Entries whose duration crosses the slow
   threshold are additionally *pinned*: kept in a separate bounded list
   ordered by duration, so a burst of fast traffic cannot evict the
   evidence of yesterday's slow query.

   Recording one entry is a handful of field writes plus (when tracing is
   on) a signature render over that request's span slice — cheap enough
   to leave on in production, which is the point: /requestz answers "what
   ran here recently" without anyone having had to plan for the question. *)

type entry = {
  id : int; (* 1-based, monotonically increasing *)
  label : string;
  signature : string; (* "" when tracing was off for the request *)
  phases : (string * int * float) list; (* name, count, total ms *)
  error : string option;
  idem_key : string option;
  duration_ms : float;
  at_ms : float; (* completion time on the Trace clock *)
  wall_at : float; (* capture time, Unix epoch seconds — entries stay
                      datable after the ring wraps or the Trace clock is
                      swapped for a virtual one *)
  spans : Trace.span list; (* the request's span slice, creation order *)
}

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let default_capacity = 128
let default_slow_ms = 250.
let default_pinned_capacity = 16
let ring : entry option array ref = ref (Array.make default_capacity None)
let next_slot = ref 0
let total = ref 0
let slow_ms = ref default_slow_ms
let pinned_capacity = ref default_pinned_capacity
let pinned_list : entry list ref = ref [] (* slowest first, bounded *)

let configure ?capacity ?slow ?pinned () =
  locked (fun () ->
      (match capacity with
      | Some n when n > 0 ->
          ring := Array.make n None;
          next_slot := 0
      | _ -> ());
      (match slow with Some ms -> slow_ms := ms | None -> ());
      match pinned with
      | Some n when n > 0 ->
          pinned_capacity := n;
          pinned_list :=
            List.filteri (fun i _ -> i < n) !pinned_list
      | _ -> ())

let reset () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      next_slot := 0;
      total := 0;
      pinned_list := [])

let slow_threshold_ms () = !slow_ms

(* Insert into the pinned list keeping it sorted slowest-first and
   bounded; ties keep the earlier entry first (stable). *)
let pin_locked e =
  let rec ins = function
    | [] -> [ e ]
    | x :: rest ->
        if e.duration_ms > x.duration_ms then e :: x :: rest
        else x :: ins rest
  in
  pinned_list := List.filteri (fun i _ -> i < !pinned_capacity) (ins !pinned_list)

let record ?error ?idem_key ~label ~duration_ms ~spans () =
  locked (fun () ->
      incr total;
      let e =
        { id = !total; label;
          signature = (if spans = [] then "" else Trace.signature_of spans);
          phases =
            (if spans = [] then [] else Trace.phase_summary_of spans);
          error; idem_key; duration_ms; at_ms = Trace.now_ms ();
          wall_at = Unix.gettimeofday (); spans }
      in
      !ring.(!next_slot) <- Some e;
      next_slot := (!next_slot + 1) mod Array.length !ring;
      if duration_ms >= !slow_ms then pin_locked e;
      e.id)

(* Newest first. *)
let recent () =
  locked (fun () ->
      let cap = Array.length !ring in
      let acc = ref [] in
      for i = 0 to cap - 1 do
        (* walk forward from the oldest slot so [acc] ends newest first *)
        match !ring.((!next_slot + i) mod cap) with
        | Some e -> acc := e :: !acc
        | None -> ()
      done;
      !acc)

let pinned () = locked (fun () -> !pinned_list)
let total_recorded () = locked (fun () -> !total)

let find id =
  locked (fun () ->
      let in_ring =
        Array.fold_left
          (fun acc slot ->
            match (acc, slot) with
            | Some _, _ -> acc
            | None, Some e when e.id = id -> Some e
            | None, _ -> None)
          None !ring
      in
      match in_ring with
      | Some _ -> in_ring
      | None -> List.find_opt (fun e -> e.id = id) !pinned_list)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* "2m ago" / "3h ago": ages read at a glance; absolute epochs do not *)
let age_text now e =
  let age = now -. e.wall_at in
  if age < 0.05 then "now"
  else if age < 60. then Printf.sprintf "%.0fs ago" age
  else if age < 3600. then Printf.sprintf "%.0fm ago" (age /. 60.)
  else Printf.sprintf "%.1fh ago" (age /. 3600.)

let entry_text ?(now = Unix.gettimeofday ()) buf e =
  Buffer.add_string buf
    (Printf.sprintf "#%d  [%s]  %.3f ms%s%s  %s\n" e.id (age_text now e)
       e.duration_ms
       (match e.error with Some err -> "  ERROR " ^ err | None -> "")
       (match e.idem_key with Some k -> "  idem=" ^ k | None -> "")
       e.label);
  if e.phases <> [] then
    Buffer.add_string buf
      (Printf.sprintf "    phases: %s\n"
         (String.concat "; "
            (List.map
               (fun (name, n, ms) ->
                 Printf.sprintf "%s x%d %.3f ms" name n ms)
               e.phases)));
  if e.signature <> "" then
    Buffer.add_string buf (Printf.sprintf "    spans: %s\n" e.signature)

let to_text () =
  let buf = Buffer.create 1024 in
  let rs = recent () in
  Buffer.add_string buf
    (Printf.sprintf "flight recorder: %d recorded, showing %d (slow >= %s ms)\n"
       (total_recorded ()) (List.length rs)
       (Printf.sprintf "%.0f" !slow_ms));
  List.iter (entry_text buf) rs;
  Buffer.contents buf

let pinned_text () =
  let buf = Buffer.create 1024 in
  let ps = pinned () in
  Buffer.add_string buf
    (Printf.sprintf "pinned slow queries (>= %.0f ms): %d\n" !slow_ms
       (List.length ps));
  List.iter (entry_text buf) ps;
  Buffer.contents buf

let jstr s = "\"" ^ Metrics.json_escape s ^ "\""

let entry_json ?(now = Unix.gettimeofday ()) e =
  Printf.sprintf
    "{\"id\":%d,\"label\":%s,\"duration_ms\":%.6g,\"at_ms\":%.6g,\
     \"wall_at\":%.3f,\"age_s\":%.3f%s%s%s%s}"
    e.id (jstr e.label) e.duration_ms e.at_ms e.wall_at
    (Float.max 0. (now -. e.wall_at))
    (match e.error with
    | Some err -> ",\"error\":" ^ jstr err
    | None -> "")
    (match e.idem_key with
    | Some k -> ",\"idem_key\":" ^ jstr k
    | None -> "")
    (if e.signature = "" then "" else ",\"signature\":" ^ jstr e.signature)
    (if e.phases = [] then ""
     else
       ",\"phases\":["
       ^ String.concat ","
           (List.map
              (fun (name, n, ms) ->
                Printf.sprintf "{\"name\":%s,\"count\":%d,\"ms\":%.6g}"
                  (jstr name) n ms)
              e.phases)
       ^ "]")

let to_json () =
  let now = Unix.gettimeofday () in
  "{\"total\":"
  ^ string_of_int (total_recorded ())
  ^ ",\"recent\":["
  ^ String.concat "," (List.map (entry_json ~now) (recent ()))
  ^ "],\"pinned\":["
  ^ String.concat "," (List.map (entry_json ~now) (pinned ()))
  ^ "]}"
