(** Two-phase-commit coordinator, in the style of WS-AtomicTransaction
    (§2.3), hardened to {e presumed abort}.

    The paper deliberately keeps 2PC out of the XRPC protocol proper and
    relies on the web-service transaction standard; we model that standard
    with Prepare/Commit/Rollback/Status SOAP messages on the same channel.
    The query-originating peer is the coordinator: it learns the full
    participant list from the peer lists piggybacked on XRPC responses,
    asks every participant to prepare (logging its pending update lists),
    and commits only on a unanimous yes vote.

    Fault story (presumed abort):
    - a transport failure during prepare is a [no] vote, never an
      exception — an unreachable participant cannot have promised anything;
    - the decision is handed to [on_decision] {e before} the decision
      phase, so the coordinator's log survives lost Commit messages;
    - decision-phase sends are retried ([decision_retries], on top of
      whatever retries the policy-wrapped transport already performs) and
      their acks are collected into the outcome instead of being dropped;
    - a participant that prepared but missed the decision later asks the
      coordinator with a [Status] message ({!status}); an unknown
      transaction means "aborted". *)

module Message = Xrpc_soap.Message
module Transport = Xrpc_net.Transport
module Executor = Xrpc_net.Executor
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace

type vote = {
  peer : string;
  ok : bool;
  info : string;
  transport_failed : bool;
      (** the vote is a locally synthesized [no]: the peer never answered *)
}

type outcome = {
  committed : bool;
  votes : vote list;  (** prepare-phase votes *)
  decision_acks : vote list;
      (** final ack per participant for the Commit/Rollback phase; a
          failed ack means that participant is in doubt and will resolve
          via [Status] recovery *)
}

let tx transport ~dest op qid =
  let body = Message.to_string (Message.Tx_request (op, qid)) in
  match Message.of_string (transport.Transport.send ~dest body) with
  | Message.Tx_response { ok; info } ->
      { peer = dest; ok; info; transport_failed = false }
  | Message.Fault f ->
      { peer = dest; ok = false; info = f.Message.reason; transport_failed = false }
  | _ ->
      {
        peer = dest;
        ok = false;
        info = "malformed transaction reply";
        transport_failed = false;
      }
  | exception (Transport.Error _ as e) ->
      {
        peer = dest;
        ok = false;
        info = Transport.error_to_string e;
        transport_failed = true;
      }
  | exception Message.Protocol_error m
  | exception Xrpc_xml.Xml_parse.Parse_error m ->
      {
        peer = dest;
        ok = false;
        info = "garbled transaction reply: " ^ m;
        transport_failed = true;
      }

(** In-doubt recovery probe: ask [dest] (the coordinator) whether [qid]
    committed.  [ok = true] means committed; anything else — including an
    unknown transaction — means aborted (presumed abort). *)
let status ~transport ~dest qid = tx transport ~dest Message.Status qid

(** [run_detailed ~transport qid participants] drives the full protocol
    and reports per-peer votes and decision acks.  [on_decision] fires
    once, after the votes are in and before any decision message is sent —
    the coordinator's "log the decision to stable storage" step. *)
let m_commits = Metrics.counter "twopc.commits"
let m_aborts = Metrics.counter "twopc.aborts"

(** [executor] fans the prepare and decision broadcasts out to all
    participants concurrently; the default sequential executor keeps the
    historical in-order behaviour (and chaos-schedule determinism). *)
let run_detailed ?(decision_retries = 3) ?(on_decision = fun _ -> ())
    ?(executor = Executor.sequential) ~transport (qid : Message.query_id)
    (participants : string list) : outcome =
  Trace.with_span ~detail:(Message.query_id_key qid) "2pc" @@ fun () ->
  let votes =
    Trace.with_span "2pc.prepare" @@ fun () ->
    Executor.map_list executor
      (fun dest ->
        let v = tx transport ~dest Message.Prepare qid in
        Trace.event ~detail:(dest ^ (if v.ok then " yes" else " no"))
          (if v.ok then "vote-yes" else "vote-no");
        v)
      participants
  in
  let all_ok = List.for_all (fun v -> v.ok) votes in
  on_decision all_ok;
  Metrics.incr (if all_ok then m_commits else m_aborts);
  let second = if all_ok then Message.Commit else Message.Rollback in
  let decide dest =
    let rec go attempt =
      let v = tx transport ~dest second qid in
      if v.transport_failed && attempt < decision_retries then go (attempt + 1)
      else v
    in
    go 0
  in
  let decision_acks =
    Trace.with_span
      ~detail:(if all_ok then "commit" else "rollback")
      "2pc.decision"
    @@ fun () -> Executor.map_list executor decide participants
  in
  { committed = all_ok; votes; decision_acks }

let run ~transport qid participants =
  (run_detailed ~transport qid participants).committed
