(** Semantic result cache — memoized answers for read-only remote calls.

    A non-updating, non-isolated XRPC call (rule R_Fr) is a pure function
    of (module, function, arguments, the versions of the documents it
    read).  The serving peer therefore caches the result sequences keyed
    on the call signature plus canonicalized arguments, and pins each
    entry to the {e per-document version vector} observed during
    execution ({!Database.doc_version}).  A later lookup re-validates the
    vector against the current database version: any document rebuilt
    since makes the entry stale.

    Invalidation is belt and braces:
    - eagerly, through the {!Database.on_commit} hook — a committed XQUF
      update (local R_Fu apply, or the Commit leg of 2PC) evicts exactly
      the entries that depend on a touched document.  A presumed-abort
      Rollback never reaches [Database.commit], so an aborted distributed
      transaction invalidates nothing — by construction;
    - lazily, through the version-vector check at hit time, which catches
      entries created against databases the hook never saw.

    Only calls that stayed local are cacheable: an execution that fetched
    a remote document (data shipping) or dispatched [execute at] depends
    on state this peer cannot version, so it is never stored.  Entries
    whose calls pin a queryID (R'_Fr) bypass the cache entirely — their
    snapshot may legitimately diverge from the current version.

    Bounded LRU over {!Lru}; counters exported through
    {!Xrpc_obs.Metrics} as [peer.result_cache.*]. *)

open Xrpc_xml
module Marshal = Xrpc_soap.Marshal
module Metrics = Xrpc_obs.Metrics

let m_hits = Metrics.counter "peer.result_cache.hits"
let m_misses = Metrics.counter "peer.result_cache.misses"
let m_evictions = Metrics.counter "peer.result_cache.evictions"
let m_invalidations = Metrics.counter "peer.result_cache.invalidations"
let m_stale = Metrics.counter "peer.result_cache.stale"

type entry = {
  results : Xdm.sequence list;  (** one result sequence per call *)
  deps : (string * int) list;
      (** document-version vector: every document the execution read,
          with its {!Database.doc_version} at execution time *)
}

type t = {
  lru : entry Lru.t;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;  (** lazy invalidations (version-vector mismatch) *)
  mutable invalidations : int;  (** eager invalidations (commit hook) *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  stale : int;
  size : int;
  capacity : int;
  enabled : bool;
}

let create ?(enabled = true) ?(capacity = 512) () =
  let lru = Lru.create ~enabled ~capacity () in
  Lru.set_on_evict lru (fun _ -> Metrics.incr m_evictions);
  { lru; hits = 0; misses = 0; stale = 0; invalidations = 0 }

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

(* The key embeds the module URI first, NUL-separated, so module
   re-registration can invalidate by prefix; arguments are canonicalized
   through the SOAP sequence marshalling (typed atomics, structural
   nodes), so two calls with structurally equal arguments share a key
   however they were produced. *)
let key ~module_uri ~fn ~arity ~(calls : Xdm.sequence list list) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf module_uri;
  Buffer.add_char buf '\000';
  Buffer.add_string buf fn;
  Buffer.add_char buf '#';
  Buffer.add_string buf (string_of_int arity);
  List.iter
    (fun params ->
      Buffer.add_char buf '\000';
      List.iter
        (fun seq ->
          Buffer.add_char buf '\001';
          Buffer.add_string buf (Serialize.to_string (Marshal.s2n seq)))
        params)
    calls;
  Buffer.contents buf

let module_prefix module_uri = module_uri ^ "\000"

(* ------------------------------------------------------------------ *)
(* Lookup / store                                                      *)
(* ------------------------------------------------------------------ *)

(** [find t ~key ~doc_version] — the cached result sequences, provided
    every dependency still has the version it was executed against
    ([doc_version] reads the current database).  A version mismatch
    drops the entry (lazy invalidation) and counts as a miss. *)
let find t ~key ~(doc_version : string -> int) : Xdm.sequence list option =
  if not (Lru.enabled t.lru) then None
  else
    match Lru.peek t.lru key with
    | Some e when List.for_all (fun (d, v) -> doc_version d = v) e.deps ->
        Lru.touch t.lru key;
        t.hits <- t.hits + 1;
        Metrics.incr m_hits;
        Some e.results
    | Some _ ->
        ignore (Lru.remove t.lru key);
        t.stale <- t.stale + 1;
        Metrics.incr m_stale;
        t.misses <- t.misses + 1;
        Metrics.incr m_misses;
        None
    | None ->
        t.misses <- t.misses + 1;
        Metrics.incr m_misses;
        None

let add t ~key ~deps results =
  if Lru.enabled t.lru then Lru.add t.lru key { results; deps }

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

(** Evict every entry depending on one of [docs] (the commit hook);
    returns how many were evicted. *)
let invalidate_docs t docs =
  let n =
    Lru.remove_if t.lru (fun _ e ->
        List.exists (fun (d, _) -> List.mem d docs) e.deps)
  in
  if n > 0 then begin
    t.invalidations <- t.invalidations + n;
    Metrics.incr_by m_invalidations n
  end;
  n

(** Evict every entry for calls into [module_uri] (module re-registration
    changed the code behind them). *)
let invalidate_module t module_uri =
  let prefix = module_prefix module_uri in
  let plen = String.length prefix in
  let n =
    Lru.remove_if t.lru (fun k _ ->
        String.length k >= plen && String.sub k 0 plen = prefix)
  in
  if n > 0 then begin
    t.invalidations <- t.invalidations + n;
    Metrics.incr_by m_invalidations n
  end;
  n

(* ------------------------------------------------------------------ *)
(* Introspection / control                                             *)
(* ------------------------------------------------------------------ *)

let clear t = Lru.clear t.lru
let set_enabled t b = Lru.set_enabled t.lru b
let enabled t = Lru.enabled t.lru
let size t = Lru.size t.lru

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = Lru.evictions t.lru;
    invalidations = t.invalidations;
    stale = t.stale;
    size = Lru.size t.lru;
    capacity = Lru.capacity t.lru;
    enabled = Lru.enabled t.lru;
  }
