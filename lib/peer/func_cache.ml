(** Function cache — prepared module plans (§3.3).

    MonetDB/XQuery caches query plans for functions defined in XQuery
    modules, so an XRPC request usually needs no query parsing and
    optimization, just execution.  Our equivalent caches the parsed module
    program together with a function registry ready to evaluate.  A miss
    re-parses and re-loads the module; the [on_compile] hook fires on every
    miss so benchmarks can charge the paper's observed module translation
    cost (~130 ms in MonetDB) to the simulated clock.

    The store is a bounded LRU (the {!Idem_cache} eviction pattern): an
    evicted module simply recompiles on its next request.  Hits, misses
    and evictions are exported through the {!Xrpc_obs.Metrics} registry
    ([peer.func_cache.*]) as well as kept as per-cache counters. *)

module Xast = Xrpc_xquery.Ast
module Xctx = Xrpc_xquery.Context
module Metrics = Xrpc_obs.Metrics

let m_hits = Metrics.counter "peer.func_cache.hits"
let m_misses = Metrics.counter "peer.func_cache.misses"
let m_evictions = Metrics.counter "peer.func_cache.evictions"

type compiled = {
  prog : Xast.prog;
  funcs : (Xctx.func_key, Xctx.func) Hashtbl.t;
}

type entry = { compiled : compiled; mutable last_used : int }

type t = {
  mutable enabled : bool;
  capacity : int;
  cache : (string, entry) Hashtbl.t;  (** module uri -> compiled *)
  mutable tick : int;  (** logical time for LRU recency *)
  mutable on_compile : string -> unit;  (** fired on every (re)compile *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(enabled = true) ?(capacity = 64) () =
  {
    enabled;
    capacity = max 1 capacity;
    cache = Hashtbl.create 16;
    tick = 0;
    on_compile = (fun _ -> ());
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.cache None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.cache key;
      t.evictions <- t.evictions + 1;
      Metrics.incr m_evictions
  | None -> ()

(** [compile t ~uri ~load] returns the compiled module for [uri], using
    [load ()] (parse + prolog processing) on a miss. *)
let compile t ~uri ~(load : unit -> compiled) =
  match if t.enabled then Hashtbl.find_opt t.cache uri else None with
  | Some e ->
      t.tick <- t.tick + 1;
      e.last_used <- t.tick;
      t.hits <- t.hits + 1;
      Metrics.incr m_hits;
      e.compiled
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr m_misses;
      t.on_compile uri;
      let c = load () in
      if t.enabled then begin
        if (not (Hashtbl.mem t.cache uri)) && Hashtbl.length t.cache >= t.capacity
        then evict_lru t;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.cache uri { compiled = c; last_used = t.tick }
      end;
      c

let invalidate t uri = Hashtbl.remove t.cache uri
let clear t = Hashtbl.reset t.cache
let size t = Hashtbl.length t.cache
