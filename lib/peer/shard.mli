(** Consistent-hash shard map: document/record keys onto peers.

    A mutable, mutex-guarded hash ring with virtual nodes and N-way
    replication.  [add]/[remove] are peer join/leave; every topology
    change bumps [version].  Hashing is FNV-1a — deterministic across
    processes, so a map rebuilt from the same member list places every
    key identically. *)

type t

val create : ?replicas:int -> ?vnodes:int -> string list -> t
(** [create members] — [replicas] copies per key including the primary
    (default 2), [vnodes] ring points per member (default 64, the load-
    skew bound).  Raises [Invalid_argument] on an empty member list. *)

val default_replicas : int
val default_vnodes : int

val members : t -> string list
(** Members in join order. *)

val replicas : t -> int
val vnodes : t -> int

val version : t -> int
(** Bumped on every [add]/[remove]; routers compare it to notice a
    topology change. *)

val add : t -> string -> unit
(** Peer join: hash the member onto the ring (no-op if present).  Only
    keys on arcs the new vnodes land on change primary — ~K/N of them. *)

val remove : t -> string -> unit
(** Peer leave: drop the member's vnodes; its arcs fall to their
    clockwise successors.  Raises on removing the last member. *)

val primary : t -> string -> string
(** The key's owner: first member clockwise from the key's hash. *)

val replica_set : t -> string -> string list
(** The first [replicas] distinct members clockwise from the key's hash,
    primary first. *)

val replica_set_n : t -> int -> string -> string list
(** [replica_set] with an explicit count (clamped to the member count). *)

val holders : t -> string -> string list
(** Alias of {!replica_set}: every member storing a copy of the key. *)

val assignment : t -> string list -> (string * string list) list
(** Keys grouped by primary member, every member present, join order. *)

val load_ratio : t -> string list -> float
(** Max/min primary-load ratio over the given keys ([infinity] when a
    member owns none). *)

val moved_keys :
  before:(string -> string) -> after:(string -> string) -> string list ->
  string list
(** Keys whose primary differs between two placements (the remapping-
    minimality property compares this count to K/N). *)

val fnv1a : string -> int
(** The ring's hash (FNV-1a 64-bit folded positive) — exposed for tests. *)

val describe : ?keys:string list -> t -> string
(** Human rendering ([:shards]); with [keys], per-member load and the
    max/min ratio. *)

val to_json : ?keys:string list -> t -> string
(** JSON rendering ([/shardz.json]). *)
