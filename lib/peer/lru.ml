(** Generic bounded LRU table — the {!Idem_cache} eviction pattern
    (logical-tick recency, linear-scan eviction, internal mutex) factored
    out so the plan and result caches share one implementation.

    The linear eviction scan is deliberate: at the capacities involved
    (hundreds to a few thousand entries) it costs microseconds, only runs
    once the cache is full, and needs no auxiliary ordering structure that
    every hit would have to maintain. *)

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  mutable enabled : bool;
  capacity : int;
  entries : (string, 'a entry) Hashtbl.t;
  mutable tick : int;  (** logical time for LRU recency *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable on_evict : string -> unit;
      (** fired (inside the lock) for every capacity eviction — cache
          layers hook their eviction metrics here *)
  lock : Mutex.t;
}

let create ?(enabled = true) ?(capacity = 256) () =
  {
    enabled;
    capacity = max 1 capacity;
    entries = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    on_evict = (fun _ -> ());
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Lookup that counts a hit or miss and refreshes recency.  Disabled
    caches always miss, silently (no counter noise from an off switch). *)
let find t key =
  if not t.enabled then None
  else
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries key with
    | Some e ->
        t.tick <- t.tick + 1;
        e.last_used <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
    | None ->
        t.misses <- t.misses + 1;
        None

(** Lookup without touching recency or counters — for callers that
    validate the entry before deciding whether it was really a hit
    (the result cache's version check). *)
let peek t key =
  if not t.enabled then None
  else
    locked t @@ fun () ->
    Option.map (fun e -> e.value) (Hashtbl.find_opt t.entries key)

let touch t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      t.tick <- t.tick + 1;
      e.last_used <- t.tick
  | None -> ()

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.entries None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.entries key;
      t.evictions <- t.evictions + 1;
      t.on_evict key
  | None -> ()

let add t key value =
  if t.enabled then
    locked t @@ fun () ->
    if (not (Hashtbl.mem t.entries key)) && Hashtbl.length t.entries >= t.capacity
    then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.entries key { value; last_used = t.tick }

let remove t key =
  locked t @@ fun () ->
  if Hashtbl.mem t.entries key then (
    Hashtbl.remove t.entries key;
    true)
  else false

(** [remove_if t p] drops every entry satisfying [p key value]; returns
    how many were dropped.  This is the invalidation primitive — these
    removals are {e not} counted as evictions. *)
let remove_if t p =
  locked t @@ fun () ->
  let victims =
    Hashtbl.fold
      (fun key e acc -> if p key e.value then key :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) victims;
  List.length victims

let size t = locked t @@ fun () -> Hashtbl.length t.entries
let clear t = locked t @@ fun () -> Hashtbl.reset t.entries
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let set_on_evict t f = t.on_evict <- f
