(** Idempotent-response cache — exactly-once semantics over an
    at-least-once transport.

    Retried and duplicated XRPC requests must not re-execute updating
    functions (rule R_Fu applies pending update lists {e per request}), so
    a peer remembers the serialized response of every request that carried
    an [idemKey], in a bounded LRU next to the {!Func_cache}.  A replay
    with a known key is answered from the cache without touching the
    engine.  Faults are deliberately {e not} cached: a request that failed
    produced no side effects, so re-executing it on retry is both safe and
    the only way a transient error can heal.

    All operations are thread-safe: the keep-alive HTTP server hands each
    connection its own thread, so lookups and inserts race without the
    internal mutex. *)

type entry = { response : string; mutable last_used : int }

type t = {
  mutable enabled : bool;
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  mutable tick : int;  (** logical time for LRU recency *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ?(enabled = true) ?(capacity = 256) () =
  {
    enabled;
    capacity = max 1 capacity;
    entries = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  if not t.enabled then None
  else
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries key with
    | Some e ->
        t.tick <- t.tick + 1;
        e.last_used <- t.tick;
        t.hits <- t.hits + 1;
        Some e.response
    | None ->
        t.misses <- t.misses + 1;
        None

(* evict the least-recently-used entry; a linear scan is fine at the
   capacities involved (hundreds), and only runs once the cache is full *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.entries None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.entries key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key response =
  if t.enabled then
    locked t @@ fun () ->
    if (not (Hashtbl.mem t.entries key)) && Hashtbl.length t.entries >= t.capacity
    then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.entries key { response; last_used = t.tick }

let size t = locked t @@ fun () -> Hashtbl.length t.entries
let clear t = locked t @@ fun () -> Hashtbl.reset t.entries
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
