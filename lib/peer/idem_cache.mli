(** Idempotent-response cache — exactly-once semantics over an
    at-least-once transport.

    A bounded, thread-safe LRU from idempotency key to serialized
    response.  A replayed request with a known key is answered from the
    cache without re-executing; an evicted key falls back to
    at-least-once (the request re-executes on replay). *)

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] is clamped to at least 1. *)

val find : t -> string -> string option
(** Lookup by idempotency key; refreshes LRU recency on a hit. *)

val add : t -> string -> string -> unit
(** Remember a response, evicting the least-recently-used entry when the
    cache is full.  Replacing an existing key never evicts. *)

val size : t -> int
val clear : t -> unit

val set_enabled : t -> bool -> unit
(** Disabling makes [find] always miss and [add] a no-op (at-least-once
    semantics for every request). *)

val enabled : t -> bool
val capacity : t -> int

(** {2 Counters} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
