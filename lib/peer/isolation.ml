(** Repeatable-read isolation state, keyed by queryID (§2.2).

    When an XRPC request carries a [queryID], the peer pins the database
    version seen by the {e first} request of that query and serves every
    later request of the same query from it.  Each entry also accumulates
    the pending update lists of updating calls (rule R'_Fu) until 2PC
    commits or the timeout expires.  Expired queryIDs are remembered so
    that late requests get an error rather than silently reading a fresh
    state — per the paper, per originating host only the latest expiry
    needs retention; we keep a bounded table. *)

module Message = Xrpc_soap.Message
module Update = Xrpc_xquery.Update

type entry = {
  query_id : Message.query_id;
  snapshot : Database.version;
  expires_at : float;  (** absolute time on this peer's clock, seconds *)
  mutable pul : Update.pul;  (** accumulated ∆s, unioned (unordered) *)
  mutable prepared : bool;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  expired : (string, unit) Hashtbl.t;
  clock : unit -> float;  (** injectable for virtual time *)
}

exception Expired of string

let create ?(clock = Unix.gettimeofday) () =
  { entries = Hashtbl.create 16; expired = Hashtbl.create 16; clock }

let sweep t =
  let now = t.clock () in
  (* a prepared entry is in its 2PC uncertainty window: the participant
     voted yes and must hold the logged ∆ until the coordinator's decision
     arrives (or is fetched via in-doubt recovery) — never expire it *)
  let dead =
    Hashtbl.fold
      (fun key e acc ->
        if now > e.expires_at && not e.prepared then key :: acc else acc)
      t.entries []
  in
  List.iter
    (fun key ->
      Hashtbl.remove t.entries key;
      Hashtbl.replace t.expired key ())
    dead

(** [pin t qid db] returns the snapshot for [qid], creating it from the
    database's current version on the query's first request.  Raises
    {!Expired} for a request arriving after the timeout. *)
let pin t (qid : Message.query_id) (db : Database.t) : entry =
  sweep t;
  let key = Message.query_id_key qid in
  if Hashtbl.mem t.expired key then raise (Expired key);
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      (* Repeatable: pin the state at first contact; Snapshot: pin the
         state as of the query's global timestamp (distributed snapshot
         isolation — meaningful when peer clocks are synchronized, which
         the simulated network's shared virtual clock models) *)
      let snapshot =
        match qid.Message.level with
        | Message.Repeatable -> Database.snapshot db
        | Message.Snapshot ->
            Database.version_at db
              (try float_of_string qid.Message.timestamp
               with _ -> t.clock ())
      in
      let e =
        {
          query_id = qid;
          snapshot;
          expires_at = t.clock () +. float_of_int qid.Message.timeout;
          pul = [];
          prepared = false;
        }
      in
      Hashtbl.replace t.entries key e;
      e

let find t (qid : Message.query_id) =
  sweep t;
  let key = Message.query_id_key qid in
  if Hashtbl.mem t.expired key then raise (Expired key);
  Hashtbl.find_opt t.entries key

(** Drop an entry (after commit or rollback), remembering it as spent. *)
let release t (qid : Message.query_id) =
  let key = Message.query_id_key qid in
  Hashtbl.remove t.entries key;
  Hashtbl.replace t.expired key ()

let live_count t =
  sweep t;
  Hashtbl.length t.entries
