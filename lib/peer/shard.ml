(** Consistent-hash shard map: document/record keys onto peers.

    The ring is the classic consistent-hashing construction (the DXQ
    query-network / Dynamo shape): every member is hashed onto the ring at
    [vnodes] points ("virtual nodes"), a key belongs to the first member
    point at or clockwise after its own hash, and the key's {e replica
    set} is the first [replicas] {e distinct} members found walking
    clockwise from there.  Virtual nodes are what bound the load skew
    (≈ O(√(1/vnodes)) relative deviation) and what make rebalancing
    minimal: a joining member only takes over the ring arcs its own
    vnodes land on (~K/N of the keys), and a leaving member's arcs fall
    to their clockwise successors — no unrelated key moves.

    The structure is mutable ([add]/[remove] are peer join/leave) and
    mutex-guarded; every topology change bumps [version] so routers and
    caches can notice staleness.  Hashing is FNV-1a (64-bit, folded to
    62 bits) — deterministic across processes and OCaml versions, unlike
    [Hashtbl.hash], so a shard map rebuilt from the same member list
    places every key identically. *)

type t = {
  mutable ring : (int * string) array;  (** (point, member), sorted *)
  mutable members : string list;  (** in join order *)
  replicas : int;  (** copies per key, incl. the primary *)
  vnodes : int;  (** ring points per member *)
  mutable version : int;  (** bumped on every join/leave *)
  lock : Mutex.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* FNV-1a, 64-bit offset basis / prime, folded into OCaml's positive int
   range.  Stable across runs — never replace with Hashtbl.hash.

   FNV's multiply only carries entropy upward, so on short keys the high
   bits barely avalanche ("k1" and "k2" share their top ~40 bits) — ring
   points sorted by those bits would collapse into a few giant arcs and
   one member would own most of the keyspace.  A splitmix64-style
   finalizer fixes the spread while staying just as deterministic. *)
let fnv1a (s : string) =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  let x = ref !h in
  x := Int64.mul (Int64.logxor !x (Int64.shift_right_logical !x 30))
         0xbf58476d1ce4e5b9L;
  x := Int64.mul (Int64.logxor !x (Int64.shift_right_logical !x 27))
         0x94d049bb133111ebL;
  x := Int64.logxor !x (Int64.shift_right_logical !x 31);
  Int64.to_int (Int64.shift_right_logical !x 2)

let point_of member i = fnv1a (Printf.sprintf "%s#%d" member i)

let build_ring ~vnodes members =
  let points =
    List.concat_map
      (fun m -> List.init vnodes (fun i -> (point_of m i, m)))
      members
  in
  let ring = Array.of_list points in
  Array.sort compare ring;
  ring

let default_replicas = 2
let default_vnodes = 64

let create ?(replicas = default_replicas) ?(vnodes = default_vnodes) members =
  if replicas < 1 then invalid_arg "Shard.create: replicas < 1";
  if vnodes < 1 then invalid_arg "Shard.create: vnodes < 1";
  if members = [] then invalid_arg "Shard.create: no members";
  {
    ring = build_ring ~vnodes members;
    members;
    replicas;
    vnodes;
    version = 1;
    lock = Mutex.create ();
  }

let members t = locked t (fun () -> t.members)
let replicas t = t.replicas
let vnodes t = t.vnodes
let version t = locked t (fun () -> t.version)

let add t member =
  locked t (fun () ->
      if not (List.mem member t.members) then begin
        t.members <- t.members @ [ member ];
        t.ring <- build_ring ~vnodes:t.vnodes t.members;
        t.version <- t.version + 1
      end)

let remove t member =
  locked t (fun () ->
      if List.mem member t.members then begin
        t.members <- List.filter (fun m -> m <> member) t.members;
        if t.members = [] then invalid_arg "Shard.remove: last member";
        t.ring <- build_ring ~vnodes:t.vnodes t.members;
        t.version <- t.version + 1
      end)

(* index of the first ring point with point >= h (wrapping) *)
let successor ring h =
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

(** The first [n] distinct members clockwise from [key]'s hash — the
    replica set, primary first.  [n] is clamped to the member count. *)
let replica_set_n t n key =
  locked t (fun () ->
      let ring = t.ring in
      let len = Array.length ring in
      let n = min n (List.length t.members) in
      let start = successor ring (fnv1a key) in
      let out = ref [] and found = ref 0 and i = ref 0 in
      while !found < n && !i < len do
        let _, m = ring.((start + !i) mod len) in
        if not (List.mem m !out) then begin
          out := m :: !out;
          incr found
        end;
        incr i
      done;
      List.rev !out)

let replica_set t key = replica_set_n t t.replicas key

let primary t key =
  match replica_set_n t 1 key with
  | m :: _ -> m
  | [] -> invalid_arg "Shard.primary: empty ring"

(** [holders t key] — every member that stores a copy of [key] (the
    replica set; an alias that reads better at call sites that ask "who
    can answer for this key"). *)
let holders = replica_set

(* ------------------------------------------------------------------ *)
(* Placement analysis (property tests, :shards, rebalance planning)    *)
(* ------------------------------------------------------------------ *)

(** [assignment t keys] — keys grouped by primary member, every member
    present (possibly with [[]]), in member join order. *)
let assignment t keys =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let m = primary t k in
      Hashtbl.replace tbl m (k :: (try Hashtbl.find tbl m with Not_found -> [])))
    keys;
  List.map
    (fun m -> (m, List.rev (try Hashtbl.find tbl m with Not_found -> [])))
    (members t)

(** Max/min primary-load ratio over [keys] ([infinity] when some member
    owns nothing — the balance property tests bound this). *)
let load_ratio t keys =
  let loads = List.map (fun (_, ks) -> List.length ks) (assignment t keys) in
  match loads with
  | [] -> 1.
  | l :: ls ->
      let mx = List.fold_left max l ls and mn = List.fold_left min l ls in
      if mn = 0 then infinity else float_of_int mx /. float_of_int mn

(** [moved_keys ~before ~after keys] — keys whose primary differs between
    two placements (remapping-minimality tests compare this to K/N). *)
let moved_keys ~before ~after keys =
  List.filter (fun k -> before k <> after k) keys

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let describe ?(keys = []) t =
  let buf = Buffer.create 256 in
  locked t (fun () ->
      Printf.bprintf buf
        "shard map v%d: %d member(s), %d-way replication, %d vnodes/member \
         (%d ring points)\n"
        t.version (List.length t.members) t.replicas t.vnodes
        (Array.length t.ring));
  (match keys with
  | [] ->
      List.iter (fun m -> Printf.bprintf buf "  %s\n" m) (members t)
  | keys ->
      List.iter
        (fun (m, ks) ->
          Printf.bprintf buf "  %-28s %4d key(s)\n" m (List.length ks))
        (assignment t keys);
      let r = load_ratio t keys in
      if r <> infinity then
        Printf.bprintf buf "  load ratio (max/min): %.2f\n" r);
  Buffer.contents buf

let to_json ?(keys = []) t =
  let jstr s = "\"" ^ Xrpc_obs.Metrics.json_escape s ^ "\"" in
  let members_json =
    match keys with
    | [] -> List.map (fun m -> Printf.sprintf "{\"member\":%s}" (jstr m)) (members t)
    | keys ->
        List.map
          (fun (m, ks) ->
            Printf.sprintf "{\"member\":%s,\"keys\":%d}" (jstr m)
              (List.length ks))
          (assignment t keys)
  in
  locked t (fun () ->
      Printf.sprintf
        "{\"version\":%d,\"replicas\":%d,\"vnodes\":%d,\"members\":[%s]}"
        t.version t.replicas t.vnodes
        (String.concat "," members_json))
