(** Versioned XML document database.

    Documents are immutable shredded stores, so a database {e version} is
    just a map from document name to store, and taking a snapshot is free —
    the moral equivalent of MonetDB/XQuery's shadow-paging snapshots that
    the paper relies on for repeatable-read isolation (§2.2).  Committing a
    pending update list produces a fresh version; older snapshots held by
    in-flight queries keep reading their own version. *)

open Xrpc_xml
module Update = Xrpc_xquery.Update

module Doc_map = Map.Make (String)

type version = {
  docs : Store.t Doc_map.t;
  version_no : int;
  doc_versions : int Doc_map.t;
      (** per-document version vector: the [version_no] at which each
          document was last (re)loaded or rebuilt — what the semantic
          result cache pins its entries to, so an update to one document
          invalidates exactly the results that read it *)
}

type t = {
  mutable current : version;
  mutable history : (float * version) list;
      (** recent versions with their commit timestamps, newest first —
          enables the distributed snapshot isolation of §2.2 ("all peers
          use the same timestamp t_q") *)
  clock : unit -> float;
  mutable on_commit : (string list -> unit) list;
      (** fired after every version bump with the touched document names
          (commits {e and} [add_doc] loads, never rollbacks — a presumed-
          abort 2PC rollback releases the isolation entry without ever
          reaching here, which is exactly the invalidation contract) *)
}

exception No_such_document of string

let history_limit = 128

let create ?(clock = Unix.gettimeofday) () =
  {
    current = { docs = Doc_map.empty; version_no = 0; doc_versions = Doc_map.empty };
    history = [];
    clock;
    on_commit = [];
  }

(** Register an invalidation hook; hooks run newest-first, after the new
    version is installed. *)
let on_commit db f = db.on_commit <- f :: db.on_commit

let fire_hooks db touched =
  if touched <> [] then List.iter (fun f -> f touched) db.on_commit

let remember db =
  db.history <- (db.clock (), db.current) :: db.history;
  if List.length db.history > history_limit then
    db.history <-
      List.filteri (fun i _ -> i < history_limit) db.history

(** [add_doc db name tree] loads (or replaces) a document. *)
let add_doc db name tree =
  let store = Store.shred ~uri:name tree in
  let version_no = db.current.version_no + 1 in
  db.current <-
    {
      docs = Doc_map.add name store db.current.docs;
      version_no;
      doc_versions = Doc_map.add name version_no db.current.doc_versions;
    };
  remember db;
  fire_hooks db [ name ]

let add_doc_xml db name xml = add_doc db name (Xml_parse.document xml)

let snapshot db = db.current

(** [version_at db t] — the newest version committed at or before [t]
    (the oldest known version if [t] predates the history). *)
let version_at db t =
  let rec find = function
    | [] -> db.current
    | [ (_, v) ] -> v
    | (time, v) :: rest -> if time <= t then v else find rest
  in
  find db.history

let doc (v : version) name =
  match Doc_map.find_opt name v.docs with
  | Some s -> Some s
  | None ->
      (* tolerate a leading slash or "./": paper examples use bare names *)
      let trimmed =
        if String.length name > 0 && name.[0] = '/' then
          String.sub name 1 (String.length name - 1)
        else name
      in
      Doc_map.find_opt trimmed v.docs

let doc_exn v name =
  match doc v name with Some s -> s | None -> raise (No_such_document name)

(** [doc_version v name] — the version at which [name] was last rebuilt
    (0 for a document this version does not know, tolerating the same
    leading-slash variation as {!doc}). *)
let doc_version (v : version) name =
  match Doc_map.find_opt name v.doc_versions with
  | Some n -> n
  | None ->
      let trimmed =
        if String.length name > 0 && name.[0] = '/' then
          String.sub name 1 (String.length name - 1)
        else name
      in
      Option.value ~default:0 (Doc_map.find_opt trimmed v.doc_versions)

let doc_names (v : version) = List.map fst (Doc_map.bindings v.docs)

(** [commit db pul] applies a pending update list: every touched document
    is rebuilt, [fn:put] documents are stored.  Documents are matched by
    the URI recorded in their store at shred time.  Updates to stores not
    in this database (e.g. constructed fragments) are ignored — their
    effects are invisible by definition. *)
let commit db (pul : Update.pul) =
  if pul = [] then ()
  else begin
  let updated_docs, puts = Update.apply pul in
  let touched = ref [] in
  let docs =
    List.fold_left
      (fun docs (store, tree) ->
        let name = store.Store.uri in
        match Doc_map.find_opt name docs with
        | Some current when current.Store.doc_id = store.Store.doc_id ->
            touched := name :: !touched;
            Doc_map.add name (Store.shred ~uri:name tree) docs
        | Some _ | None ->
            (* snapshot-based update: the PUL was built against an older
               version; still apply it by name (last-committer-wins, which
               matches the paper's non-deterministic update order) *)
            if name = "" then docs
            else begin
              touched := name :: !touched;
              Doc_map.add name (Store.shred ~uri:name tree) docs
            end)
      db.current.docs updated_docs
  in
  let docs =
    List.fold_left
      (fun docs (uri, tree) ->
        touched := uri :: !touched;
        Doc_map.add uri (Store.shred ~uri tree) docs)
      docs puts
  in
  let touched = List.sort_uniq String.compare !touched in
  let version_no = db.current.version_no + 1 in
  let doc_versions =
    List.fold_left
      (fun dv name -> Doc_map.add name version_no dv)
      db.current.doc_versions touched
  in
  db.current <- { docs; version_no; doc_versions };
  remember db;
  fire_hooks db touched
  end

(** Document names a PUL touches (used for 2PC conflict detection). *)
let touched_docs (pul : Update.pul) =
  List.sort_uniq String.compare
    (List.filter_map
       (fun prim ->
         match Update.target_node prim with
         | Some n when n.Store.store.Store.uri <> "" ->
             Some n.Store.store.Store.uri
         | _ -> (
             match prim with Update.Put (_, uri) -> Some uri | _ -> None))
       pul)
