(** The XRPC wrapper of §4: XRPC service for an XRPC-incapable engine.

    The wrapper is a SOAP handler that (1) stores the incoming request
    message as a temporary document, (2) {e generates} an XQuery query in
    the style of the paper's Figure 3 — iterating over all [xrpc:call]
    elements, unmarshaling parameters with [n2s], calling the requested
    function, and marshaling results with [s2n] — and (3) runs that query
    on a plain XQuery processor (our tree-walking interpreter stands in
    for Saxon).  [n2s]/[s2n] are implemented in {e pure XQuery} (module
    [wrapper.xq] below), demonstrating the paper's claim that the
    marshaling functions need no engine support.

    Timing of each request is broken down into compile / treebuild / exec,
    matching Table 3's columns.  With [join_detect] the wrapper mimics
    Saxon's optimizer: a bulk request whose target function is a selection
    [doc(..)//elem[key = $param]] is answered with one hash join over all
    calls instead of [n] scans (§4, "Saxon Experiments"). *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Xast = Xrpc_xquery.Ast
module Xctx = Xrpc_xquery.Context

exception Wrapper_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Wrapper_error s)) fmt

(** Pure-XQuery marshaling module served under the namespace
    ["xrpc-wrapper"].  [w:n2s] converts an [xrpc:sequence] element into a
    typed item sequence; [w:s2n] is the inverse.  [w:copy] deep-copies
    nodes so unmarshaled parameters are fresh fragments (call-by-value:
    navigation above them finds nothing — §2.2). *)
let wrapper_xq =
  {|module namespace w = "xrpc-wrapper";
declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";
declare namespace xsi = "http://www.w3.org/2001/XMLSchema-instance";

declare function w:copy($n as node()) as node() {
  typeswitch ($n)
  case element() return
    element {local-name($n)} {
      (for $a in $n/@* return attribute {local-name($a)} {string($a)}),
      (for $c in $n/node() return w:copy($c))
    }
  case text() return text {string($n)}
  case comment() return comment {string($n)}
  default return text {string($n)}
};

declare function w:n2s($s as node()) as item()* {
  for $v in $s/*
  return
    if (local-name($v) = "atomic-value") then
      (if ($v/@xsi:type = "xs:integer") then xs:integer(string($v))
       else if ($v/@xsi:type = "xs:double") then xs:double(string($v))
       else if ($v/@xsi:type = "xs:decimal") then xs:decimal(string($v))
       else if ($v/@xsi:type = "xs:boolean") then xs:boolean(string($v))
       else string($v))
    else if (local-name($v) = "element") then (for $c in $v/* return w:copy($c))
    else if (local-name($v) = "document") then
      document { for $c in $v/node() return w:copy($c) }
    else if (local-name($v) = "text") then text {string($v)}
    else if (local-name($v) = "comment") then comment {string($v)}
    else string($v)
};

declare function w:s2n($items as item()*) as node() {
  <xrpc:sequence>{
    for $i in $items
    return
      typeswitch ($i)
      case element() return <xrpc:element>{w:copy($i)}</xrpc:element>
      case text() return <xrpc:text>{string($i)}</xrpc:text>
      case comment() return <xrpc:comment>{string($i)}</xrpc:comment>
      case document-node() return <xrpc:document>{for $c in $i/node() return w:copy($c)}</xrpc:document>
      case xs:integer return <xrpc:atomic-value xsi:type="xs:integer">{string($i)}</xrpc:atomic-value>
      case xs:double return <xrpc:atomic-value xsi:type="xs:double">{string($i)}</xrpc:atomic-value>
      case xs:decimal return <xrpc:atomic-value xsi:type="xs:decimal">{string($i)}</xrpc:atomic-value>
      case xs:boolean return <xrpc:atomic-value xsi:type="xs:boolean">{string($i)}</xrpc:atomic-value>
      default return <xrpc:atomic-value xsi:type="xs:string">{string($i)}</xrpc:atomic-value>
  }</xrpc:sequence>
};
|}

type timings = {
  mutable compile_ms : float;
  mutable treebuild_ms : float;
  mutable exec_ms : float;
}

type t = {
  uri : string;
  db : Database.t;
  modules : (string, string) Hashtbl.t;
  locations : (string, string) Hashtbl.t;
  mutable join_detect : bool;
  mutable transport : Xrpc_net.Transport.t option;
      (** for [fn:doc("xrpc://...")] data shipping only — the wrapper still
          cannot make outgoing XRPC {e calls} (§4) *)
  last : timings;  (** per-request breakdown, Table-3 style *)
  total : timings;
  mutable request_counter : int;
}

let create ?(join_detect = false) uri =
  let t =
    {
      uri;
      db = Database.create ();
      modules = Hashtbl.create 8;
      locations = Hashtbl.create 8;
      join_detect;
      transport = None;
      last = { compile_ms = 0.; treebuild_ms = 0.; exec_ms = 0. };
      total = { compile_ms = 0.; treebuild_ms = 0.; exec_ms = 0. };
      request_counter = 0;
    }
  in
  Hashtbl.replace t.modules "xrpc-wrapper" wrapper_xq;
  Hashtbl.replace t.locations "wrapper.xq" wrapper_xq;
  t

let register_module w ~uri ?location source =
  Hashtbl.replace w.modules uri source;
  match location with
  | Some loc -> Hashtbl.replace w.locations loc source
  | None -> ()

let resolver w : Xrpc_xquery.Runner.module_resolver =
 fun ~uri ~location ->
  match Hashtbl.find_opt w.modules uri with
  | Some src -> src
  | None -> (
      match Hashtbl.find_opt w.locations location with
      | Some src -> src
      | None -> err "could not load module! (%s at %s)" uri location)

let now_ms () = Unix.gettimeofday () *. 1000.

(* ------------------------------------------------------------------ *)
(* Figure-3 query generation                                           *)
(* ------------------------------------------------------------------ *)

let generate_query ~module_uri ~location ~method_ ~arity ~request_doc =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "import module namespace func = %S at %S;\n\
     import module namespace w = \"xrpc-wrapper\" at \"wrapper.xq\";\n\
     declare namespace env = \"http://www.w3.org/2003/05/soap-envelope\";\n\
     declare namespace xrpc = \"http://monetdb.cwi.nl/XQuery\";\n\
     <env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"\n\
    \  xmlns:xrpc=\"http://monetdb.cwi.nl/XQuery\"\n\
    \  xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"\n\
    \  xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">\n\
     <env:Body>\n\
     <xrpc:response xrpc:module=%S xrpc:method=%S>{\n\
    \  for $call in doc(%S)//xrpc:call\n"
    module_uri location module_uri method_ request_doc;
  for i = 1 to arity do
    Printf.bprintf buf "  let $param%d := w:n2s($call/xrpc:sequence[%d])\n" i i
  done;
  Printf.bprintf buf "  return w:s2n(func:%s(%s))\n" method_
    (String.concat ", "
       (List.init arity (fun i -> Printf.sprintf "$param%d" (i + 1))));
  Buffer.add_string buf "}</xrpc:response>\n</env:Body>\n</env:Envelope>";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let find_attr attrs local =
  List.find_map
    (fun (a : Tree.attr) ->
      if a.name.Qname.local = local then Some a.value else None)
    attrs

(** Handle one raw SOAP XRPC request body, returning the response body. *)
let handle_raw (w : t) (body : string) : string =
  try
    (* treebuild: parse + shred the request document *)
    let t0 = now_ms () in
    let tree = Xml_parse.document body in
    let request_store = Store.shred ~uri:"/tmp/request.xml" tree in
    let t1 = now_ms () in
    (* locate the xrpc:request element to read module/method/arity *)
    let rec find_request t =
      match t with
      | Tree.Element { name; attrs; children } ->
          if name.Qname.local = "request" && name.Qname.uri = Qname.ns_xrpc then
            Some attrs
          else List.find_map find_request children
      | Tree.Document cs -> List.find_map find_request cs
      | _ -> None
    in
    let attrs =
      match find_request tree with
      | Some a -> a
      | None -> err "no xrpc:request in message"
    in
    let get what =
      match find_attr attrs what with
      | Some v -> v
      | None -> err "request missing %s" what
    in
    let module_uri = get "module" and method_ = get "method" in
    let arity = int_of_string (get "arity") in
    let location = Option.value ~default:"" (find_attr attrs "location") in
    if module_uri = Qname.ns_xrpc && method_ = "getDocument" then
      (* plain document fetch (data shipping) — the one request shape an
         XRPC-incapable engine's HTTP layer can serve without XQuery *)
      let version = Database.snapshot w.db in
      let results =
        match Message.of_string body with
        | Message.Request r ->
            List.map
              (fun params ->
                match params with
                | [ path_seq ] ->
                    let path =
                      Xdm.string_value (Xdm.one_item ~what:"path" path_seq)
                    in
                    [ Xdm.Node (Store.root (Database.doc_exn version path)) ]
                | _ -> err "getDocument expects one parameter")
              r.Message.calls
        | _ -> err "malformed getDocument request"
      in
      Message.to_string
        (Message.Response
           {
             resp_module = module_uri;
             resp_method = method_;
             results;
             cached = false;
             db_version = None;
             peers = [ w.uri ];
           })
    else begin
    w.request_counter <- w.request_counter + 1;
    let request_doc = Printf.sprintf "/tmp/request%d.xml" w.request_counter in
    (* compile: generate + parse the query and the modules it imports *)
    let query =
      generate_query ~module_uri ~location ~method_ ~arity ~request_doc
    in
    let prog = Xrpc_xquery.Parser.parse_prog query in
    let base = Xctx.empty () in
    let version = Database.snapshot w.db in
    let doc_cache = Hashtbl.create 4 in
    let fetch_remote uri_str =
      (* data shipping into the wrapper: plain document fetch, the one
         network interaction an XRPC-incapable engine can do (think Saxon
         resolving an http: URL in fn:doc) *)
      let transport =
        match w.transport with
        | Some t -> t
        | None -> err "fn:doc(%s): wrapper has no transport" uri_str
      in
      let uri = Xrpc_net.Xrpc_uri.parse uri_str in
      let request =
        {
          Message.module_uri = Qname.ns_xrpc;
          location = "";
          method_ = "getDocument";
          arity = 1;
          updating = false;
          fragments = false;
          query_id = None;
          idem_key = None; cache_ok = true;
          calls = [ [ [ Xdm.str uri.Xrpc_net.Xrpc_uri.path ] ] ];
        }
      in
      let raw =
        transport.Xrpc_net.Transport.send
          ~dest:("xrpc://" ^ Xrpc_net.Xrpc_uri.peer_key uri)
          (Message.to_string (Message.Request request))
      in
      match Message.of_string raw with
      | Message.Response { results = [ [ Xdm.Node n ] ]; _ } -> n.Store.store
      | Message.Fault f -> err "fn:doc(%s): %s" uri_str f.Message.reason
      | _ -> err "fn:doc(%s): malformed response" uri_str
    in
    let base =
      {
        base with
        Xctx.doc_resolver =
          (fun name ->
            if name = request_doc then request_store
            else
              match Hashtbl.find_opt doc_cache name with
              | Some s -> s
              | None ->
                  let s =
                    if String.length name >= 7 && String.sub name 0 7 = "xrpc://"
                    then fetch_remote name
                    else Database.doc_exn version name
                  in
                  Hashtbl.replace doc_cache name s;
                  s);
        (* the wrapper peer cannot make outgoing XRPC calls (§4) *)
        dispatcher = None;
      }
    in
    let ctx = Xrpc_xquery.Runner.load_prolog base ~resolver:(resolver w) prog in
    let t2 = now_ms () in
    (* exec *)
    let response_body =
      let joined =
        if not w.join_detect then None
        else
          (* Saxon's optimizer view: fetch the target function and try the
             equi-join plan over all calls of the bulk request *)
          let fname = Qname.make ~uri:module_uri method_ in
          match Xctx.find_function ctx fname arity with
          | None -> None
          | Some f -> (
              match Message.of_string body with
              | Message.Request r -> (
                  match Bulk_opt.hash_join_execute ctx f r.Message.calls with
                  | Some results ->
                      Some
                        (Message.to_string
                           (Message.Response
                              {
                                resp_module = module_uri;
                                resp_method = method_;
                                results;
                                cached = false;
                                db_version = None;
                                peers = [ w.uri ];
                              }))
                  | None -> None)
              | _ -> None)
      in
      match joined with
      | Some s -> s
      | None -> (
          match prog.Xast.body with
          | None -> assert false
          | Some b ->
              let result = Xrpc_xquery.Eval.eval ctx b in
              let envelope =
                match result with
                | [ Xdm.Node n ] -> Store.to_tree n
                | _ -> err "generated query did not yield one envelope"
              in
              Serialize.document_to_string (Tree.Document [ envelope ]))
    in
    let t3 = now_ms () in
    w.last.treebuild_ms <- t1 -. t0;
    w.last.compile_ms <- t2 -. t1;
    w.last.exec_ms <- t3 -. t2;
    w.total.treebuild_ms <- w.total.treebuild_ms +. (t1 -. t0);
    w.total.compile_ms <- w.total.compile_ms +. (t2 -. t1);
    w.total.exec_ms <- w.total.exec_ms +. (t3 -. t2);
    response_body
    end
  with
  | Wrapper_error m
  | Xdm.Dynamic_error m
  | Xrpc_xquery.Eval.Error m
  | Xrpc_xquery.Runner.Module_error m ->
      Message.to_string (Message.Fault { fault_code = `Sender; reason = m })
  | Xml_parse.Parse_error m ->
      Message.to_string
        (Message.Fault { fault_code = `Sender; reason = "malformed message: " ^ m })

let reset_timings w =
  w.total.compile_ms <- 0.;
  w.total.treebuild_ms <- 0.;
  w.total.exec_ms <- 0.
