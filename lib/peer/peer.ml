(** An XRPC peer: an XQuery engine + database + SOAP XRPC request handler +
    client-side query runner (§3 of the paper).

    A peer owns a versioned {!Database}, a registry of XQuery module
    sources, a {!Func_cache} of prepared modules, and an {!Isolation}
    manager for queryID-pinned snapshots.  [handle_raw] is the server side
    (the paper's "XRPC request handler"); [query] is the client side (the
    stub code the Pathfinder compiler generates, §3): it runs a local query
    whose [execute at] calls are dispatched over the configured transport,
    with Bulk RPC batching, and — for updating queries under repeatable
    isolation — commits distributed updates with 2PC over the piggybacked
    participant list (§2.3). *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Xctx = Xrpc_xquery.Context
module Runner = Xrpc_xquery.Runner
module Update = Xrpc_xquery.Update
module Transport = Xrpc_net.Transport
module Executor = Xrpc_net.Executor
module Xrpc_error = Xrpc_net.Xrpc_error
module Xrpc_uri = Xrpc_net.Xrpc_uri
module Metrics = Xrpc_obs.Metrics
module Slo = Xrpc_obs.Slo
module Telemetry = Xrpc_obs.Telemetry
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile
module Flight_recorder = Xrpc_obs.Flight_recorder

let log_src = Logs.Src.create "xrpc.peer" ~doc:"XRPC peer request handling"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Peer_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Peer_error s)) fmt

type config = {
  bulk_rpc : bool;  (** loop-lift [execute at] into Bulk RPC (default) *)
  rpc_mode : Xctx.rpc_mode;
      (** per-site override of [bulk_rpc]: [Rpc_bulk]/[Rpc_singles] force
          the Table-2 comparison modes, [Rpc_auto] (default) defers to
          [bulk_rpc].  The [XRPC_FORCE_STRATEGY] environment variable (read
          per query) wins over both. *)
  default_timeout : int;  (** seconds, for queryID isolation entries *)
  idem_capacity : int;
      (** idempotency-cache capacity; an evicted key falls back to
          at-least-once (the request re-executes on replay) *)
  plan_capacity : int;  (** compiled-plan cache entries (ad-hoc queries) *)
  result_capacity : int;  (** semantic result-cache entries *)
}

let default_config =
  {
    bulk_rpc = true;
    rpc_mode = Xctx.Rpc_auto;
    default_timeout = 30;
    idem_capacity = 256;
    plan_capacity = 128;
    result_capacity = 512;
  }

let m_requests = Metrics.counter "peer.requests"
let m_calls = Metrics.counter "peer.calls"
let m_faults = Metrics.counter "peer.faults"
let m_idem_hits = Metrics.counter "peer.idem_hits"
let m_handle_ms = Metrics.histogram "peer.handle_ms"
let m_queries = Metrics.counter "peer.queries"

(** Peer-private state, hidden behind the interface: module registries,
    the client-side idempotency counter, the coordinator's decision log,
    the clock, and the request-handling lock. *)
type internals = {
  modules : (string, string) Hashtbl.t;  (** module namespace uri -> source *)
  locations : (string, string) Hashtbl.t;  (** at-hint location -> source *)
  mutable idem_seq : int;  (** client-side idempotency key counter *)
  seq_lock : Mutex.t;  (** guards [idem_seq] against concurrent dispatch *)
  tx_decisions : (string, bool) Hashtbl.t;
      (** coordinator decision log (queryID key -> committed) backing the
          Status recovery of in-doubt participants (presumed abort) *)
  clock : unit -> float;
  lock : Mutex.t;
      (** serializes request handling — the HTTP transport serves each
          connection on its own thread, and peer state (function cache,
          isolation tables, database versions) is not otherwise
          synchronized *)
  mutable locked_by : int option;
      (** holder thread id, for reentrant self-calls (a served function may
          [execute at] its own peer) *)
  mutable shard_map : Shard.t option;
      (** the consistent-hash ring this peer routes virtual
          [xrpc://shard/<key>] destinations with (introspection surface) *)
  mutable shard_route : (string -> string) option;
      (** key -> concrete peer URI; defaults to the map's primary, but a
          cluster installs a replica-aware, liveness-filtered router *)
}

type t = {
  uri : string;
  db : Database.t;
  func_cache : Func_cache.t;
  plan_cache : Plan_cache.t;
      (** compiled plans for ad-hoc [query] sources, keyed on canonical
          query text — repeats skip parse + prolog + static check *)
  result_cache : Result_cache.t;
      (** memoized answers for read-only remote calls, pinned to the
          per-document version vector; invalidated by commits *)
  idem_cache : Idem_cache.t;
      (** responses by idempotency key, so retried/duplicated requests do
          not re-execute updating functions *)
  isolation : Isolation.t;
  mutable transport : Transport.t option;
  mutable executor : Executor.t;
      (** drives the 2PC prepare/decision broadcasts of distributed
          commits; sequential by default so Simnet chaos runs replay
          deterministically *)
  mutable config : config;
  mutable requests_handled : int;
  mutable calls_handled : int;
  mutable handler_ms : float;  (** cumulative CPU spent serving requests *)
  internals : internals;
}

let create ?(config = default_config) ?(clock = Unix.gettimeofday) uri =
  let peer =
  {
    uri;
    db = Database.create ~clock ();
    func_cache = Func_cache.create ();
    plan_cache = Plan_cache.create ~capacity:config.plan_capacity ();
    result_cache = Result_cache.create ~capacity:config.result_capacity ();
    idem_cache = Idem_cache.create ~capacity:config.idem_capacity ();
    isolation = Isolation.create ~clock ();
    transport = None;
    executor = Executor.sequential;
    config;
    requests_handled = 0;
    calls_handled = 0;
    handler_ms = 0.;
    internals =
      {
        modules = Hashtbl.create 8;
        locations = Hashtbl.create 8;
        idem_seq = 0;
        seq_lock = Mutex.create ();
        tx_decisions = Hashtbl.create 8;
        clock;
        lock = Mutex.create ();
        locked_by = None;
        shard_map = None;
        shard_route = None;
      };
  }
  in
  (* eager result-cache invalidation: every version bump (committed XQUF
     update, document load, Commit leg of 2PC) evicts exactly the entries
     depending on a touched document.  An aborted 2PC releases its
     isolation entry without committing, so it never fires this hook. *)
  Database.on_commit peer.db (fun touched ->
      ignore (Result_cache.invalidate_docs peer.result_cache touched));
  (* this peer's shard-map version rides in its telemetry snapshot, so
     the cluster view can flag ring-version disagreement across peers *)
  Telemetry.register_shard_version ~scope:uri (fun () ->
      Option.map Shard.version peer.internals.shard_map);
  peer

let set_transport peer transport = peer.transport <- Some transport
let set_executor peer executor = peer.executor <- executor

(** Attach (or detach) a shard map: [execute at {"xrpc://shard/<key>"}]
    destinations route to the key's primary member.  Use
    {!set_shard_router} afterwards for a smarter route (replica-aware,
    liveness-filtered — what {!Xrpc_core.Cluster} installs). *)
let set_shard_map peer map =
  peer.internals.shard_map <- map;
  peer.internals.shard_route <-
    Option.map (fun m -> fun key -> Shard.primary m key) map

(** Override the key router while keeping the map for introspection. *)
let set_shard_router peer route = peer.internals.shard_route <- Some route

let shard_map peer = peer.internals.shard_map

(** [:shards] / [/shardz]: the attached map, or a note that none is. *)
let shard_text ?keys peer =
  match peer.internals.shard_map with
  | Some m -> Shard.describe ?keys m
  | None -> "no shard map attached (execute at \"xrpc://shard/<key>\" would fail)\n"

let shard_json ?keys peer =
  match peer.internals.shard_map with
  | Some m -> Shard.to_json ?keys m
  | None -> "{\"shard_map\":null}"

(** Register an XQuery module source under its namespace URI and
    (optionally) an at-hint location, so that both [import module ... at]
    forms and incoming XRPC requests can find it. *)
let register_module peer ~uri ?location source =
  Hashtbl.replace peer.internals.modules uri source;
  (match location with
  | Some loc -> Hashtbl.replace peer.internals.locations loc source
  | None -> ());
  Func_cache.invalidate peer.func_cache uri;
  (* cached results of calls into this module reflect the old code *)
  ignore (Result_cache.invalidate_module peer.result_cache uri);
  (* cached ad-hoc plans may embed functions imported from this module;
     plans carry no import provenance, so clear wholesale — blunt but
     correct, and module re-registration is rare *)
  Plan_cache.clear peer.plan_cache

let module_resolver peer : Runner.module_resolver =
 fun ~uri ~location ->
  match Hashtbl.find_opt peer.internals.modules uri with
  | Some src -> src
  | None -> (
      match Hashtbl.find_opt peer.internals.locations location with
      | Some src -> src
      | None -> err "could not load module! (%s at %s)" uri location)

(* ------------------------------------------------------------------ *)
(* Dynamic context plumbing                                            *)
(* ------------------------------------------------------------------ *)

(* fn:doc over a pinned database version; xrpc:// URIs are fetched from the
   remote peer — the data-shipping path of §5's Q7 *)
let doc_resolver peer (version : Database.version) uri_str : Store.t =
  let is_remote =
    String.length uri_str >= 7 && String.sub uri_str 0 7 = "xrpc://"
  in
  if not is_remote then Database.doc_exn version uri_str
  else
    let uri = Xrpc_uri.parse uri_str in
    let self_key = Xrpc_uri.peer_key_of_string peer.uri in
    if Xrpc_uri.peer_key uri = self_key then
      Database.doc_exn version uri.Xrpc_uri.path
    else
      let transport =
        match peer.transport with
        | Some t -> t
        | None -> err "fn:doc(%s): no transport configured" uri_str
      in
      let request =
        {
          Message.module_uri = Qname.ns_xrpc;
          location = "";
          method_ = "getDocument";
          arity = 1;
          updating = false;
          fragments = false;
          query_id = None;
          idem_key = None; cache_ok = true;
          calls = [ [ [ Xdm.str uri.Xrpc_uri.path ] ] ];
        }
      in
      let raw =
        transport.Transport.send
          ~dest:("xrpc://" ^ Xrpc_uri.peer_key uri)
          (Message.to_string (Message.Request request))
      in
      match Message.of_string raw with
      | Message.Response { results = [ [ Xdm.Node n ] ]; _ } -> n.Store.store
      | Message.Fault f -> err "fn:doc(%s): %s" uri_str f.Message.reason
      | _ -> err "fn:doc(%s): malformed response" uri_str

(* every outgoing request gets a unique idempotency key; retries at the
   transport layer resend the same serialized body, so the serving peer
   can deduplicate by key *)
let assign_idem_key peer (req : Message.request) =
  match req.Message.idem_key with
  | Some _ -> req
  | None ->
      let i = peer.internals in
      let seq =
        Mutex.lock i.seq_lock;
        i.idem_seq <- i.idem_seq + 1;
        let s = i.idem_seq in
        Mutex.unlock i.seq_lock;
        s
      in
      { req with Message.idem_key = Some (Printf.sprintf "%s/%d" peer.uri seq) }

(* dispatcher over the transport; records every destination and piggybacked
   participant into [peers_acc] for 2PC registration *)
let dispatcher peer peers_acc : Xctx.dispatcher =
  let transport =
    match peer.transport with
    | Some t -> t
    | None -> err "execute at: no transport configured on %s" peer.uri
  in
  let note dest = if not (List.mem dest !peers_acc) then peers_acc := dest :: !peers_acc in
  let decode dest raw =
    (* with profiling on, pull the serving peer's phase breakdown out of
       the response's serverProfile attribute and account the response
       bytes to [dest] *)
    let msg =
      if Profile.enabled () then begin
        Profile.note_recv ~dest ~bytes:(String.length raw);
        let msg, server_profile = Message.of_string_profiled raw in
        Option.iter (fun p -> Profile.note_remote ~dest p) server_profile;
        msg
      end
      else Message.of_string raw
    in
    match msg with
    | Message.Response r as m ->
        note dest;
        List.iter note r.Message.peers;
        m
    | m -> m
  in
  let serialize ~dest req =
    let body = Message.to_string (Message.Request (assign_idem_key peer req)) in
    if Profile.enabled () then
      Profile.note_send ~dest ~bytes:(String.length body);
    body
  in
  (* each logical RPC gets its own span; the request body is serialized
     inside it so the SOAP header's parent-span is the rpc span — retries
     resend the same body, i.e. the same logical parent *)
  {
    Xctx.call =
      (fun ~dest req ->
        Trace.with_span ~detail:dest "rpc" @@ fun () ->
        decode dest (transport.Transport.send ~dest (serialize ~dest req)));
    call_parallel =
      (fun reqs ->
        Trace.with_span
          ~detail:(string_of_int (List.length reqs) ^ " peers")
          "rpc.parallel"
        @@ fun () ->
        let bodies =
          List.map (fun (dest, req) -> (dest, serialize ~dest req)) reqs
        in
        List.map2
          (fun (dest, _) raw -> decode dest raw)
          reqs
          (transport.Transport.send_parallel bodies));
  }

(* fn:doc must be stable within a query (XQuery 1.0 §2.1.2), and caching is
   also what makes data shipping fetch a remote document once, not once per
   iteration *)
let memoized_doc_resolver peer version =
  let cache = Hashtbl.create 4 in
  fun uri ->
    match Hashtbl.find_opt cache uri with
    | Some store -> store
    | None ->
        let store = doc_resolver peer version uri in
        Hashtbl.replace cache uri store;
        store

(* Result-cache dependency tracking: every locally resolved document is
   recorded under its canonical store name with the doc version it was
   read at (the entry's version vector); a document fetched from another
   peer depends on state we cannot version, so it poisons cacheability. *)
let tracking_doc_resolver peer version ~deps ~remote_dep =
  let base = memoized_doc_resolver peer version in
  let self_key = Xrpc_uri.peer_key_of_string peer.uri in
  fun uri_str ->
    let store = base uri_str in
    let local =
      if not (String.length uri_str >= 7 && String.sub uri_str 0 7 = "xrpc://")
      then true
      else Xrpc_uri.peer_key (Xrpc_uri.parse uri_str) = self_key
    in
    if local then
      Hashtbl.replace deps store.Store.uri
        (Database.doc_version version store.Store.uri)
    else remote_dep := true;
    store

let make_context ?deps ?remote_dep peer ~version ~query_id ~peers_acc : Xctx.t =
  let base = Xctx.empty () in
  let resolver =
    match (deps, remote_dep) with
    | Some deps, Some remote_dep ->
        tracking_doc_resolver peer version ~deps ~remote_dep
    | _ -> memoized_doc_resolver peer version
  in
  let dispatcher =
    if peer.transport = None then None
    else
      let d = dispatcher peer peers_acc in
      match remote_dep with
      | None -> Some d
      | Some remote_dep ->
          (* any dispatch — even back to this peer — executes code whose
             document reads are not tracked here, so the result cannot be
             pinned to a version vector *)
          Some
            {
              Xctx.call =
                (fun ~dest req ->
                  remote_dep := true;
                  d.Xctx.call ~dest req);
              call_parallel =
                (fun reqs ->
                  remote_dep := true;
                  d.Xctx.call_parallel reqs);
            }
  in
  (* Read the env override per query (not at startup) so tests and live
     debugging can flip it with [putenv] between runs. *)
  let rpc_mode =
    match Sys.getenv_opt "XRPC_FORCE_STRATEGY" with
    | Some s -> (
        match Xctx.rpc_mode_of_string s with
        | Some m -> m
        | None -> peer.config.rpc_mode)
    | None -> peer.config.rpc_mode
  in
  let dest_resolver =
    Option.map
      (fun route -> Runner.shard_resolver ~route)
      peer.internals.shard_route
  in
  {
    base with
    Xctx.doc_resolver = resolver;
    dispatcher;
    dest_resolver;
    query_id;
    bulk_rpc = peer.config.bulk_rpc;
    rpc_mode;
  }

(* ------------------------------------------------------------------ *)
(* Server side: the XRPC request handler                               *)
(* ------------------------------------------------------------------ *)

let compile_module peer ~uri ~location : Func_cache.compiled =
  Func_cache.compile peer.func_cache ~uri ~load:(fun () ->
      let source = module_resolver peer ~uri ~location in
      let prog = Xrpc_xquery.Parser.parse_prog source in
      let ctx = Xctx.empty () in
      let ctx = Runner.load_prolog ctx ~resolver:(module_resolver peer) prog in
      Xrpc_xquery.Check.check_prog_exn ctx prog;
      { Func_cache.prog; funcs = ctx.Xctx.funcs })

(* Accumulate a named phase's wall cost into [phases] (when the caller
   wants the server-side breakdown); the cost is recorded even when [f]
   raises, so a faulted request still reports where it spent its time. *)
let phase_timed phases name f =
  match phases with
  | None -> f ()
  | Some acc ->
      let t0 = Trace.now_ms () in
      Fun.protect
        ~finally:(fun () -> acc := !acc @ [ (name, Trace.now_ms () -. t0) ])
        f

let handle_request ?phases peer (r : Message.request) : Message.t =
  peer.requests_handled <- peer.requests_handled + 1;
  peer.calls_handled <- peer.calls_handled + List.length r.Message.calls;
  Metrics.incr m_requests;
  Metrics.incr_by m_calls (List.length r.Message.calls);
  Log.debug (fun m ->
      m "%s: request %s:%s#%d (%d call%s%s%s)" peer.uri r.Message.module_uri
        r.Message.method_ r.Message.arity
        (List.length r.Message.calls)
        (if List.length r.Message.calls = 1 then "" else "s — Bulk RPC")
        (if r.Message.updating then ", updating" else "")
        (match r.Message.query_id with
        | Some q -> ", queryID " ^ Message.query_id_key q
        | None -> ""));
  (* snapshot selection: pinned per queryID (R'_F), else current (R_F) *)
  let entry =
    match r.Message.query_id with
    | Some qid -> Some (Isolation.pin peer.isolation qid peer.db)
    | None -> None
  in
  let version =
    match entry with
    | Some e -> e.Isolation.snapshot
    | None -> Database.snapshot peer.db
  in
  if r.Message.module_uri = Qname.ns_xrpc && r.Message.method_ = "telemetry"
  then
    (* built-in scrape function: the federation health plane pulls each
       peer's windowed snapshot over the ordinary RPC path, so the scrape
       itself exercises (and is throttled/observed by) the same
       transport, executor and breaker the queries use *)
    let wire = Telemetry.to_wire (Telemetry.local_snapshot ~peer:peer.uri ()) in
    Message.Response
      {
        resp_module = r.Message.module_uri;
        resp_method = r.Message.method_;
        results = List.map (fun _ -> [ Xdm.str wire ]) r.Message.calls;
        cached = false;
        db_version = None;
        peers = [ peer.uri ];
      }
  else if
    r.Message.module_uri = Qname.ns_xrpc && r.Message.method_ = "getDocument"
  then
    (* internal data-shipping handler behind fn:doc("xrpc://...") *)
    let results =
      List.map
        (fun params ->
          match params with
          | [ path_seq ] ->
              let path = Xdm.string_value (Xdm.one_item ~what:"path" path_seq) in
              [ Xdm.Node (Store.root (Database.doc_exn version path)) ]
          | _ -> err "getDocument expects one parameter")
        r.Message.calls
    in
    Message.Response
      {
        resp_module = r.Message.module_uri;
        resp_method = r.Message.method_;
        results;
        cached = false;
        db_version = None;
        peers = [ peer.uri ];
      }
  else
    (* semantic result cache (R_Fr only): a read-only, non-isolated call
       whose caller did not opt out is answerable from a memoized result,
       provided the entry's document-version vector still matches.  A
       queryID-pinned call (R'_Fr) bypasses the cache — its snapshot may
       legitimately diverge from the current version. *)
    let cache_key =
      if
        r.Message.cache_ok
        && (not r.Message.updating)
        && (not r.Message.fragments)
           (* call-by-fragment arguments carry ancestor context beyond
              their serialized value, which the value-based key cannot
              distinguish — never cache them *)
        && r.Message.query_id = None
        && Result_cache.enabled peer.result_cache
      then
        Some
          (Result_cache.key ~module_uri:r.Message.module_uri
             ~fn:r.Message.method_ ~arity:r.Message.arity
             ~calls:r.Message.calls)
      else None
    in
    match
      match cache_key with
      | Some key ->
          phase_timed phases "cache" @@ fun () ->
          Result_cache.find peer.result_cache ~key
            ~doc_version:(Database.doc_version version)
      | None -> None
    with
    | Some results ->
        Trace.event
          ~detail:(r.Message.module_uri ^ ":" ^ r.Message.method_)
          "result-cache-hit";
        Profile.record_op "cache.result_hit" ~rows_in:0
          ~rows_out:(List.length results) 0.;
        Message.Response
          {
            resp_module = r.Message.module_uri;
            resp_method = r.Message.method_;
            results;
            cached = true;
            db_version = Some version.Database.version_no;
            peers = [ peer.uri ];
          }
    | None ->
    let compiled =
      (* covers parse + prolog + static check on a cache miss; ~0 on a hit *)
      phase_timed phases "compile" @@ fun () ->
      Trace.with_span ~detail:r.Message.module_uri "peer.compile" @@ fun () ->
      compile_module peer ~uri:r.Message.module_uri ~location:r.Message.location
    in
    let peers_acc = ref [ peer.uri ] in
    let deps = Hashtbl.create 4 in
    let remote_dep = ref false in
    let ctx =
      make_context ~deps ~remote_dep peer ~version ~query_id:r.Message.query_id
        ~peers_acc
    in
    let ctx = { ctx with Xctx.funcs = compiled.Func_cache.funcs } in
    let fname =
      Qname.make ~uri:r.Message.module_uri r.Message.method_
    in
    let f =
      match Xctx.find_function ctx fname r.Message.arity with
      | Some f -> f
      | None ->
          err "no function %s#%d in module %s" r.Message.method_
            r.Message.arity r.Message.module_uri
    in
    (* bulk execution: a selection function with a call-dependent key is
       answered with one scan + hash join over all calls (the set-oriented
       opportunity of §1); otherwise the body runs once per call *)
    let results =
      phase_timed phases "exec" @@ fun () ->
      Trace.with_span ~detail:r.Message.method_ "peer.exec" @@ fun () ->
      let joined =
        if f.Xctx.decl.Xrpc_xquery.Ast.fn_updating then None
        else Bulk_opt.hash_join_execute ctx f r.Message.calls
      in
      match joined with
      | Some rs -> rs
      | None ->
          List.map
            (fun params ->
              if List.length params <> r.Message.arity then
                err "call has %d parameters, expected %d" (List.length params)
                  r.Message.arity;
              Xrpc_xquery.Eval.apply_function ctx f params)
            r.Message.calls
    in
    (* updating semantics *)
    let pul = List.rev !(ctx.Xctx.pul) in
    (if pul <> [] then
       phase_timed phases "commit" @@ fun () ->
       Trace.with_span "peer.commit" @@ fun () ->
       match entry with
       | Some e ->
           (* R'_Fu: defer — union into the per-query ∆ collection *)
           e.Isolation.pul <- e.Isolation.pul @ pul
       | None ->
           (* R_Fu: apply the pending update list immediately *)
           Database.commit peer.db pul);
    (* store the result iff the execution was provably a pure function of
       this peer's documents: nothing updated, no remote document fetched,
       no dispatch to any peer (tracked via [remote_dep] and the
       participant accumulator) *)
    (match cache_key with
    | Some key
      when pul = []
           && (not f.Xctx.decl.Xrpc_xquery.Ast.fn_updating)
           && (not !remote_dep)
           && !peers_acc = [ peer.uri ] ->
        Result_cache.add peer.result_cache ~key
          ~deps:(Hashtbl.fold (fun d v acc -> (d, v) :: acc) deps [])
          results
    | _ -> ());
    Message.Response
      {
        resp_module = r.Message.module_uri;
        resp_method = r.Message.method_;
        results = (if r.Message.updating then [] else results);
        cached = false;
        db_version = Some version.Database.version_no;
        peers = !peers_acc;
      }

(* 2PC participant (WS-AtomicTransaction-style, §2.3) *)
let handle_tx peer (op : Message.tx_op) (qid : Message.query_id) : Message.t =
  Log.info (fun m ->
      m "%s: 2PC %s for %s" peer.uri
        (match op with
        | Message.Prepare -> "prepare"
        | Message.Commit -> "commit"
        | Message.Rollback -> "rollback"
        | Message.Status -> "status")
        (Message.query_id_key qid));
  match op with
  | Message.Prepare -> (
      match Isolation.find peer.isolation qid with
      | None ->
          (* read-only participant: nothing to log, vote yes *)
          Message.Tx_response { ok = true; info = "read-only" }
      | Some e ->
          (* conflict check: another prepared transaction touching the same
             documents forces an abort vote *)
          let mine = Database.touched_docs e.Isolation.pul in
          let conflict =
            Hashtbl.fold
              (fun key other acc ->
                acc
                || key <> Message.query_id_key qid
                   && other.Isolation.prepared
                   && List.exists
                        (fun d ->
                          List.mem d (Database.touched_docs other.Isolation.pul))
                        mine)
              peer.isolation.Isolation.entries false
          in
          if conflict then
            Message.Tx_response { ok = false; info = "conflicting transaction in prepared state" }
          else (
            (* "log(∆) to stable storage": the PUL is retained in the
               isolation entry; mark the vote *)
            e.Isolation.prepared <- true;
            Message.Tx_response { ok = true; info = "prepared" }))
  | Message.Commit -> (
      match Isolation.find peer.isolation qid with
      | None -> Message.Tx_response { ok = true; info = "nothing to commit" }
      | Some e ->
          Database.commit peer.db e.Isolation.pul;
          Isolation.release peer.isolation qid;
          Message.Tx_response { ok = true; info = "committed" })
  | Message.Rollback ->
      (match Isolation.find peer.isolation qid with
      | Some _ -> Isolation.release peer.isolation qid
      | None -> ());
      Message.Tx_response { ok = true; info = "rolled back" }
  | Message.Status -> (
      (* coordinator side of in-doubt recovery: report the logged
         decision; an unknown transaction is presumed aborted *)
      match Hashtbl.find_opt peer.internals.tx_decisions (Message.query_id_key qid) with
      | Some true -> Message.Tx_response { ok = true; info = "committed" }
      | Some false -> Message.Tx_response { ok = false; info = "aborted" }
      | None ->
          Message.Tx_response
            { ok = false; info = "unknown transaction (presumed abort)" })

(** The raw SOAP-over-HTTP handler: body in, body out.  Any error becomes a
    SOAP Fault, which the originating site turns into a run-time error
    (§2.1, "XRPC Error Message"). *)
let with_peer_lock peer f =
  let self = Thread.id (Thread.self ()) in
  if peer.internals.locked_by = Some self then f ()
  else begin
    Mutex.lock peer.internals.lock;
    peer.internals.locked_by <- Some self;
    Fun.protect
      ~finally:(fun () ->
        peer.internals.locked_by <- None;
        Mutex.unlock peer.internals.lock)
      f
  end

let handle_raw_into peer ?(pos = 0) ?len (body : string) (out : Buffer.t) :
    unit =
  let len = match len with Some l -> l | None -> String.length body - pos in
  let t0 = Unix.gettimeofday () in
  with_peer_lock peer @@ fun () ->
  let fr_mark = Trace.mark () in
  let tparse0 = Trace.now_ms () in
  let parsed =
    try Ok (Message.of_string_server ~pos ~len body) with e -> Error e
  in
  let parse_ms = Trace.now_ms () -. tparse0 in
  let msg = Result.map (fun (m, _, _) -> m) parsed in
  (* measure the server-side phase breakdown whenever someone will read
     it: the caller asked (the profile request attribute), sent a trace
     context (a traced distributed query), or observability is on in
     this process.  Plain traffic pays nothing and its wire format is
     unchanged. *)
  let want_profile =
    Profile.enabled () || Trace.enabled ()
    || (match parsed with
       | Ok (_, Some _, _) | Ok (_, _, true) -> true
       | _ -> false)
  in
  let phases =
    if want_profile then Some (ref [ ("parse", parse_ms) ]) else None
  in
  let flight_label =
    match msg with
    | Ok (Message.Request r) ->
        Printf.sprintf "%s:%s#%d (%d call%s)" r.Message.module_uri
          r.Message.method_ r.Message.arity
          (List.length r.Message.calls)
          (if List.length r.Message.calls = 1 then "" else "s")
    | Ok (Message.Tx_request (op, qid)) ->
        Printf.sprintf "tx:%s %s"
          (match op with
          | Message.Prepare -> "prepare"
          | Message.Commit -> "commit"
          | Message.Rollback -> "rollback"
          | Message.Status -> "status")
          (Message.query_id_key qid)
    | Ok _ -> "unexpected message kind"
    | Error e -> "unparseable request: " ^ Printexc.to_string e
  in
  let record_flight ?error ~idem_key () =
    ignore
      (Flight_recorder.record ?error ?idem_key ~label:flight_label
         ~duration_ms:((Unix.gettimeofday () -. t0) *. 1000.)
         ~spans:(Trace.since fr_mark) ())
  in
  (* SLO endpoint identity: the function (or 2PC op) being served, not
     the arity/call-count details the flight label carries *)
  let slo_endpoint =
    match msg with
    | Ok (Message.Request r) -> r.Message.module_uri ^ ":" ^ r.Message.method_
    | Ok (Message.Tx_request (op, _)) ->
        "tx:"
        ^ (match op with
          | Message.Prepare -> "prepare"
          | Message.Commit -> "commit"
          | Message.Rollback -> "rollback"
          | Message.Status -> "status")
    | Ok _ | Error _ -> "malformed"
  in
  let record_slo ~error =
    Slo.record ~scope:peer.uri ~endpoint:slo_endpoint
      ~dur_ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ~error ()
  in
  (* the span adopts the caller's propagated (trace-id, parent-span) when
     the envelope header carries one, so peer-side work lands in the
     originating query's tree; the parse itself is recorded as an event *)
  let span_body f =
    match parsed with
    | Ok (_, Some (trace_id, parent), _) ->
        Trace.with_remote_parent ~detail:peer.uri ~trace_id ~parent
          "peer.handle" f
    | _ -> Trace.with_span ~detail:peer.uri "peer.handle" f
  in
  span_body @@ fun () ->
  Trace.event
    ~detail:(Printf.sprintf "%.3fms" ((Unix.gettimeofday () -. t0) *. 1000.))
    "peer-parse";
  (* exactly-once over at-least-once delivery: a request whose idemKey we
     already answered is served from the idempotency cache without
     re-executing (in particular without re-applying R_Fu updates) *)
  let idem_key =
    match msg with
    | Ok (Message.Request { idem_key = Some k; _ }) -> Some k
    | _ -> None
  in
  match
    match idem_key with
    | Some k -> Idem_cache.find peer.idem_cache k
    | None -> None
  with
  | Some cached ->
      Metrics.incr m_idem_hits;
      Trace.event "idem-hit";
      peer.handler_ms <- peer.handler_ms +. ((Unix.gettimeofday () -. t0) *. 1000.);
      record_flight ~idem_key ();
      record_slo ~error:false;
      Buffer.add_string out cached
  | None ->
  let reply =
    try
      match msg with
      | Ok (Message.Request r) -> handle_request ?phases peer r
      | Ok (Message.Tx_request (op, qid)) -> handle_tx peer op qid
      | Ok _ -> Message.Fault { fault_code = `Sender; reason = "expected a request" }
      | Error e -> raise e
    with
    | Peer_error m | Xdm.Dynamic_error m | Xrpc_xquery.Eval.Error m
    | Xrpc_xquery.Runner.Module_error m ->
        Message.Fault { fault_code = `Sender; reason = m }
    | Xrpc_error.Error e ->
        (* a served function's own [execute at] dispatch failed: surface
           the typed transport error losslessly (round-trips through
           {!Xrpc_error.of_soap_fault} on the caller's side) *)
        let fault_code, reason = Xrpc_error.to_soap_fault e in
        Message.Fault { fault_code; reason }
    | Isolation.Expired key ->
        Message.Fault
          { fault_code = `Sender; reason = "queryID expired: " ^ key }
    | Message.Protocol_error m | Xml_parse.Parse_error m ->
        Message.Fault { fault_code = `Sender; reason = "malformed message: " ^ m }
    | Xrpc_xquery.Parser.Syntax_error m | Xrpc_xquery.Lexer.Lex_error m ->
        Message.Fault { fault_code = `Sender; reason = "module syntax error: " ^ m }
    | Xrpc_xquery.Check.Static_error errors ->
        Message.Fault
          {
            fault_code = `Sender;
            reason =
              "static errors: "
              ^ String.concat "; "
                  (List.map Xrpc_xquery.Check.error_to_string errors);
          }
  in
  (match reply with
  | Message.Fault f ->
      Metrics.incr m_faults;
      Trace.event ~detail:f.Message.reason "fault";
      Log.warn (fun m -> m "%s: fault: %s" peer.uri f.Message.reason)
  | _ -> ());
  (* the phase breakdown rides back on the response element, so the
     calling site's profile can split remote time into
     parse/compile/exec/commit without another round trip; the reply is
     serialized exactly once, directly into the caller's (reused) output
     buffer — the streaming-serialize half of the event-loop server *)
  let start = Buffer.length out in
  Message.to_buffer ?server_profile:(Option.map ( ! ) phases) out reply;
  (* remember successful replies only: a faulted request had no effects,
     so a retry may legitimately re-execute it *)
  (match (idem_key, reply) with
  | Some k, (Message.Response _ | Message.Tx_response _) ->
      Idem_cache.add peer.idem_cache k
        (Buffer.sub out start (Buffer.length out - start))
  | _ -> ());
  let elapsed = (Unix.gettimeofday () -. t0) *. 1000. in
  peer.handler_ms <- peer.handler_ms +. elapsed;
  Metrics.observe m_handle_ms elapsed;
  record_slo ~error:(match reply with Message.Fault _ -> true | _ -> false);
  record_flight
    ?error:
      (match reply with
      | Message.Fault f -> Some f.Message.reason
      | _ -> None)
    ~idem_key ()

let handle_raw peer (body : string) : string =
  let out = Buffer.create 1024 in
  handle_raw_into peer body out;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Client side: running queries                                        *)
(* ------------------------------------------------------------------ *)

let fresh_query_id peer ~timeout ~level : Message.query_id =
  {
    Message.host = peer.uri;
    timestamp = Printf.sprintf "%.6f" (peer.internals.clock ());
    timeout;
    level;
  }

type query_result = {
  value : Xdm.sequence;
  participants : string list;  (** remote peers involved *)
  committed : bool;  (** distributed commit outcome (true if read-only) *)
  tx : Two_pc.outcome option;
      (** full 2PC outcome (votes + decision acks) when a distributed
          transaction ran *)
}

(** [query peer source] parses and runs a main-module query at this peer.

    - [execute at] calls go over the peer's transport (Bulk RPC when
      [config.bulk_rpc]).
    - With [declare option xrpc:isolation "repeatable"], a fresh queryID is
      attached to every request and the local snapshot is pinned, giving
      rule R'_Fr / R'_Fu semantics; updating queries then commit with 2PC
      across all participating peers.
    - Without it, rules R_Fr / R_Fu apply: remote updates are applied per
      request, local updates when the query finishes. *)
(* Flight-recorder label for a client-side query: first line, bounded. *)
let query_label source =
  let one_line = String.map (fun c -> if c = '\n' then ' ' else c) source in
  let trimmed = String.trim one_line in
  if String.length trimmed <= 120 then trimmed
  else String.sub trimmed 0 117 ^ "..."

(* The static (cacheable) half of ad-hoc query compilation: parse, prolog
   pass 1 (imports, functions, options), static check.  Global variable
   binding is prolog pass 2 — database-dependent, re-run per execution by
   {!Runner.bind_globals} — which is what keeps a cached plan coherent
   with a database that changed under it. *)
let compile_static peer (source : string) : Plan_cache.compiled =
  let prog =
    Trace.with_span "client.parse" @@ fun () ->
    Xrpc_xquery.Parser.parse_prog source
  in
  let cctx = Xctx.empty () in
  Runner.load_prolog_static cctx ~resolver:(module_resolver peer) prog;
  Xrpc_xquery.Check.check_prog_exn cctx prog;
  {
    Plan_cache.prog;
    funcs = cctx.Xctx.funcs;
    options = !(cctx.Xctx.options);
    imports = !(cctx.Xctx.imports);
  }

(** The compiled plan for [source], through the plan cache: an
    explain-then-run pair compiles once.  This is what introspection
    surfaces ([:explain]) must use instead of re-parsing. *)
let compiled_plan peer (source : string) : Plan_cache.compiled =
  let compiled, _hit =
    Plan_cache.find_or_compile peer.plan_cache source ~compile:(fun () ->
        compile_static peer source)
  in
  compiled

let query peer (source : string) : query_result =
  Metrics.incr m_queries;
  let fr_mark = Trace.mark () in
  let t0 = Unix.gettimeofday () in
  let record_flight error =
    ignore
      (Flight_recorder.record ?error ~label:(query_label source)
         ~duration_ms:((Unix.gettimeofday () -. t0) *. 1000.)
         ~spans:(Trace.since fr_mark) ())
  in
  match
    Trace.with_span ~detail:peer.uri "query" @@ fun () ->
  let compiled, plan_hit =
    Trace.with_span "client.compile" @@ fun () ->
    Plan_cache.find_or_compile peer.plan_cache source ~compile:(fun () ->
        compile_static peer source)
  in
  if plan_hit then begin
    Trace.event ~detail:(query_label source) "plan-cache-hit";
    Profile.record_op "cache.plan_hit" ~rows_in:0 ~rows_out:0 0.
  end
  else Trace.event "plan-cache-miss";
  let prog = compiled.Plan_cache.prog in
  let version = Database.snapshot peer.db in
  let peers_acc = ref [] in
  let ctx0 = make_context peer ~version ~query_id:None ~peers_acc in
  let ctx0 = { ctx0 with Xctx.funcs = compiled.Plan_cache.funcs } in
  ctx0.Xctx.options := compiled.Plan_cache.options;
  ctx0.Xctx.imports := compiled.Plan_cache.imports;
  (* prolog pass 2: bind global variables against the current database
     (their initializers may call fn:doc or even [execute at]) *)
  let ctx =
    Trace.with_span "client.bind" @@ fun () -> Runner.bind_globals ctx0 prog
  in
  let isolation_level = Xctx.isolation ctx in
  let timeout =
    match Xctx.option_value ctx (Qname.make ~uri:Qname.ns_xrpc "timeout") with
    | Some s -> ( try int_of_string (String.trim s) with _ -> peer.config.default_timeout)
    | None -> peer.config.default_timeout
  in
  let query_id =
    match isolation_level with
    | `Repeatable -> Some (fresh_query_id peer ~timeout ~level:Message.Repeatable)
    | `Snapshot -> Some (fresh_query_id peer ~timeout ~level:Message.Snapshot)
    | `None -> None
  in
  let fragments =
    Xctx.option_value ctx (Qname.make ~uri:Qname.ns_xrpc "call-by-fragment")
    = Some "true"
  in
  let ctx = { ctx with Xctx.query_id; fragments } in
  let body =
    match prog.Xrpc_xquery.Ast.body with
    | Some b -> b
    | None -> err "cannot execute a library module"
  in
  let value =
    Trace.with_span "client.exec" @@ fun () -> Xrpc_xquery.Eval.eval ctx body
  in
  let pul = List.rev !(ctx.Xctx.pul) in
  let participants =
    List.filter (fun p -> Xrpc_uri.peer_key_of_string p
                          <> Xrpc_uri.peer_key_of_string peer.uri)
      !peers_acc
  in
  let committed, tx =
    match (query_id, participants) with
    | Some qid, _ :: _ ->
        (* distributed transaction: register participants, 2PC.  The
           decision is logged BEFORE the decision phase so participants
           that miss a Commit/Rollback can recover it via Status. *)
        let transport =
          match peer.transport with
          | Some t -> t
          | None -> err "2PC requires a transport"
        in
        let outcome =
          Two_pc.run_detailed ~transport ~executor:peer.executor
            ~on_decision:(fun committed ->
              Hashtbl.replace peer.internals.tx_decisions (Message.query_id_key qid)
                committed)
            qid participants
        in
        if outcome.Two_pc.committed then
          Trace.with_span "client.commit" (fun () -> Database.commit peer.db pul);
        (outcome.Two_pc.committed, Some outcome)
    | _ ->
        (* local-only (or non-isolated) commit *)
        if pul <> [] then
          Trace.with_span "client.commit" (fun () -> Database.commit peer.db pul);
        (true, None)
  in
  { value; participants; committed; tx }
  with
  | r ->
      record_flight None;
      r
  | exception e ->
      record_flight (Some (Printexc.to_string e));
      raise e

(** Convenience: result sequence only; raises on failed distributed commit. *)
let query_seq peer source =
  let r = query peer source in
  if not r.committed then err "distributed commit failed";
  r.value

(** In-doubt recovery (presumed abort, §2.3).

    A participant that voted yes in a Prepare but never saw the decision is
    stuck holding a prepared isolation entry.  On reconnect it asks each
    transaction's coordinator — the originating host recorded in the
    queryID — with a [Status] message: committed means apply the logged ∆
    now, anything the coordinator answers definitively (including "unknown
    transaction") means aborted.  A transaction whose coordinator is still
    unreachable stays in doubt for a later pass.

    Returns [(committed, aborted, still_in_doubt)] counts. *)
let resolve_in_doubt peer : int * int * int =
  match peer.transport with
  | None -> (0, 0, 0)
  | Some transport ->
      let prepared =
        Hashtbl.fold
          (fun _ e acc -> if e.Isolation.prepared then e :: acc else acc)
          peer.isolation.Isolation.entries []
      in
      List.fold_left
        (fun (c, a, d) (e : Isolation.entry) ->
          let qid = e.Isolation.query_id in
          let v = Two_pc.status ~transport ~dest:qid.Message.host qid in
          if v.Two_pc.transport_failed then (c, a, d + 1)
          else if v.Two_pc.ok then begin
            Database.commit peer.db e.Isolation.pul;
            Isolation.release peer.isolation qid;
            (c + 1, a, d)
          end
          else begin
            Isolation.release peer.isolation qid;
            (c, a + 1, d)
          end)
        (0, 0, 0) prepared

(* ------------------------------------------------------------------ *)
(* Cache introspection & control                                       *)
(* ------------------------------------------------------------------ *)

type cache_stats = {
  plan : Plan_cache.stats;
  result : Result_cache.stats;
  func_hits : int;
  func_misses : int;
  func_evictions : int;
  func_size : int;
  idem_hits : int;
  idem_misses : int;
  idem_evictions : int;
  idem_size : int;
}

let cache_stats peer =
  {
    plan = Plan_cache.stats peer.plan_cache;
    result = Result_cache.stats peer.result_cache;
    func_hits = peer.func_cache.Func_cache.hits;
    func_misses = peer.func_cache.Func_cache.misses;
    func_evictions = peer.func_cache.Func_cache.evictions;
    func_size = Func_cache.size peer.func_cache;
    idem_hits = Idem_cache.hits peer.idem_cache;
    idem_misses = Idem_cache.misses peer.idem_cache;
    idem_evictions = Idem_cache.evictions peer.idem_cache;
    idem_size = Idem_cache.size peer.idem_cache;
  }

let set_plan_caching peer on = Plan_cache.set_enabled peer.plan_cache on
let set_result_caching peer on = Result_cache.set_enabled peer.result_cache on

(** Drop every performance cache (plan, result, module).  The idempotency
    cache is deliberately kept: it is a correctness mechanism
    (exactly-once updates), not a performance one. *)
let clear_caches peer =
  Plan_cache.clear peer.plan_cache;
  Result_cache.clear peer.result_cache;
  Func_cache.clear peer.func_cache

(** Human-readable stats block — what [/cachez] and the shell's [:cache
    stats] print. *)
let cache_stats_text peer =
  let s = cache_stats peer in
  let p = s.plan and r = s.result in
  Printf.sprintf
    "plan_cache:   hits=%d misses=%d evictions=%d size=%d/%d enabled=%b\n\
     result_cache: hits=%d misses=%d stale=%d invalidations=%d evictions=%d \
     size=%d/%d enabled=%b\n\
     func_cache:   hits=%d misses=%d evictions=%d size=%d\n\
     idem_cache:   hits=%d misses=%d evictions=%d size=%d"
    p.Plan_cache.hits p.Plan_cache.misses p.Plan_cache.evictions
    p.Plan_cache.size p.Plan_cache.capacity p.Plan_cache.enabled
    r.Result_cache.hits r.Result_cache.misses r.Result_cache.stale
    r.Result_cache.invalidations r.Result_cache.evictions r.Result_cache.size
    r.Result_cache.capacity r.Result_cache.enabled s.func_hits s.func_misses
    s.func_evictions s.func_size s.idem_hits s.idem_misses s.idem_evictions
    s.idem_size
