(** An XRPC peer: an XQuery engine + database + SOAP XRPC request handler +
    client-side query runner (§3 of the paper).

    A peer owns a versioned {!Database}, a registry of XQuery module
    sources, a {!Func_cache} of prepared modules, and an {!Isolation}
    manager for queryID-pinned snapshots.  [handle_raw] is the server side
    (the paper's "XRPC request handler"); [query] is the client side (the
    stub code the Pathfinder compiler generates, §3): it runs a local query
    whose [execute at] calls are dispatched over the configured transport,
    with Bulk RPC batching, and — for updating queries under repeatable
    isolation — commits distributed updates with 2PC over the piggybacked
    participant list (§2.3).

    [handle_raw] is thread-safe (the keep-alive HTTP server serves each
    connection on its own thread): request handling is serialized under an
    internal reentrant lock, so a served function may [execute at] its own
    peer without deadlocking. *)

exception Peer_error of string

type config = {
  bulk_rpc : bool;  (** loop-lift [execute at] into Bulk RPC (default) *)
  rpc_mode : Xrpc_xquery.Context.rpc_mode;
      (** per-site override of [bulk_rpc]: [Rpc_bulk]/[Rpc_singles] force
          the Table-2 comparison modes, [Rpc_auto] (default) defers to
          [bulk_rpc].  The [XRPC_FORCE_STRATEGY] environment variable (read
          per query) wins over both. *)
  default_timeout : int;  (** seconds, for queryID isolation entries *)
  idem_capacity : int;
      (** idempotency-cache capacity; an evicted key falls back to
          at-least-once (the request re-executes on replay) *)
  plan_capacity : int;  (** compiled-plan cache entries (ad-hoc queries) *)
  result_capacity : int;  (** semantic result-cache entries *)
}

val default_config : config

type internals
(** Peer-private state (module registries, idempotency-key counter,
    coordinator decision log, clock, request lock) — not part of the API. *)

type t = {
  uri : string;
  db : Database.t;
  func_cache : Func_cache.t;
  plan_cache : Plan_cache.t;
      (** compiled plans for ad-hoc [query] sources, keyed on canonical
          query text — repeats skip parse + prolog + static check *)
  result_cache : Result_cache.t;
      (** memoized answers for read-only remote calls, pinned to the
          per-document version vector; invalidated by commits *)
  idem_cache : Idem_cache.t;
      (** responses by idempotency key, so retried/duplicated requests do
          not re-execute updating functions *)
  isolation : Isolation.t;
  mutable transport : Xrpc_net.Transport.t option;
  mutable executor : Xrpc_net.Executor.t;
      (** drives the 2PC prepare/decision broadcasts of distributed
          commits; sequential by default so Simnet chaos runs replay
          deterministically *)
  mutable config : config;
  mutable requests_handled : int;
  mutable calls_handled : int;
  mutable handler_ms : float;  (** cumulative CPU spent serving requests *)
  internals : internals;
}

val create : ?config:config -> ?clock:(unit -> float) -> string -> t
(** [create uri] — [uri] is this peer's own [xrpc://] identity; [clock]
    feeds database version timestamps and queryID lifetimes (defaults to
    the wall clock; clusters pass the simulated clock). *)

val set_transport : t -> Xrpc_net.Transport.t -> unit

val set_executor : t -> Xrpc_net.Executor.t -> unit
(** Fan this peer's 2PC broadcasts out through [executor].  Keep the
    default {!Xrpc_net.Executor.sequential} on Simnet-backed peers. *)

(** {2 Shard routing} *)

val set_shard_map : t -> Shard.t option -> unit
(** Attach (or, with [None], detach) a consistent-hash {!Shard} map.
    While attached, [execute at {"xrpc://shard/<key>"}] destinations are
    rewritten — before Bulk-RPC dedup, so co-located keys still share one
    message — to the key's primary member.  {!set_shard_router} swaps in a
    smarter route (replica-aware, liveness-filtered; what
    [Xrpc_core.Cluster.set_shard_map] installs on every peer). *)

val set_shard_router : t -> (string -> string) -> unit
(** Override how shard keys become concrete peer URIs, keeping the
    attached map for introspection. *)

val shard_map : t -> Shard.t option

val shard_text : ?keys:string list -> t -> string
(** Human-readable ring description — the shell's [:shards] and the
    monitoring server's [/shardz]. *)

val shard_json : ?keys:string list -> t -> string
(** JSON ring description ([/shardz.json]); [{"shard_map":null}] when no
    map is attached. *)

val register_module : t -> uri:string -> ?location:string -> string -> unit
(** Register an XQuery module source under its namespace URI and
    (optionally) an at-hint location, so that both [import module ... at]
    forms and incoming XRPC requests can find it. *)

val module_resolver : t -> Xrpc_xquery.Runner.module_resolver

val handle_raw : t -> string -> string
(** The raw SOAP-over-HTTP handler: body in, body out.  Any error becomes
    a SOAP Fault ({!Xrpc_net.Xrpc_error} values losslessly, via
    [to_soap_fault]), which the originating site turns into a run-time
    error (§2.1, "XRPC Error Message"). *)

val handle_raw_into : t -> ?pos:int -> ?len:int -> string -> Buffer.t -> unit
(** Streaming form of {!handle_raw}: the request envelope is parsed out
    of the window [body.[pos .. pos+len)] (no substring copy — the
    event-loop server points this at the SOAP body inside its connection
    buffer) and the reply is serialized exactly once, appended to the
    caller's reused output buffer. *)

(** {2 Client side: running queries} *)

type query_result = {
  value : Xrpc_xml.Xdm.sequence;
  participants : string list;  (** remote peers involved *)
  committed : bool;  (** distributed commit outcome (true if read-only) *)
  tx : Two_pc.outcome option;
      (** full 2PC outcome (votes + decision acks) when a distributed
          transaction ran *)
}

val compiled_plan : t -> string -> Plan_cache.compiled
(** The compiled plan for a query source, through the plan cache (same
    entry {!query} uses): an explain-then-run pair compiles once.
    Introspection surfaces ([:explain]) must use this instead of
    re-parsing. *)

val query : t -> string -> query_result
(** [query peer source] parses and runs a main-module query at this peer.

    - [execute at] calls go over the peer's transport (Bulk RPC when
      [config.bulk_rpc]).
    - With [declare option xrpc:isolation "repeatable"], a fresh queryID is
      attached to every request and the local snapshot is pinned, giving
      rule R'_Fr / R'_Fu semantics; updating queries then commit with 2PC
      across all participating peers (broadcast through the peer's
      {!set_executor} executor).
    - Without it, rules R_Fr / R_Fu apply: remote updates are applied per
      request, local updates when the query finishes. *)

val query_seq : t -> string -> Xrpc_xml.Xdm.sequence
(** Convenience: result sequence only; raises on failed distributed
    commit. *)

val resolve_in_doubt : t -> int * int * int
(** In-doubt recovery (presumed abort, §2.3): each prepared-but-undecided
    transaction asks its coordinator for the logged decision with a
    [Status] message.  Returns [(committed, aborted, still_in_doubt)]. *)

(** {2 Cache introspection & control} *)

type cache_stats = {
  plan : Plan_cache.stats;
  result : Result_cache.stats;
  func_hits : int;
  func_misses : int;
  func_evictions : int;
  func_size : int;
  idem_hits : int;
  idem_misses : int;
  idem_evictions : int;
  idem_size : int;
}

val cache_stats : t -> cache_stats
(** Aggregated counters across all four caches (plan, result, module
    plan, idempotency). *)

val set_plan_caching : t -> bool -> unit
(** Toggle the compiled-plan cache; disabled, every [query] recompiles. *)

val set_result_caching : t -> bool -> unit
(** Toggle the semantic result cache; disabled, every incoming call
    executes. *)

val clear_caches : t -> unit
(** Drop every performance cache (plan, result, module).  The idempotency
    cache is kept — it is a correctness mechanism (exactly-once updates),
    not a performance one. *)

val cache_stats_text : t -> string
(** Human-readable stats block — what [/cachez] and the shell's
    [:cache stats] print. *)
