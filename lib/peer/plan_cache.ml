(** Compiled-plan cache for ad-hoc queries (§3.3, extended).

    {!Func_cache} only covers module plans; every ad-hoc [Peer.query]
    still paid parse + prolog + static check on each run.  This cache
    keys the {e static} half of compilation — the parsed program, the
    function registry built by prolog pass 1 (imports included), the
    recorded options and import list — on the
    {!Xrpc_xquery.Normalize.canonical} form of the source text, so a
    repeated query (modulo whitespace and comments) skips straight to
    execution.  Global-variable binding (prolog pass 2) is database-
    dependent and deliberately {e not} cached: it re-runs per execution
    via {!Xrpc_xquery.Runner.bind_globals}, which is what keeps a cached
    plan coherent with a database that changed under it.

    Bounded LRU over {!Lru}; hit/miss/eviction counters are exported
    through {!Xrpc_obs.Metrics} as [peer.plan_cache.*]. *)

module Normalize = Xrpc_xquery.Normalize
module Xast = Xrpc_xquery.Ast
module Xctx = Xrpc_xquery.Context
module Metrics = Xrpc_obs.Metrics

let m_hits = Metrics.counter "peer.plan_cache.hits"
let m_misses = Metrics.counter "peer.plan_cache.misses"
let m_evictions = Metrics.counter "peer.plan_cache.evictions"

type compiled = {
  prog : Xast.prog;
  funcs : (Xctx.func_key, Xctx.func) Hashtbl.t;
      (** shared by every execution of this plan — prolog pass 1 is the
          only writer, so post-compile the table is read-only *)
  options : (string * string) list;  (** [declare option] values *)
  imports : (string * string) list;  (** module uri -> at-hint *)
}

type t = {
  lru : compiled Lru.t;
  by_source : (string, string) Hashtbl.t;
      (** exact source text -> canonical key.  Repeat queries usually
          arrive byte-identical; this fast path skips re-lexing the whole
          source for canonicalization on every lookup, which would
          otherwise cost a sizable fraction of the parse it exists to
          avoid.  Sources differing only in whitespace/comments miss here
          and fall through to {!Normalize.canonical}. *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
  enabled : bool;
}

let create ?(enabled = true) ?(capacity = 128) () =
  let lru = Lru.create ~enabled ~capacity () in
  Lru.set_on_evict lru (fun _ -> Metrics.incr m_evictions);
  { lru; by_source = Hashtbl.create 64 }

(* the alias table is bounded loosely: distinct spellings of the same
   canonical query are rare, so 4x the LRU capacity is plenty; overflow
   just resets the fast path, never correctness *)
let canonical_key t source =
  match Hashtbl.find_opt t.by_source source with
  | Some key -> key
  | None ->
      let key = Normalize.canonical source in
      if Hashtbl.length t.by_source >= 4 * Lru.capacity t.lru then
        Hashtbl.reset t.by_source;
      Hashtbl.replace t.by_source source key;
      key

(** [find_or_compile t source ~compile] — the cached plan for [source],
    with a flag saying whether it was served from the cache.  A [compile]
    that raises caches nothing (the error propagates and the next attempt
    recompiles).  With the cache disabled, [compile] runs every time and
    no counters move — so hit and miss paths stay byte-identical in
    behavior, which the differential tests rely on. *)
let find_or_compile t (source : string) ~(compile : unit -> compiled) :
    compiled * bool =
  if not (Lru.enabled t.lru) then (compile (), false)
  else
    let key = canonical_key t source in
    match Lru.find t.lru key with
    | Some c ->
        Metrics.incr m_hits;
        (c, true)
    | None ->
        Metrics.incr m_misses;
        let c = compile () in
        Lru.add t.lru key c;
        (c, false)

let clear t =
  Lru.clear t.lru;
  Hashtbl.reset t.by_source
let set_enabled t b = Lru.set_enabled t.lru b
let enabled t = Lru.enabled t.lru

let stats (t : t) : stats =
  {
    hits = Lru.hits t.lru;
    misses = Lru.misses t.lru;
    evictions = Lru.evictions t.lru;
    size = Lru.size t.lru;
    capacity = Lru.capacity t.lru;
    enabled = Lru.enabled t.lru;
  }
