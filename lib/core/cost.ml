(** Cost-based choice between the §5 distributed execution strategies.

    The paper evaluates four hand-written plans for query Q7 (Section 6,
    Tables 2–4) and shows which one wins as selectivity, document sizes and
    network latency vary; picking between them automatically is left as
    future work.  This module is that picker.  The cost of a plan is the
    paper's three-term sum:

    {v  cost = #messages × latency  +  bytes / bandwidth  +  per-peer CPU  v}

    - Table 2's term: message count.  Bulk RPC sends [2] messages for a
      whole loop where one-at-a-time RPC sends [2N]; the per-strategy
      message counts below are the paper's (data shipping and predicate
      pushdown are one round trip, execution relocation triggers a nested
      [getDocument] round trip back to the coordinator, the distributed
      semi-join is one Bulk RPC round trip).
    - Table 3's term: bytes on the wire, divided by bandwidth.  Seeded from
      live statistics ([Profile.note_send]/[note_recv] per-destination
      bytes, document sizes, observed selectivities).
    - Table 4's term: per-peer CPU (compile / tree-build / execute phases,
      as reported by [serverProfile] and the wrapper phase counters).

    Estimates are adaptively corrected by an EMA feedback loop over
    measured runs; the flight recorder persists [optimizer:*] entries so a
    restarted shell can replay history ([replay_flight]). *)

module Simnet = Xrpc_net.Simnet
module Profile = Xrpc_obs.Profile
module Flight_recorder = Xrpc_obs.Flight_recorder
module Eval = Xrpc_xquery.Eval

(* ------------------------------------------------------------------ *)
(* Model inputs                                                        *)
(* ------------------------------------------------------------------ *)

(** Network parameters — the latency/bandwidth columns of Tables 2–3. *)
type net = {
  latency_ms : float;  (** one-way latency per message *)
  bandwidth_bytes_per_ms : float;
}

let net_of_simnet (c : Simnet.config) =
  {
    latency_ms = c.Simnet.latency_ms;
    bandwidth_bytes_per_ms = c.Simnet.bandwidth_bytes_per_ms;
  }

let default_net = net_of_simnet Simnet.default_config

(** Per-peer CPU parameters — Table 4's phase costs, normalized to unit
    work so they scale with the site statistics.  [zero_cpu] matches the
    [charge_cpu = false] simulator configuration used by the deterministic
    benches, where measured time is network time only. *)
type cpu = {
  compile_ms : float;  (** per remote compilation *)
  xml_ms_per_byte : float;  (** shredding/tree-build cost *)
  exec_ms_per_row : float;  (** join/selection cost per processed row *)
}

let zero_cpu = { compile_ms = 0.; xml_ms_per_byte = 0.; exec_ms_per_row = 0. }

(** Statistics describing one [execute at] site (Q7-shaped: an outer loop
    at the coordinator joined against a remote document).  These are what
    the live profiler and the probing client measure. *)
type site = {
  outer_rows : int;  (** N — loop iterations at the coordinator (persons) *)
  key_bytes : int;  (** serialized bytes per semi-join key parameter *)
  local_doc_bytes : int;  (** coordinator document (shipped by relocation) *)
  remote_doc_bytes : int;  (** remote document (shipped by data shipping) *)
  remote_rows : int;  (** candidate rows at the remote peer *)
  match_rows : int;  (** join result cardinality *)
  result_bytes : int;  (** serialized bytes of the final result *)
  pushdown_rows : int;  (** rows returned by the pushdown function *)
  pushdown_bytes : int;  (** bytes shipped by the pushdown function *)
  msg_overhead_bytes : int;  (** SOAP envelope overhead per message *)
}

(** Envelope overhead of an XRPC request/response as serialized by
    [Marshal] — measured once on an empty call, rounded. *)
let default_msg_overhead = 512

let default_site =
  {
    outer_rows = 0;
    key_bytes = 24;
    local_doc_bytes = 0;
    remote_doc_bytes = 0;
    remote_rows = 0;
    match_rows = 0;
    result_bytes = 0;
    pushdown_rows = 0;
    pushdown_bytes = 0;
    msg_overhead_bytes = default_msg_overhead;
  }

(* ------------------------------------------------------------------ *)
(* The estimator                                                       *)
(* ------------------------------------------------------------------ *)

type cost = {
  strategy : Strategies.strategy;
  messages : int;
  bytes_out : int;  (** coordinator -> remote *)
  bytes_in : int;  (** remote -> coordinator *)
  network_ms : float;
  cpu_ms : float;
}

let total c = c.network_ms +. c.cpu_ms

let network_ms_of net ~messages ~bytes =
  (float_of_int messages *. net.latency_ms)
  +. (float_of_int bytes /. net.bandwidth_bytes_per_ms)

(** Estimate one strategy's cost for [site] under [net]/[cpu].

    Message counts and payloads per strategy (Q7 shapes, §5/§6):
    - {e data shipping}: 2 messages; the whole remote document comes in.
    - {e predicate pushdown}: 2 messages; only the selected nodes come in.
    - {e execution relocation}: 4 messages — the relocated call plus the
      remote peer's nested [getDocument] back to the coordinator; the
      local document goes out, the final result comes in.
    - {e distributed semi-join}: 2 messages (Bulk RPC lifts the
      loop-dependent call into one message); all N keys go out, the
      matching rows come in (estimated from the pushdown payload scaled
      by observed selectivity). *)
let estimate net cpu site strategy =
  let ovh = site.msg_overhead_bytes in
  let messages, bytes_out, bytes_in, cpu_ms =
    match strategy with
    | Strategies.Data_shipping ->
        let parse = cpu.xml_ms_per_byte *. float_of_int site.remote_doc_bytes in
        let exec =
          cpu.exec_ms_per_row
          *. float_of_int (site.outer_rows + site.remote_rows)
        in
        (2, ovh, site.remote_doc_bytes + ovh, parse +. exec)
    | Strategies.Predicate_pushdown ->
        let remote_exec = cpu.exec_ms_per_row *. float_of_int site.remote_rows in
        let parse = cpu.xml_ms_per_byte *. float_of_int site.pushdown_bytes in
        let local_exec =
          cpu.exec_ms_per_row
          *. float_of_int (site.outer_rows + site.pushdown_rows)
        in
        ( 2,
          ovh,
          site.pushdown_bytes + ovh,
          cpu.compile_ms +. remote_exec +. parse +. local_exec )
    | Strategies.Execution_relocation ->
        let parse = cpu.xml_ms_per_byte *. float_of_int site.local_doc_bytes in
        let exec =
          cpu.exec_ms_per_row
          *. float_of_int (site.outer_rows + site.remote_rows)
        in
        ( 4,
          site.local_doc_bytes + (2 * ovh),
          site.result_bytes + (2 * ovh),
          cpu.compile_ms +. parse +. exec )
    | Strategies.Distributed_semijoin ->
        let keys_out = site.outer_rows * site.key_bytes in
        (* matching rows shipped back: [match_rows] rows at the average row
           size observed in the pushdown payload.  (The [pushdown_rows]
           denominator is a selectivity ratio, so cost is monotone in every
           additive statistic — rows, bytes, latency — as Tables 2–4
           require, while staying responsive to row width.) *)
        let match_bytes =
          if site.pushdown_rows <= 0 then site.pushdown_bytes
          else site.pushdown_bytes * site.match_rows / site.pushdown_rows
        in
        let remote_exec =
          cpu.exec_ms_per_row
          *. float_of_int (site.outer_rows + site.match_rows)
        in
        ( 2,
          keys_out + ovh,
          match_bytes + ovh,
          cpu.compile_ms +. remote_exec
          +. (cpu.xml_ms_per_byte *. float_of_int match_bytes) )
  in
  let bytes = bytes_out + bytes_in in
  {
    strategy;
    messages;
    bytes_out;
    bytes_in;
    network_ms = network_ms_of net ~messages ~bytes;
    cpu_ms;
  }

(** Table 2 — Bulk RPC vs one-at-a-time RPC for the same loop: returns
    [(bulk_ms, singles_ms)] for [ncalls] iterations shipping
    [bytes_per_call] each.  Bulk is one round trip carrying all calls;
    one-at-a-time pays the round trip (and envelope) per call. *)
let estimate_rpc net ?(overhead = default_msg_overhead) ~ncalls
    ~bytes_per_call () =
  let ncalls = max 1 ncalls in
  let bulk =
    network_ms_of net ~messages:2
      ~bytes:((ncalls * bytes_per_call) + (2 * overhead))
  in
  let singles =
    network_ms_of net ~messages:(2 * ncalls)
      ~bytes:(ncalls * (bytes_per_call + (2 * overhead)))
  in
  (bulk, singles)

(* ------------------------------------------------------------------ *)
(* Feedback loop: estimated vs measured                                *)
(* ------------------------------------------------------------------ *)

type calib = { mutable runs : int; mutable factor : float }

let calib_tbl : (string, calib) Hashtbl.t = Hashtbl.create 8
let calib_mutex = Mutex.create ()

let calib_locked f =
  Mutex.lock calib_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock calib_mutex) f

(** EMA weight for new observations. *)
let ema_alpha = 0.3

(* entries are keyed [<short_name>] (global) or [<short_name>@<dest>]
   (per-destination — meaningful once a sharded ring gives destinations
   distinct cost profiles); destination URIs never contain spaces or
   '@', so both keys and flight labels stay unambiguous *)
let calib_key ?dest strategy =
  let base = Strategies.short_name strategy in
  match dest with None -> base | Some d -> base ^ "@" ^ d

(** Correction factor (measured / estimated, EMA) for a strategy;
    [1.0] until something has been observed.  With [?dest], the
    per-destination factor when that destination has observations, the
    global per-strategy factor otherwise. *)
let calibration ?dest strategy =
  calib_locked (fun () ->
      let factor_of key =
        match Hashtbl.find_opt calib_tbl key with
        | Some c when c.runs > 0 -> Some c.factor
        | _ -> None
      in
      let per_dest =
        match dest with
        | Some _ -> factor_of (calib_key ?dest strategy)
        | None -> None
      in
      match per_dest with
      | Some f -> f
      | None -> (
          match factor_of (calib_key strategy) with
          | Some f -> f
          | None -> 1.0))

let runs ?dest strategy =
  calib_locked (fun () ->
      match Hashtbl.find_opt calib_tbl (calib_key ?dest strategy) with
      | Some c -> c.runs
      | None -> 0)

(** Fold one (estimated, measured) pair into the EMA.  With [?dest] both
    the per-destination entry and the global per-strategy entry advance,
    so destinations without their own history still fall back to a
    current global factor. *)
let observe ?dest strategy ~estimated_ms ~measured_ms =
  if estimated_ms > 0. && measured_ms >= 0. then
    let ratio = measured_ms /. estimated_ms in
    calib_locked (fun () ->
        let fold key =
          let c =
            match Hashtbl.find_opt calib_tbl key with
            | Some c -> c
            | None ->
                let c = { runs = 0; factor = 1.0 } in
                Hashtbl.add calib_tbl key c;
                c
          in
          c.factor <-
            (if c.runs = 0 then ratio
             else ((1. -. ema_alpha) *. c.factor) +. (ema_alpha *. ratio));
          c.runs <- c.runs + 1
        in
        fold (calib_key strategy);
        match dest with
        | Some _ -> fold (calib_key ?dest strategy)
        | None -> ())

let reset_calibration () = calib_locked (fun () -> Hashtbl.reset calib_tbl)

let flight_label ?dest strategy ~estimated_ms ~measured_ms =
  Printf.sprintf "optimizer:%s est=%.6f meas=%.6f"
    (calib_key ?dest strategy)
    estimated_ms measured_ms

(** Feed one measured run into the EMA and persist it in the flight
    recorder so later sessions can [replay_flight].  Returns the flight
    entry id. *)
let record_run ?dest strategy ~estimated_ms ~measured_ms =
  observe ?dest strategy ~estimated_ms ~measured_ms;
  Flight_recorder.record
    ~label:(flight_label ?dest strategy ~estimated_ms ~measured_ms)
    ~duration_ms:measured_ms ~spans:[] ()

let parse_flight_label label =
  match String.index_opt label ':' with
  | Some i when String.sub label 0 i = "optimizer" -> (
      let rest = String.sub label (i + 1) (String.length label - i - 1) in
      match String.split_on_char ' ' rest with
      | [ skey; est; meas ] -> (
          let sname, dest =
            match String.index_opt skey '@' with
            | Some j ->
                ( String.sub skey 0 j,
                  Some (String.sub skey (j + 1) (String.length skey - j - 1))
                )
            | None -> (skey, None)
          in
          let num prefix s =
            let pl = String.length prefix in
            if String.length s > pl && String.sub s 0 pl = prefix then
              float_of_string_opt (String.sub s pl (String.length s - pl))
            else None
          in
          match
            (Strategies.of_string sname, num "est=" est, num "meas=" meas)
          with
          | Some strategy, Some estimated_ms, Some measured_ms ->
              Some (strategy, dest, estimated_ms, measured_ms)
          | _ -> None)
      | _ -> None)
  | _ -> None

(** Rebuild the calibration EMA from [optimizer:*] flight-recorder
    entries (oldest first, so the EMA ends in the same state it was left
    in).  Returns the number of entries replayed. *)
let replay_flight () =
  let entries = List.rev (Flight_recorder.recent ()) in
  List.fold_left
    (fun n (e : Flight_recorder.entry) ->
      match parse_flight_label e.Flight_recorder.label with
      | Some (strategy, dest, estimated_ms, measured_ms) ->
          observe ?dest strategy ~estimated_ms ~measured_ms;
          n + 1
      | None -> n)
    0 entries

let calibration_text () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "optimizer calibration (measured/estimated EMA):\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s factor=%.3f runs=%d\n" (Strategies.name s)
           (calibration s) (runs s)))
    Strategies.all;
  let per_dest =
    calib_locked (fun () ->
        Hashtbl.fold
          (fun k (c : calib) acc ->
            match String.index_opt k '@' with
            | Some i ->
                ( String.sub k 0 i,
                  String.sub k (i + 1) (String.length k - i - 1),
                  c.factor,
                  c.runs )
                :: acc
            | None -> acc)
          calib_tbl [])
    |> List.sort compare
  in
  if per_dest <> [] then begin
    Buffer.add_string buf "  per destination:\n";
    List.iter
      (fun (sname, dest, factor, n) ->
        Buffer.add_string buf
          (Printf.sprintf "    %-4s @ %-24s factor=%.3f runs=%d\n" sname dest
             factor n))
      per_dest
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Choosing                                                            *)
(* ------------------------------------------------------------------ *)

type decision = {
  chosen : cost;
  forced : bool;  (** true when [?force] overrode the ranking *)
  ranked : cost list;  (** all strategies, cheapest (calibrated) first *)
}

(** Calibrated total: the model estimate corrected by the feedback EMA
    (the destination-specific factor when [?dest] has history). *)
let calibrated_total ?dest c = total c *. calibration ?dest c.strategy

(** Rank all four strategies for [site] and pick the cheapest, unless
    [force] (e.g. from [XRPC_FORCE_STRATEGY]) overrides.  [?dest] ranks
    with that destination's calibration factors. *)
let choose ?force ?dest net cpu site =
  let costs = List.map (estimate net cpu site) Strategies.all in
  let ranked =
    List.stable_sort
      (fun a b -> compare (calibrated_total ?dest a) (calibrated_total ?dest b))
      costs
  in
  match force with
  | Some s ->
      let chosen = List.find (fun c -> c.strategy = s) costs in
      { chosen; forced = true; ranked }
  | None -> { chosen = List.hd ranked; forced = false; ranked }

(** The [XRPC_FORCE_STRATEGY] debug override, when it names one of the §5
    strategies.  (The same variable also accepts the RPC-level modes
    [bulk]/[singles]/[auto], handled by [Peer.make_context].) *)
let force_of_env () =
  match Sys.getenv_opt "XRPC_FORCE_STRATEGY" with
  | Some s -> Strategies.of_string s
  | None -> None

let cost_line c =
  Printf.sprintf
    "%-22s est=%8.3fms (cal %8.3fms)  msgs=%d out=%dB in=%dB net=%.3fms \
     cpu=%.3fms"
    (Strategies.name c.strategy)
    (total c) (calibrated_total c) c.messages c.bytes_out c.bytes_in
    c.network_ms c.cpu_ms

(** Human rendering for [:explain]: the winner plus every rejected
    alternative with its estimated cost. *)
let explain_decision d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "chosen: %s%s\n"
       (Strategies.name d.chosen.strategy)
       (if d.forced then " (forced by XRPC_FORCE_STRATEGY)" else ""));
  List.iter
    (fun c ->
      let tag = if c.strategy = d.chosen.strategy then "->" else "  " in
      Buffer.add_string buf (Printf.sprintf "%s %s\n" tag (cost_line c)))
    d.ranked;
  Buffer.contents buf

let decision_json d =
  let jstr s = "\"" ^ Xrpc_obs.Metrics.json_escape s ^ "\"" in
  let cost_json c =
    Printf.sprintf
      "{\"strategy\":%s,\"messages\":%d,\"bytes_out\":%d,\"bytes_in\":%d,\"network_ms\":%.6f,\"cpu_ms\":%.6f,\"total_ms\":%.6f,\"calibrated_ms\":%.6f}"
      (jstr (Strategies.short_name c.strategy))
      c.messages c.bytes_out c.bytes_in c.network_ms c.cpu_ms (total c)
      (calibrated_total c)
  in
  Printf.sprintf "{\"chosen\":%s,\"forced\":%b,\"ranked\":[%s]}"
    (jstr (Strategies.short_name d.chosen.strategy))
    d.forced
    (String.concat "," (List.map cost_json d.ranked))

(* ------------------------------------------------------------------ *)
(* Live-statistics seeding                                             *)
(* ------------------------------------------------------------------ *)

(** Network time a profiled run would cost under [net], from the
    per-destination message/byte counters ([Profile.note_send]/[note_recv]
    feed these) — measurement side of the feedback loop when the transport
    itself has no virtual clock. *)
let profile_network_ms net (p : Profile.t) =
  List.fold_left
    (fun acc (_, d) ->
      acc
      +. network_ms_of net
           ~messages:(2 * d.Profile.d_msgs)
           ~bytes:(d.Profile.d_bytes_out + d.Profile.d_bytes_in))
    0. (Profile.dests p)

(** Total remote CPU ([serverProfile] phases) reported in a profile —
    Table 4's measured counterpart. *)
let profile_remote_cpu_ms (p : Profile.t) =
  List.fold_left
    (fun acc (_, d) ->
      List.fold_left (fun a (_, ms) -> a +. ms) acc d.Profile.d_remote)
    0. (Profile.dests p)

(* ------------------------------------------------------------------ *)
(* Profiler annotation hook (Table 2 on live Bulk RPC nodes)           *)
(* ------------------------------------------------------------------ *)

(** Install a Table-2 estimator into the evaluator: every profiled Bulk
    RPC node gets an [optimizer:] annotation comparing the bulk message it
    just sent against the one-at-a-time alternative. *)
let install_estimator ?(net = default_net)
    ?(bytes_per_call = default_msg_overhead / 4) () =
  Eval.rpc_estimate_hook :=
    Some
      (fun ~fn ~ncalls ~ndests ->
        let bulk, singles = estimate_rpc net ~ncalls ~bytes_per_call () in
        Some
          (Printf.sprintf
             "table2 %s: %d call%s to %d dest%s bulk=%.3fms singles=%.3fms \
              (%.1fx)"
             fn ncalls
             (if ncalls = 1 then "" else "s")
             ndests
             (if ndests = 1 then "" else "s")
             bulk singles
             (if bulk > 0. then singles /. bulk else 1.)))

let uninstall_estimator () = Eval.rpc_estimate_hook := None
