(** Unified XRPC server façade — the serving-side twin of {!Xrpc_client}.

    One front door for everything a hosting process does: build a
    {!config} (port, worker executor, connection limits, flight-recorder
    threshold, tracing), get the standard monitoring routes registered
    declaratively, {!start}/{!stop} the HTTP core, and observe it with
    {!stats}.  The [xrpc-server] binary is flag parsing plus calls into
    this module; embedders get the same server the CLI runs.

    {[
      let peer = Xrpc_peer.Peer.create "xrpc://127.0.0.1:8080" in
      let server =
        Xrpc_server.(
          create ~config:(config ~port:8080 ~max_connections:10_000 ()) peer)
      in
      let _port = Xrpc_server.start server in
      ...
      Xrpc_server.stop server
    ]}

    The default core is the readiness-driven event loop
    ({!Xrpc_net.Http.Event_loop}): one poll(2) loop over non-blocking
    sockets with per-connection state machines, XQuery execution on a
    bounded worker pool, SOAP requests parsed straight out of connection
    buffers and replies serialized once into reused output buffers.
    [~thread_per_conn:true] selects the original thread-per-connection
    baseline for comparison. *)

(** {2 Configuration} *)

type config = {
  port : int;  (** listen port (0 picks a free one; see {!port}) *)
  backlog : int;
  max_connections : int option;
      (** beyond this many open connections, new ones get an immediate
          503 and are closed *)
  workers : int;  (** size of the query-execution pool (event loop) *)
  executor : Xrpc_net.Executor.t option;
      (** overrides [workers] with a caller-owned executor *)
  thread_per_conn : bool;  (** baseline core instead of the event loop *)
  slow_ms : float;  (** flight-recorder pinning threshold *)
  trace : bool;  (** enable tracing; log a span tree per SOAP request *)
  outgoing : bool;
      (** wire the peer's own [execute at] dispatch through an HTTP
          {!Xrpc_client} (pooled keep-alive, parallel fan-out) *)
  cluster_peers : string list;
      (** other federation members [/clusterz] scrapes (their built-in
          [telemetry] function, in parallel over the outgoing client) *)
}

val config :
  ?port:int ->
  ?backlog:int ->
  ?max_connections:int ->
  ?workers:int ->
  ?executor:Xrpc_net.Executor.t ->
  ?thread_per_conn:bool ->
  ?slow_ms:float ->
  ?trace:bool ->
  ?outgoing:bool ->
  ?cluster_peers:string list ->
  unit ->
  config
(** Builder with the defaults: port 8080, backlog 128, no connection
    cap, 4 workers, event loop, 250 ms slow threshold, tracing off,
    outgoing HTTP client wired, no cluster peers. *)

val default_config : config

type t

(** {2 Lifecycle} *)

val create : ?config:config -> Xrpc_peer.Peer.t -> t
(** Build a server around [peer]: configures the flight recorder,
    optionally enables tracing (span ids tagged with the port so traces
    stitched across processes cannot collide), wires the peer's outgoing
    transport through an {!Xrpc_client} (unless [~outgoing:false]), and
    registers the {{!section-routes} default monitoring routes}.  The
    socket is not opened until {!start}. *)

val start : t -> int
(** Bind and serve; returns the bound port (useful with [~port:0]).
    Idempotent — a second [start] returns the running server's port.
    GET routes answer from the route table; everything else is a SOAP
    XRPC request handled by the peer. *)

val stop : t -> unit
(** Shut the HTTP core down (close every connection, release the port,
    join the loop thread) and stop any worker pool [start] created.
    The façade can be started again afterwards. *)

val port : t -> int
(** Bound port once started, configured port before. *)

val peer : t -> Xrpc_peer.Peer.t

val client : t -> Xrpc_client.t option
(** The outgoing HTTP client wired at {!create} time (unless
    [~outgoing:false]). *)

(** {2 Observation} *)

val stats : t -> Xrpc_net.Evloop.stats
(** Lifetime counters of the serving core: accepted / active / served /
    rejected(503) / accept_errors / client disconnects.  Zeros before
    {!start}. *)

val stats_text : t -> string
(** The [/statz] route body: mode, the {!stats} counters, and the
    windowed rates / loop-lag p99 / queue depths from the sliding-window
    series. *)

val cluster_snapshots : t -> Xrpc_obs.Telemetry.snapshot list
(** This peer's own snapshot plus one per configured [cluster_peers]
    member, scraped in parallel via each peer's built-in [telemetry]
    XRPC function.  A peer that cannot be reached yields an
    ["unreachable"] pseudo-snapshot rather than an exception. *)

val cluster_view : t -> Xrpc_obs.Telemetry.cluster_view
(** {!cluster_snapshots} merged: the [/clusterz](.json) body. *)

(** {2:routes Routes}

    [create] registers the standard monitoring surface in one place
    (instead of ad-hoc dispatch in the binary): [/metrics](.json)
    (cumulative registry + windowed series), [/windowz.json],
    [/healthz](.json) (liveness + readiness with structured reasons),
    [/clusterz](.json) (federation-wide scrape),
    [/requestz](.json), [/slowz], [/cachez](.json), [/shardz](.json,
    [?keys=a,b]), [/optimizerz], [/tracez?id=N[&format=tree]], [/statz]
    and [/routez] (the table itself).  GET requests whose path matches a
    route are answered by its handler; unmatched requests fall through
    to the peer's SOAP handler. *)

val add_route :
  t -> path:string -> doc:string -> (query:string -> string) -> unit
(** Register (or append) a route.  [handle ~query] receives the raw
    query string ([k=v&k2=v2]); use {!query_param} to pick values. *)

val routes : t -> (string * string) list
(** [(path, doc)] pairs, registration order. *)

val query_param : string -> string -> string option
(** [query_param query key] — the value of [key] in a raw query string. *)

val split_path : string -> string * string
(** Split [/route?query] into [("/route", "query")]. *)

(** {2 Data loading} *)

val load_directory : t -> string -> int * int
(** Load every [*.xml] file in a directory as a queryable document (by
    file name) and register every [*.xq] library module under its
    declared namespace URI (file name as at-hint).  Returns
    [(documents, modules)] counts; non-library-module [.xq] files and a
    missing directory are logged and skipped. *)
