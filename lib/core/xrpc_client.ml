(** Unified XRPC client façade.

    One front door for everything the query-originating site does on the
    wire, replacing the scattered entry points (raw {!Transport} records,
    [Http.transport] keyword soup, hand-built {!Message.request}s):

    {[
      let client =
        Xrpc_client.(connect_http ~config:(config ~policy ~keep_alive:true
                                             ~executor:(Executor.pool 8) ()) ())
      in
      let films =
        Xrpc_client.call client ~dest:"xrpc://y:8080" ~module_uri:"films"
          ~fn:"filmsByActor" [ [ Xdm.str "Sean Connery" ] ]
    ]}

    A client is a {!Transport.t} plus a {!config}: the recovery policy,
    the dispatch {!Executor}, connection keep-alive, and tracing.  Every
    outgoing request is stamped with a unique idempotency key (so the
    at-least-once transport never re-executes updating functions), faults
    come back as typed {!Xrpc_error.Error} exceptions, and multi-peer
    calls fan out through the configured executor. *)

module Transport = Xrpc_net.Transport
module Executor = Xrpc_net.Executor
module Xrpc_error = Xrpc_net.Xrpc_error
module Simnet = Xrpc_net.Simnet
module Http = Xrpc_net.Http
module Message = Xrpc_soap.Message
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile
module Metrics = Xrpc_obs.Metrics
module Xdm = Xrpc_xml.Xdm

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  policy : Transport.policy option;
  executor : Executor.t;
  seed : int;  (** deterministic backoff jitter *)
  tracing : bool;  (** enable the global tracer on connect *)
  keep_alive : bool;  (** HTTP: pool one connection per destination *)
  default_port : int;  (** HTTP: port for xrpc:// URIs without one *)
  result_cache : bool;
      (** allow serving peers to answer this client's read-only calls from
          their semantic result caches (default); [false] stamps every
          request [cache="off"] *)
  strategy : Strategies.strategy option;
      (** pin {!choose_strategy} to one §5 strategy instead of letting the
          cost model rank them (the [~strategy] config counterpart of the
          [XRPC_FORCE_STRATEGY] env override) *)
}

let config ?policy ?(executor = Executor.sequential) ?(seed = 0)
    ?(tracing = false) ?(keep_alive = false) ?(default_port = 8080)
    ?(result_cache = true) ?strategy () =
  {
    policy;
    executor;
    seed;
    tracing;
    keep_alive;
    default_port;
    result_cache;
    strategy;
  }

let default_config = config ()

type t = {
  transport : Transport.t;
  policied : Transport.policied option;
      (** present when [config.policy] wrapped the transport; exposes the
          policy layer's stats and breakers *)
  executor : Executor.t;
  origin : string;  (** identity stamped into idempotency keys *)
  mutable idem_seq : int;
  seq_lock : Mutex.t;
  mutable cache_ok : bool;
      (** default for requests without an explicit [?cache] argument *)
  mutable forced_strategy : Strategies.strategy option;
      (** from [config.strategy]; pins {!choose_strategy} *)
}

(* ------------------------------------------------------------------ *)
(* Connecting                                                          *)
(* ------------------------------------------------------------------ *)

let make ?(origin = "xrpc://client") ~config:cfg ~executor transport policied =
  if cfg.tracing then Trace.set_enabled true;
  {
    transport;
    policied;
    executor;
    origin;
    idem_seq = 0;
    seq_lock = Mutex.create ();
    cache_ok = cfg.result_cache;
    forced_strategy = cfg.strategy;
  }

(** Front an arbitrary transport.  With [config.policy], the recovery
    policy runs on the wall clock. *)
let connect_transport ?(config = default_config) ?origin raw =
  match config.policy with
  | None -> make ?origin ~config ~executor:config.executor raw None
  | Some policy ->
      let p =
        Transport.with_policy ~policy ~seed:config.seed
          ~executor:config.executor
          ~now:(fun () -> Unix.gettimeofday () *. 1000.)
          ~sleep:(fun ms -> Unix.sleepf (ms /. 1000.))
          raw
      in
      make ?origin ~config ~executor:config.executor (Transport.transport p)
        (Some p)

(** Front an already-policied transport (e.g. a cluster's shared policy
    layer), keeping its stats and breakers visible. *)
let connect_policied ?(config = default_config) ?origin p =
  make ?origin ~config ~executor:config.executor (Transport.transport p)
    (Some p)

(** Front the deterministic simulated network.  The executor is {e forced
    sequential} — Simnet owns a virtual clock and is single-threaded, so
    this is the mode whose seeded chaos runs replay bit-identically. *)
let connect_simnet ?(config = default_config) ?origin net =
  let executor = Executor.sequential in
  let raw = Simnet.transport net in
  match config.policy with
  | None -> make ?origin ~config ~executor raw None
  | Some policy ->
      let p =
        Transport.with_policy ~policy ~seed:config.seed ~executor
          ~now:(fun () -> net.Simnet.clock_ms)
          ~sleep:(Simnet.sleep net) raw
      in
      make ?origin ~config ~executor (Transport.transport p) (Some p)

(** Front real HTTP.  The policy's [timeout_ms] doubles as the socket
    timeout; [config.keep_alive] pools one connection per destination. *)
let connect_http ?(config = default_config) ?origin () =
  let raw =
    Http.transport ~default_port:config.default_port
      ?timeout_ms:(Option.map (fun p -> p.Transport.timeout_ms) config.policy)
      ~executor:config.executor ~keep_alive:config.keep_alive ()
  in
  connect_transport ~config ?origin raw

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let transport t = t.transport
let executor t = t.executor
let policy_stats t = Option.map Transport.stats t.policied
let breaker t dest = Option.map (fun p -> Transport.breaker_state p dest) t.policied

let set_result_caching t on = t.cache_ok <- on
let result_caching t = t.cache_ok

(* ------------------------------------------------------------------ *)
(* Raw calls                                                           *)
(* ------------------------------------------------------------------ *)

(* Per-destination traffic series, labeled Prometheus-style; resolved per
   call (a registry lookup), which is noise next to a network round trip. *)
let m_dest_requests dest =
  Metrics.counter (Metrics.with_labels "client.requests" [ ("dest", dest) ])

let m_dest_bytes_out dest =
  Metrics.counter (Metrics.with_labels "client.bytes_out" [ ("dest", dest) ])

let m_dest_bytes_in dest =
  Metrics.counter (Metrics.with_labels "client.bytes_in" [ ("dest", dest) ])

let note_exchange ~dest ~out_bytes ~in_bytes =
  Metrics.incr (m_dest_requests dest);
  Metrics.incr_by (m_dest_bytes_out dest) out_bytes;
  Metrics.incr_by (m_dest_bytes_in dest) in_bytes;
  if Profile.enabled () then begin
    Profile.note_send ~dest ~bytes:out_bytes;
    Profile.note_recv ~dest ~bytes:in_bytes
  end

(* unspanned sends: the typed calls open the span themselves so response
   decoding (and its trace events, e.g. remote-cache-hit) happens inside
   it; the public raw entry points wrap these in the same spans *)
let send_raw t ~dest body =
  let raw = t.transport.Transport.send ~dest body in
  note_exchange ~dest ~out_bytes:(String.length body)
    ~in_bytes:(String.length raw);
  raw

let send_raw_bulk t pairs =
  let raws = t.transport.Transport.send_parallel pairs in
  List.iter2
    (fun (dest, body) raw ->
      note_exchange ~dest ~out_bytes:(String.length body)
        ~in_bytes:(String.length raw))
    pairs raws;
  raws

let span_call ~dest f = Trace.with_span ~detail:dest "client.call" f

let span_scatter ~n f =
  Trace.with_span ~detail:(string_of_int n ^ " peers") "client.scatter" f

let call_raw t ~dest body = span_call ~dest (fun () -> send_raw t ~dest body)

let call_raw_bulk t pairs =
  span_scatter ~n:(List.length pairs) (fun () -> send_raw_bulk t pairs)

(* ------------------------------------------------------------------ *)
(* Typed calls                                                         *)
(* ------------------------------------------------------------------ *)

let fresh_idem_key t =
  Mutex.lock t.seq_lock;
  t.idem_seq <- t.idem_seq + 1;
  let seq = t.idem_seq in
  Mutex.unlock t.seq_lock;
  Printf.sprintf "%s/%d" t.origin seq

let request t ?query_id ?(updating = false) ?(fragments = false) ?cache
    ~module_uri ?(location = "") ~fn calls =
  {
    Message.module_uri;
    location;
    method_ = fn;
    arity = (match calls with [] -> 0 | params :: _ -> List.length params);
    updating;
    fragments;
    query_id;
    idem_key = Some (fresh_idem_key t);
    cache_ok = (match cache with Some b -> b | None -> t.cache_ok);
    calls;
  }

(* per-destination remote-cache observability: how often this client's
   calls were answered from the serving peer's result cache, and the last
   database version each destination reported *)
let m_dest_cache_hits dest =
  Metrics.counter
    (Metrics.with_labels "client.remote_cache_hits" [ ("dest", dest) ])

let m_dest_db_version dest =
  Metrics.gauge
    (Metrics.with_labels "client.remote_db_version" [ ("dest", dest) ])

(* a Fault reply becomes the typed error it round-trips as *)
let decode ~dest raw =
  let msg =
    if Profile.enabled () then begin
      (* pick up the serving peer's phase breakdown from the header *)
      let msg, server_profile = Message.of_string_profiled raw in
      Option.iter (fun p -> Profile.note_remote ~dest p) server_profile;
      msg
    end
    else Message.of_string raw
  in
  match msg with
  | Message.Response r ->
      if r.Message.cached then begin
        Metrics.incr (m_dest_cache_hits dest);
        Trace.event ~detail:dest "remote-cache-hit"
      end;
      Option.iter
        (fun v -> Metrics.set (m_dest_db_version dest) (float_of_int v))
        r.Message.db_version;
      r.Message.results
  | Message.Fault f ->
      raise
        (Xrpc_error.Error
           (Xrpc_error.of_soap_fault ~dest ~code:f.Message.fault_code
              f.Message.reason))
  | _ ->
      Xrpc_error.error
        ~kind:(Xrpc_error.Protocol "unexpected-reply")
        ~dest "expected a response or fault"

let call_bulk t ~dest ?query_id ?updating ?fragments ?cache ~module_uri
    ?location ~fn calls =
  let req =
    request t ?query_id ?updating ?fragments ?cache ~module_uri ?location ~fn
      calls
  in
  if Profile.enabled () then Profile.note_calls ~dest (List.length calls);
  span_call ~dest @@ fun () ->
  decode ~dest (send_raw t ~dest (Message.to_string (Message.Request req)))

let call t ~dest ?query_id ?updating ?fragments ?cache ~module_uri ?location
    ~fn params =
  match
    call_bulk t ~dest ?query_id ?updating ?fragments ?cache ~module_uri
      ?location ~fn [ params ]
  with
  | seq :: _ -> seq
  | [] -> []  (* updating requests carry no results *)

(** [call] with profiling on for its duration: returns the result together
    with the finished profile — per-destination messages/bytes and, when
    the serving peer measured them, its parse/compile/exec/commit phase
    costs from the response header. *)
let call_profiled t ~dest ?query_id ?updating ?fragments ?cache ~module_uri
    ?location ~fn params =
  Profile.profiled ~label:(fn ^ " @ " ^ dest) (fun () ->
      call t ~dest ?query_id ?updating ?fragments ?cache ~module_uri ?location
        ~fn params)

(** One single-call request per destination, dispatched concurrently
    through the client's executor. *)
let call_scatter t ?query_id ?updating ?fragments ?cache ~module_uri ?location
    ~fn dest_params =
  let pairs =
    List.map
      (fun (dest, params) ->
        let req =
          request t ?query_id ?updating ?fragments ?cache ~module_uri ?location
            ~fn [ params ]
        in
        (dest, Message.to_string (Message.Request req)))
      dest_params
  in
  span_scatter ~n:(List.length pairs) @@ fun () ->
  List.map2
    (fun (dest, _) raw ->
      match decode ~dest raw with seq :: _ -> seq | [] -> [])
    dest_params
    (send_raw_bulk t pairs)

(* ------------------------------------------------------------------ *)
(* Sharded scatter-gather                                              *)
(* ------------------------------------------------------------------ *)

module Shard = Xrpc_peer.Shard
module Gather = Xrpc_algebra.Gather

(** How a shard map turns into scatter legs.  [By_owner] sends every live
    member one call asking for the parts it primarily owns (plus, as
    failover, the parts of every dead owner — its replicas hold copies);
    [Broadcast] asks every live member for everything it stores.
    Broadcast legs over-answer — only replication-factor of the ring is
    returned more than once — and rely on the gather merge's seq-dedup,
    which makes them robust to a rebalance racing the query. *)
type scatter_mode = By_owner | Broadcast

(** The legs of a sharded fan-out: [(dest, owners)] — call [dest], asking
    for the parts tagged with each owner in [owners].  [alive] filters the
    ring's members (default: all live); raises {!Xrpc_error.Error}
    ([Unreachable]) when no member is live. *)
let plan_scatter ?(mode = By_owner) ?alive shard =
  let members = Shard.members shard in
  let is_alive = match alive with Some f -> f | None -> fun _ -> true in
  let live = List.filter is_alive members in
  if live = [] then
    Xrpc_error.error
      ~kind:Xrpc_error.Unreachable
      ~dest:"xrpc://shard" "scatter: every shard member is down";
  match mode with
  | Broadcast -> List.map (fun m -> (m, members)) live
  | By_owner ->
      let dead = List.filter (fun m -> not (is_alive m)) members in
      List.map (fun m -> (m, m :: dead)) live

(** Scatter a per-owner collection function over a shard ring and merge
    the partial answers (dedup by [@seq], order by [@seq] — see
    {!Xrpc_algebra.Gather}).  [fn] at each member receives the owner URIs
    it should answer for as its first parameter (an [xs:string*]), then
    [params].  One leg failing raises that leg's typed
    {!Xrpc_error.Error}; no partial result is ever returned. *)
let call_gather t ?(mode = By_owner) ?alive ~shard ?query_id ?cache
    ~module_uri ?location ~fn ?(params = []) () =
  let legs = plan_scatter ~mode ?alive shard in
  let dest_params =
    List.map
      (fun (dest, owners) -> (dest, List.map Xdm.str owners :: params))
      legs
  in
  let partials =
    call_scatter t ?query_id ?cache ~module_uri ?location ~fn dest_params
  in
  Gather.merge partials

(* ------------------------------------------------------------------ *)
(* Asynchronous calls                                                  *)
(* ------------------------------------------------------------------ *)

type 'a future = 'a Executor.future

let call_async t ~dest ?query_id ?updating ?fragments ?cache ~module_uri
    ?location ~fn params =
  Executor.submit t.executor (fun () ->
      call t ~dest ?query_id ?updating ?fragments ?cache ~module_uri ?location
        ~fn params)

let await = Executor.await
let await_result = Executor.await_result

(* ------------------------------------------------------------------ *)
(* Cost-based strategy choice                                          *)
(* ------------------------------------------------------------------ *)

let set_strategy t s = t.forced_strategy <- s
let strategy t = t.forced_strategy

(** Rank the §5 strategies for [site] and return the full decision
    (chosen plan + rejected alternatives with their estimated costs).
    Force precedence: explicit [?force], then the client's configured
    [~strategy], then [XRPC_FORCE_STRATEGY]. *)
let choose_strategy t ?force ?dest ?(net = Cost.default_net)
    ?(cpu = Cost.zero_cpu) site =
  let force =
    match force with
    | Some _ -> force
    | None -> (
        match t.forced_strategy with
        | Some _ as s -> s
        | None -> Cost.force_of_env ())
  in
  Cost.choose ?force ?dest net cpu site

(** Probe one remote function and seed the optimizer's site statistics
    from what actually came back: the returned row count and payload
    bytes become the pushdown terms of [site], measured (not guessed) the
    way the feedback loop expects.  Returns the updated site and the
    probe's profile (which also carries [serverProfile] phase costs for
    the CPU term). *)
let measure_site t ~dest ?(site = Cost.default_site) ~module_uri ?location ~fn
    params =
  let results, profile =
    call_profiled t ~dest ~module_uri ?location ~fn params
  in
  let bytes_in =
    match List.assoc_opt dest (Profile.dests profile) with
    | Some d -> d.Profile.d_bytes_in
    | None -> 0
  in
  let rows = List.length results in
  let site =
    {
      site with
      Cost.pushdown_rows = rows;
      pushdown_bytes = max 0 (bytes_in - site.Cost.msg_overhead_bytes);
    }
  in
  (site, profile)
