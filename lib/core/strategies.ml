(** Distributed query execution strategies expressed in XRPC — §5.

    The paper shows that XRPC is expressive enough to serve as the target
    language of a distributed query optimizer by hand-writing four plans
    for query Q7 (persons at peer A joined with closed auctions at peer B):

    - {e data shipping}: plain XQuery, [fn:doc("xrpc://B/auctions.xml")]
      pulls the whole remote document;
    - {e predicate pushdown}: a remote function returns only the
      closed_auction nodes;
    - {e execution relocation}: the whole join runs at B, which
      data-ships persons from A;
    - {e distributed semi-join}: a remote selection function is called
      once per person — under Bulk RPC a single message carrying all keys,
      i.e. the classical semi-join.

    Automatic rewriting is future work in the paper; like the paper we
    provide the plans themselves, parameterized by peer URIs and document
    names so they run on any workload with the same shape. *)

type q7 = {
  local_doc : string;  (** e.g. "persons.xml" (at the coordinating peer) *)
  remote_uri : string;  (** e.g. "xrpc://B" *)
  remote_doc : string;  (** e.g. "auctions.xml" *)
  module_ns : string;  (** namespace of the helper module at B *)
  module_at : string;  (** at-hint for the helper module *)
}

(** The helper module the paper calls [functions_b]: Q_B1 (predicate
    pushdown), Q_B2 (execution relocation), Q_B3 (semi-join probe). *)
let functions_b q =
  Printf.sprintf
    {|module namespace b = %S;
declare function b:Q_B1() as node()*
{ doc(%S)//closed_auction };
declare function b:Q_B2($personsURL as xs:string) as node()*
{ for $p in doc($personsURL)//person,
      $ca in doc(%S)//closed_auction
  where $p/@id = $ca/buyer/@person
  return <result>{$p, $ca/annotation}</result>
};
declare function b:Q_B3($pid as xs:string) as node()*
{ doc(%S)//closed_auction[./buyer/@person = $pid] };
|}
    q.module_ns q.remote_doc q.remote_doc q.remote_doc

(** Q7 as pure data shipping (the input a distributed optimizer would see). *)
let data_shipping q =
  Printf.sprintf
    {|for $p in doc(%S)//person,
    $ca in doc("%s/%s")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>|}
    q.local_doc q.remote_uri q.remote_doc

(** Q7_1: predicate pushdown — ship only the closed auctions. *)
let predicate_pushdown q =
  Printf.sprintf
    {|import module namespace b = %S at %S;
for $p in doc(%S)//person,
    $ca in execute at {%S} { b:Q_B1() }
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>|}
    q.module_ns q.module_at q.local_doc q.remote_uri

(** Q7_2: execution relocation — run everything at B. *)
let execution_relocation ~local_uri q =
  Printf.sprintf
    {|import module namespace b = %S at %S;
execute at {%S} { b:Q_B2("%s/%s") }|}
    q.module_ns q.module_at q.remote_uri local_uri q.local_doc

(** Q7_3: distributed semi-join — the XRPC call has a loop-dependent
    parameter; Bulk RPC turns the loop into one message of all keys. *)
let distributed_semijoin q =
  Printf.sprintf
    {|import module namespace b = %S at %S;
for $p in doc(%S)//person
let $ca := execute at {%S} { b:Q_B3(string($p/@id)) }
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>|}
    q.module_ns q.module_at q.local_doc q.remote_uri

type strategy = Data_shipping | Predicate_pushdown | Execution_relocation | Distributed_semijoin

let all = [ Data_shipping; Predicate_pushdown; Execution_relocation; Distributed_semijoin ]

let name = function
  | Data_shipping -> "data shipping"
  | Predicate_pushdown -> "predicate push-down"
  | Execution_relocation -> "execution relocation"
  | Distributed_semijoin -> "distributed semi-join"

(** Machine-friendly one-word tag (bench JSON keys, env overrides). *)
let short_name = function
  | Data_shipping -> "datashipping"
  | Predicate_pushdown -> "pushdown"
  | Execution_relocation -> "relocation"
  | Distributed_semijoin -> "semijoin"

(** Parse a strategy name as written by a human: accepts the [short_name]
    tags, the display [name]s (spaces/hyphens ignored), and the common
    abbreviations used in the paper's figures. *)
let of_string s =
  let squash = Buffer.create 16 in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char squash c
      | 'A' .. 'Z' -> Buffer.add_char squash (Char.lowercase_ascii c)
      | _ -> ())
    s;
  match Buffer.contents squash with
  | "datashipping" | "dataship" | "ship" | "plain" -> Some Data_shipping
  | "pushdown" | "predicatepushdown" | "predpushdown" ->
      Some Predicate_pushdown
  | "relocation" | "executionrelocation" | "relocate" ->
      Some Execution_relocation
  | "semijoin" | "distributedsemijoin" | "distsemijoin" ->
      Some Distributed_semijoin
  | _ -> None

let query ~local_uri q = function
  | Data_shipping -> data_shipping q
  | Predicate_pushdown -> predicate_pushdown q
  | Execution_relocation -> execution_relocation ~local_uri q
  | Distributed_semijoin -> distributed_semijoin q
