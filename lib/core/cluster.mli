(** Convenience layer: wire a set of XRPC peers over a transport.

    [create ~names ()] builds one {!Xrpc_peer.Peer} per name on a shared
    deterministic {!Xrpc_net.Simnet} (names become [xrpc://NAME] URIs),
    registers each peer's handler with the network, and points every
    peer's outgoing transport at it.  Wrapper peers (§4) can be attached
    with [add_wrapper].  [serve_http] exposes any peer of the cluster over
    real HTTP for cross-process use; [client] is the cluster's
    {!Xrpc_client} façade. *)

type t
(** A cluster: the simulated network, the optional shared policy layer,
    and the peers and wrappers living on it.  The policy layer's breaker
    table is internal — observe it through {!policy_stats}. *)

val create :
  ?config:Xrpc_net.Simnet.config ->
  ?peer_config:Xrpc_peer.Peer.config ->
  ?faults:Xrpc_net.Simnet.fault_config ->
  ?policy:Xrpc_net.Transport.policy ->
  ?executor:Xrpc_net.Executor.t ->
  names:string list ->
  unit ->
  t
(** [create ?faults ?policy ~names ()] — [faults] installs seeded fault
    injection on the simulated network; [policy] wraps every peer's
    outgoing transport in the retry/timeout/circuit-breaker layer, with
    backoff sleeps and breaker cooldowns measured on the {e virtual}
    clock so chaos runs stay deterministic.  [executor] is handed to the
    policy layer and to every peer's 2PC coordinator; leave it sequential
    (the default) — Simnet is single-threaded, and sequential dispatch is
    what keeps seeded chaos runs replayable. *)

val net : t -> Xrpc_net.Simnet.t
(** The underlying simulated network (register extra handlers, advance
    the virtual clock, ...). *)

val peer : t -> string -> Xrpc_peer.Peer.t

val add_peer : t -> string -> Xrpc_peer.Peer.t
(** Add one more peer to a live cluster: same config, transport, executor
    and simulated network as the founding members, with every
    {!register_module_everywhere} module replayed onto it.  Returns the
    existing peer if the name is taken. *)

val add_wrapper : t -> ?join_detect:bool -> string -> Xrpc_peer.Wrapper.t
val wrapper : t -> string -> Xrpc_peer.Wrapper.t

val register_module_everywhere :
  t -> uri:string -> ?location:string -> string -> unit
(** Register the same module on every peer and wrapper (the paper's
    examples assume the module at its at-hint URL is reachable from
    everywhere). *)

val serve_http : t -> string -> ?port:int -> unit -> Xrpc_net.Http.server * string
(** Expose a peer over real HTTP (loopback); returns the server handle
    and the xrpc URI (with port) remote peers should use. *)

val client : t -> Xrpc_client.t
(** The cluster's {!Xrpc_client} façade: calls go through the shared
    policy layer when one was configured, straight onto the simulated
    network otherwise.  Built once, on first use. *)

(** {2 Tracing and clocks} *)

val enable_tracing : t -> unit
(** Point the global tracer at this cluster's virtual clock and enable
    it: span timings become deterministic simulated milliseconds, so a
    seeded chaos schedule replays to a bit-identical span tree. *)

val disable_tracing : unit -> unit

(** Run a thunk with query profiling on, timings on this cluster's
    virtual clock; returns the result and the finished profile (plan-node
    tree, per-operator rows/times, per-destination traffic and remote
    phase breakdown). *)
val profiled : t -> ?label:string -> (unit -> 'a) -> 'a * Xrpc_obs.Profile.t
val clock_ms : t -> float
val reset_clock : t -> unit
val stats : t -> Xrpc_net.Simnet.stats
val reset_stats : t -> unit

(** {2 Fault injection} *)

val inject_faults : t -> Xrpc_net.Simnet.fault_config -> unit
val clear_faults : t -> unit
val fault_stats : t -> Xrpc_net.Simnet.fault_stats option
val crash : t -> ?after_ms:float -> string -> unit
val restart : t -> string -> unit
val partition : t -> string list -> unit
val heal : t -> unit
val policy_stats : t -> Xrpc_net.Transport.policy_stats option

val resolve_in_doubt : t -> int * int * int
(** Run {!Xrpc_peer.Peer.resolve_in_doubt} on every peer (models
    "everyone reconnects after the network recovers"); returns summed
    [(committed, aborted, still_in_doubt)]. *)

val cluster_health : t -> Xrpc_obs.Telemetry.cluster_view
(** Scrape every member's built-in [telemetry] XRPC function through the
    cluster client (fanned out on the cluster executor) and merge the
    windowed snapshots into one federation view — per-peer health and
    p99s, hot endpoints, shard-map version agreement, breaker states.
    A crashed or partitioned peer appears as ["unreachable"] rather than
    failing the scrape.  Render with
    {!Xrpc_obs.Telemetry.cluster_text}/[cluster_json]. *)

(** {2 Sharded collections}

    A cluster carries at most one {!Xrpc_peer.Shard} ring.  Records
    placed with {!place_sharded} are wrapped as
    [<part key owner seq>…</part>] elements; each ring member's [doc]
    holds every part whose replica set includes it, so any single member
    can die without losing data (with [replicas >= 2]).  Queries reach
    the slices two ways: per-key routing — [execute at
    {"xrpc://shard/<key>"}] on any peer resolves to the first {e live}
    holder of the key — and {!scatter_gather}, which fans a per-owner
    collection function out over the live members and merges the partial
    answers deduped and ordered by [seq]. *)

val set_shard_map : t -> Xrpc_peer.Shard.t option -> unit
(** Attach a ring (creating peers for members that lack one, installing
    the replica-aware liveness-filtered router on every peer) or detach
    with [None].  Re-attaching re-places any sharded collections. *)

val shard_map : t -> Xrpc_peer.Shard.t option

val alive : t -> string -> bool
(** Whether a peer is currently up on the simulated network (not crashed,
    not partitioned away). *)

val place_sharded :
  t -> ?doc:string -> ?root:string -> (string * string) list -> unit
(** Place (or replace) a sharded collection. [records] are
    [(key, inner-xml)] pairs; record [i] is tagged [seq="i+1"] and
    [owner="<its primary>"], and lands in [doc] (default ["shard.xml"],
    root element [root], default ["shard"]) on every member of its
    replica set. *)

val sharded_records : t -> ?doc:string -> unit -> (string * string) list
(** The records of a placed collection, in placement (seq) order. *)

val oracle_xml : t -> ?doc:string -> unit -> string
(** The unsharded oracle: the whole collection as one document, parts
    tagged exactly as the placed slices tag them.  Load it on a single
    reference peer; every sharded query must match that peer's answer. *)

val shard_join : t -> string -> unit
(** Peer join: create the peer if needed, hash it onto the ring,
    re-place every collection (only ~K/N parts move). *)

val shard_leave : t -> string -> unit
(** Peer leave: drop the member from the ring, re-place, and empty the
    departed peer's slices. *)

val scatter_gather :
  t ->
  ?mode:Xrpc_client.scatter_mode ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  ?params:Xrpc_xml.Xdm.sequence list ->
  unit ->
  Xrpc_xml.Xdm.sequence
(** One scatter-gather query over the ring: legs planned from the map
    filtered by Simnet liveness ({!Xrpc_client.plan_scatter}), dispatched
    through the cluster client, merged with the seq-dedup gather.  [fn]
    receives the owner URIs a leg answers for as its first parameter. *)

(** {2 Cache control} *)

val cache_stats : t -> (string * Xrpc_peer.Peer.cache_stats) list
(** Per-peer cache counters, [(name, stats)] in creation order. *)

val set_plan_caching : t -> bool -> unit
(** Toggle every peer's compiled-plan cache. *)

val set_result_caching : t -> bool -> unit
(** Toggle every peer's semantic result cache. *)

val clear_caches : t -> unit
(** Drop every peer's performance caches (plan, result, module plans). *)

val cache_stats_text : t -> string
(** Every peer's {!Xrpc_peer.Peer.cache_stats_text} block, name-prefixed. *)
