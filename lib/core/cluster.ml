(** Convenience layer: wire a set of XRPC peers over a transport.

    [create ~names ()] builds one {!Xrpc_peer.Peer} per name on a shared
    deterministic {!Xrpc_net.Simnet} (names become [xrpc://NAME] URIs),
    registers each peer's handler with the network, and points every peer's
    outgoing transport at it.  Wrapper peers (§4) can be attached with
    [add_wrapper].  [serve_http] exposes any peer of the cluster over real
    HTTP for cross-process use. *)

module Peer = Xrpc_peer.Peer
module Wrapper = Xrpc_peer.Wrapper
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Http = Xrpc_net.Http

type t = {
  net : Simnet.t;
  policied : Transport.policied option;
      (** present when the cluster was built with a retry/breaker policy;
          exposes the policy layer's stats *)
  mutable peers : (string * Peer.t) list;
  mutable wrappers : (string * Wrapper.t) list;
  mutable client_facade : Xrpc_client.t option;  (** built lazily *)
}

let net t = t.net

let uri_of_name name =
  if String.length name >= 7 && String.sub name 0 7 = "xrpc://" then name
  else "xrpc://" ^ name

(** Virtual clock derived from the simulated network (milliseconds of
    simulated time become seconds of peer-local time would be confusing —
    peers read the virtual clock in seconds). *)
let clock_of (net : Simnet.t) () = net.Simnet.clock_ms /. 1000.

(** [create ?faults ?policy ~names ()] — [faults] installs seeded fault
    injection on the simulated network; [policy] wraps every peer's
    outgoing transport in the retry/timeout/circuit-breaker layer
    ({!Transport.with_policy}), with backoff sleeps and breaker cooldowns
    measured on the {e virtual} clock so chaos runs stay deterministic.
    [executor] is handed to the policy layer and to every peer's 2PC
    coordinator; leave it sequential (the default) — Simnet is
    single-threaded, and sequential dispatch is what keeps seeded chaos
    runs replayable. *)
let create ?(config = Simnet.default_config) ?(peer_config = Peer.default_config)
    ?faults ?policy ?(executor = Xrpc_net.Executor.sequential) ~names () =
  let net = Simnet.create ~config ?faults () in
  let policied =
    Option.map
      (fun policy ->
        let seed =
          match faults with
          | Some f -> f.Simnet.fault_seed
          | None -> 0
        in
        Transport.with_policy ~policy ~seed ~executor
          ~now:(fun () -> net.Simnet.clock_ms)
          ~sleep:(Simnet.sleep net) (Simnet.transport net))
      policy
  in
  let cluster = { net; policied; peers = []; wrappers = []; client_facade = None } in
  let transport =
    match policied with
    | Some p -> Transport.transport p
    | None -> Simnet.transport net
  in
  List.iter
    (fun name ->
      let uri = uri_of_name name in
      let peer = Peer.create ~config:peer_config ~clock:(clock_of net) uri in
      Peer.set_transport peer transport;
      Peer.set_executor peer executor;
      Simnet.register net uri (Peer.handle_raw peer);
      cluster.peers <- (name, peer) :: cluster.peers)
    names;
  cluster

let peer t name =
  match List.assoc_opt name t.peers with
  | Some p -> p
  | None -> invalid_arg ("no peer named " ^ name)

(** Attach a §4 wrapper peer (an XRPC-incapable engine behind the wrapper). *)
let add_wrapper t ?(join_detect = false) name =
  let uri = uri_of_name name in
  let w = Wrapper.create ~join_detect uri in
  Simnet.register t.net uri (Wrapper.handle_raw w);
  t.wrappers <- (name, w) :: t.wrappers;
  w

let wrapper t name =
  match List.assoc_opt name t.wrappers with
  | Some w -> w
  | None -> invalid_arg ("no wrapper named " ^ name)

(** Register the same module on every peer (the paper's examples assume the
    module at its at-hint URL is reachable from everywhere). *)
let register_module_everywhere t ~uri ?location source =
  List.iter (fun (_, p) -> Peer.register_module p ~uri ?location source) t.peers;
  List.iter (fun (_, w) -> Wrapper.register_module w ~uri ?location source) t.wrappers

(** Expose a peer over real HTTP (loopback); returns the server handle and
    the xrpc URI (with port) remote peers should use. *)
let serve_http t name ?(port = 0) () =
  let p = peer t name in
  let server = Http.serve ~port (fun ~path:_ body -> Peer.handle_raw p body) in
  (server, Printf.sprintf "xrpc://127.0.0.1:%d" server.Http.port)

(** Point the global tracer at this cluster's virtual clock and enable it:
    span timings become deterministic simulated milliseconds, so a seeded
    chaos schedule replays to a bit-identical span tree. *)
let enable_tracing t =
  Xrpc_obs.Trace.set_clock (fun () -> t.net.Simnet.clock_ms);
  Xrpc_obs.Trace.set_enabled true

let disable_tracing () =
  Xrpc_obs.Trace.set_enabled false;
  Xrpc_obs.Trace.use_wall_clock ()

(** Run [f] with query profiling on, timings on this cluster's virtual
    clock: plan-node and phase times come out as deterministic simulated
    milliseconds, like {!enable_tracing} does for spans. *)
let profiled t ?label f =
  Xrpc_obs.Trace.set_clock (fun () -> t.net.Simnet.clock_ms);
  Xrpc_obs.Profile.profiled ?label f

let clock_ms t = t.net.Simnet.clock_ms
let reset_clock t = Simnet.reset_clock t.net
let stats t = t.net.Simnet.stats
let reset_stats t = Simnet.reset_stats t.net

(* -- fault-injection passthroughs ----------------------------------- *)

let inject_faults t fconfig = Simnet.inject t.net fconfig
let clear_faults t = Simnet.clear_faults t.net
let fault_stats t = Simnet.fault_stats t.net
let crash t ?after_ms name = Simnet.crash t.net ?after_ms (uri_of_name name)
let restart t name = Simnet.restart t.net (uri_of_name name)
let partition t names = Simnet.partition t.net (List.map uri_of_name names)
let heal t = Simnet.heal t.net
let policy_stats t = Option.map Transport.stats t.policied

(** The cluster's {!Xrpc_client} façade: calls go through the shared
    policy layer when one was configured, straight onto the simulated
    network otherwise.  Built once, on first use (idempotency keys stay
    monotone across calls). *)
let client t =
  match t.client_facade with
  | Some c -> c
  | None ->
      let c =
        match t.policied with
        | Some p -> Xrpc_client.connect_policied ~origin:"xrpc://coordinator" p
        | None ->
            Xrpc_client.connect_transport ~origin:"xrpc://coordinator"
              (Simnet.transport t.net)
      in
      t.client_facade <- Some c;
      c

(** Run {!Peer.resolve_in_doubt} on every peer (models "everyone
    reconnects after the network recovers"); returns summed
    [(committed, aborted, still_in_doubt)]. *)
let resolve_in_doubt t =
  List.fold_left
    (fun (c, a, d) (_, p) ->
      let c', a', d' = Peer.resolve_in_doubt p in
      (c + c', a + a', d + d'))
    (0, 0, 0) t.peers

(* ------------------------------------------------------------------ *)
(* Cache control                                                       *)
(* ------------------------------------------------------------------ *)

(** Per-peer cache counters, [(name, stats)] in creation order. *)
let cache_stats t =
  List.map (fun (name, p) -> (name, Peer.cache_stats p)) (List.rev t.peers)

let set_plan_caching t on =
  List.iter (fun (_, p) -> Peer.set_plan_caching p on) t.peers

let set_result_caching t on =
  List.iter (fun (_, p) -> Peer.set_result_caching p on) t.peers

let clear_caches t = List.iter (fun (_, p) -> Peer.clear_caches p) t.peers

(** Every peer's {!Peer.cache_stats_text} block, name-prefixed. *)
let cache_stats_text t =
  String.concat "\n"
    (List.map
       (fun (name, p) ->
         Printf.sprintf "== %s ==\n%s" name (Peer.cache_stats_text p))
       (List.rev t.peers))
