(** Convenience layer: wire a set of XRPC peers over a transport.

    [create ~names ()] builds one {!Xrpc_peer.Peer} per name on a shared
    deterministic {!Xrpc_net.Simnet} (names become [xrpc://NAME] URIs),
    registers each peer's handler with the network, and points every peer's
    outgoing transport at it.  Wrapper peers (§4) can be attached with
    [add_wrapper].  [serve_http] exposes any peer of the cluster over real
    HTTP for cross-process use. *)

module Peer = Xrpc_peer.Peer
module Wrapper = Xrpc_peer.Wrapper
module Shard = Xrpc_peer.Shard
module Database = Xrpc_peer.Database
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Http = Xrpc_net.Http
module Serialize = Xrpc_xml.Serialize
module Executor = Xrpc_net.Executor
module Telemetry = Xrpc_obs.Telemetry
module Xdm = Xrpc_xml.Xdm
module Qname = Xrpc_xml.Qname

(** One sharded collection: a named document that every ring member holds
    a slice of.  Records are [(key, inner-xml)] in placement order; the
    placement index is the record's global [seq] tag. *)
type sharded_collection = {
  sc_doc : string;
  sc_root : string;
  mutable sc_records : (string * string) list;
}

type shard_state = {
  smap : Shard.t;
  mutable collections : sharded_collection list;  (** newest first *)
}

type t = {
  net : Simnet.t;
  policied : Transport.policied option;
      (** present when the cluster was built with a retry/breaker policy;
          exposes the policy layer's stats *)
  transport : Transport.t;
      (** what every peer's outgoing calls go through (the policy layer
          when configured); kept so late-joining peers wire up the same *)
  peer_config : Peer.config;
  executor : Xrpc_net.Executor.t;
  mutable peers : (string * Peer.t) list;
  mutable wrappers : (string * Wrapper.t) list;
  mutable client_facade : Xrpc_client.t option;  (** built lazily *)
  mutable shard : shard_state option;
  mutable modules : (string * string option * string) list;
      (** every [register_module_everywhere] call, replayed onto peers
          that join later *)
}

let net t = t.net

let uri_of_name name =
  if String.length name >= 7 && String.sub name 0 7 = "xrpc://" then name
  else "xrpc://" ^ name

(** Virtual clock derived from the simulated network (milliseconds of
    simulated time become seconds of peer-local time would be confusing —
    peers read the virtual clock in seconds). *)
let clock_of (net : Simnet.t) () = net.Simnet.clock_ms /. 1000.

(* The coordinator's breaker state toward [uri] rides in that peer's
   telemetry snapshot, so /clusterz can show "breaker open to x" next to
   the peer it protects against. *)
let register_breaker_source ~policied uri =
  match policied with
  | None -> ()
  | Some p ->
      Telemetry.register_breakers ~scope:uri (fun () ->
          let st =
            match Transport.breaker_state p uri with
            | Transport.Closed -> "closed"
            | Transport.Open _ -> "open"
            | Transport.Half_open -> "half_open"
          in
          [ (uri, st) ])

(** [create ?faults ?policy ~names ()] — [faults] installs seeded fault
    injection on the simulated network; [policy] wraps every peer's
    outgoing transport in the retry/timeout/circuit-breaker layer
    ({!Transport.with_policy}), with backoff sleeps and breaker cooldowns
    measured on the {e virtual} clock so chaos runs stay deterministic.
    [executor] is handed to the policy layer and to every peer's 2PC
    coordinator; leave it sequential (the default) — Simnet is
    single-threaded, and sequential dispatch is what keeps seeded chaos
    runs replayable. *)
let create ?(config = Simnet.default_config) ?(peer_config = Peer.default_config)
    ?faults ?policy ?(executor = Xrpc_net.Executor.sequential) ~names () =
  let net = Simnet.create ~config ?faults () in
  let policied =
    Option.map
      (fun policy ->
        let seed =
          match faults with
          | Some f -> f.Simnet.fault_seed
          | None -> 0
        in
        Transport.with_policy ~policy ~seed ~executor
          ~now:(fun () -> net.Simnet.clock_ms)
          ~sleep:(Simnet.sleep net) (Simnet.transport net))
      policy
  in
  let transport =
    match policied with
    | Some p -> Transport.transport p
    | None -> Simnet.transport net
  in
  let cluster =
    {
      net;
      policied;
      transport;
      peer_config;
      executor;
      peers = [];
      wrappers = [];
      client_facade = None;
      shard = None;
      modules = [];
    }
  in
  List.iter
    (fun name ->
      let uri = uri_of_name name in
      let peer = Peer.create ~config:peer_config ~clock:(clock_of net) uri in
      Peer.set_transport peer transport;
      Peer.set_executor peer executor;
      Simnet.register net uri (Peer.handle_raw peer);
      register_breaker_source ~policied uri;
      cluster.peers <- (name, peer) :: cluster.peers)
    names;
  cluster

(** Add one more peer to a live cluster (same config, transport, executor
    and simulated network as the founding members).  No-op if the name is
    taken. *)
let add_peer t name =
  match List.assoc_opt name t.peers with
  | Some p -> p
  | None ->
      let uri = uri_of_name name in
      let peer = Peer.create ~config:t.peer_config ~clock:(clock_of t.net) uri in
      Peer.set_transport peer t.transport;
      Peer.set_executor peer t.executor;
      Simnet.register t.net uri (Peer.handle_raw peer);
      register_breaker_source ~policied:t.policied uri;
      t.peers <- (name, peer) :: t.peers;
      List.iter
        (fun (muri, location, source) ->
          Peer.register_module peer ~uri:muri ?location source)
        (List.rev t.modules);
      peer

let peer t name =
  match List.assoc_opt name t.peers with
  | Some p -> p
  | None -> invalid_arg ("no peer named " ^ name)

(** Attach a §4 wrapper peer (an XRPC-incapable engine behind the wrapper). *)
let add_wrapper t ?(join_detect = false) name =
  let uri = uri_of_name name in
  let w = Wrapper.create ~join_detect uri in
  Simnet.register t.net uri (Wrapper.handle_raw w);
  t.wrappers <- (name, w) :: t.wrappers;
  w

let wrapper t name =
  match List.assoc_opt name t.wrappers with
  | Some w -> w
  | None -> invalid_arg ("no wrapper named " ^ name)

(** Register the same module on every peer (the paper's examples assume the
    module at its at-hint URL is reachable from everywhere). *)
let register_module_everywhere t ~uri ?location source =
  t.modules <- (uri, location, source) :: t.modules;
  List.iter (fun (_, p) -> Peer.register_module p ~uri ?location source) t.peers;
  List.iter (fun (_, w) -> Wrapper.register_module w ~uri ?location source) t.wrappers

(** Expose a peer over real HTTP (loopback); returns the server handle and
    the xrpc URI (with port) remote peers should use. *)
let serve_http t name ?(port = 0) () =
  let p = peer t name in
  let server = Http.serve ~port (fun ~path:_ body -> Peer.handle_raw p body) in
  (server, Printf.sprintf "xrpc://127.0.0.1:%d" (Http.port server))

(** Point the global tracer at this cluster's virtual clock and enable it:
    span timings become deterministic simulated milliseconds, so a seeded
    chaos schedule replays to a bit-identical span tree. *)
let enable_tracing t =
  Xrpc_obs.Trace.set_clock (fun () -> t.net.Simnet.clock_ms);
  Xrpc_obs.Trace.set_enabled true

let disable_tracing () =
  Xrpc_obs.Trace.set_enabled false;
  Xrpc_obs.Trace.use_wall_clock ()

(** Run [f] with query profiling on, timings on this cluster's virtual
    clock: plan-node and phase times come out as deterministic simulated
    milliseconds, like {!enable_tracing} does for spans. *)
let profiled t ?label f =
  Xrpc_obs.Trace.set_clock (fun () -> t.net.Simnet.clock_ms);
  Xrpc_obs.Profile.profiled ?label f

let clock_ms t = t.net.Simnet.clock_ms
let reset_clock t = Simnet.reset_clock t.net
let stats t = t.net.Simnet.stats
let reset_stats t = Simnet.reset_stats t.net

(* -- fault-injection passthroughs ----------------------------------- *)

let inject_faults t fconfig = Simnet.inject t.net fconfig
let clear_faults t = Simnet.clear_faults t.net
let fault_stats t = Simnet.fault_stats t.net
let crash t ?after_ms name = Simnet.crash t.net ?after_ms (uri_of_name name)
let restart t name = Simnet.restart t.net (uri_of_name name)
let partition t names = Simnet.partition t.net (List.map uri_of_name names)
let heal t = Simnet.heal t.net
let policy_stats t = Option.map Transport.stats t.policied

(** The cluster's {!Xrpc_client} façade: calls go through the shared
    policy layer when one was configured, straight onto the simulated
    network otherwise.  Built once, on first use (idempotency keys stay
    monotone across calls). *)
let client t =
  match t.client_facade with
  | Some c -> c
  | None ->
      let c =
        match t.policied with
        | Some p -> Xrpc_client.connect_policied ~origin:"xrpc://coordinator" p
        | None ->
            Xrpc_client.connect_transport ~origin:"xrpc://coordinator"
              (Simnet.transport t.net)
      in
      t.client_facade <- Some c;
      c

(** Run {!Peer.resolve_in_doubt} on every peer (models "everyone
    reconnects after the network recovers"); returns summed
    [(committed, aborted, still_in_doubt)]. *)
let resolve_in_doubt t =
  List.fold_left
    (fun (c, a, d) (_, p) ->
      let c', a', d' = Peer.resolve_in_doubt p in
      (c + c', a + a', d + d'))
    (0, 0, 0) t.peers

(** Federation health: scrape every member's built-in [telemetry]
    function through the cluster client — so the scrape crosses the same
    simulated network, policy layer and chaos the queries do — and merge
    the snapshots into one cluster view.  A crashed or partitioned peer
    answers with a transport error and appears as ["unreachable"] in the
    view rather than failing the whole scrape. *)
let cluster_health t =
  let c = client t in
  let now = t.net.Simnet.clock_ms in
  let scrape (name, (_ : Peer.t)) =
    let uri = uri_of_name name in
    try
      let seq =
        Xrpc_client.call c ~dest:uri ~module_uri:Qname.ns_xrpc ~fn:"telemetry"
          []
      in
      Telemetry.of_wire (Xdm.string_value (Xdm.one_item ~what:"telemetry" seq))
    with e ->
      Telemetry.unreachable ~peer:uri ~at_ms:now
        ~reason:(Printexc.to_string e)
  in
  let snaps = Executor.map_list t.executor scrape (List.rev t.peers) in
  Telemetry.merge ~at_ms:now snaps

(* ------------------------------------------------------------------ *)
(* Sharded collections                                                  *)
(* ------------------------------------------------------------------ *)

let default_shard_doc = "shard.xml"

let name_of_uri uri =
  if String.length uri >= 7 && String.sub uri 0 7 = "xrpc://" then
    String.sub uri 7 (String.length uri - 7)
  else uri

let peer_by_uri t uri =
  match List.find_opt (fun (n, _) -> uri_of_name n = uri) t.peers with
  | Some (_, p) -> p
  | None -> invalid_arg ("no peer at " ^ uri)

(** The canonical record wrapper: [owner] is the key's primary at
    placement time (what a scatter leg selects on), [seq] its global
    placement index (what the gather merge dedups and orders by). *)
let part_xml ~key ~owner ~seq inner =
  Printf.sprintf "<part key=\"%s\" owner=\"%s\" seq=\"%d\">%s</part>"
    (Serialize.escape_attr key)
    (Serialize.escape_attr owner)
    seq inner

(* the slice of a collection one member stores: every part whose replica
   set includes it, in seq order *)
let member_slice st member c =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "<%s>" c.sc_root);
  List.iteri
    (fun i (key, inner) ->
      match Shard.replica_set st.smap key with
      | primary :: _ as holders when List.mem member holders ->
          Buffer.add_string buf
            (part_xml ~key ~owner:primary ~seq:(i + 1) inner)
      | _ -> ())
    c.sc_records;
  Buffer.add_string buf (Printf.sprintf "</%s>" c.sc_root);
  Buffer.contents buf

(* (re-)write every member's slice of every collection *)
let rebalance_state t st =
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          Database.add_doc_xml (peer_by_uri t m).Peer.db c.sc_doc
            (member_slice st m c))
        (Shard.members st.smap))
    st.collections

(* keys route to the first live holder; with every replica down, to the
   primary — whose typed transport error then surfaces the outage *)
let shard_router t map key =
  let holders = Shard.replica_set map key in
  match List.find_opt (Simnet.is_up t.net) holders with
  | Some m -> m
  | None -> Shard.primary map key

let install_shard_on_peers t st =
  List.iter
    (fun (_, p) ->
      Peer.set_shard_map p (Some st.smap);
      Peer.set_shard_router p (shard_router t st.smap))
    t.peers

(** Attach a shard map: every ring member without a peer is created
    ({!add_peer}), and every peer — member or not — gets the map plus a
    replica-aware, liveness-filtered router for its
    [execute at {"xrpc://shard/<key>"}] destinations.  [None] detaches.
    Re-attaching with a different map re-places any sharded
    collections. *)
let set_shard_map t map =
  match map with
  | None ->
      t.shard <- None;
      List.iter (fun (_, p) -> Peer.set_shard_map p None) t.peers
  | Some map ->
      List.iter
        (fun m -> ignore (add_peer t (name_of_uri m)))
        (Shard.members map);
      let st =
        match t.shard with
        | Some old -> { smap = map; collections = old.collections }
        | None -> { smap = map; collections = [] }
      in
      t.shard <- Some st;
      install_shard_on_peers t st;
      rebalance_state t st

let shard_map t = Option.map (fun st -> st.smap) t.shard
let alive t name = Simnet.is_up t.net (uri_of_name name)

let shard_state_exn ~what t =
  match t.shard with
  | Some st -> st
  | None -> invalid_arg (what ^ ": attach a shard map first (set_shard_map)")

(** Place (or replace) a sharded collection: [records] are
    [(key, inner-xml)] pairs; record [i] becomes
    [<part key owner seq="i+1">inner</part>] in the [doc] slice of every
    member of its replica set. *)
let place_sharded t ?(doc = default_shard_doc) ?(root = "shard") records =
  let st = shard_state_exn ~what:"place_sharded" t in
  st.collections <-
    { sc_doc = doc; sc_root = root; sc_records = records }
    :: List.filter (fun c -> c.sc_doc <> doc) st.collections;
  rebalance_state t st

let find_collection ~what st doc =
  match List.find_opt (fun c -> c.sc_doc = doc) st.collections with
  | Some c -> c
  | None -> invalid_arg (what ^ ": no sharded collection " ^ doc)

let sharded_records t ?(doc = default_shard_doc) () =
  (find_collection ~what:"sharded_records"
     (shard_state_exn ~what:"sharded_records" t)
     doc)
    .sc_records

(** The unsharded oracle: the whole collection in one document, parts
    tagged exactly as the placed slices tag them.  Load this on a
    single reference peer and any sharded query must match it. *)
let oracle_xml t ?(doc = default_shard_doc) () =
  let st = shard_state_exn ~what:"oracle_xml" t in
  let c = find_collection ~what:"oracle_xml" st doc in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "<%s>" c.sc_root);
  List.iteri
    (fun i (key, inner) ->
      Buffer.add_string buf
        (part_xml ~key ~owner:(Shard.primary st.smap key) ~seq:(i + 1) inner))
    c.sc_records;
  Buffer.add_string buf (Printf.sprintf "</%s>" c.sc_root);
  Buffer.contents buf

(** Peer join: create the peer if needed, hash it onto the ring, and
    re-place every collection (only ~K/N parts move). *)
let shard_join t name =
  let st = shard_state_exn ~what:"shard_join" t in
  ignore (add_peer t name);
  Shard.add st.smap (uri_of_name name);
  install_shard_on_peers t st;
  rebalance_state t st

(** Peer leave: drop the member from the ring, re-place, and empty the
    departed peer's slices (it no longer serves them). *)
let shard_leave t name =
  let st = shard_state_exn ~what:"shard_leave" t in
  let uri = uri_of_name name in
  Shard.remove st.smap uri;
  install_shard_on_peers t st;
  rebalance_state t st;
  match List.find_opt (fun (n, _) -> uri_of_name n = uri) t.peers with
  | Some (_, p) ->
      List.iter
        (fun c ->
          Database.add_doc_xml p.Peer.db c.sc_doc
            (Printf.sprintf "<%s></%s>" c.sc_root c.sc_root))
        st.collections
  | None -> ()

(** One scatter-gather query over the attached ring: plan legs from the
    map filtered by Simnet liveness, fan out through the cluster client,
    merge with the seq-dedup gather (see {!Xrpc_client.call_gather}). *)
let scatter_gather t ?mode ~module_uri ?location ~fn ?params () =
  let st = shard_state_exn ~what:"scatter_gather" t in
  Xrpc_client.call_gather (client t) ?mode
    ~alive:(Simnet.is_up t.net)
    ~shard:st.smap ~module_uri ?location ~fn ?params ()

(* ------------------------------------------------------------------ *)
(* Cache control                                                       *)
(* ------------------------------------------------------------------ *)

(** Per-peer cache counters, [(name, stats)] in creation order. *)
let cache_stats t =
  List.map (fun (name, p) -> (name, Peer.cache_stats p)) (List.rev t.peers)

let set_plan_caching t on =
  List.iter (fun (_, p) -> Peer.set_plan_caching p on) t.peers

let set_result_caching t on =
  List.iter (fun (_, p) -> Peer.set_result_caching p on) t.peers

let clear_caches t = List.iter (fun (_, p) -> Peer.clear_caches p) t.peers

(** Every peer's {!Peer.cache_stats_text} block, name-prefixed. *)
let cache_stats_text t =
  String.concat "\n"
    (List.map
       (fun (name, p) ->
         Printf.sprintf "== %s ==\n%s" name (Peer.cache_stats_text p))
       (List.rev t.peers))
