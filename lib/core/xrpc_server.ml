(** Unified XRPC server façade — the serving-side twin of {!Xrpc_client}.

    One front door for everything a hosting process does: build a config
    (port, worker executor, connection limits, flight-recorder threshold,
    tracing), register monitoring routes declaratively, start/stop the
    HTTP core, and observe it.  [bin/xrpc_server.ml] is flag parsing plus
    calls into this module; embedders get the same server the CLI runs.

    {[
      let peer = Xrpc_peer.Peer.create "xrpc://127.0.0.1:8080" in
      let server =
        Xrpc_server.(
          create ~config:(config ~port:8080 ~max_connections:10_000 ()) peer)
      in
      let port = Xrpc_server.start server in
      ...
      Xrpc_server.stop server
    ]}

    The default core is the readiness-driven event loop ({!Xrpc_net.Http}
    [Event_loop]): SOAP requests are parsed out of each connection's
    input buffer and replies serialized into its reused output buffer
    ({!Xrpc_peer.Peer.handle_raw_into}), with XQuery execution on a
    bounded worker pool so slow queries never stall the accept/read/write
    loop.  [~thread_per_conn:true] selects the original
    thread-per-connection baseline. *)

module Peer = Xrpc_peer.Peer
module Http = Xrpc_net.Http
module Evloop = Xrpc_net.Evloop
module Executor = Xrpc_net.Executor
module Metrics = Xrpc_obs.Metrics
module Window = Xrpc_obs.Window
module Slo = Xrpc_obs.Slo
module Telemetry = Xrpc_obs.Telemetry
module Trace = Xrpc_obs.Trace
module Flight_recorder = Xrpc_obs.Flight_recorder
module Export = Xrpc_obs.Export
module Xdm = Xrpc_xml.Xdm
module Qname = Xrpc_xml.Qname

let log_src = Logs.Src.create "xrpc.server" ~doc:"XRPC serving façade"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  port : int;  (** listen port (0 picks a free one; see {!port}) *)
  backlog : int;
  max_connections : int option;
      (** beyond this many open connections, new ones get an immediate
          503 and are closed *)
  workers : int;  (** size of the query-execution pool (event loop) *)
  executor : Executor.t option;
      (** overrides [workers] with a caller-owned executor *)
  thread_per_conn : bool;  (** baseline core instead of the event loop *)
  slow_ms : float;  (** flight-recorder pinning threshold *)
  trace : bool;  (** enable tracing; log a span tree per SOAP request *)
  outgoing : bool;
      (** wire the peer's own [execute at] dispatch through an HTTP
          {!Xrpc_client} (pooled keep-alive, parallel fan-out) *)
  cluster_peers : string list;
      (** other federation members [/clusterz] scrapes (their built-in
          [telemetry] function, in parallel over the outgoing client) *)
}

let config ?(port = 8080) ?(backlog = 128) ?max_connections ?(workers = 4)
    ?executor ?(thread_per_conn = false) ?(slow_ms = 250.) ?(trace = false)
    ?(outgoing = true) ?(cluster_peers = []) () =
  {
    port;
    backlog;
    max_connections;
    workers;
    executor;
    thread_per_conn;
    slow_ms;
    trace;
    outgoing;
    cluster_peers;
  }

let default_config = config ()

(* ------------------------------------------------------------------ *)
(* Routes                                                              *)
(* ------------------------------------------------------------------ *)

type route = { rpath : string; doc : string; handle : query:string -> string }

type t = {
  peer : Peer.t;
  cfg : config;
  mutable routes : route list;
  mutable server : Http.server option;
  mutable owned_pool : Executor.t option;
      (* a pool we created in [start] and must shut down in [stop] *)
  mutable client : Xrpc_client.t option;
}

let query_param query key =
  List.find_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i when String.sub kv 0 i = key ->
          Some (String.sub kv (i + 1) (String.length kv - i - 1))
      | _ -> None)
    (String.split_on_char '&' query)

let split_path path =
  match String.index_opt path '?' with
  | Some i ->
      (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))
  | None -> (path, "")

let add_route t ~path ~doc handle =
  t.routes <- t.routes @ [ { rpath = path; doc; handle } ]

let routes t = List.map (fun r -> (r.rpath, r.doc)) t.routes

let keys_of_query query =
  match query_param query "keys" with
  | Some ks -> String.split_on_char ',' ks
  | None -> []

let cachez_json peer =
  let s = Peer.cache_stats peer in
  let p = s.Peer.plan and r = s.Peer.result in
  Printf.sprintf
    {|{"plan_cache":{"hits":%d,"misses":%d,"evictions":%d,"size":%d,"capacity":%d,"enabled":%b},"result_cache":{"hits":%d,"misses":%d,"stale":%d,"invalidations":%d,"evictions":%d,"size":%d,"capacity":%d,"enabled":%b},"func_cache":{"hits":%d,"misses":%d,"evictions":%d,"size":%d},"idem_cache":{"hits":%d,"misses":%d,"evictions":%d,"size":%d}}|}
    p.Xrpc_peer.Plan_cache.hits p.Xrpc_peer.Plan_cache.misses
    p.Xrpc_peer.Plan_cache.evictions p.Xrpc_peer.Plan_cache.size
    p.Xrpc_peer.Plan_cache.capacity p.Xrpc_peer.Plan_cache.enabled
    r.Xrpc_peer.Result_cache.hits r.Xrpc_peer.Result_cache.misses
    r.Xrpc_peer.Result_cache.stale r.Xrpc_peer.Result_cache.invalidations
    r.Xrpc_peer.Result_cache.evictions r.Xrpc_peer.Result_cache.size
    r.Xrpc_peer.Result_cache.capacity r.Xrpc_peer.Result_cache.enabled
    s.Peer.func_hits s.Peer.func_misses s.Peer.func_evictions s.Peer.func_size
    s.Peer.idem_hits s.Peer.idem_misses s.Peer.idem_evictions s.Peer.idem_size

let tracez ~query =
  match Option.map int_of_string_opt (query_param query "id") with
  | Some (Some id) -> (
      match Flight_recorder.find id with
      | Some e ->
          if query_param query "format" = Some "tree" then
            Export.span_tree_json e.Flight_recorder.spans
          else Export.chrome_trace e.Flight_recorder.spans
      | None -> Printf.sprintf "no request #%d in the flight recorder" id)
  | _ ->
      "usage: /tracez?id=N (ids listed at /requestz; &format=tree for the \
       nested-span JSON instead of Chrome trace events)"

let optimizerz ~query:_ =
  Cost.calibration_text ()
  ^
  match Cost.force_of_env () with
  | Some s -> "forced by XRPC_FORCE_STRATEGY: " ^ Strategies.name s ^ "\n"
  | None -> ""

let stats_unstarted () =
  {
    Evloop.accepted = 0;
    active = 0;
    served = 0;
    rejected = 0;
    accept_errors = 0;
    disconnects = 0;
  }

let stats t =
  match t.server with Some s -> Http.stats s | None -> stats_unstarted ()

let stats_text t =
  let s = stats t in
  let wr name = Window.rate (Window.counter name) in
  let exec =
    match t.cfg.executor with
    | Some e -> Some e
    | None -> t.owned_pool
  in
  Printf.sprintf
    "server.mode %s\nserver.accepted %d\nserver.active %d\nserver.served \
     %d\nserver.rejected_503 %d\nserver.accept_errors \
     %d\nserver.client_disconnects %d\nwindow.accepted_1m_rate \
     %.3f\nwindow.served_1m_rate %.3f\nwindow.rejected_503_1m_rate \
     %.3f\nwindow.accept_errors_1m_rate %.3f\nwindow.disconnects_1m_rate \
     %.3f\nwindow.loop_lag_p99_ms %s\nwindow.doneq_depth \
     %s\nwindow.executor_queue_depth %d\n"
    (if t.cfg.thread_per_conn then "thread-per-conn" else "event-loop")
    s.Evloop.accepted s.Evloop.active s.Evloop.served s.Evloop.rejected
    s.Evloop.accept_errors s.Evloop.disconnects (wr "evloop.accepted")
    (wr "evloop.served") (wr "evloop.rejected_503")
    (wr "evloop.accept_errors") (wr "evloop.disconnects")
    (Metrics.fnum
       (Window.quantile (Window.histogram "evloop.loop_lag_ms") 0.99))
    (Metrics.fnum (Window.last (Window.gauge "evloop.doneq_depth")))
    (match exec with Some e -> Executor.queue_depth e | None -> 0)

(* -- federation scrape --------------------------------------------- *)

(* Pull every configured peer's windowed snapshot via its built-in
   [telemetry] XRPC function, in parallel on the outgoing client's
   executor.  A failed leg degrades to an [unreachable] pseudo-snapshot
   instead of failing the view — a peer you cannot scrape is exactly
   what the cluster view exists to show. *)
let cluster_snapshots t =
  let self = Telemetry.local_snapshot ~peer:t.peer.Peer.uri () in
  let now = Trace.now_ms () in
  let others =
    List.filter (fun u -> u <> t.peer.Peer.uri) t.cfg.cluster_peers
  in
  let scrape uri =
    match t.client with
    | None ->
        Telemetry.unreachable ~peer:uri ~at_ms:now
          ~reason:"no outgoing client configured"
    | Some c -> (
        try
          let seq =
            Xrpc_client.call c ~dest:uri ~module_uri:Qname.ns_xrpc
              ~fn:"telemetry" []
          in
          Telemetry.of_wire
            (Xdm.string_value (Xdm.one_item ~what:"telemetry" seq))
        with e ->
          Telemetry.unreachable ~peer:uri ~at_ms:now
            ~reason:(Printexc.to_string e))
  in
  let ex =
    match t.client with
    | Some c -> Xrpc_client.executor c
    | None -> Executor.sequential
  in
  self :: Executor.map_list ex scrape others

let cluster_view t = Telemetry.merge ~at_ms:(Trace.now_ms ()) (cluster_snapshots t)

(* the monitoring surface, registered in one place instead of the ad-hoc
   match the CLI used to hand-wire *)
let default_routes t =
  let r path doc handle = add_route t ~path ~doc handle in
  (* cumulative registry plus the windowed series: one scrape surface *)
  r "/metrics" "metrics registry + windowed series, text" (fun ~query:_ ->
      Window.export_text ());
  r "/metrics.json" "metrics registry, JSON" (fun ~query:_ ->
      Metrics.to_json ());
  r "/windowz.json" "sliding-window series, JSON" (fun ~query:_ ->
      Window.to_json ());
  r "/healthz" "liveness + readiness with reasons" (fun ~query:_ ->
      Slo.healthz_text ~scope:t.peer.Peer.uri ());
  r "/healthz.json" "health, JSON" (fun ~query:_ ->
      Slo.healthz_json ~scope:t.peer.Peer.uri ());
  r "/clusterz" "federation-wide health (scrapes cluster peers)"
    (fun ~query:_ -> Telemetry.cluster_text (cluster_view t));
  r "/clusterz.json" "cluster view, JSON" (fun ~query:_ ->
      Telemetry.cluster_json (cluster_view t));
  r "/requestz" "flight recorder: last requests" (fun ~query:_ ->
      Flight_recorder.to_text ());
  r "/requestz.json" "flight recorder, JSON" (fun ~query:_ ->
      Flight_recorder.to_json ());
  r "/slowz" "pinned slow queries (>= slow-ms)" (fun ~query:_ ->
      Flight_recorder.pinned_text ());
  r "/cachez" "plan/result/func/idem cache stats" (fun ~query:_ ->
      Peer.cache_stats_text t.peer);
  r "/cachez.json" "cache stats, JSON" (fun ~query:_ -> cachez_json t.peer);
  r "/shardz" "consistent-hash ring (?keys=a,b shows placement)"
    (fun ~query -> Peer.shard_text ~keys:(keys_of_query query) t.peer);
  r "/shardz.json" "ring description, JSON" (fun ~query ->
      Peer.shard_json ~keys:(keys_of_query query) t.peer);
  r "/optimizerz" "strategy-cost calibration state" optimizerz;
  r "/tracez" "span trees per request (?id=N[&format=tree])" (fun ~query ->
      tracez ~query);
  r "/statz" "server core counters" (fun ~query:_ -> stats_text t);
  r "/routez" "this route table" (fun ~query:_ ->
      String.concat ""
        (List.map
           (fun r -> Printf.sprintf "%-16s %s\n" r.rpath r.doc)
           t.routes))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) peer =
  Flight_recorder.configure ~slow:config.slow_ms ();
  if config.trace then begin
    (* span ids get a per-process tag so traces stitched across several
       server processes cannot collide *)
    Trace.set_process_tag (Printf.sprintf "p%d-" config.port);
    Trace.set_enabled true
  end;
  let t =
    {
      peer;
      cfg = config;
      routes = [];
      server = None;
      owned_pool = None;
      client = None;
    }
  in
  if config.outgoing then begin
    (* outgoing calls of hosted functions also travel over HTTP, through
       the client façade: pooled keep-alive connections, parallel fan-out *)
    let client =
      Xrpc_client.connect_http
        ~config:
          (Xrpc_client.config ~executor:Executor.unbounded ~keep_alive:true ())
        ~origin:peer.Peer.uri ()
    in
    Peer.set_transport peer (Xrpc_client.transport client);
    Peer.set_executor peer (Xrpc_client.executor client);
    t.client <- Some client
  end;
  default_routes t;
  t

let peer t = t.peer
let client t = t.client

let soap_done t =
  if t.cfg.trace then begin
    Log.app (fun m -> m "trace:@.%s" (Trace.render ()));
    Trace.reset ()
  end

let find_route t route =
  List.find_opt (fun r -> r.rpath = route) t.routes

(* Monitoring routes get the same per-endpoint rate/error/latency
   treatment as served functions (SOAP traffic is recorded per-function
   inside [Peer.handle_raw_into] — recording it here too would double
   count). *)
let run_route t r ~query =
  let t0 = Unix.gettimeofday () in
  let finish ~error =
    Slo.record ~scope:t.peer.Peer.uri ~endpoint:r.rpath
      ~dur_ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ~error ()
  in
  match r.handle ~query with
  | body ->
      finish ~error:false;
      body
  | exception e ->
      finish ~error:true;
      raise e

(* Readiness probes and snapshot gauges for this serving process: the
   conditions /healthz must surface that no request counter can see —
   executor queue saturation and breakers open toward cluster peers —
   plus the runtime gauges that ride in the telemetry snapshot. *)
let register_runtime_sources t =
  let scope = t.peer.Peer.uri in
  (match
     match t.cfg.executor with Some e -> Some e | None -> t.owned_pool
   with
  | Some e ->
      let cap = min 1024 (max 1 (Executor.threads e)) in
      Slo.register_probe ~scope ~name:"executor" (fun () ->
          let d = Executor.queue_depth e in
          if d >= cap * 16 then
            Slo.Probe_unready
              (Printf.sprintf "queue saturated (%d jobs behind %d workers)" d
                 cap)
          else if d >= cap * 4 then
            Slo.Probe_degraded (Printf.sprintf "queue backlog (%d jobs)" d)
          else Slo.Probe_ok)
  | None -> ());
  (match (t.client, t.cfg.cluster_peers) with
  | Some c, (_ :: _ as peers) ->
      let breaker_of d =
        match Xrpc_client.breaker c d with
        | Some (Xrpc_net.Transport.Open _) -> Some (d, "open")
        | Some Xrpc_net.Transport.Half_open -> Some (d, "half_open")
        | Some Xrpc_net.Transport.Closed -> Some (d, "closed")
        | None -> None
      in
      Slo.register_probe ~scope ~name:"breaker" (fun () ->
          match
            List.filter_map
              (fun d ->
                match breaker_of d with
                | Some (d, "open") -> Some d
                | _ -> None)
              peers
          with
          | [] -> Slo.Probe_ok
          | opens ->
              Slo.Probe_degraded
                ("circuit open to " ^ String.concat ", " opens));
      Telemetry.register_breakers ~scope (fun () ->
          List.filter_map breaker_of peers)
  | _ -> ());
  Telemetry.register_gauges ~scope (fun () ->
      let s = stats t in
      [
        ("active_connections", float_of_int s.Evloop.active);
        ("served_1m_rate", Window.rate (Window.counter "evloop.served"));
        ( "loop_lag_p99_ms",
          Window.quantile (Window.histogram "evloop.loop_lag_ms") 0.99 );
        ( "executor_queue_depth",
          float_of_int
            (match
               match t.cfg.executor with Some e -> Some e | None -> t.owned_pool
             with
            | Some e -> Executor.queue_depth e
            | None -> 0) );
      ])

let start t =
  match t.server with
  | Some s -> Http.port s
  | None ->
      let server =
        if t.cfg.thread_per_conn then
          Http.serve ~mode:Http.Thread_per_conn ~port:t.cfg.port
            ~backlog:t.cfg.backlog ?max_connections:t.cfg.max_connections
            (fun ~path body ->
              let route, query = split_path path in
              match find_route t route with
              | Some r -> run_route t r ~query
              | None ->
                  let out = Peer.handle_raw t.peer body in
                  soap_done t;
                  out)
        else
          (* streaming contract: SOAP bodies are parsed straight out of
             the connection's input buffer and replies serialized into
             its reused output buffer — envelopes are materialized once *)
          let executor =
            match t.cfg.executor with
            | Some e -> Some e
            | None ->
                let p = Executor.pool t.cfg.workers in
                t.owned_pool <- Some p;
                Some p
          in
          Http.serve_stream ~port:t.cfg.port ~backlog:t.cfg.backlog
            ?max_connections:t.cfg.max_connections ?executor
            (fun ~meth:_ ~path ~src ~pos ~len out ->
              let route, query = split_path path in
              match find_route t route with
              | Some r -> Buffer.add_string out (run_route t r ~query)
              | None ->
                  Peer.handle_raw_into t.peer ~pos ~len src out;
                  soap_done t)
      in
      t.server <- Some server;
      register_runtime_sources t;
      Http.port server

let port t = match t.server with Some s -> Http.port s | None -> t.cfg.port

let stop t =
  match t.server with
  | None -> ()
  | Some s ->
      Http.shutdown s;
      t.server <- None;
      Option.iter Executor.shutdown t.owned_pool;
      t.owned_pool <- None

(* ------------------------------------------------------------------ *)
(* Data loading                                                        *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load every [*.xml] in [dir] as a queryable document (by file name)
    and register every [*.xq] library module under its declared namespace
    URI and its file name as at-hint.  Returns [(documents, modules)]
    counts; skips (with a log line) files that are not library modules. *)
let load_directory t dir =
  let docs = ref 0 and mods = ref 0 in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        if Filename.check_suffix entry ".xml" then begin
          Xrpc_peer.Database.add_doc_xml t.peer.Peer.db entry (read_file path);
          incr docs
        end
        else if Filename.check_suffix entry ".xq" then begin
          let source = read_file path in
          let prog = Xrpc_xquery.Parser.parse_prog source in
          match prog.Xrpc_xquery.Ast.module_decl with
          | Some (_, uri) ->
              Peer.register_module t.peer ~uri ~location:entry source;
              incr mods
          | None ->
              Log.warn (fun m -> m "skipping %s: not a library module" entry)
        end)
      (Sys.readdir dir)
  else Log.warn (fun m -> m "data directory %s not found" dir);
  (!docs, !mods)
