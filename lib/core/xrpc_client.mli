(** Unified XRPC client façade.

    One front door for everything the query-originating site does on the
    wire: connect over Simnet, HTTP or any transport; call remote XQuery
    functions singly, in Bulk RPC batches, scattered across peers, or
    asynchronously; and observe the recovery policy at work.

    {[
      let client =
        Xrpc_client.(
          connect_http
            ~config:(config ~policy:Transport.default_policy
                       ~executor:(Executor.pool 8) ~keep_alive:true ())
            ())
      in
      let films =
        Xrpc_client.call client ~dest:"xrpc://y:8080" ~module_uri:"films"
          ~fn:"filmsByActor" [ [ Xdm.str "Sean Connery" ] ]
    ]}

    Every outgoing request is stamped with a unique idempotency key, so
    retries at the transport layer never re-execute updating functions.
    SOAP Faults surface as typed {!Xrpc_net.Xrpc_error.Error} exceptions
    (the fault reason round-trips losslessly).  Multi-peer calls fan out
    through the configured {!Xrpc_net.Executor}. *)

(** {2 Configuration} *)

type config = {
  policy : Xrpc_net.Transport.policy option;
  executor : Xrpc_net.Executor.t;
  seed : int;  (** deterministic backoff jitter *)
  tracing : bool;  (** enable the global tracer on connect *)
  keep_alive : bool;  (** HTTP: pool one connection per destination *)
  default_port : int;  (** HTTP: port for xrpc:// URIs without one *)
  result_cache : bool;
      (** allow serving peers to answer this client's read-only calls from
          their semantic result caches (default); [false] stamps every
          request [cache="off"] *)
  strategy : Strategies.strategy option;
      (** pin {!choose_strategy} to one §5 strategy instead of letting the
          cost model rank them (the [~strategy] config counterpart of the
          [XRPC_FORCE_STRATEGY] env override) *)
}

val config :
  ?policy:Xrpc_net.Transport.policy ->
  ?executor:Xrpc_net.Executor.t ->
  ?seed:int ->
  ?tracing:bool ->
  ?keep_alive:bool ->
  ?default_port:int ->
  ?result_cache:bool ->
  ?strategy:Strategies.strategy ->
  unit ->
  config
(** Builder with the defaults: no policy, sequential executor, seed 0,
    tracing off, keep-alive off, port 8080, result caching allowed. *)

val default_config : config

type t

(** {2 Connecting} *)

val connect_transport :
  ?config:config -> ?origin:string -> Xrpc_net.Transport.t -> t
(** Front an arbitrary transport.  With [config.policy], the recovery
    policy (retry, backoff, circuit breaker) runs on the wall clock.
    [origin] names this client in its idempotency keys. *)

val connect_policied :
  ?config:config -> ?origin:string -> Xrpc_net.Transport.policied -> t
(** Front an already-policied transport (e.g. a cluster's shared policy
    layer), keeping its stats and breakers visible via {!policy_stats}. *)

val connect_simnet :
  ?config:config -> ?origin:string -> Xrpc_net.Simnet.t -> t
(** Front the deterministic simulated network.  The executor is {e forced
    sequential} regardless of [config.executor] — Simnet owns a virtual
    clock and is single-threaded, so this is the mode whose seeded chaos
    runs replay bit-identically. *)

val connect_http : ?config:config -> ?origin:string -> unit -> t
(** Front real HTTP: destinations are [xrpc://host:port[/path]] URIs.
    The policy's [timeout_ms] doubles as the socket timeout. *)

(** {2 Introspection} *)

val transport : t -> Xrpc_net.Transport.t
(** The underlying transport, for wiring into [Peer.set_transport]. *)

val executor : t -> Xrpc_net.Executor.t
val policy_stats : t -> Xrpc_net.Transport.policy_stats option
val breaker : t -> string -> Xrpc_net.Transport.breaker_state option

val set_result_caching : t -> bool -> unit
(** Flip the default for requests without an explicit [?cache] argument:
    [false] stamps them [cache="off"], so serving peers always execute. *)

val result_caching : t -> bool

(** {2 Calls}

    All typed calls raise {!Xrpc_net.Xrpc_error.Error} on transport
    failure or when the peer answers with a SOAP Fault. *)

val call :
  t ->
  dest:string ->
  ?query_id:Xrpc_soap.Message.query_id ->
  ?updating:bool ->
  ?fragments:bool ->
  ?cache:bool ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  Xrpc_xml.Xdm.sequence list ->
  Xrpc_xml.Xdm.sequence
(** [call t ~dest ~module_uri ~fn params] invokes
    [module_uri:fn(params...)] at [dest] and returns its result sequence
    (empty for updating calls, whose effects are the result). *)

val call_profiled :
  t ->
  dest:string ->
  ?query_id:Xrpc_soap.Message.query_id ->
  ?updating:bool ->
  ?fragments:bool ->
  ?cache:bool ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  Xrpc_xml.Xdm.sequence list ->
  Xrpc_xml.Xdm.sequence * Xrpc_obs.Profile.t
(** [call] with profiling enabled for its duration: returns the result
    together with the finished {!Xrpc_obs.Profile.t} — per-destination
    messages, serialized bytes both ways, and (the request carries the
    [xrpc:profile] header flag, so cooperating peers measure and return
    them) the remote side's parse/compile/exec/commit phase costs. *)

val call_bulk :
  t ->
  dest:string ->
  ?query_id:Xrpc_soap.Message.query_id ->
  ?updating:bool ->
  ?fragments:bool ->
  ?cache:bool ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  Xrpc_xml.Xdm.sequence list list ->
  Xrpc_xml.Xdm.sequence list
(** Bulk RPC (§2.2): many calls to the same function in one message; one
    result sequence per call, in call order. *)

val call_scatter :
  t ->
  ?query_id:Xrpc_soap.Message.query_id ->
  ?updating:bool ->
  ?fragments:bool ->
  ?cache:bool ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  (string * Xrpc_xml.Xdm.sequence list) list ->
  Xrpc_xml.Xdm.sequence list
(** One single-call request per [(dest, params)] pair, dispatched
    concurrently through the client's executor; results in input order. *)

val call_raw : t -> dest:string -> string -> string
(** Send a pre-serialized message body; returns the raw reply body. *)

val call_raw_bulk : t -> (string * string) list -> string list
(** Raw multi-destination fan-out through the executor. *)

(** {2 Sharded scatter-gather}

    A {!Xrpc_peer.Shard} ring plans into legs; the gather merge
    ({!Xrpc_algebra.Gather.merge}) dedups replica/broadcast re-deliveries
    by [@seq] and orders by [@seq], so every mode returns the same
    answer. *)

type scatter_mode = By_owner | Broadcast

val plan_scatter :
  ?mode:scatter_mode ->
  ?alive:(string -> bool) ->
  Xrpc_peer.Shard.t ->
  (string * string list) list
(** The legs of a sharded fan-out: [(dest, owners)] pairs.  [By_owner]
    (default) asks each live member for its own parts plus those of every
    dead owner (replica failover); [Broadcast] asks each live member for
    every owner's parts.  Raises {!Xrpc_net.Xrpc_error.Error} when no
    member passes [alive]. *)

val call_gather :
  t ->
  ?mode:scatter_mode ->
  ?alive:(string -> bool) ->
  shard:Xrpc_peer.Shard.t ->
  ?query_id:Xrpc_soap.Message.query_id ->
  ?cache:bool ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  ?params:Xrpc_xml.Xdm.sequence list ->
  unit ->
  Xrpc_xml.Xdm.sequence
(** Scatter [fn] over the ring ({!plan_scatter} → {!call_scatter}) and
    merge the partial answers.  [fn] receives the owner URIs a leg should
    answer for as its first parameter ([xs:string*]), then [params].  A
    failing leg raises that leg's typed error with the failing [dest];
    partial results are never returned. *)

(** {2 Asynchronous calls} *)

type 'a future = 'a Xrpc_net.Executor.future

val call_async :
  t ->
  dest:string ->
  ?query_id:Xrpc_soap.Message.query_id ->
  ?updating:bool ->
  ?fragments:bool ->
  ?cache:bool ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  Xrpc_xml.Xdm.sequence list ->
  Xrpc_xml.Xdm.sequence future
(** Like {!call} but returns immediately with a future (resolved inline
    when the executor is sequential). *)

val await : 'a future -> 'a
val await_result : 'a future -> ('a, exn) result

(** {2 Cost-based strategy choice}

    The client is the query-originating site, so it is where the §5
    strategy decision surfaces: {!choose_strategy} ranks the four plans
    with the {!Cost} model (Tables 2–4 terms), {!measure_site} seeds the
    model's site statistics from a live probe. *)

val set_strategy : t -> Strategies.strategy option -> unit
(** Pin (or unpin) the strategy {!choose_strategy} returns. *)

val strategy : t -> Strategies.strategy option

val choose_strategy :
  t ->
  ?force:Strategies.strategy ->
  ?dest:string ->
  ?net:Cost.net ->
  ?cpu:Cost.cpu ->
  Cost.site ->
  Cost.decision
(** Rank the §5 strategies for a site and return the full decision —
    chosen plan plus every rejected alternative with its estimated cost.
    [?dest] applies that destination's calibration factors (falling back
    to the global per-strategy EMA).  Force precedence: [?force], then
    the client's configured [~strategy], then the [XRPC_FORCE_STRATEGY]
    environment variable. *)

val measure_site :
  t ->
  dest:string ->
  ?site:Cost.site ->
  module_uri:string ->
  ?location:string ->
  fn:string ->
  Xrpc_xml.Xdm.sequence list ->
  Cost.site * Xrpc_obs.Profile.t
(** Probe one remote function and fold what came back (row count, payload
    bytes, [serverProfile] phases) into the optimizer's site statistics:
    the measurement side of the adaptive feedback loop. *)
