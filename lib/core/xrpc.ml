(** XRPC — Interoperable and Efficient Distributed XQuery.

    Public facade of the library.  The usual flow:

    {[
      let cluster = Xrpc_core.Cluster.create ~names:[ "x"; "y" ] () in
      let y = Xrpc_core.Cluster.peer cluster "y" in
      Xrpc_peer.Peer.(add your documents / modules) ...;
      let r =
        Xrpc_peer.Peer.query_seq (Xrpc_core.Cluster.peer cluster "x")
          {|import module namespace f="films" at "http://x.example.org/film.xq";
            execute at {"xrpc://y"} { f:filmsByActor("Sean Connery") }|}
      in
      print_endline (Xrpc_xml.Xdm.to_display r)
    ]} *)

module Cluster = Cluster
module Client = Xrpc_client
module Server = Xrpc_server
module Strategies = Strategies
module Cost = Cost
module Executor = Xrpc_net.Executor
module Error = Xrpc_net.Xrpc_error
module Transport = Xrpc_net.Transport
module Peer = Xrpc_peer.Peer
module Wrapper = Xrpc_peer.Wrapper
module Database = Xrpc_peer.Database
module Two_pc = Xrpc_peer.Two_pc
module Message = Xrpc_soap.Message
module Marshal = Xrpc_soap.Marshal
module Xdm = Xrpc_xml.Xdm
module Simnet = Xrpc_net.Simnet
module Http = Xrpc_net.Http
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace

let version = "1.0.0"
