(* Cost-based strategy optimizer suite (§5 strategies, Tables 2-4 model).

   Covers, in rough order: the per-strategy shape of the cost estimates
   (message counts, payload directions), the Table-2 Bulk-vs-singles
   estimator, model-level crossover points (selectivity flips semi-join vs
   pushdown, latency punishes relocation's extra round trip), a seeded
   monotonicity battery (growing any additive statistic — rows, bytes,
   latency — or shrinking bandwidth never lowers a strategy's cost; replay
   with OPT_SEED=<n> dune runtest), strategy-name parsing and the
   XRPC_FORCE_STRATEGY override, the adaptive feedback loop (EMA
   calibration, flight-recorder persistence and replay), the :explain
   surfaces (decision rendering, static execute-at site analysis, the
   loop-lift note hook, the profiler's Table-2 annotation), measured
   crossover reproduction on deterministic Simnet (the optimizer's choice
   must be the measured-fastest strategy at every setting, as in
   bench/optimizer_bench.ml), Bulk RPC vs one-at-a-time forced through the
   debug override, and a chaos differential battery: whatever strategy the
   optimizer picks must return answers identical to plain Bulk RPC data
   shipping, or fail outright — never a silently different answer (replay
   with FAULT_SEED=<n> dune runtest). *)

open Xrpc_xml
module Cluster = Xrpc_core.Cluster
module Cost = Xrpc_core.Cost
module Strategies = Xrpc_core.Strategies
module Client = Xrpc_core.Xrpc_client
module Peer = Xrpc_peer.Peer
module Wrapper = Xrpc_peer.Wrapper
module Database = Xrpc_peer.Database
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Xmark = Xrpc_workloads.Xmark
module Parser = Xrpc_xquery.Parser
module Runner = Xrpc_xquery.Runner
module Xctx = Xrpc_xquery.Context
module Looplift = Xrpc_algebra.Looplift
module Profile = Xrpc_obs.Profile
module Flight_recorder = Xrpc_obs.Flight_recorder

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let floatish = Alcotest.float 1e-9

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

(* every test that touches the process-wide calibration table or the env
   override cleans up after itself *)
let with_clean_calibration f =
  Cost.reset_calibration ();
  Fun.protect ~finally:Cost.reset_calibration f

let with_env_strategy value f =
  Unix.putenv "XRPC_FORCE_STRATEGY" value;
  Fun.protect ~finally:(fun () -> Unix.putenv "XRPC_FORCE_STRATEGY" "") f

(* ------------------------------------------------------------------ *)
(* The estimator: per-strategy shapes                                  *)
(* ------------------------------------------------------------------ *)

(* the paper-shaped selective site: 6 of 400 auctions match *)
let selective_site =
  {
    Cost.default_site with
    Cost.outer_rows = 50;
    key_bytes = 24;
    local_doc_bytes = 30_000;
    remote_doc_bytes = 40_000;
    remote_rows = 400;
    match_rows = 6;
    result_bytes = 2_000;
    pushdown_rows = 400;
    pushdown_bytes = 20_000;
  }

let est strategy = Cost.estimate Cost.default_net Cost.zero_cpu selective_site strategy

let test_message_counts () =
  (* Table 2's term: one round trip for data shipping, pushdown and the
     (Bulk RPC) semi-join; relocation pays the nested getDocument trip *)
  let msgs s = (est s).Cost.messages in
  check int_ "data shipping: 2 msgs" 2 (msgs Strategies.Data_shipping);
  check int_ "pushdown: 2 msgs" 2 (msgs Strategies.Predicate_pushdown);
  check int_ "relocation: 4 msgs" 4 (msgs Strategies.Execution_relocation);
  check int_ "semi-join: 2 msgs" 2 (msgs Strategies.Distributed_semijoin);
  let ovh = selective_site.Cost.msg_overhead_bytes in
  check int_ "data shipping pulls the whole remote document"
    (selective_site.Cost.remote_doc_bytes + ovh)
    (est Strategies.Data_shipping).Cost.bytes_in;
  check int_ "pushdown pulls only the selected nodes"
    (selective_site.Cost.pushdown_bytes + ovh)
    (est Strategies.Predicate_pushdown).Cost.bytes_in;
  check int_ "relocation ships the local document out"
    (selective_site.Cost.local_doc_bytes + (2 * ovh))
    (est Strategies.Execution_relocation).Cost.bytes_out;
  check int_ "semi-join ships one key per outer row"
    ((selective_site.Cost.outer_rows * selective_site.Cost.key_bytes) + ovh)
    (est Strategies.Distributed_semijoin).Cost.bytes_out;
  check bool_ "zero cpu under charge_cpu=false" true
    (List.for_all (fun s -> (est s).Cost.cpu_ms = 0.) Strategies.all)

let test_table2_estimates () =
  let rpc n = Cost.estimate_rpc Cost.default_net ~ncalls:n ~bytes_per_call:128 () in
  let b1, s1 = rpc 1 in
  check floatish "one call: bulk and singles coincide" b1 s1;
  let b10, s10 = rpc 10 in
  let b100, s100 = rpc 100 in
  check bool_ "bulk beats singles at n=10" true (b10 < s10);
  check bool_ "bulk beats singles at n=100" true (b100 < s100);
  check bool_ "the bulk advantage grows with the loop" true
    (s100 /. b100 > s10 /. b10);
  (* 2N messages vs 2: at negligible payload the ratio approaches N *)
  let tiny_b, tiny_s = Cost.estimate_rpc Cost.default_net ~overhead:0 ~ncalls:50 ~bytes_per_call:0 () in
  check floatish "latency-only ratio is exactly N" 50. (tiny_s /. tiny_b)

let test_model_crossover_selectivity () =
  with_clean_calibration @@ fun () ->
  (* 6-of-400 selectivity: the semi-join's key shipment is far smaller
     than the pushdown payload, which is smaller than the document *)
  let d = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  check string_ "selective site: semi-join wins" "semijoin"
    (Strategies.short_name d.Cost.chosen.Cost.strategy);
  check bool_ "pushdown still beats data shipping" true
    (Cost.total (est Strategies.Predicate_pushdown)
    < Cost.total (est Strategies.Data_shipping));
  (* everything matches: the semi-join pays the keys out AND the full
     payload back, so plain pushdown overtakes it *)
  let all_match =
    { selective_site with Cost.outer_rows = 200; match_rows = 400 }
  in
  let d = Cost.choose Cost.default_net Cost.zero_cpu all_match in
  check string_ "all-match site: pushdown wins" "pushdown"
    (Strategies.short_name d.Cost.chosen.Cost.strategy)

let test_model_crossover_latency () =
  with_clean_calibration @@ fun () ->
  let slow = { Cost.default_net with Cost.latency_ms = 40. } in
  let d = Cost.choose slow Cost.zero_cpu selective_site in
  check string_ "high latency: the 2-message semi-join still wins" "semijoin"
    (Strategies.short_name d.Cost.chosen.Cost.strategy);
  (* 4 messages at 40ms dominate any byte savings at these sizes *)
  (match List.rev d.Cost.ranked with
  | worst :: _ ->
      check string_ "relocation's extra round trip ranks it last"
        "relocation"
        (Strategies.short_name worst.Cost.strategy)
  | [] -> Alcotest.fail "empty ranking");
  check bool_ "slow link favors small payloads: semi-join beats pushdown" true
    (let thin = { Cost.latency_ms = 0.6; bandwidth_bytes_per_ms = 1_000. } in
     Cost.total (Cost.estimate thin Cost.zero_cpu selective_site
                   Strategies.Distributed_semijoin)
     < Cost.total (Cost.estimate thin Cost.zero_cpu selective_site
                     Strategies.Predicate_pushdown))

(* ------------------------------------------------------------------ *)
(* Seeded monotonicity battery                                         *)
(* ------------------------------------------------------------------ *)

let opt_seed () =
  match Sys.getenv_opt "OPT_SEED" with
  | Some s -> int_of_string (String.trim s)
  | None -> 2026

let replay_hint seed = Printf.sprintf "OPT_SEED=%d dune runtest" seed

let gen_site rng =
  let i n = Random.State.int rng n in
  {
    Cost.outer_rows = i 500;
    key_bytes = 1 + i 64;
    local_doc_bytes = i 200_000;
    remote_doc_bytes = i 200_000;
    remote_rows = i 5_000;
    match_rows = i 5_000;
    result_bytes = i 100_000;
    pushdown_rows = i 5_000;
    pushdown_bytes = i 100_000;
    msg_overhead_bytes = i 2_048;
  }

let gen_net rng =
  {
    Cost.latency_ms = Random.State.float rng 50.;
    bandwidth_bytes_per_ms = 1_000. +. Random.State.float rng 200_000.;
  }

let gen_cpu rng =
  {
    Cost.compile_ms = Random.State.float rng 1.;
    xml_ms_per_byte = Random.State.float rng 0.001;
    exec_ms_per_row = Random.State.float rng 0.01;
  }

(* every additive statistic the model consumes; [pushdown_rows] is the one
   deliberate exception — it is a selectivity-ratio denominator (average
   pushdown row width), not a quantity of work *)
let site_bumps =
  [
    ("outer_rows", fun s d -> { s with Cost.outer_rows = s.Cost.outer_rows + d });
    ("key_bytes", fun s d -> { s with Cost.key_bytes = s.Cost.key_bytes + d });
    ( "local_doc_bytes",
      fun s d -> { s with Cost.local_doc_bytes = s.Cost.local_doc_bytes + d } );
    ( "remote_doc_bytes",
      fun s d -> { s with Cost.remote_doc_bytes = s.Cost.remote_doc_bytes + d } );
    ( "remote_rows",
      fun s d -> { s with Cost.remote_rows = s.Cost.remote_rows + d } );
    ("match_rows", fun s d -> { s with Cost.match_rows = s.Cost.match_rows + d });
    ( "result_bytes",
      fun s d -> { s with Cost.result_bytes = s.Cost.result_bytes + d } );
    ( "pushdown_bytes",
      fun s d -> { s with Cost.pushdown_bytes = s.Cost.pushdown_bytes + d } );
    ( "msg_overhead_bytes",
      fun s d -> { s with Cost.msg_overhead_bytes = s.Cost.msg_overhead_bytes + d }
    );
  ]

let monotone_check ~seed ~case ~what ~strategy before after =
  if after +. 1e-9 < before then
    Alcotest.failf
      "seed %d case %d: growing %s LOWERED the %s cost (%.9f -> %.9f)\n\
       replay: %s"
      seed case what (Strategies.name strategy) before after (replay_hint seed)

let test_monotone_site_stats () =
  let seed = opt_seed () in
  for case = 0 to 299 do
    let rng = Random.State.make [| seed; case |] in
    let site = gen_site rng and net = gen_net rng and cpu = gen_cpu rng in
    let delta = 1 + Random.State.int rng 10_000 in
    List.iter
      (fun (what, bump) ->
        List.iter
          (fun strategy ->
            let before = Cost.total (Cost.estimate net cpu site strategy) in
            let after =
              Cost.total (Cost.estimate net cpu (bump site delta) strategy)
            in
            monotone_check ~seed ~case ~what ~strategy before after)
          Strategies.all)
      site_bumps
  done

let test_monotone_network () =
  let seed = opt_seed () in
  for case = 300 to 599 do
    let rng = Random.State.make [| seed; case |] in
    let site = gen_site rng and net = gen_net rng and cpu = gen_cpu rng in
    let slower =
      { net with Cost.latency_ms = net.Cost.latency_ms +. Random.State.float rng 100. }
    in
    let thinner =
      {
        net with
        Cost.bandwidth_bytes_per_ms =
          net.Cost.bandwidth_bytes_per_ms /. (1. +. Random.State.float rng 10.);
      }
    in
    List.iter
      (fun strategy ->
        let before = Cost.total (Cost.estimate net cpu site strategy) in
        monotone_check ~seed ~case ~what:"latency" ~strategy before
          (Cost.total (Cost.estimate slower cpu site strategy));
        monotone_check ~seed ~case ~what:"1/bandwidth" ~strategy before
          (Cost.total (Cost.estimate thinner cpu site strategy)))
      Strategies.all
  done

let test_monotone_cpu () =
  let seed = opt_seed () in
  for case = 600 to 899 do
    let rng = Random.State.make [| seed; case |] in
    let site = gen_site rng and net = gen_net rng and cpu = gen_cpu rng in
    let pricier =
      {
        Cost.compile_ms = cpu.Cost.compile_ms +. Random.State.float rng 1.;
        xml_ms_per_byte = cpu.Cost.xml_ms_per_byte +. Random.State.float rng 0.001;
        exec_ms_per_row = cpu.Cost.exec_ms_per_row +. Random.State.float rng 0.01;
      }
    in
    List.iter
      (fun strategy ->
        monotone_check ~seed ~case ~what:"per-peer CPU" ~strategy
          (Cost.total (Cost.estimate net cpu site strategy))
          (Cost.total (Cost.estimate net pricier site strategy)))
      Strategies.all
  done

(* ------------------------------------------------------------------ *)
(* Choosing, names, overrides                                          *)
(* ------------------------------------------------------------------ *)

let test_choose_ranks () =
  with_clean_calibration @@ fun () ->
  let d = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  check int_ "all four strategies ranked" 4 (List.length d.Cost.ranked);
  check bool_ "not forced" false d.Cost.forced;
  check bool_ "every strategy appears once" true
    (List.sort compare (List.map (fun c -> c.Cost.strategy) d.Cost.ranked)
    = List.sort compare Strategies.all);
  (match d.Cost.ranked with
  | first :: _ ->
      check bool_ "chosen is the head of the ranking" true
        (first.Cost.strategy = d.Cost.chosen.Cost.strategy)
  | [] -> Alcotest.fail "empty ranking");
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        Cost.calibrated_total a <= Cost.calibrated_total b && sorted rest
    | _ -> true
  in
  check bool_ "ranking is cheapest-first" true (sorted d.Cost.ranked)

let test_choose_force () =
  with_clean_calibration @@ fun () ->
  let d =
    Cost.choose ~force:Strategies.Execution_relocation Cost.default_net
      Cost.zero_cpu selective_site
  in
  check bool_ "forced flag set" true d.Cost.forced;
  check string_ "the forced strategy is chosen" "relocation"
    (Strategies.short_name d.Cost.chosen.Cost.strategy);
  (* the ranking still tells the truth about costs *)
  (match d.Cost.ranked with
  | first :: _ ->
      check bool_ "ranking ignores the force" true
        (first.Cost.strategy <> Strategies.Execution_relocation)
  | [] -> Alcotest.fail "empty ranking")

let test_strategy_names () =
  List.iter
    (fun s ->
      check bool_
        ("short_name round-trips: " ^ Strategies.short_name s)
        true
        (Strategies.of_string (Strategies.short_name s) = Some s);
      check bool_
        ("display name round-trips: " ^ Strategies.name s)
        true
        (Strategies.of_string (Strategies.name s) = Some s))
    Strategies.all;
  check int_ "short names are collision-free" 4
    (List.length
       (List.sort_uniq compare (List.map Strategies.short_name Strategies.all)));
  check bool_ "case/hyphen variants accepted" true
    (Strategies.of_string "Predicate Push-Down"
     = Some Strategies.Predicate_pushdown
    && Strategies.of_string "SEMI-JOIN" = Some Strategies.Distributed_semijoin
    && Strategies.of_string "plain" = Some Strategies.Data_shipping
    && Strategies.of_string "relocate" = Some Strategies.Execution_relocation);
  check bool_ "rpc modes and garbage are not strategies" true
    (Strategies.of_string "bulk" = None
    && Strategies.of_string "singles" = None
    && Strategies.of_string "auto" = None
    && Strategies.of_string "" = None
    && Strategies.of_string "zigzag" = None)

let test_force_env () =
  with_env_strategy "semi-join" (fun () ->
      check bool_ "XRPC_FORCE_STRATEGY=semi-join" true
        (Cost.force_of_env () = Some Strategies.Distributed_semijoin));
  with_env_strategy "relocate" (fun () ->
      check bool_ "XRPC_FORCE_STRATEGY=relocate" true
        (Cost.force_of_env () = Some Strategies.Execution_relocation));
  with_env_strategy "bulk" (fun () ->
      check bool_ "bulk is an rpc mode, not a strategy" true
        (Cost.force_of_env () = None));
  with_env_strategy "" (fun () ->
      check bool_ "empty override is no override" true (Cost.force_of_env () = None))

let test_rpc_mode_parsing () =
  check bool_ "bulk" true (Xctx.rpc_mode_of_string "bulk" = Some Xctx.Rpc_bulk);
  check bool_ "SINGLES" true
    (Xctx.rpc_mode_of_string "SINGLES" = Some Xctx.Rpc_singles);
  check bool_ "one-at-a-time" true
    (Xctx.rpc_mode_of_string "one-at-a-time" = Some Xctx.Rpc_singles);
  check bool_ "auto" true (Xctx.rpc_mode_of_string "auto" = Some Xctx.Rpc_auto);
  check bool_ "strategy names are not rpc modes" true
    (Xctx.rpc_mode_of_string "semijoin" = None);
  check string_ "names render back" "singles" (Xctx.rpc_mode_name Xctx.Rpc_singles)

(* ------------------------------------------------------------------ *)
(* The adaptive feedback loop                                          *)
(* ------------------------------------------------------------------ *)

let test_feedback_ema () =
  with_clean_calibration @@ fun () ->
  let sj = Strategies.Distributed_semijoin in
  check floatish "virgin calibration is 1.0" 1.0 (Cost.calibration sj);
  check int_ "no runs yet" 0 (Cost.runs sj);
  Cost.observe sj ~estimated_ms:2.0 ~measured_ms:4.0;
  check floatish "first observation sets the ratio" 2.0 (Cost.calibration sj);
  Cost.observe sj ~estimated_ms:2.0 ~measured_ms:2.0;
  check floatish "EMA blends (0.7*2.0 + 0.3*1.0)" 1.7 (Cost.calibration sj);
  check int_ "two runs" 2 (Cost.runs sj);
  check floatish "other strategies untouched" 1.0
    (Cost.calibration Strategies.Predicate_pushdown);
  Cost.observe sj ~estimated_ms:0.0 ~measured_ms:9.0;
  check floatish "zero estimates are ignored" 1.7 (Cost.calibration sj);
  Cost.reset_calibration ();
  check floatish "reset restores 1.0" 1.0 (Cost.calibration sj);
  check bool_ "calibration_text names every strategy" true
    (List.for_all
       (fun s -> contains (Cost.calibration_text ()) (Strategies.name s))
       Strategies.all)

let test_feedback_flips_choice () =
  with_clean_calibration @@ fun () ->
  let d0 = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  check string_ "model alone picks the semi-join" "semijoin"
    (Strategies.short_name d0.Cost.chosen.Cost.strategy);
  (* the deployment keeps measuring the semi-join at 10x its estimate —
     the calibrated ranking must switch to the next-best strategy *)
  let sj = Strategies.Distributed_semijoin in
  let est = Cost.total (Cost.estimate Cost.default_net Cost.zero_cpu selective_site sj) in
  Cost.observe sj ~estimated_ms:est ~measured_ms:(est *. 10.);
  let d1 = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  check string_ "feedback flips the choice to pushdown" "pushdown"
    (Strategies.short_name d1.Cost.chosen.Cost.strategy);
  Cost.reset_calibration ();
  let d2 = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  check string_ "reset restores the model's pick" "semijoin"
    (Strategies.short_name d2.Cost.chosen.Cost.strategy)

let test_feedback_flight_replay () =
  with_clean_calibration @@ fun () ->
  Flight_recorder.reset ();
  Fun.protect ~finally:Flight_recorder.reset @@ fun () ->
  let sj = Strategies.Distributed_semijoin
  and pd = Strategies.Predicate_pushdown in
  ignore (Cost.record_run sj ~estimated_ms:1.0 ~measured_ms:2.0);
  ignore (Cost.record_run sj ~estimated_ms:1.0 ~measured_ms:1.0);
  ignore (Cost.record_run pd ~estimated_ms:2.0 ~measured_ms:1.0);
  (* noise the replay must skip: a non-optimizer entry and a mangled one *)
  ignore
    (Flight_recorder.record ~label:"query xyz" ~duration_ms:1.0 ~spans:[] ());
  ignore
    (Flight_recorder.record ~label:"optimizer:warp est=fast meas=slow"
       ~duration_ms:1.0 ~spans:[] ());
  let f_sj = Cost.calibration sj and f_pd = Cost.calibration pd in
  check floatish "EMA after the recorded runs" 1.7 f_sj;
  check floatish "pushdown factor" 0.5 f_pd;
  (* a fresh session: no calibration, but the flight recorder persists *)
  Cost.reset_calibration ();
  check floatish "fresh session starts at 1.0" 1.0 (Cost.calibration sj);
  let replayed = Cost.replay_flight () in
  check int_ "exactly the three optimizer entries replay" 3 replayed;
  check floatish "semi-join EMA reconstructed" f_sj (Cost.calibration sj);
  check floatish "pushdown EMA reconstructed" f_pd (Cost.calibration pd);
  check int_ "runs reconstructed" 2 (Cost.runs sj)

(* one slow destination must not poison the ranking everywhere: observe
   folds the measurement into BOTH the per-destination and the global
   EMA, calibration ~dest prefers the destination's own factor and falls
   back to the global one for destinations never measured *)
let test_feedback_per_destination () =
  with_clean_calibration @@ fun () ->
  let sj = Strategies.Distributed_semijoin in
  let slow = "xrpc://satellite:8080" and fast = "xrpc://rack-mate" in
  Cost.observe sj ~dest:slow ~estimated_ms:1.0 ~measured_ms:8.0;
  check floatish "slow dest gets its own factor" 8.0
    (Cost.calibration ~dest:slow sj);
  check int_ "and its own run count" 1 (Cost.runs ~dest:slow sj);
  check floatish "global EMA absorbed the run too" 8.0 (Cost.calibration sj);
  (* an unmeasured destination inherits the global factor, not 1.0 *)
  check floatish "unseen dest falls back to global" 8.0
    (Cost.calibration ~dest:fast sj);
  check int_ "unseen dest has no runs" 0 (Cost.runs ~dest:fast sj);
  (* measuring the fast destination separates the two *)
  Cost.observe sj ~dest:fast ~estimated_ms:4.0 ~measured_ms:2.0;
  check floatish "fast dest factor" 0.5 (Cost.calibration ~dest:fast sj);
  check floatish "slow dest unchanged" 8.0 (Cost.calibration ~dest:slow sj);
  check bool_ "calibration_text lists the destinations" true
    (contains (Cost.calibration_text ()) "satellite"
    && contains (Cost.calibration_text ()) "rack-mate")

let test_feedback_per_destination_flips_choice () =
  with_clean_calibration @@ fun () ->
  let sj = Strategies.Distributed_semijoin in
  let slow = "xrpc://satellite:8080" in
  let est =
    Cost.total (Cost.estimate Cost.default_net Cost.zero_cpu selective_site sj)
  in
  Cost.observe sj ~dest:slow ~estimated_ms:est ~measured_ms:(est *. 10.);
  (* the global EMA moved too (it absorbs every observation), but a
     steady diet of honest runs elsewhere decays it back toward 1.0 while
     the slow destination's own factor stays put at 10.  Decay until the
     global factor sits safely inside the pushdown/semi-join cost gap. *)
  let gap =
    Cost.total
      (Cost.estimate Cost.default_net Cost.zero_cpu selective_site
         Strategies.Predicate_pushdown)
    /. est
  in
  while Cost.calibration sj > 1.0 +. ((gap -. 1.0) /. 2.) do
    Cost.observe sj ~estimated_ms:est ~measured_ms:est
  done;
  let at_slow =
    Cost.choose ~dest:slow Cost.default_net Cost.zero_cpu selective_site
  in
  let elsewhere = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  check string_ "slow destination flips to pushdown" "pushdown"
    (Strategies.short_name at_slow.Cost.chosen.Cost.strategy);
  check string_ "other destinations keep the semi-join" "semijoin"
    (Strategies.short_name elsewhere.Cost.chosen.Cost.strategy)

let test_feedback_per_destination_replay () =
  with_clean_calibration @@ fun () ->
  Flight_recorder.reset ();
  Fun.protect ~finally:Flight_recorder.reset @@ fun () ->
  let sj = Strategies.Distributed_semijoin in
  let dest = "xrpc://satellite:8080" in
  (* the label round-trips the destination *)
  let label = Cost.flight_label ~dest sj ~estimated_ms:1.0 ~measured_ms:3.0 in
  (match Cost.parse_flight_label label with
  | Some (s, Some d, est, meas) ->
      check string_ "label strategy" "semijoin" (Strategies.short_name s);
      check string_ "label dest" dest d;
      check floatish "label est" 1.0 est;
      check floatish "label meas" 3.0 meas
  | _ -> Alcotest.fail ("unparseable flight label: " ^ label));
  ignore (Cost.record_run ~dest sj ~estimated_ms:1.0 ~measured_ms:3.0);
  ignore (Cost.record_run sj ~estimated_ms:1.0 ~measured_ms:1.0);
  let f_dest = Cost.calibration ~dest sj and f_global = Cost.calibration sj in
  (* a fresh session replays the recorder and reconstructs both scopes *)
  Cost.reset_calibration ();
  check int_ "both entries replay" 2 (Cost.replay_flight ());
  check floatish "per-dest factor reconstructed" f_dest
    (Cost.calibration ~dest sj);
  check floatish "global factor reconstructed" f_global (Cost.calibration sj);
  check int_ "per-dest runs reconstructed" 1 (Cost.runs ~dest sj)

(* ------------------------------------------------------------------ *)
(* Explain surfaces                                                    *)
(* ------------------------------------------------------------------ *)

let test_explain_decision () =
  with_clean_calibration @@ fun () ->
  let d = Cost.choose Cost.default_net Cost.zero_cpu selective_site in
  let text = Cost.explain_decision d in
  check bool_ "names the winner" true
    (contains text "chosen: distributed semi-join");
  (* the rejected alternatives appear, with estimates *)
  List.iter
    (fun s ->
      check bool_ ("lists " ^ Strategies.name s) true
        (contains text (Strategies.name s)))
    Strategies.all;
  check bool_ "estimates rendered" true (contains text "est=");
  check bool_ "winner is arrow-tagged" true (contains text "-> distributed");
  let forced =
    Cost.choose ~force:Strategies.Data_shipping Cost.default_net Cost.zero_cpu
      selective_site
  in
  check bool_ "forced decisions say so" true
    (contains (Cost.explain_decision forced) "(forced by XRPC_FORCE_STRATEGY)");
  let json = Cost.decision_json d in
  check bool_ "json: chosen" true (contains json "\"chosen\":\"semijoin\"");
  check bool_ "json: not forced" true (contains json "\"forced\":false");
  check bool_ "json: per-strategy costs" true
    (contains json "\"strategy\":\"relocation\"")

let q7 =
  {
    Strategies.local_doc = "persons.xml";
    remote_uri = "xrpc://B";
    remote_doc = "auctions.xml";
    module_ns = "functions_b";
    module_at = "http://example.org/b.xq";
  }

let test_execute_sites_analysis () =
  let sites strategy =
    Runner.execute_sites
      (Parser.parse_prog (Strategies.query ~local_uri:"xrpc://A" q7 strategy))
  in
  check int_ "data shipping has no execute-at site" 0
    (List.length (sites Strategies.Data_shipping));
  (match sites Strategies.Predicate_pushdown with
  | [ s ] ->
      check bool_ "pushdown dest is the literal" true
        (s.Runner.site_dest = Some "xrpc://B");
      check string_ "pushdown calls Q_B1" "Q_B1" s.Runner.site_fn.Qname.local;
      check int_ "no arguments" 0 s.Runner.site_arity;
      (* the call sits in a for-clause source but depends on nothing the
         loop binds: hoistable, the Q7_1 pattern *)
      check bool_ "in a loop" true s.Runner.site_in_loop;
      check bool_ "loop-invariant" false s.Runner.site_loop_dependent
  | l -> Alcotest.failf "pushdown: expected 1 site, got %d" (List.length l));
  (match sites Strategies.Execution_relocation with
  | [ s ] ->
      check bool_ "relocation runs outside any loop" false s.Runner.site_in_loop;
      check bool_ "loop-invariant" false s.Runner.site_loop_dependent;
      check int_ "persons URL argument" 1 s.Runner.site_arity
  | l -> Alcotest.failf "relocation: expected 1 site, got %d" (List.length l));
  (match sites Strategies.Distributed_semijoin with
  | [ s ] ->
      check string_ "semi-join calls the probe" "Q_B3" s.Runner.site_fn.Qname.local;
      check bool_ "in a loop" true s.Runner.site_in_loop;
      (* the per-person key makes this the Bulk-RPC semi-join shape *)
      check bool_ "loop-DEPENDENT" true s.Runner.site_loop_dependent
  | l -> Alcotest.failf "semi-join: expected 1 site, got %d" (List.length l));
  (* a computed destination cannot be resolved statically *)
  let dynamic =
    Runner.execute_sites
      (Parser.parse_prog
         {|import module namespace b = "functions_b" at "http://example.org/b.xq";
for $d in ("xrpc://B", "xrpc://C") return execute at {$d} { b:Q_B1() }|})
  in
  match dynamic with
  | [ s ] ->
      check bool_ "dynamic dest is unknown" true (s.Runner.site_dest = None);
      check bool_ "and loop-dependent (dest varies per iteration)" true
        s.Runner.site_loop_dependent
  | l -> Alcotest.failf "dynamic: expected 1 site, got %d" (List.length l)

let test_explain_note_hook () =
  let e = Parser.parse_expression {|execute at {"xrpc://B"} { probe(1, 2) }|} in
  check bool_ "no hook, no note" false
    (contains (Looplift.explain e) "optimizer-note");
  Looplift.execute_note_hook :=
    Some
      (fun ~dest ~fn ~nargs ->
        [
          Printf.sprintf "optimizer-note %s %s/%d"
            (Option.value dest ~default:"?")
            fn.Qname.local nargs;
        ]);
  Fun.protect ~finally:(fun () -> Looplift.execute_note_hook := None)
  @@ fun () ->
  let text = Looplift.explain e in
  check bool_ "hook note attached to the execute-at node" true
    (contains text "| optimizer-note xrpc://B probe/2")

(* ------------------------------------------------------------------ *)
(* Measured crossover on deterministic Simnet                          *)
(* ------------------------------------------------------------------ *)

type setting = {
  s_name : string;
  s_scale : Xmark.scale;
  s_latency_ms : float;
  s_bandwidth : float;
}

(* the bench's --quick settings: paper selectivity, everything-matches
   (pushdown overtakes the semi-join), high latency (relocation's extra
   round trip hurts most) *)
let settings =
  let scale p a m = { Xmark.persons = p; auctions = a; matches = m } in
  [
    { s_name = "paper-selectivity"; s_scale = scale 50 400 6;
      s_latency_ms = 0.6; s_bandwidth = 125_000. };
    { s_name = "all-match"; s_scale = scale 120 80 80;
      s_latency_ms = 0.6; s_bandwidth = 125_000. };
    { s_name = "high-latency"; s_scale = scale 50 400 6;
      s_latency_ms = 40.; s_bandwidth = 125_000. };
  ]

(* A (native) + B (wrapper, join detection on); charge_cpu=false keeps the
   virtual clock purely model-driven, so runs are bit-replayable *)
let build_cluster setting =
  let sim =
    {
      Simnet.latency_ms = setting.s_latency_ms;
      bandwidth_bytes_per_ms = setting.s_bandwidth;
      charge_cpu = false;
    }
  in
  let cluster = Cluster.create ~config:sim ~names:[ "A" ] () in
  let a = Cluster.peer cluster "A" in
  let b = Cluster.add_wrapper cluster ~join_detect:true "B" in
  b.Wrapper.transport <- Some (Simnet.transport (Cluster.net cluster));
  let persons_xml = Xmark.persons ~count:setting.s_scale.Xmark.persons () in
  let auctions_xml =
    Xmark.auctions ~count:setting.s_scale.Xmark.auctions
      ~matches:setting.s_scale.Xmark.matches
      ~persons_count:setting.s_scale.Xmark.persons ()
  in
  Database.add_doc_xml a.Peer.db "persons.xml" persons_xml;
  Database.add_doc_xml b.Wrapper.db "auctions.xml" auctions_xml;
  Cluster.register_module_everywhere cluster ~uri:q7.Strategies.module_ns
    ~location:q7.Strategies.module_at (Strategies.functions_b q7);
  (cluster, a, String.length persons_xml, String.length auctions_xml)

let probe_site cluster setting ~persons_bytes ~auctions_bytes ~result_bytes =
  let client = Cluster.client cluster in
  let site0 =
    {
      Cost.default_site with
      Cost.outer_rows = setting.s_scale.Xmark.persons;
      local_doc_bytes = persons_bytes;
      remote_doc_bytes = auctions_bytes;
      remote_rows = setting.s_scale.Xmark.auctions;
      match_rows = setting.s_scale.Xmark.matches;
      result_bytes;
    }
  in
  let site, _ =
    Client.measure_site client ~dest:"xrpc://B" ~site:site0
      ~module_uri:q7.Strategies.module_ns ~location:q7.Strategies.module_at
      ~fn:"Q_B1" []
  in
  site

let test_measured_crossover () =
  List.iter
    (fun setting ->
      (* each setting is its own deployment: the EMA must not leak across
         network parameters (a ratio learned at 0.6ms is wrong at 40ms) *)
      with_clean_calibration @@ fun () ->
      let cluster, a, persons_bytes, auctions_bytes = build_cluster setting in
      let net =
        {
          Cost.latency_ms = setting.s_latency_ms;
          bandwidth_bytes_per_ms = setting.s_bandwidth;
        }
      in
      let baseline =
        Xdm.to_display
          (Peer.query_seq a
             (Strategies.query ~local_uri:"xrpc://A" q7 Strategies.Data_shipping))
      in
      let site =
        probe_site cluster setting ~persons_bytes ~auctions_bytes
          ~result_bytes:(String.length baseline)
      in
      let chosen =
        (Cost.choose net Cost.zero_cpu site).Cost.chosen.Cost.strategy
      in
      let measured =
        List.map
          (fun strategy ->
            Cluster.reset_stats cluster;
            let r =
              Peer.query_seq a (Strategies.query ~local_uri:"xrpc://A" q7 strategy)
            in
            check string_
              (Printf.sprintf "%s: %s answers like data shipping"
                 setting.s_name (Strategies.name strategy))
              baseline (Xdm.to_display r);
            let stats = Cluster.stats cluster in
            (strategy, stats.Simnet.network_ms))
          Strategies.all
      in
      let fastest, _ =
        List.fold_left
          (fun (bs, bm) (s, m) -> if m < bm then (s, m) else (bs, bm))
          (List.hd measured) measured
      in
      check string_
        (Printf.sprintf "%s: the optimizer picked the measured-fastest"
           setting.s_name)
        (Strategies.short_name fastest)
        (Strategies.short_name chosen);
      (* feed the measurements back; the calibrated re-choice on this
         deployment must keep agreeing *)
      List.iter
        (fun (strategy, ms) ->
          let est = Cost.total (Cost.estimate net Cost.zero_cpu site strategy) in
          ignore (Cost.record_run strategy ~estimated_ms:est ~measured_ms:ms))
        measured;
      check string_
        (Printf.sprintf "%s: calibrated re-choice still agrees" setting.s_name)
        (Strategies.short_name fastest)
        (Strategies.short_name
           (Cost.choose net Cost.zero_cpu site).Cost.chosen.Cost.strategy))
    settings

let test_forced_bulk_vs_singles () =
  (* the Table 2 claim, live: the same semi-join forced one-at-a-time
     sends more messages, costs more virtual time, answers identically *)
  let setting =
    { s_name = "table2"; s_scale = { Xmark.persons = 12; auctions = 30; matches = 4 };
      s_latency_ms = 0.6; s_bandwidth = 125_000. }
  in
  let measure mode =
    let cluster, a, _, _ = build_cluster setting in
    with_env_strategy mode @@ fun () ->
    Cluster.reset_stats cluster;
    let r =
      Peer.query_seq a
        (Strategies.query ~local_uri:"xrpc://A" q7 Strategies.Distributed_semijoin)
    in
    let stats = Cluster.stats cluster in
    (Xdm.to_display r, stats.Simnet.network_ms, stats.Simnet.messages)
  in
  let bulk_disp, bulk_ms, bulk_msgs = measure "bulk" in
  let singles_disp, singles_ms, singles_msgs = measure "singles" in
  check string_ "identical answers either way" bulk_disp singles_disp;
  check bool_
    (Printf.sprintf "one-at-a-time sends more messages (%d vs %d)" singles_msgs
       bulk_msgs)
    true (singles_msgs > bulk_msgs);
  check bool_ "and costs more virtual time" true (singles_ms > bulk_ms);
  let est_bulk, est_singles =
    Cost.estimate_rpc Cost.default_net ~ncalls:setting.s_scale.Xmark.persons
      ~bytes_per_call:128 ()
  in
  check bool_ "the model agrees with the measured ordering" true
    (est_bulk < est_singles)

let test_estimator_annotation () =
  (* install_estimator: profiled Bulk RPC dispatches carry a Table-2
     annotation (predicted bulk vs singles cost next to the measurement) *)
  let setting =
    { s_name = "annot"; s_scale = { Xmark.persons = 8; auctions = 20; matches = 3 };
      s_latency_ms = 0.6; s_bandwidth = 125_000. }
  in
  let _, a, _, _ = build_cluster setting in
  let semijoin = Strategies.query ~local_uri:"xrpc://A" q7 Strategies.Distributed_semijoin in
  let _, bare = Profile.profiled ~label:"bare" (fun () -> Peer.query_seq a semijoin) in
  check bool_ "no estimator, no annotation" true
    (not
       (List.exists (fun s -> contains s "table2") (Profile.annotations bare)));
  Cost.install_estimator ();
  Fun.protect ~finally:Cost.uninstall_estimator @@ fun () ->
  let _, profile =
    Profile.profiled ~label:"annotated" (fun () -> Peer.query_seq a semijoin)
  in
  let notes = Profile.annotations profile in
  check bool_ "Table-2 annotation present" true
    (List.exists (fun s -> contains s "table2 Q_B3") notes);
  check bool_ "it compares bulk against singles" true
    (List.exists (fun s -> contains s "bulk=" && contains s "singles=") notes);
  check bool_ "rendered profiles show the optimizer section" true
    (contains (Profile.render profile) "optimizer:")

(* ------------------------------------------------------------------ *)
(* Chaos differential: the optimizer never changes answers             *)
(* ------------------------------------------------------------------ *)

let chaos_policy =
  {
    Transport.timeout_ms = 1_000.;
    max_retries = 4;
    backoff_base_ms = 5.;
    backoff_cap_ms = 40.;
    backoff_jitter = 0.5;
    breaker_threshold = 0;
    breaker_cooldown_ms = 100.;
  }

let chaos_seeds () =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> List.init 4 (fun i -> 40 + i)

let fault_replay_hint seed = Printf.sprintf "FAULT_SEED=%d dune runtest" seed

let test_chaos_differential () =
  (* the acceptance property: every strategy the optimizer can pick
     returns answers identical to plain Bulk RPC data shipping, even
     under fault schedules — a run may fail outright, it may never
     return a silently different answer *)
  with_clean_calibration @@ fun () ->
  let scale = { Xmark.persons = 20; auctions = 60; matches = 5 } in
  let sim = { Simnet.default_config with Simnet.charge_cpu = false } in
  let make_cluster ?faults () =
    let cluster =
      Cluster.create ~config:sim ?faults ~policy:chaos_policy
        ~names:[ "A"; "B" ] ()
    in
    let a = Cluster.peer cluster "A" and b = Cluster.peer cluster "B" in
    Database.add_doc_xml a.Peer.db "persons.xml"
      (Xmark.persons ~count:scale.Xmark.persons ());
    Database.add_doc_xml b.Peer.db "auctions.xml"
      (Xmark.auctions ~count:scale.Xmark.auctions ~matches:scale.Xmark.matches
         ~persons_count:scale.Xmark.persons ());
    Cluster.register_module_everywhere cluster ~uri:q7.Strategies.module_ns
      ~location:q7.Strategies.module_at (Strategies.functions_b q7);
    (cluster, a)
  in
  let run a strategy =
    Peer.query_seq a (Strategies.query ~local_uri:"xrpc://A" q7 strategy)
  in
  (* fault-free reference: plain Bulk RPC data shipping, plus the
     optimizer's pick for this deployment (probed live) *)
  let clean_cluster, clean_a = make_cluster () in
  let reference = Xdm.to_display (run clean_a Strategies.Data_shipping) in
  let persons_bytes =
    String.length (Xmark.persons ~count:scale.Xmark.persons ())
  in
  let auctions_bytes =
    String.length
      (Xmark.auctions ~count:scale.Xmark.auctions ~matches:scale.Xmark.matches
         ~persons_count:scale.Xmark.persons ())
  in
  let setting =
    { s_name = "chaos"; s_scale = scale; s_latency_ms = 0.6;
      s_bandwidth = 125_000. }
  in
  let site =
    probe_site clean_cluster setting ~persons_bytes ~auctions_bytes
      ~result_bytes:(String.length reference)
  in
  let chosen =
    (Cost.choose Cost.default_net Cost.zero_cpu site).Cost.chosen.Cost.strategy
  in
  let ran = ref 0 and gave_up = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun strategy ->
          let _, a = make_cluster ~faults:(Simnet.chaos ~seed ~loss:0.05 ()) () in
          match run a strategy with
          | r ->
              incr ran;
              if Xdm.to_display r <> reference then
                Alcotest.failf
                  "seed %d: %s%s diverged from plain Bulk RPC under faults\n\
                   replay: %s"
                  seed (Strategies.name strategy)
                  (if strategy = chosen then " (the optimizer's pick)" else "")
                  (fault_replay_hint seed)
          | exception _ -> incr gave_up)
        Strategies.all)
    (chaos_seeds ());
  if List.length (chaos_seeds ()) > 1 && !ran = 0 then
    Alcotest.fail "every chaos run failed outright; the differential proved nothing"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "optimizer"
    [
      ( "cost-model",
        [
          Alcotest.test_case "per-strategy message counts and payloads" `Quick
            test_message_counts;
          Alcotest.test_case "Table 2: bulk vs one-at-a-time estimates" `Quick
            test_table2_estimates;
          Alcotest.test_case "crossover: selectivity" `Quick
            test_model_crossover_selectivity;
          Alcotest.test_case "crossover: latency and bandwidth" `Quick
            test_model_crossover_latency;
        ] );
      ( "monotonicity",
        [
          Alcotest.test_case "site statistics (seeded battery)" `Quick
            test_monotone_site_stats;
          Alcotest.test_case "latency and bandwidth (seeded battery)" `Quick
            test_monotone_network;
          Alcotest.test_case "per-peer CPU (seeded battery)" `Quick
            test_monotone_cpu;
        ] );
      ( "choice",
        [
          Alcotest.test_case "ranking is cheapest-first" `Quick test_choose_ranks;
          Alcotest.test_case "force override" `Quick test_choose_force;
          Alcotest.test_case "strategy name round-trips" `Quick
            test_strategy_names;
          Alcotest.test_case "XRPC_FORCE_STRATEGY" `Quick test_force_env;
          Alcotest.test_case "rpc-mode parsing" `Quick test_rpc_mode_parsing;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "EMA calibration" `Quick test_feedback_ema;
          Alcotest.test_case "measured runs flip the choice" `Quick
            test_feedback_flips_choice;
          Alcotest.test_case "flight-recorder replay" `Quick
            test_feedback_flight_replay;
          Alcotest.test_case "per-destination calibration" `Quick
            test_feedback_per_destination;
          Alcotest.test_case "per-destination choice flip" `Quick
            test_feedback_per_destination_flips_choice;
          Alcotest.test_case "per-destination flight replay" `Quick
            test_feedback_per_destination_replay;
        ] );
      ( "explain",
        [
          Alcotest.test_case "decision rendering and JSON" `Quick
            test_explain_decision;
          Alcotest.test_case "static execute-at site analysis" `Quick
            test_execute_sites_analysis;
          Alcotest.test_case "loop-lift note hook" `Quick test_explain_note_hook;
        ] );
      ( "measured",
        [
          Alcotest.test_case "crossover: choice == measured fastest" `Quick
            test_measured_crossover;
          Alcotest.test_case "forced bulk vs one-at-a-time" `Quick
            test_forced_bulk_vs_singles;
          Alcotest.test_case "profiled Table-2 annotation" `Quick
            test_estimator_annotation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "optimizer picks never change answers" `Quick
            test_chaos_differential;
        ] );
    ]
