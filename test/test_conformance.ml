(* A conformance-style corpus for the XQuery engine: each case exercises a
   distinct language behaviour not already covered by test_xquery.ml —
   interactions between features, boundary conditions, and error cases.
   Run against a small library database. *)

open Xrpc_xml
module Context = Xrpc_xquery.Context
module Runner = Xrpc_xquery.Runner
module Parser = Xrpc_xquery.Parser

let check = Alcotest.check
let string_ = Alcotest.string

let library_xml =
  {|<library xmlns:cat="urn:catalog">
  <shelf floor="1">
    <book year="1999" cat:id="b1"><title>Principles of DDBS</title><price>80.5</price>
      <authors><author>Ozsu</author><author>Valduriez</author></authors></book>
    <book year="2004" cat:id="b2"><title>XQuery on SQL Hosts</title><price>35</price>
      <authors><author>Grust</author></authors></book>
  </shelf>
  <shelf floor="2">
    <book year="2007" cat:id="b3"><title>XRPC</title><price>0</price>
      <authors><author>Zhang</author><author>Boncz</author></authors></book>
  </shelf>
</library>|}

let store = lazy (Store.shred ~uri:"library.xml" (Xml_parse.document library_xml))

let resolver ~uri:_ ~location:_ = failwith "no modules"

let run q =
  let ctx =
    { (Context.empty ()) with Context.doc_resolver = (fun _ -> Lazy.force store) }
  in
  let result, _ = Runner.run ~ctx ~resolver q in
  Xdm.to_display result

let cases =
  [
    (* --- path / predicate interactions --- *)
    ("predicate chaining", {|count(doc("l")//book[price < 50][@year > 2000])|}, "2");
    ("predicate on attribute step", {|string(doc("l")//shelf/@floor[. = "2"])|}, "2");
    ("numeric predicate after filter", {|string((doc("l")//author)[3])|}, "Grust");
    ("last in nested predicate",
     {|doc("l")//book[authors/author[last()] = "Boncz"]/string(title)|}, "XRPC");
    ("axis after predicate",
     {|string(doc("l")//book[@year = 2004]/following-sibling::*[1]/@year)|}, "");
    ("parent of attribute",
     {|count(doc("l")//@year/..)|}, "3");
    ("descendant-or-self on element",
     {|count(doc("l")//shelf[1]/descendant-or-self::*)|}, "12");
    ("per-step positional + attribute wildcard",
     {|count(doc("l")//book[1]/@*)|}, "4"); (* //book[1] = first PER shelf *)
    ("attribute wildcard", {|count((doc("l")//book)[1]/@*)|}, "2");
    ("namespace-sensitive attribute",
     {|declare namespace cat = "urn:catalog";
       string(doc("l")//book[title = "XRPC"]/@cat:id)|}, "b3");
    ("namespace-uri of prefixed attribute",
     {|declare namespace cat = "urn:catalog";
       namespace-uri(exactly-one((doc("l")//book)[1]/@cat:id))|}, "urn:catalog");
    ("path result is document-ordered",
     {|string-join(doc("l")//book[price >= 0]/string(@year), " ")|},
     "1999 2004 2007");
    ("union across shelves",
     {|count(doc("l")//shelf[1]/book | doc("l")//shelf[2]/book)|}, "3");
    ("except attribute nodes",
     {|count(doc("l")//book/@* except doc("l")//book/@year)|}, "3");
    (* --- FLWOR interactions --- *)
    ("let rebinding shadows",
     "let $x := 1 let $x := $x + 1 return $x", "2");
    ("for over path with positional",
     {|for $b at $i in doc("l")//book return concat($i, ":", $b/@year)|},
     "1:1999 2:2004 3:2007");
    ("order by computed key",
     {|for $b in doc("l")//book order by number($b/price) return string($b/@year)|},
     "2007 2004 1999");
    ("order by string key descending",
     {|for $a in doc("l")//author order by string($a) descending return string($a)|},
     "Zhang Valduriez Ozsu Grust Boncz");
    ("where with and/or",
     {|for $b in doc("l")//book where $b/price > 10 and $b/@year < 2005 return string($b/title)|},
     "Principles of DDBS XQuery on SQL Hosts");
    ("nested flwor correlated",
     {|for $s in doc("l")//shelf
       for $b in $s/book
       return concat($s/@floor, "-", $b/@year)|},
     "1-1999 1-2004 2-2007");
    ("flwor over empty binds nothing", "for $x in () return 1", "");
    ("let of empty", "let $x := () return count($x)", "0");
    ("multiple variables one for",
     "for $x in (1,2), $y in (10,20) return $x + $y", "11 21 12 22");
    (* --- aggregation + arithmetic --- *)
    ("sum over prices", {|sum(doc("l")//price)|}, "115.5");
    ("avg of mapped values",
     {|avg(for $b in doc("l")//book return $b/@year * 1)|}, "2003.33333333");
    ("max over attribute", {|max(doc("l")//book/@year)|}, "2007");
    ("count distinct authors", {|count(distinct-values(doc("l")//author))|}, "5");
    ("arithmetic with untyped node",
     {|exactly-one((doc("l")//book)[1]/price) + 0.5|}, "81");
    ("unary minus chain", "-(-(5))", "5");
    ("modulo negative", "-7 mod 2", "-1");
    ("decimal precision", "0.1 + 0.2 < 0.31", "true");
    ("empty operand yields empty", "count(1 + ())", "0");
    (* --- comparisons --- *)
    ("general comparison node vs number", {|doc("l")//price > 80|}, "true");
    ("value comparison via string", {|"b" ge "a"|}, "true");
    ("node identity same node",
     {|let $b := (doc("l")//book)[1] return $b is $b|}, "true");
    ("node identity different nodes",
     {|(doc("l")//book)[1] is (doc("l")//book)[2]|}, "false");
    ("document order operator",
     {|(doc("l")//book)[1] << (doc("l")//book)[3]|}, "true");
    ("constructed nodes compare by creation order",
     {|let $a := <a/> let $b := <b/> return $a << $b|}, "true");
    (* --- constructors --- *)
    ("attribute from attribute node",
     {|<copy>{(doc("l")//book)[1]/@year}</copy>|}, {|<copy year="1999"/>|});
    ("element copy loses original identity",
     {|let $t := (doc("l")//title)[1]
       let $c := <w>{$t}</w>
       return exactly-one($c/title) is $t|}, "false");
    ("computed element with QName from data",
     {|element {concat("tag", "1")} {"x"}|}, "<tag1>x</tag1>");
    ("nested direct constructors with exprs",
     {|<r>{for $i in 1 to 2 return <i v="{$i}"/>}</r>|},
     {|<r><i v="1"/><i v="2"/></r>|});
    ("text node merging in content",
     {|count((<t>{"a", "b"}</t>)/text())|}, "1");
    ("document node constructor",
     {|count(document {<a/>, <b/>}/node())|}, "2");
    ("namespaced constructor",
     {|declare namespace my = "urn:mine";
       namespace-uri(<my:e/>)|}, "urn:mine");
    (* --- typeswitch / instance of / casts --- *)
    ("typeswitch on node kind",
     {|typeswitch ((doc("l")//title)[1])
       case element() return "elem" case text() return "text" default return "?"|},
     "elem");
    ("typeswitch binds case variable",
     {|typeswitch (5) case $i as xs:integer return $i * 2 default return 0|},
     "10");
    ("instance of node sequence",
     {|doc("l")//book instance of element()+|}, "true");
    ("instance of mixed fails",
     {|(1, <a/>) instance of xs:integer+|}, "false");
    ("castable chain guard",
     {|for $s in ("3", "x", "5") return if ($s castable as xs:integer) then xs:integer($s) else -1|},
     "3 -1 5");
    ("cast empty with ?", {|count(() cast as xs:integer?)|}, "0");
    ("treat as passes", "(1, 2) treat as xs:integer+", "1 2");
    (* --- functions --- *)
    ("function sees no outer context",
     {|declare function local:f() { count(()) };
       doc("l")//book/local:f()|}, "0 0 0");
    ("recursion depth moderate",
     {|declare function local:down($n) { if ($n = 0) then 0 else local:down($n - 1) };
       local:down(500)|}, "0");
    ("higher arity distinct from lower",
     {|declare function local:g($a) { $a };
       declare function local:g($a, $b) { $a * $b };
       (local:g(3), local:g(3, 4))|}, "3 12");
    ("string of empty via function", {|string-join(for $x in () return "a", "-")|}, "");
    (* --- quantifiers --- *)
    ("some over path", {|some $p in doc("l")//price satisfies $p = 0|}, "true");
    ("every over path", {|every $b in doc("l")//book satisfies count($b/authors/author) >= 1|},
     "true");
    ("quantifier over empty", "every $x in () satisfies false()", "true");
    ("some over empty", "some $x in () satisfies true()", "false");
    (* --- builtin conformance: strings --- *)
    ("substring from", {|substring("distributed", 4)|}, "tributed");
    ("substring from length", {|substring("distributed", 4, 3)|}, "tri");
    ("substring start before 1", {|substring("abcde", 0)|}, "abcde");
    ("substring start 0 clips length", {|substring("abcde", 0, 3)|}, "ab");
    ("substring past the end", {|substring("abc", 10)|}, "");
    ("substring length past the end", {|substring("abcde", 2, 100)|}, "bcde");
    ("substring non-positive length", {|substring("abcde", 3, -1)|}, "");
    ("substring of empty sequence", {|substring((), 2)|}, "");
    ("contains hit", {|contains("loop-lifted", "lift")|}, "true");
    ("contains empty needle", {|contains("abc", "")|}, "true");
    ("contains in empty string", {|contains("", "a")|}, "false");
    ("contains empty in empty", {|contains((), ())|}, "true");
    ("contains over node content",
     {|contains(string((doc("l")//title)[2]), "SQL")|}, "true");
    (* --- builtin conformance: numerics --- *)
    ("round down", "round(2.4)", "2");
    ("round up", "round(2.6)", "3");
    ("round negative", "round(-2.6)", "-3");
    ("round integer passthrough", "round(7)", "7");
    ("round of empty is empty", "count(round(()))", "0");
    ("round of untyped node", {|round((doc("l")//price)[1])|}, "81");
    (* --- builtin conformance: sequences --- *)
    ("empty of empty", "empty(())", "true");
    ("empty of one", "empty(0)", "false");
    ("empty of missing path", {|empty(doc("l")//nosuch)|}, "true");
    ("exists of nodes", {|exists(doc("l")//book)|}, "true");
    ("exists of empty", "exists(())", "false");
    ("reverse atomics", "reverse((1, 2, 3))", "3 2 1");
    ("reverse of empty", "count(reverse(()))", "0");
    ("reverse keeps nodes whole",
     {|string((reverse(doc("l")//book))[1]/@year)|}, "2007");
    ("reverse of strings",
     {|string-join(reverse(for $a in doc("l")//author return string($a)), " ")|},
     "Boncz Zhang Grust Valduriez Ozsu");
    ("index-of all positions", "index-of((10, 20, 30, 20), 20)", "2 4");
    ("index-of over empty sequence", "count(index-of((), 1))", "0");
    ("index-of skips incomparable items", {|index-of((1, "a", 2, 1), 1)|}, "1 4");
    ("index-of atomizes nodes", {|index-of(doc("l")//author, "Grust")|}, "3");
  ]

let error_cases =
  [
    ("ebv of two atomics", "if ((1,2)) then 1 else 0");
    ("arith on two items", "(1,2) + 1");
    ("value comparison two items", "(1,2) eq 1");
    ("exactly-one of none", "exactly-one(())");
    ("treat as violation", "(1, 2) treat as xs:integer");
    ("cast empty without ?", "() cast as xs:integer");
    ("mixed path result", {|(doc("l")//book/(title, string(@year)))|});
    ("duplicate constructed attribute (XQDY0025)",
     {|<e>{(doc("l")//book)/@year}</e>|});
    (* builtin type errors *)
    ("substring over two strings", {|substring(("a", "b"), 1)|});
    ("contains over two strings", {|contains(("a", "b"), "a")|});
    ("round over two numbers", "round((1, 2))");
    ("round of non-numeric string", {|round("abc")|});
    ("index-of empty search value", "index-of((1, 2), ())");
    ("index-of two search values", "index-of((1, 2), (1, 2))");
  ]

let () =
  Alcotest.run "conformance"
    [
      ( "behaviours",
        List.map
          (fun (name, q, expected) ->
            Alcotest.test_case name `Quick (fun () ->
                check string_ name expected (run q)))
          cases );
      ( "dynamic-errors",
        List.map
          (fun (name, q) ->
            Alcotest.test_case name `Quick (fun () ->
                match run q with
                | exception
                    ( Xdm.Dynamic_error _ | Xrpc_xquery.Eval.Error _
                    | Xs.Type_error _ ) ->
                    ()
                | r -> Alcotest.fail (name ^ ": expected error, got " ^ r)))
          error_cases );
    ]
