(* Telemetry-plane suite: the sliding-window series (bucket rotation on
   the virtual clock, concurrent writers, steady-state allocation), the
   per-endpoint SLO tracker (error budgets, burn rate, probes, the
   ready -> unready -> ready flip under seeded Simnet chaos), the
   snapshot wire format, and the federation aggregation — a 4-peer
   cluster whose /clusterz view must agree with each peer's own
   /healthz, with a killed peer surfacing as unreachable. *)

open Xrpc_xml
module Window = Xrpc_obs.Window
module Slo = Xrpc_obs.Slo
module Telemetry = Xrpc_obs.Telemetry
module Trace = Xrpc_obs.Trace
module Cluster = Xrpc_core.Cluster
module Xrpc_client = Xrpc_core.Xrpc_client
module Server = Xrpc_core.Xrpc_server
module Peer = Xrpc_peer.Peer
module Shard = Xrpc_peer.Shard
module Simnet = Xrpc_net.Simnet
module Executor = Xrpc_net.Executor
module Testmod = Xrpc_workloads.Testmod

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let float_ = Alcotest.float 1e-9

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every test starts from empty global registries and leaves the clock
   on the wall and windowed recording on. *)
let with_clean f =
  let setup () =
    Trace.use_wall_clock ();
    Window.set_enabled true;
    Window.reset ();
    Slo.reset ();
    Telemetry.reset_sources ()
  in
  setup ();
  Fun.protect ~finally:setup f

let fake_clock () =
  let t = ref 0. in
  Trace.set_clock (fun () -> !t);
  t

(* ------------------------------------------------------------------ *)
(* Window: rotation on the virtual clock                               *)
(* ------------------------------------------------------------------ *)

let test_counter_rotation () =
  with_clean @@ fun () ->
  let t = fake_clock () in
  let c = Window.counter "w.rot.ctr" in
  Window.incr c;
  Window.add c 4.;
  check float_ "fast sum at t=0" 5. (Window.sum_window c);
  check float_ "slow sum at t=0" 5. (Window.sum_window ~tier:Window.Slow c);
  check float_ "rate = sum / window" (5. /. 60.) (Window.rate c);
  t := 30_000.;
  Window.add c 3.;
  check float_ "both fast buckets live" 8. (Window.sum_window c);
  (* one tick past the first bucket's expiry: only the t=30s sample left *)
  t := 61_000.;
  check float_ "t=0 bucket aged out" 3. (Window.sum_window c);
  t := 200_000.;
  check float_ "fast window fully decayed" 0. (Window.sum_window c);
  check float_ "slow window still holds all" 8.
    (Window.sum_window ~tier:Window.Slow c);
  t := 3_700_000.;
  check float_ "slow window decayed after an hour" 0.
    (Window.sum_window ~tier:Window.Slow c);
  (* kind clash on a registered name is rejected *)
  match Window.gauge "w.rot.ctr" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted"

let test_histogram_quantiles_rotation () =
  with_clean @@ fun () ->
  let t = fake_clock () in
  let h = Window.histogram "w.rot.h" in
  for _ = 1 to 50 do
    Window.observe h 10.
  done;
  (* all samples equal: every quantile clamps to the single value *)
  check float_ "p50 of constant samples" 10. (Window.quantile h 0.50);
  check float_ "p99 of constant samples" 10. (Window.quantile h 0.99);
  t := 30_000.;
  for _ = 1 to 50 do
    Window.observe h 1000.
  done;
  (* 50 x 10ms + 50 x 1000ms: p50 sits in the 10ms log-bucket, p99 in
     the 1000ms one — both within one bucket width of the true value *)
  let p50 = Window.quantile h 0.50 and p99 = Window.quantile h 0.99 in
  check bool_ "p50 near 10ms" true (p50 >= 10. && p50 <= 32.);
  check bool_ "p99 near 1000ms" true (p99 >= 500. && p99 <= 1000.);
  check int_ "fast count merges both buckets" 100 (Window.count h);
  check float_ "mean over both" 505. (Window.mean h);
  check float_ "window max" 1000. (Window.window_max h);
  check float_ "window min" 10. (Window.window_min h);
  (* cross the first batch's expiry: quantiles decay to the survivors *)
  t := 61_500.;
  check int_ "only second batch live" 50 (Window.count h);
  let p50 = Window.quantile h 0.50 in
  check bool_ "p50 follows the survivors" true (p50 >= 500. && p50 <= 1000.);
  (* cross the second batch's expiry: the fast window reads empty *)
  t := 92_000.;
  check int_ "fast window empty" 0 (Window.count h);
  check bool_ "empty window quantile is nan" true
    (Float.is_nan (Window.quantile h 0.99));
  (* the slow tier still remembers the hour *)
  check int_ "slow tier holds all 100" 100 (Window.count ~tier:Window.Slow h);
  let p99h = Window.quantile ~tier:Window.Slow h 0.99 in
  check bool_ "slow-tier p99" true (p99h >= 500. && p99h <= 1000.)

let test_gauge_and_rewind () =
  with_clean @@ fun () ->
  let t = fake_clock () in
  let g = Window.gauge "w.rot.g" in
  Window.set g 3.;
  Window.set g 7.;
  check float_ "gauge last" 7. (Window.last g);
  check float_ "gauge window max" 7. (Window.window_max g);
  (* clock rewind (a test resetting a virtual clock): samples stamped in
     the "future" read as empty instead of corrupting the window *)
  let h = Window.histogram "w.rot.rewind" in
  t := 120_000.;
  Window.observe h 5.;
  check int_ "sample visible at its own time" 1 (Window.count h);
  t := 10_000.;
  check int_ "future sample invisible after rewind" 0 (Window.count h);
  Window.observe h 7.;
  check int_ "writes work after rewind" 1 (Window.count h)

(* ------------------------------------------------------------------ *)
(* Window: concurrency and steady-state allocation                     *)
(* ------------------------------------------------------------------ *)

let test_concurrent_observers () =
  with_clean @@ fun () ->
  let _t = fake_clock () in
  let c = Window.counter "w.conc.ctr" in
  let h = Window.histogram "w.conc.h" in
  let worker () =
    for i = 1 to 10_000 do
      Window.incr c;
      Window.observe h (float_of_int (i land 15))
    done
  in
  let ths = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join ths;
  (* the per-series mutex makes rotation atomic with writes: with the
     clock frozen, not one of the 40k increments may be lost *)
  check float_ "40k increments, none lost" 40_000. (Window.sum_window c);
  check int_ "40k observations" 40_000 (Window.count h);
  check int_ "slow tier agrees" 40_000 (Window.count ~tier:Window.Slow h);
  check bool_ "quantile defined" true (not (Float.is_nan (Window.quantile h 0.5)))

let test_steady_state_allocation () =
  with_clean @@ fun () ->
  let _t = fake_clock () in
  let h = Window.histogram "w.alloc.h" in
  let c = Window.counter "w.alloc.c" in
  for _ = 1 to 1_000 do
    Window.observe h 5.;
    Window.incr c
  done;
  (* steady state: the rings are preallocated, so per-observation cost
     is a few boxed floats at most — no per-sample data structures *)
  let n = 50_000 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to n do
    Window.observe h 5.;
    Window.incr c
  done;
  let per_op = (Gc.allocated_bytes () -. a0) /. float_of_int n in
  if per_op > 128. then
    Alcotest.failf "windowed record path allocates %.1f bytes/op" per_op

let test_disabled_records_nothing () =
  with_clean @@ fun () ->
  let _t = fake_clock () in
  let c = Window.counter "w.off.ctr" in
  let h = Window.histogram "w.off.h" in
  Window.set_enabled false;
  Window.incr c;
  Window.observe h 5.;
  Slo.record ~scope:"xrpc://off" ~endpoint:"e" ~dur_ms:1. ~error:true ();
  Window.set_enabled true;
  check float_ "counter untouched" 0. (Window.sum_window c);
  check int_ "histogram untouched" 0 (Window.count h);
  check int_ "no SLO entry created" 0
    (List.length (Slo.endpoints ~scope:"xrpc://off" ()))

let test_export_surfaces () =
  with_clean @@ fun () ->
  let _t = fake_clock () in
  let h = Window.histogram "w.exp.ms" in
  List.iter (Window.observe h) [ 1.; 2.; 4. ];
  let text = Window.to_text () in
  check bool_ "text has 1m count" true (contains text "w.exp.ms_1m_count 3");
  check bool_ "text has p99" true (contains text "w.exp.ms_1m_p99");
  let json = Window.to_json () in
  check bool_ "json has series" true (contains json "\"w.exp.ms\"");
  check bool_ "json has count" true (contains json "\"count_1m\": 3");
  check bool_ "combined export has cumulative half" true
    (contains (Window.export_text ()) "w.exp.ms_1m_count")

(* ------------------------------------------------------------------ *)
(* SLO: budgets, burn, probes                                          *)
(* ------------------------------------------------------------------ *)

let test_slo_budget_and_burn () =
  with_clean @@ fun () ->
  let t = fake_clock () in
  let scope = "xrpc://s" in
  for _ = 1 to 100 do
    Slo.record ~scope ~endpoint:"q" ~dur_ms:5. ~error:false ()
  done;
  (match Slo.endpoints ~scope () with
  | [ h ] ->
      check string_ "ready on clean traffic" "ready"
        (Slo.state_label h.Slo.h_state);
      check float_ "full budget" 1. h.Slo.h_budget;
      check float_ "no burn" 0. h.Slo.h_burn
  | l -> Alcotest.failf "expected 1 endpoint, got %d" (List.length l));
  (* 2 errors against a 1% objective on 102 requests: over budget *)
  for _ = 1 to 2 do
    Slo.record ~scope ~endpoint:"q" ~dur_ms:5. ~error:true ()
  done;
  let st, reasons = Slo.evaluate ~scope () in
  check string_ "unready once budget exhausted" "unready" (Slo.state_label st);
  check bool_ "reason names the budget" true
    (List.exists (fun r -> contains r "error budget") reasons);
  (match Slo.endpoints ~scope () with
  | [ h ] -> check bool_ "burn rate above 1" true (h.Slo.h_burn > 1.)
  | _ -> Alcotest.fail "endpoint vanished");
  (* the budget is rolling: an hour later the bad window has decayed *)
  t := 3_700_000.;
  check string_ "budget replenished by decay" "ready"
    (Slo.state_label (fst (Slo.evaluate ~scope ())));
  (* latency objective: slow-but-successful traffic degrades, it does
     not drop readiness *)
  for _ = 1 to 15 do
    Slo.record ~scope ~endpoint:"slow" ~dur_ms:500. ~error:false ()
  done;
  let st, reasons = Slo.evaluate ~scope () in
  check string_ "degraded on p99 breach" "degraded" (Slo.state_label st);
  check bool_ "reason names p99" true
    (List.exists (fun r -> contains r "p99") reasons);
  (* healthz renderings carry the state *)
  check bool_ "healthz text" true
    (contains (Slo.healthz_text ~scope ()) "ready: degraded");
  check bool_ "healthz json" true
    (contains (Slo.healthz_json ~scope ()) "\"state\": \"degraded\"")

let test_slo_probes () =
  with_clean @@ fun () ->
  let mode = ref Slo.Probe_ok in
  Slo.register_probe ~scope:"xrpc://p" ~name:"queue" (fun () -> !mode);
  let state scope = Slo.state_label (fst (Slo.evaluate ~scope ())) in
  check string_ "probe ok" "ready" (state "xrpc://p");
  mode := Slo.Probe_degraded "queue building";
  check string_ "probe degrades" "degraded" (state "xrpc://p");
  mode := Slo.Probe_unready "queue saturated";
  let st, reasons = Slo.evaluate ~scope:"xrpc://p" () in
  check string_ "probe drops readiness" "unready" (Slo.state_label st);
  check bool_ "probe reason is named" true
    (List.exists (fun r -> contains r "queue: queue saturated") reasons);
  (* a process-global probe applies to every scope *)
  mode := Slo.Probe_ok;
  Slo.register_probe ~name:"disk" (fun () -> Slo.Probe_degraded "disk 95% full");
  check string_ "global probe reaches scoped healthz" "degraded"
    (state "xrpc://p");
  (* a raising probe reads as unready, never as a crash *)
  Slo.register_probe ~scope:"xrpc://q" ~name:"boom" (fun () -> failwith "x");
  check string_ "raising probe = unready" "unready" (state "xrpc://q");
  (* scopes are isolated: peer r sees only the global probe *)
  check string_ "other scopes unaffected" "degraded" (state "xrpc://r")

(* ------------------------------------------------------------------ *)
(* Snapshot wire format                                                *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  with_clean @@ fun () ->
  let sn =
    {
      Telemetry.sn_peer = "xrpc://p1";
      sn_at_ms = 12345.5;
      sn_state = "degraded";
      sn_reasons = [ "p99 over\tobjective"; "second\nline" ];
      sn_gauges = [ ("active", 3.); ("lag", 0.25) ];
      sn_endpoints =
        [
          {
            Telemetry.ep_name = "films:filmsByActor";
            ep_rate = 1.5;
            ep_err_rate = 0.01;
            ep_p50 = 2.;
            ep_p95 = 8.;
            ep_p99 = 20.5;
            ep_reqs_1m = 90.;
          };
        ];
      sn_shard_version = Some 7;
      sn_breakers = [ ("xrpc://p2", "open") ];
    }
  in
  let rt = Telemetry.of_wire (Telemetry.to_wire sn) in
  check string_ "peer" "xrpc://p1" rt.Telemetry.sn_peer;
  check string_ "state" "degraded" rt.Telemetry.sn_state;
  check (Alcotest.float 1e-6) "timestamp" 12345.5 rt.Telemetry.sn_at_ms;
  (* tabs/newlines inside values are flattened to spaces, never promoted
     to field or record separators *)
  check
    (Alcotest.list string_)
    "reasons sanitized"
    [ "p99 over objective"; "second line" ]
    rt.Telemetry.sn_reasons;
  check bool_ "shard version" true (rt.Telemetry.sn_shard_version = Some 7);
  check bool_ "breakers" true
    (rt.Telemetry.sn_breakers = [ ("xrpc://p2", "open") ]);
  check bool_ "gauges" true
    (List.assoc "lag" rt.Telemetry.sn_gauges = 0.25);
  (match rt.Telemetry.sn_endpoints with
  | [ e ] ->
      check string_ "endpoint name" "films:filmsByActor" e.Telemetry.ep_name;
      check (Alcotest.float 1e-6) "p99" 20.5 e.Telemetry.ep_p99;
      check (Alcotest.float 1e-6) "reqs" 90. e.Telemetry.ep_reqs_1m
  | l -> Alcotest.failf "expected 1 endpoint, got %d" (List.length l));
  (* nan quantiles survive the round trip as nan, and an unreachable
     pseudo-snapshot is wire-clean too *)
  let u = Telemetry.unreachable ~peer:"xrpc://p3" ~at_ms:1. ~reason:"down" in
  let u' = Telemetry.of_wire (Telemetry.to_wire u) in
  check string_ "unreachable round-trips" "unreachable" u'.Telemetry.sn_state;
  check (Alcotest.list string_) "reason kept" [ "down" ] u'.Telemetry.sn_reasons

(* ------------------------------------------------------------------ *)
(* Executor instrumentation                                            *)
(* ------------------------------------------------------------------ *)

let test_executor_instrumentation () =
  with_clean @@ fun () ->
  let e = Executor.pool 2 in
  Fun.protect ~finally:(fun () -> Executor.shutdown e) @@ fun () ->
  let futs =
    List.init 20 (fun i ->
        Executor.submit e (fun () ->
            Thread.delay 0.002;
            i))
  in
  List.iteri (fun i f -> check int_ "job result" i (Executor.await f)) futs;
  check bool_ "run_ms recorded" true
    (Window.count (Window.histogram "executor.run_ms") >= 20);
  check bool_ "wait_ms recorded" true
    (Window.count (Window.histogram "executor.wait_ms") >= 20);
  check bool_ "run p99 defined" true
    (not (Float.is_nan (Window.quantile (Window.histogram "executor.run_ms") 0.99)));
  check int_ "sequential executor has no queue" 0
    (Executor.queue_depth Executor.sequential)

(* ------------------------------------------------------------------ *)
(* /healthz flip under seeded Simnet chaos                             *)
(* ------------------------------------------------------------------ *)

let test_healthz_flip_under_chaos () =
  with_clean @@ fun () ->
  let t = Cluster.create ~names:[ "x"; "y" ] () in
  (* the windows tick on the virtual clock: deterministic decay *)
  Trace.set_clock (fun () -> Cluster.clock_ms t);
  Cluster.register_module_everywhere t ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  (* x forwards every poke to y — y's death becomes x's served Faults *)
  Cluster.register_module_everywhere t ~uri:"relay"
    ~location:"http://x.example.org/relay.xq"
    {|module namespace r = "relay";
import module namespace t = "test" at "http://x.example.org/test.xq";
declare function r:poke() { execute at {"xrpc://y"} {t:echoVoid()} };|};
  let c = Cluster.client t in
  let poke () =
    try
      ignore
        (Xrpc_client.call c ~dest:"xrpc://x" ~module_uri:"relay"
           ~location:"http://x.example.org/relay.xq" ~fn:"poke" []);
      true
    with _ -> false
  in
  let state () = fst (Slo.evaluate ~scope:"xrpc://x" ()) in
  for i = 1 to 15 do
    check bool_ (Printf.sprintf "clean poke %d" i) true (poke ())
  done;
  check string_ "ready after clean traffic" "ready"
    (Slo.state_label (state ()));
  (* seeded chaos + the dependency gone: the pokes x still receives
     come back as Faults and burn its error budget *)
  Cluster.inject_faults t (Simnet.chaos ~seed:11 ~loss:0.2 ());
  Cluster.crash t "y";
  let n = ref 0 in
  while state () <> Slo.Unready && !n < 300 do
    incr n;
    ignore (poke ())
  done;
  check string_ "unready once the budget is spent" "unready"
    (Slo.state_label (state ()));
  let hz = Slo.healthz_json ~scope:"xrpc://x" () in
  check bool_ "healthz says not ready" true (contains hz "\"ready\": false");
  check bool_ "healthz carries the budget reason" true
    (contains hz "error budget");
  (* recovery: faults off, y back, and the bad hour ages out of the
     slow window — the budget replenishes by decay, no reset step *)
  Cluster.clear_faults t;
  Cluster.heal t;
  Cluster.restart t "y";
  Simnet.sleep (Cluster.net t) 3_660_000.;
  check string_ "ready again after the window turns over" "ready"
    (Slo.state_label (state ()));
  for i = 1 to 5 do
    check bool_ (Printf.sprintf "recovered poke %d" i) true (poke ())
  done;
  check string_ "stays ready under clean traffic" "ready"
    (Slo.state_label (state ()))

(* ------------------------------------------------------------------ *)
(* Federation aggregation over a 4-peer cluster                        *)
(* ------------------------------------------------------------------ *)

let test_cluster_health_federation () =
  with_clean @@ fun () ->
  let names = [ "a"; "b"; "c"; "d" ] in
  let uris = List.map (fun n -> "xrpc://" ^ n) names in
  (* no_faults still installs the fault machinery, so [crash] works *)
  let t = Cluster.create ~faults:Simnet.no_faults ~names () in
  Trace.set_clock (fun () -> Cluster.clock_ms t);
  Cluster.register_module_everywhere t ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  (* a shard ring so every snapshot reports a map version *)
  Cluster.set_shard_map t (Some (Shard.create ~replicas:2 uris));
  let c = Cluster.client t in
  List.iter
    (fun dest ->
      for i = 1 to 12 do
        ignore
          (Xrpc_client.call c ~dest ~module_uri:Testmod.module_ns
             ~location:Testmod.module_at ~fn:"ping"
             [ [ Xdm.int i ] ])
      done)
    uris;
  let cv = Cluster.cluster_health t in
  check int_ "one snapshot per peer" 4 (List.length cv.Telemetry.cv_peers);
  check string_ "cluster healthy" "ready" cv.Telemetry.cv_state;
  check bool_ "shard versions reported" true
    (List.length cv.Telemetry.cv_shard_versions = 4);
  check bool_ "shard map agreed" true cv.Telemetry.cv_shard_agree;
  check bool_ "hot endpoints surfaced" true (cv.Telemetry.cv_hot <> []);
  List.iter
    (fun sn ->
      let uri = sn.Telemetry.sn_peer in
      check bool_ "peer uri known" true (List.mem uri uris);
      (* the scraped state agrees with the peer's own /healthz *)
      check string_ (uri ^ " state agrees with its healthz")
        (Slo.state_label (fst (Slo.evaluate ~scope:uri ())))
        sn.Telemetry.sn_state;
      check bool_ (uri ^ " healthz.json ready") true
        (contains (Slo.healthz_json ~scope:uri ()) "\"ready\": true");
      match
        List.find_opt
          (fun e -> e.Telemetry.ep_name = "test:ping")
          sn.Telemetry.sn_endpoints
      with
      | None -> Alcotest.failf "%s snapshot lacks the ping endpoint" uri
      | Some e ->
          check (Alcotest.float 1e-6) (uri ^ " windowed request count") 12.
            e.Telemetry.ep_reqs_1m;
          check bool_ (uri ^ " windowed p99 present") true
            (not (Float.is_nan e.Telemetry.ep_p99));
          (* the wire p99 is the peer's own windowed quantile (mod the
             %.6g wire rounding) *)
          let local =
            List.find
              (fun (h : Slo.endpoint_health) -> h.Slo.h_endpoint = "test:ping")
              (Slo.endpoints ~scope:uri ())
          in
          check bool_ (uri ^ " p99 agrees with local window") true
            (Float.abs (e.Telemetry.ep_p99 -. local.Slo.h_p99)
            <= 0.001 *. Float.max 1. local.Slo.h_p99))
    cv.Telemetry.cv_peers;
  check bool_ "cluster json renders" true
    (contains (Telemetry.cluster_json cv) "\"state\": \"ready\"");
  (* kill one member: the very next scrape (well within one window
     tier) must show it unhealthy rather than dropping it *)
  Cluster.crash t "d";
  let cv = Cluster.cluster_health t in
  check int_ "dead peer still in the view" 4
    (List.length cv.Telemetry.cv_peers);
  let dead =
    List.find
      (fun sn -> sn.Telemetry.sn_peer = "xrpc://d")
      cv.Telemetry.cv_peers
  in
  check string_ "dead peer unreachable" "unreachable"
    dead.Telemetry.sn_state;
  check string_ "worst state wins" "unreachable" cv.Telemetry.cv_state;
  List.iter
    (fun sn ->
      if sn.Telemetry.sn_peer <> "xrpc://d" then
        check string_ (sn.Telemetry.sn_peer ^ " still ready") "ready"
          sn.Telemetry.sn_state)
    cv.Telemetry.cv_peers;
  check bool_ "cluster text renders the outage" true
    (contains (Telemetry.cluster_text cv) "unreachable")

(* ------------------------------------------------------------------ *)
(* HTTP monitoring routes                                              *)
(* ------------------------------------------------------------------ *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let http_get port path =
  let fd = connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
      path
  in
  let n = String.length req in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd req !sent (n - !sent)
  done;
  let buf = Buffer.create 1024 in
  let b = Bytes.create 4096 in
  let rec loop () =
    let n = Unix.read fd b 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes buf b 0 n;
      loop ()
    end
  in
  (try loop () with _ -> ());
  Buffer.contents buf

let test_http_monitoring_routes () =
  with_clean @@ fun () ->
  let peer = Peer.create "xrpc://127.0.0.1:0" in
  let server = Server.create ~config:(Server.config ~port:0 ~workers:2 ()) peer in
  Fun.protect ~finally:(fun () -> Server.stop server)
  @@ fun () ->
  let port = Server.start server in
  let hz = http_get port "/healthz" in
  check bool_ "healthz 200" true (contains hz "200 OK");
  check bool_ "healthz liveness" true (contains hz "live: ok");
  check bool_ "healthz ready" true (contains hz "ready: ready");
  let hj = http_get port "/healthz.json" in
  check bool_ "healthz.json live" true (contains hj "\"live\": true");
  check bool_ "healthz.json ready" true (contains hj "\"ready\": true");
  let cz = http_get port "/clusterz.json" in
  check bool_ "clusterz has the self peer" true (contains cz "\"peers\"");
  check bool_ "clusterz state" true (contains cz "\"state\": \"ready\"");
  check bool_ "clusterz text renders" true
    (contains (http_get port "/clusterz") "cluster: ready");
  check bool_ "metrics exports windowed series" true
    (contains (http_get port "/metrics") "evloop.");
  check bool_ "windowz.json parses as an object" true
    (contains (http_get port "/windowz.json") "{");
  check bool_ "statz has the windowed block" true
    (contains (http_get port "/statz") "window.");
  (* the GETs above went through the route SLO layer: they are
     endpoints of this peer's healthz now *)
  check bool_ "routes tracked as endpoints" true
    (contains (http_get port "/healthz") "/metrics")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "window",
        [
          Alcotest.test_case "counter rotation on virtual clock" `Quick
            test_counter_rotation;
          Alcotest.test_case "histogram quantiles decay bucket-by-bucket"
            `Quick test_histogram_quantiles_rotation;
          Alcotest.test_case "gauges and clock rewinds" `Quick
            test_gauge_and_rewind;
          Alcotest.test_case "4 concurrent observers lose nothing" `Quick
            test_concurrent_observers;
          Alcotest.test_case "steady state allocates no structures" `Quick
            test_steady_state_allocation;
          Alcotest.test_case "disabled flag gates every record" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "text/json export surfaces" `Quick
            test_export_surfaces;
        ] );
      ( "slo",
        [
          Alcotest.test_case "error budget, burn and decay" `Quick
            test_slo_budget_and_burn;
          Alcotest.test_case "probes: scoped, global, raising" `Quick
            test_slo_probes;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "snapshot wire round-trip" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "executor wait/run instrumentation" `Quick
            test_executor_instrumentation;
        ] );
      ( "federation",
        [
          Alcotest.test_case "healthz flips under seeded chaos" `Quick
            test_healthz_flip_under_chaos;
          Alcotest.test_case "4-peer cluster health view" `Quick
            test_cluster_health_federation;
        ] );
      ( "http",
        [
          Alcotest.test_case "monitoring routes end-to-end" `Quick
            test_http_monitoring_routes;
        ] );
    ]
