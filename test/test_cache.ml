(* Two-level caching suite (plan cache + semantic result cache).

   Covers: canonical-key normalization (whitespace/comment insensitivity,
   literal-kind tagging, the direct-constructor raw fallback), the bounded
   LRU primitive, plan-cache reuse at a peer (same answer, fresh global
   bindings, module re-registration invalidates), and the semantic result
   cache across a simulated cluster: version-vector invalidation on
   committed updates, precision (an update to one document keeps entries
   that depend only on another), the deterministic aborted-2PC schedule
   (presumed abort must NOT invalidate — and the later committed rerun
   must), queryID bypass, the cache="off" escape hatch, serverProfile
   phase attribution (a warm repeat runs zero exec phases), trace events,
   and a seeded chaos sweep where cached answers must stay consistent with
   cache-off answers while distributed updates commit and abort around
   them.  Replay the chaos schedules with FAULT_SEED=<n> dune runtest. *)

open Xrpc_xml
module Cluster = Xrpc_core.Cluster
module Client = Xrpc_core.Xrpc_client
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Plan_cache = Xrpc_peer.Plan_cache
module Result_cache = Xrpc_peer.Result_cache
module Lru = Xrpc_peer.Lru
module Normalize = Xrpc_xquery.Normalize
module Filmdb = Xrpc_workloads.Filmdb
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Message = Xrpc_soap.Message
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Canonical query text                                                *)
(* ------------------------------------------------------------------ *)

let test_canonical_insensitive () =
  let a = Normalize.canonical "1   +\n\t2 (: a comment :)" in
  let b = Normalize.canonical "1+2" in
  check string_ "whitespace and comments do not matter" b a;
  check bool_ "ordinary queries canonicalize" false (Normalize.is_raw a)

let test_canonical_literal_kinds () =
  (* 1, 1.0, 1e0 and "1" are four different queries; so is the name x1
     next to the literal 1 *)
  let keys =
    List.map Normalize.canonical [ "1"; "1.0"; "1e0"; {|"1"|}; "x1" ]
  in
  let distinct = List.sort_uniq compare keys in
  check int_ "literal kinds stay disjoint" (List.length keys)
    (List.length distinct)

let test_canonical_raw_fallback () =
  (* whitespace inside a direct constructor is semantic, so the lexer
     cannot canonicalize past it: the raw source is the key *)
  let a = Normalize.canonical "<a>1</a>" in
  check bool_ "constructors fall back to raw" true (Normalize.is_raw a);
  check bool_ "raw keys keep the exact spelling" true
    (a <> Normalize.canonical "<a> 1 </a>")

(* Property battery: the cache key is invariant under reformatting
   (whitespace and comments are free), and kind-tagged literals never
   collide — [3], [3.0], [3e0], ["3"] and the name [x3] each get their
   own plan. *)

let gen_token =
  QCheck.Gen.(
    frequency
      [
        (3, oneofl [ "x"; "y"; "foo"; "item" ]);
        (3, map string_of_int (int_bound 999));
        (2, map (fun n -> string_of_int n ^ ".5") (int_bound 99));
        (2, map (fun n -> string_of_int n ^ "e2") (int_bound 99));
        ( 2,
          map
            (fun s -> "\"" ^ s ^ "\"")
            (string_size ~gen:(oneofl [ 'a'; 'b'; 'q'; 'z' ]) (int_range 0 6))
        );
        (3, oneofl [ "+"; "*"; "("; ")"; ","; "-" ]);
        (1, oneofl [ "$v"; "$w" ]);
      ])

let gen_sep = QCheck.Gen.oneofl [ " "; "  "; "\n"; "\t "; " (: c :) " ]

(* one token stream, two random spellings of it *)
let arbitrary_reformat_pair =
  QCheck.make
    ~print:(fun (a, b) -> a ^ "\n---\n" ^ b)
    QCheck.Gen.(
      map
        (fun triples ->
          let render pick =
            String.concat ""
              (List.concat_map (fun (t, s1, s2) -> [ t; pick s1 s2 ]) triples)
          in
          (render (fun a _ -> a), render (fun _ b -> b)))
        (list_size (int_range 1 8) (triple gen_token gen_sep gen_sep)))

let prop_canonical_reformat_invariant =
  QCheck.Test.make ~name:"reformatting never changes the key" ~count:300
    arbitrary_reformat_pair (fun (a, b) ->
      let ka = Normalize.canonical a and kb = Normalize.canonical b in
      ka = kb && (not (Normalize.is_raw ka)) && ka = Normalize.canonical a)

let prop_literal_kinds_never_collide =
  QCheck.Test.make ~name:"literal kinds never collide" ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (n, m) ->
      let spellings v =
        let s = string_of_int v in
        [ s; s ^ ".0"; s ^ "e0"; "\"" ^ s ^ "\""; "x" ^ s ]
      in
      let keys = List.map Normalize.canonical (spellings n) in
      List.length (List.sort_uniq compare keys) = 5
      && (n = m
         || Normalize.canonical (string_of_int n)
            <> Normalize.canonical (string_of_int m)))

(* ------------------------------------------------------------------ *)
(* The LRU primitive                                                   *)
(* ------------------------------------------------------------------ *)

let test_lru_bounds_and_recency () =
  let lru = Lru.create ~capacity:2 () in
  let evicted = ref [] in
  Lru.set_on_evict lru (fun k -> evicted := k :: !evicted);
  Lru.add lru "a" 1;
  Lru.add lru "b" 2;
  check (Alcotest.option int_) "a cached" (Some 1) (Lru.find lru "a");
  (* a was just used, so inserting c must evict b *)
  Lru.add lru "c" 3;
  check int_ "bounded" 2 (Lru.size lru);
  check (Alcotest.option int_) "LRU victim gone" None (Lru.find lru "b");
  check (Alcotest.option int_) "recently used survives" (Some 1)
    (Lru.find lru "a");
  check int_ "one eviction" 1 (Lru.evictions lru);
  check (Alcotest.list string_) "on_evict saw the victim" [ "b" ] !evicted

let test_lru_disabled () =
  let lru = Lru.create ~enabled:false ~capacity:2 () in
  Lru.add lru "a" 1;
  check (Alcotest.option int_) "disabled stores nothing" None
    (Lru.find lru "a");
  check int_ "empty" 0 (Lru.size lru)

let test_lru_remove_if_vs_evictions () =
  (* remove_if is the invalidation primitive: its removals are not
     capacity evictions, so neither the counter nor the on_evict hook
     (which feeds eviction metrics) may fire *)
  let lru = Lru.create ~capacity:4 () in
  let hook_fired = ref [] in
  Lru.set_on_evict lru (fun k -> hook_fired := k :: !hook_fired);
  List.iter (fun k -> Lru.add lru k 0) [ "a"; "b"; "c" ];
  let dropped = Lru.remove_if lru (fun k _ -> k <> "b") in
  check int_ "remove_if reports its victims" 2 dropped;
  check int_ "invalidations are not evictions" 0 (Lru.evictions lru);
  check (Alcotest.list string_) "on_evict never fired" [] !hook_fired;
  check int_ "survivor stays" 1 (Lru.size lru);
  check (Alcotest.option int_) "survivor readable" (Some 0) (Lru.find lru "b");
  (* a later capacity eviction still fires the hook exactly once *)
  List.iter (fun k -> Lru.add lru k 0) [ "d"; "e"; "f"; "g" ];
  check int_ "capacity eviction counted" 1 (Lru.evictions lru);
  check int_ "hook saw exactly the capacity victim" 1 (List.length !hook_fired)

let test_lru_evict_hook_order () =
  let lru = Lru.create ~capacity:2 () in
  let seen = ref [] in
  (* the hook runs inside the lock, after the victim is removed and the
     counter bumped — it may read the plain counters but must not reenter
     the cache *)
  Lru.set_on_evict lru (fun k -> seen := (k, Lru.evictions lru) :: !seen);
  Lru.add lru "a" 1;
  Lru.add lru "b" 2;
  Lru.add lru "c" 3;
  (match !seen with
  | [ (k, evictions_at_hook) ] ->
      check string_ "victim is the LRU entry" "a" k;
      check int_ "counted before the hook observes it" 1 evictions_at_hook
  | l -> Alcotest.failf "expected one eviction, saw %d" (List.length l));
  (* replacing the hook only affects later evictions *)
  Lru.set_on_evict lru (fun _ -> ());
  Lru.add lru "d" 4;
  check int_ "second eviction counted" 2 (Lru.evictions lru);
  check int_ "old hook not called again" 1 (List.length !seen)

let test_lru_remove_if_multi () =
  (* remove_if collects its victims during the scan and removes them
     after: a predicate matching interleaved entries drops each exactly
     once and never disturbs the survivors *)
  let lru = Lru.create ~capacity:8 () in
  for i = 1 to 6 do
    Lru.add lru (string_of_int i) i
  done;
  let dropped = Lru.remove_if lru (fun _ v -> v mod 2 = 0) in
  check int_ "three removed in one pass" 3 dropped;
  check int_ "three survivors" 3 (Lru.size lru);
  List.iter
    (fun i ->
      check
        (Alcotest.option int_)
        (Printf.sprintf "entry %d" i)
        (if i mod 2 = 0 then None else Some i)
        (Lru.find lru (string_of_int i)))
    [ 1; 2; 3; 4; 5; 6 ];
  check int_ "second pass finds nothing" 0
    (Lru.remove_if lru (fun _ v -> v mod 2 = 0))

(* ------------------------------------------------------------------ *)
(* Plan cache at a peer                                                *)
(* ------------------------------------------------------------------ *)

let plan_stats peer = (Peer.cache_stats peer).Peer.plan

let test_plan_cache_reuse () =
  let peer = Peer.create "xrpc://plan.local" in
  let a = Xdm.to_display (Peer.query_seq peer "for $v in (1 to 4) return $v * $v") in
  let b =
    Xdm.to_display
      (Peer.query_seq peer
         "for  $v  in (1 to 4) (: same plan :)\nreturn $v * $v")
  in
  check string_ "cached plan prints the same answer" a b;
  let s = plan_stats peer in
  check int_ "one compilation" 1 s.Plan_cache.misses;
  check int_ "one plan-cache hit" 1 s.Plan_cache.hits

let test_plan_cache_rebinds_globals () =
  (* prolog pass 2 (global variable binding) must re-run per execution:
     a cached plan may never pin the database state it was compiled
     against *)
  let peer = Peer.create "xrpc://plan.local" in
  Database.add_doc_xml peer.Peer.db "d.xml" "<n/>";
  let q = {|declare variable $c := count(doc("d.xml")//m); $c|} in
  check string_ "before the update" "0" (Xdm.to_display (Peer.query_seq peer q));
  ignore
    (Peer.query peer {|insert node <m/> into exactly-one(doc("d.xml")/n)|});
  check string_ "cached plan sees the new document" "1"
    (Xdm.to_display (Peer.query_seq peer q));
  check bool_ "second run really was a plan-cache hit" true
    ((plan_stats peer).Plan_cache.hits >= 1)

let test_plan_cache_module_invalidation () =
  let peer = Peer.create "xrpc://plan.local" in
  let version n =
    Printf.sprintf
      {|module namespace m = "m";
declare function m:one() as xs:integer { %d };|}
      n
  in
  Peer.register_module peer ~uri:"m" ~location:"m.xq" (version 1);
  let q = {|import module namespace m = "m" at "m.xq"; m:one()|} in
  check string_ "v1 answer" "1" (Xdm.to_display (Peer.query_seq peer q));
  (* re-registering the module changes the code cached plans refer to *)
  Peer.register_module peer ~uri:"m" ~location:"m.xq" (version 2);
  check string_ "re-registration drops the stale plan" "2"
    (Xdm.to_display (Peer.query_seq peer q))

let test_explain_compiles_once () =
  (* the :explain fix: the shell renders plans via Peer.compiled_plan (the
     plan cache) instead of re-parsing, so explain-then-run compiles the
     query exactly once *)
  let peer = Peer.create "xrpc://plan.local" in
  let q = "for $v in (1 to 3) return $v + 1" in
  ignore (Peer.compiled_plan peer q);
  check int_ "explain compiled it" 1 (plan_stats peer).Plan_cache.misses;
  ignore (Peer.query_seq peer q);
  let s = plan_stats peer in
  check int_ "the run did not recompile" 1 s.Plan_cache.misses;
  check int_ "it hit the explained plan" 1 s.Plan_cache.hits;
  (* a reformatted spelling of the same query reuses the plan too *)
  ignore (Peer.compiled_plan peer "for  $v in (1 to 3) (: same :)\nreturn $v + 1");
  check int_ "reformatted explain is a hit" 2 (plan_stats peer).Plan_cache.hits

(* ------------------------------------------------------------------ *)
(* Result cache across a cluster                                       *)
(* ------------------------------------------------------------------ *)

let sim_config = { Simnet.default_config with Simnet.charge_cpu = false }

(* two peers: x originates, y serves the film database *)
let film_pair () =
  let cluster =
    Cluster.create ~config:sim_config
      ~names:[ "x.example.org"; "y.example.org" ] ()
  in
  let x = Cluster.peer cluster "x.example.org" in
  let y = Cluster.peer cluster "y.example.org" in
  Filmdb.install y ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  (cluster, x, y)

let result_stats peer = (Peer.cache_stats peer).Peer.result

let films_by ?cache ?query_id client ~dest actor =
  Client.call client ~dest ?cache ?query_id ~module_uri:Filmdb.module_ns
    ~location:Filmdb.module_at ~fn:"filmsByActor"
    [ [ Xdm.str actor ] ]

let test_result_cache_hit () =
  let cluster, _, y = film_pair () in
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  let a = Xdm.to_display (films_by client ~dest "Sean Connery") in
  let b = Xdm.to_display (films_by client ~dest "Sean Connery") in
  check string_ "repeat answers identically" a b;
  let s = result_stats y in
  check int_ "first call executed" 1 s.Result_cache.misses;
  check int_ "second was served from cache" 1 s.Result_cache.hits;
  check int_ "one entry" 1 s.Result_cache.size

let test_update_then_read_invalidates () =
  (* a committed remote update (rule R_Fu) must evict the dependent
     entry: the next read executes and sees the new film, identically to
     a cache=off read *)
  let cluster, x, y = film_pair () in
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  ignore (films_by client ~dest "Sean Connery");
  ignore (films_by client ~dest "Sean Connery");
  check int_ "warm" 1 (result_stats y).Result_cache.hits;
  let r =
    Peer.query x
      {|import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {f:addFilm("Fresh", "Sean Connery")}|}
  in
  check bool_ "update applied" true r.Peer.committed;
  check bool_ "commit evicted the dependent entry" true
    ((result_stats y).Result_cache.invalidations >= 1);
  let cached = Xdm.to_display (films_by client ~dest "Sean Connery") in
  let off = Xdm.to_display (films_by client ~dest ~cache:false "Sean Connery") in
  check string_ "post-update cached == cache-off" off cached;
  check bool_ "the new film is visible" true (contains cached "Fresh")

let test_version_vector_precision () =
  (* entries are pinned per document: an update touching a.xml evicts
     only the entries that read a.xml *)
  let cluster =
    Cluster.create ~config:sim_config ~names:[ "x"; "y" ] ()
  in
  let y = Cluster.peer cluster "y" in
  Database.add_doc_xml y.Peer.db "a.xml" "<a>1</a>";
  Database.add_doc_xml y.Peer.db "b.xml" "<b>2</b>";
  Peer.register_module y ~uri:"m" ~location:"m.xq"
    {|module namespace m = "m";
declare function m:ra() as node()* { doc("a.xml") };
declare function m:rb() as node()* { doc("b.xml") };
declare updating function m:wa()
{ insert node <x/> into exactly-one(doc("a.xml")/a) };|};
  let client = Cluster.client cluster in
  let call fn =
    Client.call client ~dest:"xrpc://y" ~module_uri:"m" ~location:"m.xq" ~fn []
  in
  ignore (call "ra");
  ignore (call "rb");
  check int_ "both entries cached" 2 (result_stats y).Result_cache.size;
  ignore
    (Client.call client ~dest:"xrpc://y" ~updating:true ~module_uri:"m"
       ~location:"m.xq" ~fn:"wa" []);
  check int_ "only the a.xml entry was evicted" 1
    (result_stats y).Result_cache.invalidations;
  check int_ "b.xml entry survives" 1 (result_stats y).Result_cache.size;
  let hits0 = (result_stats y).Result_cache.hits in
  ignore (call "rb");
  check int_ "b repeat still hits" (hits0 + 1) (result_stats y).Result_cache.hits;
  check string_ "a repeat re-executes and sees the update" "<a>1<x/></a>"
    (Xdm.to_display (call "ra"))

let test_aborted_2pc_does_not_invalidate () =
  (* deterministic presumed-abort schedule: a prepared blocker at y makes
     the distributed update abort — the rollback never reaches
     Database.commit, so the cache keeps its (still correct) entry; after
     the blocker is rolled back, the rerun commits and must invalidate *)
  let cluster =
    Cluster.create ~config:sim_config
      ~names:[ "x.example.org"; "y.example.org"; "z.example.org" ] ()
  in
  let x = Cluster.peer cluster "x.example.org" in
  let y = Cluster.peer cluster "y.example.org" in
  Filmdb.install y ();
  Filmdb.install (Cluster.peer cluster "z.example.org") ~variant:`Z ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  let warm = Xdm.to_display (films_by client ~dest "Sean Connery") in
  ignore (films_by client ~dest "Sean Connery");
  check int_ "warm" 1 (result_stats y).Result_cache.hits;
  (* an earlier transaction holds the prepared state on filmDB at y *)
  let blocker =
    { Message.host = "xrpc://blocker"; timestamp = "0.1"; timeout = 1000;
      level = Message.Repeatable }
  in
  let blocking_update =
    {
      Message.module_uri = Filmdb.module_ns;
      location = Filmdb.module_at;
      method_ = "addFilm";
      arity = 2;
      updating = true;
      fragments = false;
      query_id = Some blocker;
      idem_key = None;
      cache_ok = true;
      calls = [ [ [ Xdm.str "Blocker" ]; [ Xdm.str "B" ] ] ];
    }
  in
  ignore (Peer.handle_raw y (Message.to_string (Message.Request blocking_update)));
  ignore
    (Peer.handle_raw y
       (Message.to_string (Message.Tx_request (Message.Prepare, blocker))));
  let q_doomed =
    {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:addFilm("Doomed", "Sean Connery")}|}
  in
  let aborted = Peer.query x q_doomed in
  check bool_ "commit refused" false aborted.Peer.committed;
  check int_ "aborted 2PC invalidated nothing" 0
    (result_stats y).Result_cache.invalidations;
  let after_abort = Xdm.to_display (films_by client ~dest "Sean Connery") in
  check string_ "cached answer unchanged by the abort" warm after_abort;
  check int_ "and it was still a cache hit" 2 (result_stats y).Result_cache.hits;
  check string_ "cache-off agrees" warm
    (Xdm.to_display (films_by client ~dest ~cache:false "Sean Connery"));
  (* release the blocker; the rerun commits — and THAT invalidates *)
  ignore
    (Peer.handle_raw y
       (Message.to_string (Message.Tx_request (Message.Rollback, blocker))));
  let committed = Peer.query x q_doomed in
  check bool_ "rerun commits" true committed.Peer.committed;
  check bool_ "committed 2PC invalidates" true
    ((result_stats y).Result_cache.invalidations >= 1);
  let cached = Xdm.to_display (films_by client ~dest "Sean Connery") in
  let off = Xdm.to_display (films_by client ~dest ~cache:false "Sean Connery") in
  check string_ "post-commit cached == cache-off" off cached;
  check bool_ "the committed film is visible" true (cached <> warm)

let test_query_id_bypasses_cache () =
  (* R'_Fr calls pin a snapshot that may diverge from the current
     version; they must not populate or consult the cache *)
  let cluster, _, y = film_pair () in
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  let qid =
    { Message.host = "xrpc://x.example.org"; timestamp = "1.0";
      timeout = 1000; level = Message.Repeatable }
  in
  ignore (films_by client ~dest ~query_id:qid "Sean Connery");
  ignore (films_by client ~dest ~query_id:qid "Sean Connery");
  let s = result_stats y in
  check int_ "no lookups" 0 (s.Result_cache.hits + s.Result_cache.misses);
  check int_ "no entries" 0 s.Result_cache.size

let test_cache_off_escape_hatch () =
  let cluster, _, y = film_pair () in
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  let warm = Xdm.to_display (films_by client ~dest "Sean Connery") in
  ignore (films_by client ~dest "Sean Connery");
  let hits0 = (result_stats y).Result_cache.hits in
  let off = Xdm.to_display (films_by client ~dest ~cache:false "Sean Connery") in
  check string_ "cache=off answers identically" warm off;
  check int_ "cache=off never consults the cache" hits0
    (result_stats y).Result_cache.hits;
  (* the client-wide default works too *)
  Client.set_result_caching client false;
  ignore (films_by client ~dest "Sean Connery");
  check int_ "client default off" hits0 (result_stats y).Result_cache.hits;
  Client.set_result_caching client true;
  ignore (films_by client ~dest "Sean Connery");
  check int_ "back on" (hits0 + 1) (result_stats y).Result_cache.hits

let test_warm_repeat_runs_zero_exec_phases () =
  (* the acceptance check: serverProfile of a warm repeat shows the cache
     phase and NO exec phase at the serving peer *)
  let cluster, _, _ = film_pair () in
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  ignore (films_by client ~dest "Sean Connery");
  let _, profile =
    Client.call_profiled client ~dest ~module_uri:Filmdb.module_ns
      ~location:Filmdb.module_at ~fn:"filmsByActor"
      [ [ Xdm.str "Sean Connery" ] ]
  in
  let phases =
    List.concat_map
      (fun (_, d) -> List.map fst d.Profile.d_remote)
      (Profile.dests profile)
  in
  check bool_ "cache phase present" true (List.mem "cache" phases);
  check bool_ "no exec phase" false (List.mem "exec" phases)

let test_trace_events () =
  let cluster, x, _ = film_pair () in
  let client = Cluster.client cluster in
  let dest = "xrpc://y.example.org" in
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      ignore (Peer.query_seq x "2 + 2");
      ignore (Peer.query_seq x "2 + 2");
      ignore (films_by client ~dest "Sean Connery");
      ignore (films_by client ~dest "Sean Connery");
      let events =
        List.concat_map
          (fun s -> List.map (fun e -> e.Trace.e_name) s.Trace.events)
          (Trace.spans ())
      in
      List.iter
        (fun name ->
          check bool_ name true (List.mem name events))
        [ "plan-cache-hit"; "result-cache-hit"; "remote-cache-hit" ])

(* ------------------------------------------------------------------ *)
(* Seeded chaos: caching never changes an answer                       *)
(* ------------------------------------------------------------------ *)

let chaos_policy =
  {
    Transport.timeout_ms = 1_000.;
    max_retries = 4;
    backoff_base_ms = 5.;
    backoff_cap_ms = 40.;
    backoff_jitter = 0.5;
    breaker_threshold = 0;
    breaker_cooldown_ms = 100.;
  }

let chaos_seeds () =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> List.init 8 (fun i -> 100 + i)

let replay_hint seed = Printf.sprintf "FAULT_SEED=%d dune runtest" seed

let test_chaos_cached_answers_consistent () =
  (* interleave reads (cached, then cache=off) with distributed 2PC
     updates under seeded faults.  During the run a cached answer must
     match one of the uncached answers bracketing it; after the network
     recovers, cached and uncached answers must agree exactly — whatever
     mixture of commits and presumed-abort rollbacks the schedule
     produced.  And if nothing ever committed at y, its result cache must
     show zero invalidations: aborted transactions invalidate nothing. *)
  List.iter
    (fun seed ->
      let cluster =
        Cluster.create ~config:sim_config
          ~faults:(Simnet.chaos ~seed ~loss:0.1 ())
          ~policy:chaos_policy
          ~names:[ "x.example.org"; "y.example.org"; "z.example.org" ] ()
      in
      let x = Cluster.peer cluster "x.example.org" in
      let y = Cluster.peer cluster "y.example.org" in
      Filmdb.install y ();
      Filmdb.install (Cluster.peer cluster "z.example.org") ~variant:`Z ();
      Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
        Filmdb.film_module;
      let client = Cluster.client cluster in
      let dest = "xrpc://y.example.org" in
      let rng = Random.State.make [| seed; 77 |] in
      let read ?cache () =
        try Some (Xdm.to_display (films_by client ~dest ?cache "Sean Connery"))
        with _ -> None
      in
      for step = 1 to 6 do
        if Random.State.int rng 3 = 0 then
          ignore
            (try
               (Peer.query x
                  (Printf.sprintf
                     {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:addFilm("C%d-%d", "Sean Connery")}|}
                     seed step))
                 .Peer.committed
             with _ -> false)
        else
          let before = read ~cache:false () in
          let cached = read () in
          let after = read ~cache:false () in
          match cached with
          | None -> ()
          | Some c ->
              if Some c <> before && Some c <> after then
                Alcotest.failf
                  "seed %d step %d: cached answer %s matches neither \
                   bracketing uncached answer\nreplay: %s"
                  seed step c (replay_hint seed)
      done;
      (* network recovers: cached and uncached must agree exactly *)
      Cluster.clear_faults cluster;
      Simnet.sleep (Cluster.net cluster)
        (chaos_policy.Transport.breaker_cooldown_ms +. 1.);
      ignore (Cluster.resolve_in_doubt cluster);
      let off =
        Xdm.to_display (films_by client ~dest ~cache:false "Sean Connery")
      in
      let cached = Xdm.to_display (films_by client ~dest "Sean Connery") in
      if cached <> off then
        Alcotest.failf
          "seed %d: recovered cached answer diverges\ncached:    %s\n\
           cache-off: %s\nreplay: %s"
          seed cached off (replay_hint seed);
      (* if y's database never changed, no commit ever fired its hook *)
      let baseline = not (contains off (Printf.sprintf "C%d-" seed)) in
      if baseline && (result_stats y).Result_cache.invalidations > 0 then
        Alcotest.failf
          "seed %d: no update committed at y, yet its cache was \
           invalidated\nreplay: %s"
          seed (replay_hint seed))
    (chaos_seeds ())

let () =
  Alcotest.run "cache"
    [
      ( "normalize",
        [
          Alcotest.test_case "whitespace-insensitive" `Quick
            test_canonical_insensitive;
          Alcotest.test_case "literal kinds disjoint" `Quick
            test_canonical_literal_kinds;
          Alcotest.test_case "constructor raw fallback" `Quick
            test_canonical_raw_fallback;
          QCheck_alcotest.to_alcotest prop_canonical_reformat_invariant;
          QCheck_alcotest.to_alcotest prop_literal_kinds_never_collide;
        ] );
      ( "lru",
        [
          Alcotest.test_case "bounds and recency" `Quick
            test_lru_bounds_and_recency;
          Alcotest.test_case "disabled" `Quick test_lru_disabled;
          Alcotest.test_case "remove_if is not an eviction" `Quick
            test_lru_remove_if_vs_evictions;
          Alcotest.test_case "eviction hook firing order" `Quick
            test_lru_evict_hook_order;
          Alcotest.test_case "remove_if mid-scan" `Quick
            test_lru_remove_if_multi;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "reuse, identical answers" `Quick
            test_plan_cache_reuse;
          Alcotest.test_case "globals rebound per run" `Quick
            test_plan_cache_rebinds_globals;
          Alcotest.test_case "module re-registration invalidates" `Quick
            test_plan_cache_module_invalidation;
          Alcotest.test_case "explain compiles once" `Quick
            test_explain_compiles_once;
        ] );
      ( "result-cache",
        [
          Alcotest.test_case "hit on repeat" `Quick test_result_cache_hit;
          Alcotest.test_case "update-then-read invalidates" `Quick
            test_update_then_read_invalidates;
          Alcotest.test_case "version-vector precision" `Quick
            test_version_vector_precision;
          Alcotest.test_case "aborted 2PC does not invalidate" `Quick
            test_aborted_2pc_does_not_invalidate;
          Alcotest.test_case "queryID bypasses" `Quick
            test_query_id_bypasses_cache;
          Alcotest.test_case "cache=off escape hatch" `Quick
            test_cache_off_escape_hatch;
          Alcotest.test_case "warm repeat: zero exec phases" `Quick
            test_warm_repeat_runs_zero_exec_phases;
          Alcotest.test_case "trace events" `Quick test_trace_events;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "cached answers consistent under faults" `Quick
            test_chaos_cached_answers_consistent;
        ] );
    ]
