(* Tests for the peer engine: request handling, bulk calls, the function
   cache, queryID isolation (pin / expiry / late requests), the bulk
   hash-join optimizer, and the 2PC participant. *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Isolation = Xrpc_peer.Isolation
module Func_cache = Xrpc_peer.Func_cache
module Filmdb = Xrpc_workloads.Filmdb

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* a standalone peer with a controllable clock *)
let make_peer ?clock () =
  let now = ref 0. in
  let clock = match clock with Some c -> c | None -> fun () -> !now in
  let peer = Peer.create ~clock "xrpc://y.example.org" in
  Filmdb.install peer ();
  (peer, now)

let film_request ?(actors = [ "Sean Connery" ]) ?query_id () =
  {
    Message.module_uri = "films";
    location = Filmdb.module_at;
    method_ = "filmsByActor";
    arity = 1;
    updating = false;
    fragments = false;
    query_id;
    idem_key = None; cache_ok = true;
    calls = List.map (fun a -> [ [ Xdm.str a ] ]) actors;
  }

let handle peer req =
  Message.of_string (Peer.handle_raw peer (Message.to_string (Message.Request req)))

let test_single_call () =
  let peer, _ = make_peer () in
  match handle peer (film_request ()) with
  | Message.Response r ->
      check int_ "one result" 1 (List.length r.Message.results);
      check string_ "films" "<name>The Rock</name> <name>Goldfinger</name>"
        (Xdm.to_display (List.hd r.Message.results));
      check bool_ "self in peers" true (List.mem peer.Peer.uri r.Message.peers)
  | _ -> Alcotest.fail "expected response"

let test_bulk_call () =
  let peer, _ = make_peer () in
  match handle peer (film_request ~actors:[ "Julie Andrews"; "Sean Connery"; "Gerard Depardieu" ] ()) with
  | Message.Response r ->
      check int_ "three results" 3 (List.length r.Message.results);
      let lengths = List.map List.length r.Message.results in
      check (Alcotest.list int_) "per-call results" [ 0; 2; 1 ] lengths
  | _ -> Alcotest.fail "expected response"

let test_unknown_module_fault () =
  let peer, _ = make_peer () in
  match handle peer { (film_request ()) with Message.module_uri = "nope" } with
  | Message.Fault f ->
      check bool_ "mentions module" true
        (String.length f.Message.reason > 0)
  | _ -> Alcotest.fail "expected fault"

let test_unknown_function_fault () =
  let peer, _ = make_peer () in
  match handle peer { (film_request ()) with Message.method_ = "noSuch" } with
  | Message.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_runtime_error_becomes_fault () =
  let peer, _ = make_peer () in
  Peer.register_module peer ~uri:"bad"
    {|module namespace b = "bad";
declare function b:boom() { error("XYZ: kaboom") };|};
  let req =
    {
      Message.module_uri = "bad";
      location = "";
      method_ = "boom";
      arity = 0;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [] ];
    }
  in
  match handle peer req with
  | Message.Fault f ->
      check bool_ "reason propagated" true
        (String.length f.Message.reason >= 3 && String.sub f.Message.reason 0 3 = "XYZ")
  | _ -> Alcotest.fail "expected fault"

let test_malformed_message_fault () =
  let peer, _ = make_peer () in
  match Message.of_string (Peer.handle_raw peer "this is not xml") with
  | Message.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

(* ---- function cache (§3.3) ---- *)

let test_func_cache_hits () =
  let peer, _ = make_peer () in
  (* pin the test to the module-plan cache: with result caching on, the
     repeats are answered above it and never reach the compile path *)
  Peer.set_result_caching peer false;
  ignore (handle peer (film_request ()));
  ignore (handle peer (film_request ()));
  ignore (handle peer (film_request ()));
  check int_ "one miss" 1 peer.Peer.func_cache.Func_cache.misses;
  check int_ "two hits" 2 peer.Peer.func_cache.Func_cache.hits

let test_func_cache_disabled () =
  let peer, _ = make_peer () in
  Peer.set_result_caching peer false;
  peer.Peer.func_cache.Func_cache.enabled <- false;
  ignore (handle peer (film_request ()));
  ignore (handle peer (film_request ()));
  check int_ "two misses" 2 peer.Peer.func_cache.Func_cache.misses

let test_func_cache_on_compile_hook () =
  let peer, _ = make_peer () in
  Peer.set_result_caching peer false;
  let compiles = ref 0 in
  peer.Peer.func_cache.Func_cache.on_compile <- (fun _ -> incr compiles);
  ignore (handle peer (film_request ()));
  ignore (handle peer (film_request ()));
  check int_ "hook fired once" 1 !compiles

let test_func_cache_invalidated_on_module_update () =
  let peer, _ = make_peer () in
  ignore (handle peer (film_request ()));
  Peer.register_module peer ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  ignore (handle peer (film_request ()));
  check int_ "recompiled" 2 peer.Peer.func_cache.Func_cache.misses

(* ---- isolation (§2.2) ---- *)

let qid ?(timeout = 10) ts =
  { Message.host = "xrpc://origin"; timestamp = ts; timeout; level = Message.Repeatable }

let test_repeatable_read_pins_snapshot () =
  let peer, _ = make_peer () in
  let q = qid "1.0" in
  (* first isolated request pins the snapshot *)
  (match handle peer (film_request ~query_id:q ()) with
  | Message.Response r ->
      check int_ "2 films before" 2 (List.length (List.hd r.Message.results))
  | _ -> Alcotest.fail "resp");
  (* another transaction commits a new film *)
  let upd =
    {
      Message.module_uri = "films";
      location = Filmdb.module_at;
      method_ = "addFilm";
      arity = 2;
      updating = true;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.str "Dr. No" ]; [ Xdm.str "Sean Connery" ] ] ];
    }
  in
  (match handle peer upd with
  | Message.Response _ -> ()
  | _ -> Alcotest.fail "update failed");
  (* the isolated query still sees the old state; a fresh one sees 3 *)
  (match handle peer (film_request ~query_id:q ()) with
  | Message.Response r ->
      check int_ "repeatable read" 2 (List.length (List.hd r.Message.results))
  | _ -> Alcotest.fail "resp");
  match handle peer (film_request ()) with
  | Message.Response r ->
      check int_ "fresh sees commit" 3 (List.length (List.hd r.Message.results))
  | _ -> Alcotest.fail "resp"

let test_isolation_timeout_expiry () =
  let peer, now = make_peer () in
  let q = qid ~timeout:5 "2.0" in
  ignore (handle peer (film_request ~query_id:q ()));
  check int_ "pinned" 1 (Isolation.live_count peer.Peer.isolation);
  now := 6.0;
  (* resources freed after the timeout... *)
  check int_ "expired" 0 (Isolation.live_count peer.Peer.isolation);
  (* ...and late requests with the same queryID are rejected *)
  match handle peer (film_request ~query_id:q ()) with
  | Message.Fault f ->
      check bool_ "expired error" true
        (String.length f.Message.reason > 0)
  | _ -> Alcotest.fail "expected fault for expired queryID"

let test_isolation_distinct_queries_distinct_snapshots () =
  let peer, _ = make_peer () in
  let q1 = qid "3.0" and q2 = qid "4.0" in
  ignore (handle peer (film_request ~query_id:q1 ()));
  ignore (handle peer (film_request ~query_id:q2 ()));
  check int_ "two entries" 2 (Isolation.live_count peer.Peer.isolation)

let test_snapshot_isolation_pins_query_timestamp () =
  (* distributed snapshot isolation (§2.2, "Other Isolation Levels"): the
     peer pins the state as of the query's global timestamp, even when its
     first request arrives after later commits; repeatable read (pin at
     first contact) sees the newer state *)
  let peer, now = make_peer () in
  (* a query starts globally at t=1.0 ... *)
  let snap_qid =
    { Message.host = "xrpc://origin"; timestamp = "1.0"; timeout = 100;
      level = Message.Snapshot }
  in
  let repeat_qid =
    { Message.host = "xrpc://origin2"; timestamp = "1.0"; timeout = 100;
      level = Message.Repeatable }
  in
  (* ... at t=2.0 another transaction commits a film at this peer ... *)
  now := 2.0;
  ignore
    (handle peer
       {
         Message.module_uri = "films";
         location = Filmdb.module_at;
         method_ = "addFilm";
         arity = 2;
         updating = true;
         fragments = false;
         query_id = None;
         idem_key = None; cache_ok = true;
         calls = [ [ [ Xdm.str "Later" ]; [ Xdm.str "Sean Connery" ] ] ];
       });
  (* ... and at t=3.0 the queries' first requests arrive *)
  now := 3.0;
  (match handle peer (film_request ~query_id:snap_qid ()) with
  | Message.Response r ->
      check int_ "snapshot level sees t=1.0 state" 2
        (List.length (List.hd r.Message.results))
  | _ -> Alcotest.fail "resp");
  match handle peer (film_request ~query_id:repeat_qid ()) with
  | Message.Response r ->
      check int_ "repeatable level sees first-contact state" 3
        (List.length (List.hd r.Message.results))
  | _ -> Alcotest.fail "resp"

(* ---- deferred updates + 2PC participant (§2.3) ---- *)

let add_film_request ~query_id name =
  {
    Message.module_uri = "films";
    location = Filmdb.module_at;
    method_ = "addFilm";
    arity = 2;
    updating = true;
    fragments = false;
    query_id;
    idem_key = None; cache_ok = true;
    calls = [ [ [ Xdm.str name ]; [ Xdm.str "Sean Connery" ] ] ];
  }

let count_films peer =
  let v = Database.snapshot peer.Peer.db in
  let store = Database.doc_exn v "filmDB.xml" in
  List.length
    (List.filter
       (fun n -> Store.kind n = Store.Elem
                 && (match Store.name n with Some q -> q.Qname.local = "film" | None -> false))
       (Store.descendants (Store.root store)))

let tx peer op q =
  Message.of_string
    (Peer.handle_raw peer (Message.to_string (Message.Tx_request (op, q))))

let test_rfu_applies_immediately () =
  let peer, _ = make_peer () in
  (match handle peer (add_film_request ~query_id:None "Immediate") with
  | Message.Response r -> check int_ "no results for updating call" 0
                            (List.length r.Message.results)
  | _ -> Alcotest.fail "resp");
  check int_ "applied (R_Fu)" 4 (count_films peer)

let test_rfu_prime_defers_until_commit () =
  let peer, _ = make_peer () in
  let q = qid "5.0" in
  ignore (handle peer (add_film_request ~query_id:(Some q) "Deferred"));
  check int_ "not applied yet (R'_Fu)" 3 (count_films peer);
  (match tx peer Message.Prepare q with
  | Message.Tx_response { ok = true; _ } -> ()
  | _ -> Alcotest.fail "prepare");
  check int_ "still not applied after prepare" 3 (count_films peer);
  (match tx peer Message.Commit q with
  | Message.Tx_response { ok = true; _ } -> ()
  | _ -> Alcotest.fail "commit");
  check int_ "applied at commit" 4 (count_films peer)

let test_rollback_discards () =
  let peer, _ = make_peer () in
  let q = qid "6.0" in
  ignore (handle peer (add_film_request ~query_id:(Some q) "Doomed"));
  ignore (tx peer Message.Rollback q);
  check int_ "discarded" 3 (count_films peer);
  (* after rollback the queryID is spent *)
  match handle peer (film_request ~query_id:q ()) with
  | Message.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault after rollback"

let test_prepare_conflict_detection () =
  let peer, _ = make_peer () in
  let q1 = qid "7.0" and q2 = qid "8.0" in
  ignore (handle peer (add_film_request ~query_id:(Some q1) "One"));
  ignore (handle peer (add_film_request ~query_id:(Some q2) "Two"));
  (match tx peer Message.Prepare q1 with
  | Message.Tx_response { ok = true; _ } -> ()
  | _ -> Alcotest.fail "first prepare should succeed");
  (match tx peer Message.Prepare q2 with
  | Message.Tx_response { ok = false; _ } -> ()
  | _ -> Alcotest.fail "conflicting prepare should be refused");
  ignore (tx peer Message.Commit q1);
  ignore (tx peer Message.Rollback q2);
  check int_ "only one applied" 4 (count_films peer)

let test_read_only_participant_votes_yes () =
  let peer, _ = make_peer () in
  match tx peer Message.Prepare (qid "9.0") with
  | Message.Tx_response { ok = true; _ } -> ()
  | _ -> Alcotest.fail "read-only prepare"

(* ---- bulk hash join (§1 set-orientation / §4 Saxon) ---- *)

let test_bulk_hash_join_used_and_correct () =
  let peer, _ = make_peer () in
  Peer.register_module peer ~uri:Xrpc_workloads.Xmark.functions_ns
    ~location:Xrpc_workloads.Xmark.functions_at
    Xrpc_workloads.Xmark.functions_module;
  Database.add_doc_xml peer.Peer.db "persons.xml"
    (Xrpc_workloads.Xmark.persons ~count:20 ());
  let req ids =
    {
      Message.module_uri = Xrpc_workloads.Xmark.functions_ns;
      location = Xrpc_workloads.Xmark.functions_at;
      method_ = "getPerson";
      arity = 2;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls =
        List.map
          (fun i ->
            [ [ Xdm.str "persons.xml" ];
              [ Xdm.str (Printf.sprintf "person%d" i) ] ])
          ids;
    }
  in
  match handle peer (req [ 3; 7; 99; 0 ]) with
  | Message.Response r ->
      let sizes = List.map List.length r.Message.results in
      check (Alcotest.list int_) "hits and misses" [ 1; 1; 0; 1 ] sizes;
      (* result contents match the single-call (non-joined) plan *)
      (match (handle peer (req [ 7 ]), r.Message.results) with
      | Message.Response single, _ :: bulk7 :: _ ->
          check bool_ "join plan = scan plan" true
            (Xdm.deep_equal (List.hd single.Message.results) bulk7)
      | _ -> Alcotest.fail "single call")
  | _ -> Alcotest.fail "resp"

let test_get_document_internal () =
  let peer, _ = make_peer () in
  let req =
    {
      Message.module_uri = Qname.ns_xrpc;
      location = "";
      method_ = "getDocument";
      arity = 1;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.str "filmDB.xml" ] ] ];
    }
  in
  match handle peer req with
  | Message.Response { results = [ [ Xdm.Node n ] ]; _ } ->
      check bool_ "document node" true (Store.kind n = Store.Doc)
  | _ -> Alcotest.fail "expected document"

let () =
  Alcotest.run "peer"
    [
      ( "requests",
        [
          Alcotest.test_case "single call" `Quick test_single_call;
          Alcotest.test_case "bulk call" `Quick test_bulk_call;
          Alcotest.test_case "unknown module" `Quick test_unknown_module_fault;
          Alcotest.test_case "unknown function" `Quick test_unknown_function_fault;
          Alcotest.test_case "runtime error fault" `Quick
            test_runtime_error_becomes_fault;
          Alcotest.test_case "malformed message" `Quick test_malformed_message_fault;
          Alcotest.test_case "getDocument" `Quick test_get_document_internal;
        ] );
      ( "function-cache",
        [
          Alcotest.test_case "hits" `Quick test_func_cache_hits;
          Alcotest.test_case "disabled" `Quick test_func_cache_disabled;
          Alcotest.test_case "compile hook" `Quick test_func_cache_on_compile_hook;
          Alcotest.test_case "invalidation" `Quick
            test_func_cache_invalidated_on_module_update;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "repeatable read" `Quick
            test_repeatable_read_pins_snapshot;
          Alcotest.test_case "timeout expiry" `Quick test_isolation_timeout_expiry;
          Alcotest.test_case "distinct snapshots" `Quick
            test_isolation_distinct_queries_distinct_snapshots;
          Alcotest.test_case "distributed snapshot isolation" `Quick
            test_snapshot_isolation_pins_query_timestamp;
        ] );
      ( "updates-2pc",
        [
          Alcotest.test_case "R_Fu immediate" `Quick test_rfu_applies_immediately;
          Alcotest.test_case "R'_Fu deferred" `Quick
            test_rfu_prime_defers_until_commit;
          Alcotest.test_case "rollback" `Quick test_rollback_discards;
          Alcotest.test_case "prepare conflict" `Quick
            test_prepare_conflict_detection;
          Alcotest.test_case "read-only participant" `Quick
            test_read_only_participant_votes_yes;
        ] );
      ( "bulk-optimization",
        [
          Alcotest.test_case "hash join" `Quick test_bulk_hash_join_used_and_correct;
        ] );
    ]
