(* Differential battery: the loop-lifted algebra backend (Looplift) vs the
   direct interpreter (Eval) over a seeded generator of core-subset XQuery —
   FLWOR over sequences (for/at/let/where), integer arithmetic, general
   comparisons (as where/if conditions), ranges, count(), and positional
   predicates.  Both engines must print the identical result for every
   generated query.

   500 cases run in @runtest.  The whole battery is re-seedable:

     DIFF_SEED=<n> dune runtest

   regenerates all 500 cases from base seed <n>; a failure message carries
   the base seed, the case index and the query text, so any failing case
   replays exactly.

   The generator deliberately stays inside the subset both engines define
   the same way.  Known, documented divergences it avoids:
     - comparison over an EMPTY operand: Eval's general comparison yields
       false, the lifted plan yields the empty sequence — identical as a
       where/if condition (EBV false), different as a returned value, so
       comparisons appear only in condition position;
     - arithmetic over non-singletons: both engines error, but with
       different exceptions, so operands are tracked for singleton-ness;
     - division/modulo by zero: divisors are non-zero literals. *)

open Xrpc_xml
module Looplift = Xrpc_algebra.Looplift
module Parser = Xrpc_xquery.Parser
module Runner = Xrpc_xquery.Runner

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

type gen_env = {
  rng : Random.State.t;
  singles : string list;  (* variables bound to singleton integers *)
  seqs : string list;  (* variables bound to arbitrary sequences *)
  mutable fresh : int;
}

let fresh_var st =
  let v = Printf.sprintf "v%d" st.fresh in
  st.fresh <- st.fresh + 1;
  v

let pick st l = List.nth l (Random.State.int st.rng (List.length l))

let weighted st choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let rec go n = function
    | [] -> assert false
    | (w, c) :: rest -> if n < w then c else go (n - w) rest
  in
  go (Random.State.int st.rng total) choices

(* a singleton-integer expression *)
let rec gen_int st depth =
  let leaf () =
    match st.singles with
    | [] -> string_of_int (Random.State.int st.rng 10)
    | vs ->
        if Random.State.bool st.rng then "$" ^ pick st vs
        else string_of_int (Random.State.int st.rng 10)
  in
  if depth <= 0 then leaf ()
  else
    weighted st
      [
        (3, leaf);
        ( 3,
          fun () ->
            let op = pick st [ "+"; "-"; "*" ] in
            Printf.sprintf "(%s %s %s)" (gen_int st (depth - 1)) op
              (gen_int st (depth - 1)) );
        ( 1,
          fun () ->
            (* non-zero literal divisor keeps both engines error-free *)
            let op = pick st [ "idiv"; "mod" ] in
            Printf.sprintf "(%s %s %d)" (gen_int st (depth - 1)) op
              (1 + Random.State.int st.rng 4) );
        (2, fun () -> Printf.sprintf "count(%s)" (gen_seq st (depth - 1)));
        ( 1,
          fun () ->
            Printf.sprintf "(if %s then %s else %s)" (gen_cond st (depth - 1))
              (gen_int st (depth - 1)) (gen_int st (depth - 1)) );
      ]
      ()

(* a comparison usable as an EBV condition *)
and gen_cond st depth =
  let op = pick st [ "="; "!="; "<"; "<="; ">"; ">=" ] in
  Printf.sprintf "(%s %s %s)" (gen_int st depth) op (gen_int st depth)

(* an arbitrary (possibly empty, possibly long) sequence expression *)
and gen_seq st depth =
  if depth <= 0 then
    weighted st
      [
        (5, fun () -> gen_int st 0);
        (1, fun () -> "()");
        ( 2,
          fun () ->
            let lo = Random.State.int st.rng 6 in
            (* hi may undershoot lo: empty ranges are part of the subset
               (clamped at 0 — a negative literal would parse as unary
               minus, which the lifted plan does not support) *)
            Printf.sprintf "(%d to %d)" lo
              (max 0 (lo - 1 + Random.State.int st.rng 5)) );
        ( 2,
          fun () ->
            match st.seqs with
            | [] -> gen_int st 0
            | vs -> "$" ^ pick st vs );
      ]
      ()
  else
    weighted st
      [
        (3, fun () -> gen_int st depth);
        ( 2,
          fun () ->
            Printf.sprintf "(%s, %s)" (gen_seq st (depth - 1))
              (gen_seq st (depth - 1)) );
        ( 2,
          fun () ->
            (* positional predicate: literal index, sometimes out of range
               (0 or past the end) — both engines must yield empty *)
            Printf.sprintf "(%s)[%d]" (gen_seq st (depth - 1))
              (Random.State.int st.rng 6) );
        ( 4,
          fun () ->
            let v = fresh_var st in
            let posv =
              if Random.State.int st.rng 3 = 0 then Some (fresh_var st) else None
            in
            let inner =
              {
                st with
                singles =
                  (v :: (match posv with Some p -> [ p ] | None -> []))
                  @ st.singles;
              }
            in
            let where =
              if Random.State.int st.rng 3 = 0 then
                " where " ^ gen_cond inner (depth - 1)
              else ""
            in
            Printf.sprintf "(for $%s%s in %s%s return %s)" v
              (match posv with Some p -> " at $" ^ p | None -> "")
              (gen_seq st (depth - 1))
              where
              (gen_seq inner (depth - 1)) );
        ( 2,
          fun () ->
            let v = fresh_var st in
            let bound_single = Random.State.bool st.rng in
            let bound =
              if bound_single then gen_int st (depth - 1)
              else gen_seq st (depth - 1)
            in
            let inner =
              if bound_single then { st with singles = v :: st.singles }
              else { st with seqs = v :: st.seqs }
            in
            Printf.sprintf "(let $%s := %s return %s)" v bound
              (gen_seq inner (depth - 1)) );
        ( 1,
          fun () ->
            Printf.sprintf "(if %s then %s else %s)" (gen_cond st (depth - 1))
              (gen_seq st (depth - 1)) (gen_seq st (depth - 1)) );
      ]
      ()

let gen_query ~base ~case =
  let st =
    { rng = Random.State.make [| base; case |]; singles = []; seqs = [];
      fresh = 0 }
  in
  gen_seq st 3

(* ------------------------------------------------------------------ *)
(* The two engines                                                     *)
(* ------------------------------------------------------------------ *)

let resolver ~uri:_ ~location:_ = failwith "no modules in differential tests"
let no_network ~dest:_ _ = failwith "no network in differential tests"

let run_eval q = Xdm.to_display (fst (Runner.run ~resolver q))

let run_looplift q =
  let e = Parser.parse_expression q in
  let env = Looplift.make_env ~call:no_network () in
  Xdm.to_display (Looplift.run env e)

let base_seed () =
  match Sys.getenv_opt "DIFF_SEED" with
  | Some s -> int_of_string (String.trim s)
  | None -> 2026

let check_case ~base ~case q =
  let lifted =
    try Ok (run_looplift q) with
    | Looplift.Unsupported m -> Error (Printf.sprintf "Unsupported: %s" m)
    | e -> Error (Printexc.to_string e)
  in
  let interp =
    try Ok (run_eval q) with e -> Error (Printexc.to_string e)
  in
  match (lifted, interp) with
  | Ok a, Ok b when a = b -> ()
  | _ ->
      let show = function Ok s -> Printf.sprintf "%S" s | Error m -> m in
      Alcotest.failf
        "engines diverge on case %d of base seed %d\n\
         query:      %s\n\
         looplift:   %s\n\
         interpreter: %s\n\
         replay the battery with: DIFF_SEED=%d dune runtest"
        case base q (show lifted) (show interp) base

let test_differential_battery () =
  let base = base_seed () in
  for case = 0 to 499 do
    check_case ~base ~case (gen_query ~base ~case)
  done

(* Handwritten pin-downs of the corners the generator relies on. *)
let test_differential_corners () =
  let base = base_seed () in
  List.iteri
    (fun i q -> check_case ~base ~case:(-(i + 1)) q)
    [
      "(1, 2, 3)[2]";
      "(1, 2)[5]";
      "(1, 2)[0]";
      "((10 to 14)[3], (5 to 4)[1])";
      "(for $v at $p in (7, 8, 9) return ($p, $v))";
      "(for $v in (1 to 4) where $v mod 2 = 0 return $v * $v)";
      "(let $s := (2 to 5) return (count($s), $s[2]))";
      "(for $a in (1 to 3) return for $b in (1 to $a) return ($a * 10 + $b))";
      "(if (count(()) = 0) then (1, 2) else 3)";
      "count((for $v in (1 to 5) return (1 to $v))[7])";
    ]

(* Eval vs the caching peer path: the same generated queries, run twice
   each through one Peer with its plan cache on (second run is a plan-
   cache hit) against a fresh interpreter run as the reference — cached
   plans and their per-execution global rebinding may never change an
   answer.  Cases 500..699 keep the seeds disjoint from the Looplift
   battery above.

   The battery runs once per XRPC_FORCE_STRATEGY rpc-mode override
   (auto/bulk/singles): these queries have no [execute at], so forcing the
   dispatch mode must be a strict no-op on answers — a mis-costed
   optimizer pick can change performance, never results. *)
let cached_peer_battery mode () =
  let base = base_seed () in
  Unix.putenv "XRPC_FORCE_STRATEGY" mode;
  Fun.protect ~finally:(fun () -> Unix.putenv "XRPC_FORCE_STRATEGY" "")
  @@ fun () ->
  let peer = Xrpc_peer.Peer.create "xrpc://diff.local" in
  for case = 500 to 699 do
    let q = gen_query ~base ~case in
    let reference = try Ok (run_eval q) with e -> Error (Printexc.to_string e) in
    let via_peer () =
      try Ok (Xdm.to_display (Xrpc_peer.Peer.query_seq peer q))
      with e -> Error (Printexc.to_string e)
    in
    let first = via_peer () in
    let second = via_peer () in
    let agrees = function
      | Ok d -> reference = Ok d
      | Error _ -> ( match reference with Ok _ -> false | Error _ -> true)
    in
    if not (agrees first && agrees second) then
      let show = function Ok s -> Printf.sprintf "%S" s | Error m -> m in
      Alcotest.failf
        "cached peer (forced rpc mode %S) diverges on case %d of base seed %d\n\
         query:       %s\n\
         interpreter: %s\n\
         first run:   %s\n\
         cached run:  %s\n\
         replay the battery with: DIFF_SEED=%d dune runtest"
        mode case base q (show reference) (show first) (show second) base
  done;
  let stats = (Xrpc_peer.Peer.cache_stats peer).Xrpc_peer.Peer.plan in
  if stats.Xrpc_peer.Plan_cache.hits < 200 then
    Alcotest.failf "forced rpc mode %S: expected >= 200 plan-cache hits, saw %d"
      mode stats.Xrpc_peer.Plan_cache.hits

(* the battery is itself deterministic: same base seed, same 500 queries *)
let test_generator_deterministic () =
  let base = base_seed () in
  for case = 0 to 499 do
    let a = gen_query ~base ~case and b = gen_query ~base ~case in
    if a <> b then Alcotest.failf "case %d not deterministic" case
  done

let () =
  Alcotest.run "diff"
    [
      ( "eval-vs-looplift",
        [
          Alcotest.test_case "corner cases" `Quick test_differential_corners;
          Alcotest.test_case "500 seeded queries" `Quick
            test_differential_battery;
          Alcotest.test_case "200 queries, Eval vs cached peer (auto)" `Quick
            (cached_peer_battery "auto");
          Alcotest.test_case "200 queries, Eval vs cached peer (bulk)" `Quick
            (cached_peer_battery "bulk");
          Alcotest.test_case "200 queries, Eval vs cached peer (singles)"
            `Quick
            (cached_peer_battery "singles");
          Alcotest.test_case "generator determinism" `Quick
            test_generator_deterministic;
        ] );
    ]
