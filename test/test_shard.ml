(* Sharded-store suite: the consistent-hash ring, replica placement,
   scatter-gather querying, and the shard-vs-single-peer differential
   battery.

   The headline test generates >= 200 random shard topologies (4-16
   peers, 1-3 replicas, both scatter modes, optional single-peer kill)
   and asserts that every sharded query returns exactly what an
   unsharded oracle peer — one database holding the whole collection —
   returns.  The battery is re-seedable:

     SHARD_SEED=<n> dune runtest

   regenerates every case from base seed <n>; a failure message carries
   the base seed, the case index and the case's topology, so any failing
   case replays exactly.

   The chaos section proves the replication claim directly: at 16 peers
   with 2 replicas, killing (or partitioning away) ANY single member
   changes no answer, in either scatter mode.  The error-discipline
   section pins what a failed leg looks like: one typed
   [Xrpc_error.Error] naming the failing destination, never a silently
   partial result. *)

open Xrpc_xml
module Cluster = Xrpc_core.Cluster
module Xrpc_client = Xrpc_core.Xrpc_client
module Shard = Xrpc_peer.Shard
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Gather = Xrpc_algebra.Gather
module Shardmod = Xrpc_workloads.Shardmod
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Executor = Xrpc_net.Executor
module Xrpc_error = Xrpc_net.Xrpc_error

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Ring unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let uris n = List.init n (fun i -> Printf.sprintf "xrpc://s%d" i)
let keys k = List.init k (fun i -> Printf.sprintf "key%d" i)

let test_ring_basics () =
  let m = Shard.create ~replicas:2 (uris 4) in
  check int_ "members" 4 (List.length (Shard.members m));
  check int_ "replicas" 2 (Shard.replicas m);
  List.iter
    (fun key ->
      let rs = Shard.replica_set m key in
      check int_ "replica set size" 2 (List.length rs);
      check bool_ "distinct" true
        (List.length (List.sort_uniq compare rs) = List.length rs);
      check string_ "primary first" (Shard.primary m key) (List.hd rs);
      List.iter
        (fun h -> check bool_ "holder is a member" true
            (List.mem h (Shard.members m)))
        rs)
    (keys 50);
  (* replica count clamps to the member count *)
  let tiny = Shard.create ~replicas:5 (uris 2) in
  check int_ "clamped" 2 (List.length (Shard.replica_set tiny "k"))

let test_ring_deterministic () =
  let a = Shard.create (uris 7) and b = Shard.create (uris 7) in
  List.iter
    (fun key ->
      check string_ ("same primary for " ^ key) (Shard.primary a key)
        (Shard.primary b key))
    (keys 100);
  let hs = List.map Shard.fnv1a (keys 100) in
  check bool_ "hash spreads" true
    (List.length (List.sort_uniq compare hs) > 95)

let test_version_bumps () =
  let m = Shard.create (uris 3) in
  let v0 = Shard.version m in
  Shard.add m "xrpc://joiner";
  check bool_ "add bumps" true (Shard.version m > v0);
  let v1 = Shard.version m in
  Shard.remove m "xrpc://joiner";
  check bool_ "remove bumps" true (Shard.version m > v1);
  Shard.add m "xrpc://s0";
  check int_ "re-adding a member is a no-op" (Shard.version m) (v1 + 1)

let test_describe_surfaces () =
  let m = Shard.create (uris 3) in
  let txt = Shard.describe ~keys:(keys 30) m in
  List.iter
    (fun u ->
      check bool_ (u ^ " listed") true
        (contains txt u))
    (uris 3);
  let js = Shard.to_json ~keys:(keys 30) m in
  check bool_ "json has members" true
    (contains js "\"members\"")

(* ------------------------------------------------------------------ *)
(* Ring properties (QCheck)                                            *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 50) ~name arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count arb (fun x ->
         f x;
         true))

let arb_topology =
  QCheck.make
    ~print:(fun (n, r, seed) ->
      Printf.sprintf "peers=%d replicas=%d seed=%d" n r seed)
    QCheck.Gen.(triple (int_range 3 32) (int_range 1 3) (int_range 0 9999))

(* max/min primary-load over 2000 keys stays within a constant factor:
   the vnode count bounds the arc-length skew of the ring *)
let prop_balance (n, r, seed) =
  let m = Shard.create ~replicas:r (uris n) in
  let ks = List.init 2000 (fun i -> Printf.sprintf "bal%d-%d" seed i) in
  let ratio = Shard.load_ratio m ks in
  if ratio > 6.0 then
    Alcotest.failf "load ratio %.2f > 6.0 at %d peers" ratio n

(* join moves exactly the keys the joiner takes over: a key's primary
   changes iff its new primary IS the joiner (other arcs are untouched),
   and the moved fraction stays near K/(N+1) *)
let prop_join_minimal (n, r, seed) =
  let m = Shard.create ~replicas:r (uris n) in
  let ks = List.init 1000 (fun i -> Printf.sprintf "join%d-%d" seed i) in
  let before = List.map (fun k -> (k, Shard.primary m k)) ks in
  let joiner = "xrpc://joiner" in
  Shard.add m joiner;
  let moved = ref 0 in
  List.iter
    (fun (k, old) ->
      let now = Shard.primary m k in
      if now <> old then begin
        incr moved;
        if now <> joiner then
          Alcotest.failf "key %s moved %s -> %s, not to the joiner" k old now
      end)
    before;
  let expected = 1000 / (n + 1) in
  if !moved > (4 * expected) + 30 then
    Alcotest.failf "join moved %d keys, expected ~%d" !moved expected

(* leave moves exactly the departed member's keys *)
let prop_leave_minimal (n, r, seed) =
  let m = Shard.create ~replicas:r (uris n) in
  let ks = List.init 1000 (fun i -> Printf.sprintf "leave%d-%d" seed i) in
  let before = List.map (fun k -> (k, Shard.primary m k)) ks in
  let victim = List.nth (Shard.members m) (seed mod n) in
  Shard.remove m victim;
  List.iter
    (fun (k, old) ->
      let now = Shard.primary m k in
      if old = victim then begin
        if now = victim then Alcotest.failf "key %s still on removed %s" k victim
      end
      else if now <> old then
        Alcotest.failf "key %s moved %s -> %s though %s left" k old now victim)
    before

(* replica sets: right size, all-distinct, primary-first, members only *)
let prop_replica_sets (n, r, seed) =
  let m = Shard.create ~replicas:r (uris n) in
  List.iter
    (fun k ->
      let rs = Shard.replica_set m k in
      if List.length rs <> min r n then
        Alcotest.failf "replica set size %d, expected %d" (List.length rs)
          (min r n);
      if List.length (List.sort_uniq compare rs) <> List.length rs then
        Alcotest.failf "replica set of %s not distinct" k;
      if List.hd rs <> Shard.primary m k then
        Alcotest.failf "replica set of %s not primary-first" k)
    (List.init 200 (fun i -> Printf.sprintf "rs%d-%d" seed i))

(* ------------------------------------------------------------------ *)
(* Cluster fixture                                                     *)
(* ------------------------------------------------------------------ *)

let member_names n = List.init n (fun i -> Printf.sprintf "s%d" i)
let member_uris n = List.map (fun s -> "xrpc://" ^ s) (member_names n)

let import_prologue =
  Printf.sprintf "import module namespace sh=\"shard\" at %S;\n"
    Shardmod.module_at

(** A ring of [peers] members plus one out-of-ring "oracle" peer holding
    the whole collection in a single database. *)
let make_cluster ?(seed = 0) ?(replicas = 2) ~peers:n ~records:k () =
  let t =
    Cluster.create
      ~faults:{ Simnet.no_faults with Simnet.fault_seed = seed }
      ~names:("oracle" :: member_names n)
      ()
  in
  Cluster.register_module_everywhere t ~uri:Shardmod.module_ns
    ~location:Shardmod.module_at Shardmod.shard_module;
  let map = Shard.create ~replicas (member_uris n) in
  Cluster.set_shard_map t (Some map);
  let records = Shardmod.records k in
  Cluster.place_sharded t records;
  Database.add_doc_xml (Cluster.peer t "oracle").Peer.db "shard.xml"
    (Cluster.oracle_xml t ());
  (t, map, records)

let oracle_answer t =
  Xdm.to_display
    (Peer.query_seq (Cluster.peer t "oracle")
       (import_prologue ^ "sh:allParts()"))

let sharded_answer ?mode t =
  Xdm.to_display
    (Cluster.scatter_gather t ?mode ~module_uri:Shardmod.module_ns
       ~location:Shardmod.module_at ~fn:"partsByOwner" ())

(* the string-value a routed sh:valueOf lookup should return *)
let string_value_of_xml xml =
  let store = Store.shred ~uri:"tmp" (Xml_parse.document xml) in
  Store.string_value { Store.store; pre = 0 }

(* read one attribute off a result element *)
let attr_of ~name item =
  match item with
  | Xdm.Node n ->
      List.find_map
        (fun a ->
          match Store.name a with
          | Some q when q.Qname.local = name -> Some (Store.string_value a)
          | _ -> None)
        (Store.attributes n)
  | _ -> None

(* after a join/leave the rebalance re-stamps every part's @owner with its
   new primary, so topology-change tests rebuild the oracle's copy before
   comparing *)
let reload_oracle t =
  Database.add_doc_xml (Cluster.peer t "oracle").Peer.db "shard.xml"
    (Cluster.oracle_xml t ())

(* ------------------------------------------------------------------ *)
(* Scatter-gather sanity                                               *)
(* ------------------------------------------------------------------ *)

let test_scatter_matches_oracle () =
  let t, _, records = make_cluster ~peers:4 ~records:30 () in
  let oracle = oracle_answer t in
  check bool_ "oracle non-empty" true (String.length oracle > 0);
  check string_ "by-owner matches oracle" oracle
    (sharded_answer ~mode:Xrpc_client.By_owner t);
  check string_ "broadcast matches oracle" oracle
    (sharded_answer ~mode:Xrpc_client.Broadcast t);
  check int_ "all records present" (List.length records)
    (List.length
       (Cluster.scatter_gather t ~module_uri:Shardmod.module_ns
          ~location:Shardmod.module_at ~fn:"partsByOwner" ()))

let test_routed_lookup () =
  let t, _, records = make_cluster ~peers:6 ~records:24 () in
  List.iter
    (fun (key, inner) ->
      let got =
        Xdm.to_display
          (Peer.query_seq (Cluster.peer t "s0") (Shardmod.lookup_query ~key))
      in
      check string_ ("lookup " ^ key) (string_value_of_xml inner) got)
    records

let test_shard_text_surfaces () =
  let t, _, _ = make_cluster ~peers:3 ~records:9 () in
  let txt = Peer.shard_text (Cluster.peer t "s0") in
  List.iter
    (fun u ->
      check bool_ (u ^ " in :shards") true
        (contains txt u))
    (member_uris 3);
  let js = Peer.shard_json (Cluster.peer t "s0") in
  check bool_ "json members" true
    (contains js "\"members\"");
  (* a peer without a map says so instead of failing *)
  let bare = Peer.create "xrpc://bare" in
  check bool_ "no map note" true
    (contains (Peer.shard_text bare) "no shard map");
  check string_ "no map json" "{\"shard_map\":null}" (Peer.shard_json bare)

(* ------------------------------------------------------------------ *)
(* Differential battery: sharded vs oracle, >= 200 seeded cases        *)
(* ------------------------------------------------------------------ *)

let base_seed () =
  match Sys.getenv_opt "SHARD_SEED" with
  | Some s -> int_of_string s
  | None -> 0x5a4d

let battery_cases = 200

let run_case ~base ~case =
  let rng = Random.State.make [| base; case |] in
  let n = 4 + Random.State.int rng 13 in
  let replicas = 1 + Random.State.int rng 3 in
  let k = 10 + Random.State.int rng 51 in
  let mode =
    if Random.State.bool rng then Xrpc_client.By_owner
    else Xrpc_client.Broadcast
  in
  let t, _, records =
    make_cluster ~seed:(base + case) ~replicas ~peers:n ~records:k ()
  in
  let killed =
    if replicas >= 2 && Random.State.int rng 3 = 0 then begin
      let victim = Printf.sprintf "s%d" (Random.State.int rng n) in
      Cluster.crash t victim;
      Some victim
    end
    else None
  in
  let topo =
    Printf.sprintf "peers=%d replicas=%d records=%d mode=%s killed=%s" n
      replicas k
      (match mode with Xrpc_client.By_owner -> "by-owner" | _ -> "broadcast")
      (Option.value killed ~default:"-")
  in
  let oracle = oracle_answer t in
  let sharded = sharded_answer ~mode t in
  if oracle <> sharded then
    Alcotest.failf
      "sharded answer diverges on case %d of base seed %d (%s)\n\
       oracle:  %s\n\
       sharded: %s\n\
       replay the battery with: SHARD_SEED=%d dune runtest" case base topo
      oracle sharded base;
  (* routed per-key lookups from a live peer must hit a live holder *)
  let origin =
    let rec pick () =
      let c = Printf.sprintf "s%d" (Random.State.int rng n) in
      if Some c = killed then pick () else c
    in
    pick ()
  in
  for _ = 1 to 3 do
    let key, inner = List.nth records (Random.State.int rng k) in
    let got =
      Xdm.to_display
        (Peer.query_seq (Cluster.peer t origin) (Shardmod.lookup_query ~key))
    in
    if got <> string_value_of_xml inner then
      Alcotest.failf
        "routed lookup of %s diverges on case %d of base seed %d (%s): got \
         %S, want %S\n\
         replay the battery with: SHARD_SEED=%d dune runtest" key case base
        topo got
        (string_value_of_xml inner)
        base
  done

let test_differential_battery () =
  let base = base_seed () in
  for case = 0 to battery_cases - 1 do
    run_case ~base ~case
  done

(* same base seed, same topologies: the battery itself is replayable *)
let test_battery_deterministic () =
  let base = base_seed () in
  let draw case =
    let rng = Random.State.make [| base; case |] in
    ( 4 + Random.State.int rng 13,
      1 + Random.State.int rng 3,
      10 + Random.State.int rng 51,
      Random.State.bool rng )
  in
  for case = 0 to battery_cases - 1 do
    if draw case <> draw case then
      Alcotest.failf "case %d topology not deterministic" case
  done

(* ------------------------------------------------------------------ *)
(* Chaos: replication masks any single fault at 16 peers               *)
(* ------------------------------------------------------------------ *)

let test_single_kill_masked () =
  let t, _, _ = make_cluster ~peers:16 ~replicas:2 ~records:200 () in
  let baseline = oracle_answer t in
  check string_ "healthy ring matches oracle" baseline (sharded_answer t);
  List.iter
    (fun name ->
      Cluster.crash t name;
      check string_
        ("kill " ^ name ^ ": by-owner answer unchanged")
        baseline
        (sharded_answer ~mode:Xrpc_client.By_owner t);
      check string_
        ("kill " ^ name ^ ": broadcast answer unchanged")
        baseline
        (sharded_answer ~mode:Xrpc_client.Broadcast t);
      Cluster.restart t name)
    (member_names 16)

let test_single_partition_masked () =
  let t, _, _ = make_cluster ~peers:16 ~replicas:2 ~records:200 () in
  let baseline = oracle_answer t in
  List.iter
    (fun name ->
      Cluster.partition t [ name ];
      check bool_ "partitioned member reads down" false (Cluster.alive t name);
      check string_
        ("partition " ^ name ^ ": answer unchanged")
        baseline (sharded_answer t);
      Cluster.heal t)
    (member_names 16)

(* with a single replica a kill MUST surface as an error, not silence:
   the negative control for the masking tests *)
let test_no_replication_no_masking () =
  let t, _, _ = make_cluster ~peers:8 ~replicas:1 ~records:100 () in
  Cluster.crash t "s3";
  (* by-owner failover broadcasts the dead owner's tags, but nobody else
     holds copies: the merged answer must MISS s3's parts, so the healthy
     baseline cannot be reproduced *)
  let healthy = oracle_answer t in
  let crippled = sharded_answer t in
  check bool_ "unreplicated kill loses parts" true (healthy <> crippled)

(* rebalance while a scatter is mid-flight: run the legs one at a time,
   join a peer between two legs, and check nothing is dropped or doubled.
   Broadcast legs ask for {e everything a member holds} ([allParts], no
   owner filter — an owner list snapshotted pre-join would miss parts the
   rebalance re-stamped) and seq-dedup makes the merge insensitive to the
   same part arriving from both its old and new holders. *)
let test_rebalance_during_query () =
  let t, map, records = make_cluster ~peers:6 ~replicas:2 ~records:60 () in
  let legs =
    Xrpc_client.plan_scatter ~mode:Xrpc_client.Broadcast
      ~alive:(Simnet.is_up (Cluster.net t))
      map
  in
  let partials = ref [] in
  List.iteri
    (fun i (dest, _owners) ->
      (* topology changes between legs 2 and 3 *)
      if i = 2 then Cluster.shard_join t "late-joiner";
      let r =
        Xrpc_client.call_scatter (Cluster.client t)
          ~module_uri:Shardmod.module_ns ~location:Shardmod.module_at
          ~fn:"allParts" [ (dest, []) ]
      in
      partials := !partials @ r)
    legs;
  let merged = Gather.merge !partials in
  check int_ "no row dropped or doubled" (List.length records)
    (List.length merged);
  (* every placed key came back exactly once (the rebalance may have
     re-stamped @owner mid-flight, so compare keys, not whole elements) *)
  let keys_of items =
    List.sort compare
      (List.filter_map (fun it -> attr_of ~name:"key" it) items)
  in
  check (Alcotest.list string_) "every key exactly once"
    (List.sort compare (List.map fst records))
    (keys_of merged);
  let seqs = List.filter_map Gather.seq_of merged in
  check int_ "seqs distinct"
    (List.length merged)
    (List.length (List.sort_uniq compare seqs))

(* ------------------------------------------------------------------ *)
(* Error discipline                                                    *)
(* ------------------------------------------------------------------ *)

let test_failed_leg_is_typed_and_total () =
  let t, map, _ = make_cluster ~peers:6 ~replicas:2 ~records:30 () in
  Cluster.crash t "s2";
  (* without the liveness filter, the s2 leg must surface as one typed
     error naming s2 — not as a silently partial merge *)
  match
    Xrpc_client.call_gather (Cluster.client t) ~shard:map
      ~module_uri:Shardmod.module_ns ~location:Shardmod.module_at
      ~fn:"partsByOwner" ()
  with
  | _ -> Alcotest.fail "dead leg did not raise"
  | exception Xrpc_error.Error e ->
      check string_ "error names the failing dest" "xrpc://s2"
        e.Xrpc_error.dest

let test_all_dead_is_unreachable () =
  let t, map, _ = make_cluster ~peers:4 ~replicas:2 ~records:10 () in
  List.iter (fun nm -> Cluster.crash t nm) (member_names 4);
  match
    Xrpc_client.call_gather (Cluster.client t)
      ~alive:(Simnet.is_up (Cluster.net t))
      ~shard:map ~module_uri:Shardmod.module_ns ~location:Shardmod.module_at
      ~fn:"partsByOwner" ()
  with
  | _ -> Alcotest.fail "fully-dead ring did not raise"
  | exception Xrpc_error.Error e ->
      check bool_ "typed unreachable" true
        (e.Xrpc_error.kind = Xrpc_error.Unreachable)

(* pool executor and sequential executor must produce byte-identical
   gathers: the merge consumes legs in plan order, not arrival order *)
let direct_transport ~executor peers =
  let send ~dest body =
    match List.assoc_opt dest peers with
    | Some handler -> handler body
    | None -> Transport.error ~kind:Transport.Unreachable ~dest "no such peer"
  in
  {
    Transport.send;
    send_parallel =
      (fun pairs ->
        Executor.map_list executor (fun (dest, body) -> send ~dest body) pairs);
  }

let test_pool_matches_sequential () =
  let t, map, _ = make_cluster ~peers:8 ~replicas:2 ~records:40 () in
  let peers =
    List.map
      (fun nm -> ("xrpc://" ^ nm, Peer.handle_raw (Cluster.peer t nm)))
      (member_names 8)
  in
  let run executor =
    let client =
      Xrpc_client.connect_transport
        ~config:(Xrpc_client.config ~executor ())
        (direct_transport ~executor peers)
    in
    Xdm.to_display
      (Xrpc_client.call_gather client ~shard:map
         ~module_uri:Shardmod.module_ns ~location:Shardmod.module_at
         ~fn:"partsByOwner" ())
  in
  let seq = run Executor.sequential in
  let pool = Executor.pool 4 in
  let par = run pool in
  Executor.shutdown pool;
  check string_ "sequential == pool" seq par;
  check string_ "and both match the oracle" (oracle_answer t) seq

(* ------------------------------------------------------------------ *)
(* Gather merge unit tests                                             *)
(* ------------------------------------------------------------------ *)

let part ~owner ~seq inner =
  let xml =
    Printf.sprintf "<part owner=\"%s\" seq=\"%d\">%s</part>" owner seq inner
  in
  let store = Store.shred ~uri:"gather-test" (Xml_parse.document xml) in
  match Store.children { Store.store; pre = 0 } with
  | [ n ] -> Xdm.Node n
  | _ -> assert false

let test_gather_dedups_and_orders () =
  let a = part ~owner:"x" ~seq:2 "<v>2</v>"
  and b = part ~owner:"y" ~seq:1 "<v>1</v>"
  and c = part ~owner:"x" ~seq:3 "<v>3</v>" in
  (* duplicate seq 2 from a second leg, shuffled leg order *)
  let merged = Gather.merge [ [ c ]; [ a; b ]; [ a ] ] in
  check int_ "dedup" 3 (List.length merged);
  check string_ "seq order"
    (Xdm.to_display [ b; a; c ])
    (Xdm.to_display merged);
  check int_ "seq_of reads the tag" 2
    (Option.get (Gather.seq_of a));
  check bool_ "atomics carry no seq" true
    (Gather.seq_of (Xdm.str "plain") = None)

let test_gather_untagged_items () =
  (* untagged values dedup by content, keep first-appearance order, and
     never collide with tagged parts *)
  let tagged = part ~owner:"x" ~seq:1 "<v>1</v>" in
  let merged =
    Gather.merge
      [ [ Xdm.str "b"; Xdm.str "a" ]; [ Xdm.str "a"; tagged ] ]
  in
  check string_ "content dedup, stable order"
    (Xdm.to_display [ tagged; Xdm.str "b"; Xdm.str "a" ])
    (Xdm.to_display merged)

let test_gather_empty () =
  check int_ "no legs" 0 (List.length (Gather.merge []));
  check int_ "empty legs" 0 (List.length (Gather.merge [ []; [] ]))

(* ------------------------------------------------------------------ *)
(* Topology changes through the cluster                                *)
(* ------------------------------------------------------------------ *)

let test_join_leave_rebalance () =
  let t, map, records = make_cluster ~peers:4 ~replicas:2 ~records:50 () in
  let expected = oracle_answer t in
  check string_ "4 peers" expected (sharded_answer t);
  Cluster.shard_join t "s4";
  check int_ "ring grew" 5 (List.length (Shard.members map));
  (* the join re-stamped moved parts' @owner, so refresh the oracle *)
  reload_oracle t;
  let expected_joined = oracle_answer t in
  check bool_ "join reassigned some parts" true (expected <> expected_joined);
  check string_ "after join" expected_joined (sharded_answer t);
  Cluster.shard_leave t "s1";
  check int_ "ring shrank" 4 (List.length (Shard.members map));
  reload_oracle t;
  check string_ "after leave" (oracle_answer t) (sharded_answer t);
  (* the departed member's slice was emptied *)
  let s1_parts =
    Peer.query_seq (Cluster.peer t "s1") (import_prologue ^ "sh:allParts()")
  in
  check int_ "departed slice empty" 0 (List.length s1_parts);
  check int_ "records unchanged" (List.length records)
    (List.length (Cluster.sharded_records t ()))

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basics;
          Alcotest.test_case "deterministic" `Quick test_ring_deterministic;
          Alcotest.test_case "version bumps" `Quick test_version_bumps;
          Alcotest.test_case "describe surfaces" `Quick test_describe_surfaces;
          qcheck_case ~name:"key distribution balanced" arb_topology
            prop_balance;
          qcheck_case ~name:"join remaps minimally" arb_topology
            prop_join_minimal;
          qcheck_case ~name:"leave remaps minimally" arb_topology
            prop_leave_minimal;
          qcheck_case ~name:"replica sets distinct" arb_topology
            prop_replica_sets;
        ] );
      ( "gather",
        [
          Alcotest.test_case "dedups and orders by seq" `Quick
            test_gather_dedups_and_orders;
          Alcotest.test_case "untagged items" `Quick test_gather_untagged_items;
          Alcotest.test_case "empty" `Quick test_gather_empty;
        ] );
      ( "scatter-gather",
        [
          Alcotest.test_case "matches oracle" `Quick test_scatter_matches_oracle;
          Alcotest.test_case "routed lookup" `Quick test_routed_lookup;
          Alcotest.test_case ":shards surfaces" `Quick test_shard_text_surfaces;
          Alcotest.test_case "join/leave rebalance" `Quick
            test_join_leave_rebalance;
        ] );
      ( "differential",
        [
          Alcotest.test_case "200 seeded topologies vs oracle" `Quick
            test_differential_battery;
          Alcotest.test_case "battery determinism" `Quick
            test_battery_deterministic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "any single kill masked (16 peers, N=2)" `Quick
            test_single_kill_masked;
          Alcotest.test_case "any single partition masked" `Quick
            test_single_partition_masked;
          Alcotest.test_case "no replication, no masking" `Quick
            test_no_replication_no_masking;
          Alcotest.test_case "rebalance during query" `Quick
            test_rebalance_during_query;
        ] );
      ( "errors",
        [
          Alcotest.test_case "failed leg raises typed error" `Quick
            test_failed_leg_is_typed_and_total;
          Alcotest.test_case "all-dead ring raises unreachable" `Quick
            test_all_dead_is_unreachable;
          Alcotest.test_case "pool == sequential" `Quick
            test_pool_matches_sequential;
        ] );
    ]
