(* Tests for the SOAP XRPC protocol layer: s2n/n2s marshaling, message
   construction/parsing, the queryID isolation extension, Bulk RPC bodies,
   faults, and call-by-value guarantees (§2.1–§2.2 of the paper). *)

open Xrpc_xml
module Marshal = Xrpc_soap.Marshal
module Message = Xrpc_soap.Message

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let roundtrip seq = Marshal.n2s (Marshal.s2n seq)

(* ------------------------------------------------------------------ *)
(* s2n / n2s                                                           *)
(* ------------------------------------------------------------------ *)

let test_atomic_roundtrip () =
  let seq =
    [
      Xdm.Atomic (Xs.Integer 2);
      Xdm.Atomic (Xs.Double 3.1);
      Xdm.Atomic (Xs.String "Sean Connery");
      Xdm.Atomic (Xs.Boolean true);
      Xdm.Atomic (Xs.Untyped "u");
    ]
  in
  let back = roundtrip seq in
  check int_ "length" 5 (List.length back);
  check bool_ "types preserved" true
    (List.for_all2
       (fun a b ->
         match (a, b) with
         | Xdm.Atomic x, Xdm.Atomic y ->
             Xs.type_of x = Xs.type_of y && Xs.equal_values x y
         | _ -> false)
       seq back)

let test_paper_example_n2s () =
  (* the n2s example of §2.2: ("abc", 42) *)
  let xml =
    {|<xrpc:sequence xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
       xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
<xrpc:atomic-value xsi:type="xs:string">abc</xrpc:atomic-value>
<xrpc:atomic-value xsi:type="xs:integer">42</xrpc:atomic-value>
</xrpc:sequence>|}
  in
  match Xml_parse.document xml with
  | Tree.Document [ e ] ->
      let seq = Marshal.n2s e in
      check bool_ "abc,42" true
        (seq = [ Xdm.Atomic (Xs.String "abc"); Xdm.Atomic (Xs.Integer 42) ])
  | _ -> Alcotest.fail "parse"

let test_element_roundtrip () =
  let store = Store.shred (Xml_parse.document "<name g=\"x\">The Rock</name>") in
  let node = List.hd (Store.children (Store.root store)) in
  match roundtrip [ Xdm.Node node ] with
  | [ Xdm.Node n ] ->
      check bool_ "same tree" true
        (Tree.equal (Store.to_tree node) (Store.to_tree n));
      check bool_ "fresh identity" false (Store.equal_nodes node n)
  | _ -> Alcotest.fail "shape"

let test_call_by_value_severs_upward_axes () =
  (* §2.2: upward/sideways axes on unmarshaled node parameters are empty *)
  let store =
    Store.shred (Xml_parse.document "<films><film><name>X</name></film><film/></films>")
  in
  let films = List.hd (Store.children (Store.root store)) in
  let film1 = List.hd (Store.children films) in
  match roundtrip [ Xdm.Node film1 ] with
  | [ Xdm.Node n ] ->
      check bool_ "parent empty" true (Store.parent n = None);
      check int_ "no following" 0 (List.length (Store.following n));
      check int_ "no siblings" 0 (List.length (Store.following_siblings n))
  | _ -> Alcotest.fail "shape"

let test_marshal_destroys_descendant_relationship () =
  (* §2.2: two parameters in a descendant relationship arrive unrelated *)
  let store = Store.shred (Xml_parse.document "<a><b><c/></b></a>") in
  let a = List.hd (Store.children (Store.root store)) in
  let b = List.hd (Store.children a) in
  match roundtrip [ Xdm.Node a; Xdm.Node b ] with
  | [ Xdm.Node a'; Xdm.Node b' ] ->
      check bool_ "different stores" true
        (a'.Store.store.Store.doc_id <> b'.Store.store.Store.doc_id);
      check bool_ "no ancestry" true
        (not (List.exists (fun x -> Store.equal_nodes x a') (Store.ancestors b')))
  | _ -> Alcotest.fail "shape"

let test_mixed_node_kinds () =
  let store =
    Store.shred ~uri:"d.xml"
      (Xml_parse.document "<a x=\"v\"><!--c--><?pi data?>text</a>")
  in
  let a = List.hd (Store.children (Store.root store)) in
  let doc = Store.root store in
  let attr = List.hd (Store.attributes a) in
  let kids = Store.children a in
  let seq = Xdm.Node doc :: Xdm.Node attr :: List.map (fun n -> Xdm.Node n) kids in
  let back = roundtrip seq in
  check int_ "all items back" (List.length seq) (List.length back);
  let kinds =
    List.map (function Xdm.Node n -> Store.kind n | _ -> Alcotest.fail "atomic") back
  in
  check bool_ "kinds preserved" true
    (kinds = [ Store.Doc; Store.Attr; Store.Comm; Store.Pi; Store.Txt ])

let test_empty_sequence () =
  check int_ "empty" 0 (List.length (roundtrip []))

let test_untyped_without_annotation () =
  let xml =
    {|<xrpc:sequence xmlns:xrpc="http://monetdb.cwi.nl/XQuery">
<xrpc:atomic-value>plain</xrpc:atomic-value></xrpc:sequence>|}
  in
  match Xml_parse.document xml with
  | Tree.Document [ e ] -> (
      match Marshal.n2s e with
      | [ Xdm.Atomic (Xs.Untyped "plain") ] -> ()
      | _ -> Alcotest.fail "expected untypedAtomic")
  | _ -> Alcotest.fail "parse"

(* ---- footnote-4 extension: call-by-fragment ---- *)

let fragment_roundtrip params =
  let trees = Marshal.s2n_call ~fragments:true params in
  (trees, Marshal.n2s_call trees)

let test_fragments_preserve_ancestry () =
  (* two parameters in a descendant relationship: plain call-by-value
     destroys it (tested above); the nodeid extension preserves it *)
  let store = Store.shred (Xml_parse.document "<a><b><c/></b></a>") in
  let a = List.hd (Store.children (Store.root store)) in
  let b = List.hd (Store.children a) in
  match fragment_roundtrip [ [ Xdm.Node a ]; [ Xdm.Node b ] ] with
  | _, [ [ Xdm.Node a' ]; [ Xdm.Node b' ] ] ->
      check bool_ "same fragment" true
        (a'.Store.store.Store.doc_id = b'.Store.store.Store.doc_id);
      check bool_ "ancestry preserved" true
        (List.exists (fun x -> Store.equal_nodes x a') (Store.ancestors b'));
      check string_ "b still correct" "b"
        (match Store.name b' with Some q -> q.Qname.local | None -> "?")
  | _ -> Alcotest.fail "shape"

let test_fragments_compress_message () =
  let big =
    Store.shred
      (Xml_parse.document
         ("<root>" ^ String.concat ""
            (List.init 50 (fun i ->
                 Printf.sprintf "<x i=\"%d\">%s</x>" i (String.make 120 'p')))
          ^ "</root>"))
  in
  let root_el = List.hd (Store.children (Store.root big)) in
  let sub = List.nth (Store.children root_el) 10 in
  let params = [ [ Xdm.Node root_el ]; [ Xdm.Node sub ] ] in
  let plain = Marshal.s2n_call ~fragments:false params in
  let compressed = Marshal.s2n_call ~fragments:true params in
  let size ts =
    List.fold_left (fun n t -> n + String.length (Serialize.to_string t)) 0 ts
  in
  check bool_ "smaller on the wire" true (size compressed < size plain)

let test_fragments_plain_params_unchanged () =
  (* unrelated parameters marshal exactly as without the extension *)
  let s1 = Store.shred (Xml_parse.document "<p/>") in
  let params = [ [ Xdm.Atomic (Xs.Integer 1) ];
                 [ Xdm.Node (List.hd (Store.children (Store.root s1))) ] ] in
  match fragment_roundtrip params with
  | _, [ [ Xdm.Atomic (Xs.Integer 1) ]; [ Xdm.Node n ] ] ->
      check bool_ "element intact" true
        (match Store.name n with Some q -> q.Qname.local = "p" | None -> false)
  | _ -> Alcotest.fail "shape"

let test_fragments_wire_roundtrip () =
  let store = Store.shred (Xml_parse.document "<a><b>inner</b></a>") in
  let a = List.hd (Store.children (Store.root store)) in
  let b = List.hd (Store.children a) in
  let r =
    {
      Message.module_uri = "m"; location = ""; method_ = "f"; arity = 2;
      updating = false; fragments = true; query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.Node a ]; [ Xdm.Node b ] ] ];
    }
  in
  match Message.of_string (Message.to_string (Message.Request r)) with
  | Message.Request { fragments = true; calls = [ [ [ Xdm.Node a' ]; [ Xdm.Node b' ] ] ]; _ } ->
      check bool_ "ancestry over the wire" true
        (List.exists (fun x -> Store.equal_nodes x a') (Store.ancestors b'))
  | _ -> Alcotest.fail "wire shape"

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let sample_request ?(query_id = None) ?(calls = 1) () =
  {
    Message.module_uri = "films";
    location = "http://x.example.org/film.xq";
    method_ = "filmsByActor";
    arity = 1;
    updating = false;
    fragments = false;
    query_id;
    idem_key = None; cache_ok = true;
    calls =
      List.init calls (fun i -> [ [ Xdm.str (Printf.sprintf "Actor %d" i) ] ]);
  }

let test_request_roundtrip () =
  let r = sample_request () in
  match Message.of_string (Message.to_string (Message.Request r)) with
  | Message.Request r' ->
      check string_ "module" r.Message.module_uri r'.Message.module_uri;
      check string_ "method" r.Message.method_ r'.Message.method_;
      check int_ "arity" r.Message.arity r'.Message.arity;
      check string_ "location" r.Message.location r'.Message.location;
      check int_ "calls" 1 (List.length r'.Message.calls)
  | _ -> Alcotest.fail "wrong message kind"

let test_bulk_request_roundtrip () =
  let r = sample_request ~calls:5 () in
  match Message.of_string (Message.to_string (Message.Request r)) with
  | Message.Request r' ->
      check int_ "bulk calls preserved" 5 (List.length r'.Message.calls);
      let params =
        List.map
          (fun call -> Xdm.string_value (List.hd (List.hd call)))
          r'.Message.calls
      in
      check bool_ "order" true
        (params = [ "Actor 0"; "Actor 1"; "Actor 2"; "Actor 3"; "Actor 4" ])
  | _ -> Alcotest.fail "wrong kind"

let test_query_id_roundtrip () =
  let qid = { Message.host = "xrpc://x"; timestamp = "123.456"; timeout = 42; level = Message.Repeatable } in
  let r = sample_request ~query_id:(Some qid) () in
  match Message.of_string (Message.to_string (Message.Request r)) with
  | Message.Request { query_id = Some q; _ } ->
      check string_ "host" "xrpc://x" q.Message.host;
      check string_ "timestamp" "123.456" q.Message.timestamp;
      check int_ "timeout" 42 q.Message.timeout
  | _ -> Alcotest.fail "queryID lost"

let test_updating_flag_roundtrip () =
  let r = { (sample_request ()) with Message.updating = true } in
  match Message.of_string (Message.to_string (Message.Request r)) with
  | Message.Request r' -> check bool_ "updating" true r'.Message.updating
  | _ -> Alcotest.fail "wrong kind"

let test_response_roundtrip_with_peers () =
  let store = Store.shred (Xml_parse.document "<name>The Rock</name>") in
  let resp =
    {
      Message.resp_module = "films";
      resp_method = "filmsByActor";
      results =
        [ [ Xdm.Node (List.hd (Store.children (Store.root store))) ];
          [ Xdm.int 7 ] ];
      cached = false;
      db_version = None;
      peers = [ "xrpc://y.example.org"; "xrpc://z.example.org" ];
    }
  in
  match Message.of_string (Message.to_string (Message.Response resp)) with
  | Message.Response r ->
      check int_ "two results" 2 (List.length r.Message.results);
      check bool_ "peers piggybacked" true
        (r.Message.peers = [ "xrpc://y.example.org"; "xrpc://z.example.org" ])
  | _ -> Alcotest.fail "wrong kind"

let test_fault_roundtrip () =
  let f = { Message.fault_code = `Sender; reason = "could not load module!" } in
  match Message.of_string (Message.to_string (Message.Fault f)) with
  | Message.Fault f' ->
      check bool_ "code" true (f'.Message.fault_code = `Sender);
      check string_ "reason" "could not load module!" f'.Message.reason
  | _ -> Alcotest.fail "wrong kind"

let test_tx_roundtrip () =
  let qid = { Message.host = "h"; timestamp = "1"; timeout = 5; level = Message.Snapshot } in
  (match
     Message.of_string
       (Message.to_string (Message.Tx_request (Message.Prepare, qid)))
   with
  | Message.Tx_request (Message.Prepare, q) ->
      check string_ "qid host" "h" q.Message.host
  | _ -> Alcotest.fail "prepare");
  match
    Message.of_string
      (Message.to_string (Message.Tx_response { ok = true; info = "prepared" }))
  with
  | Message.Tx_response { ok = true; info = "prepared" } -> ()
  | _ -> Alcotest.fail "tx response"

let test_wire_format_matches_paper () =
  (* the §2.1 example message, byte-level landmarks *)
  let s = Message.to_string (Message.Request (sample_request ())) in
  let contains sub =
    check bool_ ("contains " ^ sub) true
      (let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0)
  in
  contains "<?xml version=\"1.0\" encoding=\"utf-8\"?>";
  contains "xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"";
  contains "xmlns:xrpc=\"http://monetdb.cwi.nl/XQuery\"";
  contains "<xrpc:request module=\"films\" method=\"filmsByActor\" arity=\"1\"";
  contains "<xrpc:call>";
  contains "<xrpc:atomic-value xsi:type=\"xs:string\">Actor 0</xrpc:atomic-value>"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_atomic =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Xs.Integer i) (int_range (-1000) 1000);
        map (fun s -> Xs.String s) (oneofl [ "a"; "hello world"; "<&>"; "x\"y" ]);
        map (fun b -> Xs.Boolean b) bool;
        map (fun f -> Xs.Double (Float.of_int f /. 8.)) (int_range (-800) 800);
        map (fun s -> Xs.Untyped s) (oneofl [ "u1"; "two words"; "z" ]);
      ])

let arbitrary_seq =
  QCheck.make
    ~print:(fun seq -> Xdm.to_display seq)
    QCheck.Gen.(list_size (int_range 0 8) (map (fun a -> Xdm.Atomic a) gen_atomic))

let prop_marshal_roundtrip =
  QCheck.Test.make ~name:"s2n/n2s identity on atomics" ~count:300 arbitrary_seq
    (fun seq ->
      let back = roundtrip seq in
      List.length back = List.length seq
      && List.for_all2
           (fun a b ->
             match (a, b) with
             | Xdm.Atomic x, Xdm.Atomic y ->
                 Xs.type_of x = Xs.type_of y && Xs.to_string x = Xs.to_string y
             | _ -> false)
           seq back)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"request wire roundtrip" ~count:100
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 5) (list_size (int_range 0 4) gen_atomic)))
    (fun (ncalls, params) ->
      let r =
        {
          Message.module_uri = "m";
          location = "loc";
          method_ = "f";
          arity = 1;
          updating = false;
          fragments = false;
          query_id = None;
          idem_key = None; cache_ok = true;
          calls =
            List.init ncalls (fun _ -> [ List.map (fun a -> Xdm.Atomic a) params ]);
        }
      in
      match Message.of_string (Message.to_string (Message.Request r)) with
      | Message.Request r' ->
          List.length r'.Message.calls = ncalls
          && List.for_all
               (fun call ->
                 match call with
                 | [ seq ] ->
                     List.map Xdm.string_value seq
                     = List.map (fun a -> Xs.to_string a) params
                 | _ -> false)
               r'.Message.calls
      | _ -> false)

let () =
  Alcotest.run "soap"
    [
      ( "marshal",
        [
          Alcotest.test_case "atomic roundtrip" `Quick test_atomic_roundtrip;
          Alcotest.test_case "paper n2s example" `Quick test_paper_example_n2s;
          Alcotest.test_case "element roundtrip" `Quick test_element_roundtrip;
          Alcotest.test_case "call-by-value severs axes" `Quick
            test_call_by_value_severs_upward_axes;
          Alcotest.test_case "descendant relation destroyed" `Quick
            test_marshal_destroys_descendant_relationship;
          Alcotest.test_case "mixed node kinds" `Quick test_mixed_node_kinds;
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence;
          Alcotest.test_case "untyped default" `Quick test_untyped_without_annotation;
        ] );
      ( "call-by-fragment",
        [
          Alcotest.test_case "ancestry preserved" `Quick
            test_fragments_preserve_ancestry;
          Alcotest.test_case "message compression" `Quick
            test_fragments_compress_message;
          Alcotest.test_case "plain params unchanged" `Quick
            test_fragments_plain_params_unchanged;
          Alcotest.test_case "wire roundtrip" `Quick test_fragments_wire_roundtrip;
        ] );
      ( "message",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "bulk request" `Quick test_bulk_request_roundtrip;
          Alcotest.test_case "queryID" `Quick test_query_id_roundtrip;
          Alcotest.test_case "updating flag" `Quick test_updating_flag_roundtrip;
          Alcotest.test_case "response + peers" `Quick
            test_response_roundtrip_with_peers;
          Alcotest.test_case "fault" `Quick test_fault_roundtrip;
          Alcotest.test_case "transaction" `Quick test_tx_roundtrip;
          Alcotest.test_case "wire format" `Quick test_wire_format_matches_paper;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_marshal_roundtrip; prop_wire_roundtrip ] );
    ]
