(* End-to-end distributed query tests over the simulated network: the
   paper's Q1/Q2/Q3/Q6 examples, Bulk RPC message counting, parallel
   dispatch, nested XRPC calls, error propagation, data shipping,
   repeatable-read isolation across peers, distributed updates with 2PC,
   the §5 strategies, and the same flow over real HTTP. *)

open Xrpc_xml
module Cluster = Xrpc_core.Cluster
module Strategies = Xrpc_core.Strategies
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Filmdb = Xrpc_workloads.Filmdb
module Xmark = Xrpc_workloads.Xmark
module Simnet = Xrpc_net.Simnet

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* standard three-peer film setup *)
let film_cluster () =
  let cluster =
    Cluster.create ~names:[ "x.example.org"; "y.example.org"; "z.example.org" ] ()
  in
  let x = Cluster.peer cluster "x.example.org" in
  Filmdb.install (Cluster.peer cluster "y.example.org") ();
  Filmdb.install (Cluster.peer cluster "z.example.org") ~variant:`Z ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  (cluster, x)

let messages cluster = (Cluster.stats cluster).Simnet.messages

let test_q1 () =
  let cluster, x = film_cluster () in
  let r = Peer.query_seq x (Filmdb.q1 ~dest:"xrpc://y.example.org") in
  check string_ "paper's Q1 result"
    "<films><name>The Rock</name><name>Goldfinger</name></films>"
    (Xdm.to_display r);
  check int_ "single round trip" 2 (messages cluster)

let test_q2_bulk_one_message () =
  let cluster, x = film_cluster () in
  let r = Peer.query_seq x (Filmdb.q2 ~dest:"xrpc://y.example.org") in
  check string_ "Q2 result"
    "<films><name>The Rock</name><name>Goldfinger</name></films>"
    (Xdm.to_display r);
  (* two calls, ONE bulk request *)
  check int_ "bulk rpc" 2 (messages cluster)

let test_q2_one_at_a_time () =
  let cluster, x = film_cluster () in
  x.Peer.config <- { x.Peer.config with Peer.bulk_rpc = false };
  let r = Peer.query_seq x (Filmdb.q2 ~dest:"xrpc://y.example.org") in
  check string_ "same result"
    "<films><name>The Rock</name><name>Goldfinger</name></films>"
    (Xdm.to_display r);
  check int_ "two round trips" 4 (messages cluster)

let test_q3_multiple_destinations () =
  let cluster, x = film_cluster () in
  let r =
    Peer.query_seq x
      (Filmdb.q3 ~dest1:"xrpc://y.example.org" ~dest2:"xrpc://z.example.org")
  in
  (* iteration order: (Julie,y)=∅ (Julie,z) (Sean,y) (Sean,z) *)
  check string_ "results stitched back in query order"
    "<films><name>Sound Of Music</name><name>The Princess Diaries</name><name>The Rock</name><name>Goldfinger</name><name>Dr. No</name></films>"
    (Xdm.to_display r);
  check int_ "one bulk per peer" 4 (messages cluster)

let test_q3_parallel_dispatch_charges_max () =
  let cluster, x = film_cluster () in
  Cluster.reset_clock cluster;
  ignore
    (Peer.query_seq x
       (Filmdb.q3 ~dest1:"xrpc://y.example.org" ~dest2:"xrpc://z.example.org"));
  let t_two_peers = Cluster.clock_ms cluster in
  Cluster.reset_clock cluster;
  ignore (Peer.query_seq x (Filmdb.q2 ~dest:"xrpc://y.example.org"));
  let t_one_peer = Cluster.clock_ms cluster in
  (* parallel dispatch: two peers cost at most ~1.5x one peer, not 2x *)
  check bool_ "parallelism" true (t_two_peers < t_one_peer *. 1.8)

let test_q6_out_of_order () =
  let cluster, x = film_cluster () in
  let r = Peer.query_seq x (Filmdb.q6 ~dest:"xrpc://y.example.org") in
  check string_ "Q6 stitched in query order"
    "<name>The Rock</name> <name>Goldfinger</name>" (Xdm.to_display r);
  (* two call SITES -> two bulk requests despite four calls *)
  check int_ "per-site batching" 4 (messages cluster)

let test_nested_xrpc () =
  (* x calls y; the function at y itself calls z (nested XRPC, §2.2) *)
  let cluster, x = film_cluster () in
  let relay =
    {|module namespace r = "relay";
import module namespace f = "films" at "http://x.example.org/film.xq";
declare function r:viaZ($actor as xs:string) as node()*
{ execute at {"xrpc://z.example.org"} {f:filmsByActor($actor)} };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"relay"
    ~location:"http://y.example.org/relay.xq" relay;
  let r =
    Peer.query_seq x
      {|import module namespace r = "relay" at "http://y.example.org/relay.xq";
        execute at {"xrpc://y.example.org"} {r:viaZ("Julie Andrews")}|}
  in
  check string_ "nested result"
    "<name>Sound Of Music</name> <name>The Princess Diaries</name>"
    (Xdm.to_display r);
  check int_ "two hops, four messages" 4 (messages cluster)

let test_nested_bulk_rpc () =
  (* a remote function whose body loops execute-at: the INNER loop must
     also go out as one Bulk RPC (nested loop-lifting) *)
  let cluster, x = film_cluster () in
  let relay =
    {|module namespace r = "relay";
import module namespace f = "films" at "http://x.example.org/film.xq";
declare function r:all($actors as xs:string*) as node()*
{ for $a in $actors
  return execute at {"xrpc://z.example.org"} {f:filmsByActor($a)} };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"relay"
    ~location:"http://y.example.org/relay.xq" relay;
  let r =
    Peer.query_seq x
      {|import module namespace r = "relay" at "http://y.example.org/relay.xq";
        execute at {"xrpc://y.example.org"}
        {r:all(("Julie Andrews", "Sean Connery", "Gerard Depardieu"))}|}
  in
  check int_ "three films found at z" 3 (List.length r);
  (* x->y (1 rq) + y->z (1 bulk rq of 3 calls) = 4 messages *)
  check int_ "inner loop bulked" 4 (messages cluster);
  check int_ "z served 3 calls in 1 request" 1
    (Cluster.peer cluster "z.example.org").Peer.requests_handled;
  check int_ "z calls" 3 (Cluster.peer cluster "z.example.org").Peer.calls_handled

let test_self_call () =
  (* a served function may execute at its OWN peer; the handler lock must
     be reentrant for this *)
  let cluster, x = film_cluster () in
  let selfy =
    {|module namespace s = "selfy";
import module namespace f = "films" at "http://x.example.org/film.xq";
declare function s:indirect($a as xs:string) as node()*
{ execute at {"xrpc://y.example.org"} {f:filmsByActor($a)} };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"selfy" ~location:"selfy.xq"
    selfy;
  let r =
    Peer.query_seq x
      {|import module namespace s = "selfy" at "selfy.xq";
        execute at {"xrpc://y.example.org"} {s:indirect("Sean Connery")}|}
  in
  check int_ "self-call answered" 2 (List.length r)

let test_zero_arity_and_empty_results () =
  let cluster, x = film_cluster () in
  ignore cluster;
  let m =
    {|module namespace z0 = "z0";
declare function z0:nothing() { () };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"z0" ~location:"z0.xq" m;
  let r =
    Peer.query_seq x
      {|import module namespace z0 = "z0" at "z0.xq";
        for $i in 1 to 4
        return execute at {"xrpc://y.example.org"} {z0:nothing()}|}
  in
  check int_ "all empty" 0 (List.length r)

let test_nested_peer_piggyback () =
  (* participating peers of nested calls propagate to the origin (§2.3) *)
  let cluster, x = film_cluster () in
  let relay =
    {|module namespace r = "relay";
import module namespace f = "films" at "http://x.example.org/film.xq";
declare function r:viaZ($actor as xs:string) as node()*
{ execute at {"xrpc://z.example.org"} {f:filmsByActor($actor)} };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"relay"
    ~location:"http://y.example.org/relay.xq" relay;
  let result =
    Peer.query x
      {|import module namespace r = "relay" at "http://y.example.org/relay.xq";
        execute at {"xrpc://y.example.org"} {r:viaZ("Julie Andrews")}|}
  in
  check bool_ "y is a participant" true
    (List.mem "xrpc://y.example.org" result.Peer.participants);
  check bool_ "z piggybacked through y" true
    (List.mem "xrpc://z.example.org" result.Peer.participants)

let test_remote_error_propagates () =
  let cluster, x = film_cluster () in
  (* calling an unknown function is caught STATICALLY at the origin, before
     any message is sent (XPST0017) *)
  (match
     Peer.query_seq x
       {|import module namespace f="films" at "http://x.example.org/film.xq";
        execute at {"xrpc://y.example.org"} {f:noSuchFunction("x")}|}
   with
  | exception Xrpc_xquery.Check.Static_error _ -> ()
  | _ -> Alcotest.fail "expected static error");
  check int_ "no message was sent" 0 (messages cluster);
  (* a RUNTIME error at the remote peer comes back as a SOAP fault and
     becomes a local dynamic error (§2.1) *)
  let failing =
    {|module namespace boom = "boom";
declare function boom:fail($x as xs:string) { error(concat("REMOTE: ", $x)) };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"boom" ~location:"boom.xq"
    failing;
  match
    Peer.query_seq x
      {|import module namespace boom = "boom" at "boom.xq";
        execute at {"xrpc://y.example.org"} {boom:fail("kaput")}|}
  with
  | exception Xrpc_xquery.Eval.Error m ->
      check bool_ "remote reason propagated" true
        (let sub = "kaput" in
         let n = String.length sub in
         let rec go i = i + n <= String.length m && (String.sub m i n = sub || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "expected propagated fault"

let test_unknown_peer_error () =
  let _, x = film_cluster () in
  match
    Peer.query_seq x
      {|import module namespace f="films" at "http://x.example.org/film.xq";
        execute at {"xrpc://nowhere.example.org"} {f:filmsByActor("A")}|}
  with
  | exception _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_data_shipping_doc () =
  let cluster, x = film_cluster () in
  let r =
    Peer.query_seq x {|count(doc("xrpc://y.example.org/filmDB.xml")//film)|}
  in
  check string_ "remote doc fetched" "3" (Xdm.to_display r);
  check int_ "one fetch" 2 (messages cluster);
  (* doc() is stable within a query: two references, one fetch *)
  Cluster.reset_stats cluster;
  ignore
    (Peer.query_seq x
       {|count(doc("xrpc://y.example.org/filmDB.xml")//film) +
         count(doc("xrpc://y.example.org/filmDB.xml")//name)|});
  check int_ "still one fetch" 2 (messages cluster)

let test_call_by_value_remote () =
  (* a node shipped as parameter arrives as its own fragment: the remote
     function cannot navigate to its former parent (§2.2) *)
  let cluster, x = film_cluster () in
  let m =
    {|module namespace cbv = "cbv";
declare function cbv:parentCount($n as node()) as xs:integer
{ count($n/..) };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"cbv" ~location:"cbv.xq" m;
  let r =
    Peer.query_seq x
      {|import module namespace cbv = "cbv" at "cbv.xq";
        let $local := <wrap><inner/></wrap>
        return execute at {"xrpc://y.example.org"} {cbv:parentCount(exactly-one($local/inner))}|}
  in
  check string_ "no parent at remote side" "0" (Xdm.to_display r)

let test_call_by_fragment_option () =
  (* the footnote-4 extension end-to-end: with the option on, a descendant
     parameter keeps its ancestor relationship at the remote peer *)
  let cluster, x = film_cluster () in
  let m =
    {|module namespace cbf = "cbf";
declare function cbf:related($anc as node(), $desc as node()) as xs:boolean
{ some $a in $desc/ancestor::* satisfies $a is $anc };|}
  in
  Cluster.register_module_everywhere cluster ~uri:"cbf" ~location:"cbf.xq" m;
  let query opt =
    Printf.sprintf
      {|import module namespace cbf = "cbf" at "cbf.xq";
%s
let $t := <wrap><inner><leaf/></inner></wrap>
return execute at {"xrpc://y.example.org"}
       {cbf:related(exactly-one($t/inner), exactly-one($t/inner/leaf))}|}
      opt
  in
  (* plain call-by-value: relationship destroyed *)
  check string_ "plain call-by-value" "false"
    (Xdm.to_display (Peer.query_seq x (query "")));
  (* call-by-fragment: relationship preserved *)
  check string_ "call-by-fragment" "true"
    (Xdm.to_display
       (Peer.query_seq x
          (query {|declare option xrpc:call-by-fragment "true";|})))

let test_repeatable_read_across_calls () =
  (* without isolation, two calls to the same peer may see different
     states; with repeatable isolation they must not (§2.2).  We simulate
     an interleaved writer with a nested updating call between two reads. *)
  let cluster, x = film_cluster () in
  let y = Cluster.peer cluster "y.example.org" in
  ignore y;
  let count_q isolation =
    Printf.sprintf
      {|import module namespace f="films" at "http://x.example.org/film.xq";
%s
let $before := count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")})
let $ignored := execute at {"xrpc://z.example.org"} {f:actors()}
let $after := count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")})
return ($before, $after)|}
      isolation
  in
  (* interleave a committed write at y between the two reads by hooking the
     z-peer handler *)
  let interleave () =
    let req =
      {
        Xrpc_soap.Message.module_uri = "films";
        location = Filmdb.module_at;
        method_ = "addFilm";
        arity = 2;
        updating = true;
        fragments = false;
        query_id = None;
        idem_key = None; cache_ok = true;
        calls = [ [ [ Xdm.str "Interleaved" ]; [ Xdm.str "Sean Connery" ] ] ];
      }
    in
    ignore
      (Peer.handle_raw y
         (Xrpc_soap.Message.to_string (Xrpc_soap.Message.Request req)))
  in
  let z_handler = Peer.handle_raw (Cluster.peer cluster "z.example.org") in
  Simnet.register (Cluster.net cluster) "xrpc://z.example.org" (fun body ->
      interleave ();
      z_handler body);
  (* no isolation: second read sees the interleaved film *)
  let r1 = Peer.query_seq x (count_q "") in
  check string_ "non-isolated sees new state" "2 3" (Xdm.to_display r1);
  (* repeatable: both reads see the same pinned snapshot *)
  let r2 =
    Peer.query_seq x (count_q {|declare option xrpc:isolation "repeatable";|})
  in
  check string_ "repeatable read" "3 3" (Xdm.to_display r2)

let test_distributed_update_2pc () =
  let cluster, x = film_cluster () in
  let q =
    {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:addFilm("New", "Actor New")}|}
  in
  let result = Peer.query x q in
  check bool_ "committed" true result.Peer.committed;
  check int_ "two participants" 2 (List.length result.Peer.participants);
  let count peer_name =
    let p = Cluster.peer cluster peer_name in
    match Peer.query_seq p {|count(doc("filmDB.xml")//film)|} with
    | [ Xdm.Atomic (Xs.Integer n) ] -> n
    | _ -> -1
  in
  check int_ "y applied" 4 (count "y.example.org");
  check int_ "z applied" 4 (count "z.example.org")

let test_updating_without_isolation_applies_immediately () =
  let cluster, x = film_cluster () in
  ignore
    (Peer.query_seq x
       {|import module namespace f="films" at "http://x.example.org/film.xq";
         execute at {"xrpc://y.example.org"} {f:addFilm("Quick", "A")}|});
  let y = Cluster.peer cluster "y.example.org" in
  match Peer.query_seq y {|count(doc("filmDB.xml")//film)|} with
  | [ Xdm.Atomic (Xs.Integer 4) ] -> ()
  | r -> Alcotest.fail ("expected 4 films, got " ^ Xdm.to_display r)

let test_hoisting_loop_invariant_call () =
  let cluster, x = film_cluster () in
  let r =
    Peer.query_seq x
      {|import module namespace f="films" at "http://x.example.org/film.xq";
        for $i in (1 to 10)
        let $a := execute at {"xrpc://y.example.org"} {f:actors()}
        return count($a)|}
  in
  check string_ "10 identical results" "2 2 2 2 2 2 2 2 2 2" (Xdm.to_display r);
  (* loop-invariant call in a batched clause: ONE message, one call *)
  check int_ "hoisted" 2 (messages cluster);
  check int_ "single call served" 1
    (Cluster.peer cluster "y.example.org").Peer.calls_handled;
  (* an execute-at buried inside a non-batchable return expression falls
     back to one RPC per iteration (it is not a clause body) *)
  Cluster.reset_stats cluster;
  ignore
    (Peer.query_seq x
       {|import module namespace f="films" at "http://x.example.org/film.xq";
         for $i in (1 to 5)
         return count(execute at {"xrpc://y.example.org"} {f:actors()})|});
  check int_ "non-batchable shape" 10 (messages cluster)

(* ---- failure injection ---- *)

let test_corrupted_response () =
  (* garbage on the wire must surface as a local error, not a crash *)
  let cluster, x = film_cluster () in
  Simnet.register (Cluster.net cluster) "xrpc://y.example.org" (fun _ ->
      "<<<not xml at all");
  match Peer.query_seq x (Filmdb.q1 ~dest:"xrpc://y.example.org") with
  | exception _ -> ()
  | r -> Alcotest.fail ("expected error, got " ^ Xdm.to_display r)

let test_peer_crash_mid_query () =
  let cluster, x = film_cluster () in
  Simnet.register (Cluster.net cluster) "xrpc://y.example.org" (fun _ ->
      failwith "peer crashed");
  match Peer.query_seq x (Filmdb.q2 ~dest:"xrpc://y.example.org") with
  | exception _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_2pc_abort_applies_nowhere () =
  (* if one participant cannot prepare, the coordinator must roll back and
     NO peer may apply its deferred updates *)
  let cluster, x = film_cluster () in
  let y = Cluster.peer cluster "y.example.org" in
  let z = Cluster.peer cluster "z.example.org" in
  (* block y: an earlier transaction holds the prepared state on filmDB *)
  let blocker =
    { Xrpc_soap.Message.host = "xrpc://blocker"; timestamp = "0.1";
      timeout = 1000; level = Xrpc_soap.Message.Repeatable }
  in
  let blocking_update =
    {
      Xrpc_soap.Message.module_uri = "films";
      location = Filmdb.module_at;
      method_ = "addFilm";
      arity = 2;
      updating = true;
      fragments = false;
      query_id = Some blocker;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.str "Blocker" ]; [ Xdm.str "B" ] ] ];
    }
  in
  ignore
    (Peer.handle_raw y
       (Xrpc_soap.Message.to_string (Xrpc_soap.Message.Request blocking_update)));
  ignore
    (Peer.handle_raw y
       (Xrpc_soap.Message.to_string
          (Xrpc_soap.Message.Tx_request (Xrpc_soap.Message.Prepare, blocker))));
  (* now a distributed update touching y and z must fail to commit *)
  let result =
    Peer.query x
      {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:addFilm("Doomed", "D")}|}
  in
  check bool_ "commit refused" false result.Peer.committed;
  let count p =
    match Peer.query_seq p {|count(doc("filmDB.xml")//film[name = "Doomed"])|} with
    | [ Xdm.Atomic (Xs.Integer n) ] -> n
    | _ -> -1
  in
  check int_ "y did not apply" 0 (count y);
  check int_ "z rolled back" 0 (count z)

let test_snapshot_isolation_end_to_end () =
  (* with xrpc:isolation "snapshot", both reads see the state as of the
     query's global timestamp even though a write commits in between (the
     shared simnet virtual clock models synchronized peer clocks) *)
  let cluster, x = film_cluster () in
  let y = Cluster.peer cluster "y.example.org" in
  let interleave () =
    let req =
      {
        Xrpc_soap.Message.module_uri = "films";
        location = Filmdb.module_at;
        method_ = "addFilm";
        arity = 2;
        updating = true;
        fragments = false;
        query_id = None;
        idem_key = None; cache_ok = true;
        calls = [ [ [ Xdm.str "Interleaved" ]; [ Xdm.str "Sean Connery" ] ] ];
      }
    in
    ignore
      (Peer.handle_raw y
         (Xrpc_soap.Message.to_string (Xrpc_soap.Message.Request req)))
  in
  let z_handler = Peer.handle_raw (Cluster.peer cluster "z.example.org") in
  Simnet.register (Cluster.net cluster) "xrpc://z.example.org" (fun body ->
      (* advance the shared clock past the query start, then commit *)
      (Cluster.net cluster).Simnet.clock_ms <-
        (Cluster.net cluster).Simnet.clock_ms +. 10_000.;
      interleave ();
      z_handler body);
  let q =
    {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "snapshot";
let $ignored := execute at {"xrpc://z.example.org"} {f:actors()}
return count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")})|}
  in
  (* y is contacted only AFTER the interleaved commit, but pins t_q *)
  check string_ "snapshot pins query start" "2"
    (Xdm.to_display (Peer.query_seq x q))

(* ---- §5 strategies over XMark ---- *)

let strategies_fixture () =
  let scale = Xmark.small_scale in
  let cluster = Cluster.create ~names:[ "A"; "B" ] () in
  let a = Cluster.peer cluster "A" and b = Cluster.peer cluster "B" in
  Database.add_doc_xml a.Peer.db "persons.xml"
    (Xmark.persons ~count:scale.Xmark.persons ());
  Database.add_doc_xml b.Peer.db "auctions.xml"
    (Xmark.auctions ~count:scale.Xmark.auctions ~matches:scale.Xmark.matches
       ~persons_count:scale.Xmark.persons ());
  let q7 =
    {
      Strategies.local_doc = "persons.xml";
      remote_uri = "xrpc://B";
      remote_doc = "auctions.xml";
      module_ns = "functions_b";
      module_at = "http://example.org/b.xq";
    }
  in
  Cluster.register_module_everywhere cluster ~uri:q7.Strategies.module_ns
    ~location:q7.Strategies.module_at (Strategies.functions_b q7);
  (cluster, a, q7)

let test_strategies_agree () =
  let cluster, a, q7 = strategies_fixture () in
  let run s = Peer.query_seq a (Strategies.query ~local_uri:"xrpc://A" q7 s) in
  let baseline = run Strategies.Data_shipping in
  check int_ "six matches" 6 (List.length baseline);
  List.iter
    (fun s ->
      Cluster.reset_stats cluster;
      let r = run s in
      check int_ (Strategies.name s ^ " count") (List.length baseline)
        (List.length r))
    [ Strategies.Predicate_pushdown; Strategies.Execution_relocation;
      Strategies.Distributed_semijoin ]

let test_semijoin_is_one_bulk_message () =
  let cluster, a, q7 = strategies_fixture () in
  Cluster.reset_stats cluster;
  ignore
    (Peer.query_seq a
       (Strategies.query ~local_uri:"xrpc://A" q7 Strategies.Distributed_semijoin));
  check int_ "one message pair for all probes" 2 (messages cluster)

let test_bytes_shipped_ordering () =
  let cluster, a, q7 = strategies_fixture () in
  let shipped s =
    Cluster.reset_stats cluster;
    ignore (Peer.query_seq a (Strategies.query ~local_uri:"xrpc://A" q7 s));
    let st = Cluster.stats cluster in
    st.Simnet.bytes_sent + st.Simnet.bytes_received
  in
  let ship = shipped Strategies.Data_shipping in
  let push = shipped Strategies.Predicate_pushdown in
  let semi = shipped Strategies.Distributed_semijoin in
  check bool_ "pushdown < data shipping" true (push < ship);
  check bool_ "semijoin < pushdown" true (semi < push)

(* ---- the same distributed query over REAL HTTP ---- *)

let test_q2_over_http () =
  let y = Peer.create "xrpc://127.0.0.1" in
  Filmdb.install y ();
  let server =
    Xrpc_net.Http.serve (fun ~path:_ body -> Peer.handle_raw y body)
  in
  Fun.protect
    ~finally:(fun () -> Xrpc_net.Http.shutdown server)
    (fun () ->
      let x = Peer.create "xrpc://client.local" in
      Peer.set_transport x (Xrpc_net.Http.transport ());
      Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
        Filmdb.film_module;
      let dest = Printf.sprintf "xrpc://127.0.0.1:%d" (Xrpc_net.Http.port server) in
      let r = Peer.query_seq x (Filmdb.q2 ~dest) in
      check string_ "Q2 over HTTP"
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
        (Xdm.to_display r);
      check int_ "one bulk request over the wire" 1 y.Peer.requests_handled)

let () =
  Alcotest.run "distributed"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "Q1" `Quick test_q1;
          Alcotest.test_case "Q2 bulk" `Quick test_q2_bulk_one_message;
          Alcotest.test_case "Q2 one-at-a-time" `Quick test_q2_one_at_a_time;
          Alcotest.test_case "Q3 multi-destination" `Quick
            test_q3_multiple_destinations;
          Alcotest.test_case "Q3 parallel dispatch" `Quick
            test_q3_parallel_dispatch_charges_max;
          Alcotest.test_case "Q6 out-of-order sites" `Quick test_q6_out_of_order;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "nested XRPC" `Quick test_nested_xrpc;
          Alcotest.test_case "nested Bulk RPC" `Quick test_nested_bulk_rpc;
          Alcotest.test_case "reentrant self-call" `Quick test_self_call;
          Alcotest.test_case "zero arity / empty results" `Quick
            test_zero_arity_and_empty_results;
          Alcotest.test_case "participant piggybacking" `Quick
            test_nested_peer_piggyback;
          Alcotest.test_case "remote error propagates" `Quick
            test_remote_error_propagates;
          Alcotest.test_case "unknown peer" `Quick test_unknown_peer_error;
          Alcotest.test_case "data shipping doc()" `Quick test_data_shipping_doc;
          Alcotest.test_case "call-by-value" `Quick test_call_by_value_remote;
          Alcotest.test_case "call-by-fragment option" `Quick
            test_call_by_fragment_option;
          Alcotest.test_case "repeatable read across calls" `Quick
            test_repeatable_read_across_calls;
          Alcotest.test_case "hoisted invariant call" `Quick
            test_hoisting_loop_invariant_call;
        ] );
      ( "updates",
        [
          Alcotest.test_case "distributed 2PC" `Quick test_distributed_update_2pc;
          Alcotest.test_case "R_Fu immediate remote" `Quick
            test_updating_without_isolation_applies_immediately;
        ] );
      ( "failures",
        [
          Alcotest.test_case "corrupted response" `Quick test_corrupted_response;
          Alcotest.test_case "peer crash" `Quick test_peer_crash_mid_query;
          Alcotest.test_case "2PC abort applies nowhere" `Quick
            test_2pc_abort_applies_nowhere;
          Alcotest.test_case "snapshot isolation e2e" `Quick
            test_snapshot_isolation_end_to_end;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "all agree" `Quick test_strategies_agree;
          Alcotest.test_case "semi-join single message" `Quick
            test_semijoin_is_one_bulk_message;
          Alcotest.test_case "bytes ordering" `Quick test_bytes_shipped_ordering;
        ] );
      ( "http",
        [ Alcotest.test_case "Q2 over real HTTP" `Quick test_q2_over_http ] );
    ]
