(* Tests for the relational algebra (Table 1), loop-lifted evaluation
   (§3.1, query Q5) and the Figure-1/Figure-2 Bulk RPC translation. *)

open Xrpc_xml
module Table = Xrpc_algebra.Table
module Ops = Xrpc_algebra.Ops
module Looplift = Xrpc_algebra.Looplift
module Bulk_rpc = Xrpc_algebra.Bulk_rpc
module Message = Xrpc_soap.Message
module Parser = Xrpc_xquery.Parser

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let iii rows =
  Table.make [ "iter"; "pos"; "item" ]
    (List.map
       (fun (i, p, v) -> [ Table.Int i; Table.Int p; Table.Item (Xdm.str v) ])
       rows)

(* ------------------------------------------------------------------ *)
(* Table 1 operators                                                   *)
(* ------------------------------------------------------------------ *)

let test_select () =
  let t =
    Table.make [ "iter"; "b" ]
      [
        [ Table.Int 1; Table.Item (Xdm.bool true) ];
        [ Table.Int 2; Table.Item (Xdm.bool false) ];
        [ Table.Int 3; Table.Item (Xdm.bool true) ];
      ]
  in
  check int_ "sigma keeps true rows" 2 (Table.cardinality (Ops.select t "b"))

let test_select_eq () =
  let t = iii [ (1, 1, "y"); (2, 1, "z"); (3, 1, "y") ] in
  check int_ "item=y" 2
    (Table.cardinality (Ops.select_eq t "item" (Table.Item (Xdm.str "y"))))

let test_project_rename () =
  let t = iii [ (1, 1, "a") ] in
  let p = Ops.project t [ ("outer", "iter"); ("v", "item") ] in
  check (Alcotest.list string_) "renamed columns" [ "outer"; "v" ]
    (Table.col_names p);
  check int_ "no dedup" 1 (Table.cardinality p)

let test_project_no_dedup () =
  let t = iii [ (1, 1, "a"); (2, 1, "a") ] in
  (* project drops iter; duplicate rows must remain (π has no dedup) *)
  check int_ "pi keeps dups" 2
    (Table.cardinality (Ops.project t [ ("item", "item") ]))

let test_distinct () =
  let t = iii [ (1, 1, "a"); (2, 1, "a"); (1, 1, "a") ] in
  check int_ "delta over full rows" 2
    (Table.cardinality (Ops.distinct t));
  check int_ "delta over item column" 1
    (Table.cardinality (Ops.distinct (Ops.project t [ ("item", "item") ])))

let test_union () =
  let a = iii [ (1, 1, "a") ] and b = iii [ (2, 1, "b") ] in
  check int_ "disjoint union" 2 (Table.cardinality (Ops.union a b));
  Alcotest.check_raises "schema mismatch"
    (Table.Schema_error "union of incompatible schemas") (fun () ->
      ignore (Ops.union a (Ops.project b [ ("item", "item") ])))

let test_equi_join () =
  let a = iii [ (1, 1, "x"); (2, 1, "y") ] in
  let m =
    Table.make [ "outer"; "inner" ]
      [ [ Table.Int 1; Table.Int 10 ]; [ Table.Int 1; Table.Int 11 ] ]
  in
  let j = Ops.equi_join m "outer" a "iter" in
  check int_ "join cardinality" 2 (Table.cardinality j);
  check (Alcotest.list string_) "join schema"
    [ "outer"; "inner"; "iter"; "pos"; "item" ] (Table.col_names j)

let test_rank_dense () =
  let t = iii [ (3, 1, "c"); (1, 1, "a"); (3, 2, "d"); (2, 1, "b") ] in
  let r = Ops.rank t ~new_col:"rk" ~order_by:[ "iter"; "pos" ] () in
  let ranks =
    List.init (Table.cardinality r) (fun i ->
        Table.int_cell (Table.cell r i "rk"))
  in
  (* rows keep their order; ranks follow (iter,pos) sort: (3,1)->3,(1,1)->1,(3,2)->4,(2,1)->2 *)
  check (Alcotest.list int_) "dense rank" [ 3; 1; 4; 2 ] ranks

let test_rank_partitioned () =
  let t = iii [ (1, 1, "a"); (1, 2, "b"); (2, 1, "c"); (2, 2, "d") ] in
  let r = Ops.rank t ~new_col:"rk" ~order_by:[ "pos" ] ~partition:"iter" () in
  let ranks =
    List.init (Table.cardinality r) (fun i ->
        Table.int_cell (Table.cell r i "rk"))
  in
  check (Alcotest.list int_) "restart per partition" [ 1; 2; 1; 2 ] ranks

let test_sequence_encoding () =
  (* §3.1: item/singleton/empty sequence encodings *)
  let t = Table.of_sequences [ (1, [ Xdm.int 7 ]); (2, []) ] in
  check int_ "single row for singleton" 1 (Table.cardinality t);
  check int_ "empty sequence absent" 0
    (List.length (Table.sequence_of t ~iter:2));
  check bool_ "loop relation tracks iters" true (Table.iters t = [ 1 ])

(* ------------------------------------------------------------------ *)
(* Q5 loop-lifting (§3.1)                                              *)
(* ------------------------------------------------------------------ *)

let dummy_call ~dest:_ _ = failwith "no network in Q5"

let test_q5_tables () =
  (* for $x in (10,20) return for $y in (100,200)
       let $z := ($x,$y) return $z *)
  let q5 =
    Parser.parse_expression
      "for $x in (10,20) return for $y in (100,200) return ($x, $y)"
  in
  let env = Looplift.make_env ~call:dummy_call () in
  let t = Looplift.eval env q5 in
  (* flattened result of iteration 1 *)
  check string_ "q5 result" "10 100 10 200 20 100 20 200"
    (Xdm.to_display (Table.sequence_of t ~iter:1))

let test_q5_inner_variable_tables () =
  (* check the paper's x/y variable tables in the inner scope: $x is
     10,10,20,20 and $y is 100,200,100,200 over iters 1..4 *)
  let inner =
    Parser.parse_expression
      "for $x in (10,20) return for $y in (100,200) return ($x * 1000 + $y)"
  in
  let env = Looplift.make_env ~call:dummy_call () in
  let t = Looplift.eval env inner in
  check string_ "inner iteration order" "10100 10200 20100 20200"
    (Xdm.to_display (Table.sequence_of t ~iter:1))

let film_store =
  lazy
    (Store.shred ~uri:"filmDB.xml"
       (Xml_parse.document Xrpc_workloads.Filmdb.film_db_xml))

let test_looplift_paths_and_constructors () =
  (* the extended loop-lifted subset: path steps with predicates, doc(),
     direct constructors, if/then/else — all checked against the
     interpreter *)
  let queries =
    [
      {|doc("filmDB.xml")//name|};
      {|doc("filmDB.xml")//name[../actor = "Sean Connery"]|};
      {|for $f in doc("filmDB.xml")//film return $f/name|};
      {|for $f in doc("filmDB.xml")//film return string($f/name)|};
      {|count(doc("filmDB.xml")/films/film[2]/name)|};
      {|for $i in (1, 2) return <hit n="{$i}">{$i * 10}</hit>|};
      {|for $f in doc("filmDB.xml")//film
        return if (contains(string($f/actor), "Connery")) then $f/name else ()|};
    ]
  in
  let doc_resolver _ = Lazy.force film_store in
  let resolver ~uri:_ ~location:_ = failwith "none" in
  List.iter
    (fun q ->
      let e = Parser.parse_expression q in
      let env = Looplift.make_env ~doc_resolver ~call:dummy_call () in
      let lifted = Looplift.run env e in
      let ctx = { (Xrpc_xquery.Context.empty ()) with
                  Xrpc_xquery.Context.doc_resolver } in
      let interp, _ = Xrpc_xquery.Runner.run ~ctx ~resolver q in
      check string_ ("looplift paths: " ^ q) (Xdm.to_display interp)
        (Xdm.to_display lifted))
    queries

let test_looplift_matches_interpreter () =
  let queries =
    [
      "for $x in (1,2,3) return $x * $x";
      "for $x in (1 to 4) return for $y in (1 to 3) return $x * $y";
      "for $x in (1,2) let $z := ($x, $x + 10) return $z";
      "for $x in (1 to 10) where $x mod 2 = 0 return $x";
      "(1, 2, (3, 4))";
    ]
  in
  let resolver ~uri:_ ~location:_ = failwith "none" in
  List.iter
    (fun q ->
      let e = Parser.parse_expression q in
      let env = Looplift.make_env ~call:dummy_call () in
      let lifted = Looplift.run env e in
      let interp, _ = Xrpc_xquery.Runner.run ~resolver q in
      check string_ ("looplift = interpreter: " ^ q)
        (Xdm.to_display interp) (Xdm.to_display lifted))
    queries

(* ------------------------------------------------------------------ *)
(* Figure 1 / Figure 2: Bulk RPC translation                           *)
(* ------------------------------------------------------------------ *)

(* the film service of the running example, answering from fixed data *)
let film_service dst_calls_log ~dest (req : Message.request) : Message.t =
  dst_calls_log := (dest, List.length req.Message.calls) :: !dst_calls_log;
  let answer actor =
    match (dest, actor) with
    | "xrpc://y.example.org", "Sean Connery" ->
        [ Xdm.str "The Rock"; Xdm.str "Goldfinger" ]
    | "xrpc://z.example.org", "Julie Andrews" -> [ Xdm.str "Sound Of Music" ]
    | _ -> []
  in
  Message.Response
    {
      resp_module = req.Message.module_uri;
      resp_method = req.Message.method_;
      results =
        List.map
          (fun call -> answer (Xdm.string_value (List.hd (List.hd call))))
          req.Message.calls;
      cached = false;
      db_version = None;
      peers = [ dest ];
    }

let test_figure1_multiple_destinations () =
  (* Q3's inner state: 4 iterations, dst alternates y,z, actor repeats *)
  let dst =
    iii
      [
        (1, 1, "xrpc://y.example.org"); (2, 1, "xrpc://z.example.org");
        (3, 1, "xrpc://y.example.org"); (4, 1, "xrpc://z.example.org");
      ]
  in
  let actor =
    iii
      [
        (1, 1, "Julie Andrews"); (2, 1, "Julie Andrews");
        (3, 1, "Sean Connery"); (4, 1, "Sean Connery");
      ]
  in
  let log = ref [] in
  let result, trace =
    Bulk_rpc.execute ~dst ~params:[ actor ] ~module_uri:"films" ~location:""
      ~method_:"filmsByActor" ~call:(film_service log) ()
  in
  (* one Bulk RPC per destination peer, two calls each *)
  check
    (Alcotest.list (Alcotest.pair string_ int_))
    "one bulk request per peer, 2 calls each"
    [ ("xrpc://y.example.org", 2); ("xrpc://z.example.org", 2) ]
    (List.rev !log);
  (* final result table has correct iter mapping: iter2 = Sound Of Music,
     iter3 = The Rock, Goldfinger (exactly Figure 1) *)
  check string_ "iter 1 empty" "" (Xdm.to_display (Table.sequence_of result ~iter:1));
  check string_ "iter 2" "Sound Of Music"
    (Xdm.to_display (Table.sequence_of result ~iter:2));
  check string_ "iter 3" "The Rock Goldfinger"
    (Xdm.to_display (Table.sequence_of result ~iter:3));
  check string_ "iter 4 empty" "" (Xdm.to_display (Table.sequence_of result ~iter:4));
  (* intermediate tables of Figure 1 are traced *)
  let names = List.map fst trace in
  List.iter
    (fun n -> check bool_ ("trace has " ^ n) true (List.mem n names))
    [
      "dst"; "param1"; "map_xrpc://y.example.org"; "req1_xrpc://y.example.org";
      "msg_xrpc://y.example.org"; "res_xrpc://y.example.org"; "result";
    ];
  (* the map table for y: iters 1,3 -> iterp 1,2 *)
  let map_y = List.assoc "map_xrpc://y.example.org" trace in
  check
    (Alcotest.list (Alcotest.pair int_ int_))
    "map_y"
    [ (1, 1); (3, 2) ]
    (List.init (Table.cardinality map_y) (fun i ->
         ( Table.int_cell (Table.cell map_y i "iter"),
           Table.int_cell (Table.cell map_y i "iterp") )))

let test_looplift_executes_bulk_rpc () =
  (* end-to-end through the loop-lifted evaluator: Q3 *)
  let q3 =
    Parser.parse_expression
      {|for $actor in ("Julie Andrews", "Sean Connery")
        for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
        return execute at {$dst} {filmsByActor($actor)}|}
  in
  let log = ref [] in
  let env = Looplift.make_env ~call:(film_service log) () in
  let result = Looplift.run env q3 in
  check string_ "q3 results in query order"
    "Sound Of Music The Rock Goldfinger" (Xdm.to_display result);
  check int_ "two bulk requests" 2 (List.length !log)

let test_table_printing () =
  let t = iii [ (1, 1, "Julie Andrews") ] in
  let s = Table.to_string t in
  check bool_ "header" true
    (String.length s > 0 && String.sub s 0 4 = "iter")

(* ------------------------------------------------------------------ *)
(* Property: optimized kernels == Ops_reference oracle                 *)
(* ------------------------------------------------------------------ *)

module Ops_ref = Xrpc_algebra.Ops_reference

(* Every rewritten operator must return exactly the rows, in exactly the
   order, of the naive row-at-a-time reference implementation — on empty
   tables, single rows, duplicate keys, multi-partition ranks, and joins
   with clashing column names. *)

let check_equiv name ref_t opt_t =
  check (Alcotest.list string_) (name ^ ": columns") (Table.col_names ref_t)
    (Table.col_names opt_t);
  if Table.rows ref_t <> Table.rows opt_t then
    Alcotest.failf "%s: tables differ\nreference =\n%s\noptimized =\n%s" name
      (Table.to_string ref_t) (Table.to_string opt_t)

(* cell generator stressing the hash-bucket bridges: Int vs xs:integer vs
   xs:double encodings of the same number, strings "5"/"true" that collide
   with numeric/boolean keys, empty strings, booleans *)
let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Table.Int i) (int_range 0 5));
        (3, map (fun i -> Table.Item (Xdm.int i)) (int_range 0 5));
        ( 2,
          map (fun s -> Table.Item (Xdm.str s))
            (oneofl [ "a"; "b"; "5"; "true"; "" ]) );
        (1, map (fun b -> Table.Item (Xdm.bool b)) bool);
        ( 1,
          map (fun f -> Table.Item (Xdm.Atomic (Xs.Double f)))
            (oneofl [ 0.; 1.; 2.5; 5. ]) );
      ])

(* iter/pos-style cells: integers in either encoding *)
let gen_int_cell =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Table.Int i) (int_range 0 4));
        (1, map (fun i -> Table.Item (Xdm.int i)) (int_range 0 4));
      ])

let gen_table ?(max_rows = 12) cols cell_gens =
  QCheck.Gen.(
    map
      (fun rows -> Table.make cols rows)
      (list_size (int_range 0 max_rows) (flatten_l cell_gens)))

let arb_table ?max_rows cols cell_gens =
  QCheck.make ~print:Table.to_string (gen_table ?max_rows cols cell_gens)

let equiv_test ~name ~count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count arb (fun x -> f x; true))

let abc = [ "a"; "b"; "c" ]
let abc_gens = [ gen_cell; gen_cell; gen_cell ]

let prop_distinct =
  equiv_test ~name:"distinct == reference" ~count:300 (arb_table abc abc_gens)
    (fun t -> check_equiv "distinct" (Ops_ref.distinct t) (Ops.distinct t))

let prop_select =
  equiv_test ~name:"select == reference" ~count:300 (arb_table abc abc_gens)
    (fun t -> check_equiv "select" (Ops_ref.select t "b") (Ops.select t "b"))

let prop_select_eq =
  equiv_test ~name:"select_eq == reference" ~count:300
    (QCheck.make
       ~print:(fun (t, v) ->
         Table.to_string t ^ "\n v = " ^ Table.cell_to_string v)
       QCheck.Gen.(pair (gen_table abc abc_gens) gen_cell))
    (fun (t, v) ->
      check_equiv "select_eq" (Ops_ref.select_eq t "b" v) (Ops.select_eq t "b" v))

let prop_project =
  equiv_test ~name:"project == reference" ~count:300
    (QCheck.make
       ~print:(fun (t, spec) ->
         Table.to_string t ^ "\n spec = "
         ^ String.concat ","
             (List.map (fun (a, b) -> a ^ ":" ^ b) spec))
       QCheck.Gen.(
         pair (gen_table abc abc_gens)
           (list_size (int_range 1 4)
              (pair (oneofl [ "x"; "y"; "a" ]) (oneofl abc)))))
    (fun (t, spec) ->
      check_equiv "project" (Ops_ref.project t spec) (Ops.project t spec))

let prop_union =
  equiv_test ~name:"union == reference" ~count:200
    (QCheck.make
       ~print:(fun (a, b) -> Table.to_string a ^ "\n⊎\n" ^ Table.to_string b)
       QCheck.Gen.(pair (gen_table abc abc_gens) (gen_table abc abc_gens)))
    (fun (a, b) -> check_equiv "union" (Ops_ref.union a b) (Ops.union a b))

let prop_equi_join =
  (* b's columns clash with a's on purpose: "iter" must get the "'" suffix *)
  equiv_test ~name:"equi_join == reference" ~count:300
    (QCheck.make
       ~print:(fun (a, b) -> Table.to_string a ^ "\n⋈\n" ^ Table.to_string b)
       QCheck.Gen.(
         pair
           (gen_table [ "iter"; "item" ] [ gen_int_cell; gen_cell ])
           (gen_table [ "iter"; "v" ] [ gen_int_cell; gen_cell ])))
    (fun (a, b) ->
      check_equiv "join on int keys"
        (Ops_ref.equi_join a "iter" b "iter")
        (Ops.equi_join a "iter" b "iter");
      check_equiv "join on mixed keys"
        (Ops_ref.equi_join a "item" b "v")
        (Ops.equi_join a "item" b "v"))

let prop_rank =
  equiv_test ~name:"rank == reference" ~count:300
    (QCheck.make
       ~print:(fun (t, (order_by, part)) ->
         Table.to_string t ^ "\n order_by = " ^ String.concat "," order_by
         ^ " partition = " ^ Option.value ~default:"-" part)
       QCheck.Gen.(
         pair
           (gen_table [ "iter"; "pos"; "v" ]
              [ gen_int_cell; gen_int_cell; gen_cell ])
           (* order_by must hold mutually comparable cells (cell_compare
              raises on string-vs-number, per XPath); partition only needs
              equality, so it may pick the mixed-type "v" column *)
           (pair
              (list_size (int_range 1 2) (oneofl [ "iter"; "pos" ]))
              (opt (oneofl [ "iter"; "v" ])))))
    (fun (t, (order_by, partition)) ->
      check_equiv "rank"
        (Ops_ref.rank t ~new_col:"rk" ~order_by ?partition ())
        (Ops.rank t ~new_col:"rk" ~order_by ?partition ()))

let prop_merge_union =
  equiv_test ~name:"merge_union_on_iter == reference" ~count:200
    (QCheck.make
       ~print:(fun ts ->
         String.concat "\n⊎\n" (List.map Table.to_string ts))
       QCheck.Gen.(
         list_size (int_range 0 4)
           (gen_table [ "iter"; "pos"; "item" ]
              [ gen_int_cell; gen_int_cell; gen_cell ])))
    (fun ts ->
      check_equiv "merge_union"
        (Ops_ref.merge_union_on_iter ts)
        (Ops.merge_union_on_iter ts))

(* deterministic edge cases: empty and single-row tables through every
   operator *)
let test_equiv_edges () =
  let e = Table.empty [ "iter"; "pos"; "item" ] in
  let one = iii [ (1, 1, "a") ] in
  check_equiv "distinct empty" (Ops_ref.distinct e) (Ops.distinct e);
  check_equiv "distinct one" (Ops_ref.distinct one) (Ops.distinct one);
  check_equiv "select_eq empty"
    (Ops_ref.select_eq e "item" (Table.Int 1))
    (Ops.select_eq e "item" (Table.Int 1));
  check_equiv "project empty"
    (Ops_ref.project e [ ("x", "item") ])
    (Ops.project e [ ("x", "item") ]);
  check_equiv "join empty-empty"
    (Ops_ref.equi_join e "iter" e "iter")
    (Ops.equi_join e "iter" e "iter");
  check_equiv "join one-empty"
    (Ops_ref.equi_join one "iter" e "iter")
    (Ops.equi_join one "iter" e "iter");
  check_equiv "join empty-one"
    (Ops_ref.equi_join e "iter" one "iter")
    (Ops.equi_join e "iter" one "iter");
  check_equiv "rank empty"
    (Ops_ref.rank e ~new_col:"rk" ~order_by:[ "iter" ] ())
    (Ops.rank e ~new_col:"rk" ~order_by:[ "iter" ] ());
  check_equiv "rank empty partitioned"
    (Ops_ref.rank e ~new_col:"rk" ~order_by:[ "pos" ] ~partition:"iter" ())
    (Ops.rank e ~new_col:"rk" ~order_by:[ "pos" ] ~partition:"iter" ());
  check_equiv "merge_union none"
    (Ops_ref.merge_union_on_iter [])
    (Ops.merge_union_on_iter []);
  check_equiv "merge_union empties"
    (Ops_ref.merge_union_on_iter [ e; e ])
    (Ops.merge_union_on_iter [ e; e ]);
  check_equiv "union empty"
    (Ops_ref.union e one) (Ops.union e one)

(* ------------------------------------------------------------------ *)
(* Property: loop-lifted evaluation == interpreter on random queries   *)
(* ------------------------------------------------------------------ *)

(* generator of random expressions in the loop-lifted subset *)
let gen_query =
  let open QCheck.Gen in
  let var_names = [ "a"; "b"; "c" ] in
  let rec gen_expr vars depth =
    let atoms =
      [ map string_of_int (int_range 0 20) ]
      @ List.map (fun v -> return ("$" ^ v)) vars
    in
    if depth = 0 then oneof atoms
    else
      frequency
        [
          (2, oneof atoms);
          ( 2,
            map2
              (fun a b -> Printf.sprintf "(%s + %s)" a b)
              (gen_expr vars (depth - 1))
              (gen_expr vars (depth - 1)) );
          ( 1,
            map2
              (fun a b -> Printf.sprintf "(%s, %s)" a b)
              (gen_expr vars (depth - 1))
              (gen_expr vars (depth - 1)) );
          ( 1,
            map2
              (fun lo n -> Printf.sprintf "(%d to %d)" lo (lo + n))
              (int_range 0 5) (int_range 0 4) );
          ( 3,
            let fresh =
              List.find (fun v -> not (List.mem v vars)) var_names
            in
            map3
              (fun inseq body w ->
                Printf.sprintf "(for $%s in %s %s return %s)" fresh inseq
                  (match w with
                  | None -> ""
                  | Some m -> Printf.sprintf "where $%s mod %d = 0" fresh m)
                  body)
              (gen_expr vars (depth - 1))
              (gen_expr (fresh :: vars) (depth - 1))
              (opt (int_range 1 3)) );
          ( 1,
            let fresh =
              List.find (fun v -> not (List.mem v vars)) var_names
            in
            map2
              (fun bound body ->
                Printf.sprintf "(let $%s := %s return %s)" fresh bound body)
              (gen_expr vars (depth - 1))
              (gen_expr (fresh :: vars) (depth - 1)) );
        ]
  in
  gen_expr [] 3

let prop_looplift_equiv_interpreter =
  QCheck.Test.make ~name:"looplift == interpreter (random queries)" ~count:200
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun q ->
      let resolver ~uri:_ ~location:_ = failwith "none" in
      match
        ( (try
             let e = Parser.parse_expression q in
             let env = Looplift.make_env ~call:dummy_call () in
             Ok (Xdm.to_display (Looplift.run env e))
           with Looplift.Unsupported _ -> Error `Unsupported),
          lazy (Xdm.to_display (fst (Xrpc_xquery.Runner.run ~resolver q))) )
      with
      | Error `Unsupported, _ -> QCheck.assume_fail ()
      | Ok lifted, interp -> lifted = Lazy.force interp)

let () =
  Alcotest.run "algebra"
    [
      ( "table1-operators",
        [
          Alcotest.test_case "sigma" `Quick test_select;
          Alcotest.test_case "sigma item=value" `Quick test_select_eq;
          Alcotest.test_case "pi rename" `Quick test_project_rename;
          Alcotest.test_case "pi keeps duplicates" `Quick test_project_no_dedup;
          Alcotest.test_case "delta" `Quick test_distinct;
          Alcotest.test_case "disjoint union" `Quick test_union;
          Alcotest.test_case "equi-join" `Quick test_equi_join;
          Alcotest.test_case "rank dense" `Quick test_rank_dense;
          Alcotest.test_case "rank partitioned" `Quick test_rank_partitioned;
          Alcotest.test_case "sequence encoding" `Quick test_sequence_encoding;
        ] );
      ( "loop-lifting",
        [
          Alcotest.test_case "Q5 result" `Quick test_q5_tables;
          Alcotest.test_case "Q5 iteration order" `Quick
            test_q5_inner_variable_tables;
          Alcotest.test_case "looplift = interpreter" `Quick
            test_looplift_matches_interpreter;
          Alcotest.test_case "looplift paths + constructors" `Quick
            test_looplift_paths_and_constructors;
        ] );
      ( "bulk-rpc",
        [
          Alcotest.test_case "Figure 1 multiple destinations" `Quick
            test_figure1_multiple_destinations;
          Alcotest.test_case "Q3 via looplift" `Quick
            test_looplift_executes_bulk_rpc;
          Alcotest.test_case "table printing" `Quick test_table_printing;
        ] );
      ( "kernel-equivalence",
        [
          Alcotest.test_case "edge cases" `Quick test_equiv_edges;
          prop_distinct;
          prop_select;
          prop_select_eq;
          prop_project;
          prop_union;
          prop_equi_join;
          prop_rank;
          prop_merge_union;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_looplift_equiv_interpreter ] );
    ]
