(* Connection-lifecycle tests for the event-loop HTTP server core:
   byte-by-byte incremental parsing, pipelining, slow-loris partial
   requests, client disconnect mid-response, keep-alive reuse over one
   socket, max_connections 503 turn-away, accept-errno classification,
   1000 concurrent keep-alive connections, and the Xrpc_server façade. *)

module Http = Xrpc_net.Http
module Conn = Xrpc_net.Conn
module Evloop = Xrpc_net.Evloop
module Server = Xrpc_core.Xrpc_server
module Peer = Xrpc_peer.Peer

let check = Alcotest.check
let string_ = Alcotest.string
let int_ = Alcotest.int
let bool_ = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Raw-socket client helpers                                           *)
(* ------------------------------------------------------------------ *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let get_req ?(close = false) path =
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n%s\r\n" path
    (if close then "Connection: close\r\n" else "")

let post_req path body =
  Printf.sprintf "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
    path (String.length body) body

(* Read exactly one HTTP response off [fd]: returns (status_line, body).
   [carry] holds bytes already read past the previous response (pipelining). *)
let recv_response ?(carry = Buffer.create 256) fd =
  let tmp = Bytes.create 8192 in
  let header_end b =
    let s = Buffer.contents b in
    let rec find i =
      if i + 3 >= String.length s then None
      else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec fill () =
    match header_end carry with
    | Some e -> e
    | None ->
        let n = Unix.read fd tmp 0 (Bytes.length tmp) in
        if n = 0 then failwith "eof before response headers";
        Buffer.add_subbytes carry tmp 0 n;
        fill ()
  in
  let e = fill () in
  let head = String.sub (Buffer.contents carry) 0 e in
  let status =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  let clen =
    List.fold_left
      (fun acc line ->
        match String.index_opt line ':' with
        | Some i
          when String.lowercase_ascii (String.trim (String.sub line 0 i))
               = "content-length" ->
            int_of_string
              (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
        | _ -> acc)
      0
      (String.split_on_char '\n' head)
  in
  let rec body_fill () =
    if Buffer.length carry - e < clen then begin
      let n = Unix.read fd tmp 0 (Bytes.length tmp) in
      if n = 0 then failwith "eof mid-body";
      Buffer.add_subbytes carry tmp 0 n;
      body_fill ()
    end
  in
  body_fill ();
  let body = String.sub (Buffer.contents carry) e clen in
  let rest = Buffer.length carry - e - clen in
  let leftover = Buffer.sub carry (e + clen) rest in
  Buffer.clear carry;
  Buffer.add_string carry leftover;
  (status, body)

let rec wait_for ?(tries = 100) pred =
  if tries = 0 then false
  else if pred () then true
  else begin
    Unix.sleepf 0.02;
    wait_for ~tries:(tries - 1) pred
  end

(* ------------------------------------------------------------------ *)
(* Conn: incremental parser units (pure buffer manipulation)           *)
(* ------------------------------------------------------------------ *)

let dummy_conn () = Conn.create (Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0)

let push c s =
  let n = String.length s in
  Conn.grow_inbuf c (c.Conn.in_len + n);
  Bytes.blit_string s 0 c.Conn.inbuf c.Conn.in_len n;
  c.Conn.in_len <- c.Conn.in_len + n

let body_window c =
  Bytes.sub_string c.Conn.inbuf c.Conn.body_off c.Conn.clen

let test_parse_byte_by_byte () =
  let c = dummy_conn () in
  let req = post_req "/soap" "<env>hi</env>" in
  String.iteri
    (fun i ch ->
      push c (String.make 1 ch);
      let fed = Conn.feed c in
      if i < String.length req - 1 then
        check bool_ (Printf.sprintf "need more at byte %d" i) true
          (fed = Conn.Need_more)
      else check bool_ "complete on last byte" true (fed = Conn.Request))
    req;
  check string_ "method" "POST" c.Conn.meth;
  check string_ "path" "/soap" c.Conn.path;
  check string_ "body window" "<env>hi</env>" (body_window c);
  check bool_ "keep-alive by default" false c.Conn.req_close;
  Conn.close c

let test_parse_line_endings_and_close () =
  (* bare-LF lines, leading blank lines, explicit Connection: close *)
  let c = dummy_conn () in
  push c "\r\n\nGET /x HTTP/1.1\nConnection: close\n\n";
  check bool_ "request" true (Conn.feed c = Conn.Request);
  check string_ "path" "/x" c.Conn.path;
  check bool_ "close requested" true c.Conn.req_close;
  Conn.close c

let test_parse_http10_defaults_close () =
  let c = dummy_conn () in
  push c "GET / HTTP/1.0\r\n\r\n";
  check bool_ "request" true (Conn.feed c = Conn.Request);
  check bool_ "1.0 defaults to close" true c.Conn.req_close;
  Conn.close c

let test_parse_bad_request_line () =
  let c = dummy_conn () in
  push c "NONSENSE\r\n";
  (match Conn.feed c with
  | Conn.Bad _ -> ()
  | _ -> Alcotest.fail "malformed request line accepted");
  Conn.close c

let test_parse_pipelined () =
  let c = dummy_conn () in
  push c (post_req "/a" "one" ^ get_req "/b");
  check bool_ "first request" true (Conn.feed c = Conn.Request);
  check string_ "first path" "/a" c.Conn.path;
  check string_ "first body" "one" (body_window c);
  Conn.reset_for_next c;
  check bool_ "second request already buffered" true
    (Conn.feed c = Conn.Request);
  check string_ "second path" "/b" c.Conn.path;
  check int_ "second body empty" 0 c.Conn.clen;
  Conn.close c

let test_accept_errno_classification () =
  (* resource exhaustion backs off (and counts the metric)… *)
  List.iter
    (fun e ->
      check bool_ "backoff" true (Evloop.accept_action e = `Backoff))
    [ Unix.EMFILE; Unix.ENFILE; Unix.ENOBUFS; Unix.ENOMEM ];
  (* …transient per-connection failures just retry… *)
  List.iter
    (fun e -> check bool_ "retry" true (Evloop.accept_action e = `Retry))
    [ Unix.ECONNABORTED; Unix.EINTR; Unix.EAGAIN ];
  (* …and a dead listener stops the loop *)
  check bool_ "stop" true (Evloop.accept_action Unix.EBADF = `Stop)

(* ------------------------------------------------------------------ *)
(* Connection lifecycle against a live event-loop server               *)
(* ------------------------------------------------------------------ *)

let echo_server ?max_connections ?(mode = Http.Event_loop) () =
  Http.serve ~mode ?max_connections (fun ~path body ->
      Printf.sprintf "path=%s body=%s" path body)

let test_keep_alive_100_requests mode () =
  let server = echo_server ~mode () in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let fd = connect (Http.port server) in
      let carry = Buffer.create 256 in
      for i = 1 to 100 do
        send_all fd (post_req "/echo" (Printf.sprintf "req%d" i));
        let status, body = recv_response ~carry fd in
        check string_ (Printf.sprintf "status %d" i) "HTTP/1.1 200 OK" status;
        check string_
          (Printf.sprintf "body %d" i)
          (Printf.sprintf "path=/echo body=req%d" i)
          body
      done;
      Unix.close fd;
      (* the loop thread bumps [served] just after the response bytes go
         out, so the client can get here first — wait for the counter *)
      check bool_ "100 requests served" true
        (wait_for (fun () -> (Http.stats server).Evloop.served = 100));
      check int_ "one connection accepted" 1
        (Http.stats server).Evloop.accepted)

let test_slow_loris_does_not_block_others () =
  let server = echo_server () in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let loris = connect (Http.port server) in
      (* half a request, then stall *)
      send_all loris "POST /slow HTTP/1.1\r\nHost: t\r\nContent-Le";
      Unix.sleepf 0.05;
      (* a well-behaved client on another connection is served meanwhile *)
      let fast = connect (Http.port server) in
      send_all fast (post_req "/fast" "now");
      let status, body = recv_response fast in
      check string_ "fast served during stall" "HTTP/1.1 200 OK" status;
      check string_ "fast body" "path=/fast body=now" body;
      Unix.close fast;
      (* the stalled connection can still finish its request *)
      send_all loris "ngth: 4\r\n\r\nlate";
      let status, body = recv_response loris in
      check string_ "loris finally served" "HTTP/1.1 200 OK" status;
      check string_ "loris body" "path=/slow body=late" body;
      Unix.close loris)

let test_client_disconnect_mid_response () =
  (* a response far larger than loopback socket buffers, so the server is
     still writing when the client vanishes *)
  let big = String.make (8 * 1024 * 1024) 'x' in
  let server = Http.serve (fun ~path:_ _ -> big) in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let fd = connect (Http.port server) in
      send_all fd (post_req "/big" "");
      (* read a little of the response, then hang up *)
      let tmp = Bytes.create 4096 in
      ignore (Unix.read fd tmp 0 4096);
      Unix.close fd;
      check bool_ "disconnect detected" true
        (wait_for (fun () -> (Http.stats server).Evloop.disconnects >= 1));
      (* the loop survived: a fresh connection is served normally *)
      let fd2 = connect (Http.port server) in
      send_all fd2 (post_req "/after" "");
      let status, body = recv_response fd2 in
      check string_ "served after disconnect" "HTTP/1.1 200 OK" status;
      check int_ "full body this time" (String.length big) (String.length body);
      Unix.close fd2)

let test_max_connections_503 () =
  let server = echo_server ~max_connections:2 () in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      (* two keep-alive connections fill the server *)
      let c1 = connect (Http.port server) and c2 = connect (Http.port server) in
      List.iter
        (fun fd ->
          send_all fd (post_req "/hold" "");
          ignore (recv_response fd))
        [ c1; c2 ];
      (* the third is turned away with an immediate 503 and closed *)
      let c3 = connect (Http.port server) in
      send_all c3 (get_req "/denied");
      let status, _ = recv_response c3 in
      check string_ "503 over the cap" "HTTP/1.1 503 Service Unavailable"
        status;
      Unix.close c3;
      let s = Http.stats server in
      check bool_ "rejection counted" true (s.Evloop.rejected >= 1);
      check int_ "rejects not served" 2 s.Evloop.served;
      Unix.close c1;
      Unix.close c2)

let test_1000_concurrent_keep_alive () =
  let n = 1000 in
  let server = Http.serve ~backlog:512 (fun ~path body -> path ^ ":" ^ body) in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let fds = Array.init n (fun _ -> connect (Http.port server)) in
      let carries = Array.init n (fun _ -> Buffer.create 256) in
      (* two full rounds over the same sockets: proves every one of the
         1000 connections is held open and reused *)
      for round = 1 to 2 do
        Array.iteri
          (fun i fd ->
            send_all fd (post_req "/r" (Printf.sprintf "%d.%d" round i)))
          fds;
        Array.iteri
          (fun i fd ->
            let status, body = recv_response ~carry:carries.(i) fd in
            check string_ "status" "HTTP/1.1 200 OK" status;
            check string_ "body"
              (Printf.sprintf "/r:%d.%d" round i)
              body)
          fds
      done;
      let s = Http.stats server in
      check int_ "all connections accepted" n s.Evloop.accepted;
      check int_ "still concurrently open" n s.Evloop.active;
      check int_ "two rounds served" (2 * n) s.Evloop.served;
      check int_ "none rejected" 0 s.Evloop.rejected;
      Array.iter Unix.close fds)

(* ------------------------------------------------------------------ *)
(* Xrpc_server façade                                                  *)
(* ------------------------------------------------------------------ *)

let test_facade_routes_and_stats () =
  let peer = Peer.create "xrpc://127.0.0.1:0" in
  let server =
    Server.create ~config:(Server.config ~port:0 ~outgoing:false ()) peer
  in
  let port = Server.start server in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      check int_ "start is idempotent" port (Server.start server);
      let fetch path =
        let fd = connect port in
        send_all fd (get_req ~close:true path);
        let r = recv_response fd in
        Unix.close fd;
        r
      in
      let status, metrics = fetch "/metrics" in
      check string_ "metrics ok" "HTTP/1.1 200 OK" status;
      check bool_ "metrics non-empty" true (String.length metrics > 0);
      let _, routez = fetch "/routez" in
      List.iter
        (fun r ->
          check bool_ (r ^ " listed") true
            (List.mem_assoc r (Server.routes server)))
        [ "/metrics"; "/requestz"; "/slowz"; "/cachez"; "/shardz";
          "/optimizerz"; "/tracez"; "/statz" ];
      check bool_ "routez renders the table" true
        (String.length routez > 100);
      let _, statz = fetch "/statz" in
      check bool_ "statz names the core" true
        (String.length statz > 0
        && String.sub statz 0 11 = "server.mode");
      let s = Server.stats server in
      check bool_ "requests counted" true (s.Evloop.served >= 3))

let contains hay needle =
  let lower = String.lowercase_ascii hay in
  let nl = String.length needle and ll = String.length lower in
  let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
  go 0

let test_facade_soap_fallback () =
  (* a non-route POST falls through to the peer's SOAP handler via the
     zero-copy streaming path: parsed out of the connection buffer,
     executed on a worker, serialized once into the output buffer *)
  let peer = Peer.create "xrpc://127.0.0.1:0" in
  Peer.register_module peer ~uri:"q"
    {|module namespace q = "q";
declare function q:answer() { 42 };|};
  let server =
    Server.create ~config:(Server.config ~port:0 ~outgoing:false ()) peer
  in
  let port = Server.start server in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let client = Xrpc_core.Xrpc_client.connect_http () in
      let r =
        Xrpc_core.Xrpc_client.call client
          ~dest:(Printf.sprintf "xrpc://127.0.0.1:%d" port)
          ~module_uri:"q" ~fn:"answer" []
      in
      check string_ "remote call through the event loop" "42"
        (Xrpc_xml.Xdm.to_display r);
      check int_ "handled by the peer" 1 peer.Peer.requests_handled;
      (* an unparseable envelope comes back as a SOAP fault, not a 500 *)
      let reply = Http.post ~host:"127.0.0.1" ~port "not a soap envelope" in
      check bool_ "SOAP fault came back" true (contains reply "fault"))

let test_facade_thread_baseline () =
  let peer = Peer.create "xrpc://127.0.0.1:0" in
  let server =
    Server.create
      ~config:(Server.config ~port:0 ~thread_per_conn:true ~outgoing:false ())
      peer
  in
  let port = Server.start server in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let fd = connect port in
      send_all fd (get_req ~close:true "/metrics");
      let status, _ = recv_response fd in
      Unix.close fd;
      check string_ "baseline serves routes" "HTTP/1.1 200 OK" status)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "conn-parser",
        [
          Alcotest.test_case "byte-by-byte" `Quick test_parse_byte_by_byte;
          Alcotest.test_case "line endings + close" `Quick
            test_parse_line_endings_and_close;
          Alcotest.test_case "HTTP/1.0 default close" `Quick
            test_parse_http10_defaults_close;
          Alcotest.test_case "bad request line" `Quick
            test_parse_bad_request_line;
          Alcotest.test_case "pipelined requests" `Quick test_parse_pipelined;
          Alcotest.test_case "accept errno classification" `Quick
            test_accept_errno_classification;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "keep-alive x100 (event loop)" `Quick
            (test_keep_alive_100_requests Http.Event_loop);
          Alcotest.test_case "keep-alive x100 (thread baseline)" `Quick
            (test_keep_alive_100_requests Http.Thread_per_conn);
          Alcotest.test_case "slow-loris does not block others" `Quick
            test_slow_loris_does_not_block_others;
          Alcotest.test_case "client disconnect mid-response" `Quick
            test_client_disconnect_mid_response;
          Alcotest.test_case "max_connections -> 503" `Quick
            test_max_connections_503;
          Alcotest.test_case "1000 concurrent keep-alive" `Slow
            test_1000_concurrent_keep_alive;
        ] );
      ( "facade",
        [
          Alcotest.test_case "routes + stats" `Quick
            test_facade_routes_and_stats;
          Alcotest.test_case "SOAP fallback (streaming)" `Quick
            test_facade_soap_fallback;
          Alcotest.test_case "thread-per-conn baseline" `Quick
            test_facade_thread_baseline;
        ] );
    ]
