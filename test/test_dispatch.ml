(* Parallel dispatch suite: the Executor engine, the Xrpc_client façade,
   and every place multi-peer fan-out now runs concurrently.

   What must hold:
     - the pool executor really bounds concurrency, preserves order, and
       survives errors and own-pool re-entry;
     - ambient trace spans follow work onto pool threads;
     - N-destination parallel dispatch returns exactly the sequential
       results (same values, same order);
     - concurrent keep-alive requests against ONE peer all succeed;
     - 2PC stays atomic when its prepare/decision broadcasts fan out in
       parallel;
     - the typed Xrpc_error vocabulary round-trips through SOAP faults;
     - a seeded chaos schedule under the (default) sequential executor
       still replays to a bit-identical span-tree signature. *)

open Xrpc_xml
module Executor = Xrpc_net.Executor
module Transport = Xrpc_net.Transport
module Xrpc_error = Xrpc_net.Xrpc_error
module Simnet = Xrpc_net.Simnet
module Http = Xrpc_net.Http
module Peer = Xrpc_peer.Peer
module Cluster = Xrpc_core.Cluster
module Client = Xrpc_core.Xrpc_client
module Trace = Xrpc_obs.Trace
module Filmdb = Xrpc_workloads.Filmdb
module Testmod = Xrpc_workloads.Testmod

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let with_tracer f =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.use_wall_clock ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Executor unit tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_sequential_inline () =
  check bool_ "is_sequential" true (Executor.is_sequential Executor.sequential);
  let log = ref [] in
  let fut = Executor.submit Executor.sequential (fun () -> log := 1 :: !log; "a") in
  (* on the sequential executor the effect is visible before await *)
  check int_ "ran inline" 1 (List.length !log);
  check string_ "await" "a" (Executor.await fut);
  check bool_ "map_list is List.map" true
    (Executor.map_list Executor.sequential (fun i -> i * i) [ 1; 2; 3 ]
    = [ 1; 4; 9 ])

let test_pool_bounds_concurrency () =
  let pool = Executor.pool 2 in
  check int_ "pool size" 2 (Executor.threads pool);
  let m = Mutex.create () in
  let inflight = ref 0 and peak = ref 0 in
  let f i =
    Mutex.lock m;
    incr inflight;
    if !inflight > !peak then peak := !inflight;
    Mutex.unlock m;
    Thread.delay 0.02;
    Mutex.lock m;
    decr inflight;
    Mutex.unlock m;
    i * 10
  in
  let out = Executor.map_list pool f [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  check bool_ "order preserved" true (out = [ 10; 20; 30; 40; 50; 60; 70; 80 ]);
  if !peak > 2 then Alcotest.failf "pool 2 ran %d tasks at once" !peak;
  check bool_ "pool actually overlapped work" true (!peak = 2);
  Executor.shutdown pool

let test_map_list_error_discipline () =
  let pool = Executor.pool 4 in
  let ran = Array.make 5 false in
  let f i =
    ran.(i) <- true;
    if i = 1 || i = 3 then failwith (string_of_int i) else i
  in
  (match Executor.map_list pool f [ 0; 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "error swallowed"
  | exception Failure m ->
      (* the FIRST failure in list order wins, not the first to finish *)
      check string_ "first in list order" "1" m);
  check bool_ "every element still evaluated" true
    (Array.for_all Fun.id ran);
  Executor.shutdown pool

let test_future_lifecycle () =
  let m = Mutex.create () and cv = Condition.create () in
  let go = ref false in
  let fut =
    Executor.submit Executor.unbounded (fun () ->
        Mutex.lock m;
        while not !go do
          Condition.wait cv m
        done;
        Mutex.unlock m;
        42)
  in
  check bool_ "pending while gated" true (Executor.peek fut = None);
  Mutex.lock m;
  go := true;
  Condition.broadcast cv;
  Mutex.unlock m;
  check int_ "await" 42 (Executor.await fut);
  check bool_ "peek after resolve" true (Executor.peek fut = Some (Ok 42));
  let bad = Executor.submit Executor.unbounded (fun () -> failwith "boom") in
  (match Executor.await_result bad with
  | Error (Failure m) when m = "boom" -> ()
  | _ -> Alcotest.fail "error not captured")

let test_own_pool_reentry () =
  (* a pool worker fanning out onto its own pool must not deadlock *)
  let pool = Executor.pool 1 in
  let fut =
    Executor.submit pool (fun () ->
        Executor.map_list pool (fun i -> i * 2) [ 1; 2; 3 ])
  in
  check bool_ "degrades to inline, same answer" true
    (Executor.await fut = [ 2; 4; 6 ]);
  Executor.shutdown pool

let test_span_propagation_across_threads () =
  with_tracer @@ fun () ->
  Trace.set_enabled true;
  let fut = ref None in
  Trace.with_span "outer" (fun () ->
      fut :=
        Some
          (Executor.submit Executor.unbounded (fun () ->
               Trace.with_span "inner" (fun () -> ())));
      Executor.await (Option.get !fut));
  let find name =
    match List.find_opt (fun s -> s.Trace.name = name) (Trace.spans ()) with
    | Some s -> s
    | None -> Alcotest.failf "no span %s" name
  in
  let outer = find "outer" and inner = find "inner" in
  check bool_ "worker span parented under submitter's span" true
    (inner.Trace.parent = Some outer.Trace.span_id)

(* ------------------------------------------------------------------ *)
(* Direct peer-handler transport (thread-safe, no simulated clock)     *)
(* ------------------------------------------------------------------ *)

(* Routes each destination straight into a peer's [handle_raw]; parallel
   sends fan out through [executor].  Peers serialize internally, so this
   is safe under any executor — unlike Simnet, which owns a virtual clock
   and must stay sequential. *)
let direct_transport ~executor peers =
  let send ~dest body =
    match List.assoc_opt dest peers with
    | Some handler -> handler body
    | None -> Transport.error ~kind:Transport.Unreachable ~dest "no such peer"
  in
  {
    Transport.send;
    send_parallel =
      (fun pairs ->
        Executor.map_list executor (fun (dest, body) -> send ~dest body) pairs);
  }

let make_peer name =
  let p = Peer.create ("xrpc://" ^ name) in
  Peer.register_module p ~uri:Testmod.module_ns ~location:Testmod.module_at
    Testmod.test_module;
  p

(* ------------------------------------------------------------------ *)
(* Parallel == sequential dispatch                                     *)
(* ------------------------------------------------------------------ *)

(* one query fanning out to four peers; result depends on the peer *)
let q_fan_out =
  {|import module namespace t="test" at "http://x.example.org/test.xq";
for $i in (1, 2, 3, 4)
return execute at {concat("xrpc://p", string($i))} {t:ping($i)}|}

let run_fan_out ~executor =
  let peers =
    List.map
      (fun i ->
        let name = "p" ^ string_of_int i in
        let p = make_peer name in
        ("xrpc://" ^ name, Peer.handle_raw p))
      [ 1; 2; 3; 4 ]
  in
  let x = make_peer "x" in
  Peer.set_transport x (direct_transport ~executor peers);
  Xdm.to_display (Peer.query_seq x q_fan_out)

let test_parallel_equals_sequential_query () =
  let seq = run_fan_out ~executor:Executor.sequential in
  let pool = Executor.pool 4 in
  let par = run_fan_out ~executor:pool in
  Executor.shutdown pool;
  check string_ "same values, same order" seq par;
  check string_ "and the values are right" "1 2 3 4" seq

let test_client_scatter_matches_sequential () =
  let dispatch ~executor =
    let peers =
      List.map
        (fun i ->
          let name = "p" ^ string_of_int i in
          ("xrpc://" ^ name, Peer.handle_raw (make_peer name)))
        [ 1; 2; 3; 4; 5; 6 ]
    in
    let client =
      Client.connect_transport
        ~config:(Client.config ~executor ())
        (direct_transport ~executor peers)
    in
    Client.call_scatter client ~module_uri:Testmod.module_ns
      ~location:Testmod.module_at ~fn:"ping"
      (List.init 6 (fun i ->
           ("xrpc://p" ^ string_of_int (i + 1), [ [ Xdm.int (i + 1) ] ])))
  in
  let seq = dispatch ~executor:Executor.sequential in
  let pool = Executor.pool 3 in
  let par = dispatch ~executor:pool in
  Executor.shutdown pool;
  check bool_ "scatter results identical" true (seq = par);
  check bool_ "scatter values in input order" true
    (par = List.init 6 (fun i -> [ Xdm.int (i + 1) ]))

(* ------------------------------------------------------------------ *)
(* Xrpc_client façade                                                  *)
(* ------------------------------------------------------------------ *)

let test_client_typed_calls () =
  let cluster = Cluster.create ~names:[ "x"; "y" ] () in
  Cluster.register_module_everywhere cluster ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  let client = Cluster.client cluster in
  check bool_ "client is cached" true (client == Cluster.client cluster);
  let r =
    Client.call client ~dest:"xrpc://y" ~module_uri:Testmod.module_ns
      ~location:Testmod.module_at ~fn:"ping" [ [ Xdm.int 9 ] ]
  in
  check string_ "single call" "9" (Xdm.to_display r);
  let rs =
    Client.call_bulk client ~dest:"xrpc://y" ~module_uri:Testmod.module_ns
      ~location:Testmod.module_at ~fn:"ping"
      [ [ [ Xdm.int 1 ] ]; [ [ Xdm.int 2 ] ]; [ [ Xdm.int 3 ] ] ]
  in
  check bool_ "bulk: one result per call, in order" true
    (List.map Xdm.to_display rs = [ "1"; "2"; "3" ]);
  let fut =
    Client.call_async client ~dest:"xrpc://y" ~module_uri:Testmod.module_ns
      ~location:Testmod.module_at ~fn:"ping" [ [ Xdm.int 5 ] ]
  in
  check string_ "async" "5" (Xdm.to_display (Client.await fut))

let test_client_typed_errors () =
  let cluster = Cluster.create ~names:[ "x"; "y" ] () in
  Cluster.register_module_everywhere cluster ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  let client = Cluster.client cluster in
  (* a peer-side failure surfaces as a typed application fault *)
  (match
     Client.call client ~dest:"xrpc://y" ~module_uri:Testmod.module_ns
       ~location:Testmod.module_at ~fn:"noSuchFunction" [ [ Xdm.int 1 ] ]
   with
  | _ -> Alcotest.fail "missing function accepted"
  | exception Xrpc_error.Error e -> (
      check string_ "fault dest" "xrpc://y" e.Xrpc_error.dest;
      match e.Xrpc_error.kind with
      | Xrpc_error.Fault `Sender -> ()
      | _ -> Alcotest.fail "expected an application fault"));
  (* a transport-level failure keeps its kind *)
  match
    Client.call client ~dest:"xrpc://nowhere" ~module_uri:Testmod.module_ns
      ~location:Testmod.module_at ~fn:"ping" [ [ Xdm.int 1 ] ]
  with
  | _ -> Alcotest.fail "unknown peer accepted"
  | exception Xrpc_error.Error { kind = Xrpc_error.Unreachable; _ } -> ()
  | exception e -> Alcotest.failf "wrong error %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Concurrent keep-alive requests against one peer                     *)
(* ------------------------------------------------------------------ *)

let test_concurrent_keep_alive () =
  let peer = make_peer "served" in
  let server = Http.serve (fun ~path:_ body -> Peer.handle_raw peer body) in
  Fun.protect ~finally:(fun () -> Http.shutdown server) @@ fun () ->
  let dest = Printf.sprintf "xrpc://127.0.0.1:%d" (Http.port server) in
  let pool = Executor.pool 4 in
  let client =
    Client.connect_http
      ~config:(Client.config ~executor:pool ~keep_alive:true ())
      ()
  in
  (* back-to-back calls on one client reuse the pooled connection *)
  for i = 1 to 5 do
    let r =
      Client.call client ~dest ~module_uri:Testmod.module_ns
        ~location:Testmod.module_at ~fn:"ping" [ [ Xdm.int i ] ]
    in
    check string_ (Printf.sprintf "sequential call %d" i) (string_of_int i)
      (Xdm.to_display r)
  done;
  (* 16 concurrent requests against the SAME destination *)
  let rs =
    Client.call_scatter client ~module_uri:Testmod.module_ns
      ~location:Testmod.module_at ~fn:"ping"
      (List.init 16 (fun i -> (dest, [ [ Xdm.int i ] ])))
  in
  Executor.shutdown pool;
  check bool_ "every concurrent response correct and in order" true
    (List.map Xdm.to_display rs = List.init 16 string_of_int);
  check int_ "peer served every request exactly once" 21
    peer.Peer.requests_handled

(* ------------------------------------------------------------------ *)
(* Parallel 2PC atomicity                                              *)
(* ------------------------------------------------------------------ *)

let q_2pc =
  {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y", "xrpc://z")
return execute at {$dst} {f:addFilm("New", "Actor New")}|}

let count_film peer name =
  match
    Peer.query_seq peer
      (Printf.sprintf {|count(doc("filmDB.xml")//film[name = %S])|} name)
  with
  | [ Xdm.Atomic (Xs.Integer n) ] -> n
  | r -> Alcotest.failf "unexpected count result %s" (Xdm.to_display r)

(* a handler that answers requests but is crashed for transaction
   messages — a peer lost between the query's dispatch and the 2PC *)
let crashed_for_tx ~dest handler body =
  match Xrpc_soap.Message.of_string body with
  | Xrpc_soap.Message.Tx_request _ ->
      Transport.error ~kind:Transport.Unreachable ~dest "crashed before 2PC"
  | _ -> handler body

let twopc_setup ~executor ~lose_z =
  let y = Peer.create "xrpc://y" and z = Peer.create "xrpc://z" in
  Filmdb.install y ();
  Filmdb.install z ~variant:`Z ();
  let x = Peer.create "xrpc://x" in
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  let z_handler =
    if lose_z then crashed_for_tx ~dest:"xrpc://z" (Peer.handle_raw z)
    else Peer.handle_raw z
  in
  let transport =
    direct_transport ~executor
      [ ("xrpc://y", Peer.handle_raw y); ("xrpc://z", z_handler) ]
  in
  Peer.set_transport x transport;
  Peer.set_executor x executor;
  (x, y, z)

let test_parallel_2pc_atomicity () =
  let pool = Executor.pool 4 in
  Fun.protect ~finally:(fun () -> Executor.shutdown pool) @@ fun () ->
  for round = 1 to 5 do
    (* healthy run: both participants prepare and commit, in parallel *)
    let x, y, z = twopc_setup ~executor:pool ~lose_z:false in
    let r = Peer.query x q_2pc in
    check bool_ (Printf.sprintf "round %d committed" round) true
      r.Peer.committed;
    check int_ (Printf.sprintf "round %d applied at y" round) 1
      (count_film y "New");
    check int_ (Printf.sprintf "round %d applied at z" round) 1
      (count_film z "New")
  done;
  (* z crashes after the dispatch but before prepare: its vote fails, so
     the parallel decision phase must roll EVERYONE back *)
  let x, y, z = twopc_setup ~executor:pool ~lose_z:true in
  let r = Peer.query x q_2pc in
  check bool_ "aborted" false r.Peer.committed;
  check int_ "nothing applied at y" 0 (count_film y "New");
  check int_ "nothing applied at z" 0 (count_film z "New")

(* ------------------------------------------------------------------ *)
(* Xrpc_error round trip                                               *)
(* ------------------------------------------------------------------ *)

let test_error_round_trip () =
  let gen_kind =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return Xrpc_error.Timeout;
        QCheck.Gen.return Xrpc_error.Unreachable;
        QCheck.Gen.return Xrpc_error.Circuit_open;
        QCheck.Gen.map
          (fun d -> Xrpc_error.Protocol d)
          (QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range 'a' 'z')
             (QCheck.Gen.int_range 0 8));
      ]
  in
  let gen_dest =
    QCheck.Gen.map
      (fun s -> "xrpc://" ^ s)
      (QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range 'a' 'z')
         (QCheck.Gen.int_range 1 12))
  in
  let arb =
    QCheck.make
      QCheck.Gen.(
        map3
          (fun kind dest info -> { Xrpc_error.kind; dest; info })
          gen_kind gen_dest (string_size (int_range 0 40)))
  in
  let prop e =
    let code, reason = Xrpc_error.to_soap_fault e in
    (* transport kinds round-trip exactly, embedded dest included *)
    Xrpc_error.of_soap_fault ~code reason = e
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"transport kinds round-trip" arb prop);
  (* application faults keep code + reason, dest comes from the caller *)
  List.iter
    (fun code ->
      let e = { Xrpc_error.kind = Xrpc_error.Fault code; dest = "xrpc://y"; info = "boom" } in
      let code', reason = Xrpc_error.to_soap_fault e in
      check bool_ "fault code preserved" true (code' = code);
      check string_ "fault reason untouched" "boom" reason;
      check bool_ "fault round-trips with dest" true
        (Xrpc_error.of_soap_fault ~dest:"xrpc://y" ~code:code' reason = e))
    [ `Sender; `Receiver ]

(* ------------------------------------------------------------------ *)
(* Sequential-mode chaos replay stays bit-identical                    *)
(* ------------------------------------------------------------------ *)

let sim_config = { Simnet.default_config with Simnet.charge_cpu = false }

let chaos_policy =
  {
    Transport.timeout_ms = 1_000.;
    max_retries = 4;
    backoff_base_ms = 5.;
    backoff_cap_ms = 40.;
    backoff_jitter = 0.5;
    breaker_threshold = 0;
    breaker_cooldown_ms = 100.;
  }

let q_two_peers =
  {|import module namespace t="test" at "http://x.example.org/test.xq";
(execute at {"xrpc://y"} {t:ping(1)}, execute at {"xrpc://z"} {t:ping(2)})|}

(* the executor is passed EXPLICITLY: the deterministic mode of the new
   dispatch engine must preserve the seed-replay contract end to end *)
let chaos_run ~seed =
  Trace.reset ();
  let cluster =
    Cluster.create ~config:sim_config
      ~faults:(Simnet.chaos ~seed ~loss:0.05 ())
      ~policy:chaos_policy ~executor:Executor.sequential
      ~names:[ "x"; "y"; "z" ] ()
  in
  Cluster.register_module_everywhere cluster ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  Cluster.enable_tracing cluster;
  let x = Cluster.peer cluster "x" in
  let failed = ref 0 in
  for _ = 1 to 10 do
    try ignore (Peer.query_seq x q_two_peers) with _ -> incr failed
  done;
  let signature = Trace.signature () in
  Cluster.disable_tracing ();
  (signature, Cluster.clock_ms cluster, !failed)

let test_sequential_chaos_replay () =
  with_tracer @@ fun () ->
  List.iter
    (fun seed ->
      let sig_a, clock_a, failed_a = chaos_run ~seed in
      let sig_b, clock_b, failed_b = chaos_run ~seed in
      check int_ (Printf.sprintf "seed %d same failures" seed) failed_a
        failed_b;
      check (Alcotest.float 0.) (Printf.sprintf "seed %d same clock" seed)
        clock_a clock_b;
      if sig_a <> sig_b then
        Alcotest.failf "seed %d: span tree not reproducible\n--- a ---\n%s\n--- b ---\n%s"
          seed sig_a sig_b)
    [ 2; 9; 23 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dispatch"
    [
      ( "executor",
        [
          Alcotest.test_case "sequential runs inline" `Quick
            test_sequential_inline;
          Alcotest.test_case "pool bounds concurrency" `Quick
            test_pool_bounds_concurrency;
          Alcotest.test_case "map_list error discipline" `Quick
            test_map_list_error_discipline;
          Alcotest.test_case "future lifecycle" `Quick test_future_lifecycle;
          Alcotest.test_case "own-pool re-entry" `Quick test_own_pool_reentry;
          Alcotest.test_case "span propagation across threads" `Quick
            test_span_propagation_across_threads;
        ] );
      ( "parallel-dispatch",
        [
          Alcotest.test_case "query fan-out: parallel == sequential" `Quick
            test_parallel_equals_sequential_query;
          Alcotest.test_case "client scatter: parallel == sequential" `Quick
            test_client_scatter_matches_sequential;
          Alcotest.test_case "concurrent keep-alive, one peer" `Quick
            test_concurrent_keep_alive;
          Alcotest.test_case "parallel 2PC atomicity" `Quick
            test_parallel_2pc_atomicity;
        ] );
      ( "client",
        [
          Alcotest.test_case "typed calls" `Quick test_client_typed_calls;
          Alcotest.test_case "typed errors" `Quick test_client_typed_errors;
        ] );
      ( "errors",
        [ Alcotest.test_case "SOAP fault round trip" `Quick test_error_round_trip ] );
      ( "determinism",
        [
          Alcotest.test_case "sequential chaos replay" `Quick
            test_sequential_chaos_replay;
        ] );
    ]
