(* Tests for the §4 XRPC wrapper: Figure-3 query generation, pure-XQuery
   n2s/s2n marshaling, bulk requests through the wrapper, per-request
   timing breakdown, join detection, and interop with a native peer. *)

open Xrpc_xml
module Message = Xrpc_soap.Message
module Wrapper = Xrpc_peer.Wrapper
module Database = Xrpc_peer.Database
module Xmark = Xrpc_workloads.Xmark

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let make_wrapper ?(join_detect = false) () =
  let w = Wrapper.create ~join_detect "xrpc://saxon.example.org" in
  Wrapper.register_module w ~uri:Xmark.functions_ns
    ~location:Xmark.functions_at Xmark.functions_module;
  Database.add_doc_xml w.Wrapper.db "persons.xml" (Xmark.persons ~count:25 ());
  w

let get_person_request ids =
  {
    Message.module_uri = Xmark.functions_ns;
    location = Xmark.functions_at;
    method_ = "getPerson";
    arity = 2;
    updating = false;
    fragments = false;
    query_id = None;
    idem_key = None; cache_ok = true;
    calls =
      List.map
        (fun i ->
          [ [ Xdm.str "persons.xml" ];
            [ Xdm.str (Printf.sprintf "person%d" i) ] ])
        ids;
  }

let handle w req =
  Message.of_string (Wrapper.handle_raw w (Message.to_string (Message.Request req)))

let test_generated_query_shape () =
  let q =
    Wrapper.generate_query ~module_uri:"functions"
      ~location:"http://example.org/functions.xq" ~method_:"getPerson" ~arity:2
      ~request_doc:"/tmp/request1.xml"
  in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length q && (String.sub q i n = sub || go (i + 1)) in
    go 0
  in
  (* Figure 3's structure *)
  check bool_ "imports function module" true
    (contains {|import module namespace func = "functions"|});
  check bool_ "iterates calls" true (contains "for $call in doc");
  check bool_ "param1" true (contains "w:n2s($call/xrpc:sequence[1])");
  check bool_ "param2" true (contains "w:n2s($call/xrpc:sequence[2])");
  check bool_ "marshals result" true
    (contains "return w:s2n(func:getPerson($param1, $param2))");
  check bool_ "response element" true (contains "<xrpc:response");
  (* it must also be valid XQuery *)
  ignore (Xrpc_xquery.Parser.parse_prog q)

let test_wrapper_answers_single_call () =
  let w = make_wrapper () in
  match handle w (get_person_request [ 7 ]) with
  | Message.Response r -> (
      check int_ "one result" 1 (List.length r.Message.results);
      match r.Message.results with
      | [ [ Xdm.Node n ] ] ->
          check bool_ "person element" true
            (match Store.name n with
            | Some q -> q.Qname.local = "person"
            | None -> false);
          let a = Store.attributes n in
          check string_ "right person" "person7"
            (Store.string_value (List.hd a))
      | _ -> Alcotest.fail "result shape")
  | Message.Fault f -> Alcotest.fail f.Message.reason
  | _ -> Alcotest.fail "kind"

let test_wrapper_bulk_call () =
  let w = make_wrapper () in
  match handle w (get_person_request [ 1; 99; 3 ]) with
  | Message.Response r ->
      check (Alcotest.list int_) "hit,miss,hit" [ 1; 0; 1 ]
        (List.map List.length r.Message.results)
  | Message.Fault f -> Alcotest.fail f.Message.reason
  | _ -> Alcotest.fail "kind"

let test_wrapper_atomic_results () =
  let w = make_wrapper () in
  Wrapper.register_module w ~uri:"test" ~location:"t.xq"
    Xrpc_workloads.Testmod.test_module;
  let req =
    {
      Message.module_uri = "test";
      location = "t.xq";
      method_ = "ping";
      arity = 1;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.int 5 ] ]; [ [ Xdm.int 7 ] ] ];
    }
  in
  match handle w req with
  | Message.Response r ->
      (* n2s in pure XQuery must reconstruct xs:integer, and s2n must
         annotate it back *)
      check bool_ "integers preserved" true
        (List.map (fun s -> List.map Xdm.atomize_item s) r.Message.results
         = [ [ Xs.Integer 5 ]; [ Xs.Integer 7 ] ])
  | Message.Fault f -> Alcotest.fail f.Message.reason
  | _ -> Alcotest.fail "kind"

let test_wrapper_echo_void () =
  let w = make_wrapper () in
  Wrapper.register_module w ~uri:"test" ~location:"t.xq"
    Xrpc_workloads.Testmod.test_module;
  let req =
    {
      Message.module_uri = "test";
      location = "t.xq";
      method_ = "echoVoid";
      arity = 0;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = List.init 10 (fun _ -> []);
    }
  in
  match handle w req with
  | Message.Response r ->
      check int_ "ten empty results" 10 (List.length r.Message.results);
      check bool_ "all empty" true (List.for_all (( = ) []) r.Message.results)
  | Message.Fault f -> Alcotest.fail f.Message.reason
  | _ -> Alcotest.fail "kind"

let test_wrapper_timings_recorded () =
  let w = make_wrapper () in
  ignore (handle w (get_person_request [ 1 ]));
  check bool_ "treebuild > 0" true (w.Wrapper.last.Wrapper.treebuild_ms > 0.);
  check bool_ "compile > 0" true (w.Wrapper.last.Wrapper.compile_ms > 0.);
  check bool_ "exec > 0" true (w.Wrapper.last.Wrapper.exec_ms > 0.)

let test_wrapper_fault_on_unknown_module () =
  let w = make_wrapper () in
  match handle w { (get_person_request [ 1 ]) with Message.module_uri = "zzz";
                   location = "zzz.xq" } with
  | Message.Fault f ->
      check bool_ "could not load module" true (String.length f.Message.reason > 0)
  | _ -> Alcotest.fail "expected fault"

let test_join_detection_equivalence () =
  (* with and without join detection, bulk getPerson answers agree *)
  let w1 = make_wrapper ~join_detect:false () in
  let w2 = make_wrapper ~join_detect:true () in
  let ids = [ 0; 5; 10; 99; 5; 23 ] in
  match (handle w1 (get_person_request ids), handle w2 (get_person_request ids)) with
  | Message.Response a, Message.Response b ->
      check bool_ "same answers" true
        (List.for_all2 Xdm.deep_equal a.Message.results b.Message.results)
  | _ -> Alcotest.fail "kind"

let test_join_detection_faster_shape () =
  (* the join plan evaluates the selection once, so exec time should not
     grow linearly with the number of calls; we assert the weaker, robust
     property that it handles a large bulk correctly *)
  let w = make_wrapper ~join_detect:true () in
  let ids = List.init 200 (fun i -> i mod 30) in
  match handle w (get_person_request ids) with
  | Message.Response r ->
      check int_ "200 results" 200 (List.length r.Message.results);
      check bool_ "all ids under 25 hit" true
        (List.for_all2
           (fun i res -> if i < 25 then List.length res = 1 else res = [])
           ids r.Message.results)
  | Message.Fault f -> Alcotest.fail f.Message.reason
  | _ -> Alcotest.fail "kind"

let test_selection_pattern_recognizer () =
  let parse_fn src =
    let prog = Xrpc_xquery.Parser.parse_prog src in
    List.find_map
      (function Xrpc_xquery.Ast.P_function f -> Some f | _ -> None)
      prog.Xrpc_xquery.Ast.prolog
    |> Option.get
  in
  let f =
    parse_fn
      {|module namespace m = "m";
declare function m:sel($d as xs:string, $k as xs:string) as node()*
{ doc($d)//person[@id = $k] };|}
  in
  let params = List.map fst f.Xrpc_xquery.Ast.fn_params in
  check bool_ "selection recognized" true
    (Xrpc_peer.Bulk_opt.selection_pattern params
       (Option.get f.Xrpc_xquery.Ast.fn_body)
     <> None);
  let g =
    parse_fn
      {|module namespace m = "m";
declare function m:notsel($d as xs:string) as node()*
{ doc($d)//person };|}
  in
  let gparams = List.map fst g.Xrpc_xquery.Ast.fn_params in
  check bool_ "non-selection rejected" true
    (Xrpc_peer.Bulk_opt.selection_pattern gparams
       (Option.get g.Xrpc_xquery.Ast.fn_body)
     = None)

(* interop: a native peer calls into the wrapper over the simulated net *)
let test_native_peer_calls_wrapper () =
  let cluster = Xrpc_core.Cluster.create ~names:[ "mdb" ] () in
  let mdb = Xrpc_core.Cluster.peer cluster "mdb" in
  let w = Xrpc_core.Cluster.add_wrapper cluster "saxon" in
  Wrapper.register_module w ~uri:Xmark.functions_ns ~location:Xmark.functions_at
    Xmark.functions_module;
  Database.add_doc_xml w.Wrapper.db "persons.xml" (Xmark.persons ~count:25 ());
  Xrpc_peer.Peer.register_module mdb ~uri:Xmark.functions_ns
    ~location:Xmark.functions_at Xmark.functions_module;
  let result =
    Xrpc_peer.Peer.query_seq mdb
      {|import module namespace func="functions" at "http://example.org/functions.xq";
        for $i in (1, 2, 3)
        return execute at {"xrpc://saxon"} {func:getPerson("persons.xml", concat("person", string($i)))}|}
  in
  check int_ "three persons" 3 (List.length result);
  (* and it went out as ONE bulk message pair *)
  check int_ "2 messages" 2
    (Xrpc_core.Cluster.stats cluster).Xrpc_net.Simnet.messages

let () =
  Alcotest.run "wrapper"
    [
      ( "generation",
        [
          Alcotest.test_case "Figure 3 shape" `Quick test_generated_query_shape;
        ] );
      ( "handling",
        [
          Alcotest.test_case "single call" `Quick test_wrapper_answers_single_call;
          Alcotest.test_case "bulk call" `Quick test_wrapper_bulk_call;
          Alcotest.test_case "atomic results typed" `Quick
            test_wrapper_atomic_results;
          Alcotest.test_case "echoVoid x10" `Quick test_wrapper_echo_void;
          Alcotest.test_case "timings" `Quick test_wrapper_timings_recorded;
          Alcotest.test_case "unknown module fault" `Quick
            test_wrapper_fault_on_unknown_module;
        ] );
      ( "join-detection",
        [
          Alcotest.test_case "equivalence" `Quick test_join_detection_equivalence;
          Alcotest.test_case "large bulk" `Quick test_join_detection_faster_shape;
          Alcotest.test_case "pattern recognizer" `Quick
            test_selection_pattern_recognizer;
        ] );
      ( "interop",
        [
          Alcotest.test_case "native peer -> wrapper" `Quick
            test_native_peer_calls_wrapper;
        ] );
    ]
